// Package gen generates the synthetic workloads of the paper's experimental
// evaluation (Section 5): random schemas of R relations over A attributes,
// relations with values drawn uniformly or Zipf-distributed from [1, M],
// random conjunctions of K non-redundant equalities, the chain queries of
// Example 6, and the grocery retailer database of Figure 1.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/relation"
)

// Distribution selects how attribute values are drawn.
type Distribution int

// Supported value distributions.
const (
	Uniform Distribution = iota
	Zipf
)

func (d Distribution) String() string {
	if d == Zipf {
		return "zipf"
	}
	return "uniform"
}

// Sampler draws values from [1, M] under the given distribution. The Zipf
// exponent is fixed at 1.5 ("a more skewed distribution", Section 5).
type Sampler struct {
	dist Distribution
	m    int
	zipf *rand.Zipf
}

// NewSampler builds a sampler over [1, m].
func NewSampler(rng *rand.Rand, dist Distribution, m int) *Sampler {
	s := &Sampler{dist: dist, m: m}
	if dist == Zipf {
		s.zipf = rand.NewZipf(rng, 1.5, 1, uint64(m-1))
	}
	return s
}

// Draw returns one value in [1, m].
func (s *Sampler) Draw(rng *rand.Rand) relation.Value {
	if s.dist == Zipf {
		return relation.Value(s.zipf.Uint64() + 1)
	}
	return relation.Value(rng.Intn(s.m) + 1)
}

// Schema holds a generated database schema: R relations over A attributes
// named X1..XA, distributed evenly (attribute Xi goes to relation i mod R,
// positions shuffled).
type Schema struct {
	Relations []relation.Schema
	Names     []string
}

// RandomSchema distributes a attributes over r relations. Every relation
// receives at least one attribute (requires a >= r).
func RandomSchema(rng *rand.Rand, r, a int) (*Schema, error) {
	if a < r {
		return nil, fmt.Errorf("gen: cannot distribute %d attributes over %d relations", a, r)
	}
	perm := rng.Perm(a)
	out := &Schema{Relations: make([]relation.Schema, r), Names: make([]string, r)}
	for i := 0; i < r; i++ {
		out.Names[i] = fmt.Sprintf("R%d", i+1)
	}
	for i, p := range perm {
		ri := i % r
		out.Relations[ri] = append(out.Relations[ri], relation.Attribute(fmt.Sprintf("X%d", p+1)))
	}
	return out, nil
}

// Populate builds relations over the schema, each with n tuples drawn from
// the sampler, deduplicated.
func (s *Schema) Populate(rng *rand.Rand, n int, sm *Sampler) []*relation.Relation {
	out := make([]*relation.Relation, len(s.Relations))
	for i, sch := range s.Relations {
		r := relation.New(s.Names[i], sch)
		for j := 0; j < n; j++ {
			t := make(relation.Tuple, len(sch))
			for k := range t {
				t[k] = sm.Draw(rng)
			}
			r.AppendTuple(t)
		}
		r.Dedup()
		out[i] = r
	}
	return out
}

// RandomEqualities draws k non-redundant equalities over the schema's
// attributes: each new equality links two attributes in distinct
// equivalence classes (Section 5, "conjunctions of K non-redundant
// equalities"). Returns an error if k >= A (at most A-1 non-trivial joins
// exist).
func RandomEqualities(rng *rand.Rand, s *Schema, k int) ([]core.Equality, error) {
	var attrs []relation.Attribute
	for _, sch := range s.Relations {
		attrs = append(attrs, sch...)
	}
	if k >= len(attrs) {
		return nil, fmt.Errorf("gen: %d equalities need more than %d attributes", k, len(attrs))
	}
	parent := map[relation.Attribute]relation.Attribute{}
	var find func(a relation.Attribute) relation.Attribute
	find = func(a relation.Attribute) relation.Attribute {
		if parent[a] == a {
			return a
		}
		r := find(parent[a])
		parent[a] = r
		return r
	}
	for _, a := range attrs {
		parent[a] = a
	}
	var eqs []core.Equality
	guard := 0
	for len(eqs) < k {
		guard++
		if guard > 100000 {
			return nil, fmt.Errorf("gen: could not draw %d non-redundant equalities", k)
		}
		a := attrs[rng.Intn(len(attrs))]
		b := attrs[rng.Intn(len(attrs))]
		ra, rb := find(a), find(b)
		if ra == rb {
			continue
		}
		parent[rb] = ra
		eqs = append(eqs, core.Equality{A: a, B: b})
	}
	return eqs, nil
}

// RandomConstSels draws up to maxSels constant selections over attrs: a
// random attribute, a random operator from ops, and a constant in [1, m] —
// the selection-leg generator of the differential workloads (two
// independent draws give the two legs of a set-operation case).
func RandomConstSels(rng *rand.Rand, attrs []relation.Attribute, maxSels, m int, ops []fplan.Cmp) []core.ConstSel {
	var sels []core.ConstSel
	if len(attrs) == 0 || len(ops) == 0 {
		return nil
	}
	for i := rng.Intn(maxSels + 1); i > 0; i-- {
		sels = append(sels, core.ConstSel{
			A:  attrs[rng.Intn(len(attrs))],
			Op: ops[rng.Intn(len(ops))],
			C:  relation.Value(1 + rng.Intn(m)),
		})
	}
	return sels
}

// RandomOrderBy draws 1..maxKeys ORDER BY keys over distinct attributes of
// attrs, each ascending or descending with equal probability — the sort-key
// generator of the order-aware differential workloads.
func RandomOrderBy(rng *rand.Rand, attrs []relation.Attribute, maxKeys int) []frep.OrderKey {
	if len(attrs) == 0 || maxKeys < 1 {
		return nil
	}
	if maxKeys > len(attrs) {
		maxKeys = len(attrs)
	}
	perm := rng.Perm(len(attrs))
	n := 1 + rng.Intn(maxKeys)
	keys := make([]frep.OrderKey, 0, n)
	for _, i := range perm[:n] {
		keys = append(keys, frep.OrderKey{Attr: attrs[i], Desc: rng.Intn(2) == 1})
	}
	return keys
}

// RandomQuery assembles a full random query: schema, data, equalities.
func RandomQuery(rng *rand.Rand, r, a, n, k int, dist Distribution, m int) (*core.Query, error) {
	sch, err := RandomSchema(rng, r, a)
	if err != nil {
		return nil, err
	}
	eqs, err := RandomEqualities(rng, sch, k)
	if err != nil {
		return nil, err
	}
	sm := NewSampler(rng, dist, m)
	return &core.Query{
		Relations:  sch.Populate(rng, n, sm),
		Equalities: eqs,
	}, nil
}

// ChainQuery builds the query of Example 6: relations R1(A1,B1), …,
// Rn(An,Bn) with the chain of equalities Bi = Ai+1, each with tuples drawn
// from [1, m]. The flat result can reach |D|^Θ(n) tuples while s(Qn) =
// Θ(log n).
func ChainQuery(rng *rand.Rand, n, tuples, m int) *core.Query {
	q := &core.Query{}
	sm := NewSampler(rng, Uniform, m)
	for i := 1; i <= n; i++ {
		r := relation.New(fmt.Sprintf("R%d", i), relation.Schema{
			relation.Attribute(fmt.Sprintf("A%d", i)),
			relation.Attribute(fmt.Sprintf("B%d", i)),
		})
		for j := 0; j < tuples; j++ {
			r.Append(sm.Draw(rng), sm.Draw(rng))
		}
		r.Dedup()
		q.Relations = append(q.Relations, r)
	}
	for i := 1; i < n; i++ {
		q.Equalities = append(q.Equalities, core.Equality{
			A: relation.Attribute(fmt.Sprintf("B%d", i)),
			B: relation.Attribute(fmt.Sprintf("A%d", i+1)),
		})
	}
	return q
}

// Grocery returns the example database of Figure 1 together with its
// dictionary. Relation attribute names are prefixed by the relation to keep
// schemas disjoint (o_, s_, d_, p_, v_).
func Grocery() (rels []*relation.Relation, dict *relation.Dict) {
	dict = relation.NewDict()
	e := dict.Encode
	orders := relation.New("Orders", relation.Schema{"o_oid", "o_item"})
	for _, r := range [][2]string{{"01", "Milk"}, {"01", "Cheese"}, {"02", "Melon"}, {"03", "Cheese"}, {"03", "Melon"}} {
		orders.Append(e(r[0]), e(r[1]))
	}
	store := relation.New("Store", relation.Schema{"s_location", "s_item"})
	for _, r := range [][2]string{{"Istanbul", "Milk"}, {"Istanbul", "Cheese"}, {"Istanbul", "Melon"},
		{"Izmir", "Milk"}, {"Antalya", "Milk"}, {"Antalya", "Cheese"}} {
		store.Append(e(r[0]), e(r[1]))
	}
	disp := relation.New("Disp", relation.Schema{"d_dispatcher", "d_location"})
	for _, r := range [][2]string{{"Adnan", "Istanbul"}, {"Adnan", "Izmir"}, {"Yasemin", "Istanbul"}, {"Volkan", "Antalya"}} {
		disp.Append(e(r[0]), e(r[1]))
	}
	produce := relation.New("Produce", relation.Schema{"p_supplier", "p_item"})
	for _, r := range [][2]string{{"Guney", "Milk"}, {"Guney", "Cheese"}, {"Dikici", "Milk"}, {"Byzantium", "Melon"}} {
		produce.Append(e(r[0]), e(r[1]))
	}
	serve := relation.New("Serve", relation.Schema{"v_supplier", "v_location"})
	for _, r := range [][2]string{{"Guney", "Antalya"}, {"Dikici", "Istanbul"}, {"Dikici", "Izmir"},
		{"Dikici", "Antalya"}, {"Byzantium", "Istanbul"}} {
		serve.Append(e(r[0]), e(r[1]))
	}
	return []*relation.Relation{orders, store, disp, produce, serve}, dict
}

// CombinatorialQuery builds the right-column dataset of Figure 7: two
// binary relations of 8² = 64 tuples and two ternary relations of 8³ = 512
// tuples, values drawn from [1, 20], joined by k equalities.
func CombinatorialQuery(rng *rand.Rand, k int, dist Distribution) (*core.Query, error) {
	s := &Schema{
		Relations: []relation.Schema{
			{"X1", "X2"},
			{"X3", "X4"},
			{"X5", "X6", "X7"},
			{"X8", "X9", "X10"},
		},
		Names: []string{"B1", "B2", "T1", "T2"},
	}
	sm := NewSampler(rng, dist, 20)
	rels := make([]*relation.Relation, 4)
	sizes := []int{64, 64, 512, 512}
	for i, sch := range s.Relations {
		r := relation.New(s.Names[i], sch)
		for j := 0; j < sizes[i]; j++ {
			t := make(relation.Tuple, len(sch))
			for c := range t {
				t[c] = sm.Draw(rng)
			}
			r.AppendTuple(t)
		}
		r.Dedup()
		rels[i] = r
	}
	eqs, err := RandomEqualities(rng, s, k)
	if err != nil {
		return nil, err
	}
	return &core.Query{Relations: rels, Equalities: eqs}, nil
}
