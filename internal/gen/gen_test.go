package gen

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

func TestRandomSchemaCoversAllAttributes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, err := RandomSchema(rng, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Relations) != 4 {
		t.Fatalf("got %d relations", len(s.Relations))
	}
	seen := relation.AttrSet{}
	total := 0
	for _, sch := range s.Relations {
		if len(sch) == 0 {
			t.Fatal("empty relation schema")
		}
		for _, a := range sch {
			if seen.Has(a) {
				t.Fatalf("attribute %s assigned twice", a)
			}
			seen.Add(a)
			total++
		}
	}
	if total != 11 {
		t.Fatalf("distributed %d attributes, want 11", total)
	}
	if _, err := RandomSchema(rng, 5, 3); err == nil {
		t.Fatal("more relations than attributes accepted")
	}
}

func TestRandomEqualitiesNonRedundant(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := RandomSchema(rng, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	eqs, err := RandomEqualities(rng, s, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(eqs) != 5 {
		t.Fatalf("got %d equalities", len(eqs))
	}
	// Union-find: each equality must merge two distinct classes, so 5
	// equalities leave 9-5 = 4 classes.
	parent := map[relation.Attribute]relation.Attribute{}
	var find func(a relation.Attribute) relation.Attribute
	find = func(a relation.Attribute) relation.Attribute {
		if parent[a] == a {
			return a
		}
		r := find(parent[a])
		parent[a] = r
		return r
	}
	for _, sch := range s.Relations {
		for _, a := range sch {
			parent[a] = a
		}
	}
	for _, e := range eqs {
		if find(e.A) == find(e.B) {
			t.Fatalf("redundant equality %v", e)
		}
		parent[find(e.B)] = find(e.A)
	}
	if _, err := RandomEqualities(rng, s, 9); err == nil {
		t.Fatal("k >= A accepted")
	}
}

func TestSamplerRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dist := range []Distribution{Uniform, Zipf} {
		sm := NewSampler(rng, dist, 100)
		for i := 0; i < 2000; i++ {
			v := sm.Draw(rng)
			if v < 1 || v > 100 {
				t.Fatalf("%s sample %d out of [1,100]", dist, v)
			}
		}
	}
}

func TestZipfIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	sm := NewSampler(rng, Zipf, 100)
	low := 0
	for i := 0; i < 5000; i++ {
		if sm.Draw(rng) <= 5 {
			low++
		}
	}
	// Under a 1.5-exponent Zipf, values <= 5 dominate; under uniform they
	// would be ~5%.
	if low < 2500 {
		t.Fatalf("zipf does not look skewed: %d/5000 samples <= 5", low)
	}
}

func TestChainQueryShape(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := ChainQuery(rng, 4, 10, 5)
	if len(q.Relations) != 4 || len(q.Equalities) != 3 {
		t.Fatalf("chain shape wrong: %d relations, %d equalities",
			len(q.Relations), len(q.Equalities))
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Classes()) != 5 {
		t.Fatalf("chain of 4 should have 5 classes, got %d", len(q.Classes()))
	}
}

func TestGroceryMatchesFigure1(t *testing.T) {
	rels, dict := Grocery()
	if len(rels) != 5 {
		t.Fatalf("got %d relations", len(rels))
	}
	cards := []int{5, 6, 4, 4, 5}
	for i, r := range rels {
		if r.Cardinality() != cards[i] {
			t.Fatalf("%s has %d tuples, want %d", r.Name, r.Cardinality(), cards[i])
		}
	}
	if dict.Decode(rels[0].Tuples[0][1]) != "Milk" {
		t.Fatal("dictionary decoding broken")
	}
}

func TestPopulateDedups(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s, err := RandomSchema(rng, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	rels := s.Populate(rng, 1000, NewSampler(rng, Uniform, 3))
	// Domain 3x3 = 9 possible tuples; 1000 draws must collapse to <= 9.
	if rels[0].Cardinality() > 9 {
		t.Fatalf("dedup failed: %d tuples", rels[0].Cardinality())
	}
}

func TestCombinatorialQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q, err := CombinatorialQuery(rng, 3, Uniform)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(q.Relations) != 4 || len(q.Equalities) != 3 {
		t.Fatal("combinatorial query shape wrong")
	}
	if len(q.Attributes()) != 10 {
		t.Fatalf("A = %d, want 10", len(q.Attributes()))
	}
}

// TestRandomQueryDeterministic: every generator is a pure function of its
// rng — the same seed derives the same schema, data and equalities. The
// differential fuzz harness (internal/fuzz) and cmd/fdgen rely on this to
// reproduce failures from a printed seed alone.
func TestRandomQueryDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		for _, dist := range []Distribution{Uniform, Zipf} {
			qa, err := RandomQuery(rand.New(rand.NewSource(seed)), 3, 7, 25, 2, dist, 9)
			if err != nil {
				t.Fatal(err)
			}
			qb, err := RandomQuery(rand.New(rand.NewSource(seed)), 3, 7, 25, 2, dist, 9)
			if err != nil {
				t.Fatal(err)
			}
			if len(qa.Relations) != len(qb.Relations) {
				t.Fatalf("seed %d (%s): relation counts differ", seed, dist)
			}
			for i := range qa.Relations {
				if !qa.Relations[i].Equal(qb.Relations[i]) {
					t.Fatalf("seed %d (%s): relation %s differs between derivations",
						seed, dist, qa.Relations[i].Name)
				}
			}
			if len(qa.Equalities) != len(qb.Equalities) {
				t.Fatalf("seed %d (%s): equality counts differ", seed, dist)
			}
			for i := range qa.Equalities {
				if qa.Equalities[i] != qb.Equalities[i] {
					t.Fatalf("seed %d (%s): equality %d differs: %v vs %v",
						seed, dist, i, qa.Equalities[i], qb.Equalities[i])
				}
			}
		}
	}
}
