package fplan

import (
	"context"
	"strings"

	"repro/internal/frep"
	"repro/internal/ftree"
)

// Plan is an f-plan: a sequential composition of operators evaluating a
// select-project-join query on a factorised representation (Section 3).
type Plan struct {
	Ops []Op
}

// String renders the plan as "op ; op ; …".
func (p Plan) String() string {
	parts := make([]string, len(p.Ops))
	for i, op := range p.Ops {
		parts[i] = op.String()
	}
	return strings.Join(parts, " ; ")
}

// Execute applies every operator, in order, to f (tree and data together).
func (p Plan) Execute(f *frep.FRep) error {
	return p.ExecuteContext(context.Background(), f)
}

// ExecuteContext is Execute with cancellation checkpoints between
// operators: before each operator runs, ctx is polled and its error
// returned, so long operator pipelines can be abandoned mid-plan.
func (p Plan) ExecuteContext(ctx context.Context, f *frep.FRep) error {
	for _, op := range p.Ops {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := op.Apply(f); err != nil {
			return err
		}
	}
	return nil
}

// SimulateTree applies the plan's schema transforms to a clone of t and
// returns the final tree together with the plan cost of Section 4.1:
// s(f) = max(s(T0), …, s(Tk)) over the initial, intermediate and final
// f-trees.
func (p Plan) SimulateTree(t *ftree.T) (final *ftree.T, maxS float64, err error) {
	cur := t.Clone()
	maxS = cur.S()
	for _, op := range p.Ops {
		if err := op.ApplyTree(cur); err != nil {
			return nil, 0, err
		}
		if s := cur.S(); s > maxS {
			maxS = s
		}
	}
	return cur, maxS, nil
}

// CostS returns only the plan cost s(f) (see SimulateTree).
func (p Plan) CostS(t *ftree.T) (float64, error) {
	_, s, err := p.SimulateTree(t)
	return s, err
}

// Append returns a plan with the given operators added.
func (p Plan) Append(ops ...Op) Plan {
	out := Plan{Ops: make([]Op, 0, len(p.Ops)+len(ops))}
	out.Ops = append(out.Ops, p.Ops...)
	out.Ops = append(out.Ops, ops...)
	return out
}
