// Encoded (columnar) implementations of the f-plan operators. ApplyEnc is
// the encoded counterpart of Op.Apply: it takes an arena-backed
// representation and returns a fresh one (inputs are never mutated — arenas
// are immutable and cheap to share).
//
// Selection-with-constant, merge, push-up, normalisation and projection
// rewrite offset spans natively: everything off the root→target path is
// bulk-copied (contiguous column ranges), and only the path itself is
// re-emitted entry by entry so that emptiness cascades. Swap, absorb and
// lift — the genuinely structural regroupings (the priority-queue algorithm
// of Figure 4 and its derivatives) — fall back to decode → Apply → encode.
package fplan

import (
	"fmt"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// ApplyEnc applies op to an encoded representation, returning the
// transformed representation. The input is left untouched.
func ApplyEnc(op Op, e *frep.Enc) (*frep.Enc, error) {
	if e.IsEmpty() {
		// Data-free: replay the structural change only, like the pointer
		// operators do once a representation empties.
		nt := e.Tree.Clone()
		if err := op.ApplyTree(nt); err != nil {
			return nil, err
		}
		return frep.NewEmptyEnc(nt), nil
	}
	switch o := op.(type) {
	case SelectConst:
		return selectConstEnc(o, e)
	case SelectFn:
		return selectFnEnc(o, e)
	case Merge:
		return mergeEnc(o, e)
	case PushUp:
		return pushUpEnc(o, e)
	case Normalise:
		return normaliseEnc(e)
	case Project:
		return projectEnc(o, e)
	case Distinct:
		return frep.DedupEnc(e), nil
	default:
		return applyEncDecoded(op, e)
	}
}

// applyEncDecoded is the decode → op → encode bridge for operators without
// a native columnar implementation.
func applyEncDecoded(op Op, e *frep.Enc) (*frep.Enc, error) {
	f := e.Decode()
	if err := op.Apply(f); err != nil {
		return nil, err
	}
	return f.Encode(), nil
}

// ProductEnc combines two encoded representations over disjoint attribute
// sets into their Cartesian product — the encoded mirror of Product. Time
// linear in the input sizes (bulk column copies).
func ProductEnc(a, b *frep.Enc) (*frep.Enc, error) {
	t, err := productTree(a.Tree.Clone(), b.Tree.Clone())
	if err != nil {
		return nil, err
	}
	return frep.ConcatEnc(t, a, b), nil
}

// ------------------------------------------------------------- rewriter

// encRewriter re-emits an encoded representation into a fresh builder,
// customising behaviour at one target node and bulk-copying every subtree
// off the root→target path. Entries on the path whose subtree empties are
// rolled back; the removal cascades upward exactly like rewriteProducts.
type encRewriter struct {
	e        *frep.Enc
	b        *frep.EncBuilder
	s2d      []int // src pre-order index → dst pre-order index
	tni      int   // target src node
	pathNext []int // per src node: the child index continuing the path, -1 otherwise
	// Exactly one of the two hooks is set. entryFilter keeps/drops the
	// target's own entries (children copied verbatim). products emits the
	// whole child product of target entry j (absolute index) into the
	// builder, closing the emitted unions, and reports liveness.
	entryFilter func(relation.Value) bool
	products    func(j int) bool
	marks       [][]int32
}

func newEncRewriter(e *frep.Enc, b *frep.EncBuilder, dt *ftree.T, tni int) *encRewriter {
	r := &encRewriter{e: e, b: b, tni: tni}
	r.s2d = make([]int, e.NodeCount())
	for ni := 0; ni < e.NodeCount(); ni++ {
		r.s2d[ni] = b.Idx(dt.NodeOf(e.Node(ni).Attrs[0]))
	}
	r.pathNext = make([]int, e.NodeCount())
	for i := range r.pathNext {
		r.pathNext[i] = -1
	}
	for ni := tni; ni >= 0; {
		p := e.Parent(ni)
		if p < 0 {
			break
		}
		r.pathNext[p] = ni
		ni = p
	}
	return r
}

func (r *encRewriter) markAt(d int) []int32 {
	for len(r.marks) <= d {
		r.marks = append(r.marks, nil)
	}
	return r.marks[d][:0]
}

// run emits every root and returns the finished representation
// (canonicalised to the empty form if the rewrite emptied it).
func (r *encRewriter) run() *frep.Enc {
	for _, ri := range r.e.Roots() {
		dri := r.s2d[ri]
		if ri == r.tni || r.pathNext[ri] >= 0 {
			r.emitUnion(ri, 0, 0)
			r.b.CloseUnion(dri)
		} else {
			r.b.CopyUnions(r.e, ri, dri, 0, 1)
		}
	}
	out := r.b.Finish()
	if out.IsEmpty() {
		return frep.NewEmptyEnc(out.Tree)
	}
	return out
}

// emitUnion re-emits union u of on-path node ni; returns entries emitted.
func (r *encRewriter) emitUnion(ni, u, depth int) int {
	e := r.e
	lo, hi := e.UnionSpan(ni, u)
	vals := e.Vals(ni)
	dni := r.s2d[ni]
	target := ni == r.tni
	count := 0
	for j := lo; j < hi; j++ {
		if target && r.entryFilter != nil {
			if !r.entryFilter(vals[j]) {
				continue
			}
			// Surviving target entries copy their children verbatim; the
			// reduction invariant guarantees nothing below can empty.
			r.b.Append(dni, vals[j])
			for _, ci := range e.Kids(ni) {
				r.b.CopyUnions(e, ci, r.s2d[ci], int(j), int(j)+1)
			}
			count++
			continue
		}
		mark := r.b.Mark(dni, r.markAt(depth))
		r.marks[depth] = mark
		r.b.Append(dni, vals[j])
		dead := false
		if target {
			dead = !r.products(int(j))
		} else {
			for _, ci := range e.Kids(ni) {
				if ci == r.pathNext[ni] {
					if r.emitUnion(ci, int(j), depth+1) == 0 {
						dead = true
						break
					}
					r.b.CloseUnion(r.s2d[ci])
				} else {
					r.b.CopyUnions(e, ci, r.s2d[ci], int(j), int(j)+1)
				}
			}
		}
		if dead {
			r.b.Rollback(dni, r.marks[depth])
			continue
		}
		count++
	}
	return count
}

// --------------------------------------------------- native operators

// selectConstEnc is σ_{AθC} on the encoded form: one filtered re-emit of
// the node's unions with upward cascade; for equality the node becomes
// constant and the representation re-normalises.
func selectConstEnc(o SelectConst, e *frep.Enc) (*frep.Enc, error) {
	sn := e.Tree.NodeOf(o.A)
	if sn == nil {
		return nil, fmt.Errorf("fplan: attribute %q not in f-tree", o.A)
	}
	nt := e.Tree.Clone()
	b := frep.NewEncBuilder(nt)
	r := newEncRewriter(e, b, nt, e.NodeIndex(sn))
	r.entryFilter = func(v relation.Value) bool { return o.Op.eval(v, o.C) }
	out := r.run()
	if o.Op == Eq {
		out.Tree.MarkConst(o.A)
		return normaliseEnc(out)
	}
	return out, nil
}

// selectFnEnc is σ_{A∈P} on the encoded form: the same filtered re-emit as
// selectConstEnc, with an opaque predicate and no constant marking.
func selectFnEnc(o SelectFn, e *frep.Enc) (*frep.Enc, error) {
	sn := e.Tree.NodeOf(o.A)
	if sn == nil {
		return nil, fmt.Errorf("fplan: attribute %q not in f-tree", o.A)
	}
	nt := e.Tree.Clone()
	b := frep.NewEncBuilder(nt)
	r := newEncRewriter(e, b, nt, e.NodeIndex(sn))
	r.entryFilter = o.Keep
	return r.run(), nil
}

// normaliseEnc is η on the encoded form: the same probe-then-apply loop as
// Normalise.Apply, with native push-ups.
func normaliseEnc(e *frep.Enc) (*frep.Enc, error) {
	for {
		probe := e.Tree.Clone()
		steps := probe.NormaliseSteps()
		if len(steps) == 0 {
			return e, nil
		}
		next, err := ApplyEnc(PushUp{B: steps[0]}, e)
		if err != nil {
			return nil, err
		}
		e = next
	}
}

// pushUpEnc is ψ_B on the encoded form: the B-union of each enclosing
// product is factored out (all copies equal by independence — the first is
// kept) and the A-entries drop their B slot. Everything else bulk-copies.
func pushUpEnc(o PushUp, e *frep.Enc) (*frep.Enc, error) {
	snb := e.Tree.NodeOf(o.B)
	if snb == nil {
		return nil, fmt.Errorf("fplan: attribute %q not in f-tree", o.B)
	}
	sna := e.Tree.ParentOf(snb)
	if sna == nil {
		return nil, fmt.Errorf("fplan: push-up: node of %q is a root", o.B)
	}
	if e.Tree.SubtreeDependsOnNode(snb, sna) {
		return nil, fmt.Errorf("fplan: push-up of %q violates the path constraint", o.B)
	}
	sgp := e.Tree.ParentOf(sna)
	sai, sbi := e.NodeIndex(sna), e.NodeIndex(snb)

	nt := e.Tree.Clone()
	if err := nt.PushUp(o.B); err != nil {
		return nil, err
	}
	b := frep.NewEncBuilder(nt)

	var checkErr error
	// emitProduct emits the whole child product of grandparent entry j
	// (j < 0: the root-level product): the A-union without its B slot, the
	// factored-out B-union, and verbatim copies of the other members.
	var s2d []int
	emitProduct := func(members []int, j int) bool {
		u := 0
		if j >= 0 {
			u = j
		}
		for _, m := range members {
			if m != sai {
				b.CopyUnions(e, m, s2d[m], u, u+1)
				continue
			}
			lo, hi := e.UnionSpan(sai, u)
			vals := e.Vals(sai)
			dA := s2d[sai]
			for i := lo; i < hi; i++ {
				b.Append(dA, vals[i])
				for _, ci := range e.Kids(sai) {
					if ci == sbi {
						continue
					}
					b.CopyUnions(e, ci, s2d[ci], int(i), int(i)+1)
				}
			}
			b.CloseUnion(dA)
			// The factored-out copy: B-union of the first A-entry.
			b.CopyUnions(e, sbi, s2d[sbi], int(lo), int(lo)+1)
			if Strict && checkErr == nil {
				for i := lo + 1; i < hi; i++ {
					if !e.UnionEqual(sbi, int(i), int(lo)) {
						checkErr = fmt.Errorf("fplan: push-up of %q factored out unequal copies", o.B)
						break
					}
				}
			}
		}
		return true
	}

	var out *frep.Enc
	if sgp == nil {
		// Root-level product: no path to cascade through.
		r := newEncRewriter(e, b, nt, -1) // mapping only; no hooks used
		s2d = r.s2d
		members := append([]int(nil), e.Roots()...)
		emitProduct(members, -1)
		out = b.Finish()
		if out.IsEmpty() {
			out = frep.NewEmptyEnc(nt)
		}
	} else {
		gpi := e.NodeIndex(sgp)
		r := newEncRewriter(e, b, nt, gpi)
		s2d = r.s2d
		members := e.Kids(gpi)
		r.products = func(j int) bool { return emitProduct(members, j) }
		out = r.run()
	}
	if checkErr != nil {
		return nil, checkErr
	}
	return out, nil
}

// mergeEnc is μ_{A,B} on the encoded form: a sort-merge intersection of the
// two sibling unions per product; matched entries bulk-copy the children of
// both sides under the merged node, and an empty intersection kills the
// enclosing entry.
func mergeEnc(o Merge, e *frep.Enc) (*frep.Enc, error) {
	if !e.Tree.AreSiblings(o.A, o.B) {
		return nil, fmt.Errorf("fplan: merge: nodes of %q and %q are not siblings", o.A, o.B)
	}
	sna, snb := e.Tree.NodeOf(o.A), e.Tree.NodeOf(o.B)
	sp := e.Tree.ParentOf(sna)
	sai, sbi := e.NodeIndex(sna), e.NodeIndex(snb)

	nt := e.Tree.Clone()
	if err := nt.Merge(o.A, o.B); err != nil {
		return nil, err
	}
	b := frep.NewEncBuilder(nt)

	var s2d []int
	emitMerged := func(uA, uB int) int {
		alo, ahi := e.UnionSpan(sai, uA)
		blo, bhi := e.UnionSpan(sbi, uB)
		va, vb := e.Vals(sai), e.Vals(sbi)
		dM := s2d[sai]
		count := 0
		i, k := alo, blo
		for i < ahi && k < bhi {
			switch {
			case va[i] < vb[k]:
				i++
			case va[i] > vb[k]:
				k++
			default:
				b.Append(dM, va[i])
				for _, ca := range e.Kids(sai) {
					b.CopyUnions(e, ca, s2d[ca], int(i), int(i)+1)
				}
				for _, cb := range e.Kids(sbi) {
					b.CopyUnions(e, cb, s2d[cb], int(k), int(k)+1)
				}
				count++
				i++
				k++
			}
		}
		b.CloseUnion(dM)
		return count
	}
	emitProduct := func(members []int, j int) bool {
		u := 0
		if j >= 0 {
			u = j
		}
		alive := true
		for _, m := range members {
			switch m {
			case sbi:
				// Folded into the merged union.
			case sai:
				if emitMerged(u, u) == 0 {
					alive = false
				}
			default:
				b.CopyUnions(e, m, s2d[m], u, u+1)
			}
			if !alive {
				break
			}
		}
		return alive
	}

	if sp == nil {
		r := newEncRewriter(e, b, nt, -1) // mapping only
		s2d = r.s2d
		if !emitProduct(e.Roots(), -1) {
			return frep.NewEmptyEnc(nt), nil
		}
		out := b.Finish()
		if out.IsEmpty() {
			return frep.NewEmptyEnc(nt), nil
		}
		return out, nil
	}
	pi := e.NodeIndex(sp)
	r := newEncRewriter(e, b, nt, pi)
	s2d = r.s2d
	members := e.Kids(pi)
	r.products = func(j int) bool { return emitProduct(members, j) }
	return r.run(), nil
}

// projectEnc is π_Ā on the encoded form: hidden marking is tree-only,
// removing an all-hidden leaf drops its column outright (O(#nodes), no data
// movement — parent entries are untouched), and only internal all-hidden
// nodes pay for swaps through the decode bridge.
func projectEnc(o Project, e *frep.Enc) (*frep.Enc, error) {
	for _, a := range o.Attrs {
		if e.Tree.NodeOf(a) == nil {
			return nil, fmt.Errorf("fplan: project: attribute %q not in f-tree", a)
		}
	}
	cur := e.ReTree(e.Tree.Clone())
	cur.Tree.MarkHidden(o.hiddenAttrs(cur.Tree))
	for {
		n := findAllHidden(cur.Tree)
		if n == nil {
			return cur, nil
		}
		if len(n.Children) == 0 {
			ni := cur.NodeIndex(n)
			t := cur.Tree
			if err := t.RemoveLeaf(n); err != nil {
				return nil, err
			}
			cur = cur.DropLeaf(t, ni)
			continue
		}
		next, err := ApplyEnc(Swap{A: n.Attrs[0], B: n.Children[0].Attrs[0]}, cur)
		if err != nil {
			return nil, err
		}
		cur = next
	}
}
