package fplan

import (
	"math/rand"
	"testing"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// TestRandomOperatorSequences is the strongest operator-level property
// test: starting from a factorisation of a random relation over a chain
// f-tree, apply a random sequence of valid operators and verify after every
// step that (1) the structure stays valid, (2) the represented relation
// matches a shadow relational computation, and (3) the order and
// normalisation invariants hold where promised.
func TestRandomOperatorSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		// Dependencies: one relation over a random subset structure. Use
		// two relations {A,B} and {C,D} joined via the tree when merged.
		deps := []relation.AttrSet{
			relation.NewAttrSet("A", "B"),
			relation.NewAttrSet("C", "D"),
		}
		ra := relation.New("RA", relation.Schema{"A", "B"})
		rc := relation.New("RC", relation.Schema{"C", "D"})
		for i := 0; i < 4+rng.Intn(16); i++ {
			ra.Append(relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)))
		}
		for i := 0; i < 4+rng.Intn(16); i++ {
			rc.Append(relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)))
		}
		ra.Dedup()
		rc.Dedup()
		shadow := ra.Product(rc)

		roots := []*ftree.Node{
			ftree.NewNode("A").Add(ftree.NewNode("B")),
			ftree.NewNode("C").Add(ftree.NewNode("D")),
		}
		tr := ftree.New(roots, deps)
		f, err := frep.FromRelation(tr, shadow)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		steps := 1 + rng.Intn(4)
		for s := 0; s < steps && !f.IsEmpty(); s++ {
			op, expect := randomOp(rng, f, shadow)
			if op == nil {
				break
			}
			if err := op.Apply(f); err != nil {
				t.Fatalf("trial %d step %d (%s): %v", trial, s, op, err)
			}
			shadow = expect
			if err := f.Validate(); err != nil {
				t.Fatalf("trial %d step %d (%s): invalid rep: %v", trial, s, op, err)
			}
			if err := f.Tree.Validate(); err != nil {
				t.Fatalf("trial %d step %d (%s): invalid tree: %v", trial, s, op, err)
			}
			if f.IsEmpty() {
				if shadow.Cardinality() != 0 {
					t.Fatalf("trial %d step %d (%s): engine empty, shadow has %d",
						trial, s, op, shadow.Cardinality())
				}
				continue
			}
			got := f.Relation("got")
			want := shadow.Project(got.Schema)
			if !got.Equal(want) {
				t.Fatalf("trial %d step %d (%s): mismatch\ngot:\n%s\nwant:\n%s\ntree:\n%s",
					trial, s, op, got, want, f.Tree)
			}
		}
	}
}

// randomOp picks a random applicable operator and computes the expected
// shadow relation after it.
func randomOp(rng *rand.Rand, f *frep.FRep, shadow *relation.Relation) (Op, *relation.Relation) {
	var attrs []relation.Attribute
	for a := range f.Tree.Attrs() {
		attrs = append(attrs, a)
	}
	if len(attrs) == 0 {
		return nil, nil
	}
	// Deterministic order for reproducibility.
	for i := 1; i < len(attrs); i++ {
		for j := i; j > 0 && attrs[j] < attrs[j-1]; j-- {
			attrs[j], attrs[j-1] = attrs[j-1], attrs[j]
		}
	}
	idx := func(a relation.Attribute) int { return shadow.Schema.Index(a) }
	for tries := 0; tries < 30; tries++ {
		switch rng.Intn(4) {
		case 0: // swap a random parent-child pair
			a := attrs[rng.Intn(len(attrs))]
			n := f.Tree.NodeOf(a)
			if len(n.Children) == 0 {
				continue
			}
			c := n.Children[rng.Intn(len(n.Children))]
			return Swap{A: a, B: c.Attrs[0]}, shadow
		case 1: // merge two sibling classes (equality selection)
			a := attrs[rng.Intn(len(attrs))]
			b := attrs[rng.Intn(len(attrs))]
			if f.Tree.NodeOf(a) == f.Tree.NodeOf(b) || !f.Tree.AreSiblings(a, b) {
				continue
			}
			ia, ib := idx(a), idx(b)
			want := shadow.Select(func(t relation.Tuple) bool { return t[ia] == t[ib] })
			return Merge{A: a, B: b}, want
		case 2: // absorb a descendant (equality selection)
			a := attrs[rng.Intn(len(attrs))]
			b := attrs[rng.Intn(len(attrs))]
			na, nb := f.Tree.NodeOf(a), f.Tree.NodeOf(b)
			if na == nb || !f.Tree.IsAncestor(na, nb) {
				continue
			}
			ia, ib := idx(a), idx(b)
			want := shadow.Select(func(t relation.Tuple) bool { return t[ia] == t[ib] })
			return Absorb{A: a, B: b}, want
		case 3: // selection with constant
			a := attrs[rng.Intn(len(attrs))]
			c := relation.Value(rng.Intn(3))
			ops := []Cmp{Eq, Ne, Lt, Le, Gt, Ge}
			op := ops[rng.Intn(len(ops))]
			ia := idx(a)
			want := shadow.Select(func(t relation.Tuple) bool { return op.eval(t[ia], c) })
			return SelectConst{A: a, Op: op, C: c}, want
		}
	}
	return nil, nil
}
