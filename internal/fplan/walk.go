// Package fplan implements the f-plan operators of Section 3 on factorised
// data: push-up ψ and normalisation η, swap χ (the priority-queue algorithm
// of Figure 4), Cartesian product ×, the selection operators merge μ, absorb
// α and selection-with-constant σ, and projection π — plus f-plans
// (sequences of operators) and their executor.
//
// Every operator transforms an (f-tree, f-representation) pair in place, in
// time quasilinear in the sizes of its input and output (Proposition 2),
// preserving the order invariant, the path constraint, and normalisation.
package fplan

import (
	"fmt"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// Strict enables expensive internal consistency checks (copies factored out
// by push-up must be equal). Tests switch it on; benchmarks leave it off.
var Strict = false

// rewriteProducts invokes fn on every product of child unions belonging to
// parent (for parent == nil, the top-level product f.Roots). fn may mutate
// the product through the pointer; returning false marks the enclosing
// entry dead (its product annihilated), and the removal cascades upward. If
// the cascade reaches a root, the representation becomes empty.
//
// The walk follows the tree as it is at call time; the caller applies the
// matching structural change to f.Tree afterwards.
func rewriteProducts(f *frep.FRep, parent *ftree.Node, fn func(prod *[]*frep.Union) bool) {
	if parent == nil {
		if !fn(&f.Roots) {
			f.Empty = true
		}
		return
	}
	path := f.Tree.PathTo(parent)
	if path == nil {
		panic("fplan: rewriteProducts: parent not in tree")
	}
	var desc func(u *frep.Union, depth int) bool // reports emptied
	desc = func(u *frep.Union, depth int) bool {
		node := path[depth]
		out := u.Entries[:0]
		for i := range u.Entries {
			e := u.Entries[i]
			dead := false
			if node == parent {
				if !fn(&e.Children) {
					dead = true
				}
			} else {
				next := path[depth+1]
				si := childIndex(node, next)
				if desc(e.Children[si], depth+1) {
					dead = true
				}
			}
			if !dead {
				out = append(out, e)
			}
		}
		u.Entries = out
		return len(out) == 0
	}
	ri := rootIndex(f.Tree, path[0])
	if desc(f.Roots[ri], 0) {
		f.Empty = true
	}
}

// rewriteUnions invokes fn on every union belonging to node. fn may mutate
// the union; returning false marks it empty and cascades the removal of the
// enclosing entries upward.
func rewriteUnions(f *frep.FRep, node *ftree.Node, fn func(u *frep.Union) bool) {
	p := f.Tree.ParentOf(node)
	if p == nil {
		ri := rootIndex(f.Tree, node)
		if !fn(f.Roots[ri]) {
			f.Empty = true
		}
		return
	}
	si := childIndex(p, node)
	rewriteProducts(f, p, func(prod *[]*frep.Union) bool {
		return fn((*prod)[si])
	})
}

func childIndex(p, c *ftree.Node) int {
	for i, x := range p.Children {
		if x == c {
			return i
		}
	}
	panic("fplan: childIndex: not a child")
}

func rootIndex(t *ftree.T, n *ftree.Node) int {
	for i, r := range t.Roots {
		if r == n {
			return i
		}
	}
	panic("fplan: rootIndex: not a root")
}

// unionDataEqual compares two unions structurally (used by Strict checks).
func unionDataEqual(a, b *frep.Union) bool {
	if len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		ea, eb := &a.Entries[i], &b.Entries[i]
		if ea.Val != eb.Val || len(ea.Children) != len(eb.Children) {
			return false
		}
		for j := range ea.Children {
			if !unionDataEqual(ea.Children[j], eb.Children[j]) {
				return false
			}
		}
	}
	return true
}

// removeSlot returns s without index i (copying, so shared backing arrays
// across entries are safe).
func removeSlot(s []*frep.Union, i int) []*frep.Union {
	out := make([]*frep.Union, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

// attrNode resolves the node labelled by a, or errors.
func attrNode(t *ftree.T, a relation.Attribute) (*ftree.Node, error) {
	n := t.NodeOf(a)
	if n == nil {
		return nil, fmt.Errorf("fplan: attribute %q not in f-tree", a)
	}
	return n, nil
}
