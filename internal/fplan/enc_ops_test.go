package fplan

import (
	"math/rand"
	"testing"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// encFixture builds the two-relation product fixture of endtoend_test and
// returns the pointer form (encoded forms are derived per test).
func encFixture(rng *rand.Rand) (*frep.FRep, error) {
	deps := []relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("C", "D"),
	}
	ra := relation.New("RA", relation.Schema{"A", "B"})
	rc := relation.New("RC", relation.Schema{"C", "D"})
	for i := 0; i < 4+rng.Intn(16); i++ {
		ra.Append(relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)))
	}
	for i := 0; i < 4+rng.Intn(16); i++ {
		rc.Append(relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)))
	}
	ra.Dedup()
	rc.Dedup()
	shadow := ra.Product(rc)
	roots := []*ftree.Node{
		ftree.NewNode("A").Add(ftree.NewNode("B")),
		ftree.NewNode("C").Add(ftree.NewNode("D")),
	}
	return frep.FromRelation(ftree.New(roots, deps), shadow)
}

// randomEncOp picks a random operator (the endtoend set plus push-up and
// normalise); applicability is not guaranteed — error parity is part of
// the property.
func randomEncOp(rng *rand.Rand, f *frep.FRep) Op {
	var attrs []relation.Attribute
	for a := range f.Tree.Attrs() {
		attrs = append(attrs, a)
	}
	if len(attrs) == 0 {
		return nil
	}
	for i := 1; i < len(attrs); i++ {
		for j := i; j > 0 && attrs[j] < attrs[j-1]; j-- {
			attrs[j], attrs[j-1] = attrs[j-1], attrs[j]
		}
	}
	pick := func() relation.Attribute { return attrs[rng.Intn(len(attrs))] }
	switch rng.Intn(7) {
	case 0:
		a := pick()
		n := f.Tree.NodeOf(a)
		if len(n.Children) == 0 {
			return nil
		}
		return Swap{A: a, B: n.Children[rng.Intn(len(n.Children))].Attrs[0]}
	case 1:
		return Merge{A: pick(), B: pick()}
	case 2:
		return Absorb{A: pick(), B: pick()}
	case 3:
		ops := []Cmp{Eq, Ne, Lt, Le, Gt, Ge}
		return SelectConst{A: pick(), Op: ops[rng.Intn(len(ops))], C: relation.Value(rng.Intn(3))}
	case 4:
		return PushUp{B: pick()}
	case 5:
		// Predicate selection: parity (a code-order-free predicate, like the
		// decoded-order string ranges SelectFn exists for).
		return SelectFn{A: pick(), Keep: func(v relation.Value) bool { return v%2 == 0 }, Label: "even"}
	default:
		return Normalise{}
	}
}

// TestApplyEncMatchesApplyRandom: random operator sequences applied to the
// pointer and encoded forms in lockstep yield equal representations (and
// equal error outcomes) at every step.
func TestApplyEncMatchesApplyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 80; trial++ {
		f, err := encFixture(rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		enc := f.Clone().Encode()
		for s := 0; s < 6; s++ {
			op := randomEncOp(rng, f)
			if op == nil {
				continue
			}
			errP := op.Apply(f)
			enc2, errE := ApplyEnc(op, enc)
			if (errP == nil) != (errE == nil) {
				t.Fatalf("trial %d step %d (%s): pointer err %v, encoded err %v", trial, s, op, errP, errE)
			}
			if errP != nil {
				continue // applicability errors precede mutation on both sides
			}
			enc = enc2
			if err := enc.Validate(); err != nil {
				t.Fatalf("trial %d step %d (%s): encoded invalid: %v", trial, s, op, err)
			}
			if enc.Tree.Canonical() != f.Tree.Canonical() {
				t.Fatalf("trial %d step %d (%s): trees diverged\nenc:\n%s\nptr:\n%s",
					trial, s, op, enc.Tree, f.Tree)
			}
			if !enc.Equal(f.Encode()) {
				t.Fatalf("trial %d step %d (%s): representations diverged\nenc: %s\nptr: %s\ntree:\n%s",
					trial, s, op, enc, f, f.Tree)
			}
		}
	}
}

// TestProjectEncMatchesApply: projection onto random attribute subsets
// agrees between the forms (leaf drops and swap-down bridges included).
func TestProjectEncMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	all := []relation.Attribute{"A", "B", "C", "D"}
	for trial := 0; trial < 60; trial++ {
		f, err := encFixture(rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		enc := f.Clone().Encode()
		var keep []relation.Attribute
		for _, a := range all {
			if rng.Intn(2) == 0 {
				keep = append(keep, a)
			}
		}
		if len(keep) == 0 {
			keep = []relation.Attribute{all[rng.Intn(len(all))]}
		}
		op := Project{Attrs: keep}
		errP := op.Apply(f)
		enc2, errE := ApplyEnc(op, enc)
		if (errP == nil) != (errE == nil) {
			t.Fatalf("trial %d π%v: pointer err %v, encoded err %v", trial, keep, errP, errE)
		}
		if errP != nil {
			continue
		}
		if err := enc2.Validate(); err != nil {
			t.Fatalf("trial %d π%v: encoded invalid: %v", trial, keep, err)
		}
		if !enc2.Equal(f.Encode()) {
			t.Fatalf("trial %d π%v: diverged\nenc: %s\nptr: %s", trial, keep, enc2, f)
		}
	}
}

// TestLiftEncMatchesApply: the lift restructuring (a swap sequence through
// the decode bridge) agrees with the pointer form.
func TestLiftEncMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	all := []relation.Attribute{"A", "B", "C", "D"}
	for trial := 0; trial < 40; trial++ {
		f, err := encFixture(rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		enc := f.Clone().Encode()
		lift := Lift{Attrs: []relation.Attribute{all[rng.Intn(len(all))]}}
		errP := lift.Apply(f)
		enc2, errE := ApplyEnc(lift, enc)
		if (errP == nil) != (errE == nil) {
			t.Fatalf("trial %d %s: pointer err %v, encoded err %v", trial, lift, errP, errE)
		}
		if errP != nil {
			continue
		}
		if !enc2.Equal(f.Encode()) {
			t.Fatalf("trial %d %s: diverged", trial, lift)
		}
	}
}

// TestProductEncMatchesProduct: the encoded Cartesian product equals the
// encoding of the pointer product.
func TestProductEncMatchesProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		f, err := encFixture(rng)
		if err != nil {
			t.Fatal(err)
		}
		re := relation.New("RE", relation.Schema{"E"})
		for i := 0; i < 1+rng.Intn(6); i++ {
			re.Append(relation.Value(rng.Intn(5)))
		}
		re.Dedup()
		g, err := frep.FromRelation(
			ftree.New([]*ftree.Node{ftree.NewNode("E")}, []relation.AttrSet{relation.NewAttrSet("E")}), re)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Product(f, g)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ProductEnc(f.Clone().Encode(), g.Clone().Encode())
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: product invalid: %v", trial, err)
		}
		if !got.Equal(want.Encode()) {
			t.Fatalf("trial %d: product diverged", trial)
		}
		// Overlapping attributes must be rejected on both sides.
		if _, err := ProductEnc(got, f.Clone().Encode()); err == nil {
			t.Fatal("overlapping product accepted")
		}
	}
}

// TestSelectFnDirect pins the SelectFn surface: rendering, the unknown-
// attribute error on both forms, and a decoded-order-style predicate
// filtering the encoded form without marking anything constant.
func TestSelectFnDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f, err := encFixture(rng)
	if err != nil {
		t.Fatal(err)
	}
	op := SelectFn{A: "B", Keep: func(v relation.Value) bool { return v != 1 }, Label: "!= 1 (decoded)"}
	if got := op.String(); got != "σ[B != 1 (decoded)]" {
		t.Errorf("String() = %q", got)
	}
	bad := SelectFn{A: "Z", Keep: op.Keep, Label: "x"}
	if err := bad.ApplyTree(f.Tree.Clone()); err == nil {
		t.Error("ApplyTree accepted unknown attribute")
	}
	if _, err := ApplyEnc(bad, f.Clone().Encode()); err == nil {
		t.Error("ApplyEnc accepted unknown attribute")
	}
	enc, err := ApplyEnc(op, f.Clone().Encode())
	if err != nil {
		t.Fatal(err)
	}
	if err := enc.Validate(); err != nil {
		t.Fatal(err)
	}
	if enc.Tree.Canonical() != f.Tree.Canonical() {
		t.Errorf("SelectFn changed the tree:\n%s\nwas:\n%s", enc.Tree, f.Tree)
	}
	it := frep.NewEncIterator(enc)
	col := -1
	for i, a := range enc.Schema() {
		if a == "B" {
			col = i
		}
	}
	for {
		tup, ok := it.Next()
		if !ok {
			break
		}
		if tup[col] == 1 {
			t.Fatalf("tuple %v survived σ[B != 1]", tup)
		}
	}
}
