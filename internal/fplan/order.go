// Order properties of f-trees. Enumeration of an f-representation is
// lexicographic over the pre-order node sequence of its tree, so an ORDER BY
// whose keys label the first pre-order nodes (in key order) is answered by
// streaming — no sorting, and LIMIT short-circuits. Sibling and root order
// carry no factorisation semantics (f-trees are unordered forests), which
// makes them a free lever: ReorderForOrder permutes them so the key nodes
// move to the front of the pre-order walk whenever the tree shape allows it.
package fplan

import (
	"repro/internal/frep"
	"repro/internal/ftree"
)

// allConstNode reports whether every attribute of n is bound to a constant
// (such nodes hold at most one entry per union and never perturb order).
func allConstNode(t *ftree.T, n *ftree.Node) bool {
	for _, a := range n.Attrs {
		if !t.Consts.Has(a) {
			return false
		}
	}
	return true
}

// preorder returns the tree's nodes in pre-order.
func preorder(t *ftree.T) []*ftree.Node {
	var out []*ftree.Node
	var walk func(n *ftree.Node)
	walk = func(n *ftree.Node) {
		out = append(out, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// OrderCompatible reports whether the ORDER BY keys are a structural
// property of t as it stands: walking keys in order, each key's node is the
// next pre-order node (constant nodes are skipped, repeated nodes are
// tie-free). The data-level twin is frep.ResolveOrder.
func OrderCompatible(t *ftree.T, keys []frep.OrderKey) bool {
	nodes := preorder(t)
	idx := map[*ftree.Node]int{}
	for i, n := range nodes {
		idx[n] = i
	}
	next := 0
	for _, k := range keys {
		n := t.NodeOf(k.Attr)
		if n == nil || t.Hidden.Has(k.Attr) {
			return false
		}
		ni := idx[n]
		if allConstNode(t, n) || ni < next {
			continue
		}
		for next < ni && allConstNode(t, nodes[next]) {
			next++
		}
		if next != ni {
			return false
		}
		next++
	}
	return true
}

// ReorderForOrder permutes t's root and sibling order in place so that the
// ORDER BY keys become a structural property (OrderCompatible), and reports
// whether it succeeded. Only orderings are touched — never the shape — so
// the factorisation over t is unchanged up to column layout and a built
// representation can follow with frep.(*Enc).Reindex. It fails when a key
// node is separated from the previous one by a non-constant node, or when a
// root hop would enumerate unfinished subtrees first; those cases need a
// genuinely different tree (opt.OptimalFTreeOrdered) or the sort fallback.
func ReorderForOrder(t *ftree.T, keys []frep.OrderKey) bool {
	var chain []*ftree.Node
	seen := map[*ftree.Node]bool{}
	for _, k := range keys {
		n := t.NodeOf(k.Attr)
		if n == nil || t.Hidden.Has(k.Attr) {
			return false
		}
		if allConstNode(t, n) || seen[n] {
			continue
		}
		seen[n] = true
		chain = append(chain, n)
	}
	// constPath finds a descent from `from` to `to` whose intermediate nodes
	// are all constant: those are free to stand between consecutive keys.
	var constPath func(from, to *ftree.Node) []*ftree.Node
	constPath = func(from, to *ftree.Node) []*ftree.Node {
		for _, c := range from.Children {
			if c == to {
				return []*ftree.Node{to}
			}
			if allConstNode(t, c) {
				if sub := constPath(c, to); sub != nil {
					return append([]*ftree.Node{c}, sub...)
				}
			}
		}
		return nil
	}
	rootPos := 0
	var path []*ftree.Node
	// taken[p] counts p's leading children already pinned by the walk: the
	// next key placed under p slots in right after them.
	taken := map[*ftree.Node]int{}
	moveChildTo := func(p *ftree.Node, c *ftree.Node, pos int) {
		for i, x := range p.Children {
			if x == c {
				copy(p.Children[pos+1:i+1], p.Children[pos:i])
				p.Children[pos] = c
				return
			}
		}
	}
	// pin moves the chain head..n into the leading child slots along p and
	// extends the walk path.
	pin := func(parent *ftree.Node, p []*ftree.Node) {
		for i, node := range p {
			pos := taken[parent]
			moveChildTo(parent, node, pos)
			taken[parent] = pos + 1
			parent = p[i]
		}
		path = append(path, p...)
	}
	placeAtRoot := func(n *ftree.Node) bool {
		for ri := rootPos; ri < len(t.Roots); ri++ {
			r := t.Roots[ri]
			var p []*ftree.Node
			if r == n {
				p = []*ftree.Node{n}
			} else if allConstNode(t, r) {
				if sub := constPath(r, n); sub != nil {
					p = append([]*ftree.Node{r}, sub...)
				}
			}
			if p == nil {
				continue
			}
			copy(t.Roots[rootPos+1:ri+1], t.Roots[rootPos:ri])
			t.Roots[rootPos] = r
			rootPos++
			path = p[:1]
			pin(p[0], p[1:])
			return true
		}
		return false
	}
	for ci, n := range chain {
		if ci == 0 {
			if !placeAtRoot(n) {
				return false
			}
			continue
		}
		cur := path[len(path)-1]
		if p := constPath(cur, n); p != nil {
			pin(cur, p)
			continue
		}
		// cur's subtree must be finished before pre-order can continue
		// elsewhere; any child of cur would precede the next key.
		if len(cur.Children) > 0 {
			return false
		}
		// Climb to the nearest ancestor with children beyond the pinned
		// ones — pre-order continues with its next child; every ancestor
		// passed on the way up must be exhausted or its leftover children
		// would come first.
		hopped := false
		for len(path) > 1 {
			path = path[:len(path)-1]
			anc := path[len(path)-1]
			if len(anc.Children) == taken[anc] {
				continue // exhausted; keep climbing
			}
			// n (through const nodes) must be one of the remaining children.
			for _, c := range anc.Children[taken[anc]:] {
				var p []*ftree.Node
				if c == n {
					p = []*ftree.Node{n}
				} else if allConstNode(t, c) {
					if sub := constPath(c, n); sub != nil {
						p = append([]*ftree.Node{c}, sub...)
					}
				}
				if p != nil {
					pin(anc, p)
					hopped = true
					break
				}
			}
			if !hopped {
				return false // the ancestor's next child cannot be the key
			}
			break
		}
		if hopped {
			continue
		}
		// The whole root tree is finished: hop to a fresh root.
		if !placeAtRoot(n) {
			return false
		}
	}
	return true
}

// Distinct is δ: the explicit set-semantics normalisation. Projection in
// this engine already removes hidden-node multiplicity, so on any
// engine-produced representation Distinct is the identity; it merges
// duplicate-valued union entries (unioning their children recursively) so
// the guarantee holds for any input and DISTINCT queries state it
// explicitly.
type Distinct struct{}

func (Distinct) String() string { return "δ" }

// ApplyTree implements Op: δ never changes the schema.
func (Distinct) ApplyTree(t *ftree.T) error { return nil }

// Apply implements Op.
func (Distinct) Apply(f *frep.FRep) error {
	f.Dedup()
	return nil
}
