package fplan

import (
	"fmt"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// ---------------------------------------------------------------- lift λ

// Lift restructures the tree so that every node holding one of the given
// attributes has only such nodes as ancestors — the layout grouped
// aggregation wants: group-by attributes above, aggregated attributes
// below, so each union under the group zone belongs to exactly one group.
//
// Lift is a sequence of swaps χ: as long as some target node has a
// non-target parent, the child is promoted above it. Every swap moves one
// target node up a level and never moves another one down, so the total
// target depth strictly decreases and the loop terminates. Swaps preserve
// the path constraint, so Lift is applicable to any tree.
//
// The query compiler applies Lift at Prepare time with ApplyTree only: the
// build then produces the lifted layout directly and Exec never pays for
// data movement. Apply supports lifting an already-built representation.
type Lift struct {
	Attrs []relation.Attribute
}

func (o Lift) String() string { return fmt.Sprintf("λ%v", o.Attrs) }

// nextSwap finds the next (parent, child) swap pair: a target node whose
// parent is not a target node. It returns ok=false when the tree is lifted.
func (o Lift) nextSwap(t *ftree.T) (a, b relation.Attribute, ok bool, err error) {
	group := relation.NewAttrSet(o.Attrs...)
	for _, x := range o.Attrs {
		if t.NodeOf(x) == nil {
			return "", "", false, fmt.Errorf("fplan: lift: attribute %q not in f-tree", x)
		}
	}
	isTarget := func(n *ftree.Node) bool {
		for _, x := range n.Attrs {
			if group.Has(x) {
				return true
			}
		}
		return false
	}
	var found *ftree.Node
	var walk func(n, parent *ftree.Node)
	walk = func(n, parent *ftree.Node) {
		if found != nil {
			return
		}
		if parent != nil && isTarget(n) && !isTarget(parent) {
			found = n
			return
		}
		for _, c := range n.Children {
			walk(c, n)
		}
	}
	for _, r := range t.Roots {
		walk(r, nil)
		if found != nil {
			break
		}
	}
	if found == nil {
		return "", "", false, nil
	}
	return t.ParentOf(found).Attrs[0], found.Attrs[0], true, nil
}

// ApplyTree implements Op.
func (o Lift) ApplyTree(t *ftree.T) error {
	for {
		a, b, ok, err := o.nextSwap(t)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := t.Swap(a, b); err != nil {
			return err
		}
	}
}

// Apply implements Op.
func (o Lift) Apply(f *frep.FRep) error {
	for {
		a, b, ok, err := o.nextSwap(f.Tree)
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
		if err := (Swap{A: a, B: b}).Apply(f); err != nil {
			return err
		}
	}
}

// Lifted reports whether every node holding one of the given attributes has
// only such nodes as ancestors.
func Lifted(t *ftree.T, attrs []relation.Attribute) bool {
	o := Lift{Attrs: attrs}
	_, _, ok, err := o.nextSwap(t)
	return err == nil && !ok
}
