package fplan

import (
	"fmt"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// Cmp is a comparison operator for selections with constant.
type Cmp int

// Comparison operators.
const (
	Eq Cmp = iota
	Ne
	Lt
	Le
	Gt
	Ge
)

func (c Cmp) String() string {
	switch c {
	case Eq:
		return "="
	case Ne:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "?"
}

// eval applies the comparison.
func (c Cmp) eval(a, b relation.Value) bool {
	switch c {
	case Eq:
		return a == b
	case Ne:
		return a != b
	case Lt:
		return a < b
	case Le:
		return a <= b
	case Gt:
		return a > b
	case Ge:
		return a >= b
	}
	return false
}

// SelectConst is σ_{AθC} (Section 3.3): one pass over the representation
// removing entries whose value fails the comparison, with empty unions
// annihilating their enclosing products. For equality the node becomes
// constant: it stops carrying correlation, so the tree re-normalises (the
// node floats up) and s(T) ignores it.
type SelectConst struct {
	A  relation.Attribute
	Op Cmp
	C  relation.Value
}

func (o SelectConst) String() string { return fmt.Sprintf("σ[%s%s%d]", o.A, o.Op, int64(o.C)) }

// ApplyTree implements Op.
func (o SelectConst) ApplyTree(t *ftree.T) error {
	if t.NodeOf(o.A) == nil {
		return fmt.Errorf("fplan: select: attribute %q not in f-tree", o.A)
	}
	if o.Op == Eq {
		t.MarkConst(o.A)
		t.NormaliseSteps()
	}
	return nil
}

// Apply implements Op.
func (o SelectConst) Apply(f *frep.FRep) error {
	n, err := attrNode(f.Tree, o.A)
	if err != nil {
		return err
	}
	rewriteUnions(f, n, func(u *frep.Union) bool {
		out := u.Entries[:0]
		for i := range u.Entries {
			if o.Op.eval(u.Entries[i].Val, o.C) {
				out = append(out, u.Entries[i])
			}
		}
		u.Entries = out
		return len(out) > 0
	})
	if o.Op == Eq {
		f.Tree.MarkConst(o.A)
		return Normalise{}.Apply(f)
	}
	return nil
}

// SelectFn is σ_{A∈P}: a selection by an arbitrary value predicate — the
// escape hatch for comparisons whose order is not native value order, most
// prominently range selections on dictionary-encoded strings, which must
// compare in decoded lexicographic order while codes carry insertion order.
// Unlike SelectConst it never marks the node constant (the surviving values
// are not known to be a single one), so the tree shape is preserved.
type SelectFn struct {
	A     relation.Attribute
	Keep  func(relation.Value) bool
	Label string // human-readable predicate, for plan rendering
}

func (o SelectFn) String() string { return fmt.Sprintf("σ[%s %s]", o.A, o.Label) }

// ApplyTree implements Op.
func (o SelectFn) ApplyTree(t *ftree.T) error {
	if t.NodeOf(o.A) == nil {
		return fmt.Errorf("fplan: select: attribute %q not in f-tree", o.A)
	}
	return nil
}

// Apply implements Op.
func (o SelectFn) Apply(f *frep.FRep) error {
	n, err := attrNode(f.Tree, o.A)
	if err != nil {
		return err
	}
	rewriteUnions(f, n, func(u *frep.Union) bool {
		out := u.Entries[:0]
		for i := range u.Entries {
			if o.Keep(u.Entries[i].Val) {
				out = append(out, u.Entries[i])
			}
		}
		u.Entries = out
		return len(out) > 0
	})
	return nil
}

// ---------------------------------------------------------------- project π

// Project is π_Ā (Section 3.4): attributes outside the projection list are
// marked, dependency sets sharing a marked attribute merge (projected join
// attributes induce transitive dependence), fully-marked nodes are swapped
// down to leaves and removed.
type Project struct {
	Attrs []relation.Attribute // attributes to keep
}

func (o Project) String() string {
	return fmt.Sprintf("π%v", o.Attrs)
}

func (o Project) hiddenAttrs(t *ftree.T) []relation.Attribute {
	keep := relation.NewAttrSet(o.Attrs...)
	var hidden []relation.Attribute
	for _, a := range t.Attrs().Sorted() {
		if !keep.Has(a) {
			hidden = append(hidden, a)
		}
	}
	return hidden
}

// findAllHidden returns the deepest node whose attributes are all hidden
// (first in DFS order among ties), or nil. Picking the deepest one is what
// makes the swap-down loop terminate: such a node has no all-hidden
// descendants, so swapping it below a child only ever sinks it further
// while the nodes it passes are kept ones that never need moving. (Two
// adjacent all-hidden nodes would otherwise swap back and forth forever.)
func findAllHidden(t *ftree.T) *ftree.Node {
	var found *ftree.Node
	foundDepth := -1
	var walk func(n *ftree.Node, depth int)
	walk = func(n *ftree.Node, depth int) {
		if t.AllHidden(n) && depth > foundDepth {
			found, foundDepth = n, depth
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	return found
}

// ApplyTree implements Op.
func (o Project) ApplyTree(t *ftree.T) error {
	for _, a := range o.Attrs {
		if t.NodeOf(a) == nil {
			return fmt.Errorf("fplan: project: attribute %q not in f-tree", a)
		}
	}
	t.MarkHidden(o.hiddenAttrs(t))
	for {
		n := findAllHidden(t)
		if n == nil {
			return nil
		}
		if len(n.Children) == 0 {
			if err := t.RemoveLeaf(n); err != nil {
				return err
			}
			continue
		}
		// Swap the hidden node below its first child; its subtree strictly
		// shrinks, so this terminates.
		if err := t.Swap(n.Attrs[0], n.Children[0].Attrs[0]); err != nil {
			return err
		}
	}
}

// Apply implements Op.
func (o Project) Apply(f *frep.FRep) error {
	for _, a := range o.Attrs {
		if f.Tree.NodeOf(a) == nil {
			return fmt.Errorf("fplan: project: attribute %q not in f-tree", a)
		}
	}
	if f.IsEmpty() {
		f.Empty = true // pin emptiness before roots are removed
	}
	f.Tree.MarkHidden(o.hiddenAttrs(f.Tree))
	for {
		n := findAllHidden(f.Tree)
		if n == nil {
			return nil
		}
		if len(n.Children) == 0 {
			p := f.Tree.ParentOf(n)
			si := -1
			if p == nil {
				si = rootIndex(f.Tree, n)
			} else {
				si = childIndex(p, n)
			}
			rewriteProducts(f, p, func(prod *[]*frep.Union) bool {
				*prod = removeSlot(*prod, si)
				return true
			})
			if err := f.Tree.RemoveLeaf(n); err != nil {
				return err
			}
			continue
		}
		if err := (Swap{A: n.Attrs[0], B: n.Children[0].Attrs[0]}).Apply(f); err != nil {
			return err
		}
	}
}

// ---------------------------------------------------------------- product ×

// productTree validates attribute disjointness and combines two trees into
// the product forest (Section 3.2). ta and tb must be private to the
// caller (their roots are absorbed into the result).
func productTree(ta, tb *ftree.T) (*ftree.T, error) {
	aAttrs := ta.Attrs()
	for x := range tb.Attrs() {
		if aAttrs.Has(x) {
			return nil, fmt.Errorf("fplan: product: attribute %q on both sides", x)
		}
	}
	return &ftree.T{
		Roots:  append(ta.Roots, tb.Roots...),
		Rels:   append(ta.Rels, tb.Rels...),
		Deps:   append(ta.Deps, tb.Deps...),
		Hidden: ta.Hidden.Union(tb.Hidden),
		Consts: ta.Consts.Union(tb.Consts),
	}, nil
}

// Product combines two representations over disjoint attribute sets into
// their Cartesian product (Section 3.2): the forest of both trees, the
// concatenation of both root products. Time linear in the input sizes. The
// inputs are cloned; the result owns its structure.
func Product(a, b *frep.FRep) (*frep.FRep, error) {
	ca, cb := a.Clone(), b.Clone()
	t, err := productTree(ca.Tree, cb.Tree)
	if err != nil {
		return nil, err
	}
	out := &frep.FRep{
		Tree:  t,
		Roots: append(ca.Roots, cb.Roots...),
		Empty: ca.IsEmpty() || cb.IsEmpty(),
	}
	return out, nil
}
