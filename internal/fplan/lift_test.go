package fplan

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// TestLiftRaisesGroupAttrs: after Lift, every target node's ancestors are
// target nodes, the relation is unchanged, and tree-level and data-level
// transforms agree.
func TestLiftRaisesGroupAttrs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	attrs := []relation.Attribute{"A", "B", "C", "D"}
	deps := []relation.AttrSet{relation.NewAttrSet(attrs...)}
	for iter := 0; iter < 50; iter++ {
		perm := rng.Perm(len(attrs))
		order := make([]relation.Attribute, len(attrs))
		for i, p := range perm {
			order[i] = attrs[p]
		}
		rel := randRel(rng, "R", relation.Schema{"A", "B", "C", "D"}, 1+rng.Intn(20), 3)
		if rel.Cardinality() == 0 {
			continue
		}
		f := mustFromRelation(t, chainTree(order, deps), rel)
		// Lift a random non-empty subset.
		var group []relation.Attribute
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				group = append(group, a)
			}
		}
		if len(group) == 0 {
			group = []relation.Attribute{attrs[rng.Intn(len(attrs))]}
		}

		shadow := f.Tree.Clone()
		if err := (Lift{Attrs: group}).ApplyTree(shadow); err != nil {
			t.Fatalf("ApplyTree: %v", err)
		}
		if err := (Lift{Attrs: group}).Apply(f); err != nil {
			t.Fatalf("Apply: %v", err)
		}
		checkValid(t, f)
		if f.Tree.Canonical() != shadow.Canonical() {
			t.Fatalf("tree/data divergence:\ndata tree:\n%s\nshadow tree:\n%s", f.Tree, shadow)
		}
		if !Lifted(f.Tree, group) {
			t.Fatalf("not lifted for %v:\n%s", group, f.Tree)
		}
		sameRelation(t, f, rel, "lift changed the relation")
	}
}

func TestLiftUnknownAttr(t *testing.T) {
	deps := []relation.AttrSet{relation.NewAttrSet("A", "B")}
	tr := chainTree([]relation.Attribute{"A", "B"}, deps)
	if err := (Lift{Attrs: []relation.Attribute{"Z"}}).ApplyTree(tr); err == nil {
		t.Fatal("lift of unknown attribute: want error")
	}
}

// TestLiftNoop: lifting attributes already on top changes nothing.
func TestLiftNoop(t *testing.T) {
	deps := []relation.AttrSet{relation.NewAttrSet("A", "B", "C")}
	tr := chainTree([]relation.Attribute{"A", "B", "C"}, deps)
	before := tr.Canonical()
	if err := (Lift{Attrs: []relation.Attribute{"A", "B"}}).ApplyTree(tr); err != nil {
		t.Fatal(err)
	}
	if tr.Canonical() != before {
		t.Fatalf("no-op lift changed the tree:\n%s", tr)
	}
}
