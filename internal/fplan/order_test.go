package fplan

import (
	"testing"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

func keysOf(attrs ...relation.Attribute) []frep.OrderKey {
	out := make([]frep.OrderKey, len(attrs))
	for i, a := range attrs {
		out[i] = frep.OrderKey{Attr: a}
	}
	return out
}

func TestOrderCompatible(t *testing.T) {
	// B with children A, C (the retailer shape).
	tr := ftree.New([]*ftree.Node{
		ftree.NewNode("B").Add(ftree.NewNode("A"), ftree.NewNode("C")),
	}, []relation.AttrSet{relation.NewAttrSet("A", "B"), relation.NewAttrSet("B", "C")})

	for _, tc := range []struct {
		keys []frep.OrderKey
		want bool
	}{
		{keysOf("B"), true},
		{keysOf("B", "A"), true},                         // A is the first child
		{keysOf("B", "A", "C"), true},                    // full pre-order
		{keysOf("B", "B"), true},                         // repeats are tie-free
		{keysOf("A"), false},                             // not the root
		{keysOf("B", "C"), false},                        // C is not the next pre-order node
		{keysOf("X"), false},                             // unknown attribute
		{[]frep.OrderKey{{Attr: "B", Desc: true}}, true}, // direction is order-free
	} {
		if got := OrderCompatible(tr, tc.keys); got != tc.want {
			t.Errorf("OrderCompatible(%v) = %v, want %v", tc.keys, got, tc.want)
		}
	}
}

func TestReorderForOrderSiblings(t *testing.T) {
	tr := ftree.New([]*ftree.Node{
		ftree.NewNode("B").Add(ftree.NewNode("A"), ftree.NewNode("C")),
	}, []relation.AttrSet{relation.NewAttrSet("A", "B"), relation.NewAttrSet("B", "C")})

	if OrderCompatible(tr, keysOf("B", "C")) {
		t.Fatal("precondition: B,C should need a reorder")
	}
	if !ReorderForOrder(tr, keysOf("B", "C")) {
		t.Fatal("ReorderForOrder failed on a sibling permutation")
	}
	if !OrderCompatible(tr, keysOf("B", "C")) {
		t.Fatal("tree is not order-compatible after reorder")
	}
	if tr.Roots[0].Children[0].Attrs[0] != "C" {
		t.Fatalf("C not moved to first child: %v", tr)
	}
	// A non-root first key cannot be fixed by reordering.
	if ReorderForOrder(tr, keysOf("A", "B")) {
		t.Fatal("ReorderForOrder claimed success for a non-root key")
	}
}

func TestReorderForOrderRootHop(t *testing.T) {
	// Forest of two independent leaves: any root order is reachable.
	mk := func() *ftree.T {
		return ftree.New([]*ftree.Node{ftree.NewNode("A"), ftree.NewNode("B")},
			[]relation.AttrSet{relation.NewAttrSet("A"), relation.NewAttrSet("B")})
	}
	tr := mk()
	if !ReorderForOrder(tr, keysOf("B", "A")) {
		t.Fatal("root hop over independent leaves failed")
	}
	if tr.Roots[0].Attrs[0] != "B" || tr.Roots[1].Attrs[0] != "A" {
		t.Fatalf("roots not reordered: %v", tr)
	}
	// A root with an unfinished subtree cannot hop.
	tr2 := ftree.New([]*ftree.Node{
		ftree.NewNode("A").Add(ftree.NewNode("C")), ftree.NewNode("B"),
	}, []relation.AttrSet{relation.NewAttrSet("A", "C"), relation.NewAttrSet("B")})
	if ReorderForOrder(tr2, keysOf("A", "B")) {
		t.Fatal("hop over an unfinished subtree must fail (C would precede B)")
	}
	// ...but a bare chain can.
	if !ReorderForOrder(tr2, keysOf("A", "C", "B")) {
		t.Fatal("bare-chain hop failed")
	}
}

func TestReorderForOrderSiblingContinuation(t *testing.T) {
	// Root B with leaf children [C, A]: after pinning A first, pre-order
	// continues with B's next child — (B, A, C) and (A, C) under a constant
	// root are both reachable by sibling reordering alone.
	mk := func(constRoot bool) *ftree.T {
		tr := ftree.New([]*ftree.Node{
			ftree.NewNode("B").Add(ftree.NewNode("C"), ftree.NewNode("A")),
		}, []relation.AttrSet{relation.NewAttrSet("A", "B"), relation.NewAttrSet("B", "C")})
		if constRoot {
			tr.Consts.Add("B")
		}
		return tr
	}
	tr := mk(false)
	if !ReorderForOrder(tr, keysOf("B", "A", "C")) || !OrderCompatible(tr, keysOf("B", "A", "C")) {
		t.Fatal("sibling continuation after a leaf key failed")
	}
	// The reviewer's shape: constant root, keys name only the siblings.
	tr = mk(true)
	if !ReorderForOrder(tr, keysOf("A", "C")) || !OrderCompatible(tr, keysOf("A", "C")) {
		t.Fatal("sibling continuation under a constant root failed")
	}
	// Deeper climb: B -> A -> D (leaf), then C as B's next child.
	tr2 := ftree.New([]*ftree.Node{
		ftree.NewNode("B").Add(ftree.NewNode("C"), ftree.NewNode("A").Add(ftree.NewNode("D"))),
	}, []relation.AttrSet{relation.NewAttrSet("A", "B", "D"), relation.NewAttrSet("B", "C")})
	if !ReorderForOrder(tr2, keysOf("B", "A", "D", "C")) || !OrderCompatible(tr2, keysOf("B", "A", "D", "C")) {
		t.Fatal("climb past an exhausted subtree failed")
	}
	// ...but climbing past an unfinished subtree must fail: D unvisited.
	tr3 := ftree.New([]*ftree.Node{
		ftree.NewNode("B").Add(ftree.NewNode("C"), ftree.NewNode("A").Add(ftree.NewNode("D"))),
	}, []relation.AttrSet{relation.NewAttrSet("A", "B", "D"), relation.NewAttrSet("B", "C")})
	if ReorderForOrder(tr3, keysOf("B", "A", "C")) {
		t.Fatal("climb over A's unvisited child D must fail (D precedes C in pre-order)")
	}
}

func TestReorderForOrderSkipsConstNodes(t *testing.T) {
	tr := ftree.New([]*ftree.Node{
		ftree.NewNode("A").Add(ftree.NewNode("B")),
	}, []relation.AttrSet{relation.NewAttrSet("A", "B")})
	tr.Consts.Add("A")
	if !ReorderForOrder(tr, keysOf("B")) {
		t.Fatal("constant root should be transparent to ordering")
	}
	if !OrderCompatible(tr, keysOf("B")) {
		t.Fatal("tree not order-compatible through the constant node")
	}
}

// Distinct: identity on engine-built representations (both forms), real
// dedup on duplicate-carrying ones, and a schema no-op.
func TestDistinctOp(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B"})
	r.Append(1, 2)
	r.Append(1, 3)
	r.Append(2, 2)
	tr := ftree.New([]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B"))},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")})
	f, err := frep.FromRelation(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	e := f.Encode()

	out, err := ApplyEnc(Distinct{}, e)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(e) {
		t.Fatal("Distinct changed an engine-built representation")
	}
	if err := (Distinct{}).Apply(f); err != nil {
		t.Fatal(err)
	}
	if !f.Encode().Equal(e) {
		t.Fatal("pointer-form Distinct changed an engine-built representation")
	}

	// Empty representations stay empty.
	empty := frep.NewEmptyEnc(tr.Clone())
	out, err = ApplyEnc(Distinct{}, empty)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsEmpty() {
		t.Fatal("Distinct broke the empty representation")
	}

	if err := (Distinct{}).ApplyTree(tr); err != nil {
		t.Fatalf("ApplyTree: %v", err)
	}
	if (Distinct{}).String() != "δ" {
		t.Fatal("unexpected operator rendering")
	}
}
