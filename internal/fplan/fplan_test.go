package fplan

import (
	"math/rand"
	"testing"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

func init() { Strict = true }

// --- fixtures -------------------------------------------------------------

// randRel builds a random relation over the given schema with values in
// [0, dom).
func randRel(rng *rand.Rand, name string, schema relation.Schema, n, dom int) *relation.Relation {
	r := relation.New(name, schema)
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, len(schema))
		for j := range t {
			t[j] = relation.Value(rng.Intn(dom))
		}
		r.AppendTuple(t)
	}
	r.Dedup()
	return r
}

// chainTree builds the f-tree A0 -> A1 -> ... over one relation schema.
func chainTree(attrs []relation.Attribute, deps []relation.AttrSet) *ftree.T {
	var root, cur *ftree.Node
	for _, a := range attrs {
		n := ftree.NewNode(a)
		if cur == nil {
			root = n
		} else {
			cur.Add(n)
		}
		cur = n
	}
	return ftree.New([]*ftree.Node{root}, deps)
}

func mustFromRelation(t *testing.T, tr *ftree.T, r *relation.Relation) *frep.FRep {
	t.Helper()
	f, err := frep.FromRelation(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func checkValid(t *testing.T, f *frep.FRep) {
	t.Helper()
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid representation: %v\ntree:\n%s", err, f.Tree)
	}
	if err := f.Tree.Validate(); err != nil {
		t.Fatalf("invalid tree: %v\n%s", err, f.Tree)
	}
}

// sameRelation compares the representation against a reference relation,
// aligning schemas.
func sameRelation(t *testing.T, f *frep.FRep, want *relation.Relation, msg string) {
	t.Helper()
	got := f.Relation("got")
	w := want.Project(got.Schema)
	if !got.Equal(w) {
		t.Fatalf("%s:\ngot:\n%s\nwant:\n%s\ntree:\n%s", msg, got, w, f.Tree)
	}
}

// --- swap -----------------------------------------------------------------

// TestSwapPreservesRelation: swapping any parent-child pair leaves the
// represented relation unchanged and matches the tree-level transform.
func TestSwapPreservesRelationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	attrs := []relation.Attribute{"A", "B", "C", "D"}
	deps := []relation.AttrSet{relation.NewAttrSet("A", "B", "C", "D")}
	for trial := 0; trial < 40; trial++ {
		r := randRel(rng, "R", relation.Schema(attrs), 1+rng.Intn(30), 3)
		if r.Cardinality() == 0 {
			continue
		}
		perm := rng.Perm(len(attrs))
		shuffled := make([]relation.Attribute, len(attrs))
		for i, p := range perm {
			shuffled[i] = attrs[p]
		}
		tr := chainTree(shuffled, deps)
		f := mustFromRelation(t, tr, r)
		// Swap a random adjacent pair on the chain.
		i := rng.Intn(len(shuffled) - 1)
		a, b := shuffled[i], shuffled[i+1]
		if err := (Swap{A: a, B: b}).Apply(f); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		checkValid(t, f)
		sameRelation(t, f, r, "swap changed the relation")
		// The node of b must now be the parent of the node of a.
		if f.Tree.ParentOf(f.Tree.NodeOf(a)) != f.Tree.NodeOf(b) {
			t.Fatalf("trial %d: swap did not exchange the nodes:\n%s", trial, f.Tree)
		}
	}
}

// TestSwapT1ToT2Grocery reproduces Example 8: the swap χ_{item,location}
// regroups the factorisation over T1 into the one over T2.
func TestSwapT1ToT2Grocery(t *testing.T) {
	q1, rels := groceryQ1(t)
	tr1 := groceryT1(rels)
	f := mustFromRelation(t, tr1, q1)
	if err := (Swap{A: "item", B: "location"}).Apply(f); err != nil {
		t.Fatal(err)
	}
	checkValid(t, f)
	// The post-swap tree is T2 up to sibling order, and the data must be
	// exactly the factorisation of Q1 over that tree.
	if f.Tree.Canonical() != groceryT2(rels).Canonical() {
		t.Fatalf("swap tree is not T2:\n%s", f.Tree)
	}
	want := mustFromRelation(t, f.Tree.Clone(), q1)
	if !f.Equal(want) {
		t.Fatalf("swap result differs from direct factorisation:\n%s\nvs\n%s", f, want)
	}
	if f.Size() != 22 {
		t.Fatalf("size after swap = %d, want 22", f.Size())
	}
}

// --- push-up / normalise ----------------------------------------------------

func TestNormalisePushesIndependentParts(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		// R(A,B) x S(C): over the chain A->B->C, C is independent.
		r := randRel(rng, "R", relation.Schema{"A", "B"}, 1+rng.Intn(15), 3)
		s := randRel(rng, "S", relation.Schema{"C"}, 1+rng.Intn(5), 5)
		if r.Cardinality() == 0 || s.Cardinality() == 0 {
			continue
		}
		full := r.Product(s)
		tr := chainTree([]relation.Attribute{"A", "B", "C"},
			[]relation.AttrSet{relation.NewAttrSet("A", "B"), relation.NewAttrSet("C")})
		f := mustFromRelation(t, tr, full)
		sizeBefore := f.Size()
		if err := (Normalise{}).Apply(f); err != nil {
			t.Fatal(err)
		}
		checkValid(t, f)
		if !f.Tree.IsNormalised() {
			t.Fatalf("trial %d: tree not normalised:\n%s", trial, f.Tree)
		}
		if f.Size() > sizeBefore {
			t.Fatalf("trial %d: normalisation grew the representation: %d -> %d",
				trial, sizeBefore, f.Size())
		}
		sameRelation(t, f, full, "normalisation changed the relation")
		// C must now be a root.
		if f.Tree.ParentOf(f.Tree.NodeOf("C")) != nil {
			t.Fatalf("trial %d: C not pushed to root:\n%s", trial, f.Tree)
		}
	}
}

// --- merge ------------------------------------------------------------------

// TestMergeIsJoin: merging root nodes of two independent factorisations
// computes the equality selection A = C on their product.
func TestMergeIsJoinRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		r := randRel(rng, "R", relation.Schema{"A", "B"}, 1+rng.Intn(20), 4)
		s := randRel(rng, "S", relation.Schema{"C", "D"}, 1+rng.Intn(20), 4)
		if r.Cardinality() == 0 || s.Cardinality() == 0 {
			continue
		}
		fr := mustFromRelation(t,
			chainTree([]relation.Attribute{"A", "B"}, nil), r)
		fs := mustFromRelation(t,
			chainTree([]relation.Attribute{"C", "D"}, nil), s)
		// Rebuild with proper dep sets for the product.
		prod, err := Product(fr, fs)
		if err != nil {
			t.Fatal(err)
		}
		prod.Tree.Rels = []relation.AttrSet{
			relation.NewAttrSet("A", "B"), relation.NewAttrSet("C", "D")}
		prod.Tree.Deps = []relation.AttrSet{
			relation.NewAttrSet("A", "B"), relation.NewAttrSet("C", "D")}
		if err := (Merge{A: "A", B: "C"}).Apply(prod); err != nil {
			t.Fatal(err)
		}
		checkValid(t, prod)
		want := r.Product(s).Select(func(tp relation.Tuple) bool { return tp[0] == tp[2] })
		if prod.IsEmpty() {
			if want.Cardinality() != 0 {
				t.Fatalf("trial %d: merge produced empty, expected %d tuples", trial, want.Cardinality())
			}
			continue
		}
		sameRelation(t, prod, want, "merge != selection A=C")
	}
}

// --- absorb -----------------------------------------------------------------

// TestAbsorbIsSelection: absorbing a descendant into an ancestor computes
// the equality selection between their attributes.
func TestAbsorbIsSelectionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	attrs := []relation.Attribute{"A", "B", "C"}
	deps := []relation.AttrSet{relation.NewAttrSet("A", "B", "C")}
	for trial := 0; trial < 40; trial++ {
		r := randRel(rng, "R", relation.Schema(attrs), 1+rng.Intn(30), 3)
		if r.Cardinality() == 0 {
			continue
		}
		tr := chainTree(attrs, deps)
		f := mustFromRelation(t, tr, r)
		if err := (Absorb{A: "A", B: "C"}).Apply(f); err != nil {
			t.Fatal(err)
		}
		checkValid(t, f)
		want := r.Select(func(tp relation.Tuple) bool { return tp[0] == tp[2] })
		if f.IsEmpty() {
			if want.Cardinality() != 0 {
				t.Fatalf("trial %d: absorb emptied, expected %d tuples", trial, want.Cardinality())
			}
			continue
		}
		sameRelation(t, f, want, "absorb != selection A=C")
		// A and C now share a node.
		if f.Tree.NodeOf("A") != f.Tree.NodeOf("C") {
			t.Fatalf("trial %d: A and C not merged:\n%s", trial, f.Tree)
		}
	}
}

// --- selection with constant -------------------------------------------------

func TestSelectConstRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	attrs := []relation.Attribute{"A", "B", "C"}
	deps := []relation.AttrSet{relation.NewAttrSet("A", "B", "C")}
	ops := []Cmp{Eq, Ne, Lt, Le, Gt, Ge}
	for trial := 0; trial < 60; trial++ {
		r := randRel(rng, "R", relation.Schema(attrs), 1+rng.Intn(30), 4)
		if r.Cardinality() == 0 {
			continue
		}
		tr := chainTree(attrs, deps)
		f := mustFromRelation(t, tr, r)
		target := attrs[rng.Intn(len(attrs))]
		cmp := ops[rng.Intn(len(ops))]
		c := relation.Value(rng.Intn(4))
		if err := (SelectConst{A: target, Op: cmp, C: c}).Apply(f); err != nil {
			t.Fatal(err)
		}
		checkValid(t, f)
		col := r.Schema.Index(target)
		want := r.Select(func(tp relation.Tuple) bool { return cmp.eval(tp[col], c) })
		if f.IsEmpty() {
			if want.Cardinality() != 0 {
				t.Fatalf("trial %d: σ emptied, expected %d tuples", trial, want.Cardinality())
			}
			continue
		}
		sameRelation(t, f, want, "selection with constant wrong")
	}
}

func TestSelectConstEqMakesRoot(t *testing.T) {
	// After σ_{B=c} on chain A->B->C, B is constant and floats to a root.
	r := relation.New("R", relation.Schema{"A", "B", "C"})
	r.Append(1, 5, 1)
	r.Append(1, 5, 2)
	r.Append(2, 5, 1)
	r.Append(2, 6, 1)
	tr := chainTree([]relation.Attribute{"A", "B", "C"},
		[]relation.AttrSet{relation.NewAttrSet("A", "B", "C")})
	f := mustFromRelation(t, tr, r)
	if err := (SelectConst{A: "B", Op: Eq, C: 5}).Apply(f); err != nil {
		t.Fatal(err)
	}
	checkValid(t, f)
	if f.Tree.ParentOf(f.Tree.NodeOf("B")) != nil {
		t.Fatalf("constant node B should be a root:\n%s", f.Tree)
	}
	want := r.Select(func(tp relation.Tuple) bool { return tp[1] == 5 })
	sameRelation(t, f, want, "σ_eq wrong")
}

// --- projection ----------------------------------------------------------------

func TestProjectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	attrs := []relation.Attribute{"A", "B", "C"}
	deps := []relation.AttrSet{relation.NewAttrSet("A", "B", "C")}
	for trial := 0; trial < 60; trial++ {
		r := randRel(rng, "R", relation.Schema(attrs), 1+rng.Intn(30), 3)
		if r.Cardinality() == 0 {
			continue
		}
		tr := chainTree(attrs, deps)
		f := mustFromRelation(t, tr, r)
		// Keep a random non-empty subset.
		var keep []relation.Attribute
		for _, a := range attrs {
			if rng.Intn(2) == 0 {
				keep = append(keep, a)
			}
		}
		if len(keep) == 0 {
			keep = []relation.Attribute{attrs[rng.Intn(3)]}
		}
		if err := (Project{Attrs: keep}).Apply(f); err != nil {
			t.Fatal(err)
		}
		checkValid(t, f)
		want := r.Project(keep)
		sameRelation(t, f, want, "projection wrong")
		// No all-hidden nodes may remain.
		for a := range f.Tree.Attrs() {
			if f.Tree.AllHidden(f.Tree.NodeOf(a)) {
				t.Fatalf("trial %d: all-hidden node for %q survived:\n%s", trial, a, f.Tree)
			}
		}
	}
}

// TestProjectInducedDependence reproduces the Section 3.4 pitfall: on the
// path A - B - C with relations {A,B}, {B,C}, projecting away B must keep A
// and C dependent (no flattening into independent roots) and must not
// produce duplicates.
func TestProjectInducedDependence(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B", "C"})
	// A=1 pairs with C=1 via B=1 and with C=2 via B=2; A=2 only with C=2.
	r.Append(1, 1, 1)
	r.Append(1, 2, 2)
	r.Append(2, 2, 2)
	tr := chainTree([]relation.Attribute{"A", "B", "C"},
		[]relation.AttrSet{relation.NewAttrSet("A", "B"), relation.NewAttrSet("B", "C")})
	f := mustFromRelation(t, tr, r)
	if err := (Project{Attrs: []relation.Attribute{"A", "C"}}).Apply(f); err != nil {
		t.Fatal(err)
	}
	checkValid(t, f)
	want := r.Project([]relation.Attribute{"A", "C"})
	sameRelation(t, f, want, "projection with induced dependence wrong")
	// A and C must still be on one path: a forest of {A} and {C} would
	// represent the cartesian product {1,2}x{1,2}, which is wrong.
	if len(f.Tree.Roots) != 1 {
		t.Fatalf("A and C flattened into independent roots:\n%s", f.Tree)
	}
}

// --- product ---------------------------------------------------------------------

func TestProductOperator(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := randRel(rng, "R", relation.Schema{"A", "B"}, 10, 3)
	s := randRel(rng, "S", relation.Schema{"C"}, 4, 5)
	fr := mustFromRelation(t, chainTree([]relation.Attribute{"A", "B"},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")}), r)
	fs := mustFromRelation(t, chainTree([]relation.Attribute{"C"},
		[]relation.AttrSet{relation.NewAttrSet("C")}), s)
	prod, err := Product(fr, fs)
	if err != nil {
		t.Fatal(err)
	}
	checkValid(t, prod)
	if prod.Size() != fr.Size()+fs.Size() {
		t.Fatalf("product size %d, want %d", prod.Size(), fr.Size()+fs.Size())
	}
	sameRelation(t, prod, r.Product(s), "product wrong")
	// Overlapping schemas must be rejected.
	if _, err := Product(fr, fr); err == nil {
		t.Fatal("product over overlapping schemas accepted")
	}
}

func TestProductWithEmpty(t *testing.T) {
	r := relation.New("R", relation.Schema{"A"})
	r.Append(1)
	e := relation.New("E", relation.Schema{"B"})
	fr := mustFromRelation(t, chainTree([]relation.Attribute{"A"}, nil), r)
	fe := mustFromRelation(t, chainTree([]relation.Attribute{"B"}, nil), e)
	prod, err := Product(fr, fe)
	if err != nil {
		t.Fatal(err)
	}
	if !prod.IsEmpty() || prod.Count() != 0 {
		t.Fatal("product with empty side should be empty")
	}
}

// --- plan simulation ----------------------------------------------------------------

func TestPlanSimulateTreeExample11(t *testing.T) {
	// The two plans of Example 11: costs 2 and 1 respectively.
	b := ftree.NewNode("B").Add(ftree.NewNode("C"))
	e := ftree.NewNode("E").Add(ftree.NewNode("F"))
	ad := ftree.NewNode("A", "D").Add(b, e)
	in := ftree.New([]*ftree.Node{ad}, []relation.AttrSet{
		relation.NewAttrSet("A", "B", "C"),
		relation.NewAttrSet("D", "E", "F"),
	})

	p1 := Plan{Ops: []Op{Swap{A: "A", B: "B"}, Absorb{A: "B", B: "F"}}}
	s1, err := p1.CostS(in)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != 2 {
		t.Fatalf("cost of plan 1 = %v, want 2", s1)
	}

	p2 := Plan{Ops: []Op{Swap{A: "E", B: "F"}, Merge{A: "B", B: "F"}}}
	s2, err := p2.CostS(in)
	if err != nil {
		t.Fatal(err)
	}
	if s2 != 1 {
		t.Fatalf("cost of plan 2 = %v, want 1", s2)
	}

	// Both plans produce trees with B and F merged.
	f1, _, _ := p1.SimulateTree(in)
	f2, _, _ := p2.SimulateTree(in)
	if f1.NodeOf("B") != f1.NodeOf("F") || f2.NodeOf("B") != f2.NodeOf("F") {
		t.Fatal("plans did not merge B and F")
	}
	if p2.String() != "χ[E,F] ; μ[B,F]" {
		t.Fatalf("plan rendering = %q", p2.String())
	}
}

// --- grocery fixtures shared by tests -----------------------------------------

func groceryQ1(t *testing.T) (*relation.Relation, []relation.AttrSet) {
	t.Helper()
	d := relation.NewDict()
	e := d.Encode
	type pair [2]string
	orders := []pair{{"01", "Milk"}, {"01", "Cheese"}, {"02", "Melon"}, {"03", "Cheese"}, {"03", "Melon"}}
	store := []pair{{"Istanbul", "Milk"}, {"Istanbul", "Cheese"}, {"Istanbul", "Melon"},
		{"Izmir", "Milk"}, {"Antalya", "Milk"}, {"Antalya", "Cheese"}}
	disp := []pair{{"Adnan", "Istanbul"}, {"Adnan", "Izmir"}, {"Yasemin", "Istanbul"}, {"Volkan", "Antalya"}}
	q1 := relation.New("Q1", relation.Schema{"item", "oid", "location", "dispatcher"})
	for _, o := range orders {
		for _, s := range store {
			if o[1] != s[1] {
				continue
			}
			for _, dd := range disp {
				if dd[1] != s[0] {
					continue
				}
				q1.Append(e(o[1]), e(o[0]), e(s[0]), e(dd[0]))
			}
		}
	}
	q1.Dedup()
	rels := []relation.AttrSet{
		relation.NewAttrSet("oid", "item"),
		relation.NewAttrSet("location", "item"),
		relation.NewAttrSet("dispatcher", "location"),
	}
	return q1, rels
}

func groceryT1(rels []relation.AttrSet) *ftree.T {
	item := ftree.NewNode("item")
	item.Add(ftree.NewNode("oid"), ftree.NewNode("location").Add(ftree.NewNode("dispatcher")))
	return ftree.New([]*ftree.Node{item}, rels)
}

func groceryT2(rels []relation.AttrSet) *ftree.T {
	loc := ftree.NewNode("location")
	loc.Add(ftree.NewNode("item").Add(ftree.NewNode("oid")), ftree.NewNode("dispatcher"))
	return ftree.New([]*ftree.Node{loc}, rels)
}
