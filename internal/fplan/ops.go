package fplan

import (
	"container/heap"
	"fmt"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// Op is one f-plan operator. ApplyTree performs the schema-level transform
// only (used by the optimisers to cost candidate plans without touching
// data); Apply performs the full transform on a representation, keeping its
// tree and data in sync.
type Op interface {
	fmt.Stringer
	ApplyTree(t *ftree.T) error
	Apply(f *frep.FRep) error
}

// ---------------------------------------------------------------- push-up ψ

// PushUp is ψ_B (Section 3.1): the node of attribute B, independent of its
// parent, moves one level up; the corresponding unions are factored out of
// their enclosing union (all copies are equal by independence).
type PushUp struct {
	B relation.Attribute
}

func (o PushUp) String() string { return fmt.Sprintf("ψ[%s]", o.B) }

// ApplyTree implements Op.
func (o PushUp) ApplyTree(t *ftree.T) error { return t.PushUp(o.B) }

// Apply implements Op.
func (o PushUp) Apply(f *frep.FRep) error {
	nb, err := attrNode(f.Tree, o.B)
	if err != nil {
		return err
	}
	na := f.Tree.ParentOf(nb)
	if na == nil {
		return fmt.Errorf("fplan: push-up: node of %q is a root", o.B)
	}
	if f.Tree.SubtreeDependsOnNode(nb, na) {
		return fmt.Errorf("fplan: push-up of %q violates the path constraint", o.B)
	}
	bi := childIndex(na, nb)
	gp := f.Tree.ParentOf(na)
	var checkErr error
	rewriteProducts(f, gp, func(prod *[]*frep.Union) bool {
		ai := -1
		for i, n := range nodesOfProduct(f.Tree, gp) {
			if n == na {
				ai = i
				break
			}
		}
		ua := (*prod)[ai]
		var bu *frep.Union
		for ei := range ua.Entries {
			e := &ua.Entries[ei]
			cb := e.Children[bi]
			if bu == nil {
				bu = cb
			} else if Strict && checkErr == nil && !unionDataEqual(bu, cb) {
				checkErr = fmt.Errorf("fplan: push-up of %q factored out unequal copies", o.B)
			}
			e.Children = removeSlot(e.Children, bi)
		}
		if bu == nil {
			bu = &frep.Union{} // empty relation at a root
		}
		*prod = append(*prod, bu)
		return true
	})
	if checkErr != nil {
		return checkErr
	}
	return f.Tree.PushUp(o.B)
}

// nodesOfProduct returns the tree nodes whose unions make up the products
// of parent (parent == nil: the roots).
func nodesOfProduct(t *ftree.T, parent *ftree.Node) []*ftree.Node {
	if parent == nil {
		return t.Roots
	}
	return parent.Children
}

// ------------------------------------------------------------ normalise η

// Normalise is η: push-ups applied until no node can move (Definition 3).
type Normalise struct{}

func (Normalise) String() string { return "η" }

// ApplyTree implements Op.
func (Normalise) ApplyTree(t *ftree.T) error {
	t.NormaliseSteps()
	return nil
}

// Apply implements Op.
func (Normalise) Apply(f *frep.FRep) error {
	for {
		// Find the next push-up on a scratch clone of the tree, then apply
		// it for real (tree and data together).
		probe := f.Tree.Clone()
		steps := probe.NormaliseSteps()
		if len(steps) == 0 {
			return nil
		}
		if err := (PushUp{B: steps[0]}).Apply(f); err != nil {
			return err
		}
	}
}

// ---------------------------------------------------------------- swap χ

// Swap is χ_{A,B} (Figure 4): node B, child of node A, is promoted above A;
// the representation is regrouped from "by A then B" to "by B then A" with
// a priority queue, preserving value order.
type Swap struct {
	A, B relation.Attribute
}

func (o Swap) String() string { return fmt.Sprintf("χ[%s,%s]", o.A, o.B) }

// ApplyTree implements Op.
func (o Swap) ApplyTree(t *ftree.T) error { return t.Swap(o.A, o.B) }

// Apply implements Op.
func (o Swap) Apply(f *frep.FRep) error {
	split, err := f.Tree.PlanSwap(o.A, o.B)
	if err != nil {
		return err
	}
	na, _ := attrNode(f.Tree, o.A)
	nb, _ := attrNode(f.Tree, o.B)
	bi := childIndex(na, nb)
	gp := f.Tree.ParentOf(na)
	rewriteProducts(f, gp, func(prod *[]*frep.Union) bool {
		ai := -1
		for i, n := range nodesOfProduct(f.Tree, gp) {
			if n == na {
				ai = i
				break
			}
		}
		(*prod)[ai] = swapUnion((*prod)[ai], bi, split)
		return true
	})
	return f.Tree.Swap(o.A, o.B)
}

// swapItem is a priority-queue element: entry aIdx of the outer union,
// positioned at bPos within its B-child union.
type swapItem struct {
	bVal relation.Value
	aIdx int
	bPos int
}

type swapHeap []swapItem

func (h swapHeap) Len() int { return len(h) }
func (h swapHeap) Less(i, j int) bool {
	if h[i].bVal != h[j].bVal {
		return h[i].bVal < h[j].bVal
	}
	return h[i].aIdx < h[j].aIdx
}
func (h swapHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *swapHeap) Push(x interface{}) { *h = append(*h, x.(swapItem)) }
func (h *swapHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// swapUnion implements the algorithm of Figure 4 on a single union over A.
// bi is the child slot of B; split partitions B's child slots into the
// A-independent ones (stay with B) and the A-dependent ones (move under A).
//
// Output layout (must match ftree.Swap): the new B union's entries carry
// children [independent B-children..., A-union]; each inner A entry carries
// [A-children except B..., dependent B-children...].
func swapUnion(ua *frep.Union, bi int, split ftree.SwapSplit) *frep.Union {
	h := make(swapHeap, 0, len(ua.Entries))
	for aIdx, e := range ua.Entries {
		ub := e.Children[bi]
		h = append(h, swapItem{bVal: ub.Entries[0].Val, aIdx: aIdx, bPos: 0})
	}
	heap.Init(&h)
	out := &frep.Union{}
	for len(h) > 0 {
		bmin := h[0].bVal
		var fb []*frep.Union
		va := &frep.Union{}
		for len(h) > 0 && h[0].bVal == bmin {
			it := heap.Pop(&h).(swapItem)
			ea := &ua.Entries[it.aIdx]
			ub := ea.Children[bi]
			eb := &ub.Entries[it.bPos]
			if fb == nil {
				fb = make([]*frep.Union, 0, len(split.Indep)+1)
				for _, t := range split.Indep {
					fb = append(fb, eb.Children[t])
				}
			}
			children := make([]*frep.Union, 0, len(ea.Children)-1+len(split.Dep))
			for j, c := range ea.Children {
				if j != bi {
					children = append(children, c)
				}
			}
			for _, t := range split.Dep {
				children = append(children, eb.Children[t])
			}
			va.Entries = append(va.Entries, frep.Entry{Val: ea.Val, Children: children})
			if it.bPos+1 < len(ub.Entries) {
				heap.Push(&h, swapItem{bVal: ub.Entries[it.bPos+1].Val, aIdx: it.aIdx, bPos: it.bPos + 1})
			}
		}
		out.Entries = append(out.Entries, frep.Entry{Val: bmin, Children: append(fb, va)})
	}
	return out
}

// ---------------------------------------------------------------- merge μ

// Merge is μ_{A,B} (Figure 3(c)): the sibling nodes of A and B are joined
// by a sort-merge over their union values; the merged node keeps A's
// children followed by B's children.
type Merge struct {
	A, B relation.Attribute
}

func (o Merge) String() string { return fmt.Sprintf("μ[%s,%s]", o.A, o.B) }

// ApplyTree implements Op.
func (o Merge) ApplyTree(t *ftree.T) error { return t.Merge(o.A, o.B) }

// Apply implements Op.
func (o Merge) Apply(f *frep.FRep) error {
	if !f.Tree.AreSiblings(o.A, o.B) {
		return fmt.Errorf("fplan: merge: nodes of %q and %q are not siblings", o.A, o.B)
	}
	na, _ := attrNode(f.Tree, o.A)
	nb, _ := attrNode(f.Tree, o.B)
	parent := f.Tree.ParentOf(na)
	nodes := nodesOfProduct(f.Tree, parent)
	ai, bi := -1, -1
	for i, n := range nodes {
		if n == na {
			ai = i
		}
		if n == nb {
			bi = i
		}
	}
	rewriteProducts(f, parent, func(prod *[]*frep.Union) bool {
		merged := mergeUnions((*prod)[ai], (*prod)[bi])
		(*prod)[ai] = merged
		*prod = removeSlot(*prod, bi)
		return len(merged.Entries) > 0
	})
	return f.Tree.Merge(o.A, o.B)
}

// mergeUnions sort-merge joins two unions on their values; joined entries
// concatenate the children of both sides.
func mergeUnions(ua, ub *frep.Union) *frep.Union {
	out := &frep.Union{}
	i, j := 0, 0
	for i < len(ua.Entries) && j < len(ub.Entries) {
		ea, eb := &ua.Entries[i], &ub.Entries[j]
		switch {
		case ea.Val < eb.Val:
			i++
		case ea.Val > eb.Val:
			j++
		default:
			children := make([]*frep.Union, 0, len(ea.Children)+len(eb.Children))
			children = append(children, ea.Children...)
			children = append(children, eb.Children...)
			out.Entries = append(out.Entries, frep.Entry{Val: ea.Val, Children: children})
			i++
			j++
		}
	}
	return out
}

// ---------------------------------------------------------------- absorb α

// Absorb is α_{A,B} (Figure 3(d)): node B, a descendant of node A, is
// restricted to A's value on every branch, its labels join A's class, its
// children splice into its parent, and the tree is re-normalised.
type Absorb struct {
	A, B relation.Attribute
}

func (o Absorb) String() string { return fmt.Sprintf("α[%s,%s]", o.A, o.B) }

// ApplyTree implements Op.
func (o Absorb) ApplyTree(t *ftree.T) error {
	if err := t.AbsorbSplice(o.A, o.B); err != nil {
		return err
	}
	t.NormaliseSteps()
	return nil
}

// Apply implements Op.
func (o Absorb) Apply(f *frep.FRep) error {
	na, err := attrNode(f.Tree, o.A)
	if err != nil {
		return err
	}
	nb, err := attrNode(f.Tree, o.B)
	if err != nil {
		return err
	}
	if !f.Tree.IsAncestor(na, nb) {
		return fmt.Errorf("fplan: absorb: node of %q is not an ancestor of node of %q", o.A, o.B)
	}
	// Slot chain from A down to B: slots[i] is the child index leading from
	// the i-th node on the A→B path to the next one.
	full := f.Tree.PathTo(nb)
	var chain []*ftree.Node
	for i, n := range full {
		if n == na {
			chain = full[i:]
			break
		}
	}
	slots := make([]int, len(chain)-1)
	for i := 0; i+1 < len(chain); i++ {
		slots[i] = childIndex(chain[i], chain[i+1])
	}
	// Step 1: under each A-entry with value a, restrict the B-unions to the
	// single entry with value a; emptiness cascades up to the A-entry.
	rewriteUnions(f, na, func(ua *frep.Union) bool {
		out := ua.Entries[:0]
		for i := range ua.Entries {
			e := ua.Entries[i]
			if restrictTo(e.Children[slots[0]], 1, chain, slots, e.Val) {
				out = append(out, e)
			}
		}
		ua.Entries = out
		return len(out) > 0
	})
	if f.IsEmpty() {
		f.Empty = true
		// Still perform the structural change so the tree matches the plan.
		return o.ApplyTree(f.Tree)
	}
	// Step 2: splice every B-union (now exactly one entry each) into its
	// parent product, matching ftree.AbsorbSplice's layout.
	p := f.Tree.ParentOf(nb)
	bi := childIndex(p, nb)
	rewriteProducts(f, p, func(prod *[]*frep.Union) bool {
		bu := (*prod)[bi]
		rest := append([]*frep.Union(nil), (*prod)[bi+1:]...)
		np := append((*prod)[:bi:bi], bu.Entries[0].Children...)
		*prod = append(np, rest...)
		return true
	})
	if err := f.Tree.AbsorbSplice(o.A, o.B); err != nil {
		return err
	}
	// Step 3: re-normalise tree and data together.
	return Normalise{}.Apply(f)
}

// restrictTo walks u (the union of chain[depth]) down the A→B slot chain
// and keeps only B-entries with value v (a binary search, since entries are
// ordered). Unions that empty on the way kill their enclosing entries; it
// returns false if u itself empties.
func restrictTo(u *frep.Union, depth int, chain []*ftree.Node, slots []int, v relation.Value) bool {
	if depth == len(chain)-1 {
		// u is a union over B: keep the single entry with value v, if any.
		lo, hi := 0, len(u.Entries)
		for lo < hi {
			mid := (lo + hi) / 2
			if u.Entries[mid].Val < v {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(u.Entries) && u.Entries[lo].Val == v {
			u.Entries = u.Entries[lo : lo+1]
			return true
		}
		u.Entries = nil
		return false
	}
	si := slots[depth]
	out := u.Entries[:0]
	for i := range u.Entries {
		e := u.Entries[i]
		if restrictTo(e.Children[si], depth+1, chain, slots, v) {
			out = append(out, e)
		}
	}
	u.Entries = out
	return len(out) > 0
}
