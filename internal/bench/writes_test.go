package bench

import (
	"math/rand"
	"testing"
)

// TestExperiment10Writes: the sweep runs end to end and the built-in
// merged-vs-rebuilt parity checks pass at a small scale.
func TestExperiment10Writes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	rows, err := Experiment10Writes(rng, Exp10Config{Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("expected 4 delta fractions, got %d", len(rows))
	}
	for _, r := range rows {
		if r.DeltaRows < 1 || r.Tuples <= 0 {
			t.Fatalf("degenerate row: %+v", r)
		}
	}
}

// TestExperiment10Mixed: the mixed workload keeps the plan cache hot —
// writes must not evict, so a 90/10 read/write mix stays above 90% hits.
func TestExperiment10Mixed(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	row, err := Experiment10Mixed(rng, Exp10Config{Scale: 2, Ops: 200})
	if err != nil {
		t.Fatal(err)
	}
	if row.CacheHitRate <= 0.9 {
		t.Fatalf("read-mostly cache hit rate %.3f <= 0.9", row.CacheHitRate)
	}
	if row.Writes == 0 || row.Writes >= row.Ops {
		t.Fatalf("write mix off: %d writes of %d ops", row.Writes, row.Ops)
	}
}

// BenchmarkInsertBatch measures committing a 100-row batch into the delta
// store (one version bump, no statement refresh).
func BenchmarkInsertBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	db, _ := exp9Retailer(rng, 4)
	next := 500*4 + 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := make([][]interface{}, 100)
		for j := range batch {
			batch[j] = []interface{}{next, rng.Intn(50) + 1}
			next++
		}
		if err := db.InsertBatch("Orders", batch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMergeDelta measures the incremental statement refresh after a
// small batch insert: sorted delta merge into the pinned inputs plus the
// arena-level enc merge, against a warm prepared statement.
func BenchmarkMergeDelta(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	db, join := exp9Retailer(rng, 4)
	st, err := db.Prepare(join...)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := st.Exec(); err != nil {
		b.Fatal(err)
	}
	next := 500*4 + 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		batch := make([][]interface{}, 20)
		for j := range batch {
			batch[j] = []interface{}{next, rng.Intn(50) + 1}
			next++
		}
		if err := db.InsertBatch("Orders", batch); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		res, err := st.Exec()
		if err != nil {
			b.Fatal(err)
		}
		res.Count()
	}
}
