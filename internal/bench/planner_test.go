package bench

import (
	"math/rand"
	"testing"
)

// TestExperiment13Planner runs the planning-tier experiment end to end at
// small iteration counts: parity and the cost-ratio bar are enforced inside
// the experiment, so a pass here is the differential guarantee CI relies on.
func TestExperiment13Planner(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	row, err := Experiment13Retailer(rng, Exp13Config{Scale: 1, Iters: 3})
	if err != nil {
		t.Fatal(err)
	}
	if row.Tuples == 0 {
		t.Fatal("retailer join empty")
	}
	if row.GreedyUS <= 0 || row.ExhaustiveUS <= 0 {
		t.Fatalf("timings missing: %+v", row)
	}
	for _, length := range []int{4, 6} {
		row, err := Experiment13Chain(rng, Exp13Config{Scale: length, Iters: 3})
		if err != nil {
			t.Fatal(err)
		}
		if row.CostRatio > exp13MaxCostRatio {
			t.Fatalf("chain %d cost ratio %.3f", length, row.CostRatio)
		}
	}
}
