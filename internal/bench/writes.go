package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Exp10Row is one point of Experiment 10: write throughput of the mutation
// subsystem. A prepared join statement holds a warm encoded representation;
// a delta batch of the given fraction is committed through InsertBatch and
// the statement's next execution folds it in incrementally (sorted snapshot
// merge + arena-level enc merge). The rebuild leg answers the same
// post-delta data with a fresh statement — snapshot, dedup, path sort and
// the full morsel-parallel build — which is exactly the compaction
// fallback. Both legs must agree on the result count before timings are
// reported.
type Exp10Row struct {
	Workload  string
	Scale     int
	Frac      float64 // delta size as a fraction of the mutated relation
	BaseRows  int     // tuples in the mutated relation before the delta
	DeltaRows int
	Tuples    int64   // result tuples after the delta
	InsertMS  float64 // committing the delta batch (one version bump)
	MergeMS   float64 // incremental refresh: delta merge + enc patch + count
	RebuildMS float64 // fresh prepare + full parallel build + count
	Speedup   float64 // RebuildMS / (InsertMS + MergeMS)
}

// Exp10Mixed summarises the read-mostly mixed workload leg: per-operation
// latency percentiles with ~10% writes interleaved into cached reads, and
// the plan-cache hit rate across the run (writes never evict, so a
// read-mostly workload must stay far above 90%).
type Exp10Mixed struct {
	Ops          int
	Writes       int
	ReadP50MS    float64
	ReadP99MS    float64
	WriteP50MS   float64
	CacheHitRate float64
}

// Exp10Config parameterises Experiment 10.
type Exp10Config struct {
	Scale int
	Fracs []float64 // delta fractions to sweep (default 0.01, 0.05, 0.10, 0.25)
	Ops   int       // mixed-workload operations (default 300)
}

// Experiment10Writes sweeps the delta fractions: one batch insert into the
// retailer join's Orders relation per fraction, incremental merge vs full
// rebuild on identical post-delta data.
func Experiment10Writes(rng *rand.Rand, cfg Exp10Config) ([]Exp10Row, error) {
	fracs := cfg.Fracs
	if len(fracs) == 0 {
		fracs = []float64{0.01, 0.05, 0.10, 0.25}
	}
	rows := make([]Exp10Row, 0, len(fracs))
	for _, frac := range fracs {
		db, join := exp9Retailer(rng, cfg.Scale)
		base := 500 * cfg.Scale
		st, err := db.Prepare(join...)
		if err != nil {
			return rows, err
		}
		warm, err := st.Exec()
		if err != nil {
			return rows, err
		}
		warm.Count() // force the cached pre-projection build

		n := int(float64(base) * frac)
		if n < 1 {
			n = 1
		}
		batch := make([][]interface{}, n)
		for i := range batch {
			batch[i] = []interface{}{base + i + 1, rng.Intn(50) + 1}
		}
		row := Exp10Row{Workload: "retailer", Scale: cfg.Scale, Frac: frac, BaseRows: base, DeltaRows: n}

		start := time.Now()
		if err := db.InsertBatch("Orders", batch); err != nil {
			return rows, err
		}
		row.InsertMS = ms(start)

		start = time.Now()
		merged, err := st.Exec()
		if err != nil {
			return rows, err
		}
		row.Tuples = merged.Count()
		row.MergeMS = ms(start)

		start = time.Now()
		fresh, err := db.Prepare(join...)
		if err != nil {
			return rows, err
		}
		rebuilt, err := fresh.Exec()
		if err != nil {
			return rows, err
		}
		rebuiltCount := rebuilt.Count()
		row.RebuildMS = ms(start)

		if row.Tuples != rebuiltCount {
			return rows, fmt.Errorf("bench: exp10 frac %.2f: merged count %d != rebuilt count %d",
				frac, row.Tuples, rebuiltCount)
		}
		if inc := row.InsertMS + row.MergeMS; inc > 0 {
			row.Speedup = row.RebuildMS / inc
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Experiment10Mixed interleaves cached reads with ~10% batch writes and
// reports per-operation latency percentiles and the plan-cache hit rate.
func Experiment10Mixed(rng *rand.Rand, cfg Exp10Config) (Exp10Mixed, error) {
	ops := cfg.Ops
	if ops <= 0 {
		ops = 300
	}
	db, join := exp9Retailer(rng, cfg.Scale)
	if _, err := db.Query(join...); err != nil { // populate the plan cache
		return Exp10Mixed{}, err
	}
	var reads, writes []float64
	next := 500*cfg.Scale + 1
	for i := 0; i < ops; i++ {
		if i%10 == 9 {
			batch := make([][]interface{}, 5)
			for j := range batch {
				batch[j] = []interface{}{next, rng.Intn(50) + 1}
				next++
			}
			start := time.Now()
			if err := db.InsertBatch("Orders", batch); err != nil {
				return Exp10Mixed{}, err
			}
			writes = append(writes, ms(start))
			continue
		}
		start := time.Now()
		res, err := db.Query(join...)
		if err != nil {
			return Exp10Mixed{}, err
		}
		res.Count()
		reads = append(reads, ms(start))
	}
	s := db.CacheStats()
	row := Exp10Mixed{
		Ops:        ops,
		Writes:     len(writes),
		ReadP50MS:  percentile(reads, 0.50),
		ReadP99MS:  percentile(reads, 0.99),
		WriteP50MS: percentile(writes, 0.50),
	}
	if total := s.Hits + s.Misses; total > 0 {
		row.CacheHitRate = float64(s.Hits) / float64(total)
	}
	return row, nil
}

// percentile returns the p-quantile (nearest-rank) of the samples.
func percentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	i := int(p * float64(len(s)-1))
	return s[i]
}
