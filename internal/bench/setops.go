package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	fdb "repro"
	"repro/internal/frep"
	"repro/internal/rdb"
	"repro/internal/relation"
)

// Exp14Row is one point of Experiment 14: native set algebra over the
// encoded representations (the structural two-cursor merge of UnionEnc and
// friends) against the flat baseline that enumerates both legs and runs the
// hash-based set operation over materialised tuples. The legs are two
// overlapping range selections of the retailer join, so the merge exercises
// both shared and leg-private structure. Before timings are reported the
// factorised result is enumerated and compared tuple-for-tuple against the
// flat mirror — a failed parity check is a hard error, not a data point.
type Exp14Row struct {
	Op       string
	Scale    int
	TuplesA  int64   // flat tuples of leg A (oid below the upper cut)
	TuplesB  int64   // flat tuples of leg B (oid above the lower cut)
	Tuples   int64   // flat tuples of the set-operation result
	FRepSize int64   // singletons in the factorised result
	BuildMS  float64 // executing the two legs (shared by both sides)
	FactMS   float64 // factorised structural merge
	FlatMS   float64 // flat hash-based baseline over materialised legs
	Speedup  float64 // FlatMS / FactMS
}

// Exp14Config parameterises one Experiment 14 measurement.
type Exp14Config struct {
	Scale int
}

// exp14MinSpeedup is the performance bar the experiment enforces once the
// workload is large enough for timings to dominate noise: at retailer scale
// >= 4 the structural merge must beat the flat baseline.
const exp14MinSpeedup = 1.0

// Experiment14Retailer builds the scaled retailer join, carves two
// overlapping legs out of it with range selections on Orders.oid (leg A
// keeps the lower 70%, leg B the upper 70%, so 40% of oids land in both),
// and measures every set operation both natively and flat.
func Experiment14Retailer(rng *rand.Rand, cfg Exp14Config) ([]Exp14Row, error) {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	db, join := exp9Retailer(rng, scale)
	legA := append(join[:len(join):len(join)], fdb.Cmp("Orders.oid", fdb.LT, 350*scale))
	legB := append(join[:len(join):len(join)], fdb.Cmp("Orders.oid", fdb.GT, 150*scale))

	start := time.Now()
	resA, err := db.Query(legA...)
	if err != nil {
		return nil, err
	}
	resB, err := db.Query(legB...)
	if err != nil {
		return nil, err
	}
	buildMS := ms(start)

	// The baseline starts from materialised legs — a flat engine would hold
	// flat results already — so the enumeration is not part of its timing.
	relA := flatOf("A", resA)
	relB := flatOf("B", resB)

	ops := []struct {
		name string
		fact func(*fdb.Result, *fdb.Result) (*fdb.Result, error)
		flat func(*relation.Relation, *relation.Relation) (*relation.Relation, error)
	}{
		{"union", (*fdb.Result).Union, rdb.Union},
		{"union_all", (*fdb.Result).UnionAll, rdb.UnionAll},
		{"except", (*fdb.Result).Except, rdb.Except},
		{"intersect", (*fdb.Result).Intersect, rdb.Intersect},
	}
	var rows []Exp14Row
	for _, op := range ops {
		row := Exp14Row{
			Op: op.name, Scale: scale,
			TuplesA: resA.Count(), TuplesB: resB.Count(), BuildMS: buildMS,
		}
		start = time.Now()
		fres, err := op.fact(resA, resB)
		if err != nil {
			return rows, err
		}
		row.FactMS = ms(start)
		row.Tuples = fres.Count()
		row.FRepSize = int64(fres.Size())

		start = time.Now()
		want, err := op.flat(relA, relB)
		if err != nil {
			return rows, err
		}
		row.FlatMS = ms(start)
		if row.FactMS > 0 {
			row.Speedup = row.FlatMS / row.FactMS
		}

		if err := exp14Parity(op.name, scale, fres, want); err != nil {
			return rows, err
		}
		if scale >= 4 && row.Speedup < exp14MinSpeedup {
			return rows, fmt.Errorf("bench: exp14 %s/%d: factorised merge %.3fms is not faster than flat %.3fms",
				op.name, scale, row.FactMS, row.FlatMS)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// flatOf materialises a result into a flat relation carrying its schema.
func flatOf(name string, res *fdb.Result) *relation.Relation {
	var schema relation.Schema
	for _, a := range res.Schema() {
		schema = append(schema, relation.Attribute(a))
	}
	r := relation.New(name, schema)
	it := res.Iter()
	for {
		t, ok := it.Next()
		if !ok {
			return r
		}
		r.AppendTuple(t.Clone())
	}
}

// exp14Parity compares the factorised set-operation result against its flat
// mirror: count, then every tuple position after projecting the mirror into
// the factorised column order and sorting both sides with the deterministic
// comparator (duplicates survive, so union-all bags compare exactly).
func exp14Parity(op string, scale int, fres *fdb.Result, want *relation.Relation) error {
	if fres.Count() != int64(len(want.Tuples)) {
		return fmt.Errorf("bench: exp14 %s/%d: factorised %d tuples, flat %d",
			op, scale, fres.Count(), len(want.Tuples))
	}
	var fSchema relation.Schema
	for _, a := range fres.Schema() {
		fSchema = append(fSchema, relation.Attribute(a))
	}
	got := drain(fres.Iter())
	ref := project(want.Tuples, want.Schema, fSchema)
	cmp := frep.TupleCompare(fSchema, nil, nil)
	sort.SliceStable(got, func(i, j int) bool { return cmp(got[i], got[j]) < 0 })
	sort.SliceStable(ref, func(i, j int) bool { return cmp(ref[i], ref[j]) < 0 })
	for i := range got {
		if got[i].Compare(ref[i]) != 0 {
			return fmt.Errorf("bench: exp14 %s/%d: results diverge at %d: factorised %v, flat %v",
				op, scale, i, got[i], ref[i])
		}
	}
	return nil
}
