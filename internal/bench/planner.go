package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	fdb "repro"
	"repro/internal/core"
	"repro/internal/frep"
	"repro/internal/opt"
	"repro/internal/relation"
)

// Exp13Row is one point of Experiment 13: cold planning latency through the
// greedy statistics-free tier against the exhaustive branch-and-bound
// search, on identical workloads. The timed legs call the two planners
// directly on the workload's attribute classes (the way Experiments 1 and 2
// time the optimiser), so data-dependent Prepare work — snapshotting,
// sorting — doesn't mask the search. Before any timing is reported, both
// tiers' plans are executed through the public API with the planner mode
// forced, and their flat results compared (modulo tuple and column order —
// the trees differ); the greedy tree's cost s(T) is reported next to the
// exhaustive optimum and must stay within exp13MaxCostRatio of it.
type Exp13Row struct {
	Workload     string
	Scale        int
	Tuples       int64   // flat tuples of the join result
	GreedyUS     float64 // mean cold planning latency, greedy tier (µs)
	ExhaustiveUS float64 // mean cold planning latency, exhaustive search (µs)
	Speedup      float64 // ExhaustiveUS / GreedyUS
	GreedyCost   float64 // s(T) of the greedy tree
	OptimalCost  float64 // s(T) of the exhaustive tree
	CostRatio    float64 // GreedyCost / OptimalCost
}

// Exp13Config parameterises one Experiment 13 measurement.
type Exp13Config struct {
	Scale int
	Iters int // cold Prepare repetitions per tier (default 30)
}

// exp13MaxCostRatio is the plan-quality bar the experiment enforces on its
// workloads: the greedy tree may cost at most 15% more than the optimum.
const exp13MaxCostRatio = 1.15

// Experiment13Retailer: the three-relation retailer join — the OLTP-shaped
// case where greedy planning should land on the optimal tree outright.
func Experiment13Retailer(rng *rand.Rand, cfg Exp13Config) (Exp13Row, error) {
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1
	}
	db, join := exp9Retailer(rng, scale)
	q := &core.Query{
		Relations: []*relation.Relation{
			relation.New("Orders", relation.Schema{"Orders.oid", "Orders.item"}),
			relation.New("Stock", relation.Schema{"Stock.location", "Stock.item"}),
			relation.New("Disp", relation.Schema{"Disp.dispatcher", "Disp.location"}),
		},
		Equalities: []core.Equality{
			{A: "Orders.item", B: "Stock.item"},
			{A: "Stock.location", B: "Disp.location"},
		},
	}
	return experiment13("retailer", cfg, db, join, q)
}

// Experiment13Chain: the length-n chain join of Example 6 — the regime
// where the exhaustive search's exponential blowup shows while the greedy
// tier stays polynomial.
func Experiment13Chain(rng *rand.Rand, cfg Exp13Config) (Exp13Row, error) {
	db, join := exp13Chain(rng, cfg.Scale)
	q := &core.Query{}
	for i := 1; i <= cfg.Scale; i++ {
		name := fmt.Sprintf("R%d", i)
		q.Relations = append(q.Relations, relation.New(name,
			relation.Schema{relation.Attribute(name + ".A"), relation.Attribute(name + ".B")}))
	}
	for i := 1; i < cfg.Scale; i++ {
		q.Equalities = append(q.Equalities, core.Equality{
			A: relation.Attribute(fmt.Sprintf("R%d.B", i)),
			B: relation.Attribute(fmt.Sprintf("R%d.A", i+1)),
		})
	}
	return experiment13("chain", cfg, db, join, q)
}

// exp13Chain is exp9Chain at planner scale: the same query shape over 30
// tuples per relation, so the parity executions stay cheap.
func exp13Chain(rng *rand.Rand, length int) (*fdb.DB, []fdb.Clause) {
	db := fdb.New()
	var from []string
	for i := 1; i <= length; i++ {
		name := fmt.Sprintf("R%d", i)
		db.MustCreate(name, "A", "B")
		for j := 0; j < 30; j++ {
			db.MustInsert(name, rng.Intn(10)+1, rng.Intn(10)+1)
		}
		from = append(from, name)
	}
	clauses := []fdb.Clause{fdb.From(from...)}
	for i := 1; i < length; i++ {
		clauses = append(clauses, fdb.Eq(fmt.Sprintf("R%d.B", i), fmt.Sprintf("R%d.A", i+1)))
	}
	return db, clauses
}

// experiment13 runs one measurement: parity-check the two tiers' plans on
// the same query through the public API, enforce the cost-ratio bar, then
// time the two planners directly on the query's attribute classes.
func experiment13(workload string, cfg Exp13Config, db *fdb.DB, join []fdb.Clause, q *core.Query) (Exp13Row, error) {
	iters := cfg.Iters
	if iters <= 0 {
		iters = 30
	}
	row := Exp13Row{Workload: workload, Scale: cfg.Scale}

	classes, schemas := q.Classes(), q.Schemas()
	var err error
	if _, row.GreedyCost, err = opt.GreedyFTree(classes, schemas); err != nil {
		return row, err
	}
	if _, row.OptimalCost, err = opt.OptimalFTree(classes, schemas, opt.TreeSearchOptions{}); err != nil {
		return row, err
	}
	if row.OptimalCost > 0 {
		row.CostRatio = row.GreedyCost / row.OptimalCost
	}
	if row.CostRatio > exp13MaxCostRatio {
		return row, fmt.Errorf("bench: exp13 %s/%d: greedy plan cost %.3f exceeds %.0f%% of optimal %.3f",
			workload, cfg.Scale, row.GreedyCost, 100*exp13MaxCostRatio, row.OptimalCost)
	}

	// Parity precheck: both tiers must enumerate the same flat result
	// through the public API with the planner mode forced.
	db.SetPlannerMode(fdb.PlannerGreedy)
	gst, err := db.Prepare(join...)
	if err != nil {
		return row, err
	}
	db.SetPlannerMode(fdb.PlannerExhaustive)
	est, err := db.Prepare(join...)
	if err != nil {
		return row, err
	}
	gres, err := gst.Exec()
	if err != nil {
		return row, err
	}
	eres, err := est.Exec()
	if err != nil {
		return row, err
	}
	row.Tuples = gres.Count()
	if err := exp13Parity(workload, cfg.Scale, gres, eres); err != nil {
		return row, err
	}

	// Timed legs: the planners alone, on the same classes the engine hands
	// them at Prepare time.
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := opt.OptimalFTree(classes, schemas, opt.TreeSearchOptions{}); err != nil {
			return row, err
		}
	}
	row.ExhaustiveUS = float64(time.Since(start).Nanoseconds()) / 1e3 / float64(iters)
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, _, err := opt.GreedyFTree(classes, schemas); err != nil {
			return row, err
		}
	}
	row.GreedyUS = float64(time.Since(start).Nanoseconds()) / 1e3 / float64(iters)
	if row.GreedyUS > 0 {
		row.Speedup = row.ExhaustiveUS / row.GreedyUS
	}
	return row, nil
}

// exp13Parity compares two results of the same query planned through
// different trees: the exhaustive result's tuples are projected into the
// greedy result's column order, both sides sorted with the deterministic
// tuple comparator, and every position must match.
func exp13Parity(workload string, scale int, gres, eres *fdb.Result) error {
	if gres.Count() != eres.Count() {
		return fmt.Errorf("bench: exp13 %s/%d: greedy %d tuples, exhaustive %d",
			workload, scale, gres.Count(), eres.Count())
	}
	var gSchema, eSchema relation.Schema
	for _, a := range gres.Schema() {
		gSchema = append(gSchema, relation.Attribute(a))
	}
	for _, a := range eres.Schema() {
		eSchema = append(eSchema, relation.Attribute(a))
	}
	got := drain(gres.Iter())
	want := project(drain(eres.Iter()), eSchema, gSchema)
	cmp := frep.TupleCompare(gSchema, nil, nil)
	sort.SliceStable(got, func(i, j int) bool { return cmp(got[i], got[j]) < 0 })
	sort.SliceStable(want, func(i, j int) bool { return cmp(want[i], want[j]) < 0 })
	for i := range got {
		if got[i].Compare(want[i]) != 0 {
			return fmt.Errorf("bench: exp13 %s/%d: results diverge at %d: greedy %v, exhaustive %v",
				workload, scale, i, got[i], want[i])
		}
	}
	return nil
}
