package bench

import (
	"math/rand"
	"testing"

	fdb "repro"
)

func TestExperiment9Retailer(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	row, err := Experiment9Retailer(rng, Exp9Config{Scale: 2, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !row.Streamed {
		t.Fatal("retailer leg must stream")
	}
	if row.Tuples == 0 {
		t.Fatal("empty retailer join")
	}
}

func TestExperiment9Chain(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	row, err := Experiment9Chain(rng, Exp9Config{Scale: 4, K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if row.Streamed {
		t.Fatal("chain leg must exercise the bounded heap")
	}
}

// BenchmarkTopKRetailer times the full ordered top-k query path — prepared
// Exec (build) plus streaming retrieval of the first K tuples — on the
// scale-2 retailer join. Recorded into BENCH_ci.json; not baseline-gated
// until a committed baseline exists.
func BenchmarkTopKRetailer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db, join := exp9Retailer(rng, 2)
	st, err := db.Prepare(append(join[:len(join):len(join)],
		fdb.OrderBy(fdb.Desc("Orders.item"), "Orders.oid"), fdb.Limit(10))...)
	if err != nil {
		b.Fatal(err)
	}
	if !st.OrderStreamable() {
		b.Fatal("top-k leg must stream")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Exec()
		if err != nil {
			b.Fatal(err)
		}
		it := res.Iter()
		n := 0
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if n != 10 {
			b.Fatalf("retrieved %d tuples, want 10", n)
		}
	}
}
