package bench

import (
	"math/rand"
	"testing"
)

// TestExperiment8Parity runs a small Experiment 8 sweep; the experiment
// itself cross-checks every worker count's build, aggregation and
// enumeration against the serial leg, so a pass here is a parity proof.
func TestExperiment8Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := Exp8Config{Scale: 1, Workers: []int{1, 2, 4}, MaxEnum: 1_000_000}
	rows, err := Experiment8Retailer(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Workers) {
		t.Fatalf("retailer sweep has %d rows, want %d", len(rows), len(cfg.Workers))
	}
	for _, r := range rows {
		if r.Tuples != rows[0].Tuples || r.FRepSize != rows[0].FRepSize {
			t.Fatalf("worker count %d changed the result: %d tuples / %d size, want %d / %d",
				r.Workers, r.Tuples, r.FRepSize, rows[0].Tuples, rows[0].FRepSize)
		}
	}
	crows, err := Experiment8Chain(rng, Exp8Config{Scale: 4, Workers: []int{1, 3}, MaxEnum: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(crows) != 2 {
		t.Fatalf("chain sweep has %d rows, want 2", len(crows))
	}
}
