package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/fbuild"
	"repro/internal/frep"
	"repro/internal/relation"
)

// Exp7Row is one point of Experiment 7: the arena-backed columnar encoding
// versus the pointer representation on the three hot paths — build,
// enumeration and grouped aggregation — over the same retailer workload and
// the same lifted f-tree.
type Exp7Row struct {
	Workload   string
	Scale      int
	FRepSize   int64 // singletons in the factorised result
	Tuples     int64 // tuples of the (never materialised) flat result
	Enumerated int64 // tuples enumerated per leg (capped by MaxEnum)
	BuildPtrMS float64
	BuildEncMS float64
	EnumPtrMS  float64
	EnumEncMS  float64
	AggPtrMS   float64
	AggEncMS   float64
	BuildX     float64 // pointer/encoded speedup per path
	EnumX      float64
	AggX       float64
}

// Exp7Config parameterises one Experiment 7 measurement.
type Exp7Config struct {
	Scale   int
	MaxEnum int64 // enumerate at most this many tuples per leg (0: all)
}

// Experiment7Encoding measures one scale point: identical inputs and
// f-tree, one pointer pipeline and one encoded pipeline, results
// cross-checked for equality.
func Experiment7Encoding(rng *rand.Rand, cfg Exp7Config) (Exp7Row, error) {
	row := Exp7Row{Workload: "retailer", Scale: cfg.Scale}
	q := RetailerQuery(rng, cfg.Scale)
	groupBy := []relation.Attribute{"s_location"}
	specs := []frep.AggSpec{
		{Fn: frep.AggCount},
		{Fn: frep.AggSum, Attr: "o_oid"},
		{Fn: frep.AggCountDistinct, Attr: "o_item"},
	}
	tr, err := liftedTree(q, groupBy)
	if err != nil {
		return row, err
	}

	start := time.Now()
	fr, err := fbuild.Build(cloneRels(q.Relations), tr.Clone())
	if err != nil {
		return row, err
	}
	row.BuildPtrMS = ms(start)

	start = time.Now()
	enc, err := fbuild.BuildEnc(cloneRels(q.Relations), tr.Clone())
	if err != nil {
		return row, err
	}
	row.BuildEncMS = ms(start)

	row.FRepSize = int64(enc.Size())
	row.Tuples = enc.Count()
	if fr.Count() != row.Tuples || int64(fr.Size()) != row.FRepSize {
		return row, fmt.Errorf("bench: pointer and encoded builds disagree (%d/%d tuples, %d/%d size)",
			fr.Count(), row.Tuples, fr.Size(), row.FRepSize)
	}

	limit := row.Tuples
	if cfg.MaxEnum > 0 && limit > cfg.MaxEnum {
		limit = cfg.MaxEnum
	}
	row.Enumerated = limit

	start = time.Now()
	var np int64
	fr.Enumerate(func(relation.Tuple) bool {
		np++
		return np < limit
	})
	row.EnumPtrMS = ms(start)

	start = time.Now()
	var ne int64
	it := frep.NewEncIterator(enc)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		ne++
		if ne >= limit {
			break
		}
	}
	row.EnumEncMS = ms(start)
	if np != ne {
		return row, fmt.Errorf("bench: enumeration legs disagree (%d vs %d tuples)", np, ne)
	}

	start = time.Now()
	ap, err := fr.Aggregate(groupBy, specs)
	if err != nil {
		return row, err
	}
	row.AggPtrMS = ms(start)

	start = time.Now()
	ae, err := enc.Aggregate(groupBy, specs)
	if err != nil {
		return row, err
	}
	row.AggEncMS = ms(start)
	if len(ap) != len(ae) {
		return row, fmt.Errorf("bench: aggregation legs disagree (%d vs %d groups)", len(ap), len(ae))
	}
	for i := range ap {
		for j := range ap[i].Vals {
			if ap[i].Vals[j] != ae[i].Vals[j] {
				return row, fmt.Errorf("bench: aggregation legs disagree in group %v", ap[i].Key)
			}
		}
	}

	row.BuildX = speedup(row.BuildPtrMS, row.BuildEncMS)
	row.EnumX = speedup(row.EnumPtrMS, row.EnumEncMS)
	row.AggX = speedup(row.AggPtrMS, row.AggEncMS)
	return row, nil
}

func ms(start time.Time) float64 {
	return float64(time.Since(start).Microseconds()) / 1000
}

func speedup(ptr, enc float64) float64 {
	if enc <= 0 {
		return 0
	}
	return ptr / enc
}
