package bench

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	fdb "repro"
)

// Exp12Row is one point of Experiment 12: cold-open-to-first-query over the
// zero-copy snapshot format against the parse-and-rebuild baseline. The
// snapshot leg opens the file (memory-mapped where the platform allows) and
// answers the retailer join's first query by adopting the snapshot-carried
// encoding — O(header + pages touched) work. The baseline answers the same
// query from scratch: parse the three TSV relation files, dictionary-encode,
// snapshot, sort, and run the full morsel-parallel build. Both legs — and
// the live database the snapshot was cut from — must agree byte for byte on
// an ordered result sample and an aggregate table before timings are
// reported.
type Exp12Row struct {
	Scale     int
	Tuples    int64   // flat tuples of the join result
	FileKB    float64 // snapshot file size
	SaveMS    float64 // SaveSnapshot (warm plan cache riding along)
	ColdMS    float64 // OpenSnapshotFile + first query + count
	RebuildMS float64 // New + LoadTSV x3 + query + count
	Speedup   float64 // RebuildMS / ColdMS
}

// Exp12Config parameterises Experiment 12.
type Exp12Config struct {
	Scales []int  // scales to sweep (default 1, 2, 4)
	Dir    string // scratch directory for snapshot + TSV files (default: a temp dir)
}

// Experiment12Persist sweeps the scales: build the retailer workload, warm
// the plan cache, write the snapshot and the TSV baseline files, then time
// cold open against full rebuild on identical data.
func Experiment12Persist(rng *rand.Rand, cfg Exp12Config) ([]Exp12Row, error) {
	scales := cfg.Scales
	if len(scales) == 0 {
		scales = []int{1, 2, 4}
	}
	dir := cfg.Dir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "fdbench-exp12-"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	}
	rows := make([]Exp12Row, 0, len(scales))
	for _, scale := range scales {
		row, err := experiment12(rng, scale, dir)
		if err != nil {
			return rows, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// experiment12 runs one scale point.
func experiment12(rng *rand.Rand, scale int, dir string) (Exp12Row, error) {
	row := Exp12Row{Scale: scale}
	db, join := exp9Retailer(rng, scale)

	// The parity probes: a deterministic ordered sample of the join and a
	// grouped aggregate — both rendered to text, compared byte for byte.
	sample := append(join[:len(join):len(join)],
		fdb.OrderBy(fdb.Desc("Orders.item"), fdb.Asc("Orders.oid"), fdb.Asc("Disp.dispatcher")),
		fdb.Limit(50))
	agg := append(join[:len(join):len(join)],
		fdb.GroupBy("Stock.location"), fdb.Agg(fdb.Count, ""), fdb.Agg(fdb.CountDistinct, "Orders.item"))

	// Warm the live database through the plan cache, so the snapshot carries
	// the join's encoding and the cold leg's first query adopts it. The
	// parity probes run only after the save — they memoise encodings of
	// their own, which must not ride along and inflate the file.
	live, err := db.Query(join...)
	if err != nil {
		return row, err
	}
	row.Tuples = live.Count()

	// Baseline input: the same relations as TSV files (what a rebuild parses).
	var tsvs []string
	for _, name := range db.Relations() {
		p := filepath.Join(dir, fmt.Sprintf("exp12_s%d_%s.tsv", scale, name))
		if err := db.SaveTSV(p, name); err != nil {
			return row, err
		}
		tsvs = append(tsvs, p)
	}

	snap := filepath.Join(dir, fmt.Sprintf("exp12_s%d.fdb", scale))
	start := time.Now()
	if err := db.SaveSnapshot(snap); err != nil {
		return row, err
	}
	row.SaveMS = ms(start)
	if fi, err := os.Stat(snap); err == nil {
		row.FileKB = float64(fi.Size()) / 1024
	}
	liveSample, liveAgg, err := exp12Probes(db, sample, agg)
	if err != nil {
		return row, err
	}

	// Cold leg: open the file, answer the first query, count.
	start = time.Now()
	cdb, err := fdb.OpenSnapshotFile(snap)
	if err != nil {
		return row, err
	}
	cres, err := cdb.Query(join...)
	if err != nil {
		return row, err
	}
	coldCount := cres.Count()
	row.ColdMS = ms(start)

	// Rebuild leg: parse the TSVs, answer the same query, count.
	start = time.Now()
	rdb := fdb.New()
	for _, p := range tsvs {
		if _, err := rdb.LoadTSV(p); err != nil {
			return row, err
		}
	}
	rres, err := rdb.Query(join...)
	if err != nil {
		return row, err
	}
	rebuildCount := rres.Count()
	row.RebuildMS = ms(start)

	// Parity prechecks (outside the timed windows): counts, then the ordered
	// sample and aggregate tables byte for byte against the live database.
	if coldCount != row.Tuples || rebuildCount != row.Tuples {
		return row, fmt.Errorf("bench: exp12 scale %d: counts diverge: live %d, cold %d, rebuild %d",
			scale, row.Tuples, coldCount, rebuildCount)
	}
	for _, leg := range []struct {
		name string
		db   *fdb.DB
	}{{"cold", cdb}, {"rebuild", rdb}} {
		s, a, err := exp12Probes(leg.db, sample, agg)
		if err != nil {
			return row, err
		}
		if s != liveSample {
			return row, fmt.Errorf("bench: exp12 scale %d: %s ordered sample diverges from live:\n%s\nwant:\n%s",
				scale, leg.name, s, liveSample)
		}
		if a != liveAgg {
			return row, fmt.Errorf("bench: exp12 scale %d: %s aggregate table diverges from live:\n%s\nwant:\n%s",
				scale, leg.name, a, liveAgg)
		}
	}
	if row.ColdMS > 0 {
		row.Speedup = row.RebuildMS / row.ColdMS
	}
	return row, nil
}

// exp12Probes renders the two parity probes of one database to text.
func exp12Probes(db *fdb.DB, sample, agg []fdb.Clause) (string, string, error) {
	sres, err := db.Query(sample...)
	if err != nil {
		return "", "", err
	}
	ares, err := db.QueryAgg(agg...)
	if err != nil {
		return "", "", err
	}
	return sres.Table(-1), ares.Table(-1), nil
}
