// Package bench is the experiment harness that regenerates every figure of
// the paper's evaluation (Section 5). Each ExperimentN function reproduces
// the workload of the corresponding experiment and returns the series the
// paper plots; cmd/fdbench prints them, and the repository-level Go
// benchmarks wrap them for `go test -bench`. See DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for recorded results.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/fbuild"
	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/rdb"
	"repro/internal/relation"
	"repro/internal/volcano"
)

// Exp1Row is one point of Figure 5: optimisation time and optimal-tree cost
// for a random query with K equalities on R relations over A attributes.
type Exp1Row struct {
	R, A, K  int
	AvgMS    float64 // average optimisation time, milliseconds
	AvgS     float64 // average cost s(T) of the optimal f-tree
	Runs     int
	Failures int // budget exhaustions (counted, excluded from averages)
}

// Experiment1 reproduces Figure 5: for each (R, K) it optimises `runs`
// random queries over A attributes and averages time and cost.
func Experiment1(rng *rand.Rand, rs []int, ks []int, a, runs int) []Exp1Row {
	var out []Exp1Row
	for _, r := range rs {
		for _, k := range ks {
			if k >= a {
				continue
			}
			row := Exp1Row{R: r, A: a, K: k}
			var totMS, totS float64
			for i := 0; i < runs; i++ {
				sch, err := gen.RandomSchema(rng, r, a)
				if err != nil {
					continue
				}
				eqs, err := gen.RandomEqualities(rng, sch, k)
				if err != nil {
					continue
				}
				q := &core.Query{Equalities: eqs}
				for j, s := range sch.Relations {
					q.Relations = append(q.Relations, relation.New(sch.Names[j], s))
				}
				start := time.Now()
				_, s, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
				if err != nil {
					row.Failures++
					continue
				}
				totMS += float64(time.Since(start).Microseconds()) / 1000
				totS += s
				row.Runs++
			}
			if row.Runs > 0 {
				row.AvgMS = totMS / float64(row.Runs)
				row.AvgS = totS / float64(row.Runs)
			}
			out = append(out, row)
		}
	}
	return out
}

// Exp2Row is one point of Figures 6 and 9: plan and result costs plus
// optimisation times of the full-search and greedy optimisers, for queries
// of L equalities on an f-tree resulting from K equalities.
type Exp2Row struct {
	K, L                int
	FullPlanCost        float64
	FullResultCost      float64
	GreedyPlanCost      float64
	GreedyResultCost    float64
	FullMS, GreedyMS    float64
	Runs, FullBudgetHit int
}

// exp2Instance builds an input f-tree (K equalities, R relations, A
// attributes) and L fresh conditions on its classes.
func exp2Instance(rng *rand.Rand, r, a, k, l int) (*ftree.T, []opt.Condition, error) {
	sch, err := gen.RandomSchema(rng, r, a)
	if err != nil {
		return nil, nil, err
	}
	eqs, err := gen.RandomEqualities(rng, sch, k)
	if err != nil {
		return nil, nil, err
	}
	q := &core.Query{Equalities: eqs}
	for j, s := range sch.Relations {
		q.Relations = append(q.Relations, relation.New(sch.Names[j], s))
	}
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		return nil, nil, err
	}
	// L non-redundant conditions on the classes of tr.
	attrs := q.Attributes()
	var conds []opt.Condition
	work := tr.Clone()
	guard := 0
	for len(conds) < l {
		guard++
		if guard > 100000 {
			return nil, nil, fmt.Errorf("bench: cannot draw %d conditions", l)
		}
		x := attrs[rng.Intn(len(attrs))]
		y := attrs[rng.Intn(len(attrs))]
		nx, ny := work.NodeOf(x), work.NodeOf(y)
		if nx == nil || ny == nil || nx == ny {
			continue
		}
		// Mark as merged on the working copy so later conditions stay
		// non-redundant.
		nx.Attrs = append(nx.Attrs, ny.Attrs...)
		removeNode(work, ny)
		conds = append(conds, opt.Condition{A: x, B: y})
	}
	return tr, conds, nil
}

// removeNode detaches a node, attaching its children to its parent (class
// bookkeeping only; the tree is a scratch copy used for non-redundancy).
func removeNode(t *ftree.T, n *ftree.Node) {
	p := t.ParentOf(n)
	if p == nil {
		for i, r := range t.Roots {
			if r == n {
				t.Roots = append(t.Roots[:i], t.Roots[i+1:]...)
				break
			}
		}
		t.Roots = append(t.Roots, n.Children...)
		return
	}
	for i, c := range p.Children {
		if c == n {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			break
		}
	}
	p.Children = append(p.Children, n.Children...)
}

// Experiment2 reproduces Figures 6 and 9 for R relations and A attributes.
func Experiment2(rng *rand.Rand, r, a int, ks, ls []int, runs int) []Exp2Row {
	var out []Exp2Row
	for _, k := range ks {
		for _, l := range ls {
			if k+l >= a {
				continue
			}
			row := Exp2Row{K: k, L: l}
			for i := 0; i < runs; i++ {
				tr, conds, err := exp2Instance(rng, r, a, k, l)
				if err != nil {
					continue
				}
				start := time.Now()
				full, err := opt.ExhaustivePlan(tr, conds, opt.PlanSearchOptions{})
				fullMS := float64(time.Since(start).Microseconds()) / 1000
				if err != nil {
					row.FullBudgetHit++
					continue
				}
				start = time.Now()
				greedy, err := opt.GreedyPlan(tr, conds)
				greedyMS := float64(time.Since(start).Microseconds()) / 1000
				if err != nil {
					continue
				}
				row.FullPlanCost += full.Cost
				row.FullResultCost += full.FinalS
				row.GreedyPlanCost += greedy.Cost
				row.GreedyResultCost += greedy.FinalS
				row.FullMS += fullMS
				row.GreedyMS += greedyMS
				row.Runs++
			}
			if row.Runs > 0 {
				f := float64(row.Runs)
				row.FullPlanCost /= f
				row.FullResultCost /= f
				row.GreedyPlanCost /= f
				row.GreedyResultCost /= f
				row.FullMS /= f
				row.GreedyMS /= f
			}
			out = append(out, row)
		}
	}
	return out
}

// Exp3Row is one point of Figure 7: result sizes (# data elements) and
// evaluation times of FDB, RDB and the Volcano stand-in on flat input.
type Exp3Row struct {
	N, K          int
	Dist          gen.Distribution
	FDBSize       int64 // singletons in the factorised result
	FlatSize      int64 // tuples x attributes of the flat result
	FDBMS         float64
	RDBMS         float64
	VolcanoMS     float64
	RDBTimedOut   bool
	VolcTimedOut  bool
	OptimalS      float64
	FactorisedCnt int64 // tuple count of the result
}

// Exp3Config parameterises Experiment 3.
type Exp3Config struct {
	Relations  int // R
	Attributes int // A (spread evenly)
	N          int // tuples per relation
	K          int // equalities
	M          int // value domain [1, M]
	Dist       gen.Distribution
	Timeout    time.Duration // relational-engine budget (paper: 100 s)
	MaxTuples  int64         // optional hard cap for the baselines
}

// Experiment3Point runs one configuration: generate data, find the optimal
// f-tree, evaluate factorised with FDB, flat with RDB and Volcano.
func Experiment3Point(rng *rand.Rand, cfg Exp3Config) (Exp3Row, error) {
	q, err := gen.RandomQuery(rng, cfg.Relations, cfg.Attributes, cfg.N, cfg.K, cfg.Dist, cfg.M)
	if err != nil {
		return Exp3Row{N: cfg.N, K: cfg.K, Dist: cfg.Dist}, err
	}
	return Exp3FromQuery(q, cfg)
}

// Exp3FromQuery runs the Experiment 3 measurement on a prebuilt query
// (used for the combinatorial dataset of Figure 7's right column).
func Exp3FromQuery(q *core.Query, cfg Exp3Config) (Exp3Row, error) {
	row := Exp3Row{N: cfg.N, K: cfg.K, Dist: cfg.Dist}
	// FDB: optimise + build factorised result.
	start := time.Now()
	tr, s, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		return row, err
	}
	fr, err := fbuild.Build(cloneRels(q.Relations), tr)
	if err != nil {
		return row, err
	}
	row.FDBMS = float64(time.Since(start).Microseconds()) / 1000
	row.OptimalS = s
	row.FDBSize = int64(fr.Size())
	row.FactorisedCnt = fr.Count()
	row.FlatSize = row.FactorisedCnt * int64(len(q.Attributes()))

	// RDB (count-only, like the paper's no-result-writing runs).
	rres, err := rdb.Evaluate(q, rdb.Options{Timeout: cfg.Timeout, MaxTuples: cfg.MaxTuples})
	if err != nil {
		return row, err
	}
	row.RDBMS = float64(rres.Duration.Microseconds()) / 1000
	row.RDBTimedOut = rres.TimedOut

	// Volcano stand-in for SQLite/PostgreSQL.
	vres, err := volcano.Evaluate(q, volcano.Options{Timeout: cfg.Timeout, MaxTuples: cfg.MaxTuples})
	if err != nil {
		return row, err
	}
	row.VolcanoMS = float64(vres.Duration.Microseconds()) / 1000
	row.VolcTimedOut = vres.TimedOut
	return row, nil
}

// Exp4Row is one point of Figure 8: size and time of evaluating L extra
// equalities on a factorised result (FDB, full-search f-plan) versus one
// scan over the flat result (RDB).
type Exp4Row struct {
	K, L        int
	FDBSize     int64
	FlatSize    int64
	FDBMS       float64
	RDBMS       float64
	PlanCost    float64
	RDBSkipped  bool // flat input too large to materialise
	EmptyResult bool
}

// Exp4Config parameterises Experiment 4.
type Exp4Config struct {
	Relations, Attributes, N, K, L, M int
	Dist                              gen.Distribution
	Timeout                           time.Duration
	// MaxFlat skips the RDB leg when the flat input exceeds this tuple
	// count (materialising it would dominate the benchmark).
	MaxFlat int64
}

// Experiment4Point builds the K-equality factorised result, draws L fresh
// conditions, optimises an f-plan with full search, executes it with FDB,
// and compares with RDB's single scan over the flat input.
func Experiment4Point(rng *rand.Rand, cfg Exp4Config) (Exp4Row, error) {
	row := Exp4Row{K: cfg.K, L: cfg.L}
	q, err := gen.RandomQuery(rng, cfg.Relations, cfg.Attributes, cfg.N, cfg.K, cfg.Dist, cfg.M)
	if err != nil {
		return row, err
	}
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		return row, err
	}
	fr, err := fbuild.Build(cloneRels(q.Relations), tr)
	if err != nil {
		return row, err
	}
	// Draw L non-redundant conditions on the classes of tr.
	attrs := q.Attributes()
	var conds []opt.Condition
	work := tr.Clone()
	guard := 0
	for len(conds) < cfg.L {
		guard++
		if guard > 100000 {
			return row, fmt.Errorf("bench: cannot draw %d conditions", cfg.L)
		}
		x := attrs[rng.Intn(len(attrs))]
		y := attrs[rng.Intn(len(attrs))]
		nx, ny := work.NodeOf(x), work.NodeOf(y)
		if nx == nil || ny == nil || nx == ny {
			continue
		}
		nx.Attrs = append(nx.Attrs, ny.Attrs...)
		removeNode(work, ny)
		conds = append(conds, opt.Condition{A: x, B: y})
	}

	// FDB: optimise f-plan (full search) and execute on the representation.
	res, err := opt.ExhaustivePlan(fr.Tree, conds, opt.PlanSearchOptions{})
	if err != nil {
		return row, err
	}
	row.PlanCost = res.Cost
	exec := fr.Clone()
	start := time.Now()
	if err := res.Plan.Execute(exec); err != nil {
		return row, err
	}
	row.FDBMS = float64(time.Since(start).Microseconds()) / 1000
	row.FDBSize = int64(exec.Size())
	row.EmptyResult = exec.IsEmpty()

	// RDB: one scan over the flat input with the L equality conditions.
	flatTuples := fr.Count()
	if cfg.MaxFlat > 0 && flatTuples > cfg.MaxFlat {
		row.RDBSkipped = true
		return row, nil
	}
	flat := fr.Relation("flat")
	pairs := make([][2]relation.Attribute, len(conds))
	for i, c := range conds {
		pairs[i] = [2]relation.Attribute{c.A, c.B}
	}
	rres, err := rdb.SelectEqualities(flat, pairs, rdb.Options{Timeout: cfg.Timeout})
	if err != nil {
		return row, err
	}
	row.RDBMS = float64(rres.Duration.Microseconds()) / 1000
	row.FlatSize = rres.Elements
	return row, nil
}

func cloneRels(rels []*relation.Relation) []*relation.Relation {
	out := make([]*relation.Relation, len(rels))
	for i, r := range rels {
		out[i] = r.Clone()
	}
	return out
}

// GrocerySmoke runs the paper's running example end to end (Examples 1 and
// 2): Q1 and Q2 factorised, joined on item and location via an f-plan. It
// returns the sizes the introduction quotes and is used by tests and the
// quickstart.
func GrocerySmoke() (q1Size, q2Size, joinedSize int, err error) {
	rels, _ := gen.Grocery()
	q1 := &core.Query{
		Relations: rels[:3],
		Equalities: []core.Equality{
			{A: "o_item", B: "s_item"},
			{A: "s_location", B: "d_location"},
		},
	}
	t1, _, err := opt.OptimalFTree(q1.Classes(), q1.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		return 0, 0, 0, err
	}
	f1, err := fbuild.Build(cloneRels(q1.Relations), t1)
	if err != nil {
		return 0, 0, 0, err
	}
	q2 := &core.Query{
		Relations:  rels[3:],
		Equalities: []core.Equality{{A: "p_supplier", B: "v_supplier"}},
	}
	t2, _, err := opt.OptimalFTree(q2.Classes(), q2.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		return 0, 0, 0, err
	}
	f2, err := fbuild.Build(cloneRels(q2.Relations), t2)
	if err != nil {
		return 0, 0, 0, err
	}
	// Q1 ⋈ Q2 on item and location (Example 2).
	prod, err := fplan.Product(f1, f2)
	if err != nil {
		return 0, 0, 0, err
	}
	conds := []opt.Condition{
		{A: "o_item", B: "p_item"},
		{A: "s_location", B: "v_location"},
	}
	plan, err := opt.ExhaustivePlan(prod.Tree, conds, opt.PlanSearchOptions{})
	if err != nil {
		return 0, 0, 0, err
	}
	if err := plan.Plan.Execute(prod); err != nil {
		return 0, 0, 0, err
	}
	return f1.Size(), f2.Size(), prod.Size(), nil
}

// VerifyGroceryJoin recomputes the Example 2 join relationally and checks
// the factorised pipeline result against it; used by tests.
func VerifyGroceryJoin() error {
	rels, _ := gen.Grocery()
	full := &core.Query{
		Relations: rels,
		Equalities: []core.Equality{
			{A: "o_item", B: "s_item"},
			{A: "s_location", B: "d_location"},
			{A: "p_supplier", B: "v_supplier"},
			{A: "o_item", B: "p_item"},
			{A: "s_location", B: "v_location"},
		},
	}
	want, err := full.EvaluateFlat()
	if err != nil {
		return err
	}

	// Factorised pipeline as in GrocerySmoke.
	q1 := &core.Query{Relations: rels[:3], Equalities: full.Equalities[:2]}
	t1, _, err := opt.OptimalFTree(q1.Classes(), q1.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		return err
	}
	f1, err := fbuild.Build(cloneRels(q1.Relations), t1)
	if err != nil {
		return err
	}
	q2 := &core.Query{Relations: rels[3:], Equalities: full.Equalities[2:3]}
	t2, _, err := opt.OptimalFTree(q2.Classes(), q2.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		return err
	}
	f2, err := fbuild.Build(cloneRels(q2.Relations), t2)
	if err != nil {
		return err
	}
	prod, err := fplan.Product(f1, f2)
	if err != nil {
		return err
	}
	conds := []opt.Condition{
		{A: "o_item", B: "p_item"},
		{A: "s_location", B: "v_location"},
	}
	plan, err := opt.ExhaustivePlan(prod.Tree, conds, opt.PlanSearchOptions{})
	if err != nil {
		return err
	}
	if err := plan.Plan.Execute(prod); err != nil {
		return err
	}
	got := prod.Relation("got").Project(want.Schema)
	if !got.Equal(want) {
		return fmt.Errorf("bench: factorised grocery join differs from relational result (%d vs %d tuples)",
			got.Cardinality(), want.Cardinality())
	}
	return nil
}

// ensure frep is linked even if only used via types in signatures.
var _ = frep.FRep{}
