package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/fbuild"
	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/relation"
)

// Exp6Row is one point of Experiment 6: factorised single-pass aggregation
// versus enumerate-then-fold over the same factorised result.
type Exp6Row struct {
	Workload    string // "retailer" or "chain"
	Scale       int    // retailer scale factor / chain length
	FRepSize    int64  // singletons in the factorised result
	Tuples      int64  // tuples of the (never materialised) flat result
	Groups      int
	FactMS      float64 // one pass over the representation
	FoldMS      float64 // enumerate the flat result, fold per tuple
	FoldSkipped bool    // flat result too large to enumerate
	Speedup     float64 // FoldMS / FactMS (0 when skipped)
}

// FoldAggregate is the enumerate-then-fold baseline: it enumerates the
// flat relation tuple by tuple (over the encoded representation's
// constant-delay iterator) and folds every aggregate — what a consumer
// without factorised aggregation is forced to do. Exact (no saturation);
// used as the reference by Experiment 6 and the aggregate benchmarks.
func FoldAggregate(fr *frep.Enc, groupBy []relation.Attribute, specs []frep.AggSpec) []frep.AggRow {
	schema := fr.Schema()
	pos := map[relation.Attribute]int{}
	for i, a := range schema {
		pos[a] = i
	}
	gcols := make([]int, len(groupBy))
	for i, a := range groupBy {
		gcols[i] = pos[a]
	}
	acols := make([]int, len(specs))
	for i, s := range specs {
		if s.Fn != frep.AggCount {
			acols[i] = pos[s.Attr]
		}
	}
	type state struct {
		key  []relation.Value
		cnt  int64
		sum  []int64
		m    []int64
		mSet []bool
		dist []map[relation.Value]struct{}
	}
	groups := map[string]*state{}
	keybuf := make([]byte, 8*len(groupBy))
	fr.Enumerate(func(t relation.Tuple) bool {
		for i, c := range gcols {
			v := uint64(t[c])
			for b := 0; b < 8; b++ {
				keybuf[8*i+b] = byte(v >> (8 * b))
			}
		}
		k := string(keybuf)
		s, ok := groups[k]
		if !ok {
			s = &state{
				key: make([]relation.Value, len(groupBy)), sum: make([]int64, len(specs)),
				m: make([]int64, len(specs)), mSet: make([]bool, len(specs)),
				dist: make([]map[relation.Value]struct{}, len(specs)),
			}
			for i, c := range gcols {
				s.key[i] = t[c]
			}
			groups[k] = s
		}
		s.cnt++
		for i, sp := range specs {
			switch sp.Fn {
			case frep.AggCount:
			case frep.AggSum:
				s.sum[i] += int64(t[acols[i]])
			case frep.AggMin:
				if v := int64(t[acols[i]]); !s.mSet[i] || v < s.m[i] {
					s.m[i], s.mSet[i] = v, true
				}
			case frep.AggMax:
				if v := int64(t[acols[i]]); !s.mSet[i] || v > s.m[i] {
					s.m[i], s.mSet[i] = v, true
				}
			case frep.AggCountDistinct:
				if s.dist[i] == nil {
					s.dist[i] = map[relation.Value]struct{}{}
				}
				s.dist[i][t[acols[i]]] = struct{}{}
			}
		}
		return true
	})
	rows := make([]frep.AggRow, 0, len(groups))
	for _, s := range groups {
		row := frep.AggRow{Key: s.key, Vals: make([]int64, len(specs))}
		for i, sp := range specs {
			switch sp.Fn {
			case frep.AggCount:
				row.Vals[i] = s.cnt
			case frep.AggSum:
				row.Vals[i] = s.sum[i]
			case frep.AggMin, frep.AggMax:
				row.Vals[i] = s.m[i]
			case frep.AggCountDistinct:
				row.Vals[i] = int64(len(s.dist[i]))
			}
		}
		rows = append(rows, row)
	}
	sortAggRows(rows)
	return rows
}

func sortAggRows(rows []frep.AggRow) {
	// Same order as FRep.Aggregate: lexicographic on the key values.
	sort.Slice(rows, func(i, j int) bool { return aggKeyLess(rows[i].Key, rows[j].Key) })
}

func aggKeyLess(a, b []relation.Value) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

// Exp6Config parameterises one Experiment 6 measurement.
type Exp6Config struct {
	Scale   int   // retailer scale factor / chain length
	MaxFold int64 // skip the fold leg above this many flat tuples
}

// RetailerQuery builds the scaled retailer workload: Orders ⋈item Stock
// ⋈location Disp with heavy many-to-many links, the analytics shape of the
// examples. Result tuples grow cubically with the scale while the
// factorised size stays quasi-linear.
func RetailerQuery(rng *rand.Rand, scale int) *core.Query {
	const (
		items     = 50
		locations = 40
	)
	orders := relation.New("Orders", relation.Schema{"o_oid", "o_item"})
	for i := 0; i < 500*scale; i++ {
		orders.Append(relation.Value(i+1), relation.Value(rng.Intn(items)+1))
	}
	orders.Dedup()
	stock := relation.New("Stock", relation.Schema{"s_location", "s_item"})
	for i := 0; i < 200*scale; i++ {
		stock.Append(relation.Value(rng.Intn(locations)+1), relation.Value(rng.Intn(items)+1))
	}
	stock.Dedup()
	disp := relation.New("Disp", relation.Schema{"d_dispatcher", "d_location"})
	for i := 0; i < 100*scale; i++ {
		disp.Append(relation.Value(rng.Intn(120)+1), relation.Value(rng.Intn(locations)+1))
	}
	disp.Dedup()
	return &core.Query{
		Relations: []*relation.Relation{orders, stock, disp},
		Equalities: []core.Equality{
			{A: "o_item", B: "s_item"},
			{A: "s_location", B: "d_location"},
		},
	}
}

// Experiment6Retailer measures grouped aggregation (per-location order
// count, oid sum and distinct items) on the retailer join.
func Experiment6Retailer(rng *rand.Rand, cfg Exp6Config) (Exp6Row, error) {
	q := RetailerQuery(rng, cfg.Scale)
	groupBy := []relation.Attribute{"s_location"}
	specs := []frep.AggSpec{
		{Fn: frep.AggCount},
		{Fn: frep.AggSum, Attr: "o_oid"},
		{Fn: frep.AggCountDistinct, Attr: "o_item"},
	}
	return experiment6(q, "retailer", cfg, groupBy, specs)
}

// Experiment6Chain measures grouped aggregation on the chain query of
// Example 6 (length = cfg.Scale): the flat result grows exponentially with
// the chain length, so enumerate-then-fold falls off a cliff the
// factorised pass never sees.
func Experiment6Chain(rng *rand.Rand, cfg Exp6Config) (Exp6Row, error) {
	n := cfg.Scale
	q := gen.ChainQuery(rng, n, 100, 20)
	groupBy := []relation.Attribute{"A1"}
	specs := []frep.AggSpec{
		{Fn: frep.AggCount},
		{Fn: frep.AggSum, Attr: relation.Attribute(fmt.Sprintf("B%d", n))},
	}
	return experiment6(q, "chain", cfg, groupBy, specs)
}

// BuildRep compiles q (optimal f-tree search, then the Prepare-time lift
// of the group-by attributes above everything else) and builds its
// factorised representation in the arena-backed encoding — the engine's
// hot path since the columnar refactor.
func BuildRep(q *core.Query, groupBy []relation.Attribute) (*frep.Enc, error) {
	tr, err := liftedTree(q, groupBy)
	if err != nil {
		return nil, err
	}
	return fbuild.BuildEnc(cloneRels(q.Relations), tr)
}

// liftedTree finds the optimal f-tree for q and lifts the group-by
// attributes above everything else, as the query compiler does at Prepare
// time.
func liftedTree(q *core.Query, groupBy []relation.Attribute) (*ftree.T, error) {
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		return nil, err
	}
	if len(groupBy) > 0 {
		if err := (fplan.Lift{Attrs: groupBy}).ApplyTree(tr); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// experiment6 runs one measurement: optimal f-tree, lift of the group-by
// attributes (as the query compiler does at Prepare time), one build, then
// both aggregation strategies over the same representation.
func experiment6(q *core.Query, workload string, cfg Exp6Config, groupBy []relation.Attribute, specs []frep.AggSpec) (Exp6Row, error) {
	row := Exp6Row{Workload: workload, Scale: cfg.Scale}
	fr, err := BuildRep(q, groupBy)
	if err != nil {
		return row, err
	}
	row.FRepSize = int64(fr.Size())
	row.Tuples = fr.Count()

	start := time.Now()
	fact, err := fr.Aggregate(groupBy, specs)
	if err != nil {
		return row, err
	}
	row.FactMS = float64(time.Since(start).Microseconds()) / 1000
	row.Groups = len(fact)

	if cfg.MaxFold > 0 && row.Tuples > cfg.MaxFold {
		row.FoldSkipped = true
		return row, nil
	}
	start = time.Now()
	fold := FoldAggregate(fr, groupBy, specs)
	row.FoldMS = float64(time.Since(start).Microseconds()) / 1000
	if row.FactMS > 0 {
		row.Speedup = row.FoldMS / row.FactMS
	}
	// Sanity: both strategies must agree exactly.
	if len(fact) != len(fold) {
		return row, fmt.Errorf("bench: aggregation mismatch: %d vs %d groups", len(fact), len(fold))
	}
	for i := range fact {
		for j := range fact[i].Key {
			if fact[i].Key[j] != fold[i].Key[j] {
				return row, fmt.Errorf("bench: aggregation key mismatch at row %d: %v vs %v",
					i, fact[i].Key, fold[i].Key)
			}
		}
		for j := range fact[i].Vals {
			if fact[i].Vals[j] != fold[i].Vals[j] {
				return row, fmt.Errorf("bench: aggregation mismatch in group %v: %v vs %v",
					fact[i].Key, fact[i].Vals, fold[i].Vals)
			}
		}
	}
	return row, nil
}
