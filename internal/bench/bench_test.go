package bench

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
)

func TestGrocerySmoke(t *testing.T) {
	q1, q2, joined, err := GrocerySmoke()
	if err != nil {
		t.Fatal(err)
	}
	if q1 <= 0 || q2 <= 0 || joined <= 0 {
		t.Fatalf("degenerate sizes: %d %d %d", q1, q2, joined)
	}
}

func TestVerifyGroceryJoin(t *testing.T) {
	if err := VerifyGroceryJoin(); err != nil {
		t.Fatal(err)
	}
}

func TestExperiment1Small(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rows := Experiment1(rng, []int{1, 2, 3}, []int{1, 2}, 9, 2)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Runs == 0 {
			t.Fatalf("row %+v has no successful runs", r)
		}
		if r.AvgS < 1 {
			t.Fatalf("row %+v has cost below 1", r)
		}
	}
}

func TestExperiment2Small(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	rows := Experiment2(rng, 3, 8, []int{1}, []int{1, 2}, 2)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.Runs == 0 {
			continue
		}
		if r.FullPlanCost > r.GreedyPlanCost+1e-9 {
			t.Fatalf("full search worse than greedy: %+v", r)
		}
	}
}

func TestExperiment3Point(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	row, err := Experiment3Point(rng, Exp3Config{
		Relations: 3, Attributes: 9, N: 50, K: 2, M: 20, Dist: gen.Uniform,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.FDBSize < 0 || row.FlatSize < 0 {
		t.Fatalf("bad row: %+v", row)
	}
	// The factorised result can never have more singletons than the flat
	// result has data elements.
	if row.FlatSize > 0 && row.FDBSize > row.FlatSize {
		t.Fatalf("factorised size %d exceeds flat size %d", row.FDBSize, row.FlatSize)
	}
}

func TestExperiment4Point(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	row, err := Experiment4Point(rng, Exp4Config{
		Relations: 3, Attributes: 9, N: 40, K: 2, L: 1, M: 10,
		Dist: gen.Uniform, MaxFlat: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if row.RDBSkipped {
		t.Fatal("flat input unexpectedly large")
	}
	if !row.EmptyResult && row.FDBSize == 0 {
		t.Fatal("non-empty result with zero size")
	}
}

func TestPreparedVsAdhoc(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cfg := Exp5Config{Orders: 400, Stock: 200, Disps: 100, Items: 20, Locations: 15, Execs: 20}
	row, err := PreparedVsAdhoc(rng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if row.PreparedNS <= 0 || row.AdhocNS <= 0 {
		t.Fatalf("degenerate timings: %+v", row)
	}
	// The repeated identical query must be served from the plan cache.
	if row.CacheHits < uint64(cfg.Execs-1) {
		t.Fatalf("plan cache hits = %d, want >= %d", row.CacheHits, cfg.Execs-1)
	}
}
