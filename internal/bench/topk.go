package bench

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	fdb "repro"
	"repro/internal/frep"
	"repro/internal/relation"
)

// Exp9Row is one point of Experiment 9: ordered top-k retrieval (ORDER BY +
// LIMIT k through the public API) against the flat baseline that enumerates
// every tuple, sorts, and cuts. The retailer workload orders by the join's
// item class — order-compatible, so the engine streams straight off the
// compressed representation and visits O(k) entries; the chain workload
// orders by an endpoint attribute no equally-cheap tree can stream, so the
// engine's bounded size-k heap carries the leg. Both engine sequences are
// checked against their baseline before timings are reported.
type Exp9Row struct {
	Workload string
	Scale    int
	K        int
	Tuples   int64   // flat tuples of the join result
	FRepSize int64   // singletons in the factorised result
	BuildMS  float64 // one prepared-statement Exec (build; shared by both legs)
	TopkMS   float64 // engine ordered top-k retrieval
	FlatMS   float64 // flat enumerate + sort + cut baseline
	Streamed bool    // true: structural streaming; false: bounded heap
}

// Exp9Config parameterises one Experiment 9 measurement.
type Exp9Config struct {
	Scale int
	K     int
}

// exp9Retailer builds the scaled retailer workload through the public API
// (the same shape and sizes as RetailerQuery).
func exp9Retailer(rng *rand.Rand, scale int) (*fdb.DB, []fdb.Clause) {
	const (
		items     = 50
		locations = 40
	)
	db := fdb.New()
	db.MustCreate("Orders", "oid", "item")
	for i := 0; i < 500*scale; i++ {
		db.MustInsert("Orders", i+1, rng.Intn(items)+1)
	}
	db.MustCreate("Stock", "location", "item")
	for i := 0; i < 200*scale; i++ {
		db.MustInsert("Stock", rng.Intn(locations)+1, rng.Intn(items)+1)
	}
	db.MustCreate("Disp", "dispatcher", "location")
	for i := 0; i < 100*scale; i++ {
		db.MustInsert("Disp", rng.Intn(120)+1, rng.Intn(locations)+1)
	}
	return db, []fdb.Clause{
		fdb.From("Orders", "Stock", "Disp"),
		fdb.Eq("Orders.item", "Stock.item"),
		fdb.Eq("Stock.location", "Disp.location"),
	}
}

// exp9Chain builds the chain query of Example 6 (length = scale) through the
// public API.
func exp9Chain(rng *rand.Rand, length int) (*fdb.DB, []fdb.Clause) {
	db := fdb.New()
	var from []string
	for i := 1; i <= length; i++ {
		name := fmt.Sprintf("R%d", i)
		db.MustCreate(name, "A", "B")
		for j := 0; j < 100; j++ {
			db.MustInsert(name, rng.Intn(20)+1, rng.Intn(20)+1)
		}
		from = append(from, name)
	}
	clauses := []fdb.Clause{fdb.From(from...)}
	for i := 1; i < length; i++ {
		clauses = append(clauses, fdb.Eq(fmt.Sprintf("R%d.B", i), fmt.Sprintf("R%d.A", i+1)))
	}
	return db, clauses
}

// Experiment9Retailer: ordered top-k on the retailer join by (item desc,
// oid) — the order-compatible streaming case.
func Experiment9Retailer(rng *rand.Rand, cfg Exp9Config) (Exp9Row, error) {
	db, join := exp9Retailer(rng, cfg.Scale)
	keys := []frep.OrderKey{{Attr: "Orders.item", Desc: true}, {Attr: "Orders.oid"}}
	return experiment9("retailer", cfg, db, join, keys, true)
}

// Experiment9Chain: ordered top-k on the chain join by both endpoints
// (R1.A, RL.B) — for length >= 4, every tree streaming that pair pays more
// than the optimal cost, so the bounded size-k heap answers it.
func Experiment9Chain(rng *rand.Rand, cfg Exp9Config) (Exp9Row, error) {
	db, join := exp9Chain(rng, cfg.Scale)
	keys := []frep.OrderKey{
		{Attr: "R1.A"},
		{Attr: relation.Attribute(fmt.Sprintf("R%d.B", cfg.Scale))},
	}
	return experiment9("chain", cfg, db, join, keys, false)
}

// experiment9 runs one measurement: prepare the ordered and plain
// statements, build once each, then time engine top-k retrieval against the
// flat sort-then-cut baseline and sequence-check them.
func experiment9(workload string, cfg Exp9Config, db *fdb.DB, join []fdb.Clause, keys []frep.OrderKey, wantStream bool) (Exp9Row, error) {
	row := Exp9Row{Workload: workload, Scale: cfg.Scale, K: cfg.K}
	ks := make([]interface{}, len(keys))
	for i, k := range keys {
		if k.Desc {
			ks[i] = fdb.Desc(string(k.Attr))
		} else {
			ks[i] = fdb.Asc(string(k.Attr))
		}
	}
	st, err := db.Prepare(append(join[:len(join):len(join)], fdb.OrderBy(ks...), fdb.Limit(cfg.K))...)
	if err != nil {
		return row, err
	}
	if st.OrderStreamable() != wantStream {
		return row, fmt.Errorf("bench: exp9 %s: OrderStreamable() = %v, want %v (the experiment's legs depend on it)",
			workload, st.OrderStreamable(), wantStream)
	}
	row.Streamed = st.OrderStreamable()
	stPlain, err := db.Prepare(join...)
	if err != nil {
		return row, err
	}

	start := time.Now()
	ordered, err := st.Exec()
	if err != nil {
		return row, err
	}
	row.BuildMS = ms(start)
	plain, err := stPlain.Exec()
	if err != nil {
		return row, err
	}
	row.Tuples = plain.Count()
	row.FRepSize = int64(plain.Size())

	start = time.Now()
	got := drain(ordered.Iter())
	row.TopkMS = ms(start)

	// Baseline tie-breaks must reproduce the engine's deterministic order
	// (keys, then the ordered result's columns ascending), so the key list is
	// extended with the engine schema — making the comparator independent of
	// the baseline's own column order.
	var ordSchema, plainSchema relation.Schema
	for _, a := range ordered.Schema() {
		ordSchema = append(ordSchema, relation.Attribute(a))
	}
	for _, a := range plain.Schema() {
		plainSchema = append(plainSchema, relation.Attribute(a))
	}
	fullKeys := append([]frep.OrderKey(nil), keys...)
	for _, a := range ordSchema {
		fullKeys = append(fullKeys, frep.OrderKey{Attr: a})
	}
	start = time.Now()
	base := flatTopK(plain, fullKeys, cfg.K)
	row.FlatMS = ms(start)

	base = project(base, plainSchema, ordSchema)
	if len(got) != len(base) {
		return row, fmt.Errorf("bench: exp9 %s/%d: engine %d tuples, baseline %d", workload, cfg.Scale, len(got), len(base))
	}
	for i := range got {
		if got[i].Compare(base[i]) != 0 {
			return row, fmt.Errorf("bench: exp9 %s/%d: sequence diverges at %d: %v vs %v",
				workload, cfg.Scale, i, got[i], base[i])
		}
	}
	return row, nil
}

// drain collects every tuple of the iterator (cloned).
func drain(it frep.TupleIter) []relation.Tuple {
	var out []relation.Tuple
	for {
		t, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, t.Clone())
	}
}

// flatTopK is the baseline: enumerate the whole unordered result, sort flat
// with the given keys, cut k.
func flatTopK(res *fdb.Result, keys []frep.OrderKey, k int) []relation.Tuple {
	var schema relation.Schema
	for _, a := range res.Schema() {
		schema = append(schema, relation.Attribute(a))
	}
	all := drain(res.Iter())
	cmp := frep.TupleCompare(schema, keys, nil)
	sort.SliceStable(all, func(i, j int) bool { return cmp(all[i], all[j]) < 0 })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// project maps tuples into the target schema's column order, so legs with
// differently-shaped trees compare the same logical rows.
func project(tuples []relation.Tuple, from, to relation.Schema) []relation.Tuple {
	idx := make([]int, len(to))
	for i, a := range to {
		idx[i] = from.Index(a)
	}
	out := make([]relation.Tuple, len(tuples))
	for i, t := range tuples {
		nt := make(relation.Tuple, len(idx))
		for j, c := range idx {
			nt[j] = t[c]
		}
		out[i] = nt
	}
	return out
}
