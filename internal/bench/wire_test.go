package bench

import "testing"

// TestExperiment11Wire: all three legs run end to end, the built-in
// wire-vs-library parity check passes, and every leg reports plausible
// timings.
func TestExperiment11Wire(t *testing.T) {
	rows, err := Experiment11Wire(11, Exp11Config{Ops: 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 legs, got %d", len(rows))
	}
	modes := map[string]bool{}
	for _, r := range rows {
		modes[r.Mode] = true
		if r.Ops != 60 || r.NsPerOp <= 0 || r.P99Ns <= 0 {
			t.Fatalf("degenerate leg: %+v", r)
		}
	}
	for _, m := range []string{"library", "wire", "wire_pipelined"} {
		if !modes[m] {
			t.Fatalf("missing leg %q", m)
		}
	}
}
