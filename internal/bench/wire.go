package bench

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	fdb "repro"
	"repro/internal/wire"
)

// Exp11Row is one point of Experiment 11: the cost of the network front-end
// over direct library execution. All three legs run the same parameterised
// point query against the same seeded retailer database — through the
// library API, through one synchronous wire round trip per request, and
// through the wire with eight requests pipelined — and every wire response
// is checked byte for byte against the library result before timings are
// reported, so the overhead measured is protocol + scheduling, never a
// different answer.
type Exp11Row struct {
	Mode    string // "library", "wire", "wire_pipelined"
	Ops     int
	NsPerOp float64
	P99Ns   float64
}

// Exp11Config parameterises Experiment 11.
type Exp11Config struct {
	Scale int // retailer workload scale (default 1)
	Ops   int // operations per leg (default 400)
}

const exp11Depth = 8 // pipeline depth of the third leg

// Experiment11Wire measures library vs wire vs pipelined-wire per-request
// latency on identical work.
func Experiment11Wire(seed int64, cfg Exp11Config) ([]Exp11Row, error) {
	if cfg.Scale < 1 {
		cfg.Scale = 1
	}
	if cfg.Ops < 1 {
		cfg.Ops = 400
	}
	db := fdb.New()
	if err := wire.SeedRetailer(db, seed, cfg.Scale); err != nil {
		return nil, err
	}
	srv := wire.NewServer(db, wire.Options{})
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
	}()
	cl, err := wire.Dial(addr.String())
	if err != nil {
		return nil, err
	}
	defer cl.Close()

	// The probe query: the read pool's parameterised point selection.
	q := wire.RetailerQueries()[0]
	clauses, err := q.Spec.Clauses()
	if err != nil {
		return nil, err
	}
	st, err := db.PrepareCached(clauses...)
	if err != nil {
		return nil, err
	}
	rs, err := cl.Prepare(&q.Spec)
	if err != nil {
		return nil, err
	}

	libRows := func(args []wire.Arg) ([]byte, error) {
		fargs := make([]fdb.NamedArg, len(args))
		for i, a := range args {
			fargs[i] = fdb.Arg(a.Name, a.Val.Native())
		}
		res, err := st.Exec(fargs...)
		if err != nil {
			return nil, err
		}
		return wire.EncodeRows(&wire.Rows{Schema: res.Schema(), Rows: res.Rows(0)}), nil
	}

	// Parity check before any timing: every distinct binding must agree.
	parity := rand.New(rand.NewSource(seed))
	for i := 0; i < 25; i++ {
		args := q.Args(parity)
		got, err := rs.Exec(0, 0, args...)
		if err != nil {
			return nil, fmt.Errorf("parity exec: %v", err)
		}
		want, err := libRows(args)
		if err != nil {
			return nil, err
		}
		if !bytes.Equal(wire.EncodeRows(got), want) {
			return nil, fmt.Errorf("wire leg diverges from library on %v", args)
		}
	}

	percentile := func(lat []int64, p float64) float64 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return float64(lat[int(p*float64(len(lat)-1))])
	}
	rows := make([]Exp11Row, 0, 3)

	// Leg 1: direct library execution (prepare amortised, render included).
	rng := rand.New(rand.NewSource(seed + 1))
	lat := make([]int64, 0, cfg.Ops)
	start := time.Now()
	for i := 0; i < cfg.Ops; i++ {
		args := q.Args(rng)
		t0 := time.Now()
		if _, err := libRows(args); err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	rows = append(rows, Exp11Row{
		Mode: "library", Ops: cfg.Ops,
		NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(cfg.Ops),
		P99Ns:   percentile(lat, 0.99),
	})

	// Leg 2: one synchronous wire round trip per request.
	rng = rand.New(rand.NewSource(seed + 1))
	lat = lat[:0]
	start = time.Now()
	for i := 0; i < cfg.Ops; i++ {
		args := q.Args(rng)
		t0 := time.Now()
		if _, err := rs.Exec(0, 0, args...); err != nil {
			return nil, err
		}
		lat = append(lat, time.Since(t0).Nanoseconds())
	}
	rows = append(rows, Exp11Row{
		Mode: "wire", Ops: cfg.Ops,
		NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(cfg.Ops),
		P99Ns:   percentile(lat, 0.99),
	})

	// Leg 3: the same requests with exp11Depth in flight; per-op latency is
	// issue-to-completion, throughput is what pipelining buys.
	rng = rand.New(rand.NewSource(seed + 1))
	lat = lat[:0]
	type inflight struct {
		p  *wire.Pending
		t0 time.Time
	}
	var window []inflight
	drain := func(n int) error {
		for len(window) > n {
			head := window[0]
			window = window[1:]
			if _, err := wire.WaitRows(head.p); err != nil {
				return err
			}
			lat = append(lat, time.Since(head.t0).Nanoseconds())
		}
		return nil
	}
	start = time.Now()
	for i := 0; i < cfg.Ops; i++ {
		args := q.Args(rng)
		p, err := rs.Start(0, 0, args...)
		if err != nil {
			return nil, err
		}
		window = append(window, inflight{p: p, t0: time.Now()})
		if err := drain(exp11Depth - 1); err != nil {
			return nil, err
		}
	}
	if err := drain(0); err != nil {
		return nil, err
	}
	rows = append(rows, Exp11Row{
		Mode: "wire_pipelined", Ops: cfg.Ops,
		NsPerOp: float64(time.Since(start).Nanoseconds()) / float64(cfg.Ops),
		P99Ns:   percentile(lat, 0.99),
	})
	return rows, nil
}
