package bench

import (
	"fmt"
	"math/rand"
	"time"

	fdb "repro"
)

// Exp5Row is one point of the prepared-vs-ad-hoc amortisation experiment:
// the same parameterised select-project-join executed Execs times with
// distinct constants, once as cold db.Query calls (every call re-compiles:
// clause validation, input clone+dedup, f-tree search, input sorting) and
// once as stmt.Exec on a statement prepared once.
type Exp5Row struct {
	Execs       int
	AdhocNS     float64 // avg ns per cold db.Query
	PreparedNS  float64 // avg ns per stmt.Exec
	Speedup     float64 // AdhocNS / PreparedNS
	CacheHits   uint64  // plan-cache hits from the repeated-identical leg
	CacheMisses uint64
}

// Exp5Config parameterises PreparedVsAdhoc.
type Exp5Config struct {
	Orders    int // tuples in Orders
	Stock     int // tuples in Stock
	Disps     int // tuples in Disp
	Items     int // distinct item values
	Locations int
	Execs     int // executions per leg
}

// DefaultExp5Config is the grid used by cmd/fdbench and the Go benchmarks.
func DefaultExp5Config() Exp5Config {
	return Exp5Config{Orders: 2000, Stock: 800, Disps: 300, Items: 50, Locations: 40, Execs: 100}
}

// exp5DB builds the retailer-style workload through the public API.
func exp5DB(rng *rand.Rand, cfg Exp5Config) *fdb.DB {
	db := fdb.New()
	db.MustCreate("Orders", "oid", "item")
	for i := 0; i < cfg.Orders; i++ {
		db.MustInsert("Orders", i, rng.Intn(cfg.Items))
	}
	db.MustCreate("Stock", "location", "item")
	for i := 0; i < cfg.Stock; i++ {
		db.MustInsert("Stock", rng.Intn(cfg.Locations), rng.Intn(cfg.Items))
	}
	db.MustCreate("Disp", "dispatcher", "location")
	for i := 0; i < cfg.Disps; i++ {
		db.MustInsert("Disp", i%120, rng.Intn(cfg.Locations))
	}
	return db
}

// PreparedVsAdhoc measures the amortisation win of the prepared-statement
// API. Both legs answer the same queries — the retailer join restricted to
// one item value per execution — so the only difference is where the
// compile cost is paid. The plan cache is disabled for the ad-hoc leg so
// every call compiles cold even when the constants wrap around the item
// domain. A third leg (cache re-enabled) repeats one identical db.Query to
// surface the plan-cache hit counters.
func PreparedVsAdhoc(rng *rand.Rand, cfg Exp5Config) (Exp5Row, error) {
	row := Exp5Row{Execs: cfg.Execs}
	db := exp5DB(rng, cfg)
	join := []fdb.Clause{
		fdb.From("Orders", "Stock", "Disp"),
		fdb.Eq("Orders.item", "Stock.item"),
		fdb.Eq("Stock.location", "Disp.location"),
	}

	// Ad-hoc leg: a fresh constant every call, compiled from scratch.
	db.SetPlanCacheCapacity(0)
	start := time.Now()
	var adhocTuples int64
	for i := 0; i < cfg.Execs; i++ {
		res, err := db.Query(append(join[:3:3],
			fdb.Cmp("Orders.item", fdb.EQ, i%cfg.Items))...)
		if err != nil {
			return row, err
		}
		adhocTuples += res.Count()
	}
	row.AdhocNS = float64(time.Since(start).Nanoseconds()) / float64(cfg.Execs)

	// Prepared leg: compile once, bind per execution.
	stmt, err := db.Prepare(append(join[:3:3],
		fdb.Cmp("Orders.item", fdb.EQ, fdb.Param("item")))...)
	if err != nil {
		return row, err
	}
	start = time.Now()
	var preparedTuples int64
	for i := 0; i < cfg.Execs; i++ {
		res, err := stmt.Exec(fdb.Arg("item", i%cfg.Items))
		if err != nil {
			return row, err
		}
		preparedTuples += res.Count()
	}
	row.PreparedNS = float64(time.Since(start).Nanoseconds()) / float64(cfg.Execs)
	if row.PreparedNS > 0 {
		row.Speedup = row.AdhocNS / row.PreparedNS
	}
	if adhocTuples != preparedTuples {
		return row, fmt.Errorf("bench: prepared and ad-hoc legs disagree: %d vs %d tuples",
			preparedTuples, adhocTuples)
	}

	// Cache leg: the same ad-hoc query repeated hits the plan cache.
	db.SetPlanCacheCapacity(64)
	before := db.CacheStats()
	for i := 0; i < cfg.Execs; i++ {
		if _, err := db.Query(join...); err != nil {
			return row, err
		}
	}
	after := db.CacheStats()
	row.CacheHits = after.Hits - before.Hits
	row.CacheMisses = after.Misses - before.Misses
	return row, nil
}
