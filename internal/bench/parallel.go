package bench

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fbuild"
	"repro/internal/frep"
	"repro/internal/gen"
	"repro/internal/relation"
)

// Exp8Row is one point of Experiment 8: the morsel-parallel execution paths
// (build, aggregation, enumeration) at one worker count. Speedups are left
// to the consumer (cmd/fdbench computes them from times averaged across
// runs, where single-row ratios would only add noise).
type Exp8Row struct {
	Workload string
	Scale    int
	Workers  int
	FRepSize int64 // singletons in the factorised result
	Tuples   int64 // tuples of the (never materialised) flat result
	BuildMS  float64
	AggMS    float64
	EnumMS   float64
}

// Exp8Config parameterises one Experiment 8 sweep.
type Exp8Config struct {
	Scale   int
	Workers []int // worker counts to sweep; the first should be 1
	MaxEnum int64 // skip the enumeration legs above this many flat tuples (0: never)
}

// Experiment8Retailer sweeps worker counts on the scaled retailer workload:
// heavy many-to-many joins, grouped aggregation per location.
func Experiment8Retailer(rng *rand.Rand, cfg Exp8Config) ([]Exp8Row, error) {
	q := RetailerQuery(rng, cfg.Scale)
	groupBy := []relation.Attribute{"s_location"}
	specs := []frep.AggSpec{
		{Fn: frep.AggCount},
		{Fn: frep.AggSum, Attr: "o_oid"},
		{Fn: frep.AggCountDistinct, Attr: "o_item"},
	}
	return experiment8(q, "retailer", cfg, groupBy, specs)
}

// Experiment8Chain sweeps worker counts on the chain query of Example 6
// (length = cfg.Scale): tiny input, astronomically large flat result, so
// aggregation and enumeration dominate.
func Experiment8Chain(rng *rand.Rand, cfg Exp8Config) ([]Exp8Row, error) {
	n := cfg.Scale
	q := gen.ChainQuery(rng, n, 100, 20)
	groupBy := []relation.Attribute{"A1"}
	specs := []frep.AggSpec{
		{Fn: frep.AggCount},
		{Fn: frep.AggSum, Attr: relation.Attribute(fmt.Sprintf("B%d", n))},
	}
	return experiment8(q, "chain", cfg, groupBy, specs)
}

// experiment8 runs one sweep: a shared lifted f-tree and pre-sorted inputs
// (the prepared-statement situation), then per worker count one parallel
// build, one parallel grouped aggregation and one sharded enumeration, each
// cross-checked against the 1-worker leg.
func experiment8(q *core.Query, workload string, cfg Exp8Config, groupBy []relation.Attribute, specs []frep.AggSpec) ([]Exp8Row, error) {
	tr, err := liftedTree(q, groupBy)
	if err != nil {
		return nil, err
	}
	rels := cloneRels(q.Relations)
	// Sort once up front, as Prepare does: the sweep then measures the
	// parallel build itself, not the one-off sort.
	if err := fbuild.SortFor(rels, tr); err != nil {
		return nil, err
	}

	var out []Exp8Row
	var serial *frep.Enc
	var serialRows []frep.AggRow
	for _, w := range cfg.Workers {
		row := Exp8Row{Workload: workload, Scale: cfg.Scale, Workers: w}

		start := time.Now()
		enc, err := fbuild.BuildEncParallel(rels, tr.Clone(), w)
		if err != nil {
			return nil, err
		}
		row.BuildMS = ms(start)
		row.FRepSize = int64(enc.Size())
		row.Tuples = enc.Count()

		start = time.Now()
		rows, err := enc.AggregateParallel(groupBy, specs, w)
		if err != nil {
			return nil, err
		}
		row.AggMS = ms(start)

		enumerate := cfg.MaxEnum == 0 || row.Tuples <= cfg.MaxEnum
		if enumerate {
			start = time.Now()
			var n atomic.Int64
			enc.EnumerateParallel(w, func(int, relation.Tuple) bool {
				n.Add(1)
				return true
			})
			row.EnumMS = ms(start)
			if n.Load() != row.Tuples {
				return nil, fmt.Errorf("bench: exp8 %s/%d (w=%d): enumerated %d tuples, Count says %d",
					workload, cfg.Scale, w, n.Load(), row.Tuples)
			}
		}

		if serial == nil {
			serial, serialRows = enc, rows
		} else {
			// Every leg must agree with the first bit for bit.
			if !enc.Equal(serial) {
				return nil, fmt.Errorf("bench: exp8 %s/%d: %d-worker build differs from %d-worker build",
					workload, cfg.Scale, w, cfg.Workers[0])
			}
			if len(rows) != len(serialRows) {
				return nil, fmt.Errorf("bench: exp8 %s/%d: %d-worker aggregation has %d groups, want %d",
					workload, cfg.Scale, w, len(rows), len(serialRows))
			}
			for i := range rows {
				for j := range rows[i].Vals {
					if rows[i].Vals[j] != serialRows[i].Vals[j] {
						return nil, fmt.Errorf("bench: exp8 %s/%d: %d-worker aggregation differs in group %v",
							workload, cfg.Scale, w, rows[i].Key)
					}
				}
			}
		}
		out = append(out, row)
	}
	return out, nil
}
