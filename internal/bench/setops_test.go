package bench

import (
	"math/rand"
	"testing"
)

// TestExperiment14Parity runs the set-algebra experiment at a small scale:
// the embedded parity check (factorised merge vs flat mirror, per operator)
// is the assertion.
func TestExperiment14Parity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rows, err := Experiment14Retailer(rng, Exp14Config{Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byOp := map[string]Exp14Row{}
	for _, r := range rows {
		if r.Tuples < 0 || r.FRepSize <= 0 {
			t.Errorf("%s: implausible sizes: %+v", r.Op, r)
		}
		byOp[r.Op] = r
	}
	// The legs were built to overlap (and are sets), so the standard
	// cardinality identities must hold exactly.
	a, b := rows[0].TuplesA, rows[0].TuplesB
	if got := byOp["union_all"].Tuples; got != a+b {
		t.Errorf("|A ⊎ B| = %d, want |A| + |B| = %d", got, a+b)
	}
	if byOp["intersect"].Tuples == 0 {
		t.Error("intersect is empty: the legs were built to overlap")
	}
	if got := byOp["union"].Tuples; got != byOp["except"].Tuples+b {
		t.Errorf("|A ∪ B| = %d, want |A − B| + |B| = %d", got, byOp["except"].Tuples+b)
	}
	if got := byOp["intersect"].Tuples; got != a-byOp["except"].Tuples {
		t.Errorf("|A ∩ B| = %d, want |A| − |A − B| = %d", got, a-byOp["except"].Tuples)
	}
}
