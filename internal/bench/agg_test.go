package bench

import (
	"math/rand"
	"testing"
)

// Experiment 6 carries its own factorised-vs-fold equality check; running
// one small point per workload keeps the harness honest.
func TestExperiment6Agree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	row, err := Experiment6Retailer(rng, Exp6Config{Scale: 1, MaxFold: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if row.FoldSkipped || row.Groups == 0 {
		t.Fatalf("retailer point degenerate: %+v", row)
	}
	crow, err := Experiment6Chain(rng, Exp6Config{Scale: 3, MaxFold: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if crow.FoldSkipped || crow.Groups == 0 {
		t.Fatalf("chain point degenerate: %+v", crow)
	}
}

// The fold cap must kick in rather than enumerate forever.
func TestExperiment6FoldCap(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	row, err := Experiment6Chain(rng, Exp6Config{Scale: 6, MaxFold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !row.FoldSkipped {
		t.Fatalf("fold should have been skipped at %d tuples: %+v", row.Tuples, row)
	}
	if row.FactMS < 0 || row.Groups == 0 {
		t.Fatalf("factorised leg missing: %+v", row)
	}
}
