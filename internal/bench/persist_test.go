package bench

import (
	"math/rand"
	"testing"
)

// TestExperiment12Persist runs the cold-open experiment end to end at small
// scales: the parity prechecks inside the experiment are the real assertion
// (ordered sample + aggregate table byte-identical across live, cold-open
// and rebuilt databases); here we additionally pin the row bookkeeping.
func TestExperiment12Persist(t *testing.T) {
	scales := []int{1, 2}
	if testing.Short() {
		scales = []int{1}
	}
	rows, err := Experiment12Persist(rand.New(rand.NewSource(1)), Exp12Config{Scales: scales, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(scales) {
		t.Fatalf("got %d rows, want %d", len(rows), len(scales))
	}
	for _, r := range rows {
		if r.Tuples <= 0 {
			t.Errorf("scale %d: no result tuples", r.Scale)
		}
		if r.FileKB <= 0 {
			t.Errorf("scale %d: snapshot file empty", r.Scale)
		}
		if r.ColdMS <= 0 || r.RebuildMS <= 0 {
			t.Errorf("scale %d: missing timings: cold %.3f rebuild %.3f", r.Scale, r.ColdMS, r.RebuildMS)
		}
		if r.Speedup <= 0 {
			t.Errorf("scale %d: speedup not computed", r.Scale)
		}
	}
}
