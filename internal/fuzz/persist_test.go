package fuzz

import (
	"testing"
)

// TestDifferentialPersisted puts snapshot-opened databases under the same
// differential bar as live ones: each seed's database is saved to a
// zero-copy snapshot file, reopened (mmap when the platform allows), and
// every query variant of the case — joins, selections, projections,
// aggregates, OrderBy/Limit/Offset/Distinct — is sequence-compared against
// the flat oracle over the reopened database. Failures reproduce with
// fuzz.CheckPersisted(seed, p, dir).
func TestDifferentialPersisted(t *testing.T) {
	seeds := 150
	if testing.Short() {
		seeds = 25
	}
	dir := t.TempDir()
	ps := parallelisms()
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, p := range ps {
			if err := CheckPersisted(seed, p, dir); err != nil {
				t.Fatal(err)
			}
		}
	}
}
