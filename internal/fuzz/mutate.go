// Mutation differential harness: the same seed-derived query workload as
// fuzz.go, run against a database that keeps changing. A schedule of
// Insert/Delete/Upsert batches and compactions (all derived from the seed)
// is applied through the public write API and mirrored onto flat oracle
// relations under set semantics; after every step the live query must match
// a fresh oracle evaluation (read-your-writes through the plan cache and
// statement refresh), and every pinned snapshot must keep matching the
// oracle copy captured when it was pinned — including snapshots taken
// before mutations and queried after later writes and compactions.
package fuzz

import (
	"fmt"
	"math/rand"

	fdb "repro"
	"repro/internal/core"
	"repro/internal/rdb"
	"repro/internal/relation"
)

// maxPins bounds the snapshots a workload holds open at once.
const maxPins = 3

// CheckMutations derives the mutation workload for seed, runs it at the
// given parallelism and returns the number of oracle-compared queries. Any
// divergence comes back as a seed-stamped error reproducible with
// CheckMutations(seed, p) alone.
func CheckMutations(seed int64, parallelism int) (int, error) {
	c, err := NewCase(seed)
	if err != nil {
		return 0, fmt.Errorf("fuzz: mutation seed %d: generate: %v", seed, err)
	}
	// Mutations run on plain ints: the write schedule below would otherwise
	// have to replay dictionary code assignment per mutation order. The set
	// operation (if drawn) is dropped too — its check runs against the
	// concrete *fdb.DB, while this harness also queries pinned snapshots.
	c.strs = nil
	c.setOp = 0
	c.sels2 = nil
	rng := rand.New(rand.NewSource(seed*0x9E3779B9 + 0x7F4A7C15))

	db := fdb.New()
	db.SetParallelism(parallelism)
	oracle := make([]*relation.Relation, len(c.rels))
	dom := relation.Value(4)
	for i, rel := range c.rels {
		if err := db.Create(rel.Name, c.bare[rel.Name]...); err != nil {
			return 0, fmt.Errorf("fuzz: mutation seed %d: create: %v", seed, err)
		}
		for _, t := range rel.Tuples {
			vals := make([]interface{}, len(t))
			for j, v := range t {
				vals[j] = int64(v)
				if v > dom {
					dom = v
				}
			}
			if err := db.Insert(rel.Name, vals...); err != nil {
				return 0, fmt.Errorf("fuzz: mutation seed %d: insert: %v", seed, err)
			}
		}
		// The oracle mirror is deduped up front: the engine is a set, and
		// delete/upsert mirroring below assumes one copy per tuple.
		oracle[i] = rel.Clone()
		oracle[i].Dedup()
	}
	dom += 3 // a little headroom so inserts create genuinely new tuples

	clauses := []fdb.Clause{fdb.From(c.names...)}
	for _, e := range c.eqs {
		clauses = append(clauses, fdb.Eq(string(e.A), string(e.B)))
	}
	for _, s := range c.sels {
		clauses = append(clauses, fdb.Cmp(string(s.A), s.Op, int64(s.C)))
	}

	queries := 0
	check := func(q Querier, flat *relation.Relation, tag string) error {
		if flat == nil {
			return nil // oracle past its cap: skip, never fails
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("fuzz: mutation seed %d (p=%d, %s): %s",
				seed, parallelism, tag, fmt.Sprintf(format, args...))
		}
		queries++
		if len(c.aggs) > 0 {
			return c.checkAgg(q, clauses, flat, fail)
		}
		return c.checkPlain(q, clauses, flat, fail)
	}

	type pin struct {
		snap *fdb.Snapshot
		flat *relation.Relation // oracle view captured at pin time
		step int
	}
	var pins []pin

	steps := 10 + rng.Intn(8)
	for step := 0; step < steps; step++ {
		ri := rng.Intn(len(oracle))
		name := c.names[ri]
		orel := oracle[ri]
		switch op := rng.Intn(10); {
		case op < 4: // insert a small batch (some tuples may already exist)
			n := 1 + rng.Intn(4)
			rows := make([][]interface{}, 0, n)
			for j := 0; j < n; j++ {
				t := randomTuple(rng, len(orel.Schema), dom)
				rows = append(rows, rowOf(t))
				oracleAdd(orel, t)
			}
			if err := db.InsertBatch(name, rows); err != nil {
				return queries, fmt.Errorf("fuzz: mutation seed %d: step %d insert: %v", seed, step, err)
			}
		case op < 7: // delete a batch: live tuples, plus sometimes an absent one
			n := 1 + rng.Intn(3)
			rows := make([][]interface{}, 0, n)
			for j := 0; j < n; j++ {
				var t relation.Tuple
				if len(orel.Tuples) > 0 && rng.Intn(5) > 0 {
					t = orel.Tuples[rng.Intn(len(orel.Tuples))].Clone()
				} else {
					t = randomTuple(rng, len(orel.Schema), dom)
				}
				rows = append(rows, rowOf(t))
				oracleRemove(orel, t)
			}
			if err := db.DeleteBatch(name, rows); err != nil {
				return queries, fmt.Errorf("fuzz: mutation seed %d: step %d delete: %v", seed, step, err)
			}
		case op < 9: // upsert on a random-width key prefix
			key := 1 + rng.Intn(len(orel.Schema))
			t := randomTuple(rng, len(orel.Schema), dom)
			if len(orel.Tuples) > 0 && rng.Intn(2) == 0 {
				// Half the time aim at a live key so the upsert displaces.
				copy(t[:key], orel.Tuples[rng.Intn(len(orel.Tuples))][:key])
			}
			oracleUpsert(orel, t, key)
			if err := db.Upsert(name, key, rowOf(t)...); err != nil {
				return queries, fmt.Errorf("fuzz: mutation seed %d: step %d upsert: %v", seed, step, err)
			}
		default: // fold the delta chain away under every open snapshot
			if err := db.Compact(name); err != nil {
				return queries, fmt.Errorf("fuzz: mutation seed %d: step %d compact: %v", seed, step, err)
			}
		}

		flat, err := c.flatEval(oracle)
		if err != nil {
			return queries, fmt.Errorf("fuzz: mutation seed %d: step %d oracle: %v", seed, step, err)
		}
		if err := check(db, flat, fmt.Sprintf("step %d live", step)); err != nil {
			return queries, err
		}
		// Every snapshot pinned at an earlier step must still answer with
		// its pinned view, bit-for-bit, after this mutation.
		for _, p := range pins {
			if err := check(p.snap, p.flat, fmt.Sprintf("step %d snap@%d", step, p.step)); err != nil {
				return queries, err
			}
		}
		if len(pins) < maxPins && rng.Intn(3) == 0 {
			pins = append(pins, pin{snap: db.Snapshot(), flat: flat, step: step})
		}
	}

	for _, p := range pins {
		p.snap.Close()
		if _, err := p.snap.Query(fdb.From(c.names[0])); err == nil {
			return queries, fmt.Errorf("fuzz: mutation seed %d: closed snapshot (step %d) still answered", seed, p.step)
		}
	}
	if open := db.OpenSnapshots(); open != 0 {
		return queries, fmt.Errorf("fuzz: mutation seed %d: %d snapshots leaked", seed, open)
	}
	return queries, nil
}

// flatEval evaluates the case's query over the given relation states with
// the flat oracle; nil (no error) when the flat result exceeds the cap.
func (c *Case) flatEval(rels []*relation.Relation) (*relation.Relation, error) {
	oq := &core.Query{Equalities: c.eqs, Selections: c.sels}
	for _, rel := range rels {
		oq.Relations = append(oq.Relations, rel.Clone())
	}
	ores, err := rdb.Evaluate(oq, rdb.Options{Materialize: true, MaxTuples: maxOracleTuples})
	if err != nil {
		return nil, err
	}
	if ores.TimedOut || ores.Relation == nil {
		return nil, nil
	}
	return ores.Relation, nil
}

func randomTuple(rng *rand.Rand, arity int, dom relation.Value) relation.Tuple {
	t := make(relation.Tuple, arity)
	for i := range t {
		t[i] = 1 + relation.Value(rng.Int63n(int64(dom)))
	}
	return t
}

func rowOf(t relation.Tuple) []interface{} {
	row := make([]interface{}, len(t))
	for i, v := range t {
		row[i] = int64(v)
	}
	return row
}

func oracleHas(rel *relation.Relation, t relation.Tuple) bool {
	for _, u := range rel.Tuples {
		if u.Compare(t) == 0 {
			return true
		}
	}
	return false
}

func oracleAdd(rel *relation.Relation, t relation.Tuple) {
	if !oracleHas(rel, t) {
		rel.AppendTuple(t.Clone())
	}
}

func oracleRemove(rel *relation.Relation, t relation.Tuple) {
	for i, u := range rel.Tuples {
		if u.Compare(t) == 0 {
			rel.Tuples = append(rel.Tuples[:i:i], rel.Tuples[i+1:]...)
			return
		}
	}
}

// oracleUpsert mirrors DB.Upsert: remove every tuple agreeing with t on the
// first key columns, then add t.
func oracleUpsert(rel *relation.Relation, t relation.Tuple, key int) {
	kept := rel.Tuples[:0:0]
	for _, u := range rel.Tuples {
		match := true
		for c := 0; c < key; c++ {
			if u[c] != t[c] {
				match = false
				break
			}
		}
		if !match {
			kept = append(kept, u)
		}
	}
	rel.Tuples = kept
	oracleAdd(rel, t)
}
