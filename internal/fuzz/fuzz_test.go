package fuzz

import (
	"runtime"
	"testing"

	fdb "repro"
)

// parallelisms returns the worker counts every case runs at: the serial
// path and P=GOMAXPROCS, plus a forced multi-worker leg when GOMAXPROCS is
// too small to exercise the parallel code at all.
func parallelisms() []int {
	ps := []int{1, runtime.GOMAXPROCS(0)}
	if runtime.GOMAXPROCS(0) < 4 {
		ps = append(ps, 4)
	}
	return ps
}

// TestDifferential runs the differential harness over a block of seeds —
// at least 1500 sequence-compared queries per full package run (750 seeds ×
// ≥2 parallelism legs), covering OrderBy/Limit/Offset/Distinct alongside
// joins, selections, projections and aggregates. Failures reproduce with
// fuzz.Check(seed, p).
func TestDifferential(t *testing.T) {
	seeds := 750
	if testing.Short() {
		seeds = 60
	}
	ps := parallelisms()
	queries := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, p := range ps {
			if err := Check(seed, p); err != nil {
				t.Fatal(err)
			}
			queries++
		}
	}
	t.Logf("fuzz: %d queries checked (%d seeds × %d parallelism legs)", queries, seeds, len(ps))
}

// TestDifferentialPlanners is the greedy-vs-exhaustive planner differential:
// every seed runs once forced to the polynomial greedy tier and once forced
// to the exhaustive search, and both legs must reproduce the flat oracle's
// exact tuple sequence — ≥1500 oracle-compared queries per full package run
// (750 seeds × 2 tiers), zero divergence allowed. Failures reproduce with
// fuzz.CheckPlanner(seed, 1, mode).
func TestDifferentialPlanners(t *testing.T) {
	seeds := 750
	if testing.Short() {
		seeds = 60
	}
	modes := []fdb.PlannerMode{fdb.PlannerGreedy, fdb.PlannerExhaustive}
	queries := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, mode := range modes {
			if err := CheckPlanner(seed, 1, mode); err != nil {
				t.Fatal(err)
			}
			queries++
		}
	}
	if !testing.Short() && queries < 1500 {
		t.Fatalf("planner differential too small: %d oracle-compared queries < 1500", queries)
	}
	t.Logf("fuzz: %d planner-tier queries checked (%d seeds × %d tiers)", queries, seeds, len(modes))
}

// TestCaseDeterminism: the same seed derives the same case — the property
// the printed-seed reproduction workflow relies on.
func TestCaseDeterminism(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		a, err := NewCase(seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewCase(seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.rels) != len(b.rels) || len(a.eqs) != len(b.eqs) ||
			len(a.sels) != len(b.sels) || len(a.aggs) != len(b.aggs) {
			t.Fatalf("seed %d: case shape differs between derivations", seed)
		}
		for i := range a.rels {
			if !a.rels[i].Equal(b.rels[i]) {
				t.Fatalf("seed %d: relation %s differs between derivations", seed, a.rels[i].Name)
			}
		}
	}
}

// TestMutationDifferential runs the mutation harness over a block of seeds:
// every seed applies 10-17 Insert/Delete/Upsert/Compact steps through the
// public write API and re-checks the live query plus every pinned snapshot
// against the flat oracle after each step — ≥1500 sequence-compared queries
// per full package run across ≥2 parallelism legs, zero divergence allowed.
// Failures reproduce with fuzz.CheckMutations(seed, p).
func TestMutationDifferential(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	ps := parallelisms()
	queries := 0
	for seed := int64(1); seed <= int64(seeds); seed++ {
		for _, p := range ps {
			n, err := CheckMutations(seed, p)
			queries += n
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if !testing.Short() && queries < 1500 {
		t.Fatalf("mutation workload too small: %d oracle-compared queries < 1500", queries)
	}
	t.Logf("fuzz: %d mutation-workload queries checked (%d seeds × %d parallelism legs)", queries, seeds, len(ps))
}

// FuzzDifferential is the `go test -fuzz` entry point: the fuzzer mutates
// the seed (and a parallelism byte), the corpus seeds come from the block
// the deterministic test covers. Each input is exercised both as a static
// workload (Check) and as a mutation workload (CheckMutations) so corpus
// entries cover the write path too.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), uint8(1))
	f.Add(int64(2), uint8(2))
	f.Add(int64(42), uint8(4))
	f.Add(int64(500), uint8(3))
	// Mutation-workload corpus: seeds whose schedules hit every write verb,
	// compaction under open snapshots, and the aggregate query shape.
	f.Add(int64(7), uint8(2))
	f.Add(int64(23), uint8(4))
	f.Add(int64(1009), uint8(1))
	// Set-operation corpus: one seed per operator (union, union all, except,
	// intersect), one combining a set operation with a scrambled string
	// dictionary, and one with string range selections (decoded-order cuts).
	f.Add(int64(22), uint8(1))
	f.Add(int64(17), uint8(2))
	f.Add(int64(15), uint8(1))
	f.Add(int64(32), uint8(3))
	f.Add(int64(58), uint8(1)) // regression: union-all bag under ordered retrieval
	f.Add(int64(319), uint8(1))
	f.Add(int64(2), uint8(2))
	f.Add(int64(4), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, p uint8) {
		workers := int(p%8) + 1
		if err := Check(seed, workers); err != nil {
			t.Fatal(err)
		}
		if _, err := CheckMutations(seed, workers); err != nil {
			t.Fatal(err)
		}
	})
}
