// Package fuzz is the differential testing harness of the engine: it
// derives a complete random query workload from a single seed — schema and
// data via internal/gen, a conjunctive equality join, constant selections,
// and either a projection or a group-by aggregation — runs it through the
// public fdb surface at a chosen execution parallelism, and checks the
// result tuple-for-tuple (or aggregate-row-for-row) against the flat
// internal/rdb oracle. Every failure message leads with the seed, so any
// mismatch found by the randomised tests or by `go test -fuzz` reproduces
// with Check(seed, p) alone.
package fuzz

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	fdb "repro"
	"repro/internal/core"
	"repro/internal/frep"
	"repro/internal/gen"
	"repro/internal/rdb"
	"repro/internal/relation"
)

// maxOracleTuples caps the flat result the oracle is asked to materialise;
// the generator's sizes keep real cases far below it, so hitting the cap
// skips the case rather than failing it.
const maxOracleTuples = 500_000

// Case is one derived differential test case. All randomness comes from the
// seed; two Cases with the same seed are identical.
type Case struct {
	Seed    int64
	rels    []*relation.Relation // qualified-schema inputs for the oracle
	names   []string             // relation names, creation order
	bare    map[string][]string  // relation name -> bare attribute names
	eqs     []core.Equality      // qualified
	sels    []core.ConstSel      // qualified
	project []relation.Attribute // qualified; nil when aggregating or keeping all
	groupBy []relation.Attribute // qualified; aggregation cases only
	aggs    []frep.AggSpec       // non-empty for aggregation cases
}

// NewCase derives a case from the seed.
func NewCase(seed int64) (*Case, error) {
	rng := rand.New(rand.NewSource(seed))
	c := &Case{Seed: seed, bare: map[string][]string{}}

	r := 2 + rng.Intn(2)           // 2..3 relations
	a := r + rng.Intn(5)           // r..r+4 attributes
	n := 5 + rng.Intn(40)          // tuples per relation
	m := 2 + rng.Intn(10)          // value domain [1, m]
	k := 1 + rng.Intn(min(a-1, 3)) // join equalities
	dist := gen.Uniform
	if rng.Intn(3) == 0 {
		dist = gen.Zipf
	}

	sch, err := gen.RandomSchema(rng, r, a)
	if err != nil {
		return nil, err
	}
	eqs, err := gen.RandomEqualities(rng, sch, k)
	if err != nil {
		return nil, err
	}
	rels := sch.Populate(rng, n, gen.NewSampler(rng, dist, m))

	// Qualify every attribute as "Rel.attr" — the names the fdb surface
	// gives them — so the oracle query and the fdb query read identically.
	owner := map[relation.Attribute]relation.Attribute{}
	for _, rel := range rels {
		qual := make(relation.Schema, len(rel.Schema))
		for j, attr := range rel.Schema {
			q := relation.Attribute(rel.Name + "." + string(attr))
			owner[attr] = q
			qual[j] = q
			c.bare[rel.Name] = append(c.bare[rel.Name], string(attr))
		}
		rel.Schema = qual
		c.names = append(c.names, rel.Name)
	}
	c.rels = rels
	for _, e := range eqs {
		c.eqs = append(c.eqs, core.Equality{A: owner[e.A], B: owner[e.B]})
	}

	var attrs []relation.Attribute
	for _, rel := range rels {
		attrs = append(attrs, rel.Schema...)
	}

	// Constant selections: 0-2, any operator, values around the domain.
	ops := []fdb.CmpOp{fdb.EQ, fdb.NE, fdb.LT, fdb.LE, fdb.GT, fdb.GE}
	for i := rng.Intn(3); i > 0; i-- {
		c.sels = append(c.sels, core.ConstSel{
			A:  attrs[rng.Intn(len(attrs))],
			Op: ops[rng.Intn(len(ops))],
			C:  relation.Value(1 + rng.Intn(m)),
		})
	}

	// Query shape: plain (possibly projected) or aggregation.
	if rng.Intn(5) < 2 {
		// Aggregation: 0-2 group-by attributes, 1-3 aggregates.
		perm := rng.Perm(len(attrs))
		for i := rng.Intn(3); i > 0 && len(c.groupBy) < len(attrs); i-- {
			c.groupBy = append(c.groupBy, attrs[perm[len(c.groupBy)]])
		}
		fns := []frep.AggFunc{frep.AggCount, frep.AggSum, frep.AggMin, frep.AggMax, frep.AggCountDistinct}
		for i := 1 + rng.Intn(3); i > 0; i-- {
			fn := fns[rng.Intn(len(fns))]
			spec := frep.AggSpec{Fn: fn}
			if fn != frep.AggCount {
				spec.Attr = attrs[rng.Intn(len(attrs))]
			}
			c.aggs = append(c.aggs, spec)
		}
	} else if rng.Intn(2) == 0 {
		// Projection onto a random non-empty subset, random order.
		perm := rng.Perm(len(attrs))
		keep := 1 + rng.Intn(len(attrs))
		for _, i := range perm[:keep] {
			c.project = append(c.project, attrs[i])
		}
	}
	return c, nil
}

// Check derives the case for seed and runs it at the given parallelism,
// returning a seed-stamped error on any divergence from the oracle.
func Check(seed int64, parallelism int) error {
	c, err := NewCase(seed)
	if err != nil {
		return fmt.Errorf("fuzz: seed %d: generate: %v", seed, err)
	}
	return c.Run(parallelism)
}

// Run executes the case at the given parallelism against a fresh database.
func (c *Case) Run(parallelism int) error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("fuzz: seed %d (p=%d): %s", c.Seed, parallelism, fmt.Sprintf(format, args...))
	}

	db := fdb.New()
	db.SetParallelism(parallelism)
	for _, rel := range c.rels {
		if err := db.Create(rel.Name, c.bare[rel.Name]...); err != nil {
			return fail("create: %v", err)
		}
		for _, t := range rel.Tuples {
			vals := make([]interface{}, len(t))
			for i, v := range t {
				vals[i] = int64(v)
			}
			if err := db.Insert(rel.Name, vals...); err != nil {
				return fail("insert: %v", err)
			}
		}
	}

	clauses := []fdb.Clause{fdb.From(c.names...)}
	for _, e := range c.eqs {
		clauses = append(clauses, fdb.Eq(string(e.A), string(e.B)))
	}
	for _, s := range c.sels {
		clauses = append(clauses, fdb.Cmp(string(s.A), s.Op, int64(s.C)))
	}

	// Oracle: the flat relational engine on the same qualified query.
	oq := &core.Query{Equalities: c.eqs, Selections: c.sels}
	for _, rel := range c.rels {
		oq.Relations = append(oq.Relations, rel.Clone())
	}
	ores, err := rdb.Evaluate(oq, rdb.Options{Materialize: true, MaxTuples: maxOracleTuples})
	if err != nil {
		return fail("oracle: %v", err)
	}
	if ores.TimedOut || ores.Relation == nil {
		return nil // flat result past the cap: not this harness's business
	}
	flat := ores.Relation

	if len(c.aggs) > 0 {
		return c.checkAgg(db, clauses, flat, fail)
	}
	return c.checkPlain(db, clauses, flat, fail)
}

// checkPlain compares the enumerated factorised result with the flat oracle
// as sorted tuple sets (and the factorised count with the exact set size).
func (c *Case) checkPlain(db *fdb.DB, clauses []fdb.Clause, flat *relation.Relation, fail func(string, ...interface{}) error) error {
	if c.project != nil {
		ps := make([]string, len(c.project))
		for i, a := range c.project {
			ps[i] = string(a)
		}
		clauses = append(clauses, fdb.Project(ps...))
	}
	res, err := db.Query(clauses...)
	if err != nil {
		return fail("query: %v", err)
	}

	want := flat
	if c.project != nil {
		want = flat.Project(c.project) // set semantics, like the engine
	}
	gotSchema := make(relation.Schema, 0, len(res.Schema()))
	for _, a := range res.Schema() {
		gotSchema = append(gotSchema, relation.Attribute(a))
	}
	got := relation.New("got", gotSchema)
	it := res.Iter()
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		got.AppendTuple(t.Clone())
	}
	if int64(got.Cardinality()) != res.Count() {
		return fail("enumerated %d tuples but Count() = %d", got.Cardinality(), res.Count())
	}
	if got.Cardinality() != want.Cardinality() {
		return fail("result has %d tuples, oracle %d", got.Cardinality(), want.Cardinality())
	}
	if !got.Equal(want.Project(gotSchema)) {
		return fail("result tuples differ from oracle\nfdb:\n%s\noracle:\n%s", got, want)
	}
	return nil
}

// checkAgg compares QueryAgg rows against a straight fold over the flat
// oracle result.
func (c *Case) checkAgg(db *fdb.DB, clauses []fdb.Clause, flat *relation.Relation, fail func(string, ...interface{}) error) error {
	if len(c.groupBy) > 0 {
		gs := make([]string, len(c.groupBy))
		for i, a := range c.groupBy {
			gs[i] = string(a)
		}
		clauses = append(clauses, fdb.GroupBy(gs...))
	}
	for _, s := range c.aggs {
		clauses = append(clauses, fdb.Agg(s.Fn, string(s.Attr)))
	}
	res, err := db.QueryAgg(clauses...)
	if err != nil {
		return fail("queryagg: %v", err)
	}
	want := flatAggregate(flat, c.groupBy, c.aggs)
	if res.Len() != len(want) {
		return fail("aggregation has %d groups, oracle %d", res.Len(), len(want))
	}
	for i, w := range want {
		key := res.Key(i)
		for j, kv := range w.Key {
			if key[j] != strconv.FormatInt(int64(kv), 10) {
				return fail("group %d key %v, oracle key %v", i, key, w.Key)
			}
		}
		for j, wv := range w.Vals {
			if got := res.Value(i, j); got != wv {
				return fail("group %d (%v) aggregate %d = %d, oracle %d", i, w.Key, j, got, wv)
			}
		}
	}
	return nil
}

// flatAggregate folds the aggregates over the flat oracle result — the
// reference semantics for checkAgg. Rows come back sorted by group key,
// matching frep's order.
func flatAggregate(rel *relation.Relation, groupBy []relation.Attribute, specs []frep.AggSpec) []frep.AggRow {
	gcols := make([]int, len(groupBy))
	for i, a := range groupBy {
		gcols[i] = rel.Schema.Index(a)
	}
	acols := make([]int, len(specs))
	for i, s := range specs {
		if s.Fn != frep.AggCount {
			acols[i] = rel.Schema.Index(s.Attr)
		}
	}
	type state struct {
		key  []relation.Value
		cnt  int64
		sum  []int64
		m    []int64
		mSet []bool
		dist []map[relation.Value]struct{}
	}
	groups := map[string]*state{}
	for _, t := range rel.Tuples {
		kb := make([]byte, 0, 16*len(groupBy))
		for _, c := range gcols {
			kb = strconv.AppendInt(kb, int64(t[c]), 10)
			kb = append(kb, '|')
		}
		k := string(kb)
		s, ok := groups[k]
		if !ok {
			s = &state{
				key: make([]relation.Value, len(groupBy)), sum: make([]int64, len(specs)),
				m: make([]int64, len(specs)), mSet: make([]bool, len(specs)),
				dist: make([]map[relation.Value]struct{}, len(specs)),
			}
			for i, c := range gcols {
				s.key[i] = t[c]
			}
			groups[k] = s
		}
		s.cnt++
		for i, sp := range specs {
			switch sp.Fn {
			case frep.AggCount:
			case frep.AggSum:
				s.sum[i] += int64(t[acols[i]])
			case frep.AggMin:
				if v := int64(t[acols[i]]); !s.mSet[i] || v < s.m[i] {
					s.m[i], s.mSet[i] = v, true
				}
			case frep.AggMax:
				if v := int64(t[acols[i]]); !s.mSet[i] || v > s.m[i] {
					s.m[i], s.mSet[i] = v, true
				}
			case frep.AggCountDistinct:
				if s.dist[i] == nil {
					s.dist[i] = map[relation.Value]struct{}{}
				}
				s.dist[i][t[acols[i]]] = struct{}{}
			}
		}
	}
	rows := make([]frep.AggRow, 0, len(groups))
	for _, s := range groups {
		row := frep.AggRow{Key: s.key, Vals: make([]int64, len(specs))}
		for i, sp := range specs {
			switch sp.Fn {
			case frep.AggCount:
				row.Vals[i] = s.cnt
			case frep.AggSum:
				row.Vals[i] = s.sum[i]
			case frep.AggMin, frep.AggMax:
				row.Vals[i] = s.m[i]
			case frep.AggCountDistinct:
				row.Vals[i] = int64(len(s.dist[i]))
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i].Key {
			if rows[i].Key[k] != rows[j].Key[k] {
				return rows[i].Key[k] < rows[j].Key[k]
			}
		}
		return false
	})
	return rows
}
