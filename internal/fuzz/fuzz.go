// Package fuzz is the differential testing harness of the engine: it
// derives a complete random query workload from a single seed — schema and
// data via internal/gen, a conjunctive equality join, constant selections,
// a projection or a group-by aggregation, and (for tuple results) random
// OrderBy keys (mixed asc/desc, tree-compatible and incompatible),
// Limit/Offset and Distinct — runs it through the public fdb surface at a
// chosen execution parallelism, and checks the result against the flat
// internal/rdb oracle as an exact tuple *sequence*: the engine's
// enumeration order is deterministic (ORDER BY keys first, remaining
// columns ascending), so the oracle sorts its flat result with the same
// comparator and every position must match. Every failure message leads
// with the seed, so any mismatch found by the randomised tests or by `go
// test -fuzz` reproduces with Check(seed, p) alone.
package fuzz

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strconv"

	fdb "repro"
	"repro/internal/core"
	"repro/internal/frep"
	"repro/internal/gen"
	"repro/internal/rdb"
	"repro/internal/relation"
)

// maxOracleTuples caps the flat result the oracle is asked to materialise;
// the generator's sizes keep real cases far below it, so hitting the cap
// skips the case rather than failing it.
const maxOracleTuples = 500_000

// Querier is the query surface a differential check runs against: the live
// database or a pinned snapshot — both answer the same clause language, so
// the same oracle comparison covers read-your-writes and snapshot reads.
type Querier interface {
	Query(clauses ...fdb.Clause) (*fdb.Result, error)
	QueryAgg(clauses ...fdb.Clause) (*fdb.AggResult, error)
}

// Case is one derived differential test case. All randomness comes from the
// seed; two Cases with the same seed are identical.
type Case struct {
	Seed int64
	// Mode forces a planning tier on the case's database (zero value is
	// fdb.PlannerAuto). The oracle comparison is tier-blind, so running the
	// same seed under PlannerGreedy and PlannerExhaustive is the
	// greedy-vs-exhaustive differential: both tiers must reproduce the same
	// exact tuple sequence.
	Mode     fdb.PlannerMode
	rels     []*relation.Relation // qualified-schema inputs for the oracle
	names    []string             // relation names, creation order
	bare     map[string][]string  // relation name -> bare attribute names
	eqs      []core.Equality      // qualified
	sels     []core.ConstSel      // qualified
	project  []relation.Attribute // qualified; nil when aggregating or keeping all
	groupBy  []relation.Attribute // qualified; aggregation cases only
	aggs     []frep.AggSpec       // non-empty for aggregation cases
	orderBy  []frep.OrderKey      // qualified; tuple cases only
	limit    int                  // -1: none
	offset   int
	distinct bool
	// String cases insert every value dictionary-encoded through a scrambled
	// alphabet (strs[v-1] is value v's string form; lexicographic order is a
	// random permutation of numeric order), so ORDER BY must sort keys in
	// decoded order — codes are insertion-ordered — and the per-column sort
	// permutations are on the oracle's hook. Range selections on strings
	// compare in decoded order too, so the oracle pre-filters them in string
	// space before its (value-space) join.
	strs []string
	// Set-operation cases (setOp != 0) combine two selection legs over the
	// same relations, equalities and projection: leg one uses sels, leg two
	// sels2, joined by union (1), union all (2), except (3) or intersect (4).
	setOp int
	sels2 []core.ConstSel
}

// NewCase derives a case from the seed.
func NewCase(seed int64) (*Case, error) {
	rng := rand.New(rand.NewSource(seed))
	c := &Case{Seed: seed, bare: map[string][]string{}, limit: -1}

	r := 2 + rng.Intn(2)           // 2..3 relations
	a := r + rng.Intn(5)           // r..r+4 attributes
	n := 5 + rng.Intn(40)          // tuples per relation
	m := 2 + rng.Intn(10)          // value domain [1, m]
	k := 1 + rng.Intn(min(a-1, 3)) // join equalities
	dist := gen.Uniform
	if rng.Intn(3) == 0 {
		dist = gen.Zipf
	}

	sch, err := gen.RandomSchema(rng, r, a)
	if err != nil {
		return nil, err
	}
	eqs, err := gen.RandomEqualities(rng, sch, k)
	if err != nil {
		return nil, err
	}
	rels := sch.Populate(rng, n, gen.NewSampler(rng, dist, m))

	// Qualify every attribute as "Rel.attr" — the names the fdb surface
	// gives them — so the oracle query and the fdb query read identically.
	owner := map[relation.Attribute]relation.Attribute{}
	for _, rel := range rels {
		qual := make(relation.Schema, len(rel.Schema))
		for j, attr := range rel.Schema {
			q := relation.Attribute(rel.Name + "." + string(attr))
			owner[attr] = q
			qual[j] = q
			c.bare[rel.Name] = append(c.bare[rel.Name], string(attr))
		}
		rel.Schema = qual
		c.names = append(c.names, rel.Name)
	}
	c.rels = rels
	for _, e := range eqs {
		c.eqs = append(c.eqs, core.Equality{A: owner[e.A], B: owner[e.B]})
	}

	var attrs []relation.Attribute
	for _, rel := range rels {
		attrs = append(attrs, rel.Schema...)
	}

	// One case in three runs on dictionary-encoded strings through a
	// scrambled alphabet (the permutation makes decoded order disagree with
	// code order); only applied to tuple-result cases (aggregates over codes
	// have no flat-int reference).
	useStrings := rng.Intn(3) == 0
	scramble := rng.Perm(m)

	// Constant selections: 0-2, values around the domain, any operator —
	// string cases included: ranges on strings compare in decoded
	// lexicographic order on both sides of the differential.
	ops := []fdb.CmpOp{fdb.EQ, fdb.NE, fdb.LT, fdb.LE, fdb.GT, fdb.GE}
	c.sels = gen.RandomConstSels(rng, attrs, 2, m, ops)

	// Query shape: plain (possibly projected) or aggregation.
	if rng.Intn(5) < 2 {
		// Aggregation: 0-2 group-by attributes, 1-3 aggregates.
		perm := rng.Perm(len(attrs))
		for i := rng.Intn(3); i > 0 && len(c.groupBy) < len(attrs); i-- {
			c.groupBy = append(c.groupBy, attrs[perm[len(c.groupBy)]])
		}
		fns := []frep.AggFunc{frep.AggCount, frep.AggSum, frep.AggMin, frep.AggMax, frep.AggCountDistinct}
		for i := 1 + rng.Intn(3); i > 0; i-- {
			fn := fns[rng.Intn(len(fns))]
			spec := frep.AggSpec{Fn: fn}
			if fn != frep.AggCount {
				spec.Attr = attrs[rng.Intn(len(attrs))]
			}
			c.aggs = append(c.aggs, spec)
		}
	} else if rng.Intn(2) == 0 {
		// Projection onto a random non-empty subset, random order.
		perm := rng.Perm(len(attrs))
		keep := 1 + rng.Intn(len(attrs))
		for _, i := range perm[:keep] {
			c.project = append(c.project, attrs[i])
		}
	}
	if len(c.aggs) == 0 {
		// Order-aware retrieval clauses over the output attributes: random
		// key sets land on tree-compatible and incompatible orders alike, so
		// both the streaming iterator and the heap fallback are exercised —
		// with and without Limit/Offset clipping and Distinct.
		out := attrs
		if c.project != nil {
			out = c.project
		}
		if rng.Intn(2) == 0 {
			c.orderBy = gen.RandomOrderBy(rng, out, 3)
		}
		if rng.Intn(3) == 0 {
			c.limit = rng.Intn(25)
		}
		if rng.Intn(4) == 0 {
			c.offset = rng.Intn(8)
		}
		if rng.Intn(4) == 0 {
			c.distinct = true
		}
		if useStrings {
			c.strs = make([]string, m)
			for v := 1; v <= m; v++ {
				c.strs[v-1] = fmt.Sprintf("s%03d", scramble[v-1])
			}
		}
		// One tuple case in three additionally runs as a set operation: a
		// second selection leg over the same relations, equalities and
		// projection, combined by a random operator. The plain leg-one check
		// still runs, so set cases subsume plain coverage.
		if rng.Intn(3) == 0 {
			c.setOp = 1 + rng.Intn(4)
			c.sels2 = gen.RandomConstSels(rng, attrs, 2, m, ops)
		}
	}
	return c, nil
}

// codes replays the dictionary assignment the engine performs while the
// case's tuples are inserted (codes are handed out in first-appearance scan
// order), returning value → code. Selection constants never mint codes —
// query comparison is a read path — so only the inserted data contributes.
func (c *Case) codes() map[relation.Value]relation.Value {
	out := map[relation.Value]relation.Value{}
	next := relation.Value(0)
	for _, rel := range c.rels {
		for _, t := range rel.Tuples {
			for _, v := range t {
				if _, ok := out[v]; !ok {
					out[v] = next
					next++
				}
			}
		}
	}
	return out
}

// Check derives the case for seed and runs it at the given parallelism,
// returning a seed-stamped error on any divergence from the oracle.
func Check(seed int64, parallelism int) error {
	c, err := NewCase(seed)
	if err != nil {
		return fmt.Errorf("fuzz: seed %d: generate: %v", seed, err)
	}
	return c.Run(parallelism)
}

// Run executes the case at the given parallelism against a fresh database.
func (c *Case) Run(parallelism int) error { return c.run(parallelism, nil) }

// CheckPlanner derives the case for seed and runs it with the database
// forced to the given planning tier. Checking a seed under both
// fdb.PlannerGreedy and fdb.PlannerExhaustive proves the tiers agree: each
// leg must match the flat oracle's exact tuple sequence, so any divergence
// between the greedy and exhaustive trees surfaces as a failure in one leg.
func CheckPlanner(seed int64, parallelism int, mode fdb.PlannerMode) error {
	c, err := NewCase(seed)
	if err != nil {
		return fmt.Errorf("fuzz: seed %d: generate: %v", seed, err)
	}
	c.Mode = mode
	return c.Run(parallelism)
}

// CheckPersisted derives the case for seed and runs it through a snapshot
// round-trip: the database is built exactly as Check builds it, saved as a
// zero-copy snapshot file under dir, reopened from the file (mmap when
// available), and the oracle comparison runs against the reopened database.
// Opened-snapshot reads thereby face the same differential bar as live
// ones — including the adopted pre-built encoding, since the plan cache is
// warmed before the save so the file carries the arena the reopened
// database's first query adopts.
func CheckPersisted(seed int64, parallelism int, dir string) error {
	c, err := NewCase(seed)
	if err != nil {
		return fmt.Errorf("fuzz: seed %d: generate: %v", seed, err)
	}
	return c.run(parallelism, func(db *fdb.DB, clauses []fdb.Clause) (*fdb.DB, error) {
		if len(c.aggs) == 0 {
			// Memoise the encoding so the snapshot carries it and the
			// reopened database exercises the zero-copy adoption path.
			if _, err := db.Query(clauses...); err != nil {
				return nil, err
			}
		}
		path := filepath.Join(dir, fmt.Sprintf("case%d.fdb", seed))
		if err := db.SaveSnapshot(path); err != nil {
			return nil, err
		}
		ndb, err := fdb.OpenSnapshotFile(path)
		if err != nil {
			return nil, err
		}
		ndb.SetParallelism(parallelism)
		return ndb, nil
	})
}

// run builds the case's database, optionally routes it through a persist
// hook (which may replace it with a reopened copy), and checks the result
// of every query variant against the flat oracle.
func (c *Case) run(parallelism int, persist func(*fdb.DB, []fdb.Clause) (*fdb.DB, error)) error {
	fail := func(format string, args ...interface{}) error {
		return fmt.Errorf("fuzz: seed %d (p=%d mode=%d): %s", c.Seed, parallelism, c.Mode, fmt.Sprintf(format, args...))
	}

	db := fdb.New()
	db.SetParallelism(parallelism)
	db.SetPlannerMode(c.Mode)
	for _, rel := range c.rels {
		if err := db.Create(rel.Name, c.bare[rel.Name]...); err != nil {
			return fail("create: %v", err)
		}
		for _, t := range rel.Tuples {
			vals := make([]interface{}, len(t))
			for i, v := range t {
				if c.strs != nil {
					vals[i] = c.strs[v-1]
				} else {
					vals[i] = int64(v)
				}
			}
			if err := db.Insert(rel.Name, vals...); err != nil {
				return fail("insert: %v", err)
			}
		}
	}

	base := []fdb.Clause{fdb.From(c.names...)}
	for _, e := range c.eqs {
		base = append(base, fdb.Eq(string(e.A), string(e.B)))
	}
	clauses := append(append([]fdb.Clause{}, base...), c.selClauses(c.sels)...)

	if persist != nil {
		ndb, err := persist(db, clauses)
		if err != nil {
			return fail("persist: %v", err)
		}
		db = ndb
	}

	// Oracle: the flat relational engine on the same qualified query.
	flat, err := c.oracleFlat(c.sels)
	if err != nil {
		return fail("oracle: %v", err)
	}
	if flat == nil {
		return nil // flat result past the cap: not this harness's business
	}

	if len(c.aggs) > 0 {
		return c.checkAgg(db, clauses, flat, fail)
	}
	if err := c.checkPlain(db, clauses, flat, fail); err != nil {
		return err
	}
	if c.setOp != 0 {
		return c.checkSet(db, base, flat, fail)
	}
	return nil
}

// selClauses renders a selection leg as fdb Cmp clauses (string form for
// string cases).
func (c *Case) selClauses(sels []core.ConstSel) []fdb.Clause {
	var out []fdb.Clause
	for _, s := range sels {
		if c.strs != nil {
			out = append(out, fdb.Cmp(string(s.A), s.Op, c.strs[s.C-1]))
		} else {
			out = append(out, fdb.Cmp(string(s.A), s.Op, int64(s.C)))
		}
	}
	return out
}

// oracleFlat evaluates one selection leg against the flat rdb oracle and
// returns the materialised result (nil when past the materialisation cap).
// For string cases, range selections compare in decoded lexicographic order
// — not in the oracle's integer value space — so they are applied as
// string-space pre-filters on the inputs (a single-attribute selection
// commutes with the equi-join); equalities commute with the injective
// dictionary and stay in value space.
func (c *Case) oracleFlat(sels []core.ConstSel) (*relation.Relation, error) {
	oq := &core.Query{Equalities: c.eqs}
	var strRanges []core.ConstSel
	for _, s := range sels {
		if c.strs != nil && s.Op != fdb.EQ && s.Op != fdb.NE {
			strRanges = append(strRanges, s)
			continue
		}
		oq.Selections = append(oq.Selections, s)
	}
	for _, rel := range c.rels {
		r := rel.Clone()
		for _, s := range strRanges {
			col := r.Schema.Index(s.A)
			if col < 0 {
				continue
			}
			s, col := s, col
			r = r.Filter(func(t relation.Tuple) bool { return c.strRangeMatch(t[col], s) })
		}
		oq.Relations = append(oq.Relations, r)
	}
	ores, err := rdb.Evaluate(oq, rdb.Options{Materialize: true, MaxTuples: maxOracleTuples})
	if err != nil {
		return nil, err
	}
	if ores.TimedOut || ores.Relation == nil {
		return nil, nil
	}
	return ores.Relation, nil
}

// strRangeMatch evaluates a string range selection in decoded space: both
// the data value and the constant map through the scrambled alphabet.
func (c *Case) strRangeMatch(v relation.Value, s core.ConstSel) bool {
	dv, dc := c.strs[v-1], c.strs[s.C-1]
	switch s.Op {
	case fdb.LT:
		return dv < dc
	case fdb.LE:
		return dv <= dc
	case fdb.GT:
		return dv > dc
	case fdb.GE:
		return dv >= dc
	}
	return false
}

// checkPlain compares the enumerated factorised result with the flat oracle
// as an exact tuple sequence: the oracle's (set-semantics) flat result is
// sorted with the engine's retrieval comparator — the OrderBy keys first,
// then every result column ascending — clipped by Offset/Limit, and each
// position must match (the factorised count must agree too).
func (c *Case) checkPlain(db Querier, clauses []fdb.Clause, flat *relation.Relation, fail func(string, ...interface{}) error) error {
	if c.project != nil {
		ps := make([]string, len(c.project))
		for i, a := range c.project {
			ps[i] = string(a)
		}
		clauses = append(clauses, fdb.Project(ps...))
	}
	if len(c.orderBy) > 0 {
		keys := make([]interface{}, len(c.orderBy))
		for i, k := range c.orderBy {
			if k.Desc {
				keys[i] = fdb.Desc(string(k.Attr))
			} else {
				keys[i] = fdb.Asc(string(k.Attr))
			}
		}
		clauses = append(clauses, fdb.OrderBy(keys...))
	}
	if c.distinct {
		clauses = append(clauses, fdb.Distinct())
	}
	if c.offset > 0 {
		clauses = append(clauses, fdb.Offset(c.offset))
	}
	if c.limit >= 0 {
		clauses = append(clauses, fdb.Limit(c.limit))
	}
	res, err := db.Query(clauses...)
	if err != nil {
		return fail("query: %v", err)
	}

	want := flat
	if c.project != nil {
		want = flat.Project(c.project) // set semantics, like the engine
	}
	return c.comparePlain(res, want, fail)
}

// comparePlain checks one tuple result against its flat reference relation
// (already projected; duplicates preserved — union-all references are
// bags): the reference moves into the engine's column order, sorts by the
// retrieval comparator, clips by Offset/Limit, and each position must
// match.
func (c *Case) comparePlain(res *fdb.Result, want *relation.Relation, fail func(string, ...interface{}) error) error {
	gotSchema := make(relation.Schema, 0, len(res.Schema()))
	for _, a := range res.Schema() {
		gotSchema = append(gotSchema, relation.Attribute(a))
	}
	// Reference sequence: the oracle tuples permuted into the engine's
	// column order (a pure permutation — never a dedup, so bag references
	// survive), sorted by the retrieval comparator, clipped. For string
	// cases the oracle moves into dictionary-code space first (replaying the
	// engine's insertion-ordered code assignment) and sorts keys by decoded
	// string — exactly the contract: keys decoded, residual ties by code.
	perm := make([]int, len(gotSchema))
	for i, a := range gotSchema {
		if perm[i] = want.Schema.Index(a); perm[i] < 0 {
			return fail("result schema %v not covered by oracle schema %v", gotSchema, want.Schema)
		}
	}
	ref := make([]relation.Tuple, len(want.Tuples))
	for i, t := range want.Tuples {
		nt := make(relation.Tuple, len(perm))
		for j, cix := range perm {
			nt[j] = t[cix]
		}
		ref[i] = nt
	}
	var less frep.ValueLess
	if c.strs != nil {
		code := c.codes()
		str := make(map[relation.Value]string, len(code))
		for v, cd := range code {
			str[cd] = c.strs[v-1]
		}
		for _, t := range ref {
			for i, v := range t {
				t[i] = code[v]
			}
		}
		less = func(a, b relation.Value) bool { return str[a] < str[b] }
	}
	cmp := frep.TupleCompare(gotSchema, c.orderBy, less)
	sort.SliceStable(ref, func(i, j int) bool { return cmp(ref[i], ref[j]) < 0 })
	expect := ref
	if c.offset > 0 {
		if c.offset >= len(expect) {
			expect = nil
		} else {
			expect = expect[c.offset:]
		}
	}
	if c.limit >= 0 && len(expect) > c.limit {
		expect = expect[:c.limit]
	}

	var got []relation.Tuple
	it := res.Iter()
	for {
		t, ok := it.Next()
		if !ok {
			break
		}
		got = append(got, t.Clone())
	}
	if int64(len(got)) != res.Count() {
		return fail("enumerated %d tuples but Count() = %d", len(got), res.Count())
	}
	if len(got) != len(expect) {
		return fail("result has %d tuples, oracle %d", len(got), len(expect))
	}
	for i := range got {
		if got[i].Compare(expect[i]) != 0 {
			return fail("sequence diverges at position %d: fdb %v, oracle %v (order %v offset %d limit %d distinct %v)",
				i, got[i], expect[i], c.orderBy, c.offset, c.limit, c.distinct)
		}
	}
	return nil
}

// checkSet runs the case's set operation through QuerySet (and, when no
// ordering/clipping clauses ride on the case, additionally through the
// Result methods) and compares against the flat rdb set-algebra mirror over
// the two legs' oracle results.
func (c *Case) checkSet(db *fdb.DB, base []fdb.Clause, flat1 *relation.Relation, fail func(string, ...interface{}) error) error {
	flat2, err := c.oracleFlat(c.sels2)
	if err != nil {
		return fail("oracle leg 2: %v", err)
	}
	if flat2 == nil {
		return nil // past the materialisation cap
	}
	leg := func(sels []core.ConstSel) []fdb.Clause {
		cl := append(append([]fdb.Clause{}, base...), c.selClauses(sels)...)
		if c.project != nil {
			ps := make([]string, len(c.project))
			for i, a := range c.project {
				ps[i] = string(a)
			}
			cl = append(cl, fdb.Project(ps...))
		}
		return cl
	}
	want1, want2 := flat1, flat2
	if c.project != nil {
		want1 = flat1.Project(c.project) // set semantics per leg, like the engine
		want2 = flat2.Project(c.project)
	}
	type setRef func(a, b *relation.Relation) (*relation.Relation, error)
	ops := map[int]struct {
		name string
		expr func(a, b *fdb.SetExpr) *fdb.SetExpr
		meth func(a, b *fdb.Result) (*fdb.Result, error)
		ref  setRef
	}{
		1: {"union", fdb.Union, (*fdb.Result).Union, rdb.Union},
		2: {"union all", fdb.UnionAll, (*fdb.Result).UnionAll, rdb.UnionAll},
		3: {"except", fdb.Except, (*fdb.Result).Except, rdb.Except},
		4: {"intersect", fdb.Intersect, (*fdb.Result).Intersect, rdb.Intersect},
	}
	op := ops[c.setOp]
	want, err := op.ref(want1, want2)
	if err != nil {
		return fail("%s reference: %v", op.name, err)
	}
	if c.distinct {
		want = want.Clone()
		want.Dedup() // trailing Distinct normalises a union-all bag
	}

	var trailing []fdb.Clause
	if len(c.orderBy) > 0 {
		keys := make([]interface{}, len(c.orderBy))
		for i, k := range c.orderBy {
			if k.Desc {
				keys[i] = fdb.Desc(string(k.Attr))
			} else {
				keys[i] = fdb.Asc(string(k.Attr))
			}
		}
		trailing = append(trailing, fdb.OrderBy(keys...))
	}
	if c.distinct {
		trailing = append(trailing, fdb.Distinct())
	}
	if c.offset > 0 {
		trailing = append(trailing, fdb.Offset(c.offset))
	}
	if c.limit >= 0 {
		trailing = append(trailing, fdb.Limit(c.limit))
	}
	res, err := db.QuerySet(op.expr(fdb.Sub(leg(c.sels)...), fdb.Sub(leg(c.sels2)...)), trailing...)
	if err != nil {
		return fail("queryset %s: %v", op.name, err)
	}
	if err := c.comparePlain(res, want, fail); err != nil {
		return fmt.Errorf("%s via QuerySet: %w", op.name, err)
	}
	if len(trailing) == 0 {
		r1, err := db.Query(leg(c.sels)...)
		if err != nil {
			return fail("query leg 1: %v", err)
		}
		r2, err := db.Query(leg(c.sels2)...)
		if err != nil {
			return fail("query leg 2: %v", err)
		}
		mres, err := op.meth(r1, r2)
		if err != nil {
			return fail("result %s: %v", op.name, err)
		}
		if err := c.comparePlain(mres, want, fail); err != nil {
			return fmt.Errorf("%s via Result method: %w", op.name, err)
		}
	}
	return nil
}

// checkAgg compares QueryAgg rows against a straight fold over the flat
// oracle result.
func (c *Case) checkAgg(db Querier, clauses []fdb.Clause, flat *relation.Relation, fail func(string, ...interface{}) error) error {
	if len(c.groupBy) > 0 {
		gs := make([]string, len(c.groupBy))
		for i, a := range c.groupBy {
			gs[i] = string(a)
		}
		clauses = append(clauses, fdb.GroupBy(gs...))
	}
	for _, s := range c.aggs {
		clauses = append(clauses, fdb.Agg(s.Fn, string(s.Attr)))
	}
	res, err := db.QueryAgg(clauses...)
	if err != nil {
		return fail("queryagg: %v", err)
	}
	want := flatAggregate(flat, c.groupBy, c.aggs)
	if res.Len() != len(want) {
		return fail("aggregation has %d groups, oracle %d", res.Len(), len(want))
	}
	for i, w := range want {
		key := res.Key(i)
		for j, kv := range w.Key {
			if key[j] != strconv.FormatInt(int64(kv), 10) {
				return fail("group %d key %v, oracle key %v", i, key, w.Key)
			}
		}
		for j, wv := range w.Vals {
			if got := res.Value(i, j); got != wv {
				return fail("group %d (%v) aggregate %d = %d, oracle %d", i, w.Key, j, got, wv)
			}
		}
	}
	return nil
}

// flatAggregate folds the aggregates over the flat oracle result — the
// reference semantics for checkAgg. Rows come back sorted by group key,
// matching frep's order.
func flatAggregate(rel *relation.Relation, groupBy []relation.Attribute, specs []frep.AggSpec) []frep.AggRow {
	gcols := make([]int, len(groupBy))
	for i, a := range groupBy {
		gcols[i] = rel.Schema.Index(a)
	}
	acols := make([]int, len(specs))
	for i, s := range specs {
		if s.Fn != frep.AggCount {
			acols[i] = rel.Schema.Index(s.Attr)
		}
	}
	type state struct {
		key  []relation.Value
		cnt  int64
		sum  []int64
		m    []int64
		mSet []bool
		dist []map[relation.Value]struct{}
	}
	groups := map[string]*state{}
	for _, t := range rel.Tuples {
		kb := make([]byte, 0, 16*len(groupBy))
		for _, c := range gcols {
			kb = strconv.AppendInt(kb, int64(t[c]), 10)
			kb = append(kb, '|')
		}
		k := string(kb)
		s, ok := groups[k]
		if !ok {
			s = &state{
				key: make([]relation.Value, len(groupBy)), sum: make([]int64, len(specs)),
				m: make([]int64, len(specs)), mSet: make([]bool, len(specs)),
				dist: make([]map[relation.Value]struct{}, len(specs)),
			}
			for i, c := range gcols {
				s.key[i] = t[c]
			}
			groups[k] = s
		}
		s.cnt++
		for i, sp := range specs {
			switch sp.Fn {
			case frep.AggCount:
			case frep.AggSum:
				s.sum[i] += int64(t[acols[i]])
			case frep.AggMin:
				if v := int64(t[acols[i]]); !s.mSet[i] || v < s.m[i] {
					s.m[i], s.mSet[i] = v, true
				}
			case frep.AggMax:
				if v := int64(t[acols[i]]); !s.mSet[i] || v > s.m[i] {
					s.m[i], s.mSet[i] = v, true
				}
			case frep.AggCountDistinct:
				if s.dist[i] == nil {
					s.dist[i] = map[relation.Value]struct{}{}
				}
				s.dist[i][t[acols[i]]] = struct{}{}
			}
		}
	}
	rows := make([]frep.AggRow, 0, len(groups))
	for _, s := range groups {
		row := frep.AggRow{Key: s.key, Vals: make([]int64, len(specs))}
		for i, sp := range specs {
			switch sp.Fn {
			case frep.AggCount:
				row.Vals[i] = s.cnt
			case frep.AggSum:
				row.Vals[i] = s.sum[i]
			case frep.AggMin, frep.AggMax:
				row.Vals[i] = s.m[i]
			case frep.AggCountDistinct:
				row.Vals[i] = int64(len(s.dist[i]))
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i].Key {
			if rows[i].Key[k] != rows[j].Key[k] {
				return rows[i].Key[k] < rows[j].Key[k]
			}
		}
		return false
	})
	return rows
}
