package frep

import (
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// fillTable precomputes, per pre-order node, the output-buffer positions of
// the node's visible attributes.
func encFillTable(e *Enc, schema relation.Schema) [][]int {
	pos := map[relation.Attribute]int{}
	for i, a := range schema {
		pos[a] = i
	}
	fills := make([][]int, len(e.ti.nodes))
	for ni, n := range e.ti.nodes {
		for _, a := range n.Attrs {
			if p, ok := pos[a]; ok {
				fills[ni] = append(fills[ni], p)
			}
		}
	}
	return fills
}

// Enumerate calls yield for each tuple of the represented relation, in
// lexicographic order of Schema() — the columnar mirror of FRep.Enumerate.
// The buffer passed to yield is reused; clone it to retain. Enumeration is
// pure index arithmetic over the arena: no per-entry allocation.
func (e *Enc) Enumerate(yield func(relation.Tuple) bool) {
	if e.IsEmpty() {
		return
	}
	it := NewEncIterator(e)
	for {
		t, ok := it.Next()
		if !ok {
			return
		}
		if !yield(t) {
			return
		}
	}
}

// EncIterator enumerates the tuples of an encoded representation with
// constant delay, as a resumable cursor: per node one absolute entry index
// plus the bounds of its current union — an odometer over flat arrays. The
// iterator is only valid while e is alive (Encs are immutable, so there is
// no invalidation-by-mutation hazard).
type EncIterator struct {
	e      *Enc
	schema relation.Schema
	fills  [][]int
	cur    []int32 // per node: current entry (absolute index into Vals)
	lo, hi []int32 // per node: current union span
	// rlo, rhi restrict the first pre-order node's (first root's) union to
	// entries [rlo, rhi) — the sharding hook for parallel enumeration. A
	// full iterator spans the whole union.
	rlo, rhi int32
	buf      relation.Tuple
	done     bool
	fresh    bool
}

// NewEncIterator prepares an iterator over e. Preparation is linear in the
// number of f-tree nodes; each Next is amortised constant delay.
func NewEncIterator(e *Enc) *EncIterator {
	return NewEncIteratorRange(e, 0, int32(e.NumEntries(0)))
}

// NewEncIteratorRange prepares an iterator over the tuples whose first-root
// entry lies in [lo, hi) — a contiguous slice of the enumeration order,
// since the first root is the most significant digit of the odometer.
// Concatenating the ranges [0,a), [a,b), …, [z,N) reproduces the full
// enumeration exactly; disjoint ranges can be walked concurrently (the
// iterators share only the immutable e).
func NewEncIteratorRange(e *Enc, lo, hi int32) *EncIterator {
	if lo < 0 {
		lo = 0
	}
	if n := int32(e.NumEntries(0)); hi > n {
		hi = n
	}
	it := &EncIterator{e: e, schema: e.Schema(), rlo: lo, rhi: hi}
	it.fills = encFillTable(e, it.schema)
	it.buf = make(relation.Tuple, len(it.schema))
	n := len(e.ti.nodes)
	it.cur = make([]int32, n)
	it.lo = make([]int32, n)
	it.hi = make([]int32, n)
	it.Reset()
	return it
}

// Reset rewinds the iterator to the first tuple of its range.
func (it *EncIterator) Reset() {
	it.done = it.e.IsEmpty() || it.rlo >= it.rhi
	it.fresh = !it.done
	if it.done {
		return
	}
	it.reseat(0)
}

// reseat recomputes union spans and first-entry cursors for nodes [from, n)
// in pre-order: a node's union is 0 for roots, else its parent's current
// entry (pre-order guarantees the parent is already seated). Node 0 — the
// first root — is clamped to the iterator's range.
func (it *EncIterator) reseat(from int) {
	e := it.e
	for ni := from; ni < len(e.ti.nodes); ni++ {
		u := 0
		if p := e.ti.par[ni]; p >= 0 {
			u = int(it.cur[p])
		}
		lo, hi := e.UnionSpan(ni, u)
		if ni == 0 {
			lo, hi = it.rlo, it.rhi
		}
		it.lo[ni], it.hi[ni], it.cur[ni] = lo, hi, lo
	}
}

// Next returns the next tuple, or ok = false when the enumeration is
// exhausted. The returned slice is reused across calls; clone it to retain.
func (it *EncIterator) Next() (t relation.Tuple, ok bool) {
	if it.done {
		return nil, false
	}
	from := 0
	if it.fresh {
		it.fresh = false
	} else {
		// Odometer: advance the deepest-rightmost node with entries left,
		// reseat everything after it.
		i := len(it.cur) - 1
		for ; i >= 0; i-- {
			if it.cur[i]+1 < it.hi[i] {
				it.cur[i]++
				it.reseat(i + 1)
				break
			}
		}
		if i < 0 {
			it.done = true
			return nil, false
		}
		from = i
	}
	for ni := from; ni < len(it.cur); ni++ {
		v := it.e.Vals(ni)[it.cur[ni]]
		for _, p := range it.fills[ni] {
			it.buf[p] = v
		}
	}
	return it.buf, true
}

// Schema returns the attribute order of the tuples produced by Next.
func (it *EncIterator) Schema() relation.Schema { return it.schema }

// EnumerateShards splits the enumeration into n resumable iterators over
// contiguous ranges of the first root's union, in enumeration order:
// walking shard 0, then 1, … reproduces Enumerate exactly, and disjoint
// shards are safe to drain concurrently. Shards past the available entries
// come back immediately exhausted, so callers may spawn one worker each
// without counting first.
func (e *Enc) EnumerateShards(n int) []*EncIterator {
	if n < 1 {
		n = 1
	}
	total := int32(e.NumEntries(0))
	if e.IsEmpty() {
		total = 0
	}
	out := make([]*EncIterator, n)
	for i := range out {
		out[i] = NewEncIteratorRange(e, chunkBound(total, i, n), chunkBound(total, i+1, n))
	}
	return out
}

// EnumerateParallel drains p shards with p goroutines, calling yield from
// each worker with the shard index and the reused per-shard tuple buffer
// (clone to retain). yield must be safe for concurrent calls; returning
// false stops every worker promptly. Tuples arrive in enumeration order
// within a shard, interleaved across shards.
func (e *Enc) EnumerateParallel(p int, yield func(shard int, t relation.Tuple) bool) {
	if p <= 1 {
		e.Enumerate(func(t relation.Tuple) bool { return yield(0, t) })
		return
	}
	shards := e.EnumerateShards(p)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i, it := range shards {
		wg.Add(1)
		go func(i int, it *EncIterator) {
			defer wg.Done()
			for !stop.Load() {
				t, ok := it.Next()
				if !ok {
					return
				}
				if !yield(i, t) {
					stop.Store(true)
					return
				}
			}
		}(i, it)
	}
	wg.Wait()
}
