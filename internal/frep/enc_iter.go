package frep

import (
	"repro/internal/relation"
)

// fillTable precomputes, per pre-order node, the output-buffer positions of
// the node's visible attributes.
func encFillTable(e *Enc, schema relation.Schema) [][]int {
	pos := map[relation.Attribute]int{}
	for i, a := range schema {
		pos[a] = i
	}
	fills := make([][]int, len(e.ti.nodes))
	for ni, n := range e.ti.nodes {
		for _, a := range n.Attrs {
			if p, ok := pos[a]; ok {
				fills[ni] = append(fills[ni], p)
			}
		}
	}
	return fills
}

// Enumerate calls yield for each tuple of the represented relation, in
// lexicographic order of Schema() — the columnar mirror of FRep.Enumerate.
// The buffer passed to yield is reused; clone it to retain. Enumeration is
// pure index arithmetic over the arena: no per-entry allocation.
func (e *Enc) Enumerate(yield func(relation.Tuple) bool) {
	if e.IsEmpty() {
		return
	}
	it := NewEncIterator(e)
	for {
		t, ok := it.Next()
		if !ok {
			return
		}
		if !yield(t) {
			return
		}
	}
}

// EncIterator enumerates the tuples of an encoded representation with
// constant delay, as a resumable cursor: per node one absolute entry index
// plus the bounds of its current union — an odometer over flat arrays. The
// iterator is only valid while e is alive (Encs are immutable, so there is
// no invalidation-by-mutation hazard).
type EncIterator struct {
	e      *Enc
	schema relation.Schema
	fills  [][]int
	cur    []int32 // per node: current entry (absolute index into Vals)
	lo, hi []int32 // per node: current union span
	buf    relation.Tuple
	done   bool
	fresh  bool
}

// NewEncIterator prepares an iterator over e. Preparation is linear in the
// number of f-tree nodes; each Next is amortised constant delay.
func NewEncIterator(e *Enc) *EncIterator {
	it := &EncIterator{e: e, schema: e.Schema()}
	it.fills = encFillTable(e, it.schema)
	it.buf = make(relation.Tuple, len(it.schema))
	n := len(e.ti.nodes)
	it.cur = make([]int32, n)
	it.lo = make([]int32, n)
	it.hi = make([]int32, n)
	it.Reset()
	return it
}

// Reset rewinds the iterator to the first tuple.
func (it *EncIterator) Reset() {
	it.done = it.e.IsEmpty()
	it.fresh = !it.done
	if it.done {
		return
	}
	it.reseat(0)
}

// reseat recomputes union spans and first-entry cursors for nodes [from, n)
// in pre-order: a node's union is 0 for roots, else its parent's current
// entry (pre-order guarantees the parent is already seated).
func (it *EncIterator) reseat(from int) {
	e := it.e
	for ni := from; ni < len(e.ti.nodes); ni++ {
		u := 0
		if p := e.ti.par[ni]; p >= 0 {
			u = int(it.cur[p])
		}
		lo, hi := e.UnionSpan(ni, u)
		it.lo[ni], it.hi[ni], it.cur[ni] = lo, hi, lo
	}
}

// Next returns the next tuple, or ok = false when the enumeration is
// exhausted. The returned slice is reused across calls; clone it to retain.
func (it *EncIterator) Next() (t relation.Tuple, ok bool) {
	if it.done {
		return nil, false
	}
	from := 0
	if it.fresh {
		it.fresh = false
	} else {
		// Odometer: advance the deepest-rightmost node with entries left,
		// reseat everything after it.
		i := len(it.cur) - 1
		for ; i >= 0; i-- {
			if it.cur[i]+1 < it.hi[i] {
				it.cur[i]++
				it.reseat(i + 1)
				break
			}
		}
		if i < 0 {
			it.done = true
			return nil, false
		}
		from = i
	}
	for ni := from; ni < len(it.cur); ni++ {
		v := it.e.Vals(ni)[it.cur[ni]]
		for _, p := range it.fills[ni] {
			it.buf[p] = v
		}
	}
	return it.buf, true
}

// Schema returns the attribute order of the tuples produced by Next.
func (it *EncIterator) Schema() relation.Schema { return it.schema }
