// Set algebra over encoded f-representations. UNION, EXCEPT and INTERSECT
// walk the two operands' sorted unions simultaneously — the same two-cursor
// discipline as the leapfrog build — and emit a merged encoding through
// EncBuilder, never decoding to the pointer form.
//
// The structural walk rests on how each operation interacts with the
// product decomposition the f-tree imposes. INTERSECT distributes over
// Cartesian products, so a collided entry recurses into every child pair.
// UNION and EXCEPT do not: at a collision whose node has children C1..Ck,
// the operation decomposes only when the sides' fragments agree on all but
// at most one child — equal children are copied once and the operation
// lands in the one that differs. A collision with two or more differing
// children aborts the structural merge (errNonDecomposable) and the
// operands are rebuilt over a path tree, where every node has at most one
// child and the merge always decomposes. UNION ALL is the dedup-free leg:
// a collision keeps both entries as adjacent equal values (the bag reading
// of the encoding — DedupEnc normalises it back to a set).
package frep

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// setOp selects the merge semantics of one set-algebra walk.
type setOp int

const (
	opUnion setOp = iota
	opUnionAll
	opExcept
	opIntersect
)

func (o setOp) String() string {
	switch o {
	case opUnion:
		return "union"
	case opUnionAll:
		return "union all"
	case opExcept:
		return "except"
	case opIntersect:
		return "intersect"
	}
	return "?"
}

// errNonDecomposable aborts a structural merge when a union or except walk
// hits a collision whose sides differ in two or more child subtrees — the
// operation does not distribute over that product, so the operands fall
// back to the path-tree rebuild.
var errNonDecomposable = errors.New("frep: set operation does not decompose over this f-tree")

// UnionEnc returns a ∪ b under set semantics: the sorted unions of the two
// encodings are merged in one simultaneous walk when the f-trees align
// (directly, or after a Reindex when only sibling order differs), falling
// back to a path-tree rebuild otherwise. The operands must cover the same
// visible attribute set; their column orders may differ (the result follows
// a's tree on the structural path, a's schema order on the rebuild path).
func UnionEnc(a, b *Enc) (*Enc, error) { return setOpEnc(opUnion, a, b) }

// UnionAllEnc returns a ⊎ b under bag semantics: no deduplication — a value
// present in both sides keeps both entries, as adjacent equal values in one
// union. The result may therefore violate the strict-order invariant that
// Validate checks for set-semantics encodings; enumeration, Count and
// clipping all handle it, and DedupEnc restores the set form.
func UnionAllEnc(a, b *Enc) (*Enc, error) { return setOpEnc(opUnionAll, a, b) }

// ExceptEnc returns a − b under set semantics. Alignment and fallback as
// for UnionEnc.
func ExceptEnc(a, b *Enc) (*Enc, error) { return setOpEnc(opExcept, a, b) }

// IntersectEnc returns a ∩ b under set semantics. Intersection distributes
// over the f-tree's products, so the structural walk never needs the
// rebuild for aligned trees — misaligned trees still take it.
func IntersectEnc(a, b *Enc) (*Enc, error) { return setOpEnc(opIntersect, a, b) }

func setOpEnc(op setOp, a, b *Enc) (*Enc, error) {
	if err := checkSetSchemas(op, a, b); err != nil {
		return nil, err
	}
	// Empty operands short-circuit before any alignment work.
	switch {
	case a.IsEmpty() && b.IsEmpty():
		return NewEmptyEnc(a.Tree.Clone()), nil
	case a.IsEmpty():
		switch op {
		case opUnion:
			return DedupEnc(b), nil
		case opUnionAll:
			return b, nil
		default: // ∅ − B = ∅ ∩ B = ∅
			return NewEmptyEnc(a.Tree.Clone()), nil
		}
	case b.IsEmpty():
		switch op {
		case opIntersect:
			return NewEmptyEnc(a.Tree.Clone()), nil
		case opUnionAll:
			return a, nil
		default: // A ∪ ∅ = A − ∅ = A
			return DedupEnc(a), nil
		}
	}
	// Hidden attributes make structural values and visible tuples diverge
	// (two operands can be equal as relations yet differ entry-for-entry),
	// so only marker-free operands take the structural walk.
	if len(a.Tree.Hidden) == 0 && len(b.Tree.Hidden) == 0 {
		if rb, ok := alignSetOp(a, b); ok {
			la, lb := a, rb
			if op != opUnionAll {
				// Set semantics needs set-form inputs; engine-built operands
				// already are (DedupEnc is then free).
				la, lb = DedupEnc(la), DedupEnc(lb)
			}
			out, err := setOpStructural(op, la, lb)
			if err == nil {
				return out, nil
			}
			if !errors.Is(err, errNonDecomposable) {
				return nil, err
			}
		}
	}
	return setOpFlat(op, a, b)
}

// checkSetSchemas enforces the one hard contract: both operands cover the
// same visible attribute set (column order is free).
func checkSetSchemas(op setOp, a, b *Enc) error {
	av, bv := a.Tree.VisibleAttrs().Sorted(), b.Tree.VisibleAttrs().Sorted()
	if len(av) == 0 {
		return fmt.Errorf("frep: %s: operand has no visible attributes", op)
	}
	if len(av) != len(bv) {
		return fmt.Errorf("frep: %s: schemas differ: %v vs %v", op, av, bv)
	}
	for i := range av {
		if av[i] != bv[i] {
			return fmt.Errorf("frep: %s: schemas differ: %v vs %v", op, av, bv)
		}
	}
	return nil
}

// alignSetOp returns a view of b whose pre-order layout matches a's
// node-for-node, or ok=false when the trees genuinely disagree. Canonical
// equality admits sibling permutations, which Reindex resolves without
// touching the arena; anything else (different classes, different nesting,
// different markers) is not structurally mergeable.
func alignSetOp(a, b *Enc) (rb *Enc, ok bool) {
	if a.Tree.Canonical() != b.Tree.Canonical() || a.NodeCount() != b.NodeCount() {
		return nil, false
	}
	direct := true
	for ni := 0; ni < a.NodeCount(); ni++ {
		if a.Parent(ni) != b.Parent(ni) || !attrsEqual(a.Node(ni).Attrs, b.Node(ni).Attrs) {
			direct = false
			break
		}
	}
	if direct {
		return b, true
	}
	rb, err := b.Reindex(a.Tree.Clone())
	if err != nil {
		return nil, false
	}
	return rb, true
}

func attrsEqual(a, b []relation.Attribute) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// setMerger carries one structural merge: both operands share the builder's
// pre-order node indexing, so source and destination indexes coincide and
// off-walk fragments move by bulk copy.
type setMerger struct {
	op    setOp
	a, b  *Enc
	bld   *EncBuilder
	marks [][]int32 // per-depth Mark scratch
}

func (m *setMerger) markAt(d int) []int32 {
	for len(m.marks) <= d {
		m.marks = append(m.marks, nil)
	}
	return m.marks[d][:0]
}

// setOpStructural runs the simultaneous walk over aligned operands. A
// forest is the product of its roots, so it follows the same decomposition
// rules as a collided entry's child product: intersect recurses into every
// root, the others require all but at most one root to agree.
func setOpStructural(op setOp, a, b *Enc) (*Enc, error) {
	nt := a.Tree.Clone()
	m := &setMerger{op: op, a: a, b: b, bld: NewEncBuilder(nt)}
	roots := a.Roots()
	if len(roots) == 1 {
		n, err := m.mergeUnion(roots[0], 0, 0, 0)
		if err != nil {
			return nil, err
		}
		m.bld.CloseUnion(roots[0])
		if n == 0 {
			return NewEmptyEnc(nt), nil
		}
		return m.bld.Finish(), nil
	}
	if op == opIntersect {
		for _, ri := range roots {
			n, err := m.mergeUnion(ri, 0, 0, 0)
			if err != nil {
				return nil, err
			}
			if n == 0 {
				return NewEmptyEnc(nt), nil
			}
			m.bld.CloseUnion(ri)
		}
		return m.bld.Finish(), nil
	}
	diff := -1
	for _, ri := range roots {
		if !fragEqual(a, b, ri, 0, 0) {
			if diff >= 0 {
				return nil, errNonDecomposable
			}
			diff = ri
		}
	}
	if diff < 0 { // the operands are equal
		switch op {
		case opUnion:
			return a, nil
		case opExcept:
			return NewEmptyEnc(nt), nil
		default: // opUnionAll: A ⊎ A doubles any one root's component
			diff = roots[0]
		}
	}
	for _, ri := range roots {
		if ri != diff {
			m.bld.CopyUnions(a, ri, ri, 0, 1)
			continue
		}
		n, err := m.mergeUnion(ri, 0, 0, 0)
		if err != nil {
			return nil, err
		}
		if n == 0 { // except emptied the one differing root
			return NewEmptyEnc(nt), nil
		}
		m.bld.CloseUnion(ri)
	}
	return m.bld.Finish(), nil
}

// mergeUnion emits the operation of union ua of a and union ub of b at node
// ni into the builder's open union there, returning the entries emitted.
func (m *setMerger) mergeUnion(ni, ua, ub, depth int) (int, error) {
	alo, ahi := m.a.UnionSpan(ni, ua)
	blo, bhi := m.b.UnionSpan(ni, ub)
	va, vb := m.a.Vals(ni), m.b.Vals(ni)
	i, k := alo, blo
	count := 0
	for i < ahi || k < bhi {
		switch {
		case k >= bhi || (i < ahi && va[i] < vb[k]):
			if m.op != opIntersect { // union, union all, except keep a-only entries
				m.bld.CopyEntries(m.a, ni, ni, int(i), int(i)+1)
				count++
			}
			i++
		case i >= ahi || vb[k] < va[i]:
			if m.op == opUnion || m.op == opUnionAll { // b-only entries
				m.bld.CopyEntries(m.b, ni, ni, int(k), int(k)+1)
				count++
			}
			k++
		default:
			n, err := m.collide(ni, int(i), int(k), depth)
			if err != nil {
				return 0, err
			}
			count += n
			i++
			k++
		}
	}
	return count, nil
}

// collide handles one value present in both operands: entry ia of a and
// entry ib of b at node ni. Returns the entries emitted at ni (0, 1 or —
// for union all — 2).
func (m *setMerger) collide(ni, ia, ib, depth int) (int, error) {
	kids := m.a.Kids(ni)
	v := m.a.Vals(ni)[ia]
	if len(kids) == 0 {
		switch m.op {
		case opUnion, opIntersect:
			m.bld.Append(ni, v)
			return 1, nil
		case opUnionAll:
			m.bld.Append(ni, v)
			m.bld.Append(ni, v)
			return 2, nil
		default: // opExcept: the leaf entry annihilates
			return 0, nil
		}
	}
	switch m.op {
	case opUnionAll:
		// Bag semantics: both entries survive verbatim as adjacent equal
		// values; no recursion, so union all never aborts below the roots.
		m.bld.CopyEntries(m.a, ni, ni, ia, ia+1)
		m.bld.CopyEntries(m.b, ni, ni, ib, ib+1)
		return 2, nil
	case opIntersect:
		// ∩ distributes over the child product: recurse into every pair,
		// rolling the entry back if any child intersection empties.
		mark := m.bld.Mark(ni, m.markAt(depth))
		m.marks[depth] = mark
		m.bld.Append(ni, v)
		for _, ci := range kids {
			n, err := m.mergeUnion(ci, ia, ib, depth+1)
			if err != nil {
				return 0, err
			}
			if n == 0 {
				m.bld.Rollback(ni, m.marks[depth])
				return 0, nil
			}
			m.bld.CloseUnion(ci)
		}
		return 1, nil
	}
	// ∪ and − do not distribute: decomposable only when the sides agree on
	// all but at most one child, where the operation then lands.
	diff := -1
	for _, ci := range kids {
		if !fragEqual(m.a, m.b, ci, ia, ib) {
			if diff >= 0 {
				return 0, errNonDecomposable
			}
			diff = ci
		}
	}
	if diff < 0 { // fragments identical below the value
		if m.op == opUnion {
			m.bld.CopyEntries(m.a, ni, ni, ia, ia+1)
			return 1, nil
		}
		return 0, nil // except: the entry annihilates
	}
	mark := m.bld.Mark(ni, m.markAt(depth))
	m.marks[depth] = mark
	m.bld.Append(ni, v)
	for _, ci := range kids {
		if ci != diff {
			m.bld.CopyUnions(m.a, ci, ci, ia, ia+1)
			continue
		}
		n, err := m.mergeUnion(ci, ia, ib, depth+1)
		if err != nil {
			return 0, err
		}
		if n == 0 { // except emptied the one differing child
			m.bld.Rollback(ni, m.marks[depth])
			return 0, nil
		}
		m.bld.CloseUnion(ci)
	}
	return 1, nil
}

// fragEqual reports whether union ua of a and union ub of b at (shared
// pre-order) node ni represent the same fragment — UnionEqual across two
// encodings with aligned layouts.
func fragEqual(a, b *Enc, ni, ua, ub int) bool {
	alo, ahi := a.UnionSpan(ni, ua)
	blo, bhi := b.UnionSpan(ni, ub)
	if ahi-alo != bhi-blo {
		return false
	}
	va, vb := a.Vals(ni), b.Vals(ni)
	for t := int32(0); t < ahi-alo; t++ {
		if va[alo+t] != vb[blo+t] {
			return false
		}
		for _, ci := range a.Kids(ni) {
			if !fragEqual(a, b, ci, int(alo+t), int(blo+t)) {
				return false
			}
		}
	}
	return true
}

// ------------------------------------------------------- path-tree rebuild

// chainTree builds the chain f-tree over schema order: one single-attribute
// node per column, each with exactly one child. On a path every collision
// has at most one differing child by construction, so rebuilt operands
// always merge.
func chainTree(schema relation.Schema) *ftree.T {
	var root, cur *ftree.Node
	for _, a := range schema {
		n := ftree.NewNode(a)
		if cur == nil {
			root = n
		} else {
			cur.Add(n)
		}
		cur = n
	}
	return ftree.New([]*ftree.Node{root}, []relation.AttrSet{relation.NewAttrSet(schema...)})
}

// setOpFlat is the rebuild fallback: both operands are enumerated, b's
// columns permuted into a's schema order, both sorted, combined flat, and
// the result re-encoded over the path tree. Correctness over structure —
// taken when the trees disagree or a structural merge aborts.
func setOpFlat(op setOp, a, b *Enc) (*Enc, error) {
	schema := a.Schema()
	ra, rb := rowsOf(a, schema), rowsOf(b, schema)
	if op != opUnionAll {
		ra, rb = dedupRows(ra), dedupRows(rb)
	}
	return encodeRows(chainTree(schema), mergeRows(op, ra, rb), op == opUnionAll), nil
}

// rowsOf enumerates e's visible tuples permuted into schema order and
// sorted lexicographically.
func rowsOf(e *Enc, schema relation.Schema) []relation.Tuple {
	es := e.Schema()
	perm := make([]int, len(schema))
	for i, a := range schema {
		perm[i] = es.Index(a)
	}
	var rows []relation.Tuple
	e.Enumerate(func(t relation.Tuple) bool {
		row := make(relation.Tuple, len(perm))
		for i, j := range perm {
			row[i] = t[j]
		}
		rows = append(rows, row)
		return true
	})
	cmp := TupleCompare(schema, nil, nil)
	sort.SliceStable(rows, func(i, j int) bool { return cmp(rows[i], rows[j]) < 0 })
	return rows
}

// dedupRows removes adjacent duplicates from a sorted row slice, in place.
func dedupRows(rows []relation.Tuple) []relation.Tuple {
	out := rows[:0]
	for _, r := range rows {
		if len(out) > 0 && r.Compare(out[len(out)-1]) == 0 {
			continue
		}
		out = append(out, r)
	}
	return out
}

// mergeRows combines two sorted row slices under op. For the set-semantics
// operations the inputs must be deduplicated; union all keeps every copy.
func mergeRows(op setOp, a, b []relation.Tuple) []relation.Tuple {
	var out []relation.Tuple
	i, k := 0, 0
	for i < len(a) || k < len(b) {
		var c int
		switch {
		case k >= len(b):
			c = -1
		case i >= len(a):
			c = 1
		default:
			c = a[i].Compare(b[k])
		}
		switch {
		case c < 0:
			if op != opIntersect {
				out = append(out, a[i])
			}
			i++
		case c > 0:
			if op == opUnion || op == opUnionAll {
				out = append(out, b[k])
			}
			k++
		default:
			switch op {
			case opUnionAll: // keep both copies
				out = append(out, a[i], b[k])
			case opUnion, opIntersect:
				out = append(out, a[i])
			}
			i++
			k++
		}
	}
	return out
}

// encodeRows builds a chain-tree encoding from rows sorted in t's (schema)
// order by streaming inserts along the common prefix with the previous row.
// With keepDup, duplicate rows become duplicate leaf entries (the bag form
// union all produces); otherwise the rows must already be deduplicated.
func encodeRows(t *ftree.T, rows []relation.Tuple, keepDup bool) *Enc {
	if len(rows) == 0 {
		return NewEmptyEnc(t)
	}
	// Chain trees index node depth = pre-order position.
	b := NewEncBuilder(t)
	n := len(rows[0])
	var prev relation.Tuple
	for _, row := range rows {
		cp := 0
		if prev != nil {
			for cp < n && row[cp] == prev[cp] {
				cp++
			}
			if cp == n { // duplicate row
				if !keepDup {
					continue
				}
				cp = n - 1
			}
			for l := n - 1; l > cp; l-- {
				b.CloseUnion(l)
			}
		}
		for l := cp; l < n; l++ {
			b.Append(l, row[l])
		}
		prev = row
	}
	for l := n - 1; l >= 0; l-- {
		b.CloseUnion(l)
	}
	return b.Finish()
}
