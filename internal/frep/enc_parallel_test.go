package frep

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/relation"
)

// parallelAggSpecs exercises every aggregate function.
func parallelAggSpecs(schema relation.Schema) []AggSpec {
	specs := []AggSpec{{Fn: AggCount}}
	if len(schema) > 0 {
		specs = append(specs,
			AggSpec{Fn: AggSum, Attr: schema[0]},
			AggSpec{Fn: AggMin, Attr: schema[0]},
			AggSpec{Fn: AggMax, Attr: schema[len(schema)-1]},
			AggSpec{Fn: AggCountDistinct, Attr: schema[len(schema)-1]})
	}
	return specs
}

func aggRowsEqual(a, b []AggRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Key) != len(b[i].Key) || len(a[i].Vals) != len(b[i].Vals) {
			return false
		}
		for j := range a[i].Key {
			if a[i].Key[j] != b[i].Key[j] {
				return false
			}
		}
		for j := range a[i].Vals {
			if a[i].Vals[j] != b[i].Vals[j] {
				return false
			}
		}
	}
	return true
}

// TestAggregateParallelLockstep: the parallel aggregation pass agrees with
// the serial pass exactly — grouped and global, across random
// representations and worker counts.
func TestAggregateParallelLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	trials := 0
	for seed := int64(0); trials < 120; seed++ {
		fr := quickFRep(seed*7717 + rng.Int63n(1000))
		if fr == nil {
			continue
		}
		trials++
		e := fr.Encode()
		schema := e.Schema()
		specs := parallelAggSpecs(schema)
		var groupBy []relation.Attribute
		if len(schema) > 1 && trials%3 != 0 {
			groupBy = schema[:1+trials%2]
		}
		serial, err := e.Aggregate(groupBy, specs)
		if err != nil {
			continue // e.g. aggregate over hidden attribute
		}
		for _, p := range []int{2, 3, 5, 8} {
			par, err := e.AggregateParallel(groupBy, specs, p)
			if err != nil {
				t.Fatalf("seed %d (p=%d): %v", seed, p, err)
			}
			if !aggRowsEqual(serial, par) {
				t.Fatalf("seed %d (p=%d): parallel aggregation differs\nserial: %v\npar:    %v\ngroupBy %v",
					seed, p, serial, par, groupBy)
			}
		}
		if got, want := e.CountParallel(4), e.Count(); got != want {
			t.Fatalf("seed %d: CountParallel = %d, Count = %d", seed, got, want)
		}
	}
}

// TestEncIteratorRangeLockstep: concatenating the shard iterators
// reproduces the serial enumeration exactly, in order.
func TestEncIteratorRangeLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 0
	for seed := int64(0); trials < 80; seed++ {
		fr := quickFRep(seed*31 + rng.Int63n(100))
		if fr == nil {
			continue
		}
		trials++
		e := fr.Encode()
		var serial []relation.Tuple
		e.Enumerate(func(tp relation.Tuple) bool {
			serial = append(serial, tp.Clone())
			return true
		})
		for _, n := range []int{1, 2, 3, 7} {
			var got []relation.Tuple
			for _, it := range e.EnumerateShards(n) {
				for {
					tp, ok := it.Next()
					if !ok {
						break
					}
					got = append(got, tp.Clone())
				}
			}
			if len(got) != len(serial) {
				t.Fatalf("seed %d (shards=%d): %d tuples, want %d", seed, n, len(got), len(serial))
			}
			for i := range got {
				if got[i].Compare(serial[i]) != 0 {
					t.Fatalf("seed %d (shards=%d): tuple %d = %v, want %v", seed, n, i, got[i], serial[i])
				}
			}
		}
	}
}

// TestEnumerateParallel: the concurrent enumeration yields exactly the
// serial multiset of tuples, and early termination stops all workers.
func TestEnumerateParallel(t *testing.T) {
	fr := quickFRep(12345)
	for seed := int64(0); fr == nil || fr.IsEmpty(); seed++ {
		fr = quickFRep(seed)
	}
	e := fr.Encode()
	want := map[string]int{}
	total := 0
	e.Enumerate(func(tp relation.Tuple) bool {
		want[tupleKey(tp)]++
		total++
		return true
	})

	var mu sync.Mutex
	got := map[string]int{}
	e.EnumerateParallel(4, func(_ int, tp relation.Tuple) bool {
		mu.Lock()
		got[tupleKey(tp)]++
		mu.Unlock()
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("parallel enumeration saw %d distinct tuples, want %d", len(got), len(want))
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("tuple %q seen %d times, want %d", k, got[k], n)
		}
	}

	// Early stop: never more than a few tuples per worker after the signal.
	var n int
	e.EnumerateParallel(4, func(_ int, relTuple relation.Tuple) bool {
		mu.Lock()
		n++
		mu.Unlock()
		return false
	})
	if n > 4 {
		t.Fatalf("early-stopped enumeration yielded %d tuples (> one per worker)", n)
	}
	if n == 0 && total > 0 {
		t.Fatal("early-stopped enumeration yielded nothing")
	}
}

func tupleKey(t relation.Tuple) string {
	b := make([]byte, 0, len(t)*8)
	for _, v := range t {
		for s := 0; s < 64; s += 8 {
			b = append(b, byte(v>>s))
		}
	}
	return string(b)
}
