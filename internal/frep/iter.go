package frep

import (
	"repro/internal/ftree"
	"repro/internal/relation"
)

// Iterator enumerates the tuples of a factorised representation with
// constant delay (Section 2: O(|E|) preparation, O(|S|) work per tuple),
// as a resumable cursor — the pull-based counterpart of Enumerate. The
// iterator is invalidated by any mutation of the representation.
//
// Cursors are recycled through a per-iterator free list, so steady-state
// iteration allocates nothing: entering an entry reuses the cursors
// released by the previous one.
type Iterator struct {
	f      *FRep
	schema relation.Schema
	pos    map[relation.Attribute]int
	roots  []*unionCursor
	buf    relation.Tuple
	done   bool
	fresh  bool
	free   []*unionCursor
}

// unionCursor walks one union: the current entry index plus cursors for
// the current entry's children.
type unionCursor struct {
	u        *Union
	node     *ftree.Node
	idx      int
	children []*unionCursor
}

// NewIterator prepares an iterator over f. Preparation is linear in the
// depth of the representation; each Next is O(schema size) amortised.
func NewIterator(f *FRep) *Iterator {
	it := &Iterator{f: f, schema: f.Schema(), pos: map[relation.Attribute]int{}}
	for i, a := range it.schema {
		it.pos[a] = i
	}
	it.buf = make(relation.Tuple, len(it.schema))
	if f.IsEmpty() {
		it.done = true
		return it
	}
	for i, u := range f.Roots {
		it.roots = append(it.roots, it.newCursor(u, f.Tree.Roots[i]))
	}
	it.fresh = true
	return it
}

// newCursor takes a cursor from the free list (or allocates one) and seats
// it on the first entry of u.
func (it *Iterator) newCursor(u *Union, n *ftree.Node) *unionCursor {
	var c *unionCursor
	if k := len(it.free); k > 0 {
		c, it.free = it.free[k-1], it.free[:k-1]
	} else {
		c = &unionCursor{}
	}
	c.u, c.node, c.idx = u, n, 0
	it.enter(c)
	return c
}

// release returns a cursor subtree to the free list.
func (it *Iterator) release(c *unionCursor) {
	for _, ch := range c.children {
		it.release(ch)
	}
	c.children = c.children[:0]
	it.free = append(it.free, c)
}

// enter (re)builds the child cursors for the current entry.
func (it *Iterator) enter(c *unionCursor) {
	for _, ch := range c.children {
		it.release(ch)
	}
	e := &c.u.Entries[c.idx]
	c.children = c.children[:0]
	for j, cu := range e.Children {
		c.children = append(c.children, it.newCursor(cu, c.node.Children[j]))
	}
}

// advance moves the cursor to its next state; it returns false (and resets
// to the first state) when the subtree wraps around.
func (it *Iterator) advance(c *unionCursor) bool {
	// Odometer over the children product, rightmost child fastest.
	for j := len(c.children) - 1; j >= 0; j-- {
		if it.advance(c.children[j]) {
			return true
		}
	}
	c.idx++
	if c.idx < len(c.u.Entries) {
		it.enter(c)
		return true
	}
	c.idx = 0
	it.enter(c)
	return false
}

// fill writes the cursor's current values into buf.
func (c *unionCursor) fill(buf relation.Tuple, pos map[relation.Attribute]int) {
	e := &c.u.Entries[c.idx]
	for _, a := range c.node.Attrs {
		if p, ok := pos[a]; ok {
			buf[p] = e.Val
		}
	}
	for _, ch := range c.children {
		ch.fill(buf, pos)
	}
}

// Next returns the next tuple, or ok = false when the enumeration is
// exhausted. The returned slice is reused across calls; clone it to retain.
func (it *Iterator) Next() (t relation.Tuple, ok bool) {
	if it.done {
		return nil, false
	}
	if it.fresh {
		it.fresh = false
	} else {
		advanced := false
		for j := len(it.roots) - 1; j >= 0; j-- {
			if it.advance(it.roots[j]) {
				advanced = true
				break
			}
		}
		if !advanced {
			it.done = true
			return nil, false
		}
	}
	for _, rc := range it.roots {
		rc.fill(it.buf, it.pos)
	}
	return it.buf, true
}

// Schema returns the attribute order of the tuples produced by Next.
func (it *Iterator) Schema() relation.Schema { return it.schema }

// Reset rewinds the iterator to the first tuple.
func (it *Iterator) Reset() {
	it.done = it.f.IsEmpty()
	it.fresh = !it.done
	for _, rc := range it.roots {
		it.release(rc)
	}
	it.roots = it.roots[:0]
	if it.done {
		return
	}
	for i, u := range it.f.Roots {
		it.roots = append(it.roots, it.newCursor(u, it.f.Tree.Roots[i]))
	}
}
