package frep

import (
	"repro/internal/ftree"
	"repro/internal/relation"
)

// Iterator enumerates the tuples of a factorised representation with
// constant delay (Section 2: O(|E|) preparation, O(|S|) work per tuple),
// as a resumable cursor — the pull-based counterpart of Enumerate. The
// iterator is invalidated by any mutation of the representation.
type Iterator struct {
	f      *FRep
	schema relation.Schema
	pos    map[relation.Attribute]int
	roots  []*unionCursor
	buf    relation.Tuple
	done   bool
	fresh  bool
}

// unionCursor walks one union: the current entry index plus cursors for
// the current entry's children.
type unionCursor struct {
	u        *Union
	node     *ftree.Node
	idx      int
	children []*unionCursor
}

// NewIterator prepares an iterator over f. Preparation is linear in the
// depth of the representation; each Next is O(schema size) amortised.
func NewIterator(f *FRep) *Iterator {
	it := &Iterator{f: f, schema: f.Schema(), pos: map[relation.Attribute]int{}}
	for i, a := range it.schema {
		it.pos[a] = i
	}
	it.buf = make(relation.Tuple, len(it.schema))
	if f.IsEmpty() {
		it.done = true
		return it
	}
	for i, u := range f.Roots {
		it.roots = append(it.roots, newUnionCursor(u, f.Tree.Roots[i]))
	}
	it.fresh = true
	return it
}

func newUnionCursor(u *Union, n *ftree.Node) *unionCursor {
	c := &unionCursor{u: u, node: n}
	c.enter()
	return c
}

// enter (re)builds the child cursors for the current entry.
func (c *unionCursor) enter() {
	e := &c.u.Entries[c.idx]
	c.children = c.children[:0]
	for j, cu := range e.Children {
		c.children = append(c.children, newUnionCursor(cu, c.node.Children[j]))
	}
}

// advance moves the cursor to its next state; it returns false (and resets
// to the first state) when the subtree wraps around.
func (c *unionCursor) advance() bool {
	// Odometer over the children product, rightmost child fastest.
	for j := len(c.children) - 1; j >= 0; j-- {
		if c.children[j].advance() {
			return true
		}
	}
	c.idx++
	if c.idx < len(c.u.Entries) {
		c.enter()
		return true
	}
	c.idx = 0
	c.enter()
	return false
}

// fill writes the cursor's current values into buf.
func (c *unionCursor) fill(buf relation.Tuple, pos map[relation.Attribute]int) {
	e := &c.u.Entries[c.idx]
	for _, a := range c.node.Attrs {
		if p, ok := pos[a]; ok {
			buf[p] = e.Val
		}
	}
	for _, ch := range c.children {
		ch.fill(buf, pos)
	}
}

// Next returns the next tuple, or ok = false when the enumeration is
// exhausted. The returned slice is reused across calls; clone it to retain.
func (it *Iterator) Next() (t relation.Tuple, ok bool) {
	if it.done {
		return nil, false
	}
	if it.fresh {
		it.fresh = false
	} else {
		advanced := false
		for j := len(it.roots) - 1; j >= 0; j-- {
			if it.roots[j].advance() {
				advanced = true
				break
			}
		}
		if !advanced {
			it.done = true
			return nil, false
		}
	}
	for _, rc := range it.roots {
		rc.fill(it.buf, it.pos)
	}
	return it.buf, true
}

// Schema returns the attribute order of the tuples produced by Next.
func (it *Iterator) Schema() relation.Schema { return it.schema }

// Reset rewinds the iterator to the first tuple.
func (it *Iterator) Reset() {
	it.done = it.f.IsEmpty()
	it.fresh = !it.done
	it.roots = it.roots[:0]
	if it.done {
		return
	}
	for i, u := range it.f.Roots {
		it.roots = append(it.roots, newUnionCursor(u, it.f.Tree.Roots[i]))
	}
}
