// Order-aware retrieval over encoded f-representations. Result order is a
// structural property of the encoding: every union keeps its values sorted,
// and enumeration is lexicographic over the pre-order node sequence. When an
// ORDER BY prefix coincides with that pre-order prefix, ordered retrieval is
// plain enumeration — no sort, and LIMIT short-circuits after n tuples (true
// top-k over the compressed form). Two refinements keep this structural path
// available beyond native value order:
//
//   - per-node sort permutations: dictionary codes are insertion-ordered, so
//     decoded (e.g. lexicographic string) order is a per-union permutation of
//     the stored order. The permutations are built once per column and the
//     ordered iterator walks unions through them;
//   - per-node direction: descending keys walk their union (or permutation)
//     backwards, which reverses exactly that digit of the odometer.
//
// When the requested order is incompatible with the f-tree even after
// restructuring, SortedIter falls back to a bounded size-(offset+limit) heap
// (or a full sort when no limit is given) over the enumeration.
package frep

import (
	"fmt"
	"sort"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// OrderKey is one ORDER BY sort key: an attribute and a direction.
type OrderKey struct {
	Attr relation.Attribute
	Desc bool
}

func (k OrderKey) String() string {
	if k.Desc {
		return string(k.Attr) + "-"
	}
	return string(k.Attr) + "+"
}

// ValueLess is a strict weak order on engine values. A nil ValueLess means
// native int64 order — the order unions are stored in. A non-nil comparator
// (e.g. dictionary-decoded lexicographic order) makes the ordered iterator
// build sort permutations for the key columns.
type ValueLess func(a, b relation.Value) bool

// TupleIter is a resumable iterator over result tuples. EncIterator,
// OrderedEncIterator and the sort-fallback iterator all implement it; the
// tuple returned by Next may be reused between calls — clone to retain.
type TupleIter interface {
	Next() (relation.Tuple, bool)
	Schema() relation.Schema
	Reset()
}

// EncOrder is a resolved order plan for one Enc: the ORDER BY keys were
// matched against the pre-order node sequence, so the first Prefix nodes
// stream in key order (per-node direction, optionally through a decoded-order
// permutation) and every deeper node streams natively.
type EncOrder struct {
	Prefix int
	desc   []bool    // per covered node
	perms  [][]int32 // per covered node; nil = stored order is key order
}

// allConst reports whether every attribute of node ni is bound to a constant:
// such a node holds at most one entry per union, so it cannot perturb the
// order of the surrounding digits.
func (e *Enc) allConst(ni int) bool {
	for _, a := range e.ti.nodes[ni].Attrs {
		if !e.Tree.Consts.Has(a) {
			return false
		}
	}
	return true
}

// ResolveOrder matches the ORDER BY keys against e's pre-order node sequence
// and returns the order plan, or ok == false when the requested order is not
// a structural property of this encoding (the caller may retry after sibling
// reordering, or fall back to SortedIter). Keys on constant nodes impose
// nothing and are skipped, as are keys whose node an earlier key already
// pinned (their digits are tie-free).
func ResolveOrder(e *Enc, keys []OrderKey, less ValueLess) (*EncOrder, bool) {
	ord := &EncOrder{}
	cover := func(desc bool, perm []int32) {
		ord.desc = append(ord.desc, desc)
		ord.perms = append(ord.perms, perm)
		ord.Prefix++
	}
	for _, k := range keys {
		n := e.Tree.NodeOf(k.Attr)
		if n == nil || e.Tree.Hidden.Has(k.Attr) {
			return nil, false
		}
		ni := e.NodeIndex(n)
		if e.allConst(ni) || ni < ord.Prefix {
			continue
		}
		for ord.Prefix < ni && e.allConst(ord.Prefix) {
			cover(false, nil)
		}
		if ord.Prefix != ni {
			return nil, false
		}
		cover(k.Desc, e.sortPerm(ni, less))
	}
	return ord, true
}

// sortPerm builds the decoded-order permutation of node ni's entry column:
// within every union, walking the permuted indices yields ascending order
// under less. A nil return means the stored order already is the requested
// order (always the case for native value order).
func (e *Enc) sortPerm(ni int, less ValueLess) []int32 {
	if less == nil {
		return nil
	}
	vals := e.Vals(ni)
	offs := e.Offs(ni)
	perm := make([]int32, len(vals))
	identity := true
	for u := 0; u+1 < len(offs); u++ {
		lo, hi := offs[u], offs[u+1]
		for j := lo; j < hi; j++ {
			perm[j] = j
		}
		s := perm[lo:hi]
		sort.SliceStable(s, func(a, b int) bool { return less(vals[s[a]], vals[s[b]]) })
		if identity {
			for j := lo; j < hi; j++ {
				if perm[j] != j {
					identity = false
					break
				}
			}
		}
	}
	if identity {
		return nil
	}
	return perm
}

// OrderedEncIterator enumerates an encoded representation in ORDER BY order
// when the order is structural (see ResolveOrder): the same constant-delay
// odometer as EncIterator, except that the covered prefix nodes walk their
// unions by direction and permutation. Visited counts the entries seated, so
// tests can verify that Limit(n) retrieval touches O(n) of the encoding.
type OrderedEncIterator struct {
	e       *Enc
	ord     *EncOrder
	schema  relation.Schema
	fills   [][]int
	pos     []int32 // per node: position within the current union walk
	abs     []int32 // per node: absolute entry index (value + child-union id)
	lo, hi  []int32 // per node: current union span
	buf     relation.Tuple
	done    bool
	fresh   bool
	visited int64
}

// NewOrderedEncIterator prepares an ordered iterator over e for a plan
// resolved by ResolveOrder against the same Enc.
func NewOrderedEncIterator(e *Enc, ord *EncOrder) *OrderedEncIterator {
	it := &OrderedEncIterator{e: e, ord: ord, schema: e.Schema()}
	it.fills = encFillTable(e, it.schema)
	it.buf = make(relation.Tuple, len(it.schema))
	n := len(e.ti.nodes)
	it.pos = make([]int32, n)
	it.abs = make([]int32, n)
	it.lo = make([]int32, n)
	it.hi = make([]int32, n)
	it.Reset()
	return it
}

// entryAt maps a walk position to the absolute entry index of node ni.
func (it *OrderedEncIterator) entryAt(ni int, pos int32) int32 {
	lo, hi := it.lo[ni], it.hi[ni]
	if ni >= it.ord.Prefix {
		return lo + pos
	}
	j := lo + pos
	if it.ord.desc[ni] {
		j = hi - 1 - pos
	}
	if p := it.ord.perms[ni]; p != nil {
		return p[j]
	}
	return j
}

// Reset rewinds the iterator to the first tuple.
func (it *OrderedEncIterator) Reset() {
	it.visited = 0
	it.done = it.e.IsEmpty()
	it.fresh = !it.done
	if it.done {
		return
	}
	it.reseat(0)
}

// reseat recomputes union spans and first-position cursors for nodes
// [from, n) in pre-order, following each parent's current absolute entry.
func (it *OrderedEncIterator) reseat(from int) {
	e := it.e
	for ni := from; ni < len(e.ti.nodes); ni++ {
		u := 0
		if p := e.ti.par[ni]; p >= 0 {
			u = int(it.abs[p])
		}
		it.lo[ni], it.hi[ni] = e.UnionSpan(ni, u)
		it.pos[ni] = 0
		it.abs[ni] = it.entryAt(ni, 0)
		it.visited++
	}
}

// Next returns the next tuple in key order, or ok == false when exhausted.
// The returned slice is reused across calls; clone it to retain.
func (it *OrderedEncIterator) Next() (t relation.Tuple, ok bool) {
	if it.done {
		return nil, false
	}
	from := 0
	if it.fresh {
		it.fresh = false
	} else {
		i := len(it.pos) - 1
		for ; i >= 0; i-- {
			if it.pos[i]+1 < it.hi[i]-it.lo[i] {
				it.pos[i]++
				it.abs[i] = it.entryAt(i, it.pos[i])
				it.visited++
				it.reseat(i + 1)
				break
			}
		}
		if i < 0 {
			it.done = true
			return nil, false
		}
		from = i
	}
	for ni := from; ni < len(it.pos); ni++ {
		v := it.e.Vals(ni)[it.abs[ni]]
		for _, p := range it.fills[ni] {
			it.buf[p] = v
		}
	}
	return it.buf, true
}

// Schema returns the attribute order of the tuples produced by Next.
func (it *OrderedEncIterator) Schema() relation.Schema { return it.schema }

// Visited returns the number of entry seatings since the last Reset — the
// work measure behind the O(n) top-k guarantee.
func (it *OrderedEncIterator) Visited() int64 { return it.visited }

// --------------------------------------------------------- offset / limit

// clipIter applies OFFSET/LIMIT to an inner iterator.
type clipIter struct {
	inner   TupleIter
	offset  int
	limit   int // < 0: none
	skipped bool
	emitted int
}

// Clip wraps it so that the first offset tuples are skipped and at most
// limit tuples are returned (limit < 0: no bound). Clip(it, 0, -1) is it.
func Clip(it TupleIter, offset, limit int) TupleIter {
	if offset <= 0 && limit < 0 {
		return it
	}
	return &clipIter{inner: it, offset: offset, limit: limit}
}

func (c *clipIter) Next() (relation.Tuple, bool) {
	if !c.skipped {
		c.skipped = true
		for i := 0; i < c.offset; i++ {
			if _, ok := c.inner.Next(); !ok {
				c.emitted = c.limit
				return nil, false
			}
		}
	}
	if c.limit >= 0 && c.emitted >= c.limit {
		return nil, false
	}
	t, ok := c.inner.Next()
	if ok {
		c.emitted++
	}
	return t, ok
}

func (c *clipIter) Schema() relation.Schema { return c.inner.Schema() }

func (c *clipIter) Reset() {
	c.inner.Reset()
	c.skipped = false
	c.emitted = 0
}

// ------------------------------------------------------------ sort fallback

// TupleCompare returns the three-way comparison ORDER BY retrieval uses: the
// keys in order (honouring direction and the comparator), then every schema
// column ascending in native (stored value) order — a deterministic total
// order on distinct tuples, identical to the structural streaming order
// whenever that order exists (non-key digits stream in stored order, which
// for dictionary codes is insertion order, not decoded order).
func TupleCompare(schema relation.Schema, keys []OrderKey, less ValueLess) func(a, b relation.Tuple) int {
	cols := make([]int, len(keys))
	for i, k := range keys {
		cols[i] = schema.Index(k.Attr)
	}
	cmpVal := func(x, y relation.Value) int {
		if less != nil {
			switch {
			case less(x, y):
				return -1
			case less(y, x):
				return 1
			}
			return 0
		}
		switch {
		case x < y:
			return -1
		case x > y:
			return 1
		}
		return 0
	}
	return func(a, b relation.Tuple) int {
		for i, c := range cols {
			if c < 0 {
				continue
			}
			d := cmpVal(a[c], b[c])
			if d != 0 {
				if keys[i].Desc {
					return -d
				}
				return d
			}
		}
		for i := range schema {
			switch {
			case a[i] < b[i]:
				return -1
			case a[i] > b[i]:
				return 1
			}
		}
		return 0
	}
}

// sortedIter replays materialised, pre-sorted rows.
type sortedIter struct {
	schema relation.Schema
	rows   []relation.Tuple
	i      int
}

func (s *sortedIter) Next() (relation.Tuple, bool) {
	if s.i >= len(s.rows) {
		return nil, false
	}
	t := s.rows[s.i]
	s.i++
	return t, true
}

func (s *sortedIter) Schema() relation.Schema { return s.schema }
func (s *sortedIter) Reset()                  { s.i = 0 }

// ReplayIter returns an iterator over pre-materialised rows — the cursor
// side of the sort fallback, so callers can sort once (SortedRows) and hand
// out fresh iterators over the shared slice.
func ReplayIter(schema relation.Schema, rows []relation.Tuple) TupleIter {
	return &sortedIter{schema: schema, rows: rows}
}

// SortedIter is the fallback for orders incompatible with the f-tree:
// ReplayIter over SortedRows.
func SortedIter(e *Enc, keys []OrderKey, less ValueLess, offset, limit int) TupleIter {
	return ReplayIter(e.Schema(), SortedRows(e, keys, less, offset, limit))
}

// SortedRows materialises the ordered, clipped fallback sequence: it
// enumerates e once and sorts. With a limit it keeps a bounded max-heap of
// the best offset+limit tuples (O(N log k) time, O(k) memory — the top-k
// never materialises the flat result); without one it sorts everything.
func SortedRows(e *Enc, keys []OrderKey, less ValueLess, offset, limit int) []relation.Tuple {
	schema := e.Schema()
	cmp := TupleCompare(schema, keys, less)
	var rows []relation.Tuple
	if limit >= 0 {
		k := offset + limit
		if k <= 0 {
			return nil
		}
		heap := make([]relation.Tuple, 0, k)
		// Max-heap under cmp: the root is the worst of the best k so far.
		siftUp := func(i int) {
			for i > 0 {
				p := (i - 1) / 2
				if cmp(heap[i], heap[p]) <= 0 {
					return
				}
				heap[i], heap[p] = heap[p], heap[i]
				i = p
			}
		}
		siftDown := func(i int) {
			for {
				c := 2*i + 1
				if c >= len(heap) {
					return
				}
				if c+1 < len(heap) && cmp(heap[c+1], heap[c]) > 0 {
					c++
				}
				if cmp(heap[c], heap[i]) <= 0 {
					return
				}
				heap[i], heap[c] = heap[c], heap[i]
				i = c
			}
		}
		e.Enumerate(func(t relation.Tuple) bool {
			if len(heap) < k {
				heap = append(heap, t.Clone())
				siftUp(len(heap) - 1)
			} else if cmp(t, heap[0]) < 0 {
				heap[0] = t.Clone()
				siftDown(0)
			}
			return true
		})
		rows = heap
	} else {
		e.Enumerate(func(t relation.Tuple) bool {
			rows = append(rows, t.Clone())
			return true
		})
	}
	sort.SliceStable(rows, func(i, j int) bool { return cmp(rows[i], rows[j]) < 0 })
	if offset > 0 {
		if offset >= len(rows) {
			rows = nil
		} else {
			rows = rows[offset:]
		}
	}
	if limit >= 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}

// ------------------------------------------------------------------ dedup

// HasDupEntries reports whether any union holds two entries with the same
// value — the one way an encoding can represent duplicate tuples. A cheap
// O(size) scan: engine-built representations satisfy the strict order
// invariant, so DISTINCT verifies the set property at memory speed and only
// pays for a rebuild when a duplicate actually exists.
func (e *Enc) HasDupEntries() bool {
	if e.IsEmpty() {
		return false
	}
	for ni := range e.cols {
		vals, offs := e.Vals(ni), e.Offs(ni)
		for u := 0; u+1 < len(offs); u++ {
			for j := offs[u] + 1; j < offs[u+1]; j++ {
				if vals[j] == vals[j-1] {
					return true
				}
			}
		}
	}
	return false
}

// DedupEnc returns the set-semantics normalisation of e: within every union,
// entries sharing a value are merged (their child unions union recursively)
// so the result satisfies the strict order invariant and represents the same
// relation without duplicates. Engine-produced representations already are
// sets (HasDupEntries is false), and come back unchanged without a rebuild;
// DISTINCT exists to make that guarantee explicit and to normalise
// externally-built encodings.
func DedupEnc(e *Enc) *Enc {
	if !e.HasDupEntries() {
		return e
	}
	nt := e.Tree.Clone()
	if e.IsEmpty() {
		return NewEmptyEnc(nt)
	}
	// The clone shares e's pre-order shape, so source and destination node
	// indexes coincide.
	b := NewEncBuilder(nt)
	var emit func(ni int, unions []int32)
	emit = func(ni int, unions []int32) {
		offs := e.Offs(ni)
		vals := e.Vals(ni)
		var idxs []int32
		for _, u := range unions {
			for j := offs[u]; j < offs[u+1]; j++ {
				idxs = append(idxs, j)
			}
		}
		sort.SliceStable(idxs, func(a, b int) bool { return vals[idxs[a]] < vals[idxs[b]] })
		for g := 0; g < len(idxs); {
			h := g
			for h < len(idxs) && vals[idxs[h]] == vals[idxs[g]] {
				h++
			}
			b.Append(ni, vals[idxs[g]])
			for _, ci := range e.Kids(ni) {
				emit(ci, idxs[g:h])
				b.CloseUnion(ci)
			}
			g = h
		}
	}
	for _, ri := range e.Roots() {
		emit(ri, []int32{0})
		b.CloseUnion(ri)
	}
	return b.Finish()
}

// Dedup merges duplicate-valued entries of every union in place (children
// union recursively) — the pointer-form mirror of DedupEnc.
func (f *FRep) Dedup() {
	if f.IsEmpty() {
		return
	}
	for i, u := range f.Roots {
		f.Roots[i] = dedupUnions([]*Union{u})
	}
}

// dedupUnions merges several unions of the same node into one deduplicated,
// sorted union.
func dedupUnions(us []*Union) *Union {
	type src struct {
		u *Union
		i int
	}
	var all []src
	for _, u := range us {
		for i := range u.Entries {
			all = append(all, src{u, i})
		}
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].u.Entries[all[a].i].Val < all[b].u.Entries[all[b].i].Val })
	out := &Union{}
	for g := 0; g < len(all); {
		h := g
		for h < len(all) && all[h].u.Entries[all[h].i].Val == all[g].u.Entries[all[g].i].Val {
			h++
		}
		first := all[g].u.Entries[all[g].i]
		en := Entry{Val: first.Val}
		if len(first.Children) > 0 {
			en.Children = make([]*Union, len(first.Children))
			for k := range first.Children {
				kids := make([]*Union, 0, h-g)
				for _, s := range all[g:h] {
					kids = append(kids, s.u.Entries[s.i].Children[k])
				}
				en.Children[k] = dedupUnions(kids)
			}
		}
		out.Entries = append(out.Entries, en)
		g = h
	}
	return out
}

// ---------------------------------------------------------------- reindex

// Reindex returns a view of e over t, which must be e's tree with root and
// sibling order permuted (same node labels, same parent/child relationships).
// Child unions follow parent entry order — a property independent of sibling
// order — so the arena is shared untouched and only the pre-order column
// table is rebuilt: O(#nodes). Reordering siblings is how an ORDER BY that
// names the right nodes in the wrong pre-order positions becomes structural.
func (e *Enc) Reindex(t *ftree.T) (*Enc, error) {
	ti := indexTree(t)
	if len(ti.nodes) != len(e.ti.nodes) {
		return nil, fmt.Errorf("frep: reindex: %d nodes, expected %d", len(ti.nodes), len(e.ti.nodes))
	}
	cols := make([]nodeCol, len(ti.nodes))
	old := make([]int, len(ti.nodes))
	for i, n := range ti.nodes {
		on := e.Tree.NodeOf(n.Attrs[0])
		if on == nil {
			return nil, fmt.Errorf("frep: reindex: attribute %q not in source tree", n.Attrs[0])
		}
		oi := e.ti.idx[on]
		old[i] = oi
		cols[i] = e.cols[oi]
	}
	for i := range ti.nodes {
		np, op := ti.par[i], e.ti.par[old[i]]
		if (np < 0) != (op < 0) || (np >= 0 && old[np] != op) {
			return nil, fmt.Errorf("frep: reindex: node %v changed parents", ti.nodes[i].Attrs)
		}
	}
	return &Enc{Tree: t, Empty: e.Empty, A: e.A, cols: cols, ti: ti}, nil
}
