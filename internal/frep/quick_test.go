package frep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// quickRel derives a small random relation over {A,B,C} from a seed.
func quickRel(seed int64) *relation.Relation {
	rng := rand.New(rand.NewSource(seed))
	r := relation.New("R", relation.Schema{"A", "B", "C"})
	for i := 0; i < rng.Intn(25); i++ {
		r.Append(relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)))
	}
	r.Dedup()
	return r
}

func quickTree(seed int64) *ftree.T {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	attrs := []relation.Attribute{"A", "B", "C"}
	rng.Shuffle(3, func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	return randomPathTree(attrs, rng,
		[]relation.AttrSet{relation.NewAttrSet("A", "B", "C")})
}

// Property: Count always equals the exact number of enumerated tuples and
// the cardinality of the source relation.
func TestQuickCountMatchesEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		r := quickRel(seed)
		fr, err := FromRelation(quickTree(seed), r)
		if err != nil {
			return false
		}
		n := int64(0)
		fr.Enumerate(func(relation.Tuple) bool { n++; return true })
		return fr.Count() == n && n == int64(r.Cardinality())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Size never exceeds the flat data-element count, and is zero
// exactly for the empty relation.
func TestQuickSizeBound(t *testing.T) {
	f := func(seed int64) bool {
		r := quickRel(seed)
		fr, err := FromRelation(quickTree(seed), r)
		if err != nil {
			return false
		}
		flat := r.Cardinality() * len(r.Schema)
		if fr.Size() > flat {
			return false
		}
		return (fr.Size() == 0) == (r.Cardinality() == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is deep — mutating the clone never changes the original's
// relation.
func TestQuickCloneIsDeep(t *testing.T) {
	f := func(seed int64) bool {
		r := quickRel(seed)
		if r.Cardinality() == 0 {
			return true
		}
		fr, err := FromRelation(quickTree(seed), r)
		if err != nil {
			return false
		}
		before := fr.Size()
		c := fr.Clone()
		c.Roots[0].Entries = nil
		c.Empty = true
		return fr.Size() == before && !fr.IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: Validate accepts everything FromRelation builds.
func TestQuickFromRelationValidates(t *testing.T) {
	f := func(seed int64) bool {
		fr, err := FromRelation(quickTree(seed), quickRel(seed))
		if err != nil {
			return false
		}
		return fr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
