// Aggregation over the encoded (columnar) representation: the same
// algebraic evaluator as agg.go — unions add partials, products multiply
// counts and cross-combine sums — but walking value columns and offset
// spans with index arithmetic instead of chasing *Union pointers.
package frep

import (
	"repro/internal/relation"
)

// Aggregate computes the given aggregates over the represented relation,
// grouped by the groupBy attributes, in one pass over the columns. Rows
// come back sorted by group key, identical to FRep.Aggregate on the
// equivalent pointer form.
func (e *Enc) Aggregate(groupBy []relation.Attribute, specs []AggSpec) ([]AggRow, error) {
	ev, err := newAggEval(e.Tree, groupBy, specs)
	if err != nil {
		return nil, err
	}
	if e.IsEmpty() {
		return nil, nil
	}
	scalar := ev.unit()
	var cur map[string]*partial
	for _, ri := range e.ti.roots {
		n := e.ti.nodes[ri]
		lo, hi := int32(0), int32(e.NumEntries(ri))
		if !ev.groupBelow[n] {
			ev.crossScalar(scalar, ev.encScalarSpan(e, ri, lo, hi, 0))
		} else if m := ev.encSpan(e, ri, lo, hi); cur == nil {
			cur = m
		} else {
			cur = ev.cross(cur, m)
		}
	}
	return ev.finishRows(cur, scalar), nil
}

// encScalarSpan aggregates entries [lo,hi) of node ni — a subtree holding
// no group attribute — into a single partial, allocation-free via the
// per-depth scratch slots (the columnar mirror of scalarUnion).
func (ev *aggEval) encScalarSpan(e *Enc, ni int, lo, hi int32, d int) *partial {
	n := e.ti.nodes[ni]
	if !ev.specBelow[n] {
		return ev.scratchAt(&ev.uscratch, d, e.countSpan(ni, lo, hi))
	}
	total := ev.scratchAt(&ev.uscratch, d, 0)
	for j := lo; j < hi; j++ {
		ev.add(total, ev.encScalarEntry(e, ni, j, d))
	}
	return total
}

// encScalarEntry aggregates one entry (absolute index j) of node ni.
func (ev *aggEval) encScalarEntry(e *Enc, ni int, j int32, d int) *partial {
	p := ev.scratchAt(&ev.escratch, d, 1)
	for _, ci := range e.ti.kids[ni] {
		clo, chi := e.UnionSpan(ci, int(j))
		ev.crossScalar(p, ev.encScalarSpan(e, ci, clo, chi, d+1))
	}
	ev.applyNode(p, e.Vals(ni)[j], e.ti.nodes[ni])
	return p
}

// encSpan aggregates entries [lo,hi) of node ni (one union of the group
// zone), keyed by the group slots fixed inside the subtree.
func (ev *aggEval) encSpan(e *Enc, ni int, lo, hi int32) map[string]*partial {
	out := make(map[string]*partial, 1)
	for j := lo; j < hi; j++ {
		for k, p := range ev.encEntry(e, ni, j) {
			if q, ok := out[k]; ok {
				ev.add(q, p)
			} else {
				out[k] = p
			}
		}
	}
	return out
}

// encEntry aggregates one group-zone entry: the product of its child
// unions (scalar for group-free children, keyed for the rest), finished by
// the shared foldEntry — the columnar mirror of aggEval.entry.
func (ev *aggEval) encEntry(e *Enc, ni int, j int32) map[string]*partial {
	scalar := ev.unit()
	var cur map[string]*partial
	for _, ci := range e.ti.kids[ni] {
		cn := e.ti.nodes[ci]
		clo, chi := e.UnionSpan(ci, int(j))
		if !ev.groupBelow[cn] {
			ev.crossScalar(scalar, ev.encScalarSpan(e, ci, clo, chi, 0))
		} else if m := ev.encSpan(e, ci, clo, chi); cur == nil {
			cur = m
		} else {
			cur = ev.cross(cur, m)
		}
	}
	return ev.foldEntry(cur, scalar, e.Vals(ni)[j], e.ti.nodes[ni])
}
