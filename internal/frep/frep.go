// Package frep implements factorised representations (f-representations,
// Definition 1 of the paper) stored structurally against their f-tree
// (Definition 2). Each f-tree node corresponds, at every position in the
// data, to a Union: a value-sorted list of entries, one child Union per
// f-tree child. The top level holds one Union per f-tree root (their
// product).
//
// The representation maintains two invariants from Section 3:
//
//   - order: the values of every union are strictly increasing;
//   - reduction: every non-root union is non-empty (an empty union would
//     annihilate its enclosing product, so the enclosing entry is removed
//     instead; emptiness can therefore only surface at the roots).
package frep

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// Union is the f-representation fragment for one f-tree node at one
// position: ⋃_a ⟨A₁:a⟩×…×⟨A_k:a⟩ × E_a^1 × … × E_a^m.
type Union struct {
	Entries []Entry
}

// Entry is one term of a union: a value paired with one child union per
// child of the owning f-tree node.
type Entry struct {
	Val      relation.Value
	Children []*Union
}

// FRep is a factorised representation over an f-tree.
type FRep struct {
	Tree  *ftree.T
	Roots []*Union // parallel to Tree.Roots
	// Empty marks the empty relation ∅ explicitly; it is also implied by
	// any root union having no entries.
	Empty bool
}

// New returns an f-representation scaffold with empty root unions (the
// empty relation) for the given tree.
func New(t *ftree.T) *FRep {
	fr := &FRep{Tree: t, Empty: true}
	for range t.Roots {
		fr.Roots = append(fr.Roots, &Union{})
	}
	return fr
}

// IsEmpty reports whether the represented relation is empty.
func (f *FRep) IsEmpty() bool {
	if f.Empty {
		return true
	}
	for _, u := range f.Roots {
		if len(u.Entries) == 0 {
			return true
		}
	}
	return false
}

// Clone deep-copies the representation (and its tree).
func (f *FRep) Clone() *FRep {
	out := &FRep{Tree: f.Tree.Clone(), Empty: f.Empty}
	for _, u := range f.Roots {
		out.Roots = append(out.Roots, u.clone())
	}
	return out
}

func (u *Union) clone() *Union {
	out := &Union{Entries: make([]Entry, len(u.Entries))}
	for i, e := range u.Entries {
		ne := Entry{Val: e.Val, Children: make([]*Union, len(e.Children))}
		for j, c := range e.Children {
			ne.Children[j] = c.clone()
		}
		out.Entries[i] = ne
	}
	return out
}

// Size returns the number of singletons, the size measure |E| of the paper.
// Hidden attributes contribute nothing (their singletons are the nullary
// ⟨⟩); constant attributes still count (they hold a value).
func (f *FRep) Size() int {
	if f.IsEmpty() {
		return 0
	}
	total := 0
	for i, u := range f.Roots {
		total += f.size(u, f.Tree.Roots[i])
	}
	return total
}

func (f *FRep) size(u *Union, n *ftree.Node) int {
	vis := 0
	for _, a := range n.Attrs {
		if !f.Tree.Hidden.Has(a) {
			vis++
		}
	}
	total := len(u.Entries) * vis
	for _, e := range u.Entries {
		for j, c := range e.Children {
			total += f.size(c, n.Children[j])
		}
	}
	return total
}

// Count returns the number of tuples in the represented relation. Counts
// use big-ish arithmetic via float64 guard: for the paper's workloads tuple
// counts fit int64; Count saturates at math.MaxInt64 on overflow.
func (f *FRep) Count() int64 {
	if f.IsEmpty() {
		return 0
	}
	total := int64(1)
	for i, u := range f.Roots {
		total = satMul(total, countUnion(u, f.Tree.Roots[i]))
	}
	return total
}

const maxInt64 = int64(^uint64(0) >> 1)

// SatMul multiplies saturating at math.MaxInt64 — exported so the public
// layer's size accounting clips the same way the representation measures do.
func SatMul(a, b int64) int64 { return satMul(a, b) }

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > maxInt64/b {
		return maxInt64
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	if a > maxInt64-b {
		return maxInt64
	}
	return a + b
}

// countUnion counts the tuples represented by one union (also the
// count-only fast path of the aggregation evaluator).
func countUnion(u *Union, n *ftree.Node) int64 {
	var total int64
	for _, e := range u.Entries {
		prod := int64(1)
		for j, c := range e.Children {
			prod = satMul(prod, countUnion(c, n.Children[j]))
		}
		total = satAdd(total, prod)
	}
	return total
}

// Schema returns the visible attributes of the representation in canonical
// enumeration order: depth-first over the f-tree, attributes within a node
// in sorted order, roots left to right.
func (f *FRep) Schema() relation.Schema { return treeSchema(f.Tree) }

// treeSchema is the canonical enumeration order shared by the pointer and
// encoded forms.
func treeSchema(t *ftree.T) relation.Schema {
	var out relation.Schema
	var walk func(n *ftree.Node)
	walk = func(n *ftree.Node) {
		for _, a := range n.Attrs {
			if !t.Hidden.Has(a) {
				out = append(out, a)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return out
}

// Enumerate calls yield for each tuple of the represented relation, in
// lexicographic order of Schema(). Enumeration stops early if yield returns
// false. The buffer passed to yield is reused; clone it to retain.
func (f *FRep) Enumerate(yield func(relation.Tuple) bool) {
	if f.IsEmpty() {
		return
	}
	schema := f.Schema()
	buf := make(relation.Tuple, len(schema))
	pos := map[relation.Attribute]int{}
	for i, a := range schema {
		pos[a] = i
	}
	stopped := false
	// rec enumerates the product of unions us (for nodes ns) starting at
	// index i, then calls done.
	var rec func(us []*Union, ns []*ftree.Node, i int, done func())
	rec = func(us []*Union, ns []*ftree.Node, i int, done func()) {
		if stopped {
			return
		}
		if i == len(us) {
			done()
			return
		}
		n := ns[i]
		for _, e := range us[i].Entries {
			for _, a := range n.Attrs {
				if p, ok := pos[a]; ok {
					buf[p] = e.Val
				}
			}
			rec(e.Children, n.Children, 0, func() {
				rec(us, ns, i+1, done)
			})
			if stopped {
				return
			}
		}
	}
	rec(f.Roots, f.Tree.Roots, 0, func() {
		if !yield(buf) {
			stopped = true
		}
	})
}

// Relation materialises the represented relation.
func (f *FRep) Relation(name string) *relation.Relation {
	out := relation.New(name, f.Schema())
	f.Enumerate(func(t relation.Tuple) bool {
		out.AppendTuple(t.Clone())
		return true
	})
	return out
}

// Validate checks the structural invariants: union shapes parallel the
// f-tree, values strictly increase, and non-root unions are non-empty.
func (f *FRep) Validate() error {
	if len(f.Roots) != len(f.Tree.Roots) {
		return fmt.Errorf("frep: %d root unions for %d tree roots", len(f.Roots), len(f.Tree.Roots))
	}
	if f.Empty {
		return nil
	}
	for i, u := range f.Roots {
		if err := f.validate(u, f.Tree.Roots[i], true); err != nil {
			return err
		}
	}
	return nil
}

func (f *FRep) validate(u *Union, n *ftree.Node, root bool) error {
	if !root && len(u.Entries) == 0 {
		return fmt.Errorf("frep: empty non-root union at node %v", n.Attrs)
	}
	var prev relation.Value
	for i, e := range u.Entries {
		if i > 0 && e.Val <= prev {
			return fmt.Errorf("frep: order violation at node %v: %d after %d", n.Attrs, e.Val, prev)
		}
		prev = e.Val
		if len(e.Children) != len(n.Children) {
			return fmt.Errorf("frep: entry at node %v has %d children, tree has %d",
				n.Attrs, len(e.Children), len(n.Children))
		}
		for j, c := range e.Children {
			if err := f.validate(c, n.Children[j], false); err != nil {
				return err
			}
		}
	}
	return nil
}

// Equal reports whether two representations have identical structure over
// trees with equal canonical forms. (Structural equality; for semantic
// equality of differently-factorised data compare Relation() outputs.)
func (f *FRep) Equal(o *FRep) bool {
	if f.Tree.Canonical() != o.Tree.Canonical() {
		return false
	}
	if f.IsEmpty() || o.IsEmpty() {
		return f.IsEmpty() == o.IsEmpty()
	}
	if len(f.Roots) != len(o.Roots) {
		return false
	}
	for i := range f.Roots {
		if !f.Roots[i].equal(o.Roots[i]) {
			return false
		}
	}
	return true
}

func (u *Union) equal(o *Union) bool {
	if len(u.Entries) != len(o.Entries) {
		return false
	}
	for i := range u.Entries {
		a, b := &u.Entries[i], &o.Entries[i]
		if a.Val != b.Val || len(a.Children) != len(b.Children) {
			return false
		}
		for j := range a.Children {
			if !a.Children[j].equal(b.Children[j]) {
				return false
			}
		}
	}
	return true
}

// String renders the representation in the paper's notation, e.g.
// ⟨item:2⟩×(⟨oid:1⟩∪⟨oid:3⟩). Values print numerically; use StringDict for
// dictionary-decoded output.
func (f *FRep) String() string { return f.render(nil) }

// StringDict renders with values decoded through d.
func (f *FRep) StringDict(d *relation.Dict) string { return f.render(d) }

func (f *FRep) render(d *relation.Dict) string {
	if f.IsEmpty() {
		return "∅"
	}
	var parts []string
	for i, u := range f.Roots {
		parts = append(parts, f.renderUnion(u, f.Tree.Roots[i], d))
	}
	if len(parts) == 0 {
		return "⟨⟩"
	}
	return strings.Join(parts, " × ")
}

func (f *FRep) renderUnion(u *Union, n *ftree.Node, d *relation.Dict) string {
	terms := make([]string, 0, len(u.Entries))
	for _, e := range u.Entries {
		var b strings.Builder
		for i, a := range n.Attrs {
			if i > 0 {
				b.WriteString("×")
			}
			val := fmt.Sprintf("%d", int64(e.Val))
			if d != nil {
				val = d.Decode(e.Val)
			}
			fmt.Fprintf(&b, "⟨%s:%s⟩", a, val)
		}
		for j, c := range e.Children {
			b.WriteString("×")
			b.WriteString(f.renderUnion(c, n.Children[j], d))
		}
		terms = append(terms, b.String())
	}
	s := strings.Join(terms, " ∪ ")
	if len(u.Entries) > 1 {
		return "(" + s + ")"
	}
	return s
}

// FromRelation builds the unique f-representation of rel over t
// (Definition 2). The relation's schema must include every attribute of t;
// attributes of the same class must agree on every tuple. If rel does not
// factorise over t (the conditional-independence structure of t does not
// hold in the data, cf. Example 3), an error is returned.
func FromRelation(t *ftree.T, rel *relation.Relation) (*FRep, error) {
	for a := range t.Attrs() {
		if !rel.Schema.Contains(a) {
			return nil, fmt.Errorf("frep: tree attribute %q not in relation schema", a)
		}
	}
	r := rel.Clone()
	r.Dedup()
	fr := &FRep{Tree: t}
	if r.Cardinality() == 0 {
		fr.Empty = true
		for range t.Roots {
			fr.Roots = append(fr.Roots, &Union{})
		}
		return fr, nil
	}
	for _, root := range t.Roots {
		u, err := buildUnion(root, projectOnto(r, root))
		if err != nil {
			return nil, err
		}
		fr.Roots = append(fr.Roots, u)
	}
	// The grouping above always produces a representation of a superset of
	// rel (the product closure); it is exact iff the tuple counts agree.
	if fr.Count() != int64(r.Cardinality()) {
		return nil, fmt.Errorf("frep: relation does not factorise over the given f-tree (represented %d tuples, relation has %d)",
			fr.Count(), r.Cardinality())
	}
	return fr, nil
}

// projectOnto projects rel onto the attributes of the subtree rooted at n.
func projectOnto(rel *relation.Relation, n *ftree.Node) *relation.Relation {
	attrs := relation.AttrSet{}
	collectAttrs(n, attrs)
	var sub []relation.Attribute
	for _, a := range rel.Schema {
		if attrs.Has(a) {
			sub = append(sub, a)
		}
	}
	return rel.Project(sub)
}

func collectAttrs(n *ftree.Node, dst relation.AttrSet) {
	for _, a := range n.Attrs {
		dst.Add(a)
	}
	for _, c := range n.Children {
		collectAttrs(c, dst)
	}
}

func buildUnion(n *ftree.Node, rel *relation.Relation) (*Union, error) {
	col := rel.Schema.Index(n.Attrs[0])
	// All class attributes must agree.
	cols := make([]int, len(n.Attrs))
	for i, a := range n.Attrs {
		cols[i] = rel.Schema.Index(a)
	}
	for _, t := range rel.Tuples {
		for _, c := range cols[1:] {
			if t[c] != t[cols[0]] {
				return nil, fmt.Errorf("frep: class %v has unequal values in tuple %v", n.Attrs, t)
			}
		}
	}
	order := []relation.Attribute{n.Attrs[0]}
	rel.SortBy(order)
	u := &Union{}
	for lo := 0; lo < len(rel.Tuples); {
		hi := lo
		v := rel.Tuples[lo][col]
		for hi < len(rel.Tuples) && rel.Tuples[hi][col] == v {
			hi++
		}
		group := &relation.Relation{Name: rel.Name, Schema: rel.Schema, Tuples: rel.Tuples[lo:hi]}
		e := Entry{Val: v}
		for _, c := range n.Children {
			cu, err := buildUnion(c, projectOnto(group, c))
			if err != nil {
				return nil, err
			}
			e.Children = append(e.Children, cu)
		}
		u.Entries = append(u.Entries, e)
		lo = hi
	}
	sort.Slice(u.Entries, func(i, j int) bool { return u.Entries[i].Val < u.Entries[j].Val })
	return u, nil
}
