package frep

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// setOpRel builds a random relation over schema with values in [0, dom).
func setOpRel(rng *rand.Rand, schema relation.Schema, n, dom int) *relation.Relation {
	r := relation.New("R", schema)
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, len(schema))
		for j := range t {
			t[j] = relation.Value(rng.Intn(dom))
		}
		r.AppendTuple(t)
	}
	r.Dedup()
	return r
}

// setOpEncOf factorises rel over a random path tree drawn from rng.
func setOpEncOf(t *testing.T, rng *rand.Rand, rel *relation.Relation) *Enc {
	t.Helper()
	attrs := append([]relation.Attribute(nil), rel.Schema...)
	rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	tr := randomPathTree(attrs, rng, []relation.AttrSet{relation.NewAttrSet(rel.Schema...)})
	fr, err := FromRelation(tr, rel)
	if err != nil {
		t.Fatal(err)
	}
	return fr.Encode()
}

// refRows computes the flat reference of op over two set relations, as rows
// in the given attribute order, sorted.
func refRows(op setOp, a, b *relation.Relation, order relation.Schema) []relation.Tuple {
	key := func(t relation.Tuple) string {
		out := make([]byte, 0, 16)
		for _, v := range t {
			out = append(out, byte(v), ',')
		}
		return string(out)
	}
	pa, pb := a.Project(order), b.Project(order)
	inB := map[string]bool{}
	for _, t := range pb.Tuples {
		inB[key(t)] = true
	}
	var rows []relation.Tuple
	switch op {
	case opUnion:
		seen := map[string]bool{}
		for _, t := range append(append([]relation.Tuple{}, pa.Tuples...), pb.Tuples...) {
			if k := key(t); !seen[k] {
				seen[k] = true
				rows = append(rows, t)
			}
		}
	case opUnionAll:
		rows = append(append(rows, pa.Tuples...), pb.Tuples...)
	case opExcept:
		for _, t := range pa.Tuples {
			if !inB[key(t)] {
				rows = append(rows, t)
			}
		}
	case opIntersect:
		for _, t := range pa.Tuples {
			if inB[key(t)] {
				rows = append(rows, t)
			}
		}
	}
	cmp := TupleCompare(order, nil, nil)
	sort.SliceStable(rows, func(i, j int) bool { return cmp(rows[i], rows[j]) < 0 })
	return rows
}

// gotRows enumerates a set-operation result into the given attribute order,
// sorted.
func gotRows(e *Enc, order relation.Schema) []relation.Tuple {
	rows := rowsOf(e, order)
	cmp := TupleCompare(order, nil, nil)
	sort.SliceStable(rows, func(i, j int) bool { return cmp(rows[i], rows[j]) < 0 })
	return rows
}

// The core differential property: every operation over randomly factorised
// operands (same schema, independently shuffled trees — hitting the direct,
// reindex and rebuild alignment tiers) matches the flat reference.
func TestSetOpsMatchFlatReference(t *testing.T) {
	schema := relation.Schema{"A", "B", "C"}
	ops := []setOp{opUnion, opUnionAll, opExcept, opIntersect}
	apply := map[setOp]func(a, b *Enc) (*Enc, error){
		opUnion:     UnionEnc,
		opUnionAll:  UnionAllEnc,
		opExcept:    ExceptEnc,
		opIntersect: IntersectEnc,
	}
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		ra := setOpRel(rng, schema, rng.Intn(20), 3)
		rb := setOpRel(rng, schema, rng.Intn(20), 3)
		ea := setOpEncOf(t, rng, ra)
		eb := setOpEncOf(t, rng, rb)
		for _, op := range ops {
			out, err := apply[op](ea, eb)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, op, err)
			}
			want := refRows(op, ra, rb, schema)
			got := gotRows(out, schema)
			if !tuplesEqual(got, want) {
				t.Fatalf("seed %d %s: got %v want %v", seed, op, got, want)
			}
			if int64(len(refRows(op, ra, rb, schema))) != out.Count() {
				t.Fatalf("seed %d %s: Count %d, reference %d", seed, op, out.Count(), len(want))
			}
			if op != opUnionAll {
				if err := out.Validate(); err != nil {
					t.Fatalf("seed %d %s: result does not validate: %v", seed, op, err)
				}
			} else if dd := DedupEnc(out); dd.Validate() != nil {
				t.Fatalf("seed %d union all: dedup does not validate: %v", seed, dd.Validate())
			}
		}
	}
}

// branchingPair builds two operands over the same branching tree (root A
// with children B and C) from per-value B- and C-fragments.
func branchingPair(t *testing.T, a *relation.Relation, b *relation.Relation) (*Enc, *Enc) {
	t.Helper()
	tree := func() *ftree.T {
		return ftree.New(
			[]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B"), ftree.NewNode("C"))},
			[]relation.AttrSet{relation.NewAttrSet("A", "B"), relation.NewAttrSet("A", "C")},
		)
	}
	fa, err := FromRelation(tree(), a)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := FromRelation(tree(), b)
	if err != nil {
		t.Fatal(err)
	}
	return fa.Encode(), fb.Encode()
}

// joinRel materialises the A-join of B- and C-fragments: for every a, the
// product of bs[a] and cs[a] — relations that factorise over the branching
// tree by construction.
func joinRel(bs, cs map[relation.Value][]relation.Value) *relation.Relation {
	r := relation.New("R", relation.Schema{"A", "B", "C"})
	for a, bvals := range bs {
		for _, b := range bvals {
			for _, c := range cs[a] {
				r.Append(a, b, c)
			}
		}
	}
	r.Sort()
	return r
}

// On a branching tree, a union whose collided entries differ in only one
// child merges structurally; differing in both children aborts to the
// rebuild. Both paths must produce the reference result.
func TestSetOpsBranchingDecomposability(t *testing.T) {
	// One differing child: same C fragments, different B fragments.
	ra := joinRel(map[relation.Value][]relation.Value{1: {1, 2}}, map[relation.Value][]relation.Value{1: {5, 6}})
	rb := joinRel(map[relation.Value][]relation.Value{1: {2, 3}}, map[relation.Value][]relation.Value{1: {5, 6}})
	ea, eb := branchingPair(t, ra, rb)
	if _, err := setOpStructural(opUnion, DedupEnc(ea), DedupEnc(eb)); err != nil {
		t.Fatalf("one differing child should merge structurally: %v", err)
	}
	// Two differing children must abort the structural walk...
	rc := joinRel(map[relation.Value][]relation.Value{1: {2, 3}}, map[relation.Value][]relation.Value{1: {6, 7}})
	ec, _ := branchingPair(t, rc, rc)
	if _, err := setOpStructural(opUnion, DedupEnc(ea), DedupEnc(ec)); !errors.Is(err, errNonDecomposable) {
		t.Fatalf("two differing children: want errNonDecomposable, got %v", err)
	}
	// ...while the public operator falls back to the rebuild and stays right.
	for _, tc := range []struct {
		op    setOp
		apply func(a, b *Enc) (*Enc, error)
		other *relation.Relation
		enc   *Enc
	}{
		{opUnion, UnionEnc, rb, eb},
		{opUnion, UnionEnc, rc, ec},
		{opExcept, ExceptEnc, rb, eb},
		{opExcept, ExceptEnc, rc, ec},
		{opIntersect, IntersectEnc, rc, ec},
		{opUnionAll, UnionAllEnc, rc, ec},
	} {
		out, err := tc.apply(ea, tc.enc)
		if err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		schema := relation.Schema{"A", "B", "C"}
		if got, want := gotRows(out, schema), refRows(tc.op, ra, tc.other, schema); !tuplesEqual(got, want) {
			t.Fatalf("%s: got %v want %v", tc.op, got, want)
		}
	}
}

// Forest operands (multi-root products) follow the same decomposition rules
// as child products.
func TestSetOpsForest(t *testing.T) {
	build := func(seedA, seedB int64) (*Enc, *relation.Relation) {
		rngA := rand.New(rand.NewSource(seedA))
		relAB := setOpRel(rngA, relation.Schema{"A", "B"}, 1+rngA.Intn(6), 3)
		rngB := rand.New(rand.NewSource(seedB))
		relDE := setOpRel(rngB, relation.Schema{"D", "E"}, 1+rngB.Intn(6), 3)
		ta := randomPathTree([]relation.Attribute{"A", "B"}, rngA, []relation.AttrSet{relation.NewAttrSet("A", "B")})
		tb := randomPathTree([]relation.Attribute{"D", "E"}, rngB, []relation.AttrSet{relation.NewAttrSet("D", "E")})
		fa, err := FromRelation(ta, relAB)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := FromRelation(tb, relDE)
		if err != nil {
			t.Fatal(err)
		}
		ea, eb := fa.Encode(), fb.Encode()
		prod := &ftree.T{
			Roots:  append(append([]*ftree.Node{}, ea.Tree.Roots...), eb.Tree.Roots...),
			Rels:   append(append([]relation.AttrSet{}, ea.Tree.Rels...), eb.Tree.Rels...),
			Deps:   append(append([]relation.AttrSet{}, ea.Tree.Deps...), eb.Tree.Deps...),
			Hidden: relation.AttrSet{},
			Consts: relation.AttrSet{},
		}
		return ConcatEnc(prod, ea, eb), relAB.Product(relDE)
	}
	for seed := int64(1); seed < 40; seed++ {
		// Sharing seedB makes the second root's fragment identical — the
		// all-but-one-root case; fully distinct seeds force the rebuild.
		for _, pair := range [][2]int64{{seed, seed + 1000}, {seed, seed + 2000}} {
			ea, ra := build(pair[0], 7777)
			eb, rb := build(pair[1], 7777)
			ec, rc := build(pair[0], pair[1])
			order := relation.Schema{"A", "B", "D", "E"}
			for _, tc := range []struct {
				op    setOp
				apply func(a, b *Enc) (*Enc, error)
			}{
				{opUnion, UnionEnc}, {opUnionAll, UnionAllEnc}, {opExcept, ExceptEnc}, {opIntersect, IntersectEnc},
			} {
				out, err := tc.apply(ea, eb)
				if err != nil {
					t.Fatalf("seed %d %s aligned-forest: %v", seed, tc.op, err)
				}
				if got, want := gotRows(out, order), refRows(tc.op, ra, rb, order); !tuplesEqual(got, want) {
					t.Fatalf("seed %d %s aligned-forest: got %v want %v", seed, tc.op, got, want)
				}
				out, err = tc.apply(ea, ec)
				if err != nil {
					t.Fatalf("seed %d %s mixed-forest: %v", seed, tc.op, err)
				}
				if got, want := gotRows(out, order), refRows(tc.op, ra, rc, order); !tuplesEqual(got, want) {
					t.Fatalf("seed %d %s mixed-forest: got %v want %v", seed, tc.op, got, want)
				}
			}
		}
	}
}

// Edge cases: schema mismatch is a loud error; empty operands short-circuit
// with the right identities; union all of an operand with itself doubles
// Count and dedups back to the operand.
func TestSetOpsEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ra := setOpRel(rng, relation.Schema{"A", "B", "C"}, 8, 3)
	ea := setOpEncOf(t, rng, ra)
	rd := setOpRel(rng, relation.Schema{"A", "B", "D"}, 8, 3)
	ed := setOpEncOf(t, rng, rd)
	if _, err := UnionEnc(ea, ed); err == nil {
		t.Fatal("schema mismatch: want error")
	}
	empty := NewEmptyEnc(ea.Tree.Clone())
	for _, tc := range []struct {
		name string
		out  func() (*Enc, error)
		want int64
	}{
		{"A∪∅", func() (*Enc, error) { return UnionEnc(ea, empty) }, ea.Count()},
		{"∅∪A", func() (*Enc, error) { return UnionEnc(empty, ea) }, ea.Count()},
		{"A−∅", func() (*Enc, error) { return ExceptEnc(ea, empty) }, ea.Count()},
		{"∅−A", func() (*Enc, error) { return ExceptEnc(empty, ea) }, 0},
		{"A∩∅", func() (*Enc, error) { return IntersectEnc(ea, empty) }, 0},
		{"A⊎∅", func() (*Enc, error) { return UnionAllEnc(ea, empty) }, ea.Count()},
	} {
		out, err := tc.out()
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if out.Count() != tc.want {
			t.Fatalf("%s: Count %d, want %d", tc.name, out.Count(), tc.want)
		}
	}
	all, err := UnionAllEnc(ea, ea)
	if err != nil {
		t.Fatal(err)
	}
	if all.Count() != 2*ea.Count() {
		t.Fatalf("A⊎A: Count %d, want %d", all.Count(), 2*ea.Count())
	}
	if !all.HasDupEntries() {
		t.Fatal("A⊎A should carry duplicate entries")
	}
	dd := DedupEnc(all)
	if dd.Count() != ea.Count() {
		t.Fatalf("dedup(A⊎A): Count %d, want %d", dd.Count(), ea.Count())
	}
	sect, err := IntersectEnc(ea, ea)
	if err != nil {
		t.Fatal(err)
	}
	if sect.Count() != ea.Count() {
		t.Fatalf("A∩A: Count %d, want %d", sect.Count(), ea.Count())
	}
	diff, err := ExceptEnc(ea, ea)
	if err != nil {
		t.Fatal(err)
	}
	if !diff.IsEmpty() {
		t.Fatal("A−A should be empty")
	}
}
