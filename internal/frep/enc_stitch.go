// Stitching of per-morsel encoded builds into one representation — the
// reassembly half of the parallel build. A morsel build covers a contiguous
// value range of one root's union; because the arena layout keeps every
// subtree fragment contiguous (child union k ⇔ parent entry k), the columns
// of consecutive morsels concatenate into valid columns by bulk copy, with
// only the union offsets rebased by the entry counts of preceding morsels.
package frep

import (
	"repro/internal/ftree"
	"repro/internal/relation"
)

// Entries returns the number of entry values appended so far at node ni —
// used by the parallel build driver to size and validate morsel outputs
// without finishing the builder.
func (b *EncBuilder) Entries(ni int) int { return len(b.vals[ni]) }

// StitchEnc assembles one encoded representation over t from per-morsel
// builders. Each part must have been built with NewEncBuilder(t) and hold
// exactly one closed union at the pivot root, covering a value range
// strictly below the ranges of all later parts; columns outside the pivot
// root's subtree are taken from rest (one builder covering the remaining
// roots; nil when pivot is the only root). The parts' columns are
// concatenated directly into a single fresh arena — per node one bulk copy
// per part — and the union offsets of descendant nodes are rebased by the
// cumulative entry counts of the preceding parts. At the pivot root itself
// the parts' single unions fuse into one union spanning all entries.
//
// Emptiness follows the same convention as BuildEnc: if any root union ends
// up without entries the canonical empty representation is returned.
func StitchEnc(t *ftree.T, pivot *ftree.Node, parts []*EncBuilder, rest *EncBuilder) *Enc {
	ti := parts[0].ti
	pi := ti.idx[pivot]
	plo, phi := pi, ti.sub[pi]

	// Pre-size the arena: one pass over the column lengths.
	totalV, totalO := 0, 0
	for ni := range ti.nodes {
		if ni >= plo && ni < phi {
			totalO++ // shared leading 0
			for _, p := range parts {
				totalV += len(p.vals[ni])
				totalO += len(p.offs[ni]) - 1
			}
			if ni == pi {
				totalO = totalO - len(parts) + 1 // unions fuse into one
			}
		} else {
			totalV += len(rest.vals[ni])
			totalO += len(rest.offs[ni])
		}
	}

	e := &Enc{Tree: t, ti: ti,
		A:    Arena{Vals: make([]relation.Value, 0, totalV), Offs: make([]int32, 0, totalO)},
		cols: make([]nodeCol, len(ti.nodes))}
	for ni := range ti.nodes {
		vlo, olo := i32(len(e.A.Vals)), i32(len(e.A.Offs))
		switch {
		case ni == pi:
			// The parts' root unions fuse into the single union of the root.
			e.A.Offs = append(e.A.Offs, 0)
			for _, p := range parts {
				e.A.Vals = append(e.A.Vals, p.vals[ni]...)
			}
			e.A.Offs = append(e.A.Offs, i32(len(e.A.Vals))-vlo)
		case ni > plo && ni < phi:
			// Descendant of the pivot: concatenate unions, rebasing offsets
			// by the entries contributed by earlier parts.
			e.A.Offs = append(e.A.Offs, 0)
			base := int32(0)
			for _, p := range parts {
				e.A.Vals = append(e.A.Vals, p.vals[ni]...)
				for _, o := range p.offs[ni][1:] {
					e.A.Offs = append(e.A.Offs, base+o)
				}
				base += i32(len(p.vals[ni]))
			}
		default:
			e.A.Vals = append(e.A.Vals, rest.vals[ni]...)
			e.A.Offs = append(e.A.Offs, rest.offs[ni]...)
		}
		e.cols[ni] = nodeCol{valLo: vlo, valHi: i32(len(e.A.Vals)), offLo: olo, offHi: i32(len(e.A.Offs))}
	}
	for _, ri := range ti.roots {
		if e.NumEntries(ri) == 0 {
			return NewEmptyEnc(t)
		}
	}
	return e
}
