package frep

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// grocery builds the database of the paper's Figure 1 with a dictionary.
type grocery struct {
	dict                                *relation.Dict
	orders, store, disp, produce, serve *relation.Relation
}

func newGrocery() *grocery {
	g := &grocery{dict: relation.NewDict()}
	e := g.dict.Encode
	g.orders = relation.New("Orders", relation.Schema{"oid", "item"})
	for _, r := range [][2]string{{"01", "Milk"}, {"01", "Cheese"}, {"02", "Melon"}, {"03", "Cheese"}, {"03", "Melon"}} {
		g.orders.Append(e(r[0]), e(r[1]))
	}
	g.store = relation.New("Store", relation.Schema{"location", "item"})
	for _, r := range [][2]string{{"Istanbul", "Milk"}, {"Istanbul", "Cheese"}, {"Istanbul", "Melon"},
		{"Izmir", "Milk"}, {"Antalya", "Milk"}, {"Antalya", "Cheese"}} {
		g.store.Append(e(r[0]), e(r[1]))
	}
	g.disp = relation.New("Disp", relation.Schema{"dispatcher", "location"})
	for _, r := range [][2]string{{"Adnan", "Istanbul"}, {"Adnan", "Izmir"}, {"Yasemin", "Istanbul"}, {"Volkan", "Antalya"}} {
		g.disp.Append(e(r[0]), e(r[1]))
	}
	g.produce = relation.New("Produce", relation.Schema{"supplier", "item"})
	for _, r := range [][2]string{{"Guney", "Milk"}, {"Guney", "Cheese"}, {"Dikici", "Milk"}, {"Byzantium", "Melon"}} {
		g.produce.Append(e(r[0]), e(r[1]))
	}
	g.serve = relation.New("Serve", relation.Schema{"supplier", "location"})
	for _, r := range [][2]string{{"Guney", "Antalya"}, {"Dikici", "Istanbul"}, {"Dikici", "Izmir"},
		{"Dikici", "Antalya"}, {"Byzantium", "Istanbul"}} {
		g.serve.Append(e(r[0]), e(r[1]))
	}
	return g
}

// q1 computes Q1 = Orders ⋈item Store ⋈location Disp as a flat relation
// with schema (item, oid, location, dispatcher).
func (g *grocery) q1() *relation.Relation {
	out := relation.New("Q1", relation.Schema{"item", "oid", "location", "dispatcher"})
	for _, o := range g.orders.Tuples {
		for _, s := range g.store.Tuples {
			if o[1] != s[1] {
				continue
			}
			for _, d := range g.disp.Tuples {
				if d[1] != s[0] {
					continue
				}
				out.Append(o[1], o[0], s[0], d[0])
			}
		}
	}
	out.Dedup()
	return out
}

// q2 computes Q2 = Produce ⋈supplier Serve with schema
// (supplier, item, location).
func (g *grocery) q2() *relation.Relation {
	out := relation.New("Q2", relation.Schema{"supplier", "item", "location"})
	for _, p := range g.produce.Tuples {
		for _, s := range g.serve.Tuples {
			if p[0] == s[0] {
				out.Append(p[0], p[1], s[1])
			}
		}
	}
	out.Dedup()
	return out
}

func q1Rels() []relation.AttrSet {
	return []relation.AttrSet{
		relation.NewAttrSet("oid", "item"),
		relation.NewAttrSet("location", "item"),
		relation.NewAttrSet("dispatcher", "location"),
	}
}

func t1() *ftree.T {
	item := ftree.NewNode("item")
	item.Add(ftree.NewNode("oid"), ftree.NewNode("location").Add(ftree.NewNode("dispatcher")))
	return ftree.New([]*ftree.Node{item}, q1Rels())
}

func t2() *ftree.T {
	loc := ftree.NewNode("location")
	loc.Add(ftree.NewNode("item").Add(ftree.NewNode("oid")), ftree.NewNode("dispatcher"))
	return ftree.New([]*ftree.Node{loc}, q1Rels())
}

func t3() *ftree.T {
	sup := ftree.NewNode("supplier")
	sup.Add(ftree.NewNode("item"), ftree.NewNode("location"))
	return ftree.New([]*ftree.Node{sup}, []relation.AttrSet{
		relation.NewAttrSet("supplier", "item"),
		relation.NewAttrSet("supplier", "location"),
	})
}

// TestExample1SizesT1 reproduces the factorisation sizes of Example 1: the
// Q1 result has 14 tuples (56 data elements flat); its f-representation
// over T1 has 23 singletons and over T2 has 22 singletons.
func TestExample1Sizes(t *testing.T) {
	g := newGrocery()
	q1 := g.q1()
	if q1.Cardinality() != 14 {
		t.Fatalf("Q1 cardinality = %d, want 14", q1.Cardinality())
	}
	f1, err := FromRelation(t1(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f1.Validate(); err != nil {
		t.Fatal(err)
	}
	if f1.Size() != 23 {
		t.Fatalf("size over T1 = %d, want 23\n%s", f1.Size(), f1.StringDict(g.dict))
	}
	if f1.Count() != 14 {
		t.Fatalf("count over T1 = %d, want 14", f1.Count())
	}
	f2, err := FromRelation(t2(), q1)
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 22 {
		t.Fatalf("size over T2 = %d, want 22\n%s", f2.Size(), f2.StringDict(g.dict))
	}
	// Both factorisations represent the same relation (align schemas, since
	// enumeration order follows each tree's own attribute order).
	if !f1.Relation("r").Project(q1.Schema).Equal(q1) ||
		!f2.Relation("r").Project(q1.Schema).Equal(q1) {
		t.Fatal("factorisations do not round-trip to Q1")
	}
}

func TestExample1Q2OverT3(t *testing.T) {
	g := newGrocery()
	q2 := g.q2()
	f3, err := FromRelation(t3(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if f3.Size() != 12 {
		t.Fatalf("size over T3 = %d, want 12\n%s", f3.Size(), f3.StringDict(g.dict))
	}
	if !f3.Relation("r").Equal(q2) {
		t.Fatal("T3 factorisation does not round-trip to Q2")
	}
}

// TestExample3NonFactorisable: R = {(1,1),(1,2),(2,2)} over {A},{B} as
// independent roots does not factorise; over A->B it does.
func TestExample3NonFactorisable(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B"})
	r.Append(1, 1)
	r.Append(1, 2)
	r.Append(2, 2)

	forest := ftree.New(
		[]*ftree.Node{ftree.NewNode("A"), ftree.NewNode("B")},
		[]relation.AttrSet{relation.NewAttrSet("A"), relation.NewAttrSet("B")})
	if _, err := FromRelation(forest, r); err == nil {
		t.Fatal("non-factorisable relation accepted over independent roots")
	}

	chain := ftree.New(
		[]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B"))},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")})
	f, err := FromRelation(chain, r)
	if err != nil {
		t.Fatal(err)
	}
	// ⟨A:1⟩×(⟨B:1⟩∪⟨B:2⟩) ∪ ⟨A:2⟩×⟨B:2⟩ has 5 singletons.
	if f.Size() != 5 {
		t.Fatalf("size = %d, want 5\n%s", f.Size(), f)
	}
	if !f.Relation("r").Equal(r) {
		t.Fatal("round-trip failed")
	}
}

func TestEmptyRelation(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B"})
	chain := ftree.New(
		[]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B"))},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")})
	f, err := FromRelation(chain, r)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsEmpty() || f.Size() != 0 || f.Count() != 0 {
		t.Fatal("empty relation not represented as empty")
	}
	if f.Relation("r").Cardinality() != 0 {
		t.Fatal("empty frep enumerates tuples")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestEnumerationOrderAndCount(t *testing.T) {
	g := newGrocery()
	f, err := FromRelation(t1(), g.q1())
	if err != nil {
		t.Fatal(err)
	}
	var tuples []relation.Tuple
	f.Enumerate(func(tp relation.Tuple) bool {
		tuples = append(tuples, tp.Clone())
		return true
	})
	if int64(len(tuples)) != f.Count() {
		t.Fatalf("enumerated %d tuples, Count() = %d", len(tuples), f.Count())
	}
	if !sort.SliceIsSorted(tuples, func(i, j int) bool {
		return tuples[i].Compare(tuples[j]) < 0
	}) {
		t.Fatal("enumeration not in lexicographic order")
	}
	for i := 1; i < len(tuples); i++ {
		if tuples[i].Compare(tuples[i-1]) == 0 {
			t.Fatal("duplicate tuple enumerated")
		}
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	g := newGrocery()
	f, err := FromRelation(t1(), g.q1())
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	f.Enumerate(func(relation.Tuple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop enumerated %d tuples, want 3", n)
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := newGrocery()
	f, err := FromRelation(t1(), g.q1())
	if err != nil {
		t.Fatal(err)
	}
	c := f.Clone()
	if !f.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Roots[0].Entries[0].Val++
	if f.Equal(c) {
		t.Fatal("mutated clone still equal (shallow copy?)")
	}
}

func TestValidateCatchesOrderViolation(t *testing.T) {
	g := newGrocery()
	f, err := FromRelation(t1(), g.q1())
	if err != nil {
		t.Fatal(err)
	}
	// Swap two root entries to break ordering.
	f.Roots[0].Entries[0], f.Roots[0].Entries[1] = f.Roots[0].Entries[1], f.Roots[0].Entries[0]
	if err := f.Validate(); err == nil {
		t.Fatal("order violation not detected")
	}
}

func TestSchemaDFSOrder(t *testing.T) {
	f := New(t1())
	want := relation.Schema{"item", "oid", "location", "dispatcher"}
	if !f.Schema().Equal(want) {
		t.Fatalf("Schema() = %v, want %v", f.Schema(), want)
	}
}

// randomPathTree returns a chain f-tree over the given attributes (a chain
// satisfies the path constraint for any dependency structure).
func randomPathTree(attrs []relation.Attribute, rng *rand.Rand, deps []relation.AttrSet) *ftree.T {
	perm := rng.Perm(len(attrs))
	var root, cur *ftree.Node
	for _, i := range perm {
		n := ftree.NewNode(attrs[i])
		if cur == nil {
			root = n
		} else {
			cur.Add(n)
		}
		cur = n
	}
	return ftree.New([]*ftree.Node{root}, deps)
}

// Property: every relation round-trips through a factorisation over any
// chain f-tree (chains always satisfy the path constraint).
func TestRoundTripChainProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	attrs := []relation.Attribute{"A", "B", "C"}
	deps := []relation.AttrSet{relation.NewAttrSet("A", "B", "C")}
	for trial := 0; trial < 50; trial++ {
		r := relation.New("R", relation.Schema(attrs))
		for i := 0; i < rng.Intn(20); i++ {
			r.Append(relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)))
		}
		r.Dedup()
		tr := randomPathTree(attrs, rng, deps)
		f, err := FromRelation(tr, r)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := f.Relation("got")
		// Align schemas before comparing.
		if !got.Project(attrs).Equal(r) {
			t.Fatalf("trial %d: round-trip failed\nin:\n%s\nout:\n%s", trial, r, got)
		}
		if f.Count() != int64(r.Cardinality()) {
			t.Fatalf("trial %d: count %d != cardinality %d", trial, f.Count(), r.Cardinality())
		}
	}
}

// Property: a product of independent relations factorises over the forest
// of its factors, and the factorised size is the sum (not product) of the
// factor sizes — the exponential-gap mechanism of Section 1.
func TestProductFactorisationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		ra := relation.New("RA", relation.Schema{"A"})
		rb := relation.New("RB", relation.Schema{"B"})
		na, nb := 1+rng.Intn(8), 1+rng.Intn(8)
		for i := 0; i < na; i++ {
			ra.Append(relation.Value(i * 2))
		}
		for i := 0; i < nb; i++ {
			rb.Append(relation.Value(i*3 + 1))
		}
		prod := ra.Product(rb)
		forest := ftree.New(
			[]*ftree.Node{ftree.NewNode("A"), ftree.NewNode("B")},
			[]relation.AttrSet{relation.NewAttrSet("A"), relation.NewAttrSet("B")})
		f, err := FromRelation(forest, prod)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if f.Size() != na+nb {
			t.Fatalf("trial %d: factorised size %d, want %d", trial, f.Size(), na+nb)
		}
		if f.Count() != int64(na*nb) {
			t.Fatalf("trial %d: count %d, want %d", trial, f.Count(), na*nb)
		}
	}
}

func TestFromRelationMissingAttr(t *testing.T) {
	r := relation.New("R", relation.Schema{"A"})
	chain := ftree.New(
		[]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B"))},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")})
	if _, err := FromRelation(chain, r); err == nil {
		t.Fatal("missing attribute accepted")
	}
}

func TestClassValueMismatch(t *testing.T) {
	// Node {A,B} requires A=B on every tuple.
	r := relation.New("R", relation.Schema{"A", "B"})
	r.Append(1, 2)
	tr := ftree.New(
		[]*ftree.Node{ftree.NewNode("A", "B")},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")})
	if _, err := FromRelation(tr, r); err == nil {
		t.Fatal("class value mismatch accepted")
	}
}

func TestSizeCountsClassAttrs(t *testing.T) {
	// A merged class {A,B} contributes one singleton per attribute.
	r := relation.New("R", relation.Schema{"A", "B"})
	r.Append(1, 1)
	r.Append(2, 2)
	tr := ftree.New(
		[]*ftree.Node{ftree.NewNode("A", "B")},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")})
	f, err := FromRelation(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 4 {
		t.Fatalf("size = %d, want 4 (2 entries x 2 attrs)", f.Size())
	}
}

func TestStringRendering(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B"})
	r.Append(1, 1)
	r.Append(1, 2)
	chain := ftree.New(
		[]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B"))},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")})
	f, err := FromRelation(chain, r)
	if err != nil {
		t.Fatal(err)
	}
	got := f.String()
	want := "⟨A:1⟩×(⟨B:1⟩ ∪ ⟨B:2⟩)"
	if got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
