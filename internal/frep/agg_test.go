package frep

import (
	"testing"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// pathTree builds the path A1 -> A2 -> ... with a single dependency set
// covering all attributes (one relation).
func pathTree(attrs ...relation.Attribute) *ftree.T {
	var root, cur *ftree.Node
	for _, a := range attrs {
		n := ftree.NewNode(a)
		if root == nil {
			root = n
		} else {
			cur.Add(n)
		}
		cur = n
	}
	return ftree.New([]*ftree.Node{root}, []relation.AttrSet{relation.NewAttrSet(attrs...)})
}

func mustFromRelation(t *testing.T, tr *ftree.T, r *relation.Relation) *FRep {
	t.Helper()
	fr, err := FromRelation(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	return fr
}

func TestAggregateGrouped(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B", "C"})
	r.Append(1, 1, 1)
	r.Append(1, 2, 1)
	r.Append(1, 2, 3)
	r.Append(2, 1, 5)
	fr := mustFromRelation(t, pathTree("A", "B", "C"), r)

	specs := []AggSpec{
		{Fn: AggCount},
		{Fn: AggSum, Attr: "C"},
		{Fn: AggMin, Attr: "C"},
		{Fn: AggMax, Attr: "C"},
		{Fn: AggCountDistinct, Attr: "B"},
	}
	rows, err := fr.Aggregate([]relation.Attribute{"A"}, specs)
	if err != nil {
		t.Fatal(err)
	}
	want := []AggRow{
		{Key: []relation.Value{1}, Vals: []int64{3, 5, 1, 3, 2}},
		{Key: []relation.Value{2}, Vals: []int64{1, 5, 5, 5, 1}},
	}
	checkRows(t, rows, want)
}

func TestAggregateGlobal(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B", "C"})
	r.Append(1, 1, 1)
	r.Append(1, 2, 1)
	r.Append(1, 2, 3)
	r.Append(2, 1, 5)
	fr := mustFromRelation(t, pathTree("A", "B", "C"), r)

	rows, err := fr.Aggregate(nil, []AggSpec{
		{Fn: AggCount},
		{Fn: AggSum, Attr: "C"},
		{Fn: AggMin, Attr: "C"},
		{Fn: AggMax, Attr: "C"},
		{Fn: AggCountDistinct, Attr: "B"},
	})
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, []AggRow{{Key: []relation.Value{}, Vals: []int64{4, 10, 1, 5, 2}}})
}

// TestAggregateProduct exercises the count-weighting recurrence across a
// true product: R = {1,2} × {10,20} factorises over a two-root forest.
func TestAggregateProduct(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B"})
	for _, a := range []int{1, 2} {
		for _, b := range []int{10, 20} {
			r.Append(relation.Value(a), relation.Value(b))
		}
	}
	tr := ftree.New(
		[]*ftree.Node{ftree.NewNode("A"), ftree.NewNode("B")},
		[]relation.AttrSet{relation.NewAttrSet("A"), relation.NewAttrSet("B")})
	fr := mustFromRelation(t, tr, r)

	rows, err := fr.Aggregate(nil, []AggSpec{{Fn: AggCount}, {Fn: AggSum, Attr: "B"}})
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, []AggRow{{Key: []relation.Value{}, Vals: []int64{4, 60}}})

	rows, err = fr.Aggregate([]relation.Attribute{"A"}, []AggSpec{
		{Fn: AggCount}, {Fn: AggSum, Attr: "B"}, {Fn: AggMax, Attr: "B"}})
	if err != nil {
		t.Fatal(err)
	}
	checkRows(t, rows, []AggRow{
		{Key: []relation.Value{1}, Vals: []int64{2, 30, 20}},
		{Key: []relation.Value{2}, Vals: []int64{2, 30, 20}},
	})
}

func TestAggregateEmpty(t *testing.T) {
	fr := New(pathTree("A", "B", "C"))
	rows, err := fr.Aggregate([]relation.Attribute{"A"}, []AggSpec{{Fn: AggCount}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("empty rep: want 0 rows, got %v", rows)
	}
	rows, err = fr.Aggregate(nil, []AggSpec{{Fn: AggCount}, {Fn: AggSum, Attr: "B"}})
	if err != nil || len(rows) != 0 {
		t.Fatalf("empty rep global: want 0 rows, got %v (err %v)", rows, err)
	}
}

func TestAggregateErrors(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B"})
	r.Append(1, 2)
	fr := mustFromRelation(t, pathTree("A", "B"), r)
	if _, err := fr.Aggregate([]relation.Attribute{"Z"}, []AggSpec{{Fn: AggCount}}); err == nil {
		t.Fatal("unknown group attribute: want error")
	}
	if _, err := fr.Aggregate(nil, []AggSpec{{Fn: AggSum, Attr: "Z"}}); err == nil {
		t.Fatal("unknown aggregate attribute: want error")
	}
	if _, err := fr.Aggregate([]relation.Attribute{"A", "A"}, []AggSpec{{Fn: AggCount}}); err == nil {
		t.Fatal("duplicate group attribute: want error")
	}
}

// hugeRep builds a representation of 2^64 tuples — four independent roots
// with 2^16 values each — whose Count saturates at math.MaxInt64.
func hugeRep() *FRep {
	attrs := []relation.Attribute{"A", "B", "C", "D"}
	var roots []*ftree.Node
	var rels []relation.AttrSet
	for _, a := range attrs {
		roots = append(roots, ftree.NewNode(a))
		rels = append(rels, relation.NewAttrSet(a))
	}
	fr := &FRep{Tree: ftree.New(roots, rels)}
	for range attrs {
		u := &Union{Entries: make([]Entry, 1<<16)}
		for i := range u.Entries {
			u.Entries[i] = Entry{Val: relation.Value(i + 1)}
		}
		fr.Roots = append(fr.Roots, u)
	}
	return fr
}

// Regression: FlatSize must saturate like Count, not wrap. Before the fix,
// Count()*len(Schema()) overflowed to a negative number once Count hit
// math.MaxInt64.
func TestFlatSizeSaturates(t *testing.T) {
	fr := hugeRep()
	if got := fr.Count(); got != maxInt64 {
		t.Fatalf("Count: want saturation at %d, got %d", maxInt64, got)
	}
	if got := fr.FlatSize(); got != maxInt64 {
		t.Fatalf("FlatSize: want saturation at %d, got %d", maxInt64, got)
	}
	rows, err := fr.Aggregate(nil, []AggSpec{{Fn: AggCount}, {Fn: AggSum, Attr: "A"}})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Vals[0] != maxInt64 {
		t.Fatalf("Aggregate count: want saturation, got %d", rows[0].Vals[0])
	}
	if rows[0].Vals[1] != maxInt64 {
		t.Fatalf("Aggregate sum: want saturation, got %d", rows[0].Vals[1])
	}
}

func TestSaturatingHelpers(t *testing.T) {
	cases := []struct{ a, b, add, mul int64 }{
		{2, 3, 5, 6},
		{-2, 3, 1, -6},
		{maxInt64, 1, maxInt64, maxInt64},
		{maxInt64, maxInt64, maxInt64, maxInt64},
		{minInt64, -1, minInt64, maxInt64}, // both saturate
		{minInt64, 1, minInt64 + 1, minInt64},
		{minInt64, minInt64, minInt64, maxInt64},
		{maxInt64, minInt64, -1, minInt64},
		{0, minInt64, minInt64, 0},
	}
	for _, c := range cases {
		if got := satAddI(c.a, c.b); got != c.add {
			t.Errorf("satAddI(%d,%d) = %d, want %d", c.a, c.b, got, c.add)
		}
		if got := satMulI(c.a, c.b); got != c.mul {
			t.Errorf("satMulI(%d,%d) = %d, want %d", c.a, c.b, got, c.mul)
		}
	}
}

func checkRows(t *testing.T, got, want []AggRow) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d rows, want %d: %v vs %v", len(got), len(want), got, want)
	}
	for i := range want {
		if len(got[i].Key) != len(want[i].Key) || len(got[i].Vals) != len(want[i].Vals) {
			t.Fatalf("row %d shape mismatch: got %v, want %v", i, got[i], want[i])
		}
		for j := range want[i].Key {
			if got[i].Key[j] != want[i].Key[j] {
				t.Fatalf("row %d key: got %v, want %v", i, got[i].Key, want[i].Key)
			}
		}
		for j := range want[i].Vals {
			if got[i].Vals[j] != want[i].Vals[j] {
				t.Fatalf("row %d (%s): got %v, want %v", i, "vals", got[i].Vals, want[i].Vals)
			}
		}
	}
}
