package frep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// quickFRep builds a random factorised representation (or nil when the
// random relation does not factorise over the random tree).
func quickFRep(seed int64) *FRep {
	fr, err := FromRelation(quickTree(seed), quickRel(seed))
	if err != nil {
		return nil
	}
	return fr
}

// Property: Decode(Encode(f)) is structurally equal to f, and the encoded
// form validates.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		fr := quickFRep(seed)
		if fr == nil {
			return true
		}
		e := fr.Encode()
		if err := e.Validate(); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		return e.Decode().Equal(fr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: the encoded measures agree with the pointer measures.
func TestQuickEncMeasures(t *testing.T) {
	f := func(seed int64) bool {
		fr := quickFRep(seed)
		if fr == nil {
			return true
		}
		e := fr.Encode()
		return e.Count() == fr.Count() && e.Size() == fr.Size() &&
			e.FlatSize() == fr.FlatSize() && e.IsEmpty() == fr.IsEmpty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoded enumeration (push and pull) yields exactly the pointer
// enumeration, in the same order.
func TestQuickEncEnumeration(t *testing.T) {
	f := func(seed int64) bool {
		fr := quickFRep(seed)
		if fr == nil {
			return true
		}
		e := fr.Encode()
		var want []relation.Tuple
		fr.Enumerate(func(tp relation.Tuple) bool {
			want = append(want, tp.Clone())
			return true
		})
		var got []relation.Tuple
		e.Enumerate(func(tp relation.Tuple) bool {
			got = append(got, tp.Clone())
			return true
		})
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Compare(want[i]) != 0 {
				return false
			}
		}
		// Pull-based, twice (Reset in between).
		it := NewEncIterator(e)
		for pass := 0; pass < 2; pass++ {
			i := 0
			for {
				tp, ok := it.Next()
				if !ok {
					break
				}
				if i >= len(want) || tp.Compare(want[i]) != 0 {
					return false
				}
				i++
			}
			if i != len(want) {
				return false
			}
			it.Reset()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoded aggregation agrees with pointer aggregation, grouped
// and global.
func TestQuickEncAggregate(t *testing.T) {
	specs := []AggSpec{
		{Fn: AggCount},
		{Fn: AggSum, Attr: "B"},
		{Fn: AggMin, Attr: "C"},
		{Fn: AggMax, Attr: "B"},
		{Fn: AggCountDistinct, Attr: "C"},
	}
	for _, groupBy := range [][]relation.Attribute{nil, {"A"}, {"A", "B"}} {
		f := func(seed int64) bool {
			fr := quickFRep(seed)
			if fr == nil {
				return true
			}
			e := fr.Encode()
			want, err1 := fr.Aggregate(groupBy, specs)
			got, err2 := e.Aggregate(groupBy, specs)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 != nil {
				return true
			}
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				for k := range got[i].Key {
					if got[i].Key[k] != want[i].Key[k] {
						return false
					}
				}
				for k := range got[i].Vals {
					if got[i].Vals[k] != want[i].Vals[k] {
						return false
					}
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Fatalf("groupBy %v: %v", groupBy, err)
		}
	}
}

// The empty representation round-trips and behaves.
func TestEncEmpty(t *testing.T) {
	tr := ftree.New([]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B"))},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")})
	e := NewEmptyEnc(tr)
	if !e.IsEmpty() || e.Count() != 0 || e.Size() != 0 {
		t.Fatalf("empty enc misbehaves: empty=%v count=%d size=%d", e.IsEmpty(), e.Count(), e.Size())
	}
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	fr := e.Decode()
	if !fr.IsEmpty() {
		t.Fatal("decoded empty enc is not empty")
	}
	if !fr.Encode().Equal(e) {
		t.Fatal("empty enc does not round-trip")
	}
	n := 0
	e.Enumerate(func(relation.Tuple) bool { n++; return true })
	if n != 0 {
		t.Fatalf("empty enc enumerated %d tuples", n)
	}
}

// ConcatEnc mirrors the Cartesian product at the data level.
func TestEncConcatProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mk := func(attr relation.Attribute, n int) *Enc {
		r := relation.New("R", relation.Schema{attr})
		for i := 0; i < n; i++ {
			r.Append(relation.Value(rng.Intn(50)))
		}
		r.Dedup()
		tr := ftree.New([]*ftree.Node{ftree.NewNode(attr)}, []relation.AttrSet{relation.NewAttrSet(attr)})
		fr, err := FromRelation(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		return fr.Encode()
	}
	a, b := mk("X", 8), mk("Y", 5)
	tree := &ftree.T{
		Roots:  append(append([]*ftree.Node{}, a.Tree.Roots...), b.Tree.Roots...),
		Rels:   append(append([]relation.AttrSet{}, a.Tree.Rels...), b.Tree.Rels...),
		Deps:   append(append([]relation.AttrSet{}, a.Tree.Deps...), b.Tree.Deps...),
		Hidden: a.Tree.Hidden.Union(b.Tree.Hidden),
		Consts: a.Tree.Consts.Union(b.Tree.Consts),
	}
	p := ConcatEnc(tree, a, b)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Count() != a.Count()*b.Count() {
		t.Fatalf("product count %d, want %d", p.Count(), a.Count()*b.Count())
	}
}

// DropLeaf removes exactly one leaf column and keeps everything else.
func TestEncDropLeaf(t *testing.T) {
	fr := quickFRep(3)
	for seed := int64(4); fr == nil; seed++ {
		fr = quickFRep(seed)
	}
	e := fr.Encode()
	// Find a leaf node index.
	leaf := -1
	var leafNode *ftree.Node
	for ni := 0; ni < e.NodeCount(); ni++ {
		if len(e.Kids(ni)) == 0 {
			leaf, leafNode = ni, e.Node(ni)
		}
	}
	if leaf < 0 {
		t.Skip("no leaf")
	}
	nt := e.Tree // DropLeaf contract: tree already mutated by the caller
	if err := nt.RemoveLeaf(leafNode); err != nil {
		t.Fatal(err)
	}
	d := e.DropLeaf(nt, leaf)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NodeCount() != e.NodeCount()-1 {
		t.Fatalf("node count %d, want %d", d.NodeCount(), e.NodeCount()-1)
	}
}
