package frep

import (
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// Property: Export followed by AdoptEnc over a clone of the tree is the
// identity — same validation, same enumeration — without copying the arena.
func TestQuickExportAdoptRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		fr := quickFRep(seed)
		if fr == nil {
			return true
		}
		e := fr.Encode()
		a, spans := e.Export()
		got, err := AdoptEnc(e.Tree.Clone(), a, spans)
		if err != nil {
			t.Logf("adopt: %v", err)
			return false
		}
		if got.IsEmpty() != e.IsEmpty() || got.Count() != e.Count() || got.Size() != e.Size() {
			return false
		}
		var want, have []relation.Tuple
		e.Enumerate(func(tp relation.Tuple) bool { want = append(want, tp.Clone()); return true })
		got.Enumerate(func(tp relation.Tuple) bool { have = append(have, tp.Clone()); return true })
		if len(want) != len(have) {
			return false
		}
		for i := range want {
			if want[i].Compare(have[i]) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Hostile exports must be rejected with an error, never a panic.
func TestAdoptEncRejectsHostileSpans(t *testing.T) {
	var e *Enc
	for seed := int64(0); ; seed++ {
		fr := quickFRep(seed)
		if fr != nil && !fr.IsEmpty() {
			e = fr.Encode()
			break
		}
	}
	a, spans := e.Export()
	tree := e.Tree.Clone()

	mut := func(name string, f func(s []NodeSpan) []NodeSpan) {
		cp := append([]NodeSpan(nil), spans...)
		if _, err := AdoptEnc(tree, a, f(cp)); err == nil {
			t.Errorf("%s: adopted hostile spans without error", name)
		}
	}
	mut("missing span", func(s []NodeSpan) []NodeSpan { return s[:len(s)-1] })
	mut("extra span", func(s []NodeSpan) []NodeSpan { return append(s, NodeSpan{}) })
	mut("negative lo", func(s []NodeSpan) []NodeSpan { s[0].ValLo = -1; return s })
	mut("inverted span", func(s []NodeSpan) []NodeSpan { s[0].ValLo, s[0].ValHi = s[0].ValHi+1, s[0].ValLo; return s })
	mut("val overrun", func(s []NodeSpan) []NodeSpan { s[0].ValHi = int32(len(a.Vals)) + 7; return s })
	mut("off overrun", func(s []NodeSpan) []NodeSpan { s[0].OffHi = int32(len(a.Offs)) + 7; return s })
	mut("empty offsets", func(s []NodeSpan) []NodeSpan { s[0].OffLo, s[0].OffHi = 0, 0; return s })
}
