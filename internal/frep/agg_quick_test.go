package frep

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// foldAgg is the reference implementation: enumerate the flat relation and
// fold every aggregate tuple by tuple.
func foldAgg(fr *FRep, groupBy []relation.Attribute, specs []AggSpec) []AggRow {
	schema := fr.Schema()
	pos := map[relation.Attribute]int{}
	for i, a := range schema {
		pos[a] = i
	}
	type state struct {
		key  []relation.Value
		cnt  int64
		sum  []int64
		m    []int64
		mSet []bool
		dist []map[relation.Value]struct{}
	}
	groups := map[string]*state{}
	fr.Enumerate(func(t relation.Tuple) bool {
		key := make([]relation.Value, len(groupBy))
		for i, a := range groupBy {
			key[i] = t[pos[a]]
		}
		k := pkey(key)
		s, ok := groups[k]
		if !ok {
			s = &state{
				key: key, sum: make([]int64, len(specs)), m: make([]int64, len(specs)),
				mSet: make([]bool, len(specs)), dist: make([]map[relation.Value]struct{}, len(specs)),
			}
			groups[k] = s
		}
		s.cnt++
		for i, sp := range specs {
			if sp.Fn == AggCount {
				continue
			}
			v := t[pos[sp.Attr]]
			switch sp.Fn {
			case AggSum:
				s.sum[i] += int64(v)
			case AggMin:
				if !s.mSet[i] || int64(v) < s.m[i] {
					s.m[i], s.mSet[i] = int64(v), true
				}
			case AggMax:
				if !s.mSet[i] || int64(v) > s.m[i] {
					s.m[i], s.mSet[i] = int64(v), true
				}
			case AggCountDistinct:
				if s.dist[i] == nil {
					s.dist[i] = map[relation.Value]struct{}{}
				}
				s.dist[i][v] = struct{}{}
			}
		}
		return true
	})
	rows := make([]AggRow, 0, len(groups))
	for _, s := range groups {
		row := AggRow{Key: s.key, Vals: make([]int64, len(specs))}
		for i, sp := range specs {
			switch sp.Fn {
			case AggCount:
				row.Vals[i] = s.cnt
			case AggSum:
				row.Vals[i] = s.sum[i]
			case AggMin, AggMax:
				row.Vals[i] = s.m[i]
			case AggCountDistinct:
				row.Vals[i] = int64(len(s.dist[i]))
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i].Key {
			if rows[i].Key[k] != rows[j].Key[k] {
				return rows[i].Key[k] < rows[j].Key[k]
			}
		}
		return false
	})
	return rows
}

func rowsEqual(a, b []AggRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Key) != len(b[i].Key) || len(a[i].Vals) != len(b[i].Vals) {
			return false
		}
		for j := range a[i].Key {
			if a[i].Key[j] != b[i].Key[j] {
				return false
			}
		}
		for j := range a[i].Vals {
			if a[i].Vals[j] != b[i].Vals[j] {
				return false
			}
		}
	}
	return true
}

// groupSubset derives a deterministic subset of attrs (possibly empty).
func groupSubset(attrs []relation.Attribute, mask int) []relation.Attribute {
	var out []relation.Attribute
	for i, a := range attrs {
		if mask&(1<<i) != 0 {
			out = append(out, a)
		}
	}
	return out
}

// Property: every aggregate over a random f-rep equals the same aggregate
// folded over the enumeration of its flattening, for every group-by subset
// — including the empty subset (global aggregates) and empty
// representations (quickRel may yield zero tuples).
func TestQuickAggregateMatchesFold(t *testing.T) {
	attrs := []relation.Attribute{"A", "B", "C"}
	specs := []AggSpec{
		{Fn: AggCount},
		{Fn: AggSum, Attr: "A"},
		{Fn: AggMin, Attr: "B"},
		{Fn: AggMax, Attr: "C"},
		{Fn: AggCountDistinct, Attr: "B"},
	}
	f := func(seed int64, mask uint8) bool {
		r := quickRel(seed)
		fr, err := FromRelation(quickTree(seed), r)
		if err != nil {
			return false
		}
		groupBy := groupSubset(attrs, int(mask)%8)
		got, err := fr.Aggregate(groupBy, specs)
		if err != nil {
			return false
		}
		return rowsEqual(got, foldAgg(fr, groupBy, specs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: the same, over a forest-shaped representation (a true product
// of two independently factorised relations), exercising the
// count-weighting recurrence across roots.
func TestQuickAggregateProductMatchesFold(t *testing.T) {
	attrs := []relation.Attribute{"A", "B", "C", "D"}
	specs := []AggSpec{
		{Fn: AggCount},
		{Fn: AggSum, Attr: "C"},
		{Fn: AggMin, Attr: "A"},
		{Fn: AggMax, Attr: "D"},
		{Fn: AggCountDistinct, Attr: "C"},
	}
	f := func(seed int64, mask uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		left := relation.New("L", relation.Schema{"A", "B"})
		for i := 0; i < rng.Intn(8); i++ {
			left.Append(relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)))
		}
		left.Dedup()
		right := relation.New("R", relation.Schema{"C", "D"})
		for i := 0; i < rng.Intn(8); i++ {
			right.Append(relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)))
		}
		right.Dedup()
		// The product relation over the forest {A->B} | {C->D}.
		prod := relation.New("P", relation.Schema{"A", "B", "C", "D"})
		for _, lt := range left.Tuples {
			for _, rt := range right.Tuples {
				prod.Append(lt[0], lt[1], rt[0], rt[1])
			}
		}
		tr := ftree.New(
			[]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B")), ftree.NewNode("C").Add(ftree.NewNode("D"))},
			[]relation.AttrSet{relation.NewAttrSet("A", "B"), relation.NewAttrSet("C", "D")})
		if prod.Cardinality() == 0 {
			// Empty product: FromRelation yields the empty representation.
			fr, err := FromRelation(tr, prod)
			if err != nil {
				return false
			}
			rows, err := fr.Aggregate(nil, specs)
			return err == nil && len(rows) == 0
		}
		fr, err := FromRelation(tr, prod)
		if err != nil {
			return false
		}
		groupBy := groupSubset(attrs, int(mask)%16)
		got, err := fr.Aggregate(groupBy, specs)
		if err != nil {
			return false
		}
		return rowsEqual(got, foldAgg(fr, groupBy, specs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
