package frep

import (
	"math/rand"
	"testing"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// TestIteratorMatchesEnumerate: the pull-based iterator must produce
// exactly the Enumerate sequence.
func TestIteratorMatchesEnumerate(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		r := relation.New("R", relation.Schema{"A", "B", "C"})
		for i := 0; i < rng.Intn(25); i++ {
			r.Append(relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)))
		}
		r.Dedup()
		tr := randomPathTree([]relation.Attribute{"A", "B", "C"}, rng,
			[]relation.AttrSet{relation.NewAttrSet("A", "B", "C")})
		f, err := FromRelation(tr, r)
		if err != nil {
			t.Fatal(err)
		}
		var want []relation.Tuple
		f.Enumerate(func(tp relation.Tuple) bool {
			want = append(want, tp.Clone())
			return true
		})
		it := NewIterator(f)
		if !it.Schema().Equal(f.Schema()) {
			t.Fatal("iterator schema differs")
		}
		var got []relation.Tuple
		for {
			tp, ok := it.Next()
			if !ok {
				break
			}
			got = append(got, tp.Clone())
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: iterator produced %d tuples, Enumerate %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Compare(want[i]) != 0 {
				t.Fatalf("trial %d: tuple %d differs: %v vs %v", trial, i, got[i], want[i])
			}
		}
		// Exhausted iterators stay exhausted.
		if _, ok := it.Next(); ok {
			t.Fatal("iterator revived after exhaustion")
		}
		// Reset rewinds to the first tuple.
		it.Reset()
		if len(want) > 0 {
			tp, ok := it.Next()
			if !ok || tp.Compare(want[0]) != 0 {
				t.Fatalf("trial %d: reset did not rewind", trial)
			}
		}
	}
}

func TestIteratorEmpty(t *testing.T) {
	tr := ftree.New([]*ftree.Node{ftree.NewNode("A")},
		[]relation.AttrSet{relation.NewAttrSet("A")})
	f := New(tr)
	it := NewIterator(f)
	if _, ok := it.Next(); ok {
		t.Fatal("empty representation produced a tuple")
	}
	it.Reset()
	if _, ok := it.Next(); ok {
		t.Fatal("reset empty iterator produced a tuple")
	}
}

func TestIteratorForest(t *testing.T) {
	// Product of two independent unions: iterator must produce the full
	// cross product in lexicographic order.
	ra := relation.New("RA", relation.Schema{"A"})
	rb := relation.New("RB", relation.Schema{"B"})
	for i := 0; i < 3; i++ {
		ra.Append(relation.Value(i))
		rb.Append(relation.Value(i * 10))
	}
	forest := ftree.New(
		[]*ftree.Node{ftree.NewNode("A"), ftree.NewNode("B")},
		[]relation.AttrSet{relation.NewAttrSet("A"), relation.NewAttrSet("B")})
	f, err := FromRelation(forest, ra.Product(rb))
	if err != nil {
		t.Fatal(err)
	}
	it := NewIterator(f)
	count := 0
	var prev relation.Tuple
	for {
		tp, ok := it.Next()
		if !ok {
			break
		}
		if prev != nil && tp.Compare(prev) <= 0 {
			t.Fatalf("order violation: %v after %v", tp, prev)
		}
		prev = tp.Clone()
		count++
	}
	if count != 9 {
		t.Fatalf("forest iterator produced %d tuples, want 9", count)
	}
}
