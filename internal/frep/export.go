package frep

import (
	"fmt"

	"repro/internal/ftree"
)

// NodeSpan is the public, serialisable form of one node's column spans
// within an arena: node ni's value column is Arena.Vals[ValLo:ValHi] and its
// offset column Arena.Offs[OffLo:OffHi]. Spans are listed in the pre-order
// of the f-tree (the same order Node/Kids/Roots use).
type NodeSpan struct {
	ValLo, ValHi int32
	OffLo, OffHi int32
}

// Export exposes e's arena and per-node pre-order spans so a caller (the
// snapshot store) can serialise the encoding without copying it. The
// returned slices alias e's immutable backing storage and must be treated
// as read-only.
func (e *Enc) Export() (Arena, []NodeSpan) {
	spans := make([]NodeSpan, len(e.cols))
	for i, c := range e.cols {
		spans[i] = NodeSpan{ValLo: c.valLo, ValHi: c.valHi, OffLo: c.offLo, OffHi: c.offHi}
	}
	return e.A, spans
}

// AdoptEnc reconstructs an encoded representation over t from an exported
// arena and span list without copying: the resulting Enc's columns point
// directly at a.Vals/a.Offs, which may be memory-mapped read-only storage.
// Spans must be listed in t's pre-order. Every span is bounds-checked
// against the arena and the full structural Validate pass runs before the
// Enc is returned, so hostile inputs yield an error, never a panic or an
// out-of-bounds view.
func AdoptEnc(t *ftree.T, a Arena, spans []NodeSpan) (*Enc, error) {
	ti := indexTree(t)
	if len(spans) != len(ti.nodes) {
		return nil, fmt.Errorf("frep: adopt: %d spans for %d tree nodes", len(spans), len(ti.nodes))
	}
	cols := make([]nodeCol, len(spans))
	for i, s := range spans {
		if s.ValLo < 0 || s.ValLo > s.ValHi || int(s.ValHi) > len(a.Vals) ||
			s.OffLo < 0 || s.OffLo > s.OffHi || int(s.OffHi) > len(a.Offs) {
			return nil, fmt.Errorf("frep: adopt: node %d span %+v outside arena (%d vals, %d offs)",
				i, s, len(a.Vals), len(a.Offs))
		}
		cols[i] = nodeCol{valLo: s.ValLo, valHi: s.ValHi, offLo: s.OffLo, offHi: s.OffHi}
	}
	e := &Enc{Tree: t, A: a, cols: cols, ti: ti}
	for _, ri := range ti.roots {
		if e.NumEntries(ri) == 0 {
			e.Empty = true
			break
		}
	}
	if err := e.Validate(); err != nil {
		return nil, err
	}
	return e, nil
}
