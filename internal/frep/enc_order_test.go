package frep

import (
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// orderEnc builds a random encoded representation: a path-tree factorisation
// of a random relation over {A,B,C}, optionally extended to a two-root
// forest with an independent relation over {D,E} (the Cartesian-product
// shape ConcatEnc produces).
func orderEnc(t *testing.T, seed int64, forest bool) *Enc {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	relABC := relation.New("R", relation.Schema{"A", "B", "C"})
	for i := 0; i < 2+rng.Intn(24); i++ {
		relABC.Append(relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4)), relation.Value(rng.Intn(4)))
	}
	relABC.Dedup()
	trA := randomPathTree([]relation.Attribute{"A", "B", "C"}, rng,
		[]relation.AttrSet{relation.NewAttrSet("A", "B", "C")})
	fa, err := FromRelation(trA, relABC)
	if err != nil {
		t.Fatal(err)
	}
	ea := fa.Encode()
	if !forest {
		return ea
	}
	relDE := relation.New("S", relation.Schema{"D", "E"})
	for i := 0; i < 1+rng.Intn(6); i++ {
		relDE.Append(relation.Value(rng.Intn(3)), relation.Value(rng.Intn(3)))
	}
	relDE.Dedup()
	trB := randomPathTree([]relation.Attribute{"D", "E"}, rng,
		[]relation.AttrSet{relation.NewAttrSet("D", "E")})
	fb, err := FromRelation(trB, relDE)
	if err != nil {
		t.Fatal(err)
	}
	eb := fb.Encode()
	prod := &ftree.T{
		Roots:  append(append([]*ftree.Node{}, ea.Tree.Roots...), eb.Tree.Roots...),
		Rels:   append(append([]relation.AttrSet{}, ea.Tree.Rels...), eb.Tree.Rels...),
		Deps:   append(append([]relation.AttrSet{}, ea.Tree.Deps...), eb.Tree.Deps...),
		Hidden: relation.AttrSet{},
		Consts: relation.AttrSet{},
	}
	return ConcatEnc(prod, ea, eb)
}

// collect drains an iterator into cloned tuples.
func collect(it TupleIter) []relation.Tuple {
	var out []relation.Tuple
	for {
		tp, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, tp.Clone())
	}
}

// refSorted enumerates e unordered and sorts with the retrieval comparator.
func refSorted(e *Enc, keys []OrderKey, less ValueLess) []relation.Tuple {
	var out []relation.Tuple
	e.Enumerate(func(tp relation.Tuple) bool {
		out = append(out, tp.Clone())
		return true
	})
	cmp := TupleCompare(e.Schema(), keys, less)
	sort.SliceStable(out, func(i, j int) bool { return cmp(out[i], out[j]) < 0 })
	return out
}

func tuplesEqual(a, b []relation.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Compare(b[i]) != 0 {
			return false
		}
	}
	return true
}

// zigzagLess is a non-native total order (rank by value mod 3, ties by
// value): it stands in for dictionary-decoded order and forces real sort
// permutations.
func zigzagLess(a, b relation.Value) bool {
	if a%3 != b%3 {
		return a%3 < b%3
	}
	return a < b
}

// Property: when ResolveOrder accepts the keys, ordered enumeration is
// exactly the unordered enumeration sorted by the retrieval comparator —
// for native order, decoded (permuted) order, and mixed directions alike.
func TestOrderedEnumerationIsSortedPermutation(t *testing.T) {
	for seed := int64(1); seed <= 120; seed++ {
		rng := rand.New(rand.NewSource(seed * 77))
		e := orderEnc(t, seed, seed%3 == 0)
		schema := e.Schema()
		// Keys over a random prefix of the pre-order attribute sequence
		// (always resolvable), random directions, sometimes permuted order.
		k := 1 + rng.Intn(len(schema))
		var keys []OrderKey
		for i := 0; i < k; i++ {
			keys = append(keys, OrderKey{Attr: schema[i], Desc: rng.Intn(2) == 1})
		}
		var less ValueLess
		if rng.Intn(2) == 1 {
			less = zigzagLess
		}
		ord, ok := ResolveOrder(e, keys, less)
		if !ok {
			t.Fatalf("seed %d: prefix keys %v did not resolve", seed, keys)
		}
		got := collect(NewOrderedEncIterator(e, ord))
		want := refSorted(e, keys, less)
		if !tuplesEqual(got, want) {
			t.Fatalf("seed %d: ordered enumeration diverges for keys %v (less=%v)\ngot  %v\nwant %v",
				seed, keys, less != nil, got, want)
		}
	}
}

// Property: keys that do not resolve structurally are answered by SortedIter
// with the same sorted-sequence semantics, including offset/limit clipping
// through the bounded heap.
func TestSortedFallbackMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 120; seed++ {
		rng := rand.New(rand.NewSource(seed * 131))
		e := orderEnc(t, seed, seed%2 == 0)
		schema := e.Schema()
		perm := rng.Perm(len(schema))
		var keys []OrderKey
		for _, i := range perm[:1+rng.Intn(len(schema))] {
			keys = append(keys, OrderKey{Attr: schema[i], Desc: rng.Intn(2) == 1})
		}
		offset := rng.Intn(4)
		limit := -1
		if rng.Intn(2) == 0 {
			limit = rng.Intn(8)
		}
		want := refSorted(e, keys, nil)
		if offset >= len(want) {
			want = nil
		} else {
			want = want[offset:]
		}
		if limit >= 0 && len(want) > limit {
			want = want[:limit]
		}
		got := collect(SortedIter(e, keys, nil, offset, limit))
		if !tuplesEqual(got, want) {
			t.Fatalf("seed %d: fallback diverges for keys %v offset %d limit %d", seed, keys, offset, limit)
		}
	}
}

// Property: Clip(n) of the ordered stream equals the first n tuples of the
// full ordered stream, and Reset replays it.
func TestLimitIsPrefixOfOrderedStream(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		rng := rand.New(rand.NewSource(seed * 19))
		e := orderEnc(t, seed, false)
		schema := e.Schema()
		keys := []OrderKey{{Attr: schema[0], Desc: rng.Intn(2) == 1}}
		ord, ok := ResolveOrder(e, keys, nil)
		if !ok {
			t.Fatalf("seed %d: root key did not resolve", seed)
		}
		full := collect(NewOrderedEncIterator(e, ord))
		n := rng.Intn(len(full) + 2)
		it := Clip(NewOrderedEncIterator(e, ord), 0, n)
		got := collect(it)
		want := full
		if len(want) > n {
			want = want[:n]
		}
		if !tuplesEqual(got, want) {
			t.Fatalf("seed %d: Limit(%d) is not the ordered prefix", seed, n)
		}
		it.Reset()
		if !tuplesEqual(collect(it), want) {
			t.Fatalf("seed %d: Reset does not replay the clipped stream", seed)
		}
	}
}

// Ordered top-k short-circuits: with Limit(n), retrieval visits O(n)
// entries of the encoding, not the whole representation.
func TestOrderedLimitShortCircuits(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B", "C"})
	for a := 0; a < 1000; a++ {
		for b := 0; b < 3; b++ {
			r.Append(relation.Value(a), relation.Value(b), relation.Value(a%7))
		}
	}
	tr := ftree.New([]*ftree.Node{
		ftree.NewNode("A").Add(ftree.NewNode("B").Add(ftree.NewNode("C"))),
	}, []relation.AttrSet{relation.NewAttrSet("A", "B", "C")})
	f, err := FromRelation(tr, r)
	if err != nil {
		t.Fatal(err)
	}
	e := f.Encode()
	if e.NumEntries(0) != 1000 {
		t.Fatalf("root has %d entries, want 1000", e.NumEntries(0))
	}
	for _, desc := range []bool{false, true} {
		ord, ok := ResolveOrder(e, []OrderKey{{Attr: "A", Desc: desc}}, nil)
		if !ok {
			t.Fatal("root key did not resolve")
		}
		it := NewOrderedEncIterator(e, ord)
		clipped := Clip(it, 0, 5)
		n := 0
		for {
			if _, ok := clipped.Next(); !ok {
				break
			}
			n++
		}
		if n != 5 {
			t.Fatalf("desc=%v: got %d tuples, want 5", desc, n)
		}
		// 5 tuples over a depth-3 tree: a handful of seatings per Next, not
		// one per root entry.
		if v := it.Visited(); v > 64 {
			t.Fatalf("desc=%v: top-5 visited %d entries (want O(5), representation has %d root entries)",
				desc, v, e.NumEntries(0))
		}
	}
}

// DedupEnc on engine-built representations is the identity; on a hand-built
// encoding with duplicate union values it merges entries, validates, and
// agrees with both the pointer-form Dedup and the set-dedup of the
// enumerated tuples.
func TestDedupEnc(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		e := orderEnc(t, seed, seed%2 == 0)
		d := DedupEnc(e)
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: dedup of valid enc fails Validate: %v", seed, err)
		}
		if !d.Equal(e) {
			t.Fatalf("seed %d: dedup of engine-built enc is not the identity", seed)
		}
	}

	// A ∪ with duplicate values: {⟨1⟩×{1,2}, ⟨1⟩×{2,3}, ⟨2⟩×{1}} over A→B.
	tr := ftree.New([]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B"))},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")})
	b := NewEncBuilder(tr)
	ai, bi := b.Roots()[0], b.Kids(b.Roots()[0])[0]
	for _, en := range []struct {
		a  relation.Value
		bs []relation.Value
	}{{1, []relation.Value{1, 2}}, {1, []relation.Value{2, 3}}, {2, []relation.Value{1}}} {
		b.Append(ai, en.a)
		for _, v := range en.bs {
			b.Append(bi, v)
		}
		b.CloseUnion(bi)
	}
	b.CloseUnion(ai)
	dup := b.Finish()
	if err := dup.Validate(); err == nil {
		t.Fatal("hand-built duplicate enc unexpectedly validates")
	}

	d := DedupEnc(dup)
	if err := d.Validate(); err != nil {
		t.Fatalf("dedup'd enc fails Validate: %v", err)
	}
	// Set-dedup of the enumerated tuples is the reference.
	ref := relation.New("ref", dup.Schema())
	dup.Enumerate(func(tp relation.Tuple) bool {
		ref.AppendTuple(tp.Clone())
		return true
	})
	ref.Dedup()
	got := d.Relation("got")
	if !got.Equal(ref) {
		t.Fatalf("dedup enumerates\n%v\nwant set-dedup\n%v", got.Tuples, ref.Tuples)
	}
	if n := d.Count(); n != int64(ref.Cardinality()) {
		t.Fatalf("dedup Count() = %d, want %d", n, ref.Cardinality())
	}
	// Pointer-form mirror: Dedup on the decoded rep encodes to the same enc.
	f := dup.Decode()
	f.Dedup()
	if !f.Encode().Equal(d) {
		t.Fatal("pointer-form Dedup disagrees with DedupEnc")
	}
}

// Reindex: permuting root order yields a view over the shared arena whose
// enumeration is the sorted-by-new-schema sequence of the same tuples.
func TestReindexReordersEnumeration(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		e := orderEnc(t, seed, true)
		if len(e.Tree.Roots) < 2 || e.IsEmpty() {
			continue
		}
		nt := e.Tree.Clone()
		nt.Roots[0], nt.Roots[1] = nt.Roots[1], nt.Roots[0]
		re, err := e.Reindex(nt)
		if err != nil {
			t.Fatalf("seed %d: reindex: %v", seed, err)
		}
		if err := re.Validate(); err != nil {
			t.Fatalf("seed %d: reindexed enc fails Validate: %v", seed, err)
		}
		if re.Count() != e.Count() {
			t.Fatalf("seed %d: reindex changed Count", seed)
		}
		got := collect(NewEncIterator(re))
		want := refSorted(re, nil, nil)
		if !tuplesEqual(got, want) {
			t.Fatalf("seed %d: reindexed enumeration is not schema-lexicographic", seed)
		}
	}
}

// Ordered iteration is safe alongside concurrent shard draining of the same
// immutable Enc (run under -race).
func TestOrderedIterationWithConcurrentShards(t *testing.T) {
	e := orderEnc(t, 42, false)
	keys := []OrderKey{{Attr: e.Schema()[0], Desc: true}}
	ord, ok := ResolveOrder(e, keys, nil)
	if !ok {
		t.Fatal("root key did not resolve")
	}
	var wg sync.WaitGroup
	counts := make([]int64, 4)
	for i, sh := range e.EnumerateShards(4) {
		wg.Add(1)
		go func(i int, it *EncIterator) {
			defer wg.Done()
			for {
				if _, ok := it.Next(); !ok {
					return
				}
				counts[i]++
			}
		}(i, sh)
	}
	got := collect(NewOrderedEncIterator(e, ord))
	wg.Wait()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total != e.Count() || int64(len(got)) != e.Count() {
		t.Fatalf("shards drained %d, ordered %d, Count %d", total, len(got), e.Count())
	}
}
