// Arena-backed columnar f-representations. Enc stores the same factorised
// data as FRep, but flat: one value column and one union-offset column per
// f-tree node, all backed by a single arena, instead of a tree of *Union
// pointers with per-entry child slices.
//
// The layout exploits the structural regularity of f-representations: the
// entries of a node, concatenated across all its unions in build order, are
// globally numbered, and union k of a child node belongs to global entry k
// of its parent (every parent entry has exactly one child union per child
// node). One offset array per node therefore encodes the entire nesting:
//
//	node column:  Vals  = all entry values, unions back to back
//	              Offs  = union boundaries: union u spans Vals[Offs[u]:Offs[u+1]]
//	child c:      union k of c  ⇔  entry k of the parent (absolute index)
//
// A corollary worth the price of admission: the representation fragment
// below any contiguous run of entries is itself contiguous in every
// descendant column, so subtree copies are bulk copies and the whole
// representation is trivially snapshot-shareable (arenas are immutable once
// built; views over a new tree share them).
package frep

import (
	"fmt"
	"math"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// Arena is the single backing store of an encoded representation: every
// node's value column lives in Vals and every node's offset column in Offs,
// delimited by per-node spans.
type Arena struct {
	Vals []relation.Value
	Offs []int32
}

// nodeCol is one node's pair of column spans within the arena.
type nodeCol struct {
	valLo, valHi int32
	offLo, offHi int32
}

// treeIndex is the pre-order indexing of an f-tree shared by Enc and
// EncBuilder: node list, reverse map, child/parent/subtree tables.
type treeIndex struct {
	nodes []*ftree.Node
	idx   map[*ftree.Node]int
	kids  [][]int
	par   []int // parent pre-order index; -1 for roots
	sub   []int // subtree end (exclusive): subtree(i) = nodes[i:sub[i]]
	roots []int
}

func indexTree(t *ftree.T) *treeIndex {
	ti := &treeIndex{idx: map[*ftree.Node]int{}}
	var walk func(n *ftree.Node, parent int)
	walk = func(n *ftree.Node, parent int) {
		i := len(ti.nodes)
		ti.nodes = append(ti.nodes, n)
		ti.idx[n] = i
		ti.par = append(ti.par, parent)
		ti.kids = append(ti.kids, nil)
		ti.sub = append(ti.sub, 0)
		for _, c := range n.Children {
			ti.kids[i] = append(ti.kids[i], len(ti.nodes))
			walk(c, i)
		}
		ti.sub[i] = len(ti.nodes)
	}
	for _, r := range t.Roots {
		ti.roots = append(ti.roots, len(ti.nodes))
		walk(r, -1)
	}
	return ti
}

// Enc is an encoded (columnar) factorised representation over an f-tree.
// Encs are immutable: operators produce fresh Encs (often sharing arenas
// through views) instead of mutating in place.
type Enc struct {
	Tree  *ftree.T
	Empty bool
	A     Arena
	cols  []nodeCol
	ti    *treeIndex
}

// NodeCount returns the number of f-tree nodes (pre-order columns).
func (e *Enc) NodeCount() int { return len(e.ti.nodes) }

// Node returns the f-tree node at pre-order index ni.
func (e *Enc) Node(ni int) *ftree.Node { return e.ti.nodes[ni] }

// NodeIndex returns the pre-order index of n, or -1.
func (e *Enc) NodeIndex(n *ftree.Node) int {
	if i, ok := e.ti.idx[n]; ok {
		return i
	}
	return -1
}

// Kids returns the pre-order indexes of ni's children.
func (e *Enc) Kids(ni int) []int { return e.ti.kids[ni] }

// Parent returns the pre-order index of ni's parent, or -1 for roots.
func (e *Enc) Parent(ni int) int { return e.ti.par[ni] }

// Roots returns the pre-order indexes of the root nodes.
func (e *Enc) Roots() []int { return e.ti.roots }

// Vals returns node ni's value column: all entries across all unions.
func (e *Enc) Vals(ni int) []relation.Value {
	c := &e.cols[ni]
	return e.A.Vals[c.valLo:c.valHi]
}

// Offs returns node ni's union offsets, relative to its value column:
// union u spans Vals(ni)[Offs[u]:Offs[u+1]].
func (e *Enc) Offs(ni int) []int32 {
	c := &e.cols[ni]
	return e.A.Offs[c.offLo:c.offHi]
}

// NumUnions returns the number of unions at node ni.
func (e *Enc) NumUnions(ni int) int { return int(e.cols[ni].offHi-e.cols[ni].offLo) - 1 }

// NumEntries returns the number of entries at node ni across all unions.
func (e *Enc) NumEntries(ni int) int { return int(e.cols[ni].valHi - e.cols[ni].valLo) }

// UnionSpan returns the entry range of union u at node ni (indexes into
// Vals(ni); for child nodes they double as the child-union indexes of the
// next level down).
func (e *Enc) UnionSpan(ni, u int) (lo, hi int32) {
	o := e.Offs(ni)
	return o[u], o[u+1]
}

// IsEmpty reports whether the represented relation is empty.
func (e *Enc) IsEmpty() bool {
	if e.Empty {
		return true
	}
	for _, ri := range e.ti.roots {
		if e.NumEntries(ri) == 0 {
			return true
		}
	}
	return false
}

// NewEmptyEnc returns the canonical empty representation over t.
func NewEmptyEnc(t *ftree.T) *Enc {
	b := NewEncBuilder(t)
	for _, ri := range b.ti.roots {
		b.CloseUnion(ri)
	}
	e := b.Finish()
	e.Empty = true
	return e
}

// ReTree returns a view of e over tree t, which must have the same
// pre-order shape (node-for-node) as e.Tree — used by operators that only
// change tree markers (hidden/const) or ownership. The arena is shared.
func (e *Enc) ReTree(t *ftree.T) *Enc {
	return &Enc{Tree: t, Empty: e.Empty, A: e.A, cols: e.cols, ti: indexTree(t)}
}

// DropLeaf returns a view of e without the leaf node at pre-order index ni,
// over tree t (e's tree with that leaf already removed). Dropping a leaf
// never changes any other column — parent entries keep their values and the
// reduction invariant guarantees nothing empties — so this is O(#nodes).
func (e *Enc) DropLeaf(t *ftree.T, ni int) *Enc {
	cols := make([]nodeCol, 0, len(e.cols)-1)
	cols = append(cols, e.cols[:ni]...)
	cols = append(cols, e.cols[ni+1:]...)
	return &Enc{Tree: t, Empty: e.Empty, A: e.A, cols: cols, ti: indexTree(t)}
}

// ConcatEnc combines two encoded representations into one over tree t,
// whose roots must be a's roots followed by b's roots (same shapes). Used
// by the Cartesian product operator; columns are copied into a fresh single
// arena, spans rebased.
func ConcatEnc(t *ftree.T, a, b *Enc) *Enc {
	out := &Enc{Tree: t, Empty: a.IsEmpty() || b.IsEmpty(), ti: indexTree(t)}
	out.A.Vals = make([]relation.Value, 0, len(a.A.Vals)+len(b.A.Vals))
	out.A.Offs = make([]int32, 0, len(a.A.Offs)+len(b.A.Offs))
	for _, src := range []*Enc{a, b} {
		for ni := range src.cols {
			vlo := i32(len(out.A.Vals))
			out.A.Vals = append(out.A.Vals, src.Vals(ni)...)
			olo := i32(len(out.A.Offs))
			out.A.Offs = append(out.A.Offs, src.Offs(ni)...)
			out.cols = append(out.cols, nodeCol{
				valLo: vlo, valHi: i32(len(out.A.Vals)),
				offLo: olo, offHi: i32(len(out.A.Offs)),
			})
		}
	}
	return out
}

// ---------------------------------------------------------------- builder

// EncBuilder accumulates an encoded representation column by column. The
// protocol mirrors the recursive build of a representation: Append adds an
// entry value at a node, CloseUnion seals the current union (unions of a
// child node must be closed in the order of its parent's entries, one per
// parent entry), and Mark/Rollback undo a partially-emitted entry whose
// subtree turned out empty. Finish packs the per-node columns into a single
// arena.
type EncBuilder struct {
	tree *ftree.T
	ti   *treeIndex
	vals [][]relation.Value
	offs [][]int32
}

// NewEncBuilder prepares a builder for representations over t.
func NewEncBuilder(t *ftree.T) *EncBuilder {
	ti := indexTree(t)
	b := &EncBuilder{tree: t, ti: ti,
		vals: make([][]relation.Value, len(ti.nodes)),
		offs: make([][]int32, len(ti.nodes))}
	for i := range b.offs {
		b.offs[i] = append(b.offs[i], 0)
	}
	return b
}

// Idx returns the pre-order index of n (which must be a node of the
// builder's tree).
func (b *EncBuilder) Idx(n *ftree.Node) int { return b.ti.idx[n] }

// Kids returns the pre-order indexes of ni's children.
func (b *EncBuilder) Kids(ni int) []int { return b.ti.kids[ni] }

// Roots returns the pre-order indexes of the root nodes.
func (b *EncBuilder) Roots() []int { return b.ti.roots }

// i32 guards the offset casts: columns are indexed with int32, so a column
// past 2^31 entries must fail loudly instead of wrapping into corrupt
// spans.
func i32(n int) int32 {
	if n > math.MaxInt32 {
		panic("frep: enc: column exceeds 2^31 entries")
	}
	return int32(n)
}

// Append adds one entry value at node ni (to the currently open union).
func (b *EncBuilder) Append(ni int, v relation.Value) {
	b.vals[ni] = append(b.vals[ni], v)
}

// CloseUnion seals the currently open union at node ni.
func (b *EncBuilder) CloseUnion(ni int) {
	b.offs[ni] = append(b.offs[ni], i32(len(b.vals[ni])))
}

// Mark captures the column lengths of ni's subtree into buf (reused across
// calls; pass buf[:0]). Rollback with the same ni restores them, undoing
// every Append/CloseUnion in the subtree since the mark.
func (b *EncBuilder) Mark(ni int, buf []int32) []int32 {
	for j := ni; j < b.ti.sub[ni]; j++ {
		buf = append(buf, int32(len(b.vals[j])), int32(len(b.offs[j])))
	}
	return buf
}

// Rollback truncates ni's subtree columns to a state captured by Mark.
func (b *EncBuilder) Rollback(ni int, marks []int32) {
	for j := ni; j < b.ti.sub[ni]; j++ {
		k := 2 * (j - ni)
		b.vals[j] = b.vals[j][:marks[k]]
		b.offs[j] = b.offs[j][:marks[k+1]]
	}
}

// CopyUnions bulk-copies unions [ulo,uhi) of src node sni — with their
// entire subtrees — into builder node dni, closing every copied union. The
// subtree shapes below sni and dni must match child-for-child. Because
// child unions follow parent entry order, every descendant's fragment is a
// contiguous column range: the copy is a handful of memmoves per node.
func (b *EncBuilder) CopyUnions(src *Enc, sni, dni, ulo, uhi int) {
	so := src.Offs(sni)
	elo, ehi := so[ulo], so[uhi]
	base := int32(len(b.vals[dni])) - elo
	b.vals[dni] = append(b.vals[dni], src.Vals(sni)[elo:ehi]...)
	for u := ulo; u < uhi; u++ {
		b.offs[dni] = append(b.offs[dni], base+so[u+1])
	}
	dkids := b.ti.kids[dni]
	for k, sc := range src.ti.kids[sni] {
		b.CopyUnions(src, sc, dkids[k], int(elo), int(ehi))
	}
}

// CopyEntries bulk-copies entries [elo,ehi) of src node sni — with their
// entire subtrees — into the currently open union at builder node dni,
// without closing it. The entry values land in dni's open union; each
// copied entry's child unions are copied (and closed) beneath, preserving
// the parent-entry ⇔ child-union correspondence. Like CopyUnions this is a
// handful of memmoves per descendant node; it is the primitive behind
// incremental merges, which interleave copied runs of untouched entries
// with freshly built ones inside a single union.
func (b *EncBuilder) CopyEntries(src *Enc, sni, dni, elo, ehi int) {
	b.vals[dni] = append(b.vals[dni], src.Vals(sni)[elo:ehi]...)
	dkids := b.ti.kids[dni]
	for k, sc := range src.ti.kids[sni] {
		b.CopyUnions(src, sc, dkids[k], elo, ehi)
	}
}

// Finish packs the per-node columns into one arena and returns the encoded
// representation. Emptiness is detected from the roots (any root union
// without entries represents ∅).
func (b *EncBuilder) Finish() *Enc {
	totalV, totalO := 0, 0
	for i := range b.vals {
		totalV += len(b.vals[i])
		totalO += len(b.offs[i])
	}
	e := &Enc{Tree: b.tree, ti: b.ti,
		A:    Arena{Vals: make([]relation.Value, 0, totalV), Offs: make([]int32, 0, totalO)},
		cols: make([]nodeCol, len(b.vals))}
	for i := range b.vals {
		vlo := i32(len(e.A.Vals))
		e.A.Vals = append(e.A.Vals, b.vals[i]...)
		olo := i32(len(e.A.Offs))
		e.A.Offs = append(e.A.Offs, b.offs[i]...)
		e.cols[i] = nodeCol{valLo: vlo, valHi: i32(len(e.A.Vals)), offLo: olo, offHi: i32(len(e.A.Offs))}
	}
	for _, ri := range b.ti.roots {
		if e.NumEntries(ri) == 0 {
			e.Empty = true
			break
		}
	}
	return e
}

// ---------------------------------------------------- encode / decode

// Encode converts the pointer form to the columnar form. The resulting Enc
// shares f's tree: the caller must not mutate f (or its tree) afterwards.
func (f *FRep) Encode() *Enc {
	if f.IsEmpty() {
		return NewEmptyEnc(f.Tree)
	}
	b := NewEncBuilder(f.Tree)
	var emit func(u *Union, ni int)
	emit = func(u *Union, ni int) {
		kid := b.ti.kids[ni]
		for i := range u.Entries {
			en := &u.Entries[i]
			b.Append(ni, en.Val)
			for k, c := range en.Children {
				emit(c, kid[k])
				b.CloseUnion(kid[k])
			}
		}
	}
	for i, u := range f.Roots {
		ri := b.ti.idx[f.Tree.Roots[i]]
		emit(u, ri)
		b.CloseUnion(ri)
	}
	return b.Finish()
}

// Decode converts the columnar form back to the pointer form. The result
// owns a cloned tree, so pointer-side operators may mutate it freely
// without corrupting e.
func (e *Enc) Decode() *FRep {
	t := e.Tree.Clone()
	if e.IsEmpty() {
		return New(t)
	}
	fr := &FRep{Tree: t}
	var build func(ni, u int) *Union
	build = func(ni, u int) *Union {
		lo, hi := e.UnionSpan(ni, u)
		vals := e.Vals(ni)
		kid := e.ti.kids[ni]
		out := &Union{Entries: make([]Entry, 0, hi-lo)}
		for j := lo; j < hi; j++ {
			en := Entry{Val: vals[j]}
			if len(kid) > 0 {
				en.Children = make([]*Union, len(kid))
				for k, ci := range kid {
					en.Children[k] = build(ci, int(j))
				}
			}
			out.Entries = append(out.Entries, en)
		}
		return out
	}
	for _, ri := range e.ti.roots {
		fr.Roots = append(fr.Roots, build(ri, 0))
	}
	return fr
}

// ------------------------------------------------------------ measures

// Count returns the number of represented tuples (saturating like
// FRep.Count).
func (e *Enc) Count() int64 {
	if e.IsEmpty() {
		return 0
	}
	total := int64(1)
	for _, ri := range e.ti.roots {
		total = satMul(total, e.countSpan(ri, 0, int32(e.NumEntries(ri))))
	}
	return total
}

// countSpan counts the tuples represented by entries [lo,hi) of node ni.
func (e *Enc) countSpan(ni int, lo, hi int32) int64 {
	kid := e.ti.kids[ni]
	if len(kid) == 0 {
		return int64(hi - lo)
	}
	var total int64
	for j := lo; j < hi; j++ {
		prod := int64(1)
		for _, ci := range kid {
			clo, chi := e.UnionSpan(ci, int(j))
			prod = satMul(prod, e.countSpan(ci, clo, chi))
		}
		total = satAdd(total, prod)
	}
	return total
}

// Size returns the number of singletons, |E|. Columnar it is a closed
// form: every entry of every node contributes one singleton per visible
// attribute of its class.
func (e *Enc) Size() int {
	if e.IsEmpty() {
		return 0
	}
	total := 0
	for ni, n := range e.ti.nodes {
		vis := 0
		for _, a := range n.Attrs {
			if !e.Tree.Hidden.Has(a) {
				vis++
			}
		}
		total += e.NumEntries(ni) * vis
	}
	return total
}

// FlatSize returns Count() times the number of visible attributes,
// saturating at math.MaxInt64.
func (e *Enc) FlatSize() int64 {
	return satMul(e.Count(), int64(len(e.Schema())))
}

// Schema returns the visible attributes in canonical enumeration order.
func (e *Enc) Schema() relation.Schema { return treeSchema(e.Tree) }

// Relation materialises the represented relation.
func (e *Enc) Relation(name string) *relation.Relation {
	out := relation.New(name, e.Schema())
	e.Enumerate(func(t relation.Tuple) bool {
		out.AppendTuple(t.Clone())
		return true
	})
	return out
}

// String renders the representation in the paper's notation (via the
// pointer form; display only).
func (e *Enc) String() string { return e.Decode().String() }

// StringDict renders with values decoded through d.
func (e *Enc) StringDict(d *relation.Dict) string { return e.Decode().StringDict(d) }

// Equal reports structural equality over trees with equal canonical forms
// and matching pre-order layouts (the columnar mirror of FRep.Equal).
func (e *Enc) Equal(o *Enc) bool {
	if e.Tree.Canonical() != o.Tree.Canonical() {
		return false
	}
	if e.IsEmpty() || o.IsEmpty() {
		return e.IsEmpty() == o.IsEmpty()
	}
	if len(e.cols) != len(o.cols) {
		return false
	}
	for ni := range e.cols {
		av, bv := e.Vals(ni), o.Vals(ni)
		if len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
		ao, bo := e.Offs(ni), o.Offs(ni)
		if len(ao) != len(bo) {
			return false
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return false
			}
		}
	}
	return true
}

// UnionEqual reports whether unions u1 and u2 of node ni represent the same
// fragment (deep comparison over the subtree; used by Strict push-up
// checks).
func (e *Enc) UnionEqual(ni, u1, u2 int) bool {
	lo1, hi1 := e.UnionSpan(ni, u1)
	lo2, hi2 := e.UnionSpan(ni, u2)
	if hi1-lo1 != hi2-lo2 {
		return false
	}
	vals := e.Vals(ni)
	for k := int32(0); k < hi1-lo1; k++ {
		if vals[lo1+k] != vals[lo2+k] {
			return false
		}
		for _, ci := range e.ti.kids[ni] {
			if !e.UnionEqual(ci, int(lo1+k), int(lo2+k)) {
				return false
			}
		}
	}
	return true
}

// Validate checks the structural invariants of the encoding: per-node
// offset monotonicity and bounds, one union per root, the parent-entry ⇔
// child-union correspondence, strictly increasing values within every
// union, and (for non-empty representations) the reduction invariant.
func (e *Enc) Validate() error {
	if len(e.cols) != len(e.ti.nodes) {
		return fmt.Errorf("frep: enc: %d columns for %d nodes", len(e.cols), len(e.ti.nodes))
	}
	for ni := range e.cols {
		offs := e.Offs(ni)
		if len(offs) == 0 {
			return fmt.Errorf("frep: enc: node %v has no offset column", e.ti.nodes[ni].Attrs)
		}
		if offs[0] != 0 || offs[len(offs)-1] != int32(e.NumEntries(ni)) {
			return fmt.Errorf("frep: enc: node %v offsets do not cover the value column", e.ti.nodes[ni].Attrs)
		}
		for u := 0; u+1 < len(offs); u++ {
			if offs[u] > offs[u+1] {
				return fmt.Errorf("frep: enc: node %v offsets not monotone", e.ti.nodes[ni].Attrs)
			}
		}
		p := e.ti.par[ni]
		want := 1
		if p >= 0 {
			want = e.NumEntries(p)
		}
		if e.NumUnions(ni) != want {
			return fmt.Errorf("frep: enc: node %v has %d unions, expected %d",
				e.ti.nodes[ni].Attrs, e.NumUnions(ni), want)
		}
	}
	if e.IsEmpty() {
		return nil
	}
	for ni := range e.cols {
		vals, offs := e.Vals(ni), e.Offs(ni)
		root := e.ti.par[ni] < 0
		for u := 0; u+1 < len(offs); u++ {
			lo, hi := offs[u], offs[u+1]
			if !root && lo == hi {
				return fmt.Errorf("frep: enc: empty non-root union at node %v", e.ti.nodes[ni].Attrs)
			}
			for j := lo + 1; j < hi; j++ {
				if vals[j] <= vals[j-1] {
					return fmt.Errorf("frep: enc: order violation at node %v: %d after %d",
						e.ti.nodes[ni].Attrs, vals[j], vals[j-1])
				}
			}
		}
	}
	return nil
}
