// Parallel evaluation over the encoded representation. Encs are immutable,
// so concurrent readers need no synchronisation; the unit of parallelism is
// a contiguous run of entries of one root's union — the same partitioning
// the parallel build uses — and partial results combine with the evaluator's
// own union/product combinators (unions add partials, products cross them).
package frep

import (
	"sync"

	"repro/internal/relation"
)

// aggChunk is one worker's share of the pivot root: entries [lo, hi).
type aggChunk struct {
	lo, hi int32
	// Exactly one of the two is set, depending on whether the pivot subtree
	// holds group attributes.
	scalar *partial
	keyed  map[string]*partial
}

// AggregateParallel is Aggregate evaluated by p workers: the entries of the
// largest root union split into contiguous chunks, each worker folds its
// chunk with a private evaluator, and the per-chunk partials combine with
// the additive union combinator before the remaining roots (if any) are
// folded in serially. p <= 1, empty representations and roots too small to
// split all fall back to the serial pass; results are identical to
// Aggregate in every case.
func (e *Enc) AggregateParallel(groupBy []relation.Attribute, specs []AggSpec, p int) ([]AggRow, error) {
	pivot, n := e.largestRoot()
	if p <= 1 || e.IsEmpty() || int(n) < 2*p {
		return e.Aggregate(groupBy, specs)
	}
	ev, err := newAggEval(e.Tree, groupBy, specs)
	if err != nil {
		return nil, err
	}
	pivotNode := e.ti.nodes[pivot]

	chunks := make([]*aggChunk, p)
	for i := range chunks {
		chunks[i] = &aggChunk{lo: chunkBound(n, i, p), hi: chunkBound(n, i+1, p)}
	}
	var wg sync.WaitGroup
	errs := make([]error, p)
	for i, c := range chunks {
		wg.Add(1)
		go func(i int, c *aggChunk) {
			defer wg.Done()
			// A private evaluator per worker: the scratch accumulators and
			// groupBelow/specBelow tables are not shareable.
			wev, werr := newAggEval(e.Tree, groupBy, specs)
			if werr != nil {
				errs[i] = werr
				return
			}
			if !wev.groupBelow[pivotNode] {
				// Detach the result from the worker's scratch slot: the
				// evaluator dies with the goroutine, so its sets transfer.
				s := wev.encScalarSpan(e, pivot, c.lo, c.hi, 0)
				c.scalar = &partial{cnt: s.cnt, st: append([]aggState(nil), s.st...)}
			} else {
				c.keyed = wev.encSpan(e, pivot, c.lo, c.hi)
			}
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Combine the chunks — they partition one union, so partials add.
	scalar := ev.unit()
	var cur map[string]*partial
	if !ev.groupBelow[pivotNode] {
		total := &partial{st: make([]aggState, len(ev.specs))}
		for _, c := range chunks {
			ev.add(total, c.scalar)
		}
		ev.crossScalar(scalar, total)
	} else {
		cur = chunks[0].keyed
		for _, c := range chunks[1:] {
			for k, q := range c.keyed {
				if pp, ok := cur[k]; ok {
					ev.add(pp, q)
				} else {
					cur[k] = q
				}
			}
		}
	}

	// Remaining roots fold in serially, exactly as in Aggregate.
	for _, ri := range e.ti.roots {
		if ri == pivot {
			continue
		}
		rn := e.ti.nodes[ri]
		lo, hi := int32(0), int32(e.NumEntries(ri))
		if !ev.groupBelow[rn] {
			ev.crossScalar(scalar, ev.encScalarSpan(e, ri, lo, hi, 0))
		} else if m := ev.encSpan(e, ri, lo, hi); cur == nil {
			cur = m
		} else {
			cur = ev.cross(cur, m)
		}
	}
	return ev.finishRows(cur, scalar), nil
}

// chunkBound returns the i-th of p boundaries over [0, n) — in 64-bit, since
// n*i overflows int32 already for the column sizes the arena allows.
func chunkBound(n int32, i, p int) int32 {
	return int32(int64(n) * int64(i) / int64(p))
}

// largestRoot returns the pre-order index of the root with the most entries
// (the most profitable split target) and its entry count.
func (e *Enc) largestRoot() (ri int, n int32) {
	ri = e.ti.roots[0]
	for _, r := range e.ti.roots {
		if c := int32(e.NumEntries(r)); c > n {
			ri, n = r, c
		}
	}
	return ri, n
}

// CountParallel is Count with the same root-union split: each worker counts
// a contiguous run of pivot entries, the counts add (saturating), and the
// remaining roots multiply in as in the serial walk.
func (e *Enc) CountParallel(p int) int64 {
	pivot, n := e.largestRoot()
	if p <= 1 || e.IsEmpty() || int(n) < 2*p {
		return e.Count()
	}
	parts := make([]int64, p)
	var wg sync.WaitGroup
	for i := 0; i < p; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i] = e.countSpan(pivot, chunkBound(n, i, p), chunkBound(n, i+1, p))
		}(i)
	}
	wg.Wait()
	total := int64(0)
	for _, c := range parts {
		total = satAdd(total, c)
	}
	for _, ri := range e.ti.roots {
		if ri != pivot {
			total = satMul(total, e.countSpan(ri, 0, int32(e.NumEntries(ri))))
		}
	}
	return total
}
