// Aggregation on factorised representations: COUNT, SUM, MIN, MAX and
// COUNT DISTINCT, optionally grouped, evaluated in one recursive pass over
// the representation — never over its flattening.
//
// The evaluator follows the algebraic structure of the representation. A
// union is a disjoint union of relations, so partial aggregates of its
// entries combine additively: counts and sums add, minima and maxima
// combine by min/max, distinct-value sets union. A product is a Cartesian
// product of independent relations, so counts multiply and sums
// cross-combine by count-weighting:
//
//	cnt(X × Y)   = cnt(X) · cnt(Y)
//	sum_A(X × Y) = sum_A(X) · cnt(Y) + sum_A(Y) · cnt(X)
//
// (an attribute labels exactly one node, so one of the two sums is zero);
// minima, maxima and distinct sets pass through unchanged from the side
// holding the attribute, because every partial represents at least one
// tuple (the reduction invariant). Grouping keys are collected along the
// way: each partial carries the group-attribute values fixed in its
// subtree, and partials merge keyed by them.
//
// The pass runs in time proportional to the representation size times the
// number of distinct partial groups met per union. When the group-by
// attributes label nodes above all aggregated ones (the layout the query
// compiler arranges with fplan.Lift), every union below the group zone
// holds exactly one partial group and the pass is linear in |E|.
package frep

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// AggFunc selects an aggregate function.
type AggFunc int

// Supported aggregate functions.
const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggCountDistinct
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCountDistinct:
		return "count_distinct"
	}
	return "agg?"
}

// AggSpec is one aggregate to compute: a function and, except for AggCount,
// the attribute it folds over. SUM, MIN and MAX operate on the engine's
// int64 values; on dictionary-encoded string attributes they order by
// dictionary code, not lexicographically.
type AggSpec struct {
	Fn   AggFunc
	Attr relation.Attribute // ignored for AggCount
}

// Label renders the spec as a result-column name, e.g. "sum(Orders.qty)".
func (s AggSpec) Label() string {
	if s.Fn == AggCount {
		return "count"
	}
	return fmt.Sprintf("%s(%s)", s.Fn, s.Attr)
}

// AggRow is one output group: its key values (parallel to the groupBy
// attributes; empty for a global aggregate) and one int64 per AggSpec.
type AggRow struct {
	Key  []relation.Value
	Vals []int64
}

// Aggregate computes the given aggregates over the represented relation,
// grouped by the groupBy attributes, without enumerating tuples. Rows come
// back sorted by group key. An empty representation yields no rows (also
// for global aggregates, where SQL would return one NULL-ish row).
//
// Counts saturate at math.MaxInt64; sums saturate at ±math.MaxInt64 — like
// Count, exact for the paper's workloads and clamped beyond.
func (f *FRep) Aggregate(groupBy []relation.Attribute, specs []AggSpec) ([]AggRow, error) {
	ev, err := newAggEval(f.Tree, groupBy, specs)
	if err != nil {
		return nil, err
	}
	if f.IsEmpty() {
		return nil, nil
	}
	// Subtrees without group attributes need no key bookkeeping: they fold
	// into a single scalar partial (and, without aggregated attributes
	// either, into a bare count). The group zone alone pays for maps.
	scalar := ev.unit()
	var cur map[string]*partial
	for i, u := range f.Roots {
		n := f.Tree.Roots[i]
		if !ev.groupBelow[n] {
			ev.crossScalar(scalar, ev.scalarUnion(u, n, 0))
		} else if m := ev.union(u, n); cur == nil {
			cur = m
		} else {
			cur = ev.cross(cur, m)
		}
	}
	return ev.finishRows(cur, scalar), nil
}

// newAggEval validates the aggregation request against the tree and
// prepares the shared evaluation context (used by both the pointer and the
// encoded evaluator).
func newAggEval(t *ftree.T, groupBy []relation.Attribute, specs []AggSpec) (*aggEval, error) {
	slot := make(map[relation.Attribute]int, len(groupBy))
	for i, a := range groupBy {
		if _, dup := slot[a]; dup {
			return nil, fmt.Errorf("frep: duplicate group-by attribute %q", a)
		}
		if t.NodeOf(a) == nil || t.Hidden.Has(a) {
			return nil, fmt.Errorf("frep: group-by attribute %q not in representation", a)
		}
		slot[a] = i
	}
	for _, s := range specs {
		if s.Fn == AggCount {
			continue
		}
		if t.NodeOf(s.Attr) == nil || t.Hidden.Has(s.Attr) {
			return nil, fmt.Errorf("frep: aggregate attribute %q not in representation", s.Attr)
		}
	}
	ev := &aggEval{slot: slot, nKey: len(groupBy), specs: specs,
		groupBelow: map[*ftree.Node]bool{}, specBelow: map[*ftree.Node]bool{}}
	for _, r := range t.Roots {
		ev.markBelow(r)
	}
	return ev, nil
}

// finishRows folds the top-level scalar into the keyed partials and renders
// the sorted output rows.
func (ev *aggEval) finishRows(cur map[string]*partial, scalar *partial) []AggRow {
	if cur == nil {
		scalar.key = make([]relation.Value, ev.nKey)
		cur = map[string]*partial{pkey(scalar.key): scalar}
	} else if !scalar.isUnit() {
		for _, p := range cur {
			ev.mergeScalar(p, scalar)
		}
	}
	rows := make([]AggRow, 0, len(cur))
	for _, p := range cur {
		row := AggRow{Key: p.key, Vals: make([]int64, len(ev.specs))}
		for i, s := range ev.specs {
			switch s.Fn {
			case AggCount:
				row.Vals[i] = p.cnt
			case AggSum:
				row.Vals[i] = p.st[i].sum
			case AggMin, AggMax:
				row.Vals[i] = p.st[i].m
			case AggCountDistinct:
				row.Vals[i] = int64(len(p.st[i].set))
			}
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		for k := range rows[i].Key {
			if rows[i].Key[k] != rows[j].Key[k] {
				return rows[i].Key[k] < rows[j].Key[k]
			}
		}
		return false
	})
	return rows
}

// aggEval carries the shared evaluation context.
type aggEval struct {
	slot       map[relation.Attribute]int
	nKey       int
	specs      []AggSpec
	groupBelow map[*ftree.Node]bool // node or a descendant holds a group attr
	specBelow  map[*ftree.Node]bool // node or a descendant holds a spec attr
	// Per-depth scratch accumulators for the scalar path: one union total
	// and one entry partial per recursion depth, reused across the whole
	// pass so the hot path allocates nothing. Results are consumed (sets
	// stolen, values copied) before a slot is reused.
	uscratch []*partial
	escratch []*partial
}

// scratchAt returns the reset scratch partial for depth d from pool.
func (ev *aggEval) scratchAt(pool *[]*partial, d int, cnt int64) *partial {
	for len(*pool) <= d {
		*pool = append(*pool, &partial{st: make([]aggState, len(ev.specs))})
	}
	p := (*pool)[d]
	p.cnt = cnt
	for i := range p.st {
		p.st[i] = aggState{}
	}
	return p
}

// markBelow precomputes, per node, whether its subtree touches a group or
// an aggregated attribute.
func (ev *aggEval) markBelow(n *ftree.Node) (g, s bool) {
	for _, a := range n.Attrs {
		if _, ok := ev.slot[a]; ok {
			g = true
		}
	}
	for _, sp := range ev.specs {
		if sp.Fn != AggCount && n.HasAttr(sp.Attr) {
			s = true
		}
	}
	for _, c := range n.Children {
		cg, cs := ev.markBelow(c)
		g = g || cg
		s = s || cs
	}
	ev.groupBelow[n] = g
	ev.specBelow[n] = s
	return g, s
}

// aggState is the running value of one AggSpec inside a partial.
type aggState struct {
	sum  int64
	m    int64 // min or max of the subtree
	mSet bool  // m holds a value (the spec's attribute is in the subtree)
	set  map[relation.Value]struct{}
}

// partial is the aggregate of one group over one subtree: the group-key
// slots fixed so far (slots of attributes outside the subtree stay zero and
// are uniform across a map), the tuple count, and one state per spec. A
// partial always represents at least one tuple.
type partial struct {
	key []relation.Value
	cnt int64
	st  []aggState
}

// isUnit reports whether p is the aggregate of the nullary product: one
// tuple, no key slot fixed, no spec state touched. Crossing with it is the
// identity.
func (p *partial) isUnit() bool {
	if p.cnt != 1 {
		return false
	}
	for _, v := range p.key {
		if v != 0 {
			return false
		}
	}
	for i := range p.st {
		if p.st[i].sum != 0 || p.st[i].mSet || p.st[i].set != nil {
			return false
		}
	}
	return true
}

// pkey packs the group-key slots into a map key. All partials in one map
// fix the same slot set, so packing every slot raw is unambiguous.
func pkey(key []relation.Value) string {
	if len(key) == 0 {
		return ""
	}
	b := make([]byte, 8*len(key))
	for i, v := range key {
		binary.LittleEndian.PutUint64(b[8*i:], uint64(v))
	}
	return string(b)
}

// unit is the scalar aggregate of the nullary product: one tuple, nothing
// touched. (Its key stays nil until it enters a keyed map.)
func (ev *aggEval) unit() *partial {
	return &partial{cnt: 1, st: make([]aggState, len(ev.specs))}
}

// scalarUnion aggregates a subtree containing no group attribute into a
// single partial — no maps, no keys, no allocation (scratch accumulators
// per depth). Subtrees without aggregated attributes either collapse
// further, into the plain count walk. The returned partial lives in the
// depth-d scratch slot; the caller must consume it before the slot is
// reused (the next scalarUnion call at the same depth).
func (ev *aggEval) scalarUnion(u *Union, n *ftree.Node, d int) *partial {
	if !ev.specBelow[n] {
		return ev.scratchAt(&ev.uscratch, d, countUnion(u, n))
	}
	total := ev.scratchAt(&ev.uscratch, d, 0)
	for i := range u.Entries {
		ev.add(total, ev.scalarEntry(&u.Entries[i], n, d))
	}
	return total
}

func (ev *aggEval) scalarEntry(e *Entry, n *ftree.Node, d int) *partial {
	p := ev.scratchAt(&ev.escratch, d, 1)
	for j, c := range e.Children {
		ev.crossScalar(p, ev.scalarUnion(c, n.Children[j], d+1))
	}
	ev.applyNode(p, e.Val, n)
	return p
}

// applyNode extends a partial by the entry's own value for every
// aggregated attribute of the node. The attribute labels only this node,
// so the corresponding spec state is untouched below and the updates are
// first-writes (sum was 0, mSet false, set nil).
func (ev *aggEval) applyNode(p *partial, v relation.Value, n *ftree.Node) {
	for i, s := range ev.specs {
		if s.Fn == AggCount || !n.HasAttr(s.Attr) {
			continue
		}
		st := &p.st[i]
		switch s.Fn {
		case AggSum:
			st.sum = satMulI(int64(v), p.cnt)
		case AggMin, AggMax:
			st.m, st.mSet = int64(v), true
		case AggCountDistinct:
			st.set = map[relation.Value]struct{}{v: {}}
		}
	}
}

// crossScalar folds the independent scalar q into p in place, consuming q
// (q's sets transfer ownership).
func (ev *aggEval) crossScalar(p, q *partial) {
	for i := range p.st {
		a, b := &p.st[i], &q.st[i]
		a.sum = satAddI(satMulI(a.sum, q.cnt), satMulI(b.sum, p.cnt))
		if !a.mSet && b.mSet {
			a.m, a.mSet = b.m, true
		}
		if b.set != nil {
			a.set = b.set // disjoint attributes: a.set was nil
		}
	}
	p.cnt = satMul(p.cnt, q.cnt)
}

// mergeScalar folds the independent scalar s into p in place without
// consuming s: s may be shared across every partial of a map, so its sets
// are cloned.
func (ev *aggEval) mergeScalar(p, s *partial) {
	for i := range p.st {
		a, b := &p.st[i], &s.st[i]
		a.sum = satAddI(satMulI(a.sum, s.cnt), satMulI(b.sum, p.cnt))
		if !a.mSet && b.mSet {
			a.m, a.mSet = b.m, true
		}
		if b.set != nil {
			a.set = cloneSet(b.set)
		}
	}
	p.cnt = satMul(p.cnt, s.cnt)
}

// union aggregates the relation represented by u over node n, keyed by the
// group slots fixed inside the subtree.
func (ev *aggEval) union(u *Union, n *ftree.Node) map[string]*partial {
	out := make(map[string]*partial, 1)
	for i := range u.Entries {
		for k, p := range ev.entry(&u.Entries[i], n) {
			if q, ok := out[k]; ok {
				ev.add(q, p)
			} else {
				out[k] = p
			}
		}
	}
	return out
}

// entry aggregates one union entry of the group zone: the product of its
// child unions (scalar for group-free children, keyed for the rest),
// extended by the entry's own value for the node's group slots and
// aggregated attributes.
func (ev *aggEval) entry(e *Entry, n *ftree.Node) map[string]*partial {
	scalar := ev.unit()
	var cur map[string]*partial
	for j, c := range e.Children {
		cn := n.Children[j]
		if !ev.groupBelow[cn] {
			ev.crossScalar(scalar, ev.scalarUnion(c, cn, 0))
		} else if m := ev.union(c, cn); cur == nil {
			cur = m
		} else {
			cur = ev.cross(cur, m)
		}
	}
	return ev.foldEntry(cur, scalar, e.Val, n)
}

// foldEntry finishes one group-zone entry (shared by the pointer and
// encoded walkers): the top-level scalar merges into the keyed partials,
// then the entry's own value extends every partial's group slots and
// aggregate states, re-keying the map where the node is "hot" (touches a
// key slot or a spec attribute).
func (ev *aggEval) foldEntry(cur map[string]*partial, scalar *partial, v relation.Value, n *ftree.Node) map[string]*partial {
	if cur == nil {
		scalar.key = make([]relation.Value, ev.nKey)
		cur = map[string]*partial{pkey(scalar.key): scalar}
	} else if !scalar.isUnit() {
		for _, p := range cur {
			ev.mergeScalar(p, scalar)
		}
	}
	hot := false
	for _, a := range n.Attrs {
		if _, ok := ev.slot[a]; ok {
			hot = true
		}
	}
	for _, s := range ev.specs {
		if s.Fn != AggCount && n.HasAttr(s.Attr) {
			hot = true
		}
	}
	if !hot {
		return cur
	}
	out := make(map[string]*partial, len(cur))
	for _, p := range cur {
		for _, a := range n.Attrs {
			if si, ok := ev.slot[a]; ok {
				p.key[si] = v
			}
		}
		ev.applyNode(p, v, n)
		k := pkey(p.key)
		if q, ok := out[k]; ok {
			ev.add(q, p)
		} else {
			out[k] = p
		}
	}
	return out
}

func cloneSet(s map[relation.Value]struct{}) map[relation.Value]struct{} {
	out := make(map[relation.Value]struct{}, len(s))
	for v := range s {
		out[v] = struct{}{}
	}
	return out
}

// add merges q into p: the union of two disjoint relations with the same
// group key.
func (ev *aggEval) add(p, q *partial) {
	p.cnt = satAdd(p.cnt, q.cnt)
	for i := range p.st {
		a, b := &p.st[i], &q.st[i]
		a.sum = satAddI(a.sum, b.sum)
		if b.mSet {
			switch {
			case !a.mSet:
				a.m, a.mSet = b.m, true
			case ev.specs[i].Fn == AggMin && b.m < a.m:
				a.m = b.m
			case ev.specs[i].Fn == AggMax && b.m > a.m:
				a.m = b.m
			}
		}
		if b.set != nil {
			if a.set == nil {
				a.set = b.set
			} else {
				for v := range b.set {
					a.set[v] = struct{}{}
				}
			}
		}
	}
}

// cross combines two independent partial maps (a Cartesian product):
// counts multiply, sums cross-combine by count-weighting, min/max and
// distinct sets pass through from the side holding the attribute, and the
// disjoint key slots of both sides merge.
func (ev *aggEval) cross(m1, m2 map[string]*partial) map[string]*partial {
	// Identity fast paths: a lone unit partial (the seed of every product
	// fold, and every subtree below the group zone that holds no aggregated
	// attribute) multiplies counts by 1 and adds nothing.
	if len(m2) == 1 {
		for _, p2 := range m2 {
			if p2.isUnit() {
				return m1
			}
		}
	}
	if len(m1) == 1 {
		for _, p1 := range m1 {
			if p1.isUnit() {
				return m2
			}
		}
	}
	out := make(map[string]*partial, len(m1)*len(m2))
	for _, p1 := range m1 {
		for _, p2 := range m2 {
			np := &partial{
				key: make([]relation.Value, ev.nKey),
				cnt: satMul(p1.cnt, p2.cnt),
				st:  make([]aggState, len(ev.specs)),
			}
			for i := range np.key {
				np.key[i] = p1.key[i] | p2.key[i] // slots are disjoint; unset is 0
			}
			for i := range np.st {
				a, b := &p1.st[i], &p2.st[i]
				np.st[i].sum = satAddI(satMulI(a.sum, p2.cnt), satMulI(b.sum, p1.cnt))
				if a.mSet {
					np.st[i].m, np.st[i].mSet = a.m, true
				} else if b.mSet {
					np.st[i].m, np.st[i].mSet = b.m, true
				}
				// Clone, never share: p1/p2 are crossed against every
				// partial of the other side, and a shared set mutated by a
				// later merge would corrupt sibling groups.
				if a.set != nil {
					np.st[i].set = cloneSet(a.set)
				} else if b.set != nil {
					np.st[i].set = cloneSet(b.set)
				}
			}
			k := pkey(np.key)
			if q, ok := out[k]; ok {
				ev.add(q, np)
			} else {
				out[k] = np
			}
		}
	}
	return out
}

// FlatSize returns Count() times the number of visible attributes — the
// data-element count of the flat representation — saturating at
// math.MaxInt64 like Count itself.
func (f *FRep) FlatSize() int64 {
	return satMul(f.Count(), int64(len(f.Schema())))
}

const minInt64 = -maxInt64 - 1

// satAddI adds signed values, saturating at ±math.MaxInt64 (sums may go
// negative, unlike counts).
func satAddI(a, b int64) int64 {
	s := a + b
	if a > 0 && b > 0 && s < 0 {
		return maxInt64
	}
	if a < 0 && b < 0 && s >= 0 {
		return minInt64
	}
	return s
}

// satMulI multiplies signed values with saturation.
func satMulI(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a == minInt64 || b == minInt64 {
		if a == 1 {
			return b
		}
		if b == 1 {
			return a
		}
		if (a < 0) == (b < 0) {
			return maxInt64
		}
		return minInt64
	}
	r := a * b
	if r/b != a {
		if (a < 0) == (b < 0) {
			return maxInt64
		}
		return minInt64
	}
	return r
}
