package volcano

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fplan"
	"repro/internal/gen"
	"repro/internal/relation"
)

func TestAgainstReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		r := 1 + rng.Intn(3)
		a := r + rng.Intn(4)
		k := rng.Intn(min(a-1, 3) + 1)
		q, err := gen.RandomQuery(rng, r, a, 1+rng.Intn(8), k, gen.Uniform, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.EvaluateFlat()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(q, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Tuples != int64(want.Cardinality()) {
			t.Fatalf("trial %d: volcano %d tuples, reference %d", trial, res.Tuples, want.Cardinality())
		}
	}
}

func TestConstSelectionPushdown(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	q, err := gen.RandomQuery(rng, 2, 4, 12, 1, gen.Zipf, 5)
	if err != nil {
		t.Fatal(err)
	}
	q.Selections = []core.ConstSel{{A: q.Relations[1].Schema[0], Op: fplan.Gt, C: 2}}
	want, err := q.EvaluateFlat()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != int64(want.Cardinality()) {
		t.Fatalf("volcano %d tuples, reference %d", res.Tuples, want.Cardinality())
	}
}

func TestMaxTuplesAborts(t *testing.T) {
	a := relation.New("A", relation.Schema{"X"})
	b := relation.New("B", relation.Schema{"Y"})
	for i := 0; i < 30; i++ {
		a.Append(relation.Value(i))
		b.Append(relation.Value(i))
	}
	q := &core.Query{Relations: []*relation.Relation{a, b}}
	res, err := Evaluate(q, Options{MaxTuples: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Tuples != 7 {
		t.Fatalf("expected abort at 7, got %d (timedOut=%v)", res.Tuples, res.TimedOut)
	}
}

// TestIteratorsDirect exercises the operators without the planner.
func TestIteratorsDirect(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B"})
	r.Append(1, 2)
	r.Append(3, 4)
	s := relation.New("S", relation.Schema{"C"})
	s.Append(2)
	s.Append(4)
	s.Append(9)
	join := NewHashJoin(NewScan(r), NewScan(s), []int{1}, []int{0})
	if err := join.Open(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		tp, ok, err := join.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if tp[1] != tp[2] {
			t.Fatalf("join emitted non-matching tuple %v", tp)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("hash join emitted %d tuples, want 2", n)
	}
	if err := join.Close(); err != nil {
		t.Fatal(err)
	}

	f := NewFilter(NewScan(r), func(tp relation.Tuple) bool { return tp[0] == 1 })
	if err := f.Open(); err != nil {
		t.Fatal(err)
	}
	tp, ok, _ := f.Next()
	if !ok || tp[0] != 1 {
		t.Fatal("filter wrong")
	}
	if _, ok, _ := f.Next(); ok {
		t.Fatal("filter emitted too many tuples")
	}

	cj := NewCrossJoin(NewScan(r), NewScan(s))
	if err := cj.Open(); err != nil {
		t.Fatal(err)
	}
	n = 0
	for {
		_, ok, err := cj.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		n++
	}
	if n != 6 {
		t.Fatalf("cross join emitted %d tuples, want 6", n)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
