// Package volcano is a generic Volcano-style (iterator-model) relational
// engine with hash joins and a greedy left-deep join-order planner. It
// stands in for the off-the-shelf engines of the paper's evaluation (SQLite
// and PostgreSQL, which cannot be linked into an offline, stdlib-only
// build): a fully general engine whose per-tuple iterator and
// materialisation overhead tracks the hand-crafted RDB baseline shifted by
// a constant factor — exactly the role those systems play in Figures 7
// and 8. See DESIGN.md, "Substitutions".
package volcano

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
)

// Iterator is the Volcano operator interface.
type Iterator interface {
	Open() error
	// Next returns the next tuple, or ok=false at end of stream.
	Next() (t relation.Tuple, ok bool, err error)
	Close() error
	Schema() relation.Schema
}

// --------------------------------------------------------------- scan

type scan struct {
	rel *relation.Relation
	pos int
}

// NewScan returns a full-table scan.
func NewScan(r *relation.Relation) Iterator { return &scan{rel: r} }

func (s *scan) Open() error { s.pos = 0; return nil }
func (s *scan) Next() (relation.Tuple, bool, error) {
	if s.pos >= len(s.rel.Tuples) {
		return nil, false, nil
	}
	t := s.rel.Tuples[s.pos]
	s.pos++
	return t, true, nil
}
func (s *scan) Close() error            { return nil }
func (s *scan) Schema() relation.Schema { return s.rel.Schema }

// --------------------------------------------------------------- filter

type filter struct {
	in   Iterator
	pred func(relation.Tuple) bool
}

// NewFilter returns a selection operator.
func NewFilter(in Iterator, pred func(relation.Tuple) bool) Iterator {
	return &filter{in: in, pred: pred}
}

func (f *filter) Open() error { return f.in.Open() }
func (f *filter) Next() (relation.Tuple, bool, error) {
	for {
		t, ok, err := f.in.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		if f.pred(t) {
			return t, true, nil
		}
	}
}
func (f *filter) Close() error            { return f.in.Close() }
func (f *filter) Schema() relation.Schema { return f.in.Schema() }

// --------------------------------------------------------------- hash join

type hashJoin struct {
	left, right         Iterator
	leftCols, rightCols []int
	schema              relation.Schema
	table               map[string][]relation.Tuple
	rightTuple          relation.Tuple
	matches             []relation.Tuple
	matchPos            int
	builtOK             bool
}

// NewHashJoin joins left and right on the given key columns (left builds,
// right probes).
func NewHashJoin(left, right Iterator, leftCols, rightCols []int) Iterator {
	sch := append(left.Schema().Clone(), right.Schema()...)
	return &hashJoin{left: left, right: right, leftCols: leftCols, rightCols: rightCols, schema: sch}
}

func key(t relation.Tuple, cols []int) string {
	b := make([]byte, 0, len(cols)*8)
	for _, c := range cols {
		v := uint64(t[c])
		for i := 0; i < 8; i++ {
			b = append(b, byte(v>>(8*i)))
		}
	}
	return string(b)
}

func (h *hashJoin) Open() error {
	if err := h.left.Open(); err != nil {
		return err
	}
	h.table = map[string][]relation.Tuple{}
	for {
		t, ok, err := h.left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		k := key(t, h.leftCols)
		h.table[k] = append(h.table[k], t.Clone())
	}
	if err := h.left.Close(); err != nil {
		return err
	}
	h.builtOK = true
	h.matches, h.matchPos = nil, 0
	return h.right.Open()
}

func (h *hashJoin) Next() (relation.Tuple, bool, error) {
	for {
		if h.matchPos < len(h.matches) {
			l := h.matches[h.matchPos]
			h.matchPos++
			out := make(relation.Tuple, 0, len(l)+len(h.rightTuple))
			out = append(out, l...)
			out = append(out, h.rightTuple...)
			return out, true, nil
		}
		t, ok, err := h.right.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		h.rightTuple = t
		h.matches = h.table[key(t, h.rightCols)]
		h.matchPos = 0
	}
}

func (h *hashJoin) Close() error            { return h.right.Close() }
func (h *hashJoin) Schema() relation.Schema { return h.schema }

// --------------------------------------------------------------- cross join

type crossJoin struct {
	left, right Iterator
	schema      relation.Schema
	leftTuples  []relation.Tuple
	leftPos     int
	rightTuple  relation.Tuple
	havePivot   bool
}

// NewCrossJoin returns a nested-loop Cartesian product (used when no join
// key connects the inputs).
func NewCrossJoin(left, right Iterator) Iterator {
	return &crossJoin{left: left, right: right,
		schema: append(left.Schema().Clone(), right.Schema()...)}
}

func (c *crossJoin) Open() error {
	if err := c.left.Open(); err != nil {
		return err
	}
	c.leftTuples = nil
	for {
		t, ok, err := c.left.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		c.leftTuples = append(c.leftTuples, t.Clone())
	}
	if err := c.left.Close(); err != nil {
		return err
	}
	c.leftPos = 0
	c.havePivot = false
	return c.right.Open()
}

func (c *crossJoin) Next() (relation.Tuple, bool, error) {
	for {
		if c.havePivot && c.leftPos < len(c.leftTuples) {
			l := c.leftTuples[c.leftPos]
			c.leftPos++
			out := make(relation.Tuple, 0, len(l)+len(c.rightTuple))
			out = append(out, l...)
			out = append(out, c.rightTuple...)
			return out, true, nil
		}
		t, ok, err := c.right.Next()
		if err != nil || !ok {
			return nil, false, err
		}
		c.rightTuple = t
		c.leftPos = 0
		c.havePivot = true
	}
}

func (c *crossJoin) Close() error            { return c.right.Close() }
func (c *crossJoin) Schema() relation.Schema { return c.schema }

// --------------------------------------------------------------- planner

// Result mirrors rdb.Result.
type Result struct {
	Tuples   int64
	Elements int64
	TimedOut bool
	Duration time.Duration
}

// Options mirrors rdb.Options (count-only engine).
type Options struct {
	Timeout   time.Duration
	MaxTuples int64
}

// Evaluate plans and runs the query: constant selections are pushed to the
// scans, joins are ordered greedily (smallest relation first, then any
// relation connected by an equality, smallest first), connected pairs use
// hash joins, disconnected ones a cross join, and residual equalities
// become a final filter.
func Evaluate(q *core.Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("volcano: no relations")
	}
	start := time.Now()

	// Scans with pushed-down constant selections.
	its := make([]Iterator, len(q.Relations))
	for i, r := range q.Relations {
		var it Iterator = NewScan(r)
		var mine []core.ConstSel
		for _, s := range q.Selections {
			if r.Schema.Contains(s.A) {
				mine = append(mine, s)
			}
		}
		if len(mine) > 0 {
			sch := r.Schema
			sels := mine
			it = NewFilter(it, func(t relation.Tuple) bool {
				for _, s := range sels {
					if !s.Match(t[sch.Index(s.A)]) {
						return false
					}
				}
				return true
			})
		}
		its[i] = it
	}

	// Greedy left-deep order: start with the smallest relation; prefer
	// joinable (equality-connected) relations, smallest first.
	remaining := map[int]bool{}
	for i := range its {
		remaining[i] = true
	}
	pickSmallest := func(connected bool, curSchema relation.Schema) int {
		best := -1
		for i := range remaining {
			if connected != isConnected(q, curSchema, q.Relations[i].Schema) {
				continue
			}
			if best < 0 || q.Relations[i].Cardinality() < q.Relations[best].Cardinality() {
				best = i
			}
		}
		return best
	}
	first := -1
	for i := range remaining {
		if first < 0 || q.Relations[i].Cardinality() < q.Relations[first].Cardinality() {
			first = i
		}
	}
	cur := its[first]
	delete(remaining, first)
	usedEq := make([]bool, len(q.Equalities))
	for len(remaining) > 0 {
		next := pickSmallest(true, cur.Schema())
		if next < 0 {
			next = pickSmallest(false, cur.Schema())
		}
		var lc, rc []int
		for ei, e := range q.Equalities {
			if usedEq[ei] {
				continue
			}
			l, r := cur.Schema().Index(e.A), q.Relations[next].Schema.Index(e.B)
			if l < 0 || r < 0 {
				l, r = cur.Schema().Index(e.B), q.Relations[next].Schema.Index(e.A)
			}
			if l >= 0 && r >= 0 {
				lc = append(lc, l)
				rc = append(rc, r)
				usedEq[ei] = true
			}
		}
		if len(lc) > 0 {
			cur = NewHashJoin(cur, its[next], lc, rc)
		} else {
			cur = NewCrossJoin(cur, its[next])
		}
		delete(remaining, next)
	}
	// Residual equalities (both sides in the same input, or closing a
	// cycle) as a final filter.
	var residual []core.Equality
	for ei, e := range q.Equalities {
		if !usedEq[ei] {
			residual = append(residual, e)
		}
	}
	if len(residual) > 0 {
		sch := cur.Schema()
		cur = NewFilter(cur, func(t relation.Tuple) bool {
			for _, e := range residual {
				if t[sch.Index(e.A)] != t[sch.Index(e.B)] {
					return false
				}
			}
			return true
		})
	}

	res := &Result{}
	arity := int64(len(cur.Schema()))
	if err := cur.Open(); err != nil {
		return nil, err
	}
	defer func() { _ = cur.Close() }()
	for {
		_, ok, err := cur.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		res.Tuples++
		if opts.MaxTuples > 0 && res.Tuples >= opts.MaxTuples {
			res.TimedOut = true
			break
		}
		if res.Tuples%4096 == 0 && opts.Timeout > 0 && time.Since(start) > opts.Timeout {
			res.TimedOut = true
			break
		}
	}
	res.Elements = res.Tuples * arity
	res.Duration = time.Since(start)
	return res, nil
}

// isConnected reports whether an equality links attributes of the two
// schemas.
func isConnected(q *core.Query, a, b relation.Schema) bool {
	for _, e := range q.Equalities {
		if (a.Contains(e.A) && b.Contains(e.B)) || (a.Contains(e.B) && b.Contains(e.A)) {
			return true
		}
	}
	return false
}
