package relation

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSchemaIndexContains(t *testing.T) {
	s := Schema{"A", "B", "C"}
	if s.Index("B") != 1 {
		t.Fatalf("Index(B) = %d, want 1", s.Index("B"))
	}
	if s.Index("Z") != -1 {
		t.Fatalf("Index(Z) = %d, want -1", s.Index("Z"))
	}
	if !s.Contains("A") || s.Contains("Z") {
		t.Fatal("Contains misbehaves")
	}
}

func TestSchemaValidate(t *testing.T) {
	if err := (Schema{"A", "B"}).Validate(); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if err := (Schema{"A", "A"}).Validate(); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	if err := (Schema{""}).Validate(); err == nil {
		t.Fatal("empty attribute accepted")
	}
}

func TestSchemaEqualClone(t *testing.T) {
	s := Schema{"A", "B"}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal")
	}
	c[0] = "Z"
	if s.Equal(c) {
		t.Fatal("mutating clone affected equality")
	}
	if s.Equal(Schema{"A"}) {
		t.Fatal("different length schemas equal")
	}
}

func TestAttrSet(t *testing.T) {
	s := NewAttrSet("A", "B")
	o := NewAttrSet("B", "C")
	if !s.Intersects(o) {
		t.Fatal("intersecting sets reported disjoint")
	}
	if s.Intersects(NewAttrSet("X")) {
		t.Fatal("disjoint sets reported intersecting")
	}
	u := s.Union(o)
	for _, a := range []Attribute{"A", "B", "C"} {
		if !u.Has(a) {
			t.Fatalf("union missing %s", a)
		}
	}
	got := u.Sorted()
	want := []Attribute{"A", "B", "C"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted() = %v, want %v", got, want)
		}
	}
	c := s.Clone()
	c.Add("Z")
	if s.Has("Z") {
		t.Fatal("clone shares storage")
	}
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict()
	a := d.Encode("milk")
	b := d.Encode("cheese")
	if a == b {
		t.Fatal("distinct strings share id")
	}
	if d.Encode("milk") != a {
		t.Fatal("re-encoding changed id")
	}
	if d.Decode(a) != "milk" || d.Decode(b) != "cheese" {
		t.Fatal("decode mismatch")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
	if d.Decode(99) != "99" {
		t.Fatalf("unknown value decodes to %q", d.Decode(99))
	}
}

func TestTupleCompare(t *testing.T) {
	cases := []struct {
		a, b Tuple
		want int
	}{
		{Tuple{1, 2}, Tuple{1, 2}, 0},
		{Tuple{1, 2}, Tuple{1, 3}, -1},
		{Tuple{2, 0}, Tuple{1, 9}, 1},
		{Tuple{1}, Tuple{1, 0}, -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func mkRel(t *testing.T, name string, schema Schema, rows ...[]Value) *Relation {
	t.Helper()
	r := New(name, schema)
	for _, row := range rows {
		r.Append(row...)
	}
	return r
}

func TestSortByAndDedup(t *testing.T) {
	r := mkRel(t, "R", Schema{"A", "B"},
		[]Value{2, 1}, []Value{1, 2}, []Value{1, 1}, []Value{1, 2})
	r.SortBy([]Attribute{"B", "A"})
	want := []Tuple{{1, 1}, {2, 1}, {1, 2}, {1, 2}}
	for i := range want {
		if r.Tuples[i].Compare(want[i]) != 0 {
			t.Fatalf("SortBy order wrong at %d: %v", i, r.Tuples)
		}
	}
	r.Dedup()
	if len(r.Tuples) != 3 {
		t.Fatalf("Dedup left %d tuples, want 3", len(r.Tuples))
	}
}

func TestProjectSelectProduct(t *testing.T) {
	r := mkRel(t, "R", Schema{"A", "B"},
		[]Value{1, 1}, []Value{1, 2}, []Value{2, 2})
	p := r.Project([]Attribute{"A"})
	if p.Cardinality() != 2 {
		t.Fatalf("projection cardinality = %d, want 2", p.Cardinality())
	}
	s := r.Select(func(tp Tuple) bool { return tp[0] == 1 })
	if s.Cardinality() != 2 {
		t.Fatalf("selection cardinality = %d, want 2", s.Cardinality())
	}
	o := mkRel(t, "S", Schema{"C"}, []Value{7}, []Value{8})
	pr := r.Product(o)
	if pr.Cardinality() != 6 {
		t.Fatalf("product cardinality = %d, want 6", pr.Cardinality())
	}
	if len(pr.Schema) != 3 {
		t.Fatalf("product schema = %v", pr.Schema)
	}
}

func TestProductDisjointSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("product over overlapping schemas did not panic")
		}
	}()
	r := mkRel(t, "R", Schema{"A"}, []Value{1})
	r.Product(mkRel(t, "S", Schema{"A"}, []Value{1}))
}

func TestEqualIgnoresOrderAndDuplicates(t *testing.T) {
	r := mkRel(t, "R", Schema{"A", "B"}, []Value{1, 2}, []Value{3, 4})
	s := mkRel(t, "S", Schema{"A", "B"}, []Value{3, 4}, []Value{1, 2}, []Value{1, 2})
	if !r.Equal(s) {
		t.Fatal("set-equal relations reported different")
	}
	u := mkRel(t, "U", Schema{"A", "B"}, []Value{1, 2})
	if r.Equal(u) {
		t.Fatal("different relations reported equal")
	}
	v := mkRel(t, "V", Schema{"A", "C"}, []Value{1, 2}, []Value{3, 4})
	if r.Equal(v) {
		t.Fatal("different schemas reported equal")
	}
}

func TestDistinctValues(t *testing.T) {
	r := mkRel(t, "R", Schema{"A", "B"},
		[]Value{3, 0}, []Value{1, 0}, []Value{3, 1})
	got := r.DistinctValues("A")
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("DistinctValues = %v", got)
	}
}

func TestDataElements(t *testing.T) {
	r := mkRel(t, "R", Schema{"A", "B", "C"}, []Value{1, 2, 3}, []Value{4, 5, 6})
	if r.DataElements() != 6 {
		t.Fatalf("DataElements = %d, want 6", r.DataElements())
	}
}

// Property: Dedup yields a sorted duplicate-free tuple list representing the
// same set.
func TestDedupProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New("R", Schema{"A", "B"})
		n := rng.Intn(50)
		for i := 0; i < n; i++ {
			r.Append(Value(rng.Intn(5)), Value(rng.Intn(5)))
		}
		orig := make(map[[2]Value]bool)
		for _, tp := range r.Tuples {
			orig[[2]Value{tp[0], tp[1]}] = true
		}
		r.Dedup()
		if len(r.Tuples) != len(orig) {
			return false
		}
		if !sort.SliceIsSorted(r.Tuples, func(i, j int) bool {
			return r.Tuples[i].Compare(r.Tuples[j]) < 0
		}) {
			return false
		}
		for _, tp := range r.Tuples {
			if !orig[[2]Value{tp[0], tp[1]}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: projection then re-projection onto the same attributes is
// idempotent.
func TestProjectIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New("R", Schema{"A", "B", "C"})
		for i := 0; i < rng.Intn(30); i++ {
			r.Append(Value(rng.Intn(4)), Value(rng.Intn(4)), Value(rng.Intn(4)))
		}
		p1 := r.Project([]Attribute{"B", "A"})
		p2 := p1.Project([]Attribute{"B", "A"})
		return p1.Equal(p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
