package relation

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one row; values are positional against the owning relation's
// Schema.
type Tuple []Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		switch {
		case t[i] < o[i]:
			return -1
		case t[i] > o[i]:
			return 1
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	}
	return 0
}

// Relation is an in-memory bag of tuples with a schema. The engine treats
// relations as sets; Dedup establishes set semantics explicitly.
type Relation struct {
	Name   string
	Schema Schema
	Tuples []Tuple
}

// New creates an empty relation with the given name and schema.
func New(name string, schema Schema) *Relation {
	return &Relation{Name: name, Schema: schema.Clone()}
}

// Append adds a row. The row must match the schema arity.
func (r *Relation) Append(vals ...Value) {
	if len(vals) != len(r.Schema) {
		panic(fmt.Sprintf("relation %s: appending %d values to %d-ary schema", r.Name, len(vals), len(r.Schema)))
	}
	t := make(Tuple, len(vals))
	copy(t, vals)
	r.Tuples = append(r.Tuples, t)
}

// AppendTuple adds a row without copying.
func (r *Relation) AppendTuple(t Tuple) {
	if len(t) != len(r.Schema) {
		panic(fmt.Sprintf("relation %s: appending %d values to %d-ary schema", r.Name, len(t), len(r.Schema)))
	}
	r.Tuples = append(r.Tuples, t)
}

// Cardinality returns the number of tuples.
func (r *Relation) Cardinality() int { return len(r.Tuples) }

// DataElements returns the number of data values stored (tuples x arity),
// the "# of data elements" measure of the paper's Figure 7.
func (r *Relation) DataElements() int { return len(r.Tuples) * len(r.Schema) }

// Clone deep-copies the relation.
func (r *Relation) Clone() *Relation {
	out := New(r.Name, r.Schema)
	out.Tuples = make([]Tuple, len(r.Tuples))
	for i, t := range r.Tuples {
		out.Tuples[i] = t.Clone()
	}
	return out
}

// SortBy sorts tuples lexicographically by the given attribute order. Every
// attribute in order must be in the schema; attributes not listed break ties
// in schema order to make the sort total and deterministic.
func (r *Relation) SortBy(order []Attribute) {
	idx := make([]int, 0, len(order))
	for _, a := range order {
		i := r.Schema.Index(a)
		if i < 0 {
			panic(fmt.Sprintf("relation %s: sort attribute %q not in schema", r.Name, a))
		}
		idx = append(idx, i)
	}
	// Tie-break on remaining columns for determinism.
	seen := make(map[int]bool, len(idx))
	for _, i := range idx {
		seen[i] = true
	}
	for i := range r.Schema {
		if !seen[i] {
			idx = append(idx, i)
		}
	}
	// Already sorted? One read-only pass; SortBy then never writes, so
	// relations pre-sorted in this order can be shared by concurrent
	// readers (prepared-statement snapshots).
	sorted := true
scan:
	for k := 1; k < len(r.Tuples); k++ {
		ta, tb := r.Tuples[k-1], r.Tuples[k]
		for _, i := range idx {
			if ta[i] < tb[i] {
				continue scan
			}
			if ta[i] > tb[i] {
				sorted = false
				break scan
			}
		}
	}
	if sorted {
		return
	}
	sort.Slice(r.Tuples, func(a, b int) bool {
		ta, tb := r.Tuples[a], r.Tuples[b]
		for _, i := range idx {
			if ta[i] != tb[i] {
				return ta[i] < tb[i]
			}
		}
		return false
	})
}

// Sort sorts tuples lexicographically in schema order.
func (r *Relation) Sort() { r.SortBy(nil) }

// Dedup sorts the relation and removes duplicate tuples, establishing set
// semantics.
func (r *Relation) Dedup() {
	r.Sort()
	out := r.Tuples[:0]
	for i, t := range r.Tuples {
		if i == 0 || t.Compare(r.Tuples[i-1]) != 0 {
			out = append(out, t)
		}
	}
	r.Tuples = out
}

// Project returns a new relation with only the given attributes, with
// duplicates removed (set semantics).
func (r *Relation) Project(attrs []Attribute) *Relation {
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j := r.Schema.Index(a)
		if j < 0 {
			panic(fmt.Sprintf("relation %s: project attribute %q not in schema", r.Name, a))
		}
		idx[i] = j
	}
	out := New(r.Name+"_proj", Schema(attrs))
	for _, t := range r.Tuples {
		nt := make(Tuple, len(idx))
		for i, j := range idx {
			nt[i] = t[j]
		}
		out.Tuples = append(out.Tuples, nt)
	}
	out.Dedup()
	return out
}

// Select returns a new relation with the tuples satisfying pred.
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.Name+"_sel", r.Schema)
	for _, t := range r.Tuples {
		if pred(t) {
			out.Tuples = append(out.Tuples, t.Clone())
		}
	}
	return out
}

// Filter is Select without copying tuple storage: the result shares the
// surviving Tuple values with r and preserves their order (so a sorted
// input stays sorted). Use it when the filtered relation is read-only, e.g.
// per-execution parameter filtering of a shared snapshot.
func (r *Relation) Filter(pred func(Tuple) bool) *Relation {
	out := New(r.Name, r.Schema)
	for _, t := range r.Tuples {
		if pred(t) {
			out.Tuples = append(out.Tuples, t)
		}
	}
	return out
}

// Product returns the Cartesian product of r and o. Schemas must be
// disjoint.
func (r *Relation) Product(o *Relation) *Relation {
	for _, a := range o.Schema {
		if r.Schema.Contains(a) {
			panic(fmt.Sprintf("relation: product schemas share attribute %q", a))
		}
	}
	sch := append(r.Schema.Clone(), o.Schema...)
	out := New(r.Name+"x"+o.Name, sch)
	for _, t1 := range r.Tuples {
		for _, t2 := range o.Tuples {
			nt := make(Tuple, 0, len(t1)+len(t2))
			nt = append(nt, t1...)
			nt = append(nt, t2...)
			out.Tuples = append(out.Tuples, nt)
		}
	}
	return out
}

// Equal reports whether the two relations hold the same set of tuples over
// equal schemas (order-insensitive; duplicates ignored).
func (r *Relation) Equal(o *Relation) bool {
	if !r.Schema.Equal(o.Schema) {
		return false
	}
	a, b := r.Clone(), o.Clone()
	a.Dedup()
	b.Dedup()
	if len(a.Tuples) != len(b.Tuples) {
		return false
	}
	for i := range a.Tuples {
		if a.Tuples[i].Compare(b.Tuples[i]) != 0 {
			return false
		}
	}
	return true
}

// DistinctValues returns the sorted distinct values of attribute a.
func (r *Relation) DistinctValues(a Attribute) []Value {
	i := r.Schema.Index(a)
	if i < 0 {
		panic(fmt.Sprintf("relation %s: attribute %q not in schema", r.Name, a))
	}
	set := make(map[Value]bool)
	for _, t := range r.Tuples {
		set[t[i]] = true
	}
	out := make([]Value, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(x, y int) bool { return out[x] < out[y] })
	return out
}

// String renders the relation as an aligned table, mainly for examples and
// debugging.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", r.Name)
	for i, a := range r.Schema {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(a))
	}
	b.WriteString(")\n")
	for _, t := range r.Tuples {
		for i, v := range t {
			if i > 0 {
				b.WriteString("\t")
			}
			fmt.Fprintf(&b, "%d", int64(v))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// StringDict renders the relation using d to decode values.
func (r *Relation) StringDict(d *Dict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(", r.Name)
	for i, a := range r.Schema {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(a))
	}
	b.WriteString(")\n")
	for _, t := range r.Tuples {
		for i, v := range t {
			if i > 0 {
				b.WriteString("\t")
			}
			b.WriteString(d.Decode(v))
		}
		b.WriteString("\n")
	}
	return b.String()
}
