// Package relation provides the flat relational substrate used throughout
// the FDB engine: attributes, schemas, dictionary-encoded values, in-memory
// relations, sorting, and basic relational algebra used by the baselines and
// by tests as ground truth.
//
// The paper's experiments hold each data value in an 8-byte integer; string
// data is supported through per-database dictionary encoding (see Dict), so
// the engine core only ever manipulates Value (int64).
package relation

import (
	"fmt"
	"sort"
	"sync"
)

// Value is a single data value. All engine-internal values are int64; string
// attributes are dictionary-encoded (see Dict). A singleton <A:v> of the
// paper holds exactly one Value.
type Value int64

// Attribute names a column. Attributes are global to a database: two
// relations sharing an attribute name do NOT implicitly join (joins are
// explicit equalities); names are only identifiers.
type Attribute string

// Schema is an ordered list of distinct attributes.
type Schema []Attribute

// Index returns the position of a in s, or -1 if absent.
func (s Schema) Index(a Attribute) int {
	for i, b := range s {
		if a == b {
			return i
		}
	}
	return -1
}

// Contains reports whether a is part of the schema.
func (s Schema) Contains(a Attribute) bool { return s.Index(a) >= 0 }

// Clone returns a copy of the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two schemas have the same attributes in the same
// order.
func (s Schema) Equal(o Schema) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Validate returns an error if the schema has duplicate attributes or empty
// names.
func (s Schema) Validate() error {
	seen := make(map[Attribute]bool, len(s))
	for _, a := range s {
		if a == "" {
			return fmt.Errorf("relation: empty attribute name in schema %v", s)
		}
		if seen[a] {
			return fmt.Errorf("relation: duplicate attribute %q in schema", a)
		}
		seen[a] = true
	}
	return nil
}

// AttrSet is a set of attributes, used for dependency sets and projections.
type AttrSet map[Attribute]bool

// NewAttrSet builds a set from the given attributes.
func NewAttrSet(attrs ...Attribute) AttrSet {
	s := make(AttrSet, len(attrs))
	for _, a := range attrs {
		s[a] = true
	}
	return s
}

// Add inserts a into the set.
func (s AttrSet) Add(a Attribute) { s[a] = true }

// Has reports membership.
func (s AttrSet) Has(a Attribute) bool { return s[a] }

// Union returns a new set with the elements of both.
func (s AttrSet) Union(o AttrSet) AttrSet {
	out := make(AttrSet, len(s)+len(o))
	for a := range s {
		out[a] = true
	}
	for a := range o {
		out[a] = true
	}
	return out
}

// Intersects reports whether the two sets share an element.
func (s AttrSet) Intersects(o AttrSet) bool {
	if len(o) < len(s) {
		s, o = o, s
	}
	for a := range s {
		if o[a] {
			return true
		}
	}
	return false
}

// Clone returns a copy of the set.
func (s AttrSet) Clone() AttrSet {
	out := make(AttrSet, len(s))
	for a := range s {
		out[a] = true
	}
	return out
}

// Sorted returns the set's attributes in lexicographic order.
func (s AttrSet) Sorted() []Attribute {
	out := make([]Attribute, 0, len(s))
	for a := range s {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Dict dictionary-encodes strings as Values. It is the bridge between
// human-readable data (e.g. the grocery example of the paper's Figure 1) and
// the integer-only engine core. A Dict is safe for concurrent use: encoding
// a constant mid-query (e.g. binding a string parameter) may race with
// inserts and with result decoding.
type Dict struct {
	mu   sync.RWMutex
	toID map[string]Value
	toS  []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{toID: make(map[string]Value)}
}

// NewDictFromStrings reconstructs a dictionary from a previously assigned
// code table (code i ↔ strs[i], the layout Snapshot returns): the bridge a
// persisted database uses to reopen with the exact encoding its stored
// values were written under. Duplicate strings are rejected — two codes for
// one string would make Encode nondeterministic.
func NewDictFromStrings(strs []string) (*Dict, error) {
	d := &Dict{toID: make(map[string]Value, len(strs)), toS: append([]string(nil), strs...)}
	for i, s := range strs {
		if _, dup := d.toID[s]; dup {
			return nil, fmt.Errorf("relation: duplicate dictionary string %q", s)
		}
		d.toID[s] = Value(i)
	}
	return d, nil
}

// Encode returns the Value for s, assigning a fresh id on first use.
func (d *Dict) Encode(s string) Value {
	d.mu.RLock()
	v, ok := d.toID[s]
	d.mu.RUnlock()
	if ok {
		return v
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if v, ok := d.toID[s]; ok {
		return v
	}
	v = Value(len(d.toS))
	d.toID[s] = v
	d.toS = append(d.toS, s)
	return v
}

// Lookup returns the Value previously assigned to s without assigning one
// on a miss — the read-path counterpart of Encode. Pure read paths (query
// constants, parameter binds) must use Lookup: minting a code for a string
// that only ever appears in a comparison would mutate shared state during
// snapshot-pinned reads.
func (d *Dict) Lookup(s string) (Value, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, ok := d.toID[s]
	return v, ok
}

// Decode returns the string for v, or a numeric rendering if v was never
// assigned by this dictionary.
func (d *Dict) Decode(v Value) string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if v >= 0 && int(v) < len(d.toS) {
		return d.toS[v]
	}
	return fmt.Sprintf("%d", int64(v))
}

// Snapshot returns a read-only view of the assigned strings, indexed by
// code. Codes are append-only and existing entries never change, so the
// view stays valid (if incomplete) under concurrent Encodes — it lets hot
// comparison loops avoid a lock round-trip per value.
func (d *Dict) Snapshot() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.toS[:len(d.toS):len(d.toS)]
}

// Len returns the number of distinct encoded strings.
func (d *Dict) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.toS)
}
