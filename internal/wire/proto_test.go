package wire

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

func randSpec(rng *rand.Rand) *Spec {
	sp := NewSpec()
	for i := 0; i < rng.Intn(3)+1; i++ {
		sp.From = append(sp.From, fmt.Sprintf("R%d", i))
	}
	for i := 0; i < rng.Intn(3); i++ {
		sp.Eqs = append(sp.Eqs, [2]string{fmt.Sprintf("R%d.a", i), fmt.Sprintf("R%d.a", i+1)})
	}
	for i := 0; i < rng.Intn(4); i++ {
		switch rng.Intn(3) {
		case 0:
			sp.Sels = append(sp.Sels, SelInt("R0.a", byte(rng.Intn(6)), rng.Int63()-rng.Int63()))
		case 1:
			sp.Sels = append(sp.Sels, SelStr("R0.b", byte(rng.Intn(6)), "v"))
		default:
			sp.Sels = append(sp.Sels, SelParam("R0.c", byte(rng.Intn(6)), fmt.Sprintf("p%d", i)))
		}
	}
	if rng.Intn(2) == 0 {
		sp.Project = []string{"R0.a"}
	}
	if rng.Intn(2) == 0 {
		sp.GroupBy = []string{"R0.a"}
		sp.Aggs = []AggSpec{{Fn: AggCount}, {Fn: AggSum, Attr: "R0.b"}}
	}
	if rng.Intn(2) == 0 {
		sp.OrderBy = []OrderKey{{Attr: "R0.a", Desc: rng.Intn(2) == 0}}
	}
	sp.Limit = int64(rng.Intn(100) - 1)
	sp.Offset = int64(rng.Intn(10))
	sp.Distinct = rng.Intn(2) == 0
	return &sp
}

// TestSpecRoundTrip drives random specs through the codec.
func TestSpecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		in := randSpec(rng)
		out, err := DecodeSpec(EncodeSpec(in))
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("spec round trip mismatch:\nin  %+v\nout %+v", in, out)
		}
	}
}

// TestMessageRoundTrips covers every other message type.
func TestMessageRoundTrips(t *testing.T) {
	pr := &PrepareResp{Handle: 9, Params: []string{"a", "b"}, IsAgg: true}
	if got, err := DecodePrepareResp(EncodePrepareResp(pr)); err != nil || !reflect.DeepEqual(pr, got) {
		t.Fatalf("PrepareResp: %v / %+v", err, got)
	}
	er := &ExecReq{Handle: 3, Snap: 5, MaxRows: 100, Args: []Arg{{Name: "x", Val: Int(-7)}, {Name: "s", Val: Str("q")}}}
	if got, err := DecodeExecReq(EncodeExecReq(er)); err != nil || !reflect.DeepEqual(er, got) {
		t.Fatalf("ExecReq: %v / %+v", err, got)
	}
	rs := &Rows{Schema: []string{"a", "b"}, Rows: [][]string{{"1", "x"}, {"2", "y"}}}
	if got, err := DecodeRows(EncodeRows(rs)); err != nil || !reflect.DeepEqual(rs, got) {
		t.Fatalf("Rows: %v / %+v", err, got)
	}
	sn := &SnapResp{ID: 4, Ver: 1 << 40}
	if got, err := DecodeSnapResp(EncodeSnapResp(sn)); err != nil || !reflect.DeepEqual(sn, got) {
		t.Fatalf("SnapResp: %v / %+v", err, got)
	}
	wr := &WriteReq{Rel: "R", KeyCols: 2, Rows: [][]Value{{Int(1), Str("a")}, {Int(2), Str("b")}}}
	if got, err := DecodeWriteReq(EncodeWriteReq(wr)); err != nil || !reflect.DeepEqual(wr, got) {
		t.Fatalf("WriteReq: %v / %+v", err, got)
	}
	wp := &WriteResp{Ver: 77}
	if got, err := DecodeWriteResp(EncodeWriteResp(wp)); err != nil || !reflect.DeepEqual(wp, got) {
		t.Fatalf("WriteResp: %v / %+v", err, got)
	}
	e := DecodeError(EncodeError(CodeOverload, "busy"))
	if e.Code != CodeOverload || e.Msg != "busy" {
		t.Fatalf("Error: %+v", e)
	}
	if v, err := DecodeU32(EncodeU32(12345)); err != nil || v != 12345 {
		t.Fatalf("U32: %v / %d", err, v)
	}
}

// TestDecodeRejectsTruncationAndPadding: every strict decoder must reject
// every proper prefix of a valid body, and a body with trailing bytes.
func TestDecodeRejectsTruncationAndPadding(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	bodies := map[string][]byte{
		"spec":        EncodeSpec(randSpec(rng)),
		"prepareResp": EncodePrepareResp(&PrepareResp{Handle: 1, Params: []string{"p"}}),
		"execReq":     EncodeExecReq(&ExecReq{Handle: 1, Args: []Arg{{Name: "x", Val: Int(9)}}}),
		"rows":        EncodeRows(&Rows{Schema: []string{"a"}, Rows: [][]string{{"1"}}}),
		"snapResp":    EncodeSnapResp(&SnapResp{ID: 1, Ver: 2}),
		"writeReq":    EncodeWriteReq(&WriteReq{Rel: "R", Rows: [][]Value{{Int(1)}}}),
		"writeResp":   EncodeWriteResp(&WriteResp{Ver: 3}),
		"u32":         EncodeU32(8),
	}
	decode := func(name string, b []byte) error {
		switch name {
		case "spec":
			_, err := DecodeSpec(b)
			return err
		case "prepareResp":
			_, err := DecodePrepareResp(b)
			return err
		case "execReq":
			_, err := DecodeExecReq(b)
			return err
		case "rows":
			_, err := DecodeRows(b)
			return err
		case "snapResp":
			_, err := DecodeSnapResp(b)
			return err
		case "writeReq":
			_, err := DecodeWriteReq(b)
			return err
		case "writeResp":
			_, err := DecodeWriteResp(b)
			return err
		default:
			_, err := DecodeU32(b)
			return err
		}
	}
	for name, body := range bodies {
		if err := decode(name, body); err != nil {
			t.Fatalf("%s: valid body rejected: %v", name, err)
		}
		for cut := 0; cut < len(body); cut++ {
			if err := decode(name, body[:cut]); err == nil {
				t.Fatalf("%s: accepted truncation at %d/%d", name, cut, len(body))
			}
		}
		if err := decode(name, append(append([]byte{}, body...), 0)); err == nil {
			t.Fatalf("%s: accepted trailing byte", name)
		}
	}
}

// TestDecodeHostileCount: a huge element count in a tiny body must fail
// fast instead of driving a giant allocation.
func TestDecodeHostileCount(t *testing.T) {
	w := &wbuf{}
	w.str("R")
	w.u32(0)          // key cols
	w.u32(0xFFFFFFF0) // row count far beyond the body
	if _, err := DecodeWriteReq(w.b); err == nil {
		t.Fatal("hostile row count accepted")
	}
	w = &wbuf{}
	w.u32(0xFFFFFFF0) // schema length
	if _, err := DecodeRows(w.b); err == nil {
		t.Fatal("hostile schema count accepted")
	}
}

// TestSpecClausesRejectsUnknownCodes: unknown operator and aggregate codes
// must error rather than alias to a real one.
func TestSpecClausesRejectsUnknownCodes(t *testing.T) {
	sp := NewSpec("R")
	sp.Sels = []Sel{SelInt("R.a", 99, 1)}
	if _, err := sp.Clauses(); err == nil {
		t.Fatal("unknown operator accepted")
	}
	sp = NewSpec("R")
	sp.Sels = []Sel{{Attr: "R.a", Op: OpEQ, Kind: 42}}
	if _, err := sp.Clauses(); err == nil {
		t.Fatal("unknown selection kind accepted")
	}
	sp = NewSpec("R")
	sp.Aggs = []AggSpec{{Fn: 99}}
	if _, err := sp.Clauses(); err == nil {
		t.Fatal("unknown aggregate accepted")
	}
}
