package wire

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	fdb "repro"
)

// newTestServer starts a retailer-seeded server on a free port and tears it
// down with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *fdb.DB, string) {
	t.Helper()
	db := fdb.New()
	if err := SeedRetailer(db, 42, 1); err != nil {
		t.Fatalf("seed: %v", err)
	}
	s := NewServer(db, opts)
	addr, err := s.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, db, addr.String()
}

func dialTest(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { _ = cl.Close() })
	return cl
}

func nativeArgs(args []Arg) []fdb.NamedArg {
	out := make([]fdb.NamedArg, len(args))
	for i, a := range args {
		out[i] = fdb.Arg(a.Name, a.Val.Native())
	}
	return out
}

// libRows executes a wire spec through the library API against db and
// renders it the way the server does — the differential reference.
func libRows(t *testing.T, db *fdb.DB, sp *Spec, args []Arg) *Rows {
	t.Helper()
	clauses, err := sp.Clauses()
	if err != nil {
		t.Fatalf("clauses: %v", err)
	}
	st, err := db.PrepareCached(clauses...)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	if sp.IsAgg() {
		res, err := st.ExecAgg(nativeArgs(args)...)
		if err != nil {
			t.Fatalf("exec agg: %v", err)
		}
		return &Rows{Schema: res.Schema(), Rows: res.Rows(0)}
	}
	res, err := st.Exec(nativeArgs(args)...)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	return &Rows{Schema: res.Schema(), Rows: res.Rows(0)}
}

func sameRows(a, b *Rows) error {
	if !reflect.DeepEqual(a.Schema, b.Schema) {
		return fmt.Errorf("schema %v != %v", a.Schema, b.Schema)
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Errorf("%d rows != %d rows", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if !reflect.DeepEqual(a.Rows[i], b.Rows[i]) {
			return fmt.Errorf("row %d: %v != %v", i, a.Rows[i], b.Rows[i])
		}
	}
	return nil
}

// TestServerDifferential runs the whole retailer read pool over the wire
// and checks every response against library execution on the same database.
func TestServerDifferential(t *testing.T) {
	_, db, addr := newTestServer(t, Options{})
	cl := dialTest(t, addr)
	for _, q := range RetailerQueries() {
		rng := rand.New(rand.NewSource(7))
		rs, err := cl.Prepare(&q.Spec)
		if err != nil {
			t.Fatalf("%s: prepare: %v", q.Name, err)
		}
		if rs.IsAgg != q.Spec.IsAgg() {
			t.Fatalf("%s: IsAgg %v, want %v", q.Name, rs.IsAgg, q.Spec.IsAgg())
		}
		for run := 0; run < 3; run++ {
			args := q.Args(rng)
			got, err := rs.Exec(0, 0, args...)
			if err != nil {
				t.Fatalf("%s run %d: exec: %v", q.Name, run, err)
			}
			want := libRows(t, db, &q.Spec, args)
			if err := sameRows(got, want); err != nil {
				t.Fatalf("%s run %d: wire result diverges from library: %v", q.Name, run, err)
			}
		}
		if err := rs.Close(); err != nil {
			t.Fatalf("%s: close stmt: %v", q.Name, err)
		}
	}
}

// TestPrepareSharesPlanCache: two connections preparing the same shape hit
// the shared plan cache instead of recompiling.
func TestPrepareSharesPlanCache(t *testing.T) {
	s, _, addr := newTestServer(t, Options{})
	q := RetailerQueries()[0]
	c1 := dialTest(t, addr)
	if _, err := c1.Prepare(&q.Spec); err != nil {
		t.Fatal(err)
	}
	before := s.db.CacheStats()
	c2 := dialTest(t, addr)
	if _, err := c2.Prepare(&q.Spec); err != nil {
		t.Fatal(err)
	}
	after := s.db.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("second connection's prepare missed the plan cache: %+v -> %+v", before, after)
	}
}

// TestPipelinedOutOfOrder holds the first request at its execution point
// and proves the second, sent later on the same connection, completes
// first — then releases the first and checks both results.
func TestPipelinedOutOfOrder(t *testing.T) {
	s, db, addr := newTestServer(t, Options{})
	gate := make(chan struct{})
	var gated uint32 = 2 // request id of the first exec (id 1 is the Prepare)
	s.hook = func(verb byte, id uint32) {
		if id == gated {
			<-gate
		}
	}
	cl := dialTest(t, addr)
	q := RetailerQueries()[5] // total_count: no params
	rs, err := cl.Prepare(&q.Spec)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := rs.Start(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := rs.Start(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The second request must complete while the first is still held.
	got2, err := WaitRows(p2)
	if err != nil {
		t.Fatalf("pipelined second request: %v", err)
	}
	close(gate)
	got1, err := WaitRows(p1)
	if err != nil {
		t.Fatalf("released first request: %v", err)
	}
	want := libRows(t, db, &q.Spec, nil)
	if err := sameRows(got1, want); err != nil {
		t.Fatal(err)
	}
	if err := sameRows(got2, want); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotPinning: a pinned snapshot keeps serving the version it
// pinned across live writes; release invalidates the id; a closing
// connection releases its snapshots.
func TestSnapshotPinning(t *testing.T) {
	_, db, addr := newTestServer(t, Options{})
	cl := dialTest(t, addr)
	q := RetailerQueries()[5] // total_count
	rs, err := cl.Prepare(&q.Spec)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := cl.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Ver != db.Version() {
		t.Fatalf("snapshot pinned version %d, database at %d", snap.Ver, db.Version())
	}
	pinnedBefore, err := rs.Exec(snap.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Write through the wire: new orders for an item that certainly joins.
	if _, err := cl.Insert("Orders", [][]Value{{Int(100001), Int(1)}, {Int(100002), Int(2)}}); err != nil {
		t.Fatal(err)
	}
	live, err := rs.Exec(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(live.Rows, pinnedBefore.Rows) {
		t.Fatal("live count did not move after insert")
	}
	pinnedAfter, err := rs.Exec(snap.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameRows(pinnedBefore, pinnedAfter); err != nil {
		t.Fatalf("pinned read not repeatable across a live write: %v", err)
	}
	if db.OpenSnapshots() != 1 {
		t.Fatalf("OpenSnapshots = %d, want 1", db.OpenSnapshots())
	}
	if err := cl.Release(snap.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Exec(snap.ID, 0); asCode(err) != CodeUnknown {
		t.Fatalf("exec on a released snapshot: want CodeUnknown, got %v", err)
	}
	if db.OpenSnapshots() != 0 {
		t.Fatalf("OpenSnapshots = %d after release, want 0", db.OpenSnapshots())
	}
	// A dying connection releases what it pinned.
	c2 := dialTest(t, addr)
	if _, err := c2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	_ = c2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for db.OpenSnapshots() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("closed connection leaked %d snapshots", db.OpenSnapshots())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func asCode(err error) byte {
	if we, ok := err.(*Error); ok {
		return we.Code
	}
	return 0
}

// TestWritesOverWire mirrors wire writes against library writes on a
// second database and checks the relation contents agree.
func TestWritesOverWire(t *testing.T) {
	_, db, addr := newTestServer(t, Options{})
	mirror := fdb.New()
	if err := SeedRetailer(mirror, 42, 1); err != nil {
		t.Fatal(err)
	}
	cl := dialTest(t, addr)
	ins := [][]Value{{Int(90001), Int(3)}, {Int(90002), Int(4)}}
	wr, err := cl.Insert("Orders", ins)
	if err != nil {
		t.Fatal(err)
	}
	if wr.Ver != db.Version() {
		t.Fatalf("insert reported version %d, database at %d", wr.Ver, db.Version())
	}
	if err := mirror.InsertBatch("Orders", [][]interface{}{{int64(90001), int64(3)}, {int64(90002), int64(4)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Upsert("Orders", 1, [][]Value{{Int(90001), Int(9)}}); err != nil {
		t.Fatal(err)
	}
	if err := mirror.UpsertBatch("Orders", 1, [][]interface{}{{int64(90001), int64(9)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Delete("Orders", [][]Value{{Int(90002), Int(4)}}); err != nil {
		t.Fatal(err)
	}
	if err := mirror.DeleteBatch("Orders", [][]interface{}{{int64(90002), int64(4)}}); err != nil {
		t.Fatal(err)
	}
	sp := NewSpec("Orders")
	sp.Sels = []Sel{SelInt("Orders.oid", OpGE, 90000)}
	sp.OrderBy = []OrderKey{{Attr: "Orders.oid"}, {Attr: "Orders.item"}}
	rs, err := cl.Prepare(&sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rs.Exec(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := libRows(t, mirror, &sp, nil)
	if err := sameRows(got, want); err != nil {
		t.Fatalf("wire writes diverge from library writes: %v", err)
	}
	// Write to a relation that does not exist fails loudly.
	if _, err := cl.Insert("Nope", [][]Value{{Int(1)}}); asCode(err) != CodeQuery {
		t.Fatalf("insert into unknown relation: want CodeQuery, got %v", err)
	}
}

// TestAdmissionControl: with one execution slot and a one-deep queue, a
// third concurrent request is shed with CodeOverload and counted.
func TestAdmissionControl(t *testing.T) {
	s, _, addr := newTestServer(t, Options{MaxInflight: 1, Queue: 1})
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	s.hook = func(verb byte, id uint32) {
		if verb == VerbExec || verb == VerbExecAgg {
			started <- struct{}{}
			<-gate
		}
	}
	defer close(gate)
	q := RetailerQueries()[5]
	c1, c2, c3 := dialTest(t, addr), dialTest(t, addr), dialTest(t, addr)
	rs1, err := c1.Prepare(&q.Spec)
	if err != nil {
		t.Fatal(err)
	}
	rs2, err := c2.Prepare(&q.Spec)
	if err != nil {
		t.Fatal(err)
	}
	rs3, err := c3.Prepare(&q.Spec)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := rs1.Start(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the slot is now held behind the gate
	p2, err := rs2.Start(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "request queued", func() bool { return s.m.queued.Load() == 1 })
	p3, err := rs3.Start(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WaitRows(p3); asCode(err) != CodeOverload {
		t.Fatalf("third request: want CodeOverload, got %v", err)
	}
	gate <- struct{}{} // release the first
	if _, err := WaitRows(p1); err != nil {
		t.Fatalf("first request after release: %v", err)
	}
	<-started // the queued request took the slot
	gate <- struct{}{}
	if _, err := WaitRows(p2); err != nil {
		t.Fatalf("queued request after release: %v", err)
	}
	if got := s.m.shed.Load(); got != 1 {
		t.Fatalf("shed counter = %d, want 1", got)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestConnLimit: a connection beyond MaxConns is answered with one
// CodeOverload frame and closed.
func TestConnLimit(t *testing.T) {
	_, _, addr := newTestServer(t, Options{MaxConns: 1})
	c1 := dialTest(t, addr)
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	_ = raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	f, err := ReadFrame(raw, 0)
	if err != nil {
		t.Fatalf("read refusal frame: %v", err)
	}
	if f.Kind != RespErr {
		t.Fatalf("refusal kind 0x%02x, want RespErr", f.Kind)
	}
	if e := DecodeError(f.Body); e.Code != CodeOverload {
		t.Fatalf("refusal code %d, want CodeOverload", e.Code)
	}
	if _, err := ReadFrame(raw, 0); err == nil {
		t.Fatal("refused connection stayed open")
	}
}

// TestRequestTimeout: a request whose deadline has passed is answered with
// CodeTimeout and counted.
func TestRequestTimeout(t *testing.T) {
	s, _, addr := newTestServer(t, Options{ReqTimeout: time.Nanosecond})
	cl := dialTest(t, addr)
	q := RetailerQueries()[5]
	rs, err := cl.Prepare(&q.Spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Exec(0, 0); asCode(err) != CodeTimeout {
		t.Fatalf("want CodeTimeout, got %v", err)
	}
	if got := s.m.timeouts.Load(); got != 1 {
		t.Fatalf("timeout counter = %d, want 1", got)
	}
}

// TestErrorPaths: stale handles, verb mismatch and unknown verbs all fail
// loudly with the right code, and none of them kill the connection.
func TestErrorPaths(t *testing.T) {
	_, _, addr := newTestServer(t, Options{})
	cl := dialTest(t, addr)
	q := RetailerQueries()[5] // aggregate
	rs, err := cl.Prepare(&q.Spec)
	if err != nil {
		t.Fatal(err)
	}
	// Unknown statement handle.
	if _, err := cl.do(VerbExec, EncodeExecReq(&ExecReq{Handle: 999})); asCode(err) != CodeUnknown {
		t.Fatalf("unknown handle: want CodeUnknown, got %v", err)
	}
	// Aggregate statement driven through the tuple verb.
	if _, err := cl.do(VerbExec, EncodeExecReq(&ExecReq{Handle: rs.Handle})); asCode(err) != CodeQuery {
		t.Fatalf("verb mismatch: want CodeQuery, got %v", err)
	}
	// Unknown snapshot id.
	if _, err := rs.Exec(888, 0); asCode(err) != CodeUnknown {
		t.Fatalf("unknown snapshot: want CodeUnknown, got %v", err)
	}
	// Malformed body.
	if _, err := cl.do(VerbExec, []byte{1, 2}); asCode(err) != CodeBadRequest {
		t.Fatalf("malformed body: want CodeBadRequest, got %v", err)
	}
	// Unknown verb.
	if _, err := cl.do(0x7F, nil); asCode(err) != CodeBadRequest {
		t.Fatalf("unknown verb: want CodeBadRequest, got %v", err)
	}
	// Closing a handle twice reports the staleness.
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rs.Close(); asCode(err) != CodeUnknown {
		t.Fatalf("double close: want CodeUnknown, got %v", err)
	}
	// Unprepared spec errors come back as CodeQuery.
	bad := NewSpec("Nope")
	if _, err := cl.Prepare(&bad); asCode(err) != CodeQuery {
		t.Fatalf("prepare of unknown relation: want CodeQuery, got %v", err)
	}
	// The connection survived all of it.
	if err := cl.Ping(); err != nil {
		t.Fatalf("connection died on error paths: %v", err)
	}
}

// TestDrainAndReconnect: Shutdown lets the held in-flight request finish,
// answers new requests with CodeDraining, then closes connections; a new
// server on a fresh port accepts the reconnect.
func TestDrainAndReconnect(t *testing.T) {
	s, db, addr := newTestServer(t, Options{})
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	var gated uint32 = 2
	s.hook = func(verb byte, id uint32) {
		if id == gated {
			started <- struct{}{}
			<-gate
		}
	}
	cl := dialTest(t, addr)
	q := RetailerQueries()[5]
	rs, err := cl.Prepare(&q.Spec)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := rs.Start(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, "draining flag", func() bool { return s.draining.Load() })
	// A new request on the draining connection is refused but answered.
	p2, err := rs.Start(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WaitRows(p2); asCode(err) != CodeDraining {
		t.Fatalf("request during drain: want CodeDraining, got %v", err)
	}
	close(gate)
	// The held request still completes with its result.
	if _, err := WaitRows(p1); err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The drained listener is gone; a new server takes over and the client
	// reconnects.
	if err := cl.Ping(); err == nil {
		t.Fatal("drained connection still answers")
	}
	s2 := NewServer(db, Options{})
	addr2, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
	}()
	cl2 := dialTest(t, addr2.String())
	rs2, err := cl2.Prepare(&q.Spec)
	if err != nil {
		t.Fatalf("prepare after reconnect: %v", err)
	}
	if _, err := rs2.Exec(0, 0); err != nil {
		t.Fatalf("exec after reconnect: %v", err)
	}
}

// TestStats: the STATS verb reports the traffic that actually happened.
func TestStats(t *testing.T) {
	_, _, addr := newTestServer(t, Options{})
	cl := dialTest(t, addr)
	q := RetailerQueries()[0]
	rng := rand.New(rand.NewSource(1))
	rs, err := cl.Prepare(&q.Spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := rs.Exec(0, 0, q.Args(rng)...); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Insert("Orders", [][]Value{{Int(70001), Int(5)}}); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests < 12 {
		t.Fatalf("Requests = %d, want >= 12", st.Requests)
	}
	if st.Conns != 1 || st.TotalConns != 1 {
		t.Fatalf("Conns = %d TotalConns = %d, want 1/1", st.Conns, st.TotalConns)
	}
	if st.ReadP50us <= 0 || st.ReadP99us < st.ReadP50us {
		t.Fatalf("read percentiles implausible: p50=%v p99=%v", st.ReadP50us, st.ReadP99us)
	}
	if st.WriteP99us <= 0 {
		t.Fatalf("write p99 missing: %v", st.WriteP99us)
	}
	if st.CacheEntries == 0 {
		t.Fatal("plan cache empty after prepares")
	}
	if st.Version == 0 {
		t.Fatal("write version missing")
	}
	if st.PlansGreedy == 0 {
		t.Fatalf("planner tier counters missing from STATS: %+v", st)
	}
}

// TestLatRing covers the percentile edge cases directly.
func TestLatRing(t *testing.T) {
	var r latRing
	if p50, p99 := r.percentiles(); p50 != 0 || p99 != 0 {
		t.Fatalf("empty ring: %d/%d", p50, p99)
	}
	for i := int64(1); i <= 100; i++ {
		r.observe(i)
	}
	p50, p99 := r.percentiles()
	if p50 < 45 || p50 > 55 || p99 < 95 || p99 > 100 {
		t.Fatalf("p50=%d p99=%d out of range", p50, p99)
	}
	// Overflow the ring; only the newest window is retained.
	for i := int64(0); i < ringSize+500; i++ {
		r.observe(1000)
	}
	p50, p99 = r.percentiles()
	if p50 != 1000 || p99 != 1000 {
		t.Fatalf("after overflow: p50=%d p99=%d, want 1000/1000", p50, p99)
	}
}
