package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	fdb "repro"
)

// Options configures a Server. The zero value picks serving defaults.
type Options struct {
	// MaxConns caps concurrently open connections; a connection beyond the
	// cap is answered with one CodeOverload error frame and closed.
	// Default 256.
	MaxConns int
	// MaxInflight caps concurrently executing requests across all
	// connections (the shared execution slots). Default 64.
	MaxInflight int
	// Queue bounds the admission queue: requests waiting for an execution
	// slot. A request arriving with the queue full is shed immediately
	// with CodeOverload. Default 256.
	Queue int
	// ReqTimeout bounds one request's execution; an expired request is
	// answered with CodeTimeout. Default 10s.
	ReqTimeout time.Duration
	// MaxFrame caps one frame's payload. Default MaxFrame (16 MiB).
	MaxFrame int
}

func (o Options) withDefaults() Options {
	if o.MaxConns <= 0 {
		o.MaxConns = 256
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 64
	}
	if o.Queue <= 0 {
		o.Queue = 256
	}
	if o.ReqTimeout <= 0 {
		o.ReqTimeout = 10 * time.Second
	}
	if o.MaxFrame <= 0 {
		o.MaxFrame = MaxFrame
	}
	return o
}

// Server speaks the wire protocol over a listener, fronting one database.
// Every connection shares the database's plan cache (PrepareCached), so a
// thousand connections preparing the same query shape compile it once; each
// connection owns its statement handles and pinned snapshots, released when
// it closes. Requests admit through a bounded queue onto shared execution
// slots — overload sheds loudly instead of queueing without bound — and a
// graceful Shutdown drains in-flight requests before closing connections.
type Server struct {
	db   *fdb.DB
	opts Options
	m    *metrics

	ln       net.Listener
	mu       sync.Mutex
	conns    map[*conn]struct{}
	draining atomic.Bool
	slots    chan struct{}
	wg       sync.WaitGroup

	// hook, when non-nil, runs in the request goroutine before an admitted
	// request executes — the deterministic scheduling point the pipelining
	// and timeout tests block on. Never set outside tests.
	hook func(verb byte, id uint32)
}

// NewServer wraps a database in a wire server.
func NewServer(db *fdb.DB, opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		db:    db,
		opts:  opts,
		m:     &metrics{start: time.Now()},
		conns: map[*conn]struct{}{},
		slots: make(chan struct{}, opts.MaxInflight),
	}
}

// Listen binds addr (e.g. "127.0.0.1:4321"; port 0 picks a free port) and
// starts accepting connections in the background. The bound address is
// returned for clients to dial.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

// Addr returns the listener address (nil before Listen).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return // listener closed (Shutdown) or fatal accept error
		}
		s.m.totalConns.Add(1)
		if s.draining.Load() {
			s.refuse(c, CodeDraining, "server draining")
			continue
		}
		s.mu.Lock()
		over := len(s.conns) >= s.opts.MaxConns
		var cc *conn
		if !over {
			cc = newConn(s, c)
			s.conns[cc] = struct{}{}
		}
		s.mu.Unlock()
		if over {
			s.m.shedConns.Add(1)
			s.refuse(c, CodeOverload, fmt.Sprintf("connection limit (%d) reached", s.opts.MaxConns))
			continue
		}
		s.m.conns.Add(1)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			cc.serve()
		}()
	}
}

// refuse answers a connection the server will not serve with one error
// frame and closes it.
func (s *Server) refuse(c net.Conn, code byte, msg string) {
	_ = c.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_ = WriteFrame(c, Frame{Kind: RespErr, ID: 0, Body: EncodeError(code, msg)})
	_ = c.Close()
}

func (s *Server) dropConn(c *conn) {
	s.mu.Lock()
	if _, ok := s.conns[c]; ok {
		delete(s.conns, c)
		s.m.conns.Add(-1)
	}
	s.mu.Unlock()
}

// admit acquires an execution slot, waiting in the bounded admission queue
// when all slots are busy. It returns a release closure, or a protocol
// error when the queue is full (shed) or the connection is going away.
func (s *Server) admit(c *conn) (func(), *Error) {
	select {
	case s.slots <- struct{}{}:
	default:
		if s.m.queued.Add(1) > int64(s.opts.Queue) {
			s.m.queued.Add(-1)
			s.m.shed.Add(1)
			return nil, &Error{Code: CodeOverload, Msg: fmt.Sprintf("admission queue full (%d waiting, %d slots)", s.opts.Queue, s.opts.MaxInflight)}
		}
		select {
		case s.slots <- struct{}{}:
			s.m.queued.Add(-1)
		case <-c.done:
			s.m.queued.Add(-1)
			return nil, &Error{Code: CodeDraining, Msg: "connection closing"}
		}
	}
	s.m.inflight.Add(1)
	return func() {
		s.m.inflight.Add(-1)
		<-s.slots
	}, nil
}

// Shutdown gracefully drains the server: stop accepting, answer new
// requests on existing connections with CodeDraining, let in-flight
// requests complete, then close every connection (releasing its pinned
// snapshots). When ctx expires first, remaining connections are closed
// forcibly. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.mu.Lock()
	ln := s.ln
	open := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		open = append(open, c)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range open {
		go c.drain()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		for c := range s.conns {
			c.close()
		}
		s.mu.Unlock()
		<-done
		return ctx.Err()
	}
}

// Stats assembles the server and engine metrics the STATS verb reports.
func (s *Server) Stats() *Stats {
	now := time.Now()
	cs := s.db.CacheStats()
	st := &Stats{
		UptimeSec:     now.Sub(s.m.start).Seconds(),
		Conns:         s.m.conns.Load(),
		TotalConns:    s.m.totalConns.Load(),
		ShedConns:     s.m.shedConns.Load(),
		Requests:      s.m.requests.Load(),
		Errors:        s.m.errors.Load(),
		Shed:          s.m.shed.Load(),
		Timeouts:      s.m.timeouts.Load(),
		Inflight:      s.m.inflight.Load(),
		Queued:        s.m.queued.Load(),
		QPS1:          s.m.window.rate(now, 1),
		QPS10:         s.m.window.rate(now, 10),
		CacheHits:     cs.Hits,
		CacheMisses:   cs.Misses,
		CacheEntries:  cs.Entries,
		OpenSnapshots: s.db.OpenSnapshots(),
		Version:       s.db.Version(),

		PlansGreedy:    cs.GreedyPlans,
		PlanEscalated:  cs.Escalations,
		PlanFallbacks:  cs.BudgetFallbacks,
		PlanPromotions: cs.Promotions,
	}
	if total := cs.Hits + cs.Misses; total > 0 {
		st.CacheHitRate = float64(cs.Hits) / float64(total)
	}
	rp50, rp99 := s.m.reads.percentiles()
	wp50, wp99 := s.m.writes.percentiles()
	st.ReadP50us = float64(rp50) / 1e3
	st.ReadP99us = float64(rp99) / 1e3
	st.WriteP50us = float64(wp50) / 1e3
	st.WriteP99us = float64(wp99) / 1e3
	return st
}

// isTimeout reports whether the request error is the per-request deadline.
func isTimeout(err error) bool {
	return errors.Is(err, context.DeadlineExceeded)
}
