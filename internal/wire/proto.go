package wire

import (
	"encoding/binary"
	"fmt"

	fdb "repro"
)

// Protocol error codes carried by RespErr bodies. Codes are wire-stable;
// the message is advisory text.
const (
	CodeBadRequest = byte(1) // malformed frame body or unknown verb
	CodeQuery      = byte(2) // the engine rejected or failed the request
	CodeOverload   = byte(3) // admission queue full: request shed
	CodeTimeout    = byte(4) // per-request timeout exceeded
	CodeDraining   = byte(5) // server shutting down; no new requests
	CodeUnknown    = byte(6) // stale statement or snapshot handle
)

// Error is a server-reported protocol error.
type Error struct {
	Code byte
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("wire: [%d] %s", e.Code, e.Msg) }

// Comparison operators, wire-stable (independent of the engine's internal
// numbering).
const (
	OpEQ = byte(0)
	OpNE = byte(1)
	OpLT = byte(2)
	OpLE = byte(3)
	OpGT = byte(4)
	OpGE = byte(5)
)

var opToFDB = map[byte]fdb.CmpOp{
	OpEQ: fdb.EQ, OpNE: fdb.NE, OpLT: fdb.LT, OpLE: fdb.LE, OpGT: fdb.GT, OpGE: fdb.GE,
}

// Aggregate functions, wire-stable.
const (
	AggCount         = byte(0)
	AggSum           = byte(1)
	AggMin           = byte(2)
	AggMax           = byte(3)
	AggCountDistinct = byte(4)
)

var aggToFDB = map[byte]fdb.AggFn{
	AggCount: fdb.Count, AggSum: fdb.Sum, AggMin: fdb.Min, AggMax: fdb.Max,
	AggCountDistinct: fdb.CountDistinct,
}

// Value is one wire-encoded datum: an int64 or a string (strings are
// dictionary-encoded server-side).
type Value struct {
	IsStr bool
	Int   int64
	Str   string
}

// Int wraps an integer as a wire Value.
func Int(v int64) Value { return Value{Int: v} }

// Str wraps a string as a wire Value.
func Str(s string) Value { return Value{IsStr: true, Str: s} }

// Native converts the wire value to the engine's interface{} form.
func (v Value) Native() interface{} {
	if v.IsStr {
		return v.Str
	}
	return v.Int
}

// Sel value kinds.
const (
	selInt   = byte(0)
	selStr   = byte(1)
	selParam = byte(2)
)

// Sel is one selection of a Spec: attr θ constant, or attr θ $param bound
// at Exec time.
type Sel struct {
	Attr string
	Op   byte
	Kind byte // selInt | selStr | selParam
	Int  int64
	Str  string // constant string (selStr) or parameter name (selParam)
}

// SelInt builds attr θ int.
func SelInt(attr string, op byte, v int64) Sel { return Sel{Attr: attr, Op: op, Kind: selInt, Int: v} }

// SelStr builds attr θ string.
func SelStr(attr string, op byte, s string) Sel {
	return Sel{Attr: attr, Op: op, Kind: selStr, Str: s}
}

// SelParam builds attr θ $name, bound per Exec.
func SelParam(attr string, op byte, name string) Sel {
	return Sel{Attr: attr, Op: op, Kind: selParam, Str: name}
}

// AggSpec is one aggregate of a Spec.
type AggSpec struct {
	Fn   byte
	Attr string // empty for AggCount
}

// OrderKey is one ORDER BY key of a Spec.
type OrderKey struct {
	Attr string
	Desc bool
}

// Spec is the wire form of a query: the structured equivalent of the
// library's clause list, serialisable and database-independent. The zero
// value with From set is a full select of the named relations' join.
type Spec struct {
	From     []string
	Eqs      [][2]string
	Sels     []Sel
	Project  []string // nil: keep all attributes
	GroupBy  []string
	Aggs     []AggSpec
	OrderBy  []OrderKey
	Limit    int64 // -1: none
	Offset   int64
	Distinct bool
}

// NewSpec returns a Spec joining the named relations, with no limit.
func NewSpec(from ...string) Spec { return Spec{From: from, Limit: -1} }

// IsAgg reports whether the spec compiles to an aggregate statement
// (ExecAgg rather than Exec).
func (sp *Spec) IsAgg() bool { return len(sp.Aggs) > 0 }

// Clauses converts the spec to the library's clause list. Unknown operator
// or aggregate codes error rather than silently aliasing.
func (sp *Spec) Clauses() ([]fdb.Clause, error) {
	var cs []fdb.Clause
	if len(sp.From) > 0 {
		cs = append(cs, fdb.From(sp.From...))
	}
	for _, e := range sp.Eqs {
		cs = append(cs, fdb.Eq(e[0], e[1]))
	}
	for _, s := range sp.Sels {
		op, ok := opToFDB[s.Op]
		if !ok {
			return nil, fmt.Errorf("wire: unknown comparison operator %d", s.Op)
		}
		switch s.Kind {
		case selInt:
			cs = append(cs, fdb.Cmp(s.Attr, op, s.Int))
		case selStr:
			cs = append(cs, fdb.Cmp(s.Attr, op, s.Str))
		case selParam:
			cs = append(cs, fdb.Cmp(s.Attr, op, fdb.Param(s.Str)))
		default:
			return nil, fmt.Errorf("wire: unknown selection kind %d", s.Kind)
		}
	}
	if sp.Project != nil {
		cs = append(cs, fdb.Project(sp.Project...))
	}
	if len(sp.GroupBy) > 0 {
		cs = append(cs, fdb.GroupBy(sp.GroupBy...))
	}
	for _, a := range sp.Aggs {
		fn, ok := aggToFDB[a.Fn]
		if !ok {
			return nil, fmt.Errorf("wire: unknown aggregate function %d", a.Fn)
		}
		cs = append(cs, fdb.Agg(fn, a.Attr))
	}
	if len(sp.OrderBy) > 0 {
		keys := make([]interface{}, len(sp.OrderBy))
		for i, k := range sp.OrderBy {
			if k.Desc {
				keys[i] = fdb.Desc(k.Attr)
			} else {
				keys[i] = fdb.Asc(k.Attr)
			}
		}
		cs = append(cs, fdb.OrderBy(keys...))
	}
	if sp.Offset > 0 {
		cs = append(cs, fdb.Offset(int(sp.Offset)))
	}
	if sp.Limit >= 0 {
		cs = append(cs, fdb.Limit(int(sp.Limit)))
	}
	if sp.Distinct {
		cs = append(cs, fdb.Distinct())
	}
	return cs, nil
}

// Arg is one named parameter binding of an Exec request.
type Arg struct {
	Name string
	Val  Value
}

// ----------------------------------------------------------------------------
// Body encoding. A writer appends to a byte slice; the reader checks bounds
// on every read and the decode entry points reject trailing bytes, so a
// truncated or padded body is an error, never a silent partial decode.

type wbuf struct{ b []byte }

func (w *wbuf) u8(v byte)    { w.b = append(w.b, v) }
func (w *wbuf) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wbuf) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wbuf) i64(v int64)  { w.u64(uint64(v)) }
func (w *wbuf) bool(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *wbuf) str(s string) {
	w.u32(uint32(len(s)))
	w.b = append(w.b, s...)
}
func (w *wbuf) val(v Value) {
	if v.IsStr {
		w.u8(1)
		w.str(v.Str)
	} else {
		w.u8(0)
		w.i64(v.Int)
	}
}

var errTruncated = fmt.Errorf("wire: truncated message body")

type rbuf struct {
	b   []byte
	off int
	err error
}

func (r *rbuf) fail() { r.err = errTruncated }

func (r *rbuf) u8() byte {
	if r.err != nil || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *rbuf) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *rbuf) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *rbuf) i64() int64 { return int64(r.u64()) }

func (r *rbuf) bool() bool { return r.u8() != 0 }

func (r *rbuf) str() string {
	n := int(r.u32())
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.fail()
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

func (r *rbuf) val() Value {
	if r.u8() != 0 {
		return Value{IsStr: true, Str: r.str()}
	}
	return Value{Int: r.i64()}
}

// count reads a u32 element count and bounds it by the remaining bytes at
// min bytes per element, so a hostile count cannot drive a huge allocation.
func (r *rbuf) count(minPer int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if minPer < 1 {
		minPer = 1
	}
	if n < 0 || n > (len(r.b)-r.off)/minPer {
		r.fail()
		return 0
	}
	return n
}

// done errors unless the body was consumed exactly.
func (r *rbuf) done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after message body", len(r.b)-r.off)
	}
	return nil
}

func (w *wbuf) strs(ss []string) {
	w.u32(uint32(len(ss)))
	for _, s := range ss {
		w.str(s)
	}
}

func (r *rbuf) strs() []string {
	n := r.count(4)
	if n == 0 {
		return nil
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, r.str())
	}
	if r.err != nil {
		return nil
	}
	return out
}

// EncodeSpec serialises a query spec.
func EncodeSpec(sp *Spec) []byte {
	w := &wbuf{}
	w.strs(sp.From)
	w.u32(uint32(len(sp.Eqs)))
	for _, e := range sp.Eqs {
		w.str(e[0])
		w.str(e[1])
	}
	w.u32(uint32(len(sp.Sels)))
	for _, s := range sp.Sels {
		w.str(s.Attr)
		w.u8(s.Op)
		w.u8(s.Kind)
		if s.Kind == selInt {
			w.i64(s.Int)
		} else {
			w.str(s.Str)
		}
	}
	w.bool(sp.Project != nil)
	if sp.Project != nil {
		w.strs(sp.Project)
	}
	w.strs(sp.GroupBy)
	w.u32(uint32(len(sp.Aggs)))
	for _, a := range sp.Aggs {
		w.u8(a.Fn)
		w.str(a.Attr)
	}
	w.u32(uint32(len(sp.OrderBy)))
	for _, k := range sp.OrderBy {
		w.str(k.Attr)
		w.bool(k.Desc)
	}
	w.i64(sp.Limit)
	w.i64(sp.Offset)
	w.bool(sp.Distinct)
	return w.b
}

// DecodeSpec deserialises a query spec, rejecting truncated and padded
// bodies.
func DecodeSpec(b []byte) (*Spec, error) {
	r := &rbuf{b: b}
	sp := &Spec{}
	sp.From = r.strs()
	n := r.count(8)
	for i := 0; i < n; i++ {
		sp.Eqs = append(sp.Eqs, [2]string{r.str(), r.str()})
	}
	n = r.count(6)
	for i := 0; i < n; i++ {
		s := Sel{Attr: r.str(), Op: r.u8(), Kind: r.u8()}
		if s.Kind == selInt {
			s.Int = r.i64()
		} else {
			s.Str = r.str()
		}
		sp.Sels = append(sp.Sels, s)
	}
	if r.bool() {
		sp.Project = r.strs()
		if sp.Project == nil {
			sp.Project = []string{}
		}
	}
	sp.GroupBy = r.strs()
	n = r.count(5)
	for i := 0; i < n; i++ {
		sp.Aggs = append(sp.Aggs, AggSpec{Fn: r.u8(), Attr: r.str()})
	}
	n = r.count(5)
	for i := 0; i < n; i++ {
		sp.OrderBy = append(sp.OrderBy, OrderKey{Attr: r.str(), Desc: r.bool()})
	}
	sp.Limit = r.i64()
	sp.Offset = r.i64()
	sp.Distinct = r.bool()
	if err := r.done(); err != nil {
		return nil, err
	}
	return sp, nil
}

// PrepareResp is the response to VerbPrepare.
type PrepareResp struct {
	Handle uint32
	Params []string // parameter names, declaration order
	IsAgg  bool     // true: execute with VerbExecAgg
}

// EncodePrepareResp serialises a prepare response.
func EncodePrepareResp(p *PrepareResp) []byte {
	w := &wbuf{}
	w.u32(p.Handle)
	w.strs(p.Params)
	w.bool(p.IsAgg)
	return w.b
}

// DecodePrepareResp deserialises a prepare response.
func DecodePrepareResp(b []byte) (*PrepareResp, error) {
	r := &rbuf{b: b}
	p := &PrepareResp{Handle: r.u32(), Params: r.strs(), IsAgg: r.bool()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return p, nil
}

// ExecReq is the body of VerbExec and VerbExecAgg: the statement handle, an
// optional pinned snapshot (0 = live data), a row cap (0 = all rows) and
// the parameter bindings.
type ExecReq struct {
	Handle  uint32
	Snap    uint32
	MaxRows uint32
	Args    []Arg
}

// EncodeExecReq serialises an exec request.
func EncodeExecReq(e *ExecReq) []byte {
	w := &wbuf{}
	w.u32(e.Handle)
	w.u32(e.Snap)
	w.u32(e.MaxRows)
	w.u32(uint32(len(e.Args)))
	for _, a := range e.Args {
		w.str(a.Name)
		w.val(a.Val)
	}
	return w.b
}

// DecodeExecReq deserialises an exec request.
func DecodeExecReq(b []byte) (*ExecReq, error) {
	r := &rbuf{b: b}
	e := &ExecReq{Handle: r.u32(), Snap: r.u32(), MaxRows: r.u32()}
	n := r.count(6)
	for i := 0; i < n; i++ {
		e.Args = append(e.Args, Arg{Name: r.str(), Val: r.val()})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return e, nil
}

// Rows is the response body of VerbExec and VerbExecAgg: the result schema
// and the dictionary-decoded rows, rendered exactly as the library API's
// Rows surface renders them (the differential harness compares the two
// byte for byte).
type Rows struct {
	Schema []string
	Rows   [][]string
}

// EncodeRows serialises a result.
func EncodeRows(rs *Rows) []byte {
	w := &wbuf{}
	w.strs(rs.Schema)
	w.u32(uint32(len(rs.Rows)))
	for _, row := range rs.Rows {
		w.strs(row)
	}
	return w.b
}

// DecodeRows deserialises a result.
func DecodeRows(b []byte) (*Rows, error) {
	r := &rbuf{b: b}
	rs := &Rows{Schema: r.strs()}
	n := r.count(4)
	for i := 0; i < n; i++ {
		rs.Rows = append(rs.Rows, r.strs())
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return rs, nil
}

// SnapResp is the response to VerbSnapshot.
type SnapResp struct {
	ID  uint32
	Ver uint64 // database write version the snapshot pins
}

// EncodeSnapResp serialises a snapshot response.
func EncodeSnapResp(s *SnapResp) []byte {
	w := &wbuf{}
	w.u32(s.ID)
	w.u64(s.Ver)
	return w.b
}

// DecodeSnapResp deserialises a snapshot response.
func DecodeSnapResp(b []byte) (*SnapResp, error) {
	r := &rbuf{b: b}
	s := &SnapResp{ID: r.u32(), Ver: r.u64()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return s, nil
}

// WriteReq is the body of the write verbs: the relation, the key-prefix
// width (upserts only) and the tuple batch. The whole batch commits as one
// version bump, mirroring the library's Batch forms.
type WriteReq struct {
	Rel     string
	KeyCols uint32
	Rows    [][]Value
}

// EncodeWriteReq serialises a write request.
func EncodeWriteReq(wr *WriteReq) []byte {
	w := &wbuf{}
	w.str(wr.Rel)
	w.u32(wr.KeyCols)
	w.u32(uint32(len(wr.Rows)))
	for _, row := range wr.Rows {
		w.u32(uint32(len(row)))
		for _, v := range row {
			w.val(v)
		}
	}
	return w.b
}

// DecodeWriteReq deserialises a write request.
func DecodeWriteReq(b []byte) (*WriteReq, error) {
	r := &rbuf{b: b}
	wr := &WriteReq{Rel: r.str(), KeyCols: r.u32()}
	n := r.count(4)
	for i := 0; i < n; i++ {
		m := r.count(5) // a value is at least tag + empty string (5 bytes)
		row := make([]Value, 0, m)
		for j := 0; j < m; j++ {
			row = append(row, r.val())
		}
		wr.Rows = append(wr.Rows, row)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return wr, nil
}

// WriteResp is the response to the write verbs: the database write version
// after the committed batch.
type WriteResp struct {
	Ver uint64
}

// EncodeWriteResp serialises a write response.
func EncodeWriteResp(wr *WriteResp) []byte {
	w := &wbuf{}
	w.u64(wr.Ver)
	return w.b
}

// DecodeWriteResp deserialises a write response.
func DecodeWriteResp(b []byte) (*WriteResp, error) {
	r := &rbuf{b: b}
	wr := &WriteResp{Ver: r.u64()}
	if err := r.done(); err != nil {
		return nil, err
	}
	return wr, nil
}

// EncodeError serialises a RespErr body.
func EncodeError(code byte, msg string) []byte {
	w := &wbuf{}
	w.u8(code)
	w.str(msg)
	return w.b
}

// DecodeError deserialises a RespErr body. A malformed error body is
// itself reported as an error value, never dropped.
func DecodeError(b []byte) *Error {
	r := &rbuf{b: b}
	e := &Error{Code: r.u8(), Msg: r.str()}
	if err := r.done(); err != nil {
		return &Error{Code: CodeBadRequest, Msg: "malformed error body"}
	}
	return e
}

// EncodeU32 serialises the one-u32 body shared by VerbCloseStmt and
// VerbRelease (the handle or snapshot id).
func EncodeU32(v uint32) []byte {
	w := &wbuf{}
	w.u32(v)
	return w.b
}

// DecodeU32 deserialises a one-u32 body.
func DecodeU32(b []byte) (uint32, error) {
	r := &rbuf{b: b}
	v := r.u32()
	if err := r.done(); err != nil {
		return 0, err
	}
	return v, nil
}
