package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// TestFrameRoundTrip drives random frames through the codec.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 300; i++ {
		body := make([]byte, rng.Intn(512))
		rng.Read(body)
		in := Frame{Kind: byte(rng.Intn(256)), ID: rng.Uint32(), Body: body}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, in); err != nil {
			t.Fatalf("write: %v", err)
		}
		out, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if out.Kind != in.Kind || out.ID != in.ID || !bytes.Equal(out.Body, in.Body) {
			t.Fatalf("round trip mismatch: wrote %+v read %+v", in, out)
		}
		if buf.Len() != 0 {
			t.Fatalf("%d bytes left after one frame", buf.Len())
		}
	}
}

// TestFrameBackToBack checks several frames decode in order from one stream.
func TestFrameBackToBack(t *testing.T) {
	var buf bytes.Buffer
	for i := 0; i < 10; i++ {
		if err := WriteFrame(&buf, Frame{Kind: VerbPing, ID: uint32(i), Body: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		f, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatal(err)
		}
		if f.ID != uint32(i) || f.Body[0] != byte(i) {
			t.Fatalf("frame %d decoded as %+v", i, f)
		}
	}
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("want io.EOF after last frame, got %v", err)
	}
}

// TestFrameRejectsShortLength rejects a length prefix below the fixed header.
func TestFrameRejectsShortLength(t *testing.T) {
	for _, n := range []uint32{0, 1, 4} {
		var raw [4]byte
		binary.BigEndian.PutUint32(raw[:], n)
		_, err := ReadFrame(bytes.NewReader(raw[:]), 0)
		if err == nil || !strings.Contains(err.Error(), "shorter than") {
			t.Fatalf("length %d: want short-frame error, got %v", n, err)
		}
	}
}

// TestFrameRejectsOversized rejects a hostile length prefix before allocating.
func TestFrameRejectsOversized(t *testing.T) {
	var raw [4]byte
	binary.BigEndian.PutUint32(raw[:], 0xFFFFFFF0)
	_, err := ReadFrame(bytes.NewReader(raw[:]), 0)
	if err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want oversize error, got %v", err)
	}
	// A caller-supplied cap is honoured too.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Kind: VerbPing, ID: 1, Body: make([]byte, 100)}); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrame(&buf, 64); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("want cap error, got %v", err)
	}
	// And the writer refuses to emit an unreadable frame.
	if err := WriteFrame(io.Discard, Frame{Body: make([]byte, MaxFrame+1)}); err == nil {
		t.Fatal("want write-side oversize error")
	}
}

// TestFrameTruncated distinguishes a clean EOF from a mid-frame cut.
func TestFrameTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, Frame{Kind: VerbPing, ID: 7, Body: []byte("hello")}); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	if _, err := ReadFrame(bytes.NewReader(nil), 0); err != io.EOF {
		t.Fatalf("empty stream: want io.EOF, got %v", err)
	}
	for cut := 1; cut < len(whole); cut++ {
		_, err := ReadFrame(bytes.NewReader(whole[:cut]), 0)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: want io.ErrUnexpectedEOF, got %v", cut, err)
		}
	}
}

// TestFrameGarbage feeds random bytes: every outcome must be an error or a
// structurally valid frame, never a panic or a huge allocation.
func TestFrameGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		raw := make([]byte, rng.Intn(64))
		rng.Read(raw)
		f, err := ReadFrame(bytes.NewReader(raw), 1<<16)
		if err == nil && frameHeader+len(f.Body) > 1<<16 {
			t.Fatalf("garbage decoded beyond the cap: %d body bytes", len(f.Body))
		}
	}
}
