package wire

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latRing is a bounded reservoir of recent request latencies (nanoseconds):
// the newest ringSize samples, cheap to append under load, percentile-
// queried on demand by the STATS verb.
type latRing struct {
	mu  sync.Mutex
	buf [ringSize]int64
	n   int // total samples ever observed
}

const ringSize = 4096

func (r *latRing) observe(ns int64) {
	r.mu.Lock()
	r.buf[r.n%ringSize] = ns
	r.n++
	r.mu.Unlock()
}

// percentiles returns the p50 and p99 (nearest-rank) of the retained
// window, in nanoseconds; zeros when no samples were observed.
func (r *latRing) percentiles() (p50, p99 int64) {
	r.mu.Lock()
	n := r.n
	if n > ringSize {
		n = ringSize
	}
	s := make([]int64, n)
	copy(s, r.buf[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0, 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(0.50*float64(n-1))], s[int(0.99*float64(n-1))]
}

// qpsWindow tracks per-second request buckets for a sliding-window QPS.
type qpsWindow struct {
	mu      sync.Mutex
	seconds [qpsBuckets]int64 // unix second each bucket covers
	counts  [qpsBuckets]int64
}

const qpsBuckets = 16

func (w *qpsWindow) observe(now time.Time) {
	sec := now.Unix()
	i := int(sec % qpsBuckets)
	w.mu.Lock()
	if w.seconds[i] != sec {
		w.seconds[i] = sec
		w.counts[i] = 0
	}
	w.counts[i]++
	w.mu.Unlock()
}

// rate returns requests/second averaged over the last `window` complete
// seconds (the current partial second is excluded).
func (w *qpsWindow) rate(now time.Time, window int) float64 {
	if window < 1 {
		window = 1
	}
	if window > qpsBuckets-1 {
		window = qpsBuckets - 1
	}
	sec := now.Unix()
	var total int64
	w.mu.Lock()
	for s := sec - int64(window); s < sec; s++ {
		i := int(s % qpsBuckets)
		if w.seconds[i] == s {
			total += w.counts[i]
		}
	}
	w.mu.Unlock()
	return float64(total) / float64(window)
}

// metrics aggregates the server-side counters the STATS verb reports.
type metrics struct {
	start time.Time

	conns      atomic.Int64 // currently open connections
	totalConns atomic.Int64 // connections ever accepted
	shedConns  atomic.Int64 // connections refused at the connection limit

	requests atomic.Int64 // requests completed (any verb)
	errors   atomic.Int64 // requests answered with RespErr (any code)
	shed     atomic.Int64 // requests shed by the admission queue
	timeouts atomic.Int64 // requests failed by the per-request timeout
	inflight atomic.Int64 // requests currently executing
	queued   atomic.Int64 // requests waiting in the admission queue

	reads  latRing // Exec/ExecAgg latencies
	writes latRing // Insert/Delete/Upsert latencies
	window qpsWindow
}

// Stats is the STATS verb's response body (JSON-encoded on the wire, so
// fields can grow without a protocol bump).
type Stats struct {
	UptimeSec float64 `json:"uptime_sec"`

	Conns      int64 `json:"conns"`
	TotalConns int64 `json:"total_conns"`
	ShedConns  int64 `json:"shed_conns"`

	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Shed     int64 `json:"shed"`
	Timeouts int64 `json:"timeouts"`
	Inflight int64 `json:"inflight"`
	Queued   int64 `json:"queued"`

	QPS1  float64 `json:"qps_1s"`  // over the last complete second
	QPS10 float64 `json:"qps_10s"` // over the last 10 complete seconds

	ReadP50us  float64 `json:"read_p50_us"`
	ReadP99us  float64 `json:"read_p99_us"`
	WriteP50us float64 `json:"write_p50_us"`
	WriteP99us float64 `json:"write_p99_us"`

	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheEntries  int     `json:"cache_entries"`
	CacheHitRate  float64 `json:"cache_hit_rate"`
	OpenSnapshots int     `json:"open_snapshots"`
	Version       uint64  `json:"version"` // database write version

	// Planner tier counters: plans served by the greedy heuristic,
	// escalations to the exhaustive search, exhaustive searches that fell
	// back to the greedy tree on budget exhaustion, and background plan
	// promotions that swapped a hot greedy plan for a cheaper one.
	PlansGreedy    uint64 `json:"plans_greedy"`
	PlanEscalated  uint64 `json:"plan_escalated"`
	PlanFallbacks  uint64 `json:"plan_fallbacks"`
	PlanPromotions uint64 `json:"plan_promotions"`
}
