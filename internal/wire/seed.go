package wire

import (
	"math/rand"

	fdb "repro"
)

// SeedRetailer loads the deterministic retailer workload (the shape of the
// paper's dispatching example, scaled): Orders(oid, item), Stock(location,
// item), Disp(dispatcher, location). The server preloads it and the load
// harness rebuilds it in-process from the same seed, so every wire response
// can be checked byte for byte against library execution.
func SeedRetailer(db *fdb.DB, seed int64, scale int) error {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	load := func(name string, attrs []string, n int, row func(i int) []interface{}) error {
		if err := db.Create(name, attrs...); err != nil {
			return err
		}
		rows := make([][]interface{}, n)
		for i := 0; i < n; i++ {
			rows[i] = row(i)
		}
		return db.InsertBatch(name, rows)
	}
	if err := load("Orders", []string{"oid", "item"}, 500*scale, func(i int) []interface{} {
		return []interface{}{int64(i + 1), int64(rng.Intn(50) + 1)}
	}); err != nil {
		return err
	}
	if err := load("Stock", []string{"location", "item"}, 200*scale, func(i int) []interface{} {
		return []interface{}{int64(rng.Intn(40) + 1), int64(rng.Intn(50) + 1)}
	}); err != nil {
		return err
	}
	return load("Disp", []string{"dispatcher", "location"}, 100*scale, func(i int) []interface{} {
		return []interface{}{int64(rng.Intn(120) + 1), int64(rng.Intn(40) + 1)}
	})
}

// retailerJoin is the three-way join every retailer load query starts from.
func retailerJoin() Spec {
	sp := NewSpec("Orders", "Stock", "Disp")
	sp.Eqs = [][2]string{
		{"Orders.item", "Stock.item"},
		{"Stock.location", "Disp.location"},
	}
	return sp
}

// LoadQuery is one query of the load harness's read pool: a wire spec plus
// a deterministic argument generator for its parameters.
type LoadQuery struct {
	Name string
	Spec Spec
	Args func(rng *rand.Rand) []Arg
}

// RetailerQueries is the deterministic read pool over the retailer
// workload: a mix of parameterised point/range selections, ordered top-k,
// DISTINCT projection and grouped aggregates, exercising both Exec and
// ExecAgg. The pool is fixed so the harness and its differential reference
// prepare the same statements in the same order.
func RetailerQueries() []LoadQuery {
	noArgs := func(*rand.Rand) []Arg { return nil }

	itemPoint := retailerJoin()
	itemPoint.Sels = []Sel{SelParam("Orders.item", OpEQ, "item")}
	itemPoint.Project = []string{"Orders.oid", "Stock.location", "Disp.dispatcher"}
	itemPoint.OrderBy = []OrderKey{{Attr: "Orders.oid"}, {Attr: "Stock.location"}, {Attr: "Disp.dispatcher"}}
	itemPoint.Limit = 64

	locRange := retailerJoin()
	locRange.Sels = []Sel{SelParam("Stock.location", OpLE, "loc")}
	locRange.Project = []string{"Stock.location", "Orders.item"}
	locRange.Distinct = true
	locRange.OrderBy = []OrderKey{{Attr: "Stock.location"}, {Attr: "Orders.item"}}

	topDispatch := retailerJoin()
	topDispatch.Project = []string{"Disp.dispatcher", "Orders.item"}
	topDispatch.Distinct = true
	topDispatch.OrderBy = []OrderKey{{Attr: "Disp.dispatcher", Desc: true}, {Attr: "Orders.item"}}
	topDispatch.Limit = 32
	topDispatch.Offset = 8

	countByDisp := retailerJoin()
	countByDisp.GroupBy = []string{"Disp.dispatcher"}
	countByDisp.Aggs = []AggSpec{{Fn: AggCount}, {Fn: AggCountDistinct, Attr: "Orders.item"}}

	sumByLoc := retailerJoin()
	sumByLoc.Sels = []Sel{SelParam("Orders.item", OpGE, "lo"), SelParam("Orders.item", OpLE, "hi")}
	sumByLoc.GroupBy = []string{"Stock.location"}
	sumByLoc.Aggs = []AggSpec{{Fn: AggCount}, {Fn: AggMax, Attr: "Orders.oid"}}

	totalCount := retailerJoin()
	totalCount.Aggs = []AggSpec{{Fn: AggCount}}

	return []LoadQuery{
		{Name: "item_point", Spec: itemPoint, Args: func(rng *rand.Rand) []Arg {
			return []Arg{{Name: "item", Val: Int(int64(rng.Intn(50) + 1))}}
		}},
		{Name: "loc_range", Spec: locRange, Args: func(rng *rand.Rand) []Arg {
			return []Arg{{Name: "loc", Val: Int(int64(rng.Intn(40) + 1))}}
		}},
		{Name: "top_dispatch", Spec: topDispatch, Args: noArgs},
		{Name: "count_by_disp", Spec: countByDisp, Args: noArgs},
		{Name: "agg_item_band", Spec: sumByLoc, Args: func(rng *rand.Rand) []Arg {
			lo := rng.Intn(40) + 1
			return []Arg{{Name: "lo", Val: Int(int64(lo))}, {Name: "hi", Val: Int(int64(lo + 10))}}
		}},
		{Name: "total_count", Spec: totalCount, Args: noArgs},
	}
}
