// Package wire is the network front-end of the engine: a length-prefixed
// binary protocol over TCP with prepared-statement handles, pipelining
// (multiple in-flight requests per connection, responses tagged by request
// id), per-connection snapshot pinning, batched writes and a STATS verb,
// plus the Server that speaks it and the Client that drives it.
//
// Frame layout (all integers big-endian):
//
//	uint32  length of the remainder (1 .. MaxFrame)
//	uint8   kind: a request verb (client→server) or response kind
//	uint32  request id, echoed verbatim on the response
//	[]byte  kind-specific body (see proto.go)
//
// Responses carry RespOK or RespErr; requests and responses correlate only
// through the request id, so a connection may have any number of requests
// in flight and completions may arrive out of order.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame is the default cap on the size of one frame's payload (kind +
// id + body). Oversized length prefixes are rejected before any allocation,
// so a garbage or hostile peer cannot make the server reserve memory.
const MaxFrame = 16 << 20

// frameHeader is the fixed payload prefix: kind byte + request id.
const frameHeader = 1 + 4

// Request verbs (client → server).
const (
	VerbPing      = byte(0x01) // liveness probe; empty body
	VerbPrepare   = byte(0x02) // compile a query spec, return a statement handle
	VerbExec      = byte(0x03) // run a prepared tuple statement
	VerbExecAgg   = byte(0x04) // run a prepared aggregate statement
	VerbCloseStmt = byte(0x05) // drop a statement handle
	VerbSnapshot  = byte(0x06) // pin a snapshot for this connection
	VerbRelease   = byte(0x07) // release a pinned snapshot
	VerbInsert    = byte(0x08) // batch insert
	VerbDelete    = byte(0x09) // batch delete
	VerbUpsert    = byte(0x0A) // batch upsert (key-prefix displacement)
	VerbStats     = byte(0x0B) // server and engine metrics
)

// Response kinds (server → client).
const (
	RespOK  = byte(0x80)
	RespErr = byte(0x81)
)

// Frame is one decoded protocol frame.
type Frame struct {
	Kind byte
	ID   uint32
	Body []byte
}

// WriteFrame encodes f onto w in one Write call (callers wrap w in a
// bufio.Writer and flush per response; the single Write keeps frames whole
// even on an unbuffered writer).
func WriteFrame(w io.Writer, f Frame) error {
	n := frameHeader + len(f.Body)
	if n > MaxFrame {
		return fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", n, MaxFrame)
	}
	buf := make([]byte, 4+n)
	binary.BigEndian.PutUint32(buf[0:], uint32(n))
	buf[4] = f.Kind
	binary.BigEndian.PutUint32(buf[5:], f.ID)
	copy(buf[4+frameHeader:], f.Body)
	_, err := w.Write(buf)
	return err
}

// ReadFrame decodes one frame from r, rejecting length prefixes shorter
// than the fixed header or larger than max (max <= 0 means MaxFrame). A
// clean EOF before any byte returns io.EOF; a connection cut mid-frame
// returns io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, max int) (Frame, error) {
	if max <= 0 {
		max = MaxFrame
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < frameHeader {
		return Frame{}, fmt.Errorf("wire: frame payload of %d bytes is shorter than the %d-byte header", n, frameHeader)
	}
	if n > max {
		return Frame{}, fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	return Frame{Kind: buf[0], ID: binary.BigEndian.Uint32(buf[1:5]), Body: buf[frameHeader:]}, nil
}
