package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
)

// Client speaks the wire protocol to one server connection. It is safe for
// concurrent use: requests are multiplexed by request id, so any number may
// be in flight at once (pipelining), and responses resolve whichever call
// is waiting on that id regardless of arrival order. Once the connection
// fails, every pending and future call returns the same error; dial a new
// client to reconnect.
type Client struct {
	c  net.Conn
	bw *bufio.Writer

	wmu sync.Mutex // serialises frame writes

	mu      sync.Mutex
	pending map[uint32]chan Frame
	nextID  uint32
	err     error // set once the connection is dead
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		c:       c,
		bw:      bufio.NewWriterSize(c, 64<<10),
		pending: map[uint32]chan Frame{},
	}
	go cl.readLoop()
	return cl, nil
}

// readLoop delivers response frames to their pending calls; any read error
// kills the connection and fails everything waiting.
func (cl *Client) readLoop() {
	br := bufio.NewReaderSize(cl.c, 64<<10)
	for {
		f, err := ReadFrame(br, MaxFrame)
		if err != nil {
			if err == io.EOF {
				err = fmt.Errorf("wire: connection closed by server")
			}
			cl.fail(err)
			return
		}
		cl.mu.Lock()
		ch, ok := cl.pending[f.ID]
		delete(cl.pending, f.ID)
		cl.mu.Unlock()
		if ok {
			ch <- f
		}
		// A response for an id nobody waits on (e.g. the server's single
		// refusal frame with id 0 racing a pending call) is dropped; the
		// read error that follows fails the pending calls.
	}
}

// fail marks the client dead with err and wakes every pending call.
func (cl *Client) fail(err error) {
	cl.mu.Lock()
	if cl.err == nil {
		cl.err = err
	}
	pend := cl.pending
	cl.pending = map[uint32]chan Frame{}
	cl.mu.Unlock()
	for _, ch := range pend {
		close(ch)
	}
	_ = cl.c.Close()
}

// Close tears the connection down; pending calls fail.
func (cl *Client) Close() error {
	cl.fail(fmt.Errorf("wire: client closed"))
	return nil
}

// Pending is one in-flight request; Wait blocks for its response. Issuing
// several calls before waiting on any of them is how a caller pipelines.
type Pending struct {
	cl *Client
	ch chan Frame
}

// Wait blocks until the response arrives and returns its body (RespErr
// bodies decode into *Error).
func (p *Pending) Wait() ([]byte, error) {
	f, ok := <-p.ch
	if !ok {
		p.cl.mu.Lock()
		err := p.cl.err
		p.cl.mu.Unlock()
		if err == nil {
			err = fmt.Errorf("wire: connection lost")
		}
		return nil, err
	}
	switch f.Kind {
	case RespOK:
		return f.Body, nil
	case RespErr:
		return nil, DecodeError(f.Body)
	default:
		return nil, fmt.Errorf("wire: unexpected response kind 0x%02x", f.Kind)
	}
}

// Send issues one request without waiting for its response.
func (cl *Client) Send(verb byte, body []byte) (*Pending, error) {
	ch := make(chan Frame, 1)
	cl.mu.Lock()
	if cl.err != nil {
		err := cl.err
		cl.mu.Unlock()
		return nil, err
	}
	cl.nextID++
	id := cl.nextID
	cl.pending[id] = ch
	cl.mu.Unlock()

	cl.wmu.Lock()
	err := WriteFrame(cl.bw, Frame{Kind: verb, ID: id, Body: body})
	if err == nil {
		err = cl.bw.Flush()
	}
	cl.wmu.Unlock()
	if err != nil {
		cl.mu.Lock()
		delete(cl.pending, id)
		cl.mu.Unlock()
		cl.fail(err)
		return nil, err
	}
	return &Pending{cl: cl, ch: ch}, nil
}

// do is the synchronous form: Send then Wait.
func (cl *Client) do(verb byte, body []byte) ([]byte, error) {
	p, err := cl.Send(verb, body)
	if err != nil {
		return nil, err
	}
	return p.Wait()
}

// Ping round-trips a liveness probe.
func (cl *Client) Ping() error {
	_, err := cl.do(VerbPing, nil)
	return err
}

// RemoteStmt is a prepared statement living on the server, addressed by its
// connection-local handle.
type RemoteStmt struct {
	cl     *Client
	Handle uint32
	Params []string
	IsAgg  bool
}

// Prepare compiles the spec on the server and returns its handle.
func (cl *Client) Prepare(sp *Spec) (*RemoteStmt, error) {
	body, err := cl.do(VerbPrepare, EncodeSpec(sp))
	if err != nil {
		return nil, err
	}
	pr, err := DecodePrepareResp(body)
	if err != nil {
		return nil, err
	}
	return &RemoteStmt{cl: cl, Handle: pr.Handle, Params: pr.Params, IsAgg: pr.IsAgg}, nil
}

// execVerb picks the execution verb matching the statement's shape.
func (rs *RemoteStmt) execVerb() byte {
	if rs.IsAgg {
		return VerbExecAgg
	}
	return VerbExec
}

// Start issues an execution without waiting: the pipelining form of Exec.
// snap 0 reads live data; maxRows 0 returns all rows.
func (rs *RemoteStmt) Start(snap, maxRows uint32, args ...Arg) (*Pending, error) {
	return rs.cl.Send(rs.execVerb(), EncodeExecReq(&ExecReq{Handle: rs.Handle, Snap: snap, MaxRows: maxRows, Args: args}))
}

// Exec runs the statement and decodes its rows.
func (rs *RemoteStmt) Exec(snap, maxRows uint32, args ...Arg) (*Rows, error) {
	p, err := rs.Start(snap, maxRows, args...)
	if err != nil {
		return nil, err
	}
	return WaitRows(p)
}

// WaitRows resolves a pending execution into its rows.
func WaitRows(p *Pending) (*Rows, error) {
	body, err := p.Wait()
	if err != nil {
		return nil, err
	}
	return DecodeRows(body)
}

// Close drops the statement handle on the server.
func (rs *RemoteStmt) Close() error {
	_, err := rs.cl.do(VerbCloseStmt, EncodeU32(rs.Handle))
	return err
}

// Snapshot pins a snapshot for this connection and returns its id and the
// write version it pins.
func (cl *Client) Snapshot() (*SnapResp, error) {
	body, err := cl.do(VerbSnapshot, nil)
	if err != nil {
		return nil, err
	}
	return DecodeSnapResp(body)
}

// Release releases a pinned snapshot.
func (cl *Client) Release(id uint32) error {
	_, err := cl.do(VerbRelease, EncodeU32(id))
	return err
}

func (cl *Client) write(verb byte, rel string, keyCols uint32, rows [][]Value) (*WriteResp, error) {
	body, err := cl.do(verb, EncodeWriteReq(&WriteReq{Rel: rel, KeyCols: keyCols, Rows: rows}))
	if err != nil {
		return nil, err
	}
	return DecodeWriteResp(body)
}

// Insert batch-inserts rows into rel (one version bump).
func (cl *Client) Insert(rel string, rows [][]Value) (*WriteResp, error) {
	return cl.write(VerbInsert, rel, 0, rows)
}

// Delete batch-deletes rows from rel (one version bump).
func (cl *Client) Delete(rel string, rows [][]Value) (*WriteResp, error) {
	return cl.write(VerbDelete, rel, 0, rows)
}

// Upsert batch-upserts rows into rel, displacing rows that share the
// keyCols-wide key prefix (one version bump).
func (cl *Client) Upsert(rel string, keyCols int, rows [][]Value) (*WriteResp, error) {
	return cl.write(VerbUpsert, rel, uint32(keyCols), rows)
}

// Stats fetches the server's metrics.
func (cl *Client) Stats() (*Stats, error) {
	body, err := cl.do(VerbStats, nil)
	if err != nil {
		return nil, err
	}
	st := &Stats{}
	if err := json.Unmarshal(body, st); err != nil {
		return nil, err
	}
	return st, nil
}
