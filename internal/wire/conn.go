package wire

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	fdb "repro"
)

// stmtEntry is one prepared statement handle owned by a connection. The
// *fdb.Stmt itself may be shared with other connections through the plan
// cache; the handle and its snapshot-pinned variants are connection-local.
type stmtEntry struct {
	st    *fdb.Stmt
	isAgg bool
}

// conn serves one client connection: a read loop that decodes frames and
// dispatches them, cheap verbs handled inline, execution verbs admitted
// onto the server's shared slots and run in their own goroutines so that
// pipelined requests complete out of order. Responses serialise through a
// write mutex; statement handles and pinned snapshots die with the
// connection.
type conn struct {
	srv *Server
	c   net.Conn
	br  *bufio.Reader
	bw  *bufio.Writer
	wmu sync.Mutex

	mu     sync.Mutex
	stmts  map[uint32]*stmtEntry
	snaps  map[uint32]*fdb.Snapshot
	pinned map[uint64]*fdb.Stmt // (snap id << 32 | handle) -> pinned statement
	nextID uint32               // handle and snapshot id allocator (shared; ids only need uniqueness)

	reqWG     sync.WaitGroup
	done      chan struct{}
	closeOnce sync.Once
}

func newConn(s *Server, c net.Conn) *conn {
	return &conn{
		srv:    s,
		c:      c,
		br:     bufio.NewReaderSize(c, 64<<10),
		bw:     bufio.NewWriterSize(c, 64<<10),
		stmts:  map[uint32]*stmtEntry{},
		snaps:  map[uint32]*fdb.Snapshot{},
		pinned: map[uint64]*fdb.Stmt{},
		done:   make(chan struct{}),
	}
}

// serve runs the connection's read loop until the peer goes away, a frame
// is malformed (framing is lost, so the connection closes), or the server
// closes the connection during shutdown.
func (c *conn) serve() {
	defer c.close()
	for {
		f, err := ReadFrame(c.br, c.srv.opts.MaxFrame)
		if err != nil {
			return
		}
		c.dispatch(f)
	}
}

// dispatch routes one request frame. Ping, statistics and handle
// bookkeeping answer inline from the read loop — they touch no data and
// must stay responsive under execution load; everything else admits onto
// the shared execution slots and runs in its own goroutine, which is what
// makes pipelining real: the read loop is already decoding the next frame
// while this request executes.
func (c *conn) dispatch(f Frame) {
	if c.srv.draining.Load() {
		c.reply(f.ID, CodeDraining, "server draining", nil)
		return
	}
	switch f.Kind {
	case VerbPing:
		c.reply(f.ID, 0, "", nil)
	case VerbStats:
		body, err := json.Marshal(c.srv.Stats())
		if err != nil {
			c.reply(f.ID, CodeQuery, err.Error(), nil)
			return
		}
		c.reply(f.ID, 0, "", body)
	case VerbCloseStmt:
		c.closeStmt(f)
	case VerbSnapshot:
		c.handleSnapshot(f)
	case VerbRelease:
		c.releaseSnap(f)
	case VerbPrepare, VerbExec, VerbExecAgg, VerbInsert, VerbDelete, VerbUpsert:
		release, aerr := c.srv.admit(c)
		if aerr != nil {
			c.reply(f.ID, aerr.Code, aerr.Msg, nil)
			return
		}
		c.reqWG.Add(1)
		go func() {
			defer c.reqWG.Done()
			defer release()
			if h := c.srv.hook; h != nil {
				h(f.Kind, f.ID)
			}
			c.execute(f)
		}()
	default:
		c.reply(f.ID, CodeBadRequest, fmt.Sprintf("unknown verb 0x%02x", f.Kind), nil)
	}
}

// execute handles one admitted request (its own goroutine).
func (c *conn) execute(f Frame) {
	start := time.Now()
	switch f.Kind {
	case VerbPrepare:
		c.handlePrepare(f)
	case VerbExec, VerbExecAgg:
		c.handleExec(f, f.Kind == VerbExecAgg)
		c.srv.m.reads.observe(time.Since(start).Nanoseconds())
	case VerbInsert, VerbDelete, VerbUpsert:
		c.handleWrite(f)
		c.srv.m.writes.observe(time.Since(start).Nanoseconds())
	}
}

// reply sends one response frame: RespOK with body when code is zero,
// RespErr otherwise. All request accounting funnels through here.
func (c *conn) reply(id uint32, code byte, msg string, body []byte) {
	f := Frame{Kind: RespOK, ID: id, Body: body}
	if code != 0 {
		f.Kind = RespErr
		f.Body = EncodeError(code, msg)
		c.srv.m.errors.Add(1)
		if code == CodeTimeout {
			c.srv.m.timeouts.Add(1)
		}
	}
	c.srv.m.requests.Add(1)
	c.srv.m.window.observe(time.Now())
	c.wmu.Lock()
	err := WriteFrame(c.bw, f)
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		c.close()
	}
}

func (c *conn) handlePrepare(f Frame) {
	sp, err := DecodeSpec(f.Body)
	if err != nil {
		c.reply(f.ID, CodeBadRequest, err.Error(), nil)
		return
	}
	clauses, err := sp.Clauses()
	if err != nil {
		c.reply(f.ID, CodeBadRequest, err.Error(), nil)
		return
	}
	st, err := c.srv.db.PrepareCached(clauses...)
	if err != nil {
		c.reply(f.ID, CodeQuery, err.Error(), nil)
		return
	}
	c.mu.Lock()
	c.nextID++
	h := c.nextID
	c.stmts[h] = &stmtEntry{st: st, isAgg: sp.IsAgg()}
	c.mu.Unlock()
	c.reply(f.ID, 0, "", EncodePrepareResp(&PrepareResp{Handle: h, Params: st.Params(), IsAgg: sp.IsAgg()}))
}

// stmtFor resolves the statement a request executes: the live cached
// statement, or — under a pinned snapshot — a snapshot-bound variant,
// created on first use per (snapshot, handle) and cached so repeated
// executions pay the input re-snapshot once.
func (c *conn) stmtFor(req *ExecReq) (*fdb.Stmt, bool, *Error) {
	c.mu.Lock()
	entry, ok := c.stmts[req.Handle]
	if !ok {
		c.mu.Unlock()
		return nil, false, &Error{Code: CodeUnknown, Msg: fmt.Sprintf("unknown statement handle %d", req.Handle)}
	}
	if req.Snap == 0 {
		c.mu.Unlock()
		return entry.st, entry.isAgg, nil
	}
	snap, ok := c.snaps[req.Snap]
	if !ok {
		c.mu.Unlock()
		return nil, false, &Error{Code: CodeUnknown, Msg: fmt.Sprintf("unknown snapshot %d", req.Snap)}
	}
	key := uint64(req.Snap)<<32 | uint64(req.Handle)
	if st, ok := c.pinned[key]; ok {
		c.mu.Unlock()
		return st, entry.isAgg, nil
	}
	c.mu.Unlock()
	pst, err := snap.Bind(entry.st)
	if err != nil {
		return nil, false, &Error{Code: CodeQuery, Msg: err.Error()}
	}
	c.mu.Lock()
	if prev, ok := c.pinned[key]; ok {
		pst = prev // a concurrent bind won; both are equivalent
	} else if _, live := c.snaps[req.Snap]; live {
		c.pinned[key] = pst
	}
	c.mu.Unlock()
	return pst, entry.isAgg, nil
}

func (c *conn) handleExec(f Frame, agg bool) {
	req, err := DecodeExecReq(f.Body)
	if err != nil {
		c.reply(f.ID, CodeBadRequest, err.Error(), nil)
		return
	}
	st, isAgg, werr := c.stmtFor(req)
	if werr != nil {
		c.reply(f.ID, werr.Code, werr.Msg, nil)
		return
	}
	if agg != isAgg {
		want, got := "EXEC", "EXEC_AGG"
		if isAgg {
			want, got = got, want
		}
		c.reply(f.ID, CodeQuery, fmt.Sprintf("statement %d needs %s, got %s", req.Handle, want, got), nil)
		return
	}
	args := make([]fdb.NamedArg, len(req.Args))
	for i, a := range req.Args {
		args[i] = fdb.Arg(a.Name, a.Val.Native())
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.srv.opts.ReqTimeout)
	defer cancel()
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		c.execErr(f.ID, context.DeadlineExceeded)
		return
	}
	var rows *Rows
	if agg {
		res, err := st.ExecAggContext(ctx, args...)
		if err != nil {
			c.execErr(f.ID, err)
			return
		}
		rows = &Rows{Schema: res.Schema(), Rows: res.Rows(int(req.MaxRows))}
	} else {
		res, err := st.ExecContext(ctx, args...)
		if err != nil {
			c.execErr(f.ID, err)
			return
		}
		rows = &Rows{Schema: res.Schema(), Rows: res.Rows(int(req.MaxRows))}
	}
	c.reply(f.ID, 0, "", EncodeRows(rows))
}

func (c *conn) execErr(id uint32, err error) {
	if isTimeout(err) {
		c.reply(id, CodeTimeout, fmt.Sprintf("request exceeded the %s execution budget", c.srv.opts.ReqTimeout), nil)
		return
	}
	c.reply(id, CodeQuery, err.Error(), nil)
}

func (c *conn) handleWrite(f Frame) {
	req, err := DecodeWriteReq(f.Body)
	if err != nil {
		c.reply(f.ID, CodeBadRequest, err.Error(), nil)
		return
	}
	rows := make([][]interface{}, len(req.Rows))
	for i, r := range req.Rows {
		row := make([]interface{}, len(r))
		for j, v := range r {
			row[j] = v.Native()
		}
		rows[i] = row
	}
	db := c.srv.db
	switch f.Kind {
	case VerbInsert:
		err = db.InsertBatch(req.Rel, rows)
	case VerbDelete:
		err = db.DeleteBatch(req.Rel, rows)
	case VerbUpsert:
		err = db.UpsertBatch(req.Rel, int(req.KeyCols), rows)
	}
	if err != nil {
		c.reply(f.ID, CodeQuery, err.Error(), nil)
		return
	}
	c.reply(f.ID, 0, "", EncodeWriteResp(&WriteResp{Ver: db.Version()}))
}

func (c *conn) handleSnapshot(f Frame) {
	snap := c.srv.db.Snapshot()
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.snaps[id] = snap
	c.mu.Unlock()
	c.reply(f.ID, 0, "", EncodeSnapResp(&SnapResp{ID: id, Ver: snap.Version()}))
}

func (c *conn) closeStmt(f Frame) {
	h, err := DecodeU32(f.Body)
	if err != nil {
		c.reply(f.ID, CodeBadRequest, err.Error(), nil)
		return
	}
	c.mu.Lock()
	_, ok := c.stmts[h]
	delete(c.stmts, h)
	for key := range c.pinned {
		if uint32(key) == h {
			delete(c.pinned, key)
		}
	}
	c.mu.Unlock()
	if !ok {
		c.reply(f.ID, CodeUnknown, fmt.Sprintf("unknown statement handle %d", h), nil)
		return
	}
	c.reply(f.ID, 0, "", nil)
}

func (c *conn) releaseSnap(f Frame) {
	id, err := DecodeU32(f.Body)
	if err != nil {
		c.reply(f.ID, CodeBadRequest, err.Error(), nil)
		return
	}
	c.mu.Lock()
	snap, ok := c.snaps[id]
	delete(c.snaps, id)
	for key := range c.pinned {
		if uint32(key>>32) == id {
			delete(c.pinned, key)
		}
	}
	c.mu.Unlock()
	if !ok {
		c.reply(f.ID, CodeUnknown, fmt.Sprintf("unknown snapshot %d", id), nil)
		return
	}
	snap.Close()
	c.reply(f.ID, 0, "", nil)
}

// drain waits for the connection's in-flight requests, then closes it —
// the per-connection half of Server.Shutdown.
func (c *conn) drain() {
	c.reqWG.Wait()
	c.close()
}

// close tears the connection down once: socket closed (unblocking the read
// loop), queued admissions aborted, and every pinned snapshot released so a
// dying connection never leaks a pinned version.
func (c *conn) close() {
	c.closeOnce.Do(func() {
		close(c.done)
		_ = c.c.Close()
		c.mu.Lock()
		snaps := make([]*fdb.Snapshot, 0, len(c.snaps))
		for _, s := range c.snaps {
			snaps = append(snaps, s)
		}
		c.snaps = map[uint32]*fdb.Snapshot{}
		c.pinned = map[uint64]*fdb.Stmt{}
		c.stmts = map[uint32]*stmtEntry{}
		c.mu.Unlock()
		for _, s := range snaps {
			s.Close()
		}
		c.srv.dropConn(c)
	})
}
