// Package rdb is the homebred in-memory relational baseline of the paper's
// evaluation ("RDB", Section 5): it evaluates equi-join queries with a
// hand-crafted optimal plan — a multi-way sort-merge (leapfrog) join over a
// connected attribute-class order — producing flat tuples. Output is
// counted by default; materialisation is optional, and a configurable
// budget mirrors the paper's 100-second timeout for the cases where the
// flat result explodes.
package rdb

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
)

// Options controls evaluation.
type Options struct {
	// Timeout aborts evaluation (0: none). Checked every few thousand
	// emitted tuples.
	Timeout time.Duration
	// MaxTuples aborts after this many result tuples (0: none).
	MaxTuples int64
	// Materialize collects the result relation (otherwise count only).
	Materialize bool
}

// Result reports a (possibly aborted) evaluation.
type Result struct {
	Tuples   int64
	Elements int64 // tuples x number of attributes: "# of data elements"
	TimedOut bool
	Relation *relation.Relation // set when materialised and not timed out
	Duration time.Duration
}

// Evaluate runs the query. Constant selections are applied while scanning;
// projections are applied on the materialised result (the experiments of
// the paper use projection-free equi-joins).
func Evaluate(q *core.Query, opts Options) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Projection != nil && !opts.Materialize {
		return nil, fmt.Errorf("rdb: projection requires materialisation")
	}
	start := time.Now()

	// Apply constant selections up front.
	rels := make([]*relation.Relation, len(q.Relations))
	for i, r := range q.Relations {
		rels[i] = applyConstSels(r, q.Selections)
	}

	classes := q.Classes()
	order := classOrder(classes, q.Schemas())

	// Per relation: columns per ordered class, sort, range state.
	type relState struct {
		rel    *relation.Relation
		cols   [][]int // per class position in order (nil if absent)
		lo, hi []int   // range stack per depth
	}
	states := make([]*relState, len(rels))
	for i, r := range rels {
		st := &relState{rel: r, cols: make([][]int, len(order))}
		var sortAttrs []relation.Attribute
		for ci, cls := range order {
			for j, a := range r.Schema {
				if classes[cls].Has(a) {
					st.cols[ci] = append(st.cols[ci], j)
					sortAttrs = append(sortAttrs, a)
				}
			}
		}
		r.SortBy(sortAttrs)
		st.lo = make([]int, len(order)+1)
		st.hi = make([]int, len(order)+1)
		st.lo[0], st.hi[0] = 0, r.Cardinality()
		states[i] = st
	}

	res := &Result{}
	arity := int64(len(q.Attributes()))
	var out *relation.Relation
	schema := relation.Schema(q.Attributes())
	if opts.Materialize {
		out = relation.New("result", schema)
	}
	assign := make([]relation.Value, len(order))
	attrPos := map[relation.Attribute]int{}
	for i, a := range schema {
		attrPos[a] = i
	}

	checkEvery := int64(4096)
	emitted := int64(0)
	deadlineHit := false

	seek := func(st *relState, col int, v relation.Value, lo, hi int) int {
		return lo + sort.Search(hi-lo, func(i int) bool {
			return st.rel.Tuples[lo+i][col] >= v
		})
	}

	var rec func(depth int) bool // false = aborted
	rec = func(depth int) bool {
		if depth == len(order) {
			emitted++
			if opts.Materialize {
				t := make(relation.Tuple, len(schema))
				for ci, cls := range order {
					for a := range classes[cls] {
						t[attrPos[a]] = assign[ci]
					}
				}
				out.AppendTuple(t)
			}
			if opts.MaxTuples > 0 && emitted >= opts.MaxTuples {
				deadlineHit = true
				return false
			}
			if emitted%checkEvery == 0 && opts.Timeout > 0 && time.Since(start) > opts.Timeout {
				deadlineHit = true
				return false
			}
			return true
		}
		var active []*relState
		for _, st := range states {
			if st.cols[depth] != nil {
				active = append(active, st)
			} else {
				st.lo[depth+1], st.hi[depth+1] = st.lo[depth], st.hi[depth]
			}
		}
		if len(active) == 0 {
			return rec(depth + 1) // class with no relation: impossible for query classes
		}
		cur := make([]int, len(active))
		for i, st := range active {
			cur[i] = st.lo[depth]
		}
		for {
			var v relation.Value
			for i, st := range active {
				if cur[i] >= st.hi[depth] {
					return true
				}
				if val := st.rel.Tuples[cur[i]][st.cols[depth][0]]; i == 0 || val > v {
					v = val
				}
			}
			agreed := true
			for i, st := range active {
				col := st.cols[depth][0]
				cur[i] = seek(st, col, v, cur[i], st.hi[depth])
				if cur[i] >= st.hi[depth] {
					return true
				}
				if st.rel.Tuples[cur[i]][col] != v {
					agreed = false
				}
			}
			if !agreed {
				continue
			}
			ok := true
			for i, st := range active {
				cols := st.cols[depth]
				lo := cur[i]
				hi := seek(st, cols[0], v+1, lo, st.hi[depth])
				for _, c := range cols[1:] {
					lo = seek(st, c, v, lo, hi)
					hi = seek(st, c, v+1, lo, hi)
				}
				if lo >= hi {
					ok = false
				}
				st.lo[depth+1], st.hi[depth+1] = lo, hi
			}
			if ok {
				assign[depth] = v
				if !rec(depth + 1) {
					return false
				}
			}
			for i, st := range active {
				cur[i] = seek(st, st.cols[depth][0], v+1, cur[i], st.hi[depth])
			}
		}
	}
	finished := rec(0)
	res.Tuples = emitted
	res.Elements = emitted * arity
	res.TimedOut = !finished && deadlineHit
	res.Duration = time.Since(start)
	if opts.Materialize && finished {
		if q.Projection != nil {
			out = out.Project(q.Projection)
			res.Tuples = int64(out.Cardinality())
			res.Elements = res.Tuples * int64(len(out.Schema))
		}
		res.Relation = out
	}
	return res, nil
}

// applyConstSels filters a relation by the constant selections that concern
// its attributes.
func applyConstSels(r *relation.Relation, sels []core.ConstSel) *relation.Relation {
	var mine []core.ConstSel
	for _, s := range sels {
		if r.Schema.Contains(s.A) {
			mine = append(mine, s)
		}
	}
	out := r.Clone()
	if len(mine) == 0 {
		return out
	}
	return out.Select(func(t relation.Tuple) bool {
		for _, s := range mine {
			if !s.Match(t[r.Schema.Index(s.A)]) {
				return false
			}
		}
		return true
	})
}

// classOrder picks a total order of class indices: start at the class
// touching the most relations, then repeatedly take a class connected (via
// a shared relation) to the chosen prefix — the hand-crafted "optimal
// relational join plan" of the paper's setup.
func classOrder(classes []relation.AttrSet, rels []relation.AttrSet) []int {
	n := len(classes)
	sig := make([]uint64, n)
	for i, c := range classes {
		for j, r := range rels {
			if r.Intersects(c) {
				sig[i] |= 1 << uint(j)
			}
		}
	}
	used := make([]bool, n)
	var order []int
	var usedSig uint64
	for len(order) < n {
		best := -1
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			bc, ic := sig[best]&usedSig != 0, sig[i]&usedSig != 0
			switch {
			case ic && !bc:
				best = i
			case ic == bc && popcount(sig[i]) > popcount(sig[best]):
				best = i
			}
		}
		used[best] = true
		usedSig |= sig[best]
		order = append(order, best)
	}
	return order
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// SelectEqualities evaluates a conjunction of attribute equalities on a
// single flat relation with one scan — RDB's task in Experiment 4.
func SelectEqualities(r *relation.Relation, conds [][2]relation.Attribute, opts Options) (*Result, error) {
	start := time.Now()
	cols := make([][2]int, len(conds))
	for i, c := range conds {
		a, b := r.Schema.Index(c[0]), r.Schema.Index(c[1])
		if a < 0 || b < 0 {
			return nil, fmt.Errorf("rdb: equality %v references unknown attribute", c)
		}
		cols[i] = [2]int{a, b}
	}
	res := &Result{}
	var out *relation.Relation
	if opts.Materialize {
		out = relation.New("result", r.Schema)
	}
	for i, t := range r.Tuples {
		if opts.Timeout > 0 && i%8192 == 0 && time.Since(start) > opts.Timeout {
			res.TimedOut = true
			break
		}
		ok := true
		for _, c := range cols {
			if t[c[0]] != t[c[1]] {
				ok = false
				break
			}
		}
		if ok {
			res.Tuples++
			if opts.Materialize {
				out.AppendTuple(t)
			}
		}
	}
	res.Elements = res.Tuples * int64(len(r.Schema))
	res.Duration = time.Since(start)
	if opts.Materialize && !res.TimedOut {
		res.Relation = out
	}
	return res, nil
}
