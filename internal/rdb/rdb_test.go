package rdb

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fplan"
	"repro/internal/gen"
	"repro/internal/relation"
)

func TestAgainstReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 60; trial++ {
		r := 1 + rng.Intn(3)
		a := r + rng.Intn(4)
		k := rng.Intn(min(a-1, 3) + 1)
		q, err := gen.RandomQuery(rng, r, a, 1+rng.Intn(8), k, gen.Uniform, 4)
		if err != nil {
			t.Fatal(err)
		}
		want, err := q.EvaluateFlat()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Evaluate(q, Options{Materialize: true})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.Tuples != int64(want.Cardinality()) {
			t.Fatalf("trial %d: rdb %d tuples, reference %d", trial, res.Tuples, want.Cardinality())
		}
		if res.Relation != nil && !res.Relation.Project(want.Schema).Equal(want) {
			t.Fatalf("trial %d: rdb relation mismatch", trial)
		}
	}
}

func TestConstSelections(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	q, err := gen.RandomQuery(rng, 2, 4, 10, 1, gen.Uniform, 5)
	if err != nil {
		t.Fatal(err)
	}
	q.Selections = []core.ConstSel{{A: q.Relations[0].Schema[0], Op: fplan.Le, C: 3}}
	want, err := q.EvaluateFlat()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Evaluate(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != int64(want.Cardinality()) {
		t.Fatalf("rdb %d tuples, reference %d", res.Tuples, want.Cardinality())
	}
}

func TestMaxTuplesAborts(t *testing.T) {
	// Cartesian product of two 20-tuple relations: 400 tuples; cap at 10.
	a := relation.New("A", relation.Schema{"X"})
	b := relation.New("B", relation.Schema{"Y"})
	for i := 0; i < 20; i++ {
		a.Append(relation.Value(i))
		b.Append(relation.Value(i))
	}
	q := &core.Query{Relations: []*relation.Relation{a, b}}
	res, err := Evaluate(q, Options{MaxTuples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Tuples != 10 {
		t.Fatalf("expected abort at 10 tuples, got %d (timedOut=%v)", res.Tuples, res.TimedOut)
	}
}

func TestTimeoutZeroMeansNone(t *testing.T) {
	a := relation.New("A", relation.Schema{"X"})
	a.Append(1)
	q := &core.Query{Relations: []*relation.Relation{a}}
	res, err := Evaluate(q, Options{Timeout: 0 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.TimedOut || res.Tuples != 1 {
		t.Fatalf("unexpected result: %+v", res)
	}
}

func TestSelectEqualities(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B", "C"})
	r.Append(1, 1, 2)
	r.Append(1, 2, 2)
	r.Append(3, 3, 3)
	res, err := SelectEqualities(r, [][2]relation.Attribute{{"A", "B"}}, Options{Materialize: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != 2 {
		t.Fatalf("selection returned %d tuples, want 2", res.Tuples)
	}
	res2, err := SelectEqualities(r, [][2]relation.Attribute{{"A", "B"}, {"B", "C"}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Tuples != 1 {
		t.Fatalf("double selection returned %d tuples, want 1", res2.Tuples)
	}
	if _, err := SelectEqualities(r, [][2]relation.Attribute{{"A", "Z"}}, Options{}); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
