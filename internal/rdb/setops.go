package rdb

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// Flat set algebra over materialised relations: the baseline (and
// differential-testing oracle) counterpart of the engine's native encoded
// merges. Operands must have the same attribute set; b's columns are
// permuted into a's order, so the result always carries a's schema.

// Union returns the set union a ∪ b.
func Union(a, b *relation.Relation) (*relation.Relation, error) {
	return setOp("union", a, b, func(out *relation.Relation, ta, tb []relation.Tuple, inB map[string]bool) {
		seen := make(map[string]bool, len(ta)+len(tb))
		for _, t := range append(append([]relation.Tuple{}, ta...), tb...) {
			if k := rowKey(t); !seen[k] {
				seen[k] = true
				out.AppendTuple(t)
			}
		}
	})
}

// UnionAll returns the bag union a ⊎ b: every tuple of both operands,
// duplicates preserved.
func UnionAll(a, b *relation.Relation) (*relation.Relation, error) {
	return setOp("union all", a, b, func(out *relation.Relation, ta, tb []relation.Tuple, inB map[string]bool) {
		for _, t := range ta {
			out.AppendTuple(t)
		}
		for _, t := range tb {
			out.AppendTuple(t)
		}
	})
}

// Except returns the set difference a − b.
func Except(a, b *relation.Relation) (*relation.Relation, error) {
	return setOp("except", a, b, func(out *relation.Relation, ta, tb []relation.Tuple, inB map[string]bool) {
		emitted := make(map[string]bool, len(ta))
		for _, t := range ta {
			if k := rowKey(t); !inB[k] && !emitted[k] {
				emitted[k] = true
				out.AppendTuple(t)
			}
		}
	})
}

// Intersect returns the set intersection a ∩ b.
func Intersect(a, b *relation.Relation) (*relation.Relation, error) {
	return setOp("intersect", a, b, func(out *relation.Relation, ta, tb []relation.Tuple, inB map[string]bool) {
		emitted := make(map[string]bool, len(ta))
		for _, t := range ta {
			if k := rowKey(t); inB[k] && !emitted[k] {
				emitted[k] = true
				out.AppendTuple(t)
			}
		}
	})
}

// setOp validates the operands, permutes b into a's column order and hands
// the aligned tuple sets to the per-operator emitter.
func setOp(name string, a, b *relation.Relation,
	emit func(out *relation.Relation, ta, tb []relation.Tuple, inB map[string]bool)) (*relation.Relation, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("rdb: %s with nil relation", name)
	}
	if len(a.Schema) == 0 || len(a.Schema) != len(b.Schema) {
		return nil, fmt.Errorf("rdb: %s: schemas %v and %v are not compatible", name, a.Schema, b.Schema)
	}
	perm := make([]int, len(a.Schema))
	for i, attr := range a.Schema {
		j := b.Schema.Index(attr)
		if j < 0 {
			return nil, fmt.Errorf("rdb: %s: schemas %v and %v are not compatible", name, a.Schema, b.Schema)
		}
		perm[i] = j
	}
	tb := make([]relation.Tuple, len(b.Tuples))
	for i, t := range b.Tuples {
		nt := make(relation.Tuple, len(perm))
		for j, c := range perm {
			nt[j] = t[c]
		}
		tb[i] = nt
	}
	inB := make(map[string]bool, len(tb))
	for _, t := range tb {
		inB[rowKey(t)] = true
	}
	out := relation.New(a.Name, a.Schema.Clone())
	emit(out, a.Tuples, tb, inB)
	sort.Slice(out.Tuples, func(i, j int) bool { return out.Tuples[i].Compare(out.Tuples[j]) < 0 })
	return out, nil
}

// rowKey renders a tuple as a map key.
func rowKey(t relation.Tuple) string {
	b := make([]byte, 0, len(t)*9)
	for _, v := range t {
		for s := uint(0); s < 64; s += 8 {
			b = append(b, byte(uint64(v)>>s))
		}
		b = append(b, ';')
	}
	return string(b)
}
