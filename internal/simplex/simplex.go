// Package simplex implements a small dense two-phase primal simplex solver
// for linear programs in the form
//
//	minimise  c·x
//	subject to A·x >= b,  x >= 0
//
// It replaces the GLPK dependency of the paper's C++ implementation. The
// programs solved by FDB are fractional edge covers (Section 2 of the
// paper): at most one variable per relation and one constraint per
// attribute class on a root-to-leaf path, so a dense tableau is more than
// adequate.
package simplex

import (
	"errors"
	"math"
)

// ErrInfeasible is returned when no x >= 0 satisfies the constraints.
var ErrInfeasible = errors.New("simplex: infeasible program")

// ErrUnbounded is returned when the objective can decrease without bound.
var ErrUnbounded = errors.New("simplex: unbounded program")

const eps = 1e-9

// Minimize solves: min c·x subject to A·x >= b, x >= 0.
// Each row A[i] must have len(c) entries. It returns the optimal objective
// value and an optimal solution vector.
func Minimize(c []float64, a [][]float64, b []float64) (float64, []float64, error) {
	n := len(c)
	m := len(a)
	for i := range a {
		if len(a[i]) != n {
			return 0, nil, errors.New("simplex: ragged constraint matrix")
		}
	}
	if len(b) != m {
		return 0, nil, errors.New("simplex: len(b) != rows of A")
	}
	if m == 0 {
		// No constraints: minimum of c·x over x>=0 is 0 if c >= 0.
		for _, ci := range c {
			if ci < -eps {
				return 0, nil, ErrUnbounded
			}
		}
		return 0, make([]float64, n), nil
	}

	// Convert A·x >= b into equalities with surplus variables s >= 0:
	//   A·x - s = b.
	// Ensure b >= 0 by flipping rows, then add artificial variables for
	// phase 1.
	//
	// Tableau layout: columns [x (n) | surplus (m) | artificial (m) | rhs].
	cols := n + 2*m + 1
	t := make([][]float64, m+1) // last row is the objective
	for i := 0; i <= m; i++ {
		t[i] = make([]float64, cols)
	}
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		sign := 1.0
		if b[i] < 0 {
			sign = -1.0
		}
		for j := 0; j < n; j++ {
			t[i][j] = sign * a[i][j]
		}
		t[i][n+i] = -sign // surplus
		t[i][n+m+i] = 1   // artificial
		t[i][cols-1] = sign * b[i]
		basis[i] = n + m + i
	}

	// Phase 1: minimise the sum of artificials.
	obj := t[m]
	for j := 0; j < cols; j++ {
		obj[j] = 0
	}
	for i := 0; i < m; i++ {
		for j := 0; j < cols; j++ {
			obj[j] -= t[i][j]
		}
	}
	// Do not let artificial columns enter: their reduced costs start at 0
	// after the subtraction above except their own column which is -1+1=0.
	// Recompute properly: objective row = -(sum of constraint rows) over
	// x/surplus columns, 0 on artificial columns.
	for i := 0; i < m; i++ {
		obj[n+m+i] = 0
	}
	if err := pivotLoop(t, basis, n+m, cols); err != nil {
		return 0, nil, err
	}
	if t[m][cols-1] < -eps {
		return 0, nil, ErrInfeasible
	}
	// Drive any artificial variables out of the basis if possible; a row
	// with no eligible pivot is redundant and its artificial stays at 0.
	for i := 0; i < m; i++ {
		if basis[i] >= n+m {
			for j := 0; j < n+m; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j, cols)
					break
				}
			}
		}
	}

	// Phase 2: minimise c·x. Rebuild the objective row in terms of the
	// current basis.
	for j := 0; j < cols; j++ {
		obj[j] = 0
	}
	for j := 0; j < n; j++ {
		obj[j] = c[j]
	}
	for i := 0; i < m; i++ {
		bi := basis[i]
		var cb float64
		if bi < n {
			cb = c[bi]
		}
		if cb != 0 {
			for j := 0; j < cols; j++ {
				obj[j] -= cb * t[i][j]
			}
		}
	}
	// Artificial columns cannot re-enter: pivotLoop only searches the first
	// n+m columns.
	if err := pivotLoop(t, basis, n+m, cols); err != nil {
		return 0, nil, err
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = t[i][cols-1]
		}
	}
	var val float64
	for j := 0; j < n; j++ {
		val += c[j] * x[j]
	}
	return val, x, nil
}

// pivotLoop runs Dantzig-rule pivoting over the first nCols columns until no
// negative reduced cost remains.
func pivotLoop(t [][]float64, basis []int, nCols, cols int) error {
	m := len(basis)
	for iter := 0; iter < 10000; iter++ {
		// Entering column: most negative reduced cost.
		col := -1
		best := -eps
		for j := 0; j < nCols; j++ {
			if rc := t[m][j]; rc < best {
				best = rc
				col = j
			}
		}
		if col < 0 {
			return nil
		}
		// Leaving row: minimum ratio test (Bland-ish tie-break on basis
		// index to avoid cycling).
		row := -1
		var bestRatio float64
		for i := 0; i < m; i++ {
			if t[i][col] > eps {
				ratio := t[i][cols-1] / t[i][col]
				if row < 0 || ratio < bestRatio-eps ||
					(ratio < bestRatio+eps && basis[i] < basis[row]) {
					row = i
					bestRatio = ratio
				}
			}
		}
		if row < 0 {
			return ErrUnbounded
		}
		pivot(t, basis, row, col, cols)
	}
	return errors.New("simplex: iteration limit exceeded")
}

// pivot performs a Gauss-Jordan pivot on (row, col).
func pivot(t [][]float64, basis []int, row, col, cols int) {
	p := t[row][col]
	for j := 0; j < cols; j++ {
		t[row][j] /= p
	}
	for i := range t {
		if i == row {
			continue
		}
		if f := t[i][col]; math.Abs(f) > 0 {
			for j := 0; j < cols; j++ {
				t[i][j] -= f * t[row][j]
			}
		}
	}
	basis[row] = col
}
