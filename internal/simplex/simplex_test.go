package simplex

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestSimpleCover(t *testing.T) {
	// min x1+x2 s.t. x1 >= 1, x2 >= 1.
	val, x, err := Minimize(
		[]float64{1, 1},
		[][]float64{{1, 0}, {0, 1}},
		[]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(val, 2) {
		t.Fatalf("val = %v, want 2", val)
	}
	if !almost(x[0], 1) || !almost(x[1], 1) {
		t.Fatalf("x = %v", x)
	}
}

func TestFractionalTriangleCover(t *testing.T) {
	// Classic fractional edge cover of a triangle: three vertices A,B,C,
	// three edges AB, BC, CA. Integral cover needs 2 edges; the optimal
	// fractional cover assigns 1/2 to each edge, total 3/2.
	val, _, err := Minimize(
		[]float64{1, 1, 1},
		[][]float64{
			{1, 0, 1}, // A covered by AB, CA
			{1, 1, 0}, // B covered by AB, BC
			{0, 1, 1}, // C covered by BC, CA
		},
		[]float64{1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(val, 1.5) {
		t.Fatalf("triangle cover = %v, want 1.5", val)
	}
}

func TestSingleEdgeCoversPath(t *testing.T) {
	// One relation covering both attributes: optimum 1.
	val, _, err := Minimize(
		[]float64{1},
		[][]float64{{1}, {1}},
		[]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(val, 1) {
		t.Fatalf("val = %v, want 1", val)
	}
}

func TestInfeasible(t *testing.T) {
	// x >= 1 and -x >= 0 (i.e. x <= 0) with x >= 0 is infeasible.
	_, _, err := Minimize(
		[]float64{1},
		[][]float64{{1}, {-1}},
		[]float64{1, 0.5})
	if err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnboundedNoConstraints(t *testing.T) {
	_, _, err := Minimize([]float64{-1}, nil, nil)
	if err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestZeroObjectiveNoConstraints(t *testing.T) {
	val, x, err := Minimize([]float64{1, 2}, nil, nil)
	if err != nil || val != 0 || x[0] != 0 || x[1] != 0 {
		t.Fatalf("val=%v x=%v err=%v", val, x, err)
	}
}

func TestRedundantConstraints(t *testing.T) {
	// Duplicate rows should not break phase 1 cleanup.
	val, _, err := Minimize(
		[]float64{1, 1},
		[][]float64{{1, 1}, {1, 1}, {1, 0}},
		[]float64{1, 1, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !almost(val, 1) {
		t.Fatalf("val = %v, want 1", val)
	}
}

// bruteCover computes the optimal fractional edge cover value by grid search
// over a fine lattice, as an independent (slow) oracle for small programs.
func bruteCover(a [][]float64, nVars int) float64 {
	const steps = 8 // weights in {0, 1/8, ..., 1}
	best := math.Inf(1)
	weights := make([]float64, nVars)
	var rec func(i int)
	rec = func(i int) {
		if i == nVars {
			var sum float64
			for _, w := range weights {
				sum += w
			}
			if sum >= best {
				return
			}
			for _, row := range a {
				var c float64
				for j, w := range weights {
					c += row[j] * w
				}
				if c < 1-1e-9 {
					return
				}
			}
			best = sum
			return
		}
		for s := 0; s <= steps; s++ {
			weights[i] = float64(s) / steps
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// Property: on random 0/1 covering programs the simplex optimum is never
// worse than the lattice oracle and never better than the LP bound implied
// by it (lattice points are feasible LP points).
func TestAgainstBruteForceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		nVars := 2 + rng.Intn(3)
		nCons := 1 + rng.Intn(4)
		a := make([][]float64, nCons)
		feasible := true
		for i := range a {
			a[i] = make([]float64, nVars)
			any := false
			for j := range a[i] {
				if rng.Intn(2) == 1 {
					a[i][j] = 1
					any = true
				}
			}
			if !any {
				feasible = false
			}
		}
		c := make([]float64, nVars)
		for j := range c {
			c[j] = 1
		}
		b := make([]float64, nCons)
		for i := range b {
			b[i] = 1
		}
		val, x, err := Minimize(c, a, b)
		if !feasible {
			if err != ErrInfeasible {
				t.Fatalf("trial %d: expected infeasible, got val=%v err=%v", trial, val, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Solution must satisfy all constraints.
		for i, row := range a {
			var got float64
			for j := range row {
				got += row[j] * x[j]
			}
			if got < b[i]-1e-6 {
				t.Fatalf("trial %d: constraint %d violated: %v < %v", trial, i, got, b[i])
			}
		}
		oracle := bruteCover(a, nVars)
		if val > oracle+1e-6 {
			t.Fatalf("trial %d: simplex %v worse than lattice oracle %v", trial, val, oracle)
		}
	}
}
