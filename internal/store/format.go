// Package store implements the zero-copy persistent snapshot format: a
// versioned, checksummed, page-aligned file layout that serialises a
// relation set — dictionary, schemas, tuple data at a consistent version
// cut, and (optionally) pre-built frep.Enc arenas — and opens by mmap with
// zero-copy reconstruction. On open, value columns, union-offset columns
// and tuple storage are unsafe.Slice views directly over the mapped region
// (falling back to a heap read when mmap is unavailable, and to an explicit
// decode on big-endian hosts), so cold open costs O(header + meta) plus the
// pages a query walk actually touches, instead of a full parse + build.
//
// File layout (all fixed-width fields little-endian):
//
//	[0, 64)      header: magic "FDBSNAP1", format version, flags, database
//	             write version, meta (offset, length, crc64), total file
//	             size, header crc64
//	[4096, ...)  data sections, each page-aligned: per-relation row-major
//	             tuple blocks (int64), per-enc value columns (int64) and
//	             union-offset columns (int32)
//	[metaOff)    meta blob (8-aligned, after the last data section):
//	             dictionary strings; per-relation name, delta-store version,
//	             schema, row count and data-section ref; per-enc statement
//	             fingerprint, serialised f-tree, input (name, version)
//	             list, pre-order node spans, and value/offset section refs
//
// Every section carries its own crc64 (ECMA) recorded in the meta blob; the
// meta blob and header carry theirs in the header. The reader is written to
// the same discipline as internal/wire's frame codec: every count, length,
// offset and alignment is validated against the file bounds before any
// pointer is formed, hostile counts are capped before allocation, and every
// malformed input yields an error wrapping ErrFormat — never a panic.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"unsafe"
)

// Format geometry and identification.
const (
	magic      = "FDBSNAP1"
	version    = 1
	headerSize = 64
	pageSize   = 4096

	// flagLittleEndian marks the data sections as little-endian. The format
	// is defined little-endian, so the flag is always set on write; a reader
	// seeing it clear (or any unknown flag) must refuse the file rather than
	// misinterpret raw column bytes.
	flagLittleEndian = 1 << 0
)

// Hostile-count caps: decoded counts are bounded before any allocation so a
// small corrupted file cannot demand gigabytes. Counts that imply section
// bytes are additionally bounded by the file size itself.
const (
	maxStringLen = 1 << 20 // one dictionary string / attribute / name
	maxDictLen   = 1 << 24 // dictionary entries
	maxRelations = 1 << 16
	maxEncs      = 1 << 16
	maxArity     = 1 << 12 // attributes per relation schema
	maxNodes     = 1 << 20 // f-tree nodes / enc spans
	maxTreeDepth = 1 << 12 // recursion guard for nested tree decoding
	maxMetaLen   = 1 << 30
)

// ErrFormat is wrapped by every error the reader returns for a malformed,
// truncated or corrupted snapshot file, so callers can distinguish hostile
// input (errors.Is(err, ErrFormat)) from I/O failures.
var ErrFormat = errors.New("malformed snapshot file")

// badf builds a reader error: store-prefixed, ErrFormat-wrapped.
func badf(format string, args ...any) error {
	return fmt.Errorf("store: "+format+": %w", append(args, ErrFormat)...)
}

var crcTable = crc64.MakeTable(crc64.ECMA)

func checksum(b []byte) uint64 { return crc64.Checksum(b, crcTable) }

// hostLittle reports whether the running host is little-endian; only then
// can column views alias file bytes directly.
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// encoder appends fixed-width little-endian fields to a buffer. It is used
// for the meta blob and the header, not for bulk column data.
type encoder struct {
	b []byte
}

func (e *encoder) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *encoder) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *encoder) i32(v int32)  { e.u32(uint32(v)) }

func (e *encoder) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// decoder is a bounds-checked cursor over the meta blob. Every read
// validates the remaining length first and fails with an ErrFormat-wrapped
// error on truncation; count reads additionally cap the value and require
// the remaining bytes to plausibly hold that many elements.
type decoder struct {
	b   []byte
	off int
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) u32(what string) (uint32, error) {
	if d.remaining() < 4 {
		return 0, badf("truncated meta reading %s", what)
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *decoder) u64(what string) (uint64, error) {
	if d.remaining() < 8 {
		return 0, badf("truncated meta reading %s", what)
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v, nil
}

func (d *decoder) i32(what string) (int32, error) {
	v, err := d.u32(what)
	return int32(v), err
}

func (d *decoder) str(what string) (string, error) {
	n, err := d.u32(what + " length")
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", badf("%s length %d exceeds cap %d", what, n, maxStringLen)
	}
	if d.remaining() < int(n) {
		return "", badf("truncated meta reading %s", what)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// count reads an element count, capping it at max and requiring the rest of
// the meta blob to hold at least minBytesEach bytes per element, so hostile
// counts can neither drive huge allocations nor long decode loops.
func (d *decoder) count(what string, max, minBytesEach int) (int, error) {
	v, err := d.u32(what + " count")
	if err != nil {
		return 0, err
	}
	n := int(v)
	if n > max {
		return 0, badf("%s count %d exceeds cap %d", what, n, max)
	}
	if minBytesEach > 0 && n > d.remaining()/minBytesEach {
		return 0, badf("%s count %d exceeds remaining meta bytes", what, n)
	}
	return n, nil
}

func (d *decoder) done() error {
	if d.remaining() != 0 {
		return badf("%d trailing bytes after meta", d.remaining())
	}
	return nil
}
