package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"unsafe"

	"repro/internal/frep"
	"repro/internal/relation"
)

// File is an opened snapshot. Its relations' tuples and its encs' arenas
// are views over data — possibly a read-only memory mapping — so they stay
// valid exactly as long as the File is not closed. Databases opened from a
// snapshot therefore keep the File referenced for their whole lifetime and
// never call Close.
type File struct {
	Ver    uint64
	Dict   []string
	Rels   []Relation
	Encs   []Enc
	data   []byte
	mapped bool
}

// Mapped reports whether the file is served by mmap (true) or was read into
// the heap (the fallback when mapping is unavailable).
func (f *File) Mapped() bool { return f.mapped }

// Close releases the backing storage (munmap when mapped). The relations
// and encs reconstructed from f alias that storage and must not be used
// afterwards.
func (f *File) Close() error {
	data, mapped := f.data, f.mapped
	f.data, f.mapped, f.Rels, f.Encs = nil, false, nil, nil
	if mapped && data != nil {
		return unmapFile(data)
	}
	return nil
}

// Open opens a snapshot file, preferring mmap (zero-copy: columns alias the
// mapping) and falling back to a plain read into the heap when mapping is
// unavailable on this platform or fails. All validation — header, section
// checksums, bounds, structural invariants — happens before the File is
// returned.
func Open(path string) (*File, error) {
	return open(path, false)
}

func open(path string, forceHeap bool) (*File, error) {
	if !forceHeap {
		if data, err := mapFile(path); err == nil {
			f, perr := parse(data, true)
			if perr != nil {
				_ = unmapFile(data)
				return nil, perr
			}
			return f, nil
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("store: read snapshot: %w", err)
	}
	return parse(data, false)
}

// OpenBytes parses a snapshot image from a caller-owned buffer (used by the
// fuzzer and by tests); the returned File aliases b.
func OpenBytes(b []byte) (*File, error) {
	return parse(b, false)
}

// parse validates and reconstructs a snapshot image. It never panics on
// hostile input: every offset, length, count and checksum is verified
// before any slice view is formed, and the frep/ftree structural validators
// run before an Enc is handed out.
func parse(data []byte, mapped bool) (*File, error) {
	if len(data) < headerSize {
		return nil, badf("file of %d bytes is shorter than the %d-byte header", len(data), headerSize)
	}
	if string(data[:8]) != magic {
		return nil, badf("bad magic %q", data[:8])
	}
	if got, want := checksum(data[:headerSize-8]), binary.LittleEndian.Uint64(data[headerSize-8:]); got != want {
		return nil, badf("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != version {
		return nil, badf("unsupported format version %d (want %d)", v, version)
	}
	if flags := binary.LittleEndian.Uint32(data[12:]); flags != flagLittleEndian {
		return nil, badf("unsupported flags %#x", flags)
	}
	f := &File{Ver: binary.LittleEndian.Uint64(data[16:]), data: data, mapped: mapped}
	metaOff := binary.LittleEndian.Uint64(data[24:])
	metaLen := binary.LittleEndian.Uint64(data[32:])
	metaCRC := binary.LittleEndian.Uint64(data[40:])
	if size := binary.LittleEndian.Uint64(data[48:]); size != uint64(len(data)) {
		return nil, badf("header declares %d bytes, file has %d", size, len(data))
	}
	if metaLen > maxMetaLen || metaOff < headerSize ||
		metaOff > uint64(len(data)) || metaLen > uint64(len(data))-metaOff {
		return nil, badf("meta blob [%d, +%d) outside file of %d bytes", metaOff, metaLen, len(data))
	}
	meta := data[metaOff : metaOff+metaLen]
	if checksum(meta) != metaCRC {
		return nil, badf("meta checksum mismatch")
	}

	d := &decoder{b: meta}
	nDict, err := d.count("dictionary", maxDictLen, 4)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool, nDict)
	f.Dict = make([]string, nDict)
	for i := range f.Dict {
		s, err := d.str("dictionary string")
		if err != nil {
			return nil, err
		}
		if seen[s] {
			return nil, badf("duplicate dictionary string %q", s)
		}
		seen[s] = true
		f.Dict[i] = s
	}

	nRels, err := d.count("relation", maxRelations, 4)
	if err != nil {
		return nil, err
	}
	relNames := make(map[string]bool, nRels)
	f.Rels = make([]Relation, 0, nRels)
	for i := 0; i < nRels; i++ {
		sr, err := parseRelation(d, data)
		if err != nil {
			return nil, err
		}
		if relNames[sr.Rel.Name] {
			return nil, badf("duplicate relation %q", sr.Rel.Name)
		}
		relNames[sr.Rel.Name] = true
		f.Rels = append(f.Rels, sr)
	}

	nEncs, err := d.count("enc", maxEncs, 4)
	if err != nil {
		return nil, err
	}
	encKeys := make(map[string]bool, nEncs)
	f.Encs = make([]Enc, 0, nEncs)
	for i := 0; i < nEncs; i++ {
		se, err := parseEnc(d, data, relNames)
		if err != nil {
			return nil, err
		}
		if encKeys[se.Fingerprint] {
			return nil, badf("duplicate enc fingerprint %q", se.Fingerprint)
		}
		encKeys[se.Fingerprint] = true
		f.Encs = append(f.Encs, se)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return f, nil
}

// section validates one data-section reference — alignment, bounds,
// checksum — and returns the raw bytes. n is the element count, elem the
// element width in bytes.
func section(data []byte, what string, off, n uint64, elem int, crc uint64) ([]byte, error) {
	if off%8 != 0 {
		return nil, badf("%s section at offset %d is not 8-byte aligned", what, off)
	}
	if n > uint64(len(data))/uint64(elem) {
		return nil, badf("%s section of %d elements exceeds file size", what, n)
	}
	bytes := n * uint64(elem)
	if off < headerSize || off > uint64(len(data)) || bytes > uint64(len(data))-off {
		return nil, badf("%s section [%d, +%d) outside file of %d bytes", what, off, bytes, len(data))
	}
	sec := data[off : off+bytes]
	if checksum(sec) != crc {
		return nil, badf("%s section checksum mismatch", what)
	}
	return sec, nil
}

// valsView returns sec as a value column. On a little-endian host with an
// 8-aligned base the view aliases sec (zero-copy, the mmap fast path);
// otherwise it decodes into a fresh slice.
func valsView(sec []byte, n int) []relation.Value {
	if n == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&sec[0]))%8 == 0 {
		return unsafe.Slice((*relation.Value)(unsafe.Pointer(&sec[0])), n)
	}
	out := make([]relation.Value, n)
	for i := range out {
		out[i] = relation.Value(binary.LittleEndian.Uint64(sec[i*8:]))
	}
	return out
}

// offsView is valsView for int32 union-offset columns.
func offsView(sec []byte, n int) []int32 {
	if n == 0 {
		return nil
	}
	if hostLittle && uintptr(unsafe.Pointer(&sec[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&sec[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(sec[i*4:]))
	}
	return out
}

func parseRelation(d *decoder, data []byte) (Relation, error) {
	name, err := d.str("relation name")
	if err != nil {
		return Relation{}, err
	}
	if name == "" {
		return Relation{}, badf("empty relation name")
	}
	ver, err := d.u64("relation version")
	if err != nil {
		return Relation{}, err
	}
	arity, err := d.count("relation "+name+" schema", maxArity, 4)
	if err != nil {
		return Relation{}, err
	}
	if arity == 0 {
		return Relation{}, badf("relation %q has no attributes", name)
	}
	schema := make(relation.Schema, arity)
	for i := range schema {
		a, err := d.str("relation " + name + " attribute")
		if err != nil {
			return Relation{}, err
		}
		schema[i] = relation.Attribute(a)
	}
	if err := schema.Validate(); err != nil {
		return Relation{}, badf("relation %q: %v", name, err)
	}
	rows, err := d.u64("relation " + name + " row count")
	if err != nil {
		return Relation{}, err
	}
	off, err := d.u64("relation " + name + " data offset")
	if err != nil {
		return Relation{}, err
	}
	crc, err := d.u64("relation " + name + " data checksum")
	if err != nil {
		return Relation{}, err
	}
	if rows > uint64(len(data))/uint64(arity*8) {
		return Relation{}, badf("relation %q declares %d rows, more than the file can hold", name, rows)
	}
	sec, err := section(data, "relation "+name, off, rows*uint64(arity), 8, crc)
	if err != nil {
		return Relation{}, err
	}
	vals := valsView(sec, int(rows)*arity)
	rel := relation.New(name, schema)
	rel.Tuples = make([]relation.Tuple, rows)
	for i := range rel.Tuples {
		rel.Tuples[i] = relation.Tuple(vals[i*arity : (i+1)*arity : (i+1)*arity])
	}
	return Relation{Ver: ver, Rel: rel}, nil
}

func parseEnc(d *decoder, data []byte, relNames map[string]bool) (Enc, error) {
	fp, err := d.str("enc fingerprint")
	if err != nil {
		return Enc{}, err
	}
	tree, err := decodeTree(d)
	if err != nil {
		return Enc{}, err
	}
	nInputs, err := d.count("enc input", maxRelations, 12)
	if err != nil {
		return Enc{}, err
	}
	inputs := make([]Input, nInputs)
	for i := range inputs {
		if inputs[i].Name, err = d.str("enc input name"); err != nil {
			return Enc{}, err
		}
		if !relNames[inputs[i].Name] {
			return Enc{}, badf("enc input %q names no stored relation", inputs[i].Name)
		}
		if inputs[i].Ver, err = d.u64("enc input version"); err != nil {
			return Enc{}, err
		}
	}
	nSpans, err := d.count("enc span", maxNodes, 16)
	if err != nil {
		return Enc{}, err
	}
	spans := make([]frep.NodeSpan, nSpans)
	for i := range spans {
		if spans[i].ValLo, err = d.i32("enc span"); err != nil {
			return Enc{}, err
		}
		if spans[i].ValHi, err = d.i32("enc span"); err != nil {
			return Enc{}, err
		}
		if spans[i].OffLo, err = d.i32("enc span"); err != nil {
			return Enc{}, err
		}
		if spans[i].OffHi, err = d.i32("enc span"); err != nil {
			return Enc{}, err
		}
	}
	valsOff, err := d.u64("enc value-column offset")
	if err != nil {
		return Enc{}, err
	}
	valsN, err := d.u64("enc value-column length")
	if err != nil {
		return Enc{}, err
	}
	valsCRC, err := d.u64("enc value-column checksum")
	if err != nil {
		return Enc{}, err
	}
	offsOff, err := d.u64("enc offset-column offset")
	if err != nil {
		return Enc{}, err
	}
	offsN, err := d.u64("enc offset-column length")
	if err != nil {
		return Enc{}, err
	}
	offsCRC, err := d.u64("enc offset-column checksum")
	if err != nil {
		return Enc{}, err
	}
	valsSec, err := section(data, "enc values", valsOff, valsN, 8, valsCRC)
	if err != nil {
		return Enc{}, err
	}
	offsSec, err := section(data, "enc offsets", offsOff, offsN, 4, offsCRC)
	if err != nil {
		return Enc{}, err
	}
	arena := frep.Arena{Vals: valsView(valsSec, int(valsN)), Offs: offsView(offsSec, int(offsN))}
	enc, err := frep.AdoptEnc(tree, arena, spans)
	if err != nil {
		return Enc{}, badf("enc %q: %v", fp, err)
	}
	return Enc{Fingerprint: fp, Inputs: inputs, Enc: enc}, nil
}
