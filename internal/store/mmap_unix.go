//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mapFile maps path read-only. A private read-only mapping is all the
// format needs: the engine never writes through opened columns, and
// PROT_READ turns any accidental write into a loud fault instead of silent
// corruption.
func mapFile(path string) ([]byte, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	st, err := fd.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("store: cannot map %d-byte file", size)
	}
	return syscall.Mmap(int(fd.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
}

func unmapFile(data []byte) error { return syscall.Munmap(data) }
