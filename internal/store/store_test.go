package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"testing"

	"repro/internal/fbuild"
	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// testSet builds a small but fully featured snapshot: a dictionary, two
// relations (one empty), and a pre-built enc over a two-level tree.
func testSet(t *testing.T) *Set {
	t.Helper()
	r := relation.New("R", relation.Schema{"a", "b"})
	for _, tp := range [][2]relation.Value{{1, 10}, {1, 20}, {2, 10}, {3, 30}} {
		r.Append(tp[0], tp[1])
	}
	empty := relation.New("Void", relation.Schema{"v"})
	tr := ftree.New(
		[]*ftree.Node{ftree.NewNode("a").Add(ftree.NewNode("b"))},
		[]relation.AttrSet{relation.NewAttrSet("a", "b")},
	)
	enc, err := fbuild.BuildEnc([]*relation.Relation{r}, tr)
	if err != nil {
		t.Fatal(err)
	}
	return &Set{
		Ver:  7,
		Dict: []string{"apple", "pear", "plum"},
		Rels: []Relation{{Ver: 5, Rel: r}, {Ver: 2, Rel: empty}},
		Encs: []Enc{{Fingerprint: "q1", Inputs: []Input{{Name: "R", Ver: 5}}, Enc: enc}},
	}
}

func tuplesOf(e *frep.Enc) []relation.Tuple {
	var out []relation.Tuple
	e.Enumerate(func(tp relation.Tuple) bool { out = append(out, tp.Clone()); return true })
	return out
}

func checkFile(t *testing.T, set *Set, f *File) {
	t.Helper()
	if f.Ver != set.Ver {
		t.Fatalf("Ver = %d, want %d", f.Ver, set.Ver)
	}
	if len(f.Dict) != len(set.Dict) {
		t.Fatalf("dict has %d strings, want %d", len(f.Dict), len(set.Dict))
	}
	for i, s := range set.Dict {
		if f.Dict[i] != s {
			t.Fatalf("dict[%d] = %q, want %q", i, f.Dict[i], s)
		}
	}
	if len(f.Rels) != len(set.Rels) {
		t.Fatalf("%d relations, want %d", len(f.Rels), len(set.Rels))
	}
	for i, want := range set.Rels {
		got := f.Rels[i]
		if got.Ver != want.Ver || got.Rel.Name != want.Rel.Name || !got.Rel.Schema.Equal(want.Rel.Schema) {
			t.Fatalf("relation %d header mismatch: %+v", i, got)
		}
		if len(got.Rel.Tuples) != len(want.Rel.Tuples) {
			t.Fatalf("relation %q has %d tuples, want %d", want.Rel.Name, len(got.Rel.Tuples), len(want.Rel.Tuples))
		}
		for j := range want.Rel.Tuples {
			if got.Rel.Tuples[j].Compare(want.Rel.Tuples[j]) != 0 {
				t.Fatalf("relation %q tuple %d = %v, want %v", want.Rel.Name, j, got.Rel.Tuples[j], want.Rel.Tuples[j])
			}
		}
	}
	if len(f.Encs) != len(set.Encs) {
		t.Fatalf("%d encs, want %d", len(f.Encs), len(set.Encs))
	}
	for i, want := range set.Encs {
		got := f.Encs[i]
		if got.Fingerprint != want.Fingerprint {
			t.Fatalf("enc %d fingerprint %q, want %q", i, got.Fingerprint, want.Fingerprint)
		}
		if len(got.Inputs) != len(want.Inputs) || got.Inputs[0] != want.Inputs[0] {
			t.Fatalf("enc %d inputs %v, want %v", i, got.Inputs, want.Inputs)
		}
		wantT, gotT := tuplesOf(want.Enc), tuplesOf(got.Enc)
		if len(wantT) != len(gotT) {
			t.Fatalf("enc %d enumerates %d tuples, want %d", i, len(gotT), len(wantT))
		}
		for j := range wantT {
			if wantT[j].Compare(gotT[j]) != 0 {
				t.Fatalf("enc %d tuple %d = %v, want %v", i, j, gotT[j], wantT[j])
			}
		}
	}
}

func TestEncodeOpenBytesRoundTrip(t *testing.T) {
	set := testSet(t)
	buf, err := Encode(set)
	if err != nil {
		t.Fatal(err)
	}
	f, err := OpenBytes(buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mapped() {
		t.Fatal("OpenBytes claims to be mapped")
	}
	checkFile(t, set, f)
}

// TestWriteOpenRoundTrip exercises the real file path twice: the mmap fast
// path and the forced read-into-heap fallback must reconstruct identically.
func TestWriteOpenRoundTrip(t *testing.T) {
	set := testSet(t)
	path := filepath.Join(t.TempDir(), "snap.fdb")
	if err := Write(path, set); err != nil {
		t.Fatal(err)
	}
	for _, forceHeap := range []bool{false, true} {
		f, err := open(path, forceHeap)
		if err != nil {
			t.Fatalf("open(forceHeap=%v): %v", forceHeap, err)
		}
		checkFile(t, set, f)
		if err := f.Close(); err != nil {
			t.Fatalf("close(forceHeap=%v): %v", forceHeap, err)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(testSet(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(testSet(t))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two encodings of the same set differ")
	}
}

// TestOpenRejectsCorrupt mirrors internal/wire's frame-codec rejection
// tests: every truncation and byte flip of a valid image must yield an
// error wrapping ErrFormat, and must never panic.
func TestOpenRejectsCorrupt(t *testing.T) {
	buf, err := Encode(testSet(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenBytes(buf); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}

	reject := func(name string, img []byte) {
		t.Helper()
		f, err := OpenBytes(img)
		if err == nil {
			t.Errorf("%s: accepted", name)
			return
		}
		if !errors.Is(err, ErrFormat) {
			t.Errorf("%s: error %v does not wrap ErrFormat", name, err)
		}
		if f != nil {
			t.Errorf("%s: non-nil file alongside error", name)
		}
	}

	reject("empty", nil)
	reject("short header", buf[:headerSize-1])
	for _, cut := range []int{headerSize, pageSize - 1, pageSize + 8, len(buf) - 1} {
		reject("truncated", append([]byte(nil), buf[:cut]...))
	}
	// Flip one byte at a sweep of positions inside the checksummed regions
	// (header, meta blob, the first relation's data section — page padding
	// between sections is deliberately uncovered). Whatever the byte
	// encodes, some checksum or bound must catch it.
	metaOff := binary.LittleEndian.Uint64(buf[24:])
	metaLen := binary.LittleEndian.Uint64(buf[32:])
	var poss []int
	for pos := 0; pos < headerSize; pos++ {
		poss = append(poss, pos)
	}
	for pos := pageSize; pos < pageSize+4*2*8; pos += 7 { // R: 4 rows × 2 cols × 8 bytes
		poss = append(poss, pos)
	}
	for pos := metaOff; pos < metaOff+metaLen; pos += 13 {
		poss = append(poss, int(pos))
	}
	for _, pos := range poss {
		img := append([]byte(nil), buf...)
		img[pos] ^= 0x5a
		reject(fmt.Sprintf("byte flip at %d", pos), img)
	}
	// Grow without updating the declared size.
	reject("appended garbage", append(append([]byte(nil), buf...), 0xff))
}
