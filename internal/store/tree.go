package store

import (
	"repro/internal/ftree"
	"repro/internal/relation"
)

// F-tree serialisation. A tree is written as its pre-order node walk (attrs
// plus child count per node, which reconstructs the exact shape frep's
// pre-order span list depends on), followed by the Rels and Deps hyperedge
// sets and the Hidden/Consts markers. Attribute sets are written sorted so
// encoding a tree is deterministic.

func encodeAttrSet(e *encoder, s relation.AttrSet) {
	attrs := s.Sorted()
	e.u32(uint32(len(attrs)))
	for _, a := range attrs {
		e.str(string(a))
	}
}

func decodeAttrSet(d *decoder, what string) (relation.AttrSet, error) {
	n, err := d.count(what+" attr", maxNodes, 4)
	if err != nil {
		return nil, err
	}
	out := make(relation.AttrSet, n)
	for i := 0; i < n; i++ {
		a, err := d.str(what + " attr")
		if err != nil {
			return nil, err
		}
		out.Add(relation.Attribute(a))
	}
	return out, nil
}

func encodeTree(e *encoder, t *ftree.T) {
	var count func(n *ftree.Node) int
	count = func(n *ftree.Node) int {
		total := 1
		for _, c := range n.Children {
			total += count(c)
		}
		return total
	}
	total := 0
	for _, r := range t.Roots {
		total += count(r)
	}
	e.u32(uint32(total))
	e.u32(uint32(len(t.Roots)))
	var walk func(n *ftree.Node)
	walk = func(n *ftree.Node) {
		e.u32(uint32(len(n.Attrs)))
		for _, a := range n.Attrs {
			e.str(string(a))
		}
		e.u32(uint32(len(n.Children)))
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	e.u32(uint32(len(t.Rels)))
	for _, s := range t.Rels {
		encodeAttrSet(e, s)
	}
	e.u32(uint32(len(t.Deps)))
	for _, s := range t.Deps {
		encodeAttrSet(e, s)
	}
	encodeAttrSet(e, t.Hidden)
	encodeAttrSet(e, t.Consts)
}

// decodeTree reconstructs an f-tree, validating the node budget, nesting
// depth and (via ftree.Validate) the structural and path-constraint
// invariants before returning it.
func decodeTree(d *decoder) (*ftree.T, error) {
	total, err := d.count("tree node", maxNodes, 8)
	if err != nil {
		return nil, err
	}
	nRoots, err := d.count("tree root", maxNodes, 8)
	if err != nil {
		return nil, err
	}
	decoded := 0
	var node func(depth int) (*ftree.Node, error)
	node = func(depth int) (*ftree.Node, error) {
		if depth > maxTreeDepth {
			return nil, badf("tree nesting exceeds depth cap %d", maxTreeDepth)
		}
		if decoded++; decoded > total {
			return nil, badf("tree has more nodes than its declared count %d", total)
		}
		nAttrs, err := d.count("tree node attr", maxArity, 4)
		if err != nil {
			return nil, err
		}
		attrs := make([]relation.Attribute, nAttrs)
		for i := range attrs {
			a, err := d.str("tree node attr")
			if err != nil {
				return nil, err
			}
			attrs[i] = relation.Attribute(a)
		}
		n := ftree.NewNode(attrs...)
		nKids, err := d.count("tree child", maxNodes, 8)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nKids; i++ {
			c, err := node(depth + 1)
			if err != nil {
				return nil, err
			}
			n.Add(c)
		}
		return n, nil
	}
	roots := make([]*ftree.Node, nRoots)
	for i := range roots {
		if roots[i], err = node(1); err != nil {
			return nil, err
		}
	}
	if decoded != total {
		return nil, badf("tree declared %d nodes but encodes %d", total, decoded)
	}
	nRels, err := d.count("tree rel", maxRelations, 4)
	if err != nil {
		return nil, err
	}
	rels := make([]relation.AttrSet, nRels)
	for i := range rels {
		if rels[i], err = decodeAttrSet(d, "tree rel"); err != nil {
			return nil, err
		}
	}
	nDeps, err := d.count("tree dep", maxRelations, 4)
	if err != nil {
		return nil, err
	}
	deps := make([]relation.AttrSet, nDeps)
	for i := range deps {
		if deps[i], err = decodeAttrSet(d, "tree dep"); err != nil {
			return nil, err
		}
	}
	hidden, err := decodeAttrSet(d, "tree hidden")
	if err != nil {
		return nil, err
	}
	consts, err := decodeAttrSet(d, "tree const")
	if err != nil {
		return nil, err
	}
	t := &ftree.T{Roots: roots, Rels: rels, Deps: deps, Hidden: hidden, Consts: consts}
	if err := t.Validate(); err != nil {
		return nil, badf("invalid stored f-tree: %v", err)
	}
	return t, nil
}
