//go:build !unix

package store

import "errors"

// errNoMmap makes Open fall back to reading the file into the heap on
// platforms without a memory-mapping implementation here.
var errNoMmap = errors.New("store: mmap unavailable on this platform")

func mapFile(path string) ([]byte, error) { return nil, errNoMmap }

func unmapFile(data []byte) error { return nil }
