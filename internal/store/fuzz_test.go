package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/fbuild"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// fuzzSet is testSet without the *testing.T: the baseline image the fuzzer
// and the corpus generator mutate.
func fuzzSet() *Set {
	r := relation.New("R", relation.Schema{"a", "b"})
	for _, tp := range [][2]relation.Value{{1, 10}, {1, 20}, {2, 10}, {3, 30}} {
		r.Append(tp[0], tp[1])
	}
	tr := ftree.New(
		[]*ftree.Node{ftree.NewNode("a").Add(ftree.NewNode("b"))},
		[]relation.AttrSet{relation.NewAttrSet("a", "b")},
	)
	enc, err := fbuild.BuildEnc([]*relation.Relation{r}, tr)
	if err != nil {
		panic(err)
	}
	return &Set{
		Ver:  7,
		Dict: []string{"apple", "pear"},
		Rels: []Relation{{Ver: 5, Rel: r}},
		Encs: []Enc{{Fingerprint: "q1", Inputs: []Input{{Name: "R", Ver: 5}}, Enc: enc}},
	}
}

// hostileVariants derives structured corruptions of a valid image — the
// interesting corners a blind bit-flipper takes long to find. Each is both
// a fuzz seed and a checked-in corpus entry.
func hostileVariants(valid []byte) map[string][]byte {
	mut := func(f func(b []byte)) []byte {
		b := append([]byte(nil), valid...)
		f(b)
		return b
	}
	fixHeaderCRC := func(b []byte) {
		binary.LittleEndian.PutUint64(b[headerSize-8:], checksum(b[:headerSize-8]))
	}
	return map[string][]byte{
		"valid":            append([]byte(nil), valid...),
		"empty":            {},
		"short-header":     valid[:headerSize/2],
		"bad-magic":        mut(func(b []byte) { b[0] = 'X' }),
		"truncated-data":   valid[:pageSize+1],
		"truncated-meta":   valid[:len(valid)-3],
		"appended-garbage": append(append([]byte(nil), valid...), 0xde, 0xad),
		"bad-version": mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[8:], 99)
			fixHeaderCRC(b)
		}),
		"bad-flags": mut(func(b []byte) {
			binary.LittleEndian.PutUint32(b[12:], 0)
			fixHeaderCRC(b)
		}),
		"meta-off-oob": mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[24:], uint64(len(b))+pageSize)
			fixHeaderCRC(b)
		}),
		"meta-len-huge": mut(func(b []byte) {
			binary.LittleEndian.PutUint64(b[32:], 1<<40)
			fixHeaderCRC(b)
		}),
		"flipped-data": mut(func(b []byte) { b[pageSize] ^= 0xff }),
		"flipped-meta": mut(func(b []byte) {
			off := binary.LittleEndian.Uint64(b[24:])
			b[off+4] ^= 0xff
		}),
	}
}

// FuzzStoreOpen feeds arbitrary bytes to the snapshot reader. The contract
// under fuzzing is exactly the hard acceptance bar: a malformed input must
// yield an error wrapping ErrFormat — never a panic, never an out-of-bounds
// view — and an accepted input must reconstruct relations and encs that can
// be walked end to end safely.
func FuzzStoreOpen(f *testing.F) {
	valid, err := Encode(fuzzSet())
	if err != nil {
		f.Fatal(err)
	}
	for _, b := range hostileVariants(valid) {
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		file, err := OpenBytes(b)
		if err != nil {
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("error does not wrap ErrFormat: %v", err)
			}
			return
		}
		// Accepted: everything reconstructed must be safely walkable.
		for _, sr := range file.Rels {
			for _, tp := range sr.Rel.Tuples {
				for range tp {
				}
			}
		}
		for _, se := range file.Encs {
			se.Enc.Count()
			se.Enc.Enumerate(func(relation.Tuple) bool { return true })
		}
	})
}

// TestFuzzCorpusCheckedIn pins the corpus under testdata/fuzz/FuzzStoreOpen
// (the directory `go test -fuzz` also seeds from): every entry must decode
// as a corpus file and uphold the no-panic/typed-error contract. Regenerate
// with STORE_WRITE_CORPUS=1 go test ./internal/store -run TestFuzzCorpusCheckedIn.
func TestFuzzCorpusCheckedIn(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzStoreOpen")
	valid, err := Encode(fuzzSet())
	if err != nil {
		t.Fatal(err)
	}
	variants := hostileVariants(valid)
	if os.Getenv("STORE_WRITE_CORPUS") == "1" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, b := range variants {
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%s)\n", strconv.Quote(string(b)))
			if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < len(variants) {
		t.Fatalf("corpus has %d entries, want at least %d (regenerate with STORE_WRITE_CORPUS=1)",
			len(entries), len(variants))
	}
	for _, ent := range entries {
		body, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		var header, quoted string
		if _, err := fmt.Sscanf(string(body), "%s test fuzz v1\n", &header); err != nil || header != "go" {
			t.Fatalf("%s: not a go fuzz corpus file", ent.Name())
		}
		start, end := 0, len(body)
		for i := 0; i < len(body); i++ {
			if body[i] == '(' {
				start = i + 1
				break
			}
		}
		for i := len(body) - 1; i >= 0; i-- {
			if body[i] == ')' {
				end = i
				break
			}
		}
		quoted = string(body[start:end])
		raw, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s: cannot unquote payload: %v", ent.Name(), err)
		}
		if f, err := OpenBytes([]byte(raw)); err != nil && !errors.Is(err, ErrFormat) {
			t.Fatalf("%s: error does not wrap ErrFormat: %v", ent.Name(), err)
		} else if err == nil && f == nil {
			t.Fatalf("%s: nil file without error", ent.Name())
		}
	}
}
