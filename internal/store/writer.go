package store

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/frep"
	"repro/internal/relation"
)

// Relation is one persisted relation: its tuples plus the delta-store
// version the snapshot cut it at.
type Relation struct {
	Ver uint64
	Rel *relation.Relation
}

// Input names one statement input of a persisted Enc: the relation it was
// built from and the version that build reflected. A reopened database
// adopts the Enc only while every input is still at its recorded version.
type Enc struct {
	Fingerprint string
	Inputs      []Input
	Enc         *frep.Enc
}

// Input is a (relation name, delta-store version) pair.
type Input struct {
	Name string
	Ver  uint64
}

// Set is the content of a snapshot: the database write version it was cut
// at, the dictionary's code table, every relation, and any pre-built
// encoded representations worth persisting alongside the data.
type Set struct {
	Ver  uint64
	Dict []string
	Rels []Relation
	Encs []Enc
}

// align rounds off up to the next multiple of to (a power of two).
func align(off, to uint64) uint64 { return (off + to - 1) &^ (to - 1) }

// Encode serialises s into the snapshot format in memory. Callers that want
// the file on disk should use Write; Encode exists for tests and for
// building the fuzz corpus.
func Encode(s *Set) ([]byte, error) {
	// Lay out the page-aligned data sections first; the meta blob follows
	// the last section so its size does not shift the section offsets.
	type section struct {
		off   uint64
		bytes uint64
	}
	off := uint64(pageSize)
	place := func(bytes uint64) section {
		sec := section{off: off, bytes: bytes}
		off = align(off+bytes, pageSize)
		return sec
	}

	relSecs := make([]section, len(s.Rels))
	for i, sr := range s.Rels {
		if sr.Rel == nil {
			return nil, fmt.Errorf("store: relation %d is nil", i)
		}
		if sr.Rel.Name == "" {
			return nil, fmt.Errorf("store: relation %d has no name", i)
		}
		if err := sr.Rel.Schema.Validate(); err != nil {
			return nil, fmt.Errorf("store: relation %q: %v", sr.Rel.Name, err)
		}
		arity := len(sr.Rel.Schema)
		if arity == 0 || arity > maxArity {
			return nil, fmt.Errorf("store: relation %q arity %d out of range", sr.Rel.Name, arity)
		}
		for _, tp := range sr.Rel.Tuples {
			if len(tp) != arity {
				return nil, fmt.Errorf("store: relation %q tuple arity %d != schema arity %d",
					sr.Rel.Name, len(tp), arity)
			}
		}
		relSecs[i] = place(uint64(len(sr.Rel.Tuples)) * uint64(arity) * 8)
	}
	type encSecs struct {
		vals, offs section
	}
	eSecs := make([]encSecs, len(s.Encs))
	arenas := make([]frep.Arena, len(s.Encs))
	spanss := make([][]frep.NodeSpan, len(s.Encs))
	for i, se := range s.Encs {
		if se.Enc == nil {
			return nil, fmt.Errorf("store: enc %q is nil", se.Fingerprint)
		}
		arenas[i], spanss[i] = se.Enc.Export()
		eSecs[i].vals = place(uint64(len(arenas[i].Vals)) * 8)
		eSecs[i].offs = place(uint64(len(arenas[i].Offs)) * 4)
	}

	metaOff := align(off, 8)
	buf := make([]byte, metaOff)

	// Fill the data sections and compute their checksums.
	secCRC := func(sec section) uint64 { return checksum(buf[sec.off : sec.off+sec.bytes]) }
	for i, sr := range s.Rels {
		arity := len(sr.Rel.Schema)
		b := buf[relSecs[i].off:]
		for r, tp := range sr.Rel.Tuples {
			for c, v := range tp {
				binary.LittleEndian.PutUint64(b[(r*arity+c)*8:], uint64(v))
			}
		}
	}
	for i := range s.Encs {
		b := buf[eSecs[i].vals.off:]
		for j, v := range arenas[i].Vals {
			binary.LittleEndian.PutUint64(b[j*8:], uint64(v))
		}
		b = buf[eSecs[i].offs.off:]
		for j, v := range arenas[i].Offs {
			binary.LittleEndian.PutUint32(b[j*4:], uint32(v))
		}
	}

	// Meta blob: dictionary, relations, encs — with each section's
	// placement and checksum.
	m := &encoder{}
	m.u32(uint32(len(s.Dict)))
	for _, str := range s.Dict {
		if len(str) > maxStringLen {
			return nil, fmt.Errorf("store: dictionary string of %d bytes exceeds cap", len(str))
		}
		m.str(str)
	}
	m.u32(uint32(len(s.Rels)))
	for i, sr := range s.Rels {
		m.str(sr.Rel.Name)
		m.u64(sr.Ver)
		m.u32(uint32(len(sr.Rel.Schema)))
		for _, a := range sr.Rel.Schema {
			m.str(string(a))
		}
		m.u64(uint64(len(sr.Rel.Tuples)))
		m.u64(relSecs[i].off)
		m.u64(secCRC(relSecs[i]))
	}
	m.u32(uint32(len(s.Encs)))
	for i, se := range s.Encs {
		m.str(se.Fingerprint)
		encodeTree(m, se.Enc.Tree)
		m.u32(uint32(len(se.Inputs)))
		for _, in := range se.Inputs {
			m.str(in.Name)
			m.u64(in.Ver)
		}
		spans := spanss[i]
		m.u32(uint32(len(spans)))
		for _, sp := range spans {
			m.i32(sp.ValLo)
			m.i32(sp.ValHi)
			m.i32(sp.OffLo)
			m.i32(sp.OffHi)
		}
		m.u64(eSecs[i].vals.off)
		m.u64(uint64(len(arenas[i].Vals)))
		m.u64(secCRC(eSecs[i].vals))
		m.u64(eSecs[i].offs.off)
		m.u64(uint64(len(arenas[i].Offs)))
		m.u64(secCRC(eSecs[i].offs))
	}

	buf = append(buf, m.b...)

	// Header last: it records the meta placement and checksums.
	h := &encoder{b: buf[:0:headerSize]}
	h.b = append(h.b, magic...)
	h.u32(version)
	h.u32(flagLittleEndian)
	h.u64(s.Ver)
	h.u64(metaOff)
	h.u64(uint64(len(m.b)))
	h.u64(checksum(m.b))
	h.u64(uint64(len(buf)))
	h.u64(checksum(h.b))
	return buf, nil
}

// Write atomically serialises s to path: the bytes land in a temporary file
// in the same directory, are fsynced, and replace path by rename, so a
// crash mid-save can never leave a half-written snapshot under the final
// name.
func Write(path string, s *Set) error {
	buf, err := Encode(s)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("store: create temp snapshot: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("store: publish snapshot: %w", err)
	}
	return nil
}
