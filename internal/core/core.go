// Package core defines the select-project-join query model shared by the
// FDB engine, its optimisers and the relational baselines: queries of the
// form π_P σ_φ (R₁ × … × R_n) with φ a conjunction of attribute equalities
// and comparisons with constants (Section 2, "F-trees of a query").
//
// It also provides the attribute equivalence classes induced by a query's
// equalities, and a reference nested-loop evaluator used as ground truth by
// tests.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/fplan"
	"repro/internal/relation"
)

// Equality is one equi-join / equality selection condition A = B.
type Equality struct {
	A, B relation.Attribute
}

// ConstSel is one comparison with a constant, A θ c.
type ConstSel struct {
	A  relation.Attribute
	Op fplan.Cmp
	C  relation.Value
}

// Query is a select-project-join query over a list of relations with
// pairwise disjoint schemas. A nil Projection keeps all attributes.
type Query struct {
	Relations  []*relation.Relation
	Equalities []Equality
	Selections []ConstSel
	Projection []relation.Attribute
}

// Validate checks that schemas are disjoint and every referenced attribute
// exists.
func (q *Query) Validate() error {
	seen := relation.AttrSet{}
	for _, r := range q.Relations {
		if err := r.Schema.Validate(); err != nil {
			return err
		}
		for _, a := range r.Schema {
			if seen.Has(a) {
				return fmt.Errorf("core: attribute %q appears in two relations", a)
			}
			seen.Add(a)
		}
	}
	for _, e := range q.Equalities {
		if !seen.Has(e.A) || !seen.Has(e.B) {
			return fmt.Errorf("core: equality %s=%s references unknown attribute", e.A, e.B)
		}
	}
	for _, s := range q.Selections {
		if !seen.Has(s.A) {
			return fmt.Errorf("core: selection on unknown attribute %q", s.A)
		}
	}
	for _, a := range q.Projection {
		if !seen.Has(a) {
			return fmt.Errorf("core: projection of unknown attribute %q", a)
		}
	}
	return nil
}

// Fingerprint returns a canonical, injective encoding of the query's
// structure: relation names with their schemas, equalities, constant
// selections and the projection. Tuple data is NOT part of the fingerprint
// — two queries over the same catalogue fingerprint equally regardless of
// current contents, which is what makes it usable as a plan-cache key
// (cache owners must track data versions separately).
//
// The encoding is canonical: relations are sorted by name, each equality is
// ordered A ≤ B and the equality and selection lists are sorted, so
// syntactic permutations of one query share a fingerprint. The projection
// keeps its order (it is part of the requested output).
func (q *Query) Fingerprint() string {
	var b strings.Builder
	rels := make([]string, len(q.Relations))
	for i, r := range q.Relations {
		var rb strings.Builder
		fmt.Fprintf(&rb, "%q(", r.Name)
		for j, a := range r.Schema {
			if j > 0 {
				rb.WriteByte(',')
			}
			fmt.Fprintf(&rb, "%q", string(a))
		}
		rb.WriteByte(')')
		rels[i] = rb.String()
	}
	sort.Strings(rels)
	b.WriteString("R:")
	b.WriteString(strings.Join(rels, ";"))
	eqs := make([]string, len(q.Equalities))
	for i, e := range q.Equalities {
		a, bb := e.A, e.B
		if bb < a {
			a, bb = bb, a
		}
		eqs[i] = fmt.Sprintf("%q=%q", string(a), string(bb))
	}
	sort.Strings(eqs)
	b.WriteString("|E:")
	b.WriteString(strings.Join(eqs, ";"))
	sels := make([]string, len(q.Selections))
	for i, s := range q.Selections {
		sels[i] = fmt.Sprintf("%q%s%d", string(s.A), s.Op, int64(s.C))
	}
	sort.Strings(sels)
	b.WriteString("|S:")
	b.WriteString(strings.Join(sels, ";"))
	b.WriteString("|P:")
	if q.Projection != nil {
		parts := make([]string, len(q.Projection))
		for i, a := range q.Projection {
			parts[i] = fmt.Sprintf("%q", string(a))
		}
		b.WriteString(strings.Join(parts, ";"))
	} else {
		b.WriteString("*")
	}
	return b.String()
}

// Attributes returns all attributes of the query's relations, in relation
// then schema order.
func (q *Query) Attributes() []relation.Attribute {
	var out []relation.Attribute
	for _, r := range q.Relations {
		out = append(out, r.Schema...)
	}
	return out
}

// Schemas returns the relation schemas as attribute sets — the hyperedges
// used for dependency sets and for s(T).
func (q *Query) Schemas() []relation.AttrSet {
	out := make([]relation.AttrSet, len(q.Relations))
	for i, r := range q.Relations {
		out[i] = relation.NewAttrSet(r.Schema...)
	}
	return out
}

// Classes returns the attribute equivalence classes induced by the query's
// equalities (the node labels of any f-tree of the query), each sorted, in
// a deterministic order.
func (q *Query) Classes() []relation.AttrSet {
	attrs := q.Attributes()
	parent := map[relation.Attribute]relation.Attribute{}
	var find func(a relation.Attribute) relation.Attribute
	find = func(a relation.Attribute) relation.Attribute {
		if parent[a] == a {
			return a
		}
		r := find(parent[a])
		parent[a] = r
		return r
	}
	for _, a := range attrs {
		parent[a] = a
	}
	for _, e := range q.Equalities {
		ra, rb := find(e.A), find(e.B)
		if ra != rb {
			parent[rb] = ra
		}
	}
	groups := map[relation.Attribute]relation.AttrSet{}
	var order []relation.Attribute
	for _, a := range attrs {
		r := find(a)
		if groups[r] == nil {
			groups[r] = relation.AttrSet{}
			order = append(order, r)
		}
		groups[r].Add(a)
	}
	out := make([]relation.AttrSet, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}

// EvaluateFlat computes the query result by nested-loop product, selection
// and projection — the reference semantics used as ground truth in tests
// and by the size accounting of the experiments. Use the engines in
// internal/rdb or internal/volcano for realistic flat evaluation.
func (q *Query) EvaluateFlat() (*relation.Relation, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(q.Relations) == 0 {
		return nil, fmt.Errorf("core: query has no relations")
	}
	cur := q.Relations[0].Clone()
	for _, r := range q.Relations[1:] {
		cur = cur.Product(r)
	}
	idx := func(a relation.Attribute) int { return cur.Schema.Index(a) }
	out := cur.Select(func(t relation.Tuple) bool {
		for _, e := range q.Equalities {
			if t[idx(e.A)] != t[idx(e.B)] {
				return false
			}
		}
		for _, s := range q.Selections {
			if !cmpEval(s.Op, t[idx(s.A)], s.C) {
				return false
			}
		}
		return true
	})
	if q.Projection != nil {
		out = out.Project(q.Projection)
	}
	out.Dedup()
	out.Name = "result"
	return out, nil
}

// Match reports whether value v satisfies the selection.
func (s ConstSel) Match(v relation.Value) bool { return cmpEval(s.Op, v, s.C) }

func cmpEval(op fplan.Cmp, a, b relation.Value) bool {
	switch op {
	case fplan.Eq:
		return a == b
	case fplan.Ne:
		return a != b
	case fplan.Lt:
		return a < b
	case fplan.Le:
		return a <= b
	case fplan.Gt:
		return a > b
	case fplan.Ge:
		return a >= b
	}
	return false
}
