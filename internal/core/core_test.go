package core

import (
	"strings"
	"testing"

	"repro/internal/fplan"
	"repro/internal/relation"
)

func rel(name string, attrs ...relation.Attribute) *relation.Relation {
	return relation.New(name, relation.Schema(attrs))
}

func TestFingerprintCanonical(t *testing.T) {
	ra, rb := rel("R", "R.a", "R.b"), rel("S", "S.b", "S.c")
	q1 := &Query{
		Relations:  []*relation.Relation{ra, rb},
		Equalities: []Equality{{A: "R.b", B: "S.b"}},
		Selections: []ConstSel{{A: "R.a", Op: fplan.Le, C: 3}},
	}
	// Syntactic permutations: relation order, equality orientation,
	// selection order.
	q2 := &Query{
		Relations:  []*relation.Relation{rb, ra},
		Equalities: []Equality{{A: "S.b", B: "R.b"}},
		Selections: []ConstSel{{A: "R.a", Op: fplan.Le, C: 3}},
	}
	if q1.Fingerprint() != q2.Fingerprint() {
		t.Fatalf("permuted queries fingerprint differently:\n%s\n%s", q1.Fingerprint(), q2.Fingerprint())
	}
}

func TestFingerprintDistinguishes(t *testing.T) {
	ra, rb := rel("R", "R.a", "R.b"), rel("S", "S.b", "S.c")
	base := func() *Query {
		return &Query{
			Relations:  []*relation.Relation{ra, rb},
			Equalities: []Equality{{A: "R.b", B: "S.b"}},
		}
	}
	q := base()
	fp := q.Fingerprint()

	sel := base()
	sel.Selections = []ConstSel{{A: "R.a", Op: fplan.Eq, C: 1}}
	if sel.Fingerprint() == fp {
		t.Fatal("selection not part of the fingerprint")
	}
	sel2 := base()
	sel2.Selections = []ConstSel{{A: "R.a", Op: fplan.Eq, C: 2}}
	if sel2.Fingerprint() == sel.Fingerprint() {
		t.Fatal("selection constant not part of the fingerprint")
	}
	op := base()
	op.Selections = []ConstSel{{A: "R.a", Op: fplan.Ne, C: 1}}
	if op.Fingerprint() == sel.Fingerprint() {
		t.Fatal("selection operator not part of the fingerprint")
	}

	proj := base()
	proj.Projection = []relation.Attribute{"R.a", "S.c"}
	if proj.Fingerprint() == fp {
		t.Fatal("projection not part of the fingerprint")
	}
	proj2 := base()
	proj2.Projection = []relation.Attribute{"S.c", "R.a"}
	if proj2.Fingerprint() == proj.Fingerprint() {
		t.Fatal("projection order must be part of the fingerprint (it is the output order)")
	}
	// Empty (non-nil) projection differs from keep-all.
	proj3 := base()
	proj3.Projection = []relation.Attribute{}
	if proj3.Fingerprint() == fp {
		t.Fatal("empty projection aliases keep-all")
	}
	// Attribute names with metacharacters must not collide (the encoding
	// quotes every name).
	tricky1 := &Query{Relations: []*relation.Relation{rel("R", `R.a"`, "R.b")}}
	tricky2 := &Query{Relations: []*relation.Relation{rel("R", "R.a", `".R.b`)}}
	if tricky1.Fingerprint() == tricky2.Fingerprint() {
		t.Fatal("quoted attribute names collide")
	}
}

func TestValidate(t *testing.T) {
	ra, rb := rel("R", "R.a", "R.b"), rel("S", "S.b", "S.c")
	ok := &Query{Relations: []*relation.Relation{ra, rb}, Equalities: []Equality{{A: "R.b", B: "S.b"}}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	dup := &Query{Relations: []*relation.Relation{ra, rel("T", "R.a")}}
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "two relations") {
		t.Fatalf("duplicate attribute not rejected: %v", err)
	}
	badEq := &Query{Relations: []*relation.Relation{ra}, Equalities: []Equality{{A: "R.a", B: "X"}}}
	if badEq.Validate() == nil {
		t.Fatal("unknown equality attribute not rejected")
	}
	badSel := &Query{Relations: []*relation.Relation{ra}, Selections: []ConstSel{{A: "X", Op: fplan.Eq, C: 1}}}
	if badSel.Validate() == nil {
		t.Fatal("unknown selection attribute not rejected")
	}
	badProj := &Query{Relations: []*relation.Relation{ra}, Projection: []relation.Attribute{"X"}}
	if badProj.Validate() == nil {
		t.Fatal("unknown projection attribute not rejected")
	}
}

func TestClassesUnionFind(t *testing.T) {
	q := &Query{
		Relations: []*relation.Relation{
			rel("R", "a", "b"), rel("S", "c", "d"), rel("T", "e"),
		},
		Equalities: []Equality{{A: "b", B: "c"}, {A: "c", B: "d"}},
	}
	classes := q.Classes()
	if len(classes) != 3 {
		t.Fatalf("got %d classes, want 3: %v", len(classes), classes)
	}
	find := func(a relation.Attribute) relation.AttrSet {
		for _, c := range classes {
			if c.Has(a) {
				return c
			}
		}
		t.Fatalf("attribute %q in no class", a)
		return nil
	}
	joined := find("b")
	for _, a := range []relation.Attribute{"c", "d"} {
		if !joined.Has(a) {
			t.Fatalf("class of b misses %q: %v", a, joined)
		}
	}
	if len(find("a")) != 1 || len(find("e")) != 1 {
		t.Fatal("unjoined attributes must be singleton classes")
	}
}

func TestConstSelMatchAndEvaluateFlat(t *testing.T) {
	for _, tc := range []struct {
		op   fplan.Cmp
		v, c relation.Value
		want bool
	}{
		{fplan.Eq, 2, 2, true}, {fplan.Eq, 2, 3, false},
		{fplan.Ne, 2, 3, true}, {fplan.Lt, 2, 3, true},
		{fplan.Le, 3, 3, true}, {fplan.Gt, 4, 3, true},
		{fplan.Ge, 3, 3, true}, {fplan.Ge, 2, 3, false},
	} {
		if got := (ConstSel{A: "x", Op: tc.op, C: tc.c}).Match(tc.v); got != tc.want {
			t.Errorf("%d %s %d = %v, want %v", tc.v, tc.op, tc.c, got, tc.want)
		}
	}

	r := rel("R", "a", "b")
	r.Append(1, 1)
	r.Append(1, 2)
	r.Append(2, 2)
	s := rel("S", "c")
	s.Append(1)
	s.Append(2)
	q := &Query{
		Relations:  []*relation.Relation{r, s},
		Equalities: []Equality{{A: "b", B: "c"}},
		Selections: []ConstSel{{A: "a", Op: fplan.Eq, C: 1}},
		Projection: []relation.Attribute{"a", "c"},
	}
	out, err := q.EvaluateFlat()
	if err != nil {
		t.Fatal(err)
	}
	// σ_{a=1}(R ⋈ S) projected to (a, c): {(1,1), (1,2)}.
	if out.Cardinality() != 2 {
		t.Fatalf("flat evaluation has %d tuples, want 2:\n%v", out.Cardinality(), out.Tuples)
	}
}
