package stats

import (
	"testing"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

func TestCollect(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B"})
	r.Append(1, 1)
	r.Append(1, 2)
	r.Append(2, 2)
	c := Collect([]*relation.Relation{r})
	if c.Card["R"] != 3 {
		t.Fatalf("card = %d", c.Card["R"])
	}
	if c.Distinct["A"] != 2 || c.Distinct["B"] != 2 {
		t.Fatalf("distinct = %v", c.Distinct)
	}
}

func TestEstimateSizeProductVsPath(t *testing.T) {
	// Two independent attributes with 10 distinct values each: as a forest
	// the estimate is 10+10; as a chain it is 10 + 10*10.
	r := relation.New("R", relation.Schema{"A"})
	s := relation.New("S", relation.Schema{"B"})
	for i := 0; i < 10; i++ {
		r.Append(relation.Value(i))
		s.Append(relation.Value(i))
	}
	cat := Collect([]*relation.Relation{r, s})
	rels := []relation.AttrSet{relation.NewAttrSet("A"), relation.NewAttrSet("B")}

	forest := ftree.New([]*ftree.Node{ftree.NewNode("A"), ftree.NewNode("B")}, rels)
	chain := ftree.New([]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B"))}, rels)

	ef, ec := cat.EstimateSize(forest), cat.EstimateSize(chain)
	if ef != 20 {
		t.Fatalf("forest estimate = %v, want 20", ef)
	}
	if ec != 110 {
		t.Fatalf("chain estimate = %v, want 110", ec)
	}
	if ef >= ec {
		t.Fatal("estimate does not prefer the factorised shape")
	}
}

// TestEstimateTracksActualOnProduct: on a genuine product the estimate is
// exact (independence holds by construction).
func TestEstimateTracksActualOnProduct(t *testing.T) {
	r := relation.New("R", relation.Schema{"A"})
	s := relation.New("S", relation.Schema{"B"})
	for i := 0; i < 7; i++ {
		r.Append(relation.Value(i))
	}
	for i := 0; i < 4; i++ {
		s.Append(relation.Value(i))
	}
	cat := Collect([]*relation.Relation{r, s})
	rels := []relation.AttrSet{relation.NewAttrSet("A"), relation.NewAttrSet("B")}
	forest := ftree.New([]*ftree.Node{ftree.NewNode("A"), ftree.NewNode("B")}, rels)
	f, err := frep.FromRelation(forest, r.Product(s))
	if err != nil {
		t.Fatal(err)
	}
	if got := cat.EstimateSize(forest); got != float64(f.Size()) {
		t.Fatalf("estimate %v != actual %d", got, f.Size())
	}
}

func TestConstClassEstimatesOne(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B"})
	for i := 0; i < 5; i++ {
		r.Append(relation.Value(i), relation.Value(i%2))
	}
	cat := Collect([]*relation.Relation{r})
	rels := []relation.AttrSet{relation.NewAttrSet("A", "B")}
	chain := ftree.New([]*ftree.Node{ftree.NewNode("A").Add(ftree.NewNode("B"))}, rels)
	base := cat.EstimateSize(chain)
	chain.MarkConst("A")
	if got := cat.EstimateSize(chain); got >= base {
		t.Fatalf("const marking did not reduce the estimate: %v >= %v", got, base)
	}
}

func TestEstimatePlanCost(t *testing.T) {
	r := relation.New("R", relation.Schema{"A"})
	r.Append(1)
	cat := Collect([]*relation.Relation{r})
	tr := ftree.New([]*ftree.Node{ftree.NewNode("A")},
		[]relation.AttrSet{relation.NewAttrSet("A")})
	if got := cat.EstimatePlanCost([]*ftree.T{tr, tr}); got != 2*cat.EstimateSize(tr) {
		t.Fatalf("plan cost = %v", got)
	}
}
