// Package stats implements the catalogue-based cost measure of Section 4.1:
// given relation cardinalities and per-attribute distinct counts, it
// estimates the size of a factorisation over an f-tree as Σ_A |Q_anc(A)(D)|
// — the number of A-singletons is the number of distinct value combinations
// along A's root-to-ancestor path — using textbook independence and
// containment assumptions. The paper reports that this estimate-based cost
// leads to very similar f-plan choices as the asymptotic s(T) measure; the
// estimate is exposed as an alternative CostModel for the optimisers and
// for ablation benchmarks.
package stats

import (
	"repro/internal/ftree"
	"repro/internal/relation"
)

// Catalogue holds per-relation cardinalities and per-attribute distinct
// counts.
type Catalogue struct {
	Card     map[string]int
	Distinct map[relation.Attribute]int
}

// Collect scans the relations and builds the catalogue.
func Collect(rels []*relation.Relation) *Catalogue {
	c := &Catalogue{
		Card:     map[string]int{},
		Distinct: map[relation.Attribute]int{},
	}
	for _, r := range rels {
		c.Card[r.Name] = r.Cardinality()
		for _, a := range r.Schema {
			c.Distinct[a] = len(r.DistinctValues(a))
		}
	}
	return c
}

// classDistinct estimates the number of distinct values of an equivalence
// class: under the containment-of-value-sets assumption, the joined class
// has the minimum of its attributes' distinct counts.
func (c *Catalogue) classDistinct(t *ftree.T, n *ftree.Node) float64 {
	best := 0.0
	for _, a := range n.Attrs {
		if t.Consts.Has(a) {
			return 1
		}
		d, ok := c.Distinct[a]
		if !ok {
			continue
		}
		if best == 0 || float64(d) < best {
			best = float64(d)
		}
	}
	if best == 0 {
		best = 1
	}
	return best
}

// EstimateSize estimates the singleton count of a factorisation over t:
// for each node, the expected number of its unions' entries is the product
// of the distinct counts of the classes on its root path (attribute
// independence assumption), capped by the flat join size along that path;
// each entry contributes one singleton per visible class attribute.
func (c *Catalogue) EstimateSize(t *ftree.T) float64 {
	total := 0.0
	var walk func(n *ftree.Node, pathCombos float64)
	walk = func(n *ftree.Node, pathCombos float64) {
		combos := pathCombos * c.classDistinct(t, n)
		vis := 0
		for _, a := range n.Attrs {
			if !t.Hidden.Has(a) {
				vis++
			}
		}
		total += combos * float64(vis)
		for _, ch := range n.Children {
			walk(ch, combos)
		}
	}
	for _, r := range t.Roots {
		walk(r, 1)
	}
	return total
}

// EstimatePlanCost sums the size estimates of the trees traversed by a
// sequence of tree transforms — the estimate-based analogue of s(f).
// Callers apply the transforms themselves and feed the intermediate trees.
func (c *Catalogue) EstimatePlanCost(trees []*ftree.T) float64 {
	total := 0.0
	for _, t := range trees {
		total += c.EstimateSize(t)
	}
	return total
}
