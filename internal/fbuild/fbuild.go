// Package fbuild evaluates an equi-join query directly into a factorised
// representation over a chosen f-tree, without materialising any flat
// intermediate result — the core evaluation primitive of FDB on relational
// input (Sections 2 and 5; the O(|Q|·|D|^{s(T̂)}) construction of [19]).
//
// The f-tree's nodes are the attribute equivalence classes of the query; by
// the path constraint every relation's classes lie on one root-to-leaf
// path. Each relation is sorted once by its classes in path order; the
// builder then descends the f-tree, unifying the candidate values of each
// class across the participating relations with a leapfrog-style
// merge-intersection over sorted index ranges, and emits union entries
// whose subtrees are all non-empty (semijoin reduction comes for free).
package fbuild

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// relState carries one input relation through the recursive build.
type relState struct {
	rel *relation.Relation
	// nodes on the relation's root-to-leaf path, shallowest first; the
	// relation has at least one attribute in each of these classes.
	nodes []*ftree.Node
	// cols[i] are the column indexes of the relation's attributes labelled
	// by nodes[i] (usually one; several if a within-relation equality
	// merged two of its attributes into one class).
	cols [][]int
	// next is the index into nodes of the first class not yet bound.
	next int
	// lo, hi delimit the tuples consistent with all bound ancestors.
	lo, hi int
}

// builder holds the shared build context.
type builder struct {
	tree *ftree.T
	// pre-order intervals for subtree tests.
	in, out map[*ftree.Node]int
	// cancellation: ctx is polled every checkTick leapfrog rounds; a
	// non-nil err aborts the recursion.
	ctx  context.Context
	tick uint
	err  error
	// encoded-build state: the column builder and one reusable mark buffer
	// per recursion depth (entry rollback on empty subtrees).
	eb    *frep.EncBuilder
	marks [][]int32
}

// checkTick is how many leapfrog rounds pass between context polls.
const checkTick = 1024

// checkpoint polls the build's context once every checkTick calls and
// reports whether the build has been cancelled.
func (b *builder) checkpoint() bool {
	if b.err != nil {
		return true
	}
	b.tick++
	if b.tick%checkTick == 0 {
		if err := b.ctx.Err(); err != nil {
			b.err = err
			return true
		}
	}
	return false
}

// newBuilder numbers the tree in pre-order for subtree tests.
func newBuilder(ctx context.Context, t *ftree.T) *builder {
	b := &builder{tree: t, in: map[*ftree.Node]int{}, out: map[*ftree.Node]int{}, ctx: ctx}
	ctr := 0
	var number func(n *ftree.Node)
	number = func(n *ftree.Node) {
		b.in[n] = ctr
		ctr++
		for _, c := range n.Children {
			number(c)
		}
		b.out[n] = ctr
	}
	for _, r := range t.Roots {
		number(r)
	}
	return b
}

// SortFor sorts each relation by its root-to-leaf path order in t — exactly
// the order Build imposes — and verifies the path constraint. Callers that
// reuse relations across many Build invocations (prepared statements) pay
// the sort once here; Build's own SortBy then detects the sorted input and
// becomes a read-only no-op, so the relations can be shared by concurrent
// builds.
func SortFor(rels []*relation.Relation, t *ftree.T) error {
	b := newBuilder(context.Background(), t)
	for _, r := range rels {
		if _, err := b.newState(r); err != nil {
			return err
		}
	}
	return nil
}

// Build evaluates the natural join encoded by t over the given relations
// and returns its factorised representation over t. Every attribute of
// every relation must label a node of t, and each relation's nodes must lie
// on one root-to-leaf path (the path constraint). Relations are sorted in
// place by their path order (a no-op if already sorted, e.g. via SortFor).
func Build(rels []*relation.Relation, t *ftree.T) (*frep.FRep, error) {
	return BuildContext(context.Background(), rels, t)
}

// BuildContext is Build with cancellation: the construction polls ctx at
// regular checkpoints and aborts with ctx's error, so long factorisation
// builds can be abandoned by impatient callers.
func BuildContext(ctx context.Context, rels []*relation.Relation, t *ftree.T) (*frep.FRep, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b := newBuilder(ctx, t)

	states := make([]*relState, 0, len(rels))
	for _, r := range rels {
		st, err := b.newState(r)
		if err != nil {
			return nil, err
		}
		states = append(states, st)
	}

	fr := &frep.FRep{Tree: t}
	empty := false
	for _, root := range t.Roots {
		var mine []*relState
		for _, st := range states {
			if len(st.nodes) > 0 && b.inSubtree(st.nodes[0], root) {
				mine = append(mine, st)
			}
		}
		u := b.buildUnion(root, mine)
		if b.err != nil {
			return nil, b.err
		}
		if len(u.Entries) == 0 {
			empty = true
		}
		fr.Roots = append(fr.Roots, u)
	}
	fr.Empty = empty
	if empty {
		for i := range fr.Roots {
			fr.Roots[i] = &frep.Union{}
		}
	}
	return fr, nil
}

// BuildEnc evaluates the natural join encoded by t over the given relations
// directly into the arena-backed columnar representation — no intermediate
// pointer tree is ever materialised. Same contract as Build otherwise.
func BuildEnc(rels []*relation.Relation, t *ftree.T) (*frep.Enc, error) {
	return BuildEncContext(context.Background(), rels, t)
}

// BuildEncContext is BuildEnc with cancellation, mirroring BuildContext.
func BuildEncContext(ctx context.Context, rels []*relation.Relation, t *ftree.T) (*frep.Enc, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b := newBuilder(ctx, t)
	states := make([]*relState, 0, len(rels))
	for _, r := range rels {
		st, err := b.newState(r)
		if err != nil {
			return nil, err
		}
		states = append(states, st)
	}

	b.eb = frep.NewEncBuilder(t)
	empty := false
	for _, root := range t.Roots {
		var mine []*relState
		for _, st := range states {
			if len(st.nodes) > 0 && b.inSubtree(st.nodes[0], root) {
				mine = append(mine, st)
			}
		}
		ri := b.eb.Idx(root)
		n := b.buildUnionEnc(root, ri, mine, 0)
		b.eb.CloseUnion(ri)
		if b.err != nil {
			return nil, b.err
		}
		if n == 0 {
			empty = true
		}
	}
	if empty {
		return frep.NewEmptyEnc(t), nil
	}
	return b.eb.Finish(), nil
}

// markAt returns the reusable mark buffer for recursion depth d.
func (b *builder) markAt(d int) []int32 {
	for len(b.marks) <= d {
		b.marks = append(b.marks, nil)
	}
	return b.marks[d][:0]
}

// buildUnionEnc is buildUnion emitting entries straight into the column
// builder; it returns the number of entries emitted into the (still open)
// union of node. Entries whose subtree empties are rolled back.
//
// NOTE: the leapfrog core is a deliberate copy of buildUnion's (the two
// differ only in emission) — apply any join-logic fix to both; the
// TestBuildEncMatchesBuild parity test guards the results.
func (b *builder) buildUnionEnc(node *ftree.Node, ni int, states []*relState, depth int) int {
	var active []*relState
	for _, st := range states {
		if st.next < len(st.nodes) && st.nodes[st.next] == node {
			active = append(active, st)
		}
	}
	if len(active) == 0 {
		// No relation constrains this class: impossible for query-derived
		// trees (every class stems from some relation), so treat as empty.
		return 0
	}
	count := 0
	cur := make([]int, len(active)) // scan position within [lo,hi)
	for i, st := range active {
		cur[i] = st.lo
	}
	for {
		if b.checkpoint() {
			return count
		}
		var v relation.Value
		for i, st := range active {
			if cur[i] >= st.hi {
				return count
			}
			if val := st.rel.Tuples[cur[i]][st.cols[st.next][0]]; i == 0 || val > v {
				v = val
			}
		}
		agreed := true
		for i, st := range active {
			col := st.cols[st.next][0]
			cur[i] = st.seek(col, v, cur[i], st.hi)
			if cur[i] >= st.hi {
				return count
			}
			if st.rel.Tuples[cur[i]][col] != v {
				agreed = false
			}
		}
		if !agreed {
			continue
		}
		type saved struct{ lo, hi, next int }
		save := make([]saved, len(active))
		ok := true
		for i, st := range active {
			save[i] = saved{st.lo, st.hi, st.next}
			cols := st.cols[st.next]
			lo := cur[i]
			hi := st.seek(cols[0], v+1, lo, st.hi)
			for _, c := range cols[1:] {
				lo = st.seek(c, v, lo, hi)
				hi = st.seek(c, v+1, lo, hi)
			}
			if lo >= hi {
				ok = false
			}
			st.lo, st.hi = lo, hi
			st.next++
		}
		if ok {
			mark := b.markAt(depth)
			mark = b.eb.Mark(ni, mark)
			b.marks[depth] = mark
			b.eb.Append(ni, v)
			alive := true
			kids := b.eb.Kids(ni)
			for ci, child := range node.Children {
				var mine []*relState
				for _, st := range states {
					if st.next < len(st.nodes) && b.inSubtree(st.nodes[st.next], child) {
						mine = append(mine, st)
					}
				}
				if b.buildUnionEnc(child, kids[ci], mine, depth+1) == 0 {
					alive = false
					break
				}
				b.eb.CloseUnion(kids[ci])
			}
			if alive {
				count++
			} else {
				b.eb.Rollback(ni, b.marks[depth])
			}
		}
		for i, st := range active {
			st.lo, st.hi, st.next = save[i].lo, save[i].hi, save[i].next
			cur[i] = st.seek(st.cols[st.next][0], v+1, cur[i], st.hi)
		}
	}
}

// newState sorts the relation by its classes in path order and prepares its
// traversal state.
func (b *builder) newState(r *relation.Relation) (*relState, error) {
	byNode := map[*ftree.Node][]int{}
	var nodes []*ftree.Node
	for i, a := range r.Schema {
		n := b.tree.NodeOf(a)
		if n == nil {
			return nil, fmt.Errorf("fbuild: attribute %q of %s not in f-tree", a, r.Name)
		}
		if byNode[n] == nil {
			nodes = append(nodes, n)
		}
		byNode[n] = append(byNode[n], i)
	}
	// Path order = ascending pre-order number; verify the chain property.
	sort.Slice(nodes, func(i, j int) bool { return b.in[nodes[i]] < b.in[nodes[j]] })
	for i := 0; i+1 < len(nodes); i++ {
		if !b.inSubtree(nodes[i+1], nodes[i]) {
			return nil, fmt.Errorf("fbuild: relation %s violates the path constraint (classes %v and %v on different branches)",
				r.Name, nodes[i].Attrs, nodes[i+1].Attrs)
		}
	}
	st := &relState{rel: r, nodes: nodes, lo: 0, hi: r.Cardinality()}
	var order []relation.Attribute
	for _, n := range nodes {
		st.cols = append(st.cols, byNode[n])
		for _, c := range byNode[n] {
			order = append(order, r.Schema[c])
		}
	}
	r.SortBy(order)
	return st, nil
}

// inSubtree reports whether x lies in the subtree rooted at root.
func (b *builder) inSubtree(x, root *ftree.Node) bool {
	return b.in[root] <= b.in[x] && b.in[x] < b.out[root]
}

// seek returns the first index in [lo, hi) whose value in column col is at
// least v (tuples are sorted by col within the range).
func (st *relState) seek(col int, v relation.Value, lo, hi int) int {
	return lo + sort.Search(hi-lo, func(i int) bool {
		return st.rel.Tuples[lo+i][col] >= v
	})
}

// buildUnion constructs the union for node from the relations routed here.
// Relations in states either have node as their next class (active) or
// start deeper (dormant).
//
// NOTE: the leapfrog core (propose-max, seek/agree, range narrowing,
// save/restore) is intentionally duplicated in buildUnionEnc, which differs
// only in how entries are emitted — keep the two in lockstep (the
// TestBuildEncMatchesBuild parity test guards the results).
func (b *builder) buildUnion(node *ftree.Node, states []*relState) *frep.Union {
	var active []*relState
	for _, st := range states {
		if st.next < len(st.nodes) && st.nodes[st.next] == node {
			active = append(active, st)
		}
	}
	u := &frep.Union{}
	if len(active) == 0 {
		// No relation constrains this class: impossible for query-derived
		// trees (every class stems from some relation), so treat as empty.
		return u
	}

	// Leapfrog over the active relations' first class column.
	cur := make([]int, len(active)) // scan position within [lo,hi)
	for i, st := range active {
		cur[i] = st.lo
	}
	for {
		if b.checkpoint() {
			return u
		}
		// Propose the maximum of the current values; any relation exhausted
		// ends the union.
		var v relation.Value
		for i, st := range active {
			if cur[i] >= st.hi {
				return u
			}
			if val := st.rel.Tuples[cur[i]][st.cols[st.next][0]]; i == 0 || val > v {
				v = val
			}
		}
		// Seek all relations to >= v; retry while they disagree.
		agreed := true
		for i, st := range active {
			col := st.cols[st.next][0]
			cur[i] = st.seek(col, v, cur[i], st.hi)
			if cur[i] >= st.hi {
				return u
			}
			if st.rel.Tuples[cur[i]][col] != v {
				agreed = false
			}
		}
		if !agreed {
			continue
		}
		// Candidate v: narrow every active relation to its v-range,
		// including equality across extra same-class columns.
		type saved struct{ lo, hi, next int }
		save := make([]saved, len(active))
		ok := true
		for i, st := range active {
			save[i] = saved{st.lo, st.hi, st.next}
			cols := st.cols[st.next]
			lo := cur[i]
			hi := st.seek(cols[0], v+1, lo, st.hi)
			// Extra columns of the same class must also equal v; the range
			// [lo,hi) is sorted by them in order.
			for _, c := range cols[1:] {
				lo = st.seek(c, v, lo, hi)
				hi = st.seek(c, v+1, lo, hi)
			}
			if lo >= hi {
				ok = false
			}
			st.lo, st.hi = lo, hi
			st.next++
		}
		if ok {
			entry := frep.Entry{Val: v}
			alive := true
			for _, child := range node.Children {
				var mine []*relState
				for _, st := range states {
					if st.next < len(st.nodes) && b.inSubtree(st.nodes[st.next], child) {
						mine = append(mine, st)
					}
				}
				cu := b.buildUnion(child, mine)
				if len(cu.Entries) == 0 {
					alive = false
					break
				}
				entry.Children = append(entry.Children, cu)
			}
			if alive {
				// Fill any skipped child slots (when a later child produced
				// the emptiness we never reach here, so slots are complete).
				u.Entries = append(u.Entries, entry)
			}
		}
		// Restore and advance past v.
		for i, st := range active {
			st.lo, st.hi, st.next = save[i].lo, save[i].hi, save[i].next
			cur[i] = st.seek(st.cols[st.next][0], v+1, cur[i], st.hi)
		}
	}
}
