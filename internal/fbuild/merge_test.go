package fbuild

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/relation"
)

// TestMergeEncMatchesRebuild: folding random add/remove deltas into a built
// representation is column-for-column identical to rebuilding from the
// post-delta snapshots, across random queries, delta mixes and skews.
func TestMergeEncMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(90210))
	trials := 80
	if testing.Short() {
		trials = 25
	}
	merged := 0
	for trial := 0; trial < trials; trial++ {
		dist := gen.Uniform
		if trial%2 == 1 {
			dist = gen.Zipf
		}
		r := 1 + rng.Intn(3)
		a := r + rng.Intn(4)
		k := rng.Intn(min(a-1, 3) + 1)
		q, err := gen.RandomQuery(rng, r, a, 5+rng.Intn(60), k, dist, 8)
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
		if err != nil {
			continue
		}
		final := cloneRels(q.Relations)
		for _, rel := range final {
			rel.Dedup()
		}
		// Derive a base state and the delta that turns it into final:
		// "adds" are final tuples absent from the base, "dels" are extra
		// tuples present only in the base.
		base := make([]*relation.Relation, len(final))
		deltas := make([]RelDelta, len(final))
		for i, rel := range final {
			b := relation.New(rel.Name, rel.Schema)
			inFinal := map[string]bool{}
			for _, tp := range rel.Tuples {
				key := fmt.Sprint(tp)
				inFinal[key] = true
				if rng.Intn(10) == 0 { // ~10% of final is freshly added
					deltas[i].Adds = append(deltas[i].Adds, tp)
				} else {
					b.AppendTuple(tp)
				}
			}
			for n := rng.Intn(3); n > 0; n-- { // a few deleted strays
				tp := make(relation.Tuple, len(rel.Schema))
				for c := range tp {
					tp[c] = relation.Value(rng.Intn(80))
				}
				if !inFinal[fmt.Sprint(tp)] {
					deltas[i].Dels = append(deltas[i].Dels, tp)
					b.AppendTuple(tp)
				}
			}
			b.Dedup()
			base[i] = b
		}
		old, err := BuildEnc(base, tr.Clone())
		if err != nil {
			t.Fatalf("trial %d: base build: %v", trial, err)
		}
		want, err := BuildEnc(cloneRels(final), tr.Clone())
		if err != nil {
			t.Fatalf("trial %d: rebuild: %v", trial, err)
		}
		got, ok, err := MergeEnc(final, tr.Clone(), old, deltas)
		if err != nil {
			t.Fatalf("trial %d: merge: %v", trial, err)
		}
		if !ok {
			if !old.IsEmpty() {
				t.Fatalf("trial %d: merge refused a non-empty base", trial)
			}
			continue // empty base: the caller would rebuild; nothing to compare
		}
		merged++
		if err := got.Validate(); err != nil {
			t.Fatalf("trial %d: merged enc invalid: %v\ntree:\n%s", trial, err, tr)
		}
		if !got.Equal(want) {
			t.Fatalf("trial %d: merged enc differs from rebuild\ntree:\n%s", trial, tr)
		}
	}
	if merged == 0 {
		t.Fatal("no trial exercised the merge path")
	}
}

// TestMergeEncNoDelta: an all-empty delta set degenerates to whole-root
// bulk copies and reproduces the input exactly.
func TestMergeEncNoDelta(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := gen.ChainQuery(rng, 3, 50, 20)
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rels := cloneRels(q.Relations)
	for _, r := range rels {
		r.Dedup()
	}
	old, err := BuildEnc(rels, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := MergeEnc(rels, tr.Clone(), old, make([]RelDelta, len(rels)))
	if err != nil || !ok {
		t.Fatalf("merge: ok=%v err=%v", ok, err)
	}
	if !got.Equal(old) {
		t.Fatal("no-delta merge changed the representation")
	}
}

// TestMergeEncToEmpty: deletions that kill every joining tuple collapse the
// merge to the canonical empty representation.
func TestMergeEncToEmpty(t *testing.T) {
	mk := func(vals [][2]int) *relation.Relation {
		r := relation.New("R", relation.Schema{"R.a", "R.b"})
		for _, v := range vals {
			r.Append(relation.Value(v[0]), relation.Value(v[1]))
		}
		return r
	}
	s := relation.New("S", relation.Schema{"S.a"})
	s.Append(relation.Value(1))
	full := mk([][2]int{{1, 10}, {1, 11}})
	tr, _, err := opt.OptimalFTree(
		[]relation.AttrSet{relation.NewAttrSet("R.a", "S.a"), relation.NewAttrSet("R.b")},
		[]relation.AttrSet{relation.NewAttrSet("R.a", "R.b"), relation.NewAttrSet("S.a")},
		opt.TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	old, err := BuildEnc([]*relation.Relation{full, s}, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	empty := mk(nil)
	got, ok, err := MergeEnc([]*relation.Relation{empty, s}, tr.Clone(), old,
		[]RelDelta{{Dels: full.Tuples}, {}})
	if err != nil || !ok {
		t.Fatalf("merge: ok=%v err=%v", ok, err)
	}
	if !got.IsEmpty() {
		t.Fatal("merge of total deletion should be empty")
	}
}

// TestMergeEncRefusals: nil/empty bases and shape mismatches report
// not-applicable instead of corrupting anything.
func TestMergeEncRefusals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := gen.ChainQuery(rng, 2, 30, 10)
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rels := cloneRels(q.Relations)
	for _, r := range rels {
		r.Dedup()
	}
	if _, ok, _ := MergeEnc(rels, tr.Clone(), nil, make([]RelDelta, len(rels))); ok {
		t.Fatal("merge into nil must refuse")
	}
	old, err := BuildEnc(rels, tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := MergeEnc(rels, tr.Clone(), old, nil); ok {
		t.Fatal("delta/relation count mismatch must refuse")
	}
}

// TestMergeEncCancel: a cancelled context aborts the merge.
func TestMergeEncCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	q := bigRetailerLike(rng)
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rels := cloneRels(q.Relations)
	for _, r := range rels {
		r.Dedup()
	}
	old, err := BuildEnc(cloneRels(rels), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	deltas := make([]RelDelta, len(rels))
	deltas[0].Adds = rels[0].Tuples
	if _, _, err := MergeEncContext(ctx, rels, tr.Clone(), old, deltas); err == nil {
		t.Fatal("cancelled merge should report the context error")
	}
}

// TestSortIndex: the exported sort index matches the order SortFor imposes.
func TestSortIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		q, err := gen.RandomQuery(rng, 1+rng.Intn(3), 2+rng.Intn(4), 5+rng.Intn(40), rng.Intn(2), gen.Uniform, 6)
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
		if err != nil {
			continue
		}
		rels := cloneRels(q.Relations)
		if err := SortFor(rels, tr); err != nil {
			t.Fatal(err)
		}
		for _, r := range rels {
			idx, err := SortIndex(r, tr)
			if err != nil {
				t.Fatal(err)
			}
			if len(idx) != len(r.Schema) {
				t.Fatalf("index %v does not cover schema %v", idx, r.Schema)
			}
			for k := 1; k < len(r.Tuples); k++ {
				ta, tb := r.Tuples[k-1], r.Tuples[k]
				cmp := 0
				for _, c := range idx {
					if ta[c] != tb[c] {
						if ta[c] > tb[c] {
							cmp = 1
						} else {
							cmp = -1
						}
						break
					}
				}
				if cmp > 0 {
					t.Fatalf("relation %s not sorted by its SortIndex %v", r.Name, idx)
				}
			}
		}
	}
}
