package fbuild

import (
	"context"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/relation"
)

// TestBuildEncParallelMatchesSerial: the stitched parallel build validates
// and is structurally equal (column for column) to the serial build, across
// random queries, worker counts and value skews.
func TestBuildEncParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 60; trial++ {
		dist := gen.Uniform
		if trial%2 == 1 {
			dist = gen.Zipf
		}
		r := 1 + rng.Intn(3)
		a := r + rng.Intn(4)
		k := rng.Intn(min(a-1, 3) + 1)
		q, err := gen.RandomQuery(rng, r, a, 1+rng.Intn(60), k, dist, 6)
		if err != nil {
			t.Fatal(err)
		}
		tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
		if err != nil {
			continue
		}
		serial, err := BuildEnc(cloneRels(q.Relations), tr.Clone())
		if err != nil {
			t.Fatalf("trial %d: serial: %v", trial, err)
		}
		for _, workers := range []int{2, 3, 4, 8} {
			par, err := BuildEncParallel(cloneRels(q.Relations), tr.Clone(), workers)
			if err != nil {
				t.Fatalf("trial %d (p=%d): %v", trial, workers, err)
			}
			if err := par.Validate(); err != nil {
				t.Fatalf("trial %d (p=%d): stitched enc invalid: %v\ntree:\n%s", trial, workers, err, tr)
			}
			if !par.Equal(serial) {
				t.Fatalf("trial %d (p=%d): parallel build differs from serial\ntree:\n%s", trial, workers, tr)
			}
		}
	}
}

// TestBuildEncParallelEmpty: an empty join comes back as the canonical
// empty representation from the parallel path too.
func TestBuildEncParallelEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := gen.ChainQuery(rng, 3, 40, 1000) // sparse: joins almost surely empty
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := BuildEnc(cloneRels(q.Relations), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildEncParallel(cloneRels(q.Relations), tr.Clone(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.IsEmpty() != serial.IsEmpty() {
		t.Fatalf("parallel empty=%v, serial empty=%v", par.IsEmpty(), serial.IsEmpty())
	}
	if !par.Equal(serial) {
		t.Fatal("parallel and serial empty representations differ")
	}
}

// TestBuildEncParallelCancel: a cancelled context aborts the parallel build
// with the context's error.
func TestBuildEncParallelCancel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q := bigRetailerLike(rng)
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildEncParallelContext(ctx, cloneRels(q.Relations), tr, 4); err == nil {
		t.Fatal("cancelled parallel build did not fail")
	}
}

// TestBuildEncParallelOversubscribed: worker counts far beyond GOMAXPROCS
// still produce the right result (goroutines merely time-share).
func TestBuildEncParallelOversubscribed(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	q := bigRetailerLike(rng)
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := BuildEnc(cloneRels(q.Relations), tr.Clone())
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildEncParallel(cloneRels(q.Relations), tr.Clone(), 64*runtime.GOMAXPROCS(0))
	if err != nil {
		t.Fatal(err)
	}
	if !par.Equal(serial) {
		t.Fatal("oversubscribed parallel build differs from serial")
	}
}

// bigRetailerLike is a three-relation many-to-many join big enough that the
// parallel build actually splits it into morsels.
func bigRetailerLike(rng *rand.Rand) *core.Query {
	orders := relation.New("Orders", relation.Schema{"o_oid", "o_item"})
	for i := 0; i < 2000; i++ {
		orders.Append(relation.Value(i+1), relation.Value(rng.Intn(50)+1))
	}
	orders.Dedup()
	stock := relation.New("Stock", relation.Schema{"s_location", "s_item"})
	for i := 0; i < 800; i++ {
		stock.Append(relation.Value(rng.Intn(40)+1), relation.Value(rng.Intn(50)+1))
	}
	stock.Dedup()
	disp := relation.New("Disp", relation.Schema{"d_dispatcher", "d_location"})
	for i := 0; i < 300; i++ {
		disp.Append(relation.Value(rng.Intn(120)+1), relation.Value(rng.Intn(40)+1))
	}
	disp.Dedup()
	return &core.Query{
		Relations: []*relation.Relation{orders, stock, disp},
		Equalities: []core.Equality{
			{A: "o_item", B: "s_item"},
			{A: "s_location", B: "d_location"},
		},
	}
}
