package fbuild

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ftree"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/relation"
)

// buildTreeFor derives an optimal f-tree for the query.
func buildTreeFor(t *testing.T, q *core.Query) *ftree.T {
	t.Helper()
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("optimal tree invalid: %v\n%s", err, tr)
	}
	return tr
}

// TestGroceryQ1 builds Q1 = Orders ⋈ Store ⋈ Disp factorised and checks it
// against the reference evaluator.
func TestGroceryQ1(t *testing.T) {
	rels, _ := gen.Grocery()
	q := &core.Query{
		Relations: rels[:3], // Orders, Store, Disp
		Equalities: []core.Equality{
			{A: "o_item", B: "s_item"},
			{A: "s_location", B: "d_location"},
		},
	}
	tr := buildTreeFor(t, q)
	f, err := Build(q.Relations, tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	want, err := q.EvaluateFlat()
	if err != nil {
		t.Fatal(err)
	}
	if want.Cardinality() != 14 {
		t.Fatalf("reference Q1 has %d tuples, want 14", want.Cardinality())
	}
	got := f.Relation("got").Project(want.Schema)
	if !got.Equal(want) {
		t.Fatalf("factorised Q1 wrong:\n%s\nwant:\n%s\ntree:\n%s", got, want, tr)
	}
	if f.Count() != 14 {
		t.Fatalf("Count = %d, want 14", f.Count())
	}
	// The factorised result must be smaller than the flat one.
	if f.Size() >= want.DataElements() {
		t.Fatalf("factorised size %d not below flat size %d", f.Size(), want.DataElements())
	}
}

// TestRandomJoinsAgainstReference is the main end-to-end property test:
// random schemas, data and equalities; the factorised result over an
// optimal f-tree must equal the reference nested-loop evaluation.
func TestRandomJoinsAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		r := 1 + rng.Intn(3)
		a := r + rng.Intn(4)
		k := rng.Intn(min(a-1, 3) + 1)
		q, err := gen.RandomQuery(rng, r, a, 1+rng.Intn(8), k, gen.Uniform, 4)
		if err != nil {
			t.Fatal(err)
		}
		tr := buildTreeFor(t, q)
		f, err := Build(cloneRels(q.Relations), tr)
		if err != nil {
			t.Fatalf("trial %d: %v\ntree:\n%s", trial, err, tr)
		}
		if err := f.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want, err := q.EvaluateFlat()
		if err != nil {
			t.Fatal(err)
		}
		if f.IsEmpty() {
			if want.Cardinality() != 0 {
				t.Fatalf("trial %d: engine says empty, reference has %d tuples", trial, want.Cardinality())
			}
			continue
		}
		got := f.Relation("got").Project(want.Schema)
		if !got.Equal(want) {
			t.Fatalf("trial %d: mismatch\ngot:\n%s\nwant:\n%s\ntree:\n%s", trial, got, want, tr)
		}
	}
}

// TestChainQueryFactorisationGap checks Example 6: on chain queries the
// factorised size stays near-linear while the flat result explodes.
func TestChainQueryFactorisationGap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q := gen.ChainQuery(rng, 4, 30, 3) // dense joins: values in [1,3]
	tr := buildTreeFor(t, q)
	f, err := Build(cloneRels(q.Relations), tr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := q.EvaluateFlat()
	if err != nil {
		t.Fatal(err)
	}
	got := f.Relation("got").Project(want.Schema)
	if !got.Equal(want) {
		t.Fatal("chain query result wrong")
	}
	flat := want.DataElements()
	if want.Cardinality() > 0 && f.Size() >= flat {
		t.Fatalf("factorised size %d >= flat size %d", f.Size(), flat)
	}
}

// TestPathConstraintViolationRejected: a tree separating one relation's
// attributes across branches must be rejected.
func TestPathConstraintViolationRejected(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B"})
	r.Append(1, 2)
	root := ftree.NewNode("C")
	root.Add(ftree.NewNode("A"), ftree.NewNode("B"))
	tr := ftree.New([]*ftree.Node{root}, []relation.AttrSet{
		relation.NewAttrSet("A", "B"), relation.NewAttrSet("C")})
	s := relation.New("S", relation.Schema{"C"})
	s.Append(7)
	if _, err := Build([]*relation.Relation{r, s}, tr); err == nil {
		t.Fatal("path constraint violation accepted")
	}
}

func TestMissingAttributeRejected(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "Z"})
	r.Append(1, 2)
	tr := ftree.New([]*ftree.Node{ftree.NewNode("A")},
		[]relation.AttrSet{relation.NewAttrSet("A", "Z")})
	if _, err := Build([]*relation.Relation{r}, tr); err == nil {
		t.Fatal("missing attribute accepted")
	}
}

func TestEmptyJoinResult(t *testing.T) {
	r := relation.New("R", relation.Schema{"A"})
	r.Append(1)
	s := relation.New("S", relation.Schema{"B"})
	s.Append(2)
	// Join A = B with disjoint values: empty.
	root := ftree.NewNode("A", "B")
	tr := ftree.New([]*ftree.Node{root}, []relation.AttrSet{
		relation.NewAttrSet("A"), relation.NewAttrSet("B")})
	f, err := Build([]*relation.Relation{r, s}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !f.IsEmpty() || f.Count() != 0 {
		t.Fatal("disjoint join should be empty")
	}
}

// TestWithinRelationEquality: two attributes of the same relation in one
// class (selection A = B evaluated at build time).
func TestWithinRelationEquality(t *testing.T) {
	r := relation.New("R", relation.Schema{"A", "B", "C"})
	r.Append(1, 1, 5)
	r.Append(1, 2, 6)
	r.Append(3, 3, 7)
	root := ftree.NewNode("A", "B").Add(ftree.NewNode("C"))
	tr := ftree.New([]*ftree.Node{root},
		[]relation.AttrSet{relation.NewAttrSet("A", "B", "C")})
	f, err := Build([]*relation.Relation{r}, tr)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Select(func(tp relation.Tuple) bool { return tp[0] == tp[1] })
	got := f.Relation("got").Project(want.Schema)
	if !got.Equal(want) {
		t.Fatalf("within-relation equality wrong:\n%s\nwant:\n%s", got, want)
	}
}

func cloneRels(rels []*relation.Relation) []*relation.Relation {
	out := make([]*relation.Relation, len(rels))
	for i, r := range rels {
		out[i] = r.Clone()
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestBuildEncMatchesBuild: on random queries, the encoded build produces
// exactly the encoding of the pointer build (same tree, same data, same
// layout), and it validates.
func TestBuildEncMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 40; i++ {
		q, err := gen.RandomQuery(rng, 3, 7, 40, 2, gen.Uniform, 8)
		if err != nil {
			continue
		}
		tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
		if err != nil {
			continue
		}
		fr, err := Build(cloneRels(q.Relations), tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		enc, err := BuildEnc(cloneRels(q.Relations), tr.Clone())
		if err != nil {
			t.Fatal(err)
		}
		if err := enc.Validate(); err != nil {
			t.Fatalf("encoded build invalid: %v", err)
		}
		if !enc.Equal(fr.Encode()) {
			t.Fatalf("encoded build differs from encoded pointer build\ntree:\n%s", tr)
		}
		if !enc.Decode().Equal(fr) {
			t.Fatalf("decoded encoded build differs from pointer build\ntree:\n%s", tr)
		}
	}
}

// TestBuildEncEmpty: the encoded build detects empty joins like Build.
func TestBuildEncEmpty(t *testing.T) {
	r := relation.New("R", relation.Schema{"A"})
	r.Append(1)
	s := relation.New("S", relation.Schema{"B"})
	s.Append(2)
	root := ftree.NewNode("A", "B")
	tr := ftree.New([]*ftree.Node{root}, []relation.AttrSet{
		relation.NewAttrSet("A"), relation.NewAttrSet("B")})
	e, err := BuildEnc([]*relation.Relation{r, s}, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !e.IsEmpty() || e.Count() != 0 {
		t.Fatal("disjoint encoded join should be empty")
	}
}
