// Incremental maintenance of encoded f-representations. MergeEnc folds a
// set of per-relation deltas into an existing arena-backed representation
// without rebuilding the world: the root union concatenates its entries in
// ascending value order and the fragment below any contiguous entry run is
// contiguous in every descendant column, so untouched runs bulk-copy
// (frep.EncBuilder.CopyEntries) and only the root values actually touched
// by a delta are re-derived with the ordinary leapfrog build, narrowed to
// one value — the same narrowing the morsel-parallel build applies per
// value range. Roots no delta can reach copy wholesale; a delta on a
// relation that is dormant at its root (no root-class attribute) can affect
// every entry, so that root rebuilds in full.
package fbuild

import (
	"context"
	"sort"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// RelDelta is the net change applied to one input relation since the
// representation being merged into was built: tuples added and removed,
// under set semantics. Both lists may be over-approximate in the values
// they touch (a delta tuple that changed nothing costs one narrowed
// rebuild of its root value), but the rels passed alongside must be the
// exact post-delta snapshots.
type RelDelta struct {
	Adds []relation.Tuple
	Dels []relation.Tuple
}

func (d RelDelta) empty() bool { return len(d.Adds) == 0 && len(d.Dels) == 0 }

// MergeEnc folds deltas into old, producing the representation BuildEnc
// would build from rels over t. rels are the post-delta snapshots (sorted
// in path order or sortable, exactly as for BuildEnc), t must have the same
// pre-order shape as old.Tree (a fresh clone of the statement tree), and
// deltas[i] describes how rels[i] differs from the snapshot old was built
// from. The second return is false when the merge is structurally
// inapplicable (old empty or shape mismatch) — the caller should fall back
// to a full build; the cost threshold for that fallback is the caller's.
func MergeEnc(rels []*relation.Relation, t *ftree.T, old *frep.Enc, deltas []RelDelta) (*frep.Enc, bool, error) {
	return MergeEncContext(context.Background(), rels, t, old, deltas)
}

// MergeEncContext is MergeEnc with cancellation, polled at the same
// checkpoints as the full build.
func MergeEncContext(ctx context.Context, rels []*relation.Relation, t *ftree.T, old *frep.Enc, deltas []RelDelta) (*frep.Enc, bool, error) {
	if old == nil || old.IsEmpty() || len(rels) != len(deltas) {
		return nil, false, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	b := newBuilder(ctx, t)
	if len(b.in) != old.NodeCount() {
		return nil, false, nil
	}
	states := make([]*relState, 0, len(rels))
	for _, r := range rels {
		st, err := b.newState(r)
		if err != nil {
			return nil, false, err
		}
		states = append(states, st)
	}
	b.eb = frep.NewEncBuilder(t)
	empty := false
	for k, root := range t.Roots {
		ri := b.eb.Idx(root)
		oldRi := old.Roots()[k]
		var mine []*relState
		anchored := true // every changed relation has root as its first class
		changed := false
		var touched []relation.Value
		for i, st := range states {
			if len(st.nodes) == 0 || !b.inSubtree(st.nodes[0], root) {
				continue
			}
			mine = append(mine, st)
			if deltas[i].empty() {
				continue
			}
			changed = true
			if st.nodes[0] != root {
				anchored = false
				continue
			}
			cols := st.cols[0]
			for _, lists := range [][]relation.Tuple{deltas[i].Adds, deltas[i].Dels} {
				for _, tp := range lists {
					for _, c := range cols {
						touched = append(touched, tp[c])
					}
				}
			}
		}
		n := 0
		switch {
		case !changed:
			// Nothing under this root moved: one bulk copy of the whole
			// subtree (a root has exactly one union).
			b.eb.CopyUnions(old, oldRi, ri, 0, 1)
			n = old.NumEntries(oldRi)
		case !anchored:
			// A dormant relation changed: its tuples join under every root
			// value, so the incremental walk has no touched set — rebuild.
			n = b.buildUnionEnc(root, ri, mine, 0)
			b.eb.CloseUnion(ri)
		default:
			sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
			touched = dedupValues(touched)
			n = b.mergeRoot(root, ri, old, oldRi, mine, touched)
			b.eb.CloseUnion(ri)
		}
		if b.err != nil {
			return nil, false, b.err
		}
		if n == 0 {
			empty = true
		}
	}
	if empty {
		return frep.NewEmptyEnc(t), true, nil
	}
	return b.eb.Finish(), true, nil
}

// mergeRoot emits root's (single) union by interleaving bulk copies of the
// untouched old entry runs with per-value leapfrog rebuilds of the touched
// values, in ascending value order. Returns the number of entries emitted;
// the union is left open for the caller to close.
func (b *builder) mergeRoot(root *ftree.Node, ri int, old *frep.Enc, oldRi int, mine []*relState, touched []relation.Value) int {
	oldVals := old.Vals(oldRi)
	count, oi := 0, 0
	for _, v := range touched {
		// Copy the untouched run of old entries below v (values within a
		// union are strictly increasing, so the run ends at the first >= v).
		j := oi + sort.Search(len(oldVals)-oi, func(k int) bool { return oldVals[oi+k] >= v })
		if j > oi {
			b.eb.CopyEntries(old, oldRi, ri, oi, j)
			count += j - oi
		}
		oi = j
		if oi < len(oldVals) && oldVals[oi] == v {
			oi++ // the rebuild below supersedes the old entry for v
		}
		// Re-derive value v from the post-delta snapshots: the ordinary
		// build narrowed to [v, v+1) emits zero entries (v died) or one.
		count += b.buildUnionEnc(root, ri, narrowStates(mine, root, v), 0)
		if b.err != nil {
			return count
		}
	}
	if oi < len(oldVals) {
		b.eb.CopyEntries(old, oldRi, ri, oi, len(oldVals))
		count += len(oldVals) - oi
	}
	return count
}

// narrowStates clones the states routed into root's subtree, restricting
// those anchored at root to the single value v — the per-value analogue of
// buildMorsel's range narrowing. Clones are fresh per call because the
// build mutates traversal state.
func narrowStates(mine []*relState, root *ftree.Node, v relation.Value) []*relState {
	clones := make([]*relState, len(mine))
	for i, st := range mine {
		c := *st
		if c.nodes[0] == root {
			col := c.cols[0][0]
			c.lo = c.seek(col, v, c.lo, c.hi)
			c.hi = c.seek(col, v+1, c.lo, c.hi)
		}
		clones[i] = &c
	}
	return clones
}

// dedupValues removes adjacent duplicates from a sorted value slice.
func dedupValues(vs []relation.Value) []relation.Value {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// SortIndex returns the column permutation the path sort imposes on r over
// t: the relation's class columns in root-to-leaf path order, followed by
// the remaining columns in schema order — exactly the comparator
// Relation.SortBy uses after SortFor. Callers maintaining sorted snapshots
// incrementally (merging net deltas into a statement's inputs) sort and
// merge by this index so the shared slices never need re-sorting.
func SortIndex(r *relation.Relation, t *ftree.T) ([]int, error) {
	b := newBuilder(context.Background(), t)
	st, err := b.newState(r)
	if err != nil {
		return nil, err
	}
	idx := make([]int, 0, len(r.Schema))
	seen := make([]bool, len(r.Schema))
	for _, cols := range st.cols {
		for _, c := range cols {
			idx = append(idx, c)
			seen[c] = true
		}
	}
	for c := range r.Schema {
		if !seen[c] {
			idx = append(idx, c)
		}
	}
	return idx, nil
}
