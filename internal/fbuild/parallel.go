// Parallel factorised build: morsel-driven parallelism over the encoded
// representation. The root union of an f-representation concatenates its
// entries in ascending value order, and the fragment below any contiguous
// run of entries is contiguous in every descendant column — so the build
// partitions cleanly by value range: split the pivot root's candidate
// values into M morsels, run the ordinary leapfrog build per morsel into a
// private column builder (each worker sees the same sorted, read-only
// relations, narrowed to its value range), and stitch the builders back
// together with bulk copies and offset rebasing (frep.StitchEnc). One
// worker count of 1 — or a root too small to split — takes today's serial
// path bit for bit.
package fbuild

import (
	"context"
	"sync"

	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// morselsPerWorker oversizes the morsel count relative to the worker count
// so that skewed value distributions (a few heavy root values) still load
// all workers; morsels are handed out dynamically.
const morselsPerWorker = 4

// valRange is one morsel's half-open value interval at the pivot root.
// Missing bounds mean "from the beginning" / "to the end".
type valRange struct {
	lo, hi       relation.Value
	hasLo, hasHi bool
}

// BuildEncParallel is BuildEnc evaluated by up to `workers` goroutines; see
// BuildEncParallelContext.
func BuildEncParallel(rels []*relation.Relation, t *ftree.T, workers int) (*frep.Enc, error) {
	return BuildEncParallelContext(context.Background(), rels, t, workers)
}

// BuildEncParallelContext evaluates the natural join encoded by t directly
// into the arena-backed columnar representation, partitioning the pivot
// root's value domain into morsels evaluated concurrently. The result is
// structurally identical (frep.Enc.Equal) to BuildEncContext's. workers <= 1
// delegates to the serial build unchanged; cancellation is polled by every
// worker at the same checkpoints as the serial build.
func BuildEncParallelContext(ctx context.Context, rels []*relation.Relation, t *ftree.T, workers int) (*frep.Enc, error) {
	if workers <= 1 {
		return BuildEncContext(ctx, rels, t)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b := newBuilder(ctx, t)
	states := make([]*relState, 0, len(rels))
	for _, r := range rels {
		st, err := b.newState(r)
		if err != nil {
			return nil, err
		}
		states = append(states, st)
	}

	// Route states to roots and pick the pivot: the root whose driver
	// relation (largest active range) gives the most entries to split.
	pivot, pivotMine, driver := pickPivot(b, t, states)
	if driver == nil || driver.hi-driver.lo < 2*workers {
		// Nothing worth splitting: a degenerate or tiny root.
		return b.buildAll(t, states)
	}
	ranges := morselRanges(driver, workers*morselsPerWorker)
	if len(ranges) < 2 {
		return b.buildAll(t, states)
	}

	// Workers drain the morsel queue; each morsel gets a private column
	// builder and private copies of the states routed into the pivot
	// subtree (the relations themselves are shared and read-only: they were
	// sorted once above, before any goroutine started).
	parts := make([]*frep.EncBuilder, len(ranges))
	errs := make([]error, len(ranges))
	next := make(chan int, len(ranges))
	for mi := range ranges {
		next <- mi
	}
	close(next)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for mi := range next {
				parts[mi], errs[mi] = buildMorsel(ctx, b, t, pivot, pivotMine, ranges[mi])
			}
		}()
	}
	// The main goroutine builds the remaining roots (if any) while the
	// workers chew through the pivot morsels.
	rest, restEmpty, restErr := b.buildRest(t, pivot, states)
	wg.Wait()
	if restErr != nil {
		return nil, restErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := 0
	for _, p := range parts {
		total += p.Entries(p.Idx(pivot))
	}
	if total == 0 || restEmpty {
		return frep.NewEmptyEnc(t), nil
	}
	return frep.StitchEnc(t, pivot, parts, rest), nil
}

// pickPivot chooses the root to partition: the one whose largest active
// relation range is widest. It returns the pivot, the states routed into
// its subtree, and that driver state (nil if no root has an active state).
func pickPivot(b *builder, t *ftree.T, states []*relState) (*ftree.Node, []*relState, *relState) {
	var pivot *ftree.Node
	var pivotMine []*relState
	var driver *relState
	for _, root := range t.Roots {
		var mine []*relState
		var best *relState
		for _, st := range states {
			if len(st.nodes) > 0 && b.inSubtree(st.nodes[0], root) {
				mine = append(mine, st)
				if st.nodes[0] == root && (best == nil || st.hi-st.lo > best.hi-best.lo) {
					best = st
				}
			}
		}
		if best != nil && (driver == nil || best.hi-best.lo > driver.hi-driver.lo) {
			pivot, pivotMine, driver = root, mine, best
		}
	}
	return pivot, pivotMine, driver
}

// morselRanges splits the driver's sorted root-class column into up to m
// half-open value ranges with (roughly) equal tuple counts. Duplicate
// boundary values collapse, so heavy values never straddle two morsels.
func morselRanges(driver *relState, m int) []valRange {
	col := driver.cols[0][0]
	n := driver.hi - driver.lo
	var bounds []relation.Value
	for j := 1; j < m; j++ {
		v := driver.rel.Tuples[driver.lo+j*n/m][col]
		if len(bounds) == 0 || v > bounds[len(bounds)-1] {
			bounds = append(bounds, v)
		}
	}
	out := make([]valRange, 0, len(bounds)+1)
	for i := 0; i <= len(bounds); i++ {
		r := valRange{}
		if i > 0 {
			r.lo, r.hasLo = bounds[i-1], true
		}
		if i < len(bounds) {
			r.hi, r.hasHi = bounds[i], true
		}
		out = append(out, r)
	}
	return out
}

// buildMorsel runs one morsel: clone the pivot-subtree states, narrow the
// states active at the pivot to the morsel's value range, and run the
// ordinary encoded leapfrog build into a fresh column builder.
func buildMorsel(ctx context.Context, shared *builder, t *ftree.T, pivot *ftree.Node, mine []*relState, r valRange) (*frep.EncBuilder, error) {
	wb := &builder{tree: t, in: shared.in, out: shared.out, ctx: ctx, eb: frep.NewEncBuilder(t)}
	clones := make([]*relState, len(mine))
	for i, st := range mine {
		c := *st
		if c.nodes[0] == pivot {
			col := c.cols[0][0]
			if r.hasLo {
				c.lo = c.seek(col, r.lo, c.lo, c.hi)
			}
			if r.hasHi {
				c.hi = c.seek(col, r.hi, c.lo, c.hi)
			}
		}
		clones[i] = &c
	}
	ri := wb.eb.Idx(pivot)
	wb.buildUnionEnc(pivot, ri, clones, 0)
	wb.eb.CloseUnion(ri)
	if wb.err != nil {
		return nil, wb.err
	}
	return wb.eb, nil
}

// buildRest builds every root except pivot (every root, when pivot is nil)
// into the builder's own column builder, serially on the caller's
// goroutine, and reports whether any of them came up empty. With a single
// root and a pivot it returns a builder whose columns StitchEnc never reads.
func (b *builder) buildRest(t *ftree.T, pivot *ftree.Node, states []*relState) (*frep.EncBuilder, bool, error) {
	b.eb = frep.NewEncBuilder(t)
	empty := false
	for _, root := range t.Roots {
		if root == pivot {
			continue
		}
		var mine []*relState
		for _, st := range states {
			if len(st.nodes) > 0 && b.inSubtree(st.nodes[0], root) {
				mine = append(mine, st)
			}
		}
		ri := b.eb.Idx(root)
		n := b.buildUnionEnc(root, ri, mine, 0)
		b.eb.CloseUnion(ri)
		if b.err != nil {
			return nil, false, b.err
		}
		if n == 0 {
			empty = true
		}
	}
	return b.eb, empty, nil
}

// buildAll finishes a build serially from already-prepared states — the
// fallback when partitioning is not worthwhile.
func (b *builder) buildAll(t *ftree.T, states []*relState) (*frep.Enc, error) {
	eb, empty, err := b.buildRest(t, nil, states)
	if err != nil {
		return nil, err
	}
	if empty {
		return frep.NewEmptyEnc(t), nil
	}
	return eb.Finish(), nil
}
