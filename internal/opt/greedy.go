package opt

import (
	"fmt"
	"math"

	"repro/internal/fplan"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// GreedyPlan implements the greedy heuristic of Section 4.3. For each
// remaining condition A = B it costs three restructuring scenarios — swap A
// up until it is an ancestor of B (then absorb), the converse, or bring
// both up until they are siblings (then merge) — applies the cheapest
// condition first, and repeats on the resulting tree. Runs in polynomial
// time in the size of the input f-tree.
func GreedyPlan(t0 *ftree.T, conds []Condition) (PlanResult, error) {
	cur := t0.Clone()
	var all []fplan.Op
	cost := cur.S()
	explored := 0
	for {
		rem := pending(cur, conds)
		if len(rem) == 0 {
			break
		}
		bestCost := math.Inf(1)
		var bestOps []fplan.Op
		for _, c := range rem {
			ops, s, err := bestScenario(cur, c)
			if err != nil {
				return PlanResult{}, err
			}
			explored++
			if s < bestCost || (s == bestCost && len(ops) < len(bestOps)) {
				bestCost, bestOps = s, ops
			}
		}
		if bestOps == nil {
			return PlanResult{}, fmt.Errorf("opt: greedy found no scenario for %v", rem)
		}
		for _, op := range bestOps {
			if err := op.ApplyTree(cur); err != nil {
				return PlanResult{}, fmt.Errorf("opt: greedy applying %s: %w", op, err)
			}
			if s := cur.S(); s > cost {
				cost = s
			}
		}
		all = append(all, bestOps...)
	}
	return PlanResult{
		Plan:     fplan.Plan{Ops: all},
		Cost:     cost,
		FinalS:   cur.S(),
		Final:    cur,
		Explored: explored,
	}, nil
}

// fplanOps is a scenario: a list of operators ending in a merge/absorb.
type fplanOps = []fplan.Op

// planOf wraps an operator list in a Plan.
func planOf(ops []fplan.Op) fplan.Plan { return fplan.Plan{Ops: ops} }

// errNoScenario reports that no restructuring scenario applies.
func errNoScenario(conds []Condition) error {
	return fmt.Errorf("opt: no applicable scenario for %v", conds)
}

// scenarioCandidates returns the applicable restructurings of Section 4.3
// for one condition: A above B then absorb, B above A then absorb, or both
// to siblings then merge.
func scenarioCandidates(t *ftree.T, c Condition) []fplanOps {
	var cands []fplanOps
	if ops, _, err := promoteToAncestor(t, c.A, c.B); err == nil {
		cands = append(cands, append(ops, fplan.Absorb{A: c.A, B: c.B}))
	}
	if ops, _, err := promoteToAncestor(t, c.B, c.A); err == nil {
		cands = append(cands, append(ops, fplan.Absorb{A: c.B, B: c.A}))
	}
	if ops, _, err := promoteToSiblings(t, c.A, c.B); err == nil {
		cands = append(cands, append(ops, fplan.Merge{A: c.A, B: c.B}))
	}
	return cands
}

// bestScenario returns the cheapest scenario under the asymptotic cost,
// including the closing selection operator; ties prefer fewer operators.
func bestScenario(t *ftree.T, c Condition) ([]fplan.Op, float64, error) {
	cands := scenarioCandidates(t, c)
	if len(cands) == 0 {
		return nil, 0, errNoScenario([]Condition{c})
	}
	bestS := math.Inf(1)
	var best []fplan.Op
	for _, cd := range cands {
		s, err := (fplan.Plan{Ops: cd}).CostS(t)
		if err != nil {
			return nil, 0, err
		}
		if s < bestS || (s == bestS && len(cd) < len(best)) {
			bestS, best = s, cd
		}
	}
	return best, bestS, nil
}

// promoteToAncestor swaps node a upward until it is an ancestor of node b
// (both in the same tree) and returns the swaps with their max s. Fails if
// the nodes are in different trees.
func promoteToAncestor(t *ftree.T, a, b relation.Attribute) ([]fplan.Op, float64, error) {
	w := t.Clone()
	var ops []fplan.Op
	s := w.S()
	for {
		na, nb := w.NodeOf(a), w.NodeOf(b)
		if na == nil || nb == nil {
			return nil, 0, fmt.Errorf("opt: attribute missing")
		}
		if w.IsAncestor(na, nb) {
			return ops, s, nil
		}
		p := w.ParentOf(na)
		if p == nil {
			return nil, 0, fmt.Errorf("opt: %s cannot become an ancestor of %s (different trees)", a, b)
		}
		op := fplan.Swap{A: p.Attrs[0], B: a}
		if err := op.ApplyTree(w); err != nil {
			return nil, 0, err
		}
		ops = append(ops, op)
		if v := w.S(); v > s {
			s = v
		}
	}
}

// promoteToSiblings swaps a and b upward until they are siblings: children
// of their lowest common ancestor, or both roots when in different trees.
func promoteToSiblings(t *ftree.T, a, b relation.Attribute) ([]fplan.Op, float64, error) {
	w := t.Clone()
	var ops []fplan.Op
	s := w.S()
	raise := func(x relation.Attribute, stop func() bool) error {
		for !stop() {
			nx := w.NodeOf(x)
			p := w.ParentOf(nx)
			if p == nil {
				return fmt.Errorf("opt: %s reached a root before the target", x)
			}
			op := fplan.Swap{A: p.Attrs[0], B: x}
			if err := op.ApplyTree(w); err != nil {
				return err
			}
			ops = append(ops, op)
			if v := w.S(); v > s {
				s = v
			}
		}
		return nil
	}
	sameTree := func() bool {
		ra := w.PathTo(w.NodeOf(a))[0]
		rb := w.PathTo(w.NodeOf(b))[0]
		return ra == rb
	}
	if !sameTree() {
		// Different trees: promote both to roots.
		if err := raise(a, func() bool { return w.ParentOf(w.NodeOf(a)) == nil }); err != nil {
			return nil, 0, err
		}
		if err := raise(b, func() bool { return w.ParentOf(w.NodeOf(b)) == nil }); err != nil {
			return nil, 0, err
		}
		return ops, s, nil
	}
	// Same tree: if one is an ancestor of the other this scenario does not
	// apply (absorb handles it).
	if w.IsAncestor(w.NodeOf(a), w.NodeOf(b)) || w.IsAncestor(w.NodeOf(b), w.NodeOf(a)) {
		return nil, 0, fmt.Errorf("opt: %s and %s are on one path; sibling scenario not applicable", a, b)
	}
	lca := func() *ftree.Node {
		pa := w.PathTo(w.NodeOf(a))
		pb := w.PathTo(w.NodeOf(b))
		on := map[*ftree.Node]bool{}
		for _, n := range pa {
			on[n] = true
		}
		var deepest *ftree.Node
		for _, n := range pb {
			if on[n] {
				deepest = n
			}
		}
		return deepest
	}
	// Raising a node can change the other's path, so re-derive the LCA in
	// each stop check.
	if err := raise(a, func() bool { return w.ParentOf(w.NodeOf(a)) == lca() }); err != nil {
		return nil, 0, err
	}
	if err := raise(b, func() bool { return w.ParentOf(w.NodeOf(b)) == lca() }); err != nil {
		return nil, 0, err
	}
	return ops, s, nil
}
