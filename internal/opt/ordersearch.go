// Order-constrained f-tree search. Enumeration of a factorised
// representation streams in pre-order-lexicographic order, so an ORDER BY is
// free exactly when its key classes label the first pre-order nodes. Sibling
// reordering (fplan.ReorderForOrder) gets there when the optimal tree already
// has the right shape; OptimalFTreeOrdered is the stronger lever: the same
// branch-and-bound search as OptimalFTree, with the key-class chain forced to
// the front of the pre-order walk — each key class roots the component (or
// nested sub-component) containing it, and the component holding the next key
// is placed first among its children. The result is the cheapest tree under
// s(T) among the order-compatible ones; PreferOrdered decides whether that
// cost is worth paying over the unconstrained optimum.
package opt

import (
	"errors"
	"math"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// ErrOrderIncompatible is returned when no f-tree of the query can stream
// the requested order: some key class is dependence-entangled with non-key
// classes that would have to precede a later key.
var ErrOrderIncompatible = errors.New("opt: requested order is incompatible with every f-tree of the query")

// OptimalFTreeOrdered returns the cheapest normalised f-tree whose pre-order
// walk starts with the given chain of class indices (the distinct ORDER BY
// key classes, in key order), together with its cost s(T). An empty chain is
// the unconstrained search.
func OptimalFTreeOrdered(classes []relation.AttrSet, rels []relation.AttrSet, chain []int, opts TreeSearchOptions) (*ftree.T, float64, error) {
	if len(chain) == 0 {
		return OptimalFTree(classes, rels, opts)
	}
	ts, err := newTreeSearch(classes, rels, opts)
	if err != nil {
		return nil, 0, err
	}
	return ts.orderedForest(chain)
}

// orderedForest assembles the forest with the key-class chain forced to the
// front of the pre-order walk; sub-components off the chain are solved by
// solveComponent (exhaustive or greedy per ts.greedy).
func (ts *treeSearch) orderedForest(chain []int) (*ftree.T, float64, error) {
	comps := ts.components(ts.allClasses())
	var roots []*ftree.Node
	var worst float64
	ci := 0
	for ci < len(chain) {
		// The component holding the next key class becomes the next root,
		// rooted at that class.
		found := -1
		for i, comp := range comps {
			if comp&(1<<uint(chain[ci])) != 0 {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, 0, ErrOrderIncompatible
		}
		node, s, next, err := ts.solveChain(comps[found], 0, chain, ci)
		if err != nil {
			return nil, 0, err
		}
		roots = append(roots, node)
		if s > worst {
			worst = s
		}
		comps = append(comps[:found], comps[found+1:]...)
		ci = next
	}
	for _, comp := range comps {
		node, s, err := ts.solveComponent(comp, 0, math.Inf(1))
		if err != nil {
			return nil, 0, err
		}
		roots = append(roots, node)
		if s > worst {
			worst = s
		}
	}
	return ftree.New(roots, ts.rels), worst, nil
}

// solveChain optimises the component comp rooted at the forced class
// chain[ci], keeping the remaining chain classes at the front of the
// pre-order walk. It returns the subtree, its path cost, and the index of
// the first chain class it did not consume (that class, if any, must start a
// fresh root — only legal because this subtree then is a bare chain).
func (ts *treeSearch) solveChain(comp uint64, pathBits uint64, chain []int, ci int) (*ftree.Node, float64, int, error) {
	ts.explored++
	if ts.explored > ts.budget {
		return nil, 0, 0, ErrBudget
	}
	c := chain[ci]
	bit := uint64(1) << uint(c)
	if comp&bit == 0 {
		return nil, 0, 0, ErrOrderIncompatible
	}
	newPath := pathBits | bit
	cost := ts.cover(newPath)
	rest := comp &^ bit
	subs := ts.components(rest)
	next := ci + 1

	var children []*ftree.Node
	if next < len(chain) {
		nbit := uint64(1) << uint(chain[next])
		chainSub := -1
		for i, sub := range subs {
			if sub&nbit != 0 {
				chainSub = i
				break
			}
		}
		if chainSub < 0 {
			// The next key continues at root level; everything of this
			// component would precede it in pre-order, so the component must
			// be exhausted by the chain so far.
			if rest != 0 {
				return nil, 0, 0, ErrOrderIncompatible
			}
			return ftree.NewNode(ts.classes[c].Sorted()...), cost, next, nil
		}
		node, s, n2, err := ts.solveChain(subs[chainSub], newPath, chain, next)
		if err != nil {
			return nil, 0, 0, err
		}
		// If the chain hops to a fresh root from inside this subtree, any
		// sibling sub-component here would land between the keys in
		// pre-order: only a bare chain may hop.
		if n2 < len(chain) && len(subs) > 1 {
			return nil, 0, 0, ErrOrderIncompatible
		}
		children = append(children, node)
		if s > cost {
			cost = s
		}
		next = n2
		subs = append(subs[:chainSub], subs[chainSub+1:]...)
	}
	for _, sub := range subs {
		node, s, err := ts.solveComponent(sub, newPath, math.Inf(1))
		if err != nil {
			return nil, 0, 0, err
		}
		children = append(children, node)
		if s > cost {
			cost = s
		}
	}
	return ftree.NewNode(ts.classes[c].Sorted()...).Add(children...), cost, next, nil
}

// PreferOrdered decides whether an order-compatible tree should drive the
// plan given its cost against the unconstrained optimum. Equal cost always
// streams; a bounded top-k (LIMIT present) tolerates half a cover unit of
// regression, because short-circuiting after n tuples routinely repays a
// modestly larger representation; an unbounded scan never trades asymptotic
// build size for sort avoidance.
func PreferOrdered(optCost, ordCost float64, limited bool) bool {
	const eps = 1e-9
	if ordCost <= optCost+eps {
		return true
	}
	if limited {
		return ordCost <= optCost+0.5+eps
	}
	return false
}
