package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ftree"
	"repro/internal/gen"
	"repro/internal/relation"
)

// q1Query returns the grocery Q1 query structure (classes and schemas).
func q1Query() ([]relation.AttrSet, []relation.AttrSet) {
	classes := []relation.AttrSet{
		relation.NewAttrSet("o_oid"),
		relation.NewAttrSet("o_item", "s_item"),
		relation.NewAttrSet("s_location", "d_location"),
		relation.NewAttrSet("d_dispatcher"),
	}
	rels := []relation.AttrSet{
		relation.NewAttrSet("o_oid", "o_item"),
		relation.NewAttrSet("s_location", "s_item"),
		relation.NewAttrSet("d_dispatcher", "d_location"),
	}
	return classes, rels
}

func TestOptimalFTreeQ1(t *testing.T) {
	classes, rels := q1Query()
	tr, s, err := OptimalFTree(classes, rels, TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid: %v\n%s", err, tr)
	}
	if !tr.IsNormalised() {
		t.Fatalf("optimal tree not normalised:\n%s", tr)
	}
	// Example 5: s(Q1) = 2.
	if math.Abs(s-2) > 1e-6 {
		t.Fatalf("s(Q1) = %v, want 2\n%s", s, tr)
	}
	if math.Abs(tr.S()-s) > 1e-6 {
		t.Fatalf("reported s %v != tree s %v", s, tr.S())
	}
}

func TestOptimalFTreeQ2(t *testing.T) {
	// Example 5: s(Q2) = 1 (witnessed by T3).
	classes := []relation.AttrSet{
		relation.NewAttrSet("p_supplier", "v_supplier"),
		relation.NewAttrSet("p_item"),
		relation.NewAttrSet("v_location"),
	}
	rels := []relation.AttrSet{
		relation.NewAttrSet("p_supplier", "p_item"),
		relation.NewAttrSet("v_supplier", "v_location"),
	}
	tr, s, err := OptimalFTree(classes, rels, TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-6 {
		t.Fatalf("s(Q2) = %v, want 1\n%s", s, tr)
	}
	// The supplier class must be the root (the T3 shape).
	if !tr.Roots[0].HasAttr("p_supplier") {
		t.Fatalf("optimal tree is not T3-shaped:\n%s", tr)
	}
}

// TestChainQueryLogS: Example 6, s(Q_n) = Θ(log n) for chain queries. A
// treedepth-style embedding of the class chain keeps every root-to-leaf
// path within 4 consecutive classes for n = 8, and 4 consecutive chain
// classes have fractional cover 2 (two disjoint covering relations), so
// s(Q8) is still 2 — the growth is logarithmic with a 1/2 factor.
func TestChainQueryLogS(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		n     int
		wantS float64
	}{
		{2, 1},
		{4, 2},
		{8, 2},
	} {
		q := gen.ChainQuery(rng, tc.n, 4, 10)
		_, s, err := OptimalFTree(q.Classes(), q.Schemas(), TreeSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(s-tc.wantS) > 1e-6 {
			t.Errorf("s(chain %d) = %v, want %v", tc.n, s, tc.wantS)
		}
	}
}

func example11Tree() *ftree.T {
	b := ftree.NewNode("B").Add(ftree.NewNode("C"))
	e := ftree.NewNode("E").Add(ftree.NewNode("F"))
	ad := ftree.NewNode("A", "D").Add(b, e)
	return ftree.New([]*ftree.Node{ad}, []relation.AttrSet{
		relation.NewAttrSet("A", "B", "C"),
		relation.NewAttrSet("D", "E", "F"),
	})
}

// TestExhaustiveExample11: the optimal plan for B=F has cost 1 (the
// swap(E,F)+merge(B,F) route), not 2 (the swap-to-root+absorb route).
func TestExhaustiveExample11(t *testing.T) {
	res, err := ExhaustivePlan(example11Tree(), []Condition{{A: "B", B: "F"}}, PlanSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 {
		t.Fatalf("optimal plan cost = %v, want 1 (plan: %s)", res.Cost, res.Plan)
	}
	if res.FinalS != 1 {
		t.Fatalf("final tree cost = %v, want 1", res.FinalS)
	}
	if res.Final.NodeOf("B") != res.Final.NodeOf("F") {
		t.Fatal("plan did not merge B and F")
	}
}

func TestGreedyExample11(t *testing.T) {
	res, err := GreedyPlan(example11Tree(), []Condition{{A: "B", B: "F"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 1 {
		t.Fatalf("greedy plan cost = %v, want 1 (plan: %s)", res.Cost, res.Plan)
	}
	if res.Final.NodeOf("B") != res.Final.NodeOf("F") {
		t.Fatal("greedy plan did not merge B and F")
	}
}

// TestExhaustiveNeverWorseThanGreedy: on random instances the full search
// must be at least as good as the heuristic under the lexicographic order,
// and both must produce valid plans merging all conditions.
func TestExhaustiveNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	trials := 0
	for trials < 25 {
		r := 2 + rng.Intn(2)
		a := 5 + rng.Intn(3)
		k := rng.Intn(3)
		sch, err := gen.RandomSchema(rng, r, a)
		if err != nil {
			t.Fatal(err)
		}
		eqs, err := gen.RandomEqualities(rng, sch, k)
		if err != nil {
			t.Fatal(err)
		}
		q := &core.Query{Equalities: eqs}
		for i, rs := range sch.Relations {
			rel := relation.New(sch.Names[i], rs)
			q.Relations = append(q.Relations, rel)
		}
		tr, _, err := OptimalFTree(q.Classes(), q.Schemas(), TreeSearchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Fresh conditions on the classes of tr.
		attrs := q.Attributes()
		var conds []Condition
		for tries := 0; tries < 20 && len(conds) < 1+rng.Intn(2); tries++ {
			x := attrs[rng.Intn(len(attrs))]
			y := attrs[rng.Intn(len(attrs))]
			if tr.NodeOf(x) != tr.NodeOf(y) {
				conds = append(conds, Condition{A: x, B: y})
				break
			}
		}
		if len(conds) == 0 {
			continue
		}
		trials++
		full, err := ExhaustivePlan(tr, conds, PlanSearchOptions{})
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trials, err)
		}
		greedy, err := GreedyPlan(tr, conds)
		if err != nil {
			t.Fatalf("trial %d: greedy: %v", trials, err)
		}
		if full.Cost > greedy.Cost+1e-9 {
			t.Fatalf("trial %d: exhaustive cost %v worse than greedy %v\nconds: %v\ntree:\n%s",
				trials, full.Cost, greedy.Cost, conds, tr)
		}
		for _, res := range []PlanResult{full, greedy} {
			if err := res.Final.Validate(); err != nil {
				t.Fatalf("trial %d: final tree invalid: %v", trials, err)
			}
			for _, c := range conds {
				if res.Final.NodeOf(c.A) != res.Final.NodeOf(c.B) {
					t.Fatalf("trial %d: condition %v not enforced by %s", trials, c, res.Plan)
				}
			}
		}
	}
}

func TestTreeSearchBudget(t *testing.T) {
	classes, rels := q1Query()
	_, _, err := OptimalFTree(classes, rels, TreeSearchOptions{Budget: 1})
	if err == nil {
		t.Fatal("budget of 1 should be exceeded")
	}
}

func TestCanonicalClasses(t *testing.T) {
	s := canonicalClasses([]relation.AttrSet{
		relation.NewAttrSet("B", "A"),
		relation.NewAttrSet("C"),
	})
	if s != "{A,B} {C}" {
		t.Fatalf("canonicalClasses = %q", s)
	}
}
