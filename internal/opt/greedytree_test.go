package opt

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ftree"
	"repro/internal/gen"
	"repro/internal/relation"
)

func TestGreedyFTreeQ1(t *testing.T) {
	classes, rels := q1Query()
	tr, s, err := GreedyFTree(classes, rels)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid: %v\n%s", err, tr)
	}
	if !tr.IsNormalised() {
		t.Fatalf("greedy tree not normalised:\n%s", tr)
	}
	// The heuristic matches the optimum s(Q1) = 2 here.
	if math.Abs(s-2) > 1e-6 {
		t.Fatalf("greedy s(Q1) = %v, want 2\n%s", s, tr)
	}
	if math.Abs(tr.S()-s) > 1e-6 {
		t.Fatalf("reported s %v != tree s %v", s, tr.S())
	}
}

// randomQuery draws a random join query from the generator corpus used
// across the optimiser tests.
func randomQuery(t *testing.T, rng *rand.Rand) *core.Query {
	t.Helper()
	r := 2 + rng.Intn(3)
	a := 4 + rng.Intn(4)
	k := rng.Intn(4)
	sch, err := gen.RandomSchema(rng, r, a)
	if err != nil {
		t.Fatal(err)
	}
	eqs, err := gen.RandomEqualities(rng, sch, k)
	if err != nil {
		t.Fatal(err)
	}
	q := &core.Query{Equalities: eqs}
	for i, rs := range sch.Relations {
		q.Relations = append(q.Relations, relation.New(sch.Names[i], rs))
	}
	return q
}

// TestGreedyCostWithinSlack: on the seeded corpus the greedy tree must be
// valid, normalised, report its exact s(T), and stay within (1 + slack) of
// the exhaustive optimum.
func TestGreedyCostWithinSlack(t *testing.T) {
	const slack = 0.5
	rng := rand.New(rand.NewSource(9))
	worst := 1.0
	for trial := 0; trial < 120; trial++ {
		q := randomQuery(t, rng)
		classes, rels := q.Classes(), q.Schemas()
		gt, gs, err := GreedyFTree(classes, rels)
		if err != nil {
			t.Fatalf("trial %d: greedy: %v\nclasses: %s", trial, err, canonicalClasses(classes))
		}
		if err := gt.Validate(); err != nil {
			t.Fatalf("trial %d: invalid greedy tree: %v\n%s", trial, err, gt)
		}
		if !gt.IsNormalised() {
			t.Fatalf("trial %d: greedy tree not normalised:\n%s", trial, gt)
		}
		if math.Abs(gt.S()-gs) > 1e-6 {
			t.Fatalf("trial %d: reported s %v != tree s %v", trial, gs, gt.S())
		}
		_, os, err := OptimalFTree(classes, rels, TreeSearchOptions{})
		if err != nil {
			t.Fatalf("trial %d: exhaustive: %v", trial, err)
		}
		if gs < os-1e-9 {
			t.Fatalf("trial %d: greedy s %v beats exhaustive optimum %v", trial, gs, os)
		}
		if gs > os*(1+slack)+1e-9 {
			t.Fatalf("trial %d: greedy s %v exceeds %v x optimum %v\nclasses: %s",
				trial, gs, 1+slack, os, canonicalClasses(classes))
		}
		if os > 0 && gs/os > worst {
			worst = gs / os
		}
	}
	t.Logf("worst greedy/optimal cost ratio: %.3f", worst)
}

// preorderClasses returns the attribute sets of the first n nodes of the
// forest's pre-order walk.
func preorderClasses(tr *ftree.T, n int) []relation.AttrSet {
	var out []relation.AttrSet
	var walk func(nd *ftree.Node)
	walk = func(nd *ftree.Node) {
		if len(out) >= n {
			return
		}
		out = append(out, relation.NewAttrSet(nd.Attrs...))
		for _, ch := range nd.Children {
			walk(ch)
		}
	}
	for _, r := range tr.Roots {
		if len(out) >= n {
			break
		}
		walk(r)
	}
	return out
}

// TestGreedyFTreeOrdered: the forced chain must label the first pre-order
// nodes, the heuristic must agree with the exhaustive ordered search on
// which chains are order-incompatible, and its cost must stay within slack
// of the ordered optimum.
func TestGreedyFTreeOrdered(t *testing.T) {
	const slack = 0.5
	rng := rand.New(rand.NewSource(31))
	compared := 0
	for trial := 0; trial < 150; trial++ {
		q := randomQuery(t, rng)
		classes, rels := q.Classes(), q.Schemas()
		chain := rng.Perm(len(classes))[:1+rng.Intn(min(3, len(classes)))]
		gt, gs, gerr := GreedyFTreeOrdered(classes, rels, chain)
		ot, os, oerr := OptimalFTreeOrdered(classes, rels, chain, TreeSearchOptions{})
		if (gerr == nil) != (oerr == nil) {
			t.Fatalf("trial %d: greedy err %v vs exhaustive err %v\nclasses: %s chain %v",
				trial, gerr, oerr, canonicalClasses(classes), chain)
		}
		if gerr != nil {
			if !errors.Is(gerr, ErrOrderIncompatible) || !errors.Is(oerr, ErrOrderIncompatible) {
				t.Fatalf("trial %d: unexpected errors %v / %v", trial, gerr, oerr)
			}
			continue
		}
		compared++
		if err := gt.Validate(); err != nil {
			t.Fatalf("trial %d: invalid: %v\n%s", trial, err, gt)
		}
		for i, cs := range preorderClasses(gt, len(chain)) {
			want := classes[chain[i]]
			same := len(cs) == len(want)
			for a := range want {
				same = same && cs.Has(a)
			}
			if !same {
				t.Fatalf("trial %d: pre-order node %d is %v, want class %v\n%s",
					trial, i, cs, want, gt)
			}
		}
		if gs < os-1e-9 {
			t.Fatalf("trial %d: greedy ordered s %v beats optimum %v\n%s\nvs\n%s", trial, gs, os, gt, ot)
		}
		if gs > os*(1+slack)+1e-9 {
			t.Fatalf("trial %d: greedy ordered s %v exceeds %v x optimum %v (chain %v)",
				trial, gs, 1+slack, os, chain)
		}
	}
	if compared < 30 {
		t.Fatalf("only %d compatible chains compared; corpus too hostile", compared)
	}
}

// TestGreedyBudgetIndependence: a query wide enough to blow a small
// exhaustive budget still plans greedily — GreedyFTree has no budget and can
// never return ErrBudget.
func TestGreedyBudgetIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q := gen.ChainQuery(rng, 10, 4, 10)
	classes, rels := q.Classes(), q.Schemas()
	if _, _, err := OptimalFTree(classes, rels, TreeSearchOptions{Budget: 20}); !errors.Is(err, ErrBudget) {
		t.Fatalf("exhaustive with budget 20 = %v, want ErrBudget", err)
	}
	tr, s, err := GreedyFTree(classes, rels)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid: %v\n%s", err, tr)
	}
	if s <= 0 {
		t.Fatalf("greedy cost %v", s)
	}
}

// TestGreedyFTreeUncoverable: a class outside every relation is uncoverable;
// greedy must fail loudly exactly like the exhaustive search, not return
// ErrBudget or a bogus tree.
func TestGreedyFTreeUncoverable(t *testing.T) {
	classes := []relation.AttrSet{
		relation.NewAttrSet("A"),
		relation.NewAttrSet("ghost"),
	}
	rels := []relation.AttrSet{relation.NewAttrSet("A")}
	if _, _, err := GreedyFTree(classes, rels); err == nil || errors.Is(err, ErrBudget) {
		t.Fatalf("greedy on uncoverable query = %v, want hard error", err)
	}
}
