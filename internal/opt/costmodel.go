package opt

import (
	"repro/internal/ftree"
	"repro/internal/stats"
)

// CostModel abstracts the two f-plan cost measures of Section 4.1: the
// asymptotic measure based on s(T) (tight size bounds for any database)
// and the estimate-based measure derived from catalogue statistics. The
// greedy optimiser accepts either; the paper reports that both lead to
// very similar plan choices, which BenchmarkCostModelAblation checks.
type CostModel interface {
	// TreeCost scores a single f-tree; lower is better.
	TreeCost(t *ftree.T) float64
	// Combine folds the cost of one more intermediate tree into a running
	// plan cost (max for the asymptotic measure, sum for estimates).
	Combine(planCost, treeCost float64) float64
}

// SCost is the asymptotic cost measure: TreeCost = s(T), Combine = max.
type SCost struct{}

// TreeCost implements CostModel.
func (SCost) TreeCost(t *ftree.T) float64 { return t.S() }

// Combine implements CostModel.
func (SCost) Combine(planCost, treeCost float64) float64 {
	if treeCost > planCost {
		return treeCost
	}
	return planCost
}

// EstimateCost scores trees by the catalogue-based size estimate
// Σ_A |Q_anc(A)| and accumulates plan cost additively (total intermediate
// volume).
type EstimateCost struct {
	Cat *stats.Catalogue
}

// TreeCost implements CostModel.
func (e EstimateCost) TreeCost(t *ftree.T) float64 { return e.Cat.EstimateSize(t) }

// Combine implements CostModel.
func (EstimateCost) Combine(planCost, treeCost float64) float64 {
	return planCost + treeCost
}

// GreedyPlanWithCost is GreedyPlan parameterised by a cost model: per
// condition it still evaluates the three restructuring scenarios of
// Section 4.3, but scores each scenario with the supplied model. With
// SCost{} it behaves exactly like GreedyPlan.
func GreedyPlanWithCost(t0 *ftree.T, conds []Condition, model CostModel) (PlanResult, error) {
	cur := t0.Clone()
	var all fplanOps
	cost := model.TreeCost(cur)
	explored := 0
	for {
		rem := pending(cur, conds)
		if len(rem) == 0 {
			break
		}
		bestCost := -1.0
		var bestOps fplanOps
		for _, c := range rem {
			ops, s, err := bestScenarioWithCost(cur, c, model)
			if err != nil {
				return PlanResult{}, err
			}
			explored++
			if bestCost < 0 || s < bestCost || (s == bestCost && len(ops) < len(bestOps)) {
				bestCost, bestOps = s, ops
			}
		}
		if bestOps == nil {
			return PlanResult{}, errNoScenario(rem)
		}
		for _, op := range bestOps {
			if err := op.ApplyTree(cur); err != nil {
				return PlanResult{}, err
			}
			cost = model.Combine(cost, model.TreeCost(cur))
		}
		all = append(all, bestOps...)
	}
	return PlanResult{
		Plan:     planOf(all),
		Cost:     cost,
		FinalS:   cur.S(),
		Final:    cur,
		Explored: explored,
	}, nil
}

// bestScenarioWithCost mirrors bestScenario under an arbitrary cost model.
func bestScenarioWithCost(t *ftree.T, c Condition, model CostModel) (fplanOps, float64, error) {
	cands := scenarioCandidates(t, c)
	if len(cands) == 0 {
		return nil, 0, errNoScenario([]Condition{c})
	}
	bestS := -1.0
	var best fplanOps
	for _, cd := range cands {
		s, err := simulateCost(t, cd, model)
		if err != nil {
			return nil, 0, err
		}
		if bestS < 0 || s < bestS || (s == bestS && len(cd) < len(best)) {
			bestS, best = s, cd
		}
	}
	return best, bestS, nil
}

// simulateCost applies ops to a clone and folds tree costs.
func simulateCost(t *ftree.T, ops fplanOps, model CostModel) (float64, error) {
	w := t.Clone()
	cost := model.TreeCost(w)
	for _, op := range ops {
		if err := op.ApplyTree(w); err != nil {
			return 0, err
		}
		cost = model.Combine(cost, model.TreeCost(w))
	}
	return cost, nil
}
