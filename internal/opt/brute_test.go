package opt

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ftree"
	"repro/internal/gen"
	"repro/internal/relation"
)

// bruteMinS enumerates every rooted forest over the classes (all parent
// assignments), keeps those satisfying the path constraint, and returns the
// minimal s — an independent oracle for OptimalFTree. Normalisation never
// increases s, so the minimum over all valid trees equals the minimum over
// normalised ones.
func bruteMinS(classes []relation.AttrSet, rels []relation.AttrSet) float64 {
	n := len(classes)
	parent := make([]int, n) // -1 = root
	best := math.Inf(1)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			// Build the forest; reject cyclic parent assignments.
			nodes := make([]*ftree.Node, n)
			for j := range nodes {
				nodes[j] = ftree.NewNode(classes[j].Sorted()...)
			}
			var roots []*ftree.Node
			for j, p := range parent {
				if p == -1 {
					roots = append(roots, nodes[j])
				} else {
					nodes[p].Add(nodes[j])
				}
			}
			// Cycle check: count reachable nodes from roots.
			count := 0
			var walk func(x *ftree.Node)
			walk = func(x *ftree.Node) {
				count++
				for _, c := range x.Children {
					walk(c)
				}
			}
			for _, r := range roots {
				walk(r)
			}
			if count != n {
				return
			}
			t := ftree.New(roots, rels)
			if t.Validate() != nil {
				return
			}
			if s := t.S(); s < best {
				best = s
			}
			return
		}
		for p := -1; p < n; p++ {
			if p == i {
				continue
			}
			parent[i] = p
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

// TestOptimalFTreeAgainstBruteForce cross-checks the recursive search with
// exhaustive forest enumeration on small random queries.
func TestOptimalFTreeAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		r := 1 + rng.Intn(3)
		a := r + rng.Intn(5-r+1) // at most 5 attributes total
		sch, err := gen.RandomSchema(rng, r, a)
		if err != nil {
			t.Fatal(err)
		}
		k := 0
		if a > 1 {
			k = rng.Intn(min(a-1, 2) + 1)
		}
		eqs, err := gen.RandomEqualities(rng, sch, k)
		if err != nil {
			t.Fatal(err)
		}
		// Build classes from equalities via the query model.
		q := &core.Query{Equalities: eqs}
		for i, s := range sch.Relations {
			q.Relations = append(q.Relations, relation.New(sch.Names[i], s))
		}
		classes := q.Classes()
		rels := q.Schemas()
		want := bruteMinS(classes, rels)
		tr, got, err := OptimalFTree(classes, rels, TreeSearchOptions{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(got-want) > 1e-6 {
			t.Fatalf("trial %d: OptimalFTree s = %v, brute force = %v\nclasses: %s\ntree:\n%s",
				trial, got, want, canonicalClasses(classes), tr)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
