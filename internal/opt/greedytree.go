// Greedy f-tree ordering: the statistics-free polynomial counterpart of
// OptimalFTree. Where the exhaustive search enumerates every choice of root
// for every (sub-)component under branch-and-bound, the greedy heuristic
// commits to one root per component and never backtracks. The root is chosen
// from the same structural signals the exhaustive search prunes on — the
// fractional edge cover of the root-to-leaf path it would create (cover
// structure) and how widely the class is shared across relations (key
// classes) — so each choice is scored by the exact cost model s(T), just
// without the exponential enumeration. Planning is O(n^2) cover evaluations
// instead of worst-case super-exponential, has no exploration budget and can
// never return ErrBudget; on solvable queries it always produces a valid
// normalised f-tree, typically within a few percent of the optimum.
package opt

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// GreedyFTree returns a normalised f-tree over the given attribute classes
// chosen by the greedy ordering heuristic, together with its exact cost
// s(T). It is polynomial in the number of classes and never returns
// ErrBudget; it fails only on queries no f-tree can cover (a class outside
// every relation), exactly when OptimalFTree would.
func GreedyFTree(classes []relation.AttrSet, rels []relation.AttrSet) (*ftree.T, float64, error) {
	ts, err := newTreeSearch(classes, rels, TreeSearchOptions{Budget: math.MaxInt})
	if err != nil {
		return nil, 0, err
	}
	ts.greedy = true
	roots, s, err := ts.solveForest(ts.allClasses(), 0)
	if err != nil {
		return nil, 0, err
	}
	return ftree.New(roots, rels), s, nil
}

// GreedyFTreeOrdered is the order-constrained greedy search: the key-class
// chain is forced to the front of the pre-order walk under the same
// compatibility rules as OptimalFTreeOrdered (it returns
// ErrOrderIncompatible for exactly the same chains), while every
// sub-component off the chain is solved greedily. An empty chain is the
// unconstrained greedy search.
func GreedyFTreeOrdered(classes []relation.AttrSet, rels []relation.AttrSet, chain []int) (*ftree.T, float64, error) {
	if len(chain) == 0 {
		return GreedyFTree(classes, rels)
	}
	ts, err := newTreeSearch(classes, rels, TreeSearchOptions{Budget: math.MaxInt})
	if err != nil {
		return nil, 0, err
	}
	ts.greedy = true
	return ts.orderedForest(chain)
}

// greedyComponent roots the connected component comp below pathBits at the
// heuristically best class and recurses into the resulting sub-components.
// Root choice, in order: minimal cover of the extended path (the quantity
// s(T) maximises over), then minimal largest remaining sub-component (a
// balanced split keeps every root-to-leaf path short — the treedepth
// signal; an unbalanced root leaves one long chain whose deep path pays),
// then maximal branching, then maximal relation coverage (key classes
// shared by many relations belong high, where their prefix is shared), then
// lowest class index for determinism.
func (ts *treeSearch) greedyComponent(comp uint64, pathBits uint64) (*ftree.Node, float64, error) {
	best := -1
	var bestCover float64
	var bestMaxSub, bestBranch, bestKey int
	seen := map[uint64]bool{}
	for c := 0; c < len(ts.classes); c++ {
		bit := uint64(1) << uint(c)
		if comp&bit == 0 {
			continue
		}
		// Classes covered by exactly the same relations are interchangeable
		// as roots; keep the lowest-indexed representative.
		if seen[ts.classSig[c]] {
			continue
		}
		seen[ts.classSig[c]] = true
		cov := ts.cover(pathBits | bit)
		subs := ts.components(comp &^ bit)
		branch := len(subs)
		maxSub := 0
		for _, s := range subs {
			if n := bits.OnesCount64(s); n > maxSub {
				maxSub = n
			}
		}
		key := bits.OnesCount64(ts.classSig[c])
		if best < 0 || cov < bestCover ||
			(cov == bestCover && (maxSub < bestMaxSub ||
				(maxSub == bestMaxSub && (branch > bestBranch ||
					(branch == bestBranch && key > bestKey))))) {
			best, bestCover, bestMaxSub, bestBranch, bestKey = c, cov, maxSub, branch, key
		}
	}
	if best < 0 || math.IsInf(bestCover, 1) {
		return nil, 0, fmt.Errorf("opt: component unsolvable (uncoverable class?)")
	}
	bit := uint64(1) << uint(best)
	newPath := pathBits | bit
	cost := bestCover
	var children []*ftree.Node
	for _, sub := range ts.components(comp &^ bit) {
		node, s, err := ts.greedyComponent(sub, newPath)
		if err != nil {
			return nil, 0, err
		}
		children = append(children, node)
		if s > cost {
			cost = s
		}
	}
	return ftree.NewNode(ts.classes[best].Sorted()...).Add(children...), cost, nil
}
