package opt

import (
	"container/heap"
	"fmt"

	"repro/internal/fplan"
	"repro/internal/ftree"
	"repro/internal/relation"
)

// Condition is an equality A = B to be enforced on an f-representation.
type Condition struct {
	A, B relation.Attribute
}

// PlanResult is the outcome of a plan search.
type PlanResult struct {
	Plan     fplan.Plan
	Cost     float64  // s(f): max s over initial, intermediate and final trees
	FinalS   float64  // s of the result f-tree
	Final    *ftree.T // result f-tree
	Explored int      // states explored (full search) / trees costed (greedy)
}

// PlanSearchOptions tunes ExhaustivePlan.
type PlanSearchOptions struct {
	// Budget caps explored states (0: default 200000).
	Budget int
}

// pending returns the conditions not yet satisfied on t (their attributes
// label different nodes).
func pending(t *ftree.T, conds []Condition) []Condition {
	var out []Condition
	for _, c := range conds {
		if t.NodeOf(c.A) != t.NodeOf(c.B) {
			out = append(out, c)
		}
	}
	return out
}

// neighbors enumerates every operator applicable to t: all parent-child
// swaps, plus merge/absorb for each pending condition where applicable.
func neighbors(t *ftree.T, conds []Condition) []fplan.Op {
	var ops []fplan.Op
	var walk func(n *ftree.Node)
	walk = func(n *ftree.Node) {
		for _, c := range n.Children {
			ops = append(ops, fplan.Swap{A: n.Attrs[0], B: c.Attrs[0]})
			walk(c)
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	for _, c := range pending(t, conds) {
		na, nb := t.NodeOf(c.A), t.NodeOf(c.B)
		if na == nil || nb == nil {
			continue
		}
		if t.AreSiblings(c.A, c.B) {
			ops = append(ops, fplan.Merge{A: c.A, B: c.B})
		} else if t.IsAncestor(na, nb) {
			ops = append(ops, fplan.Absorb{A: c.A, B: c.B})
		} else if t.IsAncestor(nb, na) {
			ops = append(ops, fplan.Absorb{A: c.B, B: c.A})
		}
	}
	return ops
}

// searchState is one Dijkstra node.
type searchState struct {
	tree *ftree.T
	dist float64 // max s along the best known path from the start
	plan []fplan.Op
	key  string
	idx  int // heap index
}

type stateHeap []*searchState

func (h stateHeap) Len() int            { return len(h) }
func (h stateHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h stateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].idx = i; h[j].idx = j }
func (h *stateHeap) Push(x interface{}) { s := x.(*searchState); s.idx = len(*h); *h = append(*h, s) }
func (h *stateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}

// ExhaustivePlan finds an optimal f-plan enforcing all conditions on an
// f-representation over t0, under the lexicographic objective of Section
// 4.1: minimise the maximal s over intermediate trees, then the s of the
// final tree. It is a Dijkstra traversal with the max metric (the metric is
// monotone: extending a path can only raise its max, so settled states are
// final).
func ExhaustivePlan(t0 *ftree.T, conds []Condition, opts PlanSearchOptions) (PlanResult, error) {
	budget := opts.Budget
	if budget == 0 {
		budget = 200_000
	}
	start := &searchState{tree: t0.Clone(), dist: t0.S(), key: t0.Canonical()}
	states := map[string]*searchState{start.key: start}
	h := &stateHeap{}
	heap.Push(h, start)
	settled := map[string]bool{}
	explored := 0

	var best *searchState
	bestFinalS := 0.0
	for h.Len() > 0 {
		cur := heap.Pop(h).(*searchState)
		if settled[cur.key] {
			continue
		}
		settled[cur.key] = true
		explored++
		if explored > budget {
			return PlanResult{}, ErrBudget
		}
		if best != nil && cur.dist > best.dist {
			break // all remaining states are farther than the best final
		}
		if len(pending(cur.tree, conds)) == 0 {
			fs := cur.tree.S()
			if best == nil || cur.dist < best.dist || (cur.dist == best.dist && fs < bestFinalS) {
				best, bestFinalS = cur, fs
			}
			// Final states are still expanded: further swaps at the same
			// distance may reach a final tree with smaller s.
		}
		for _, op := range neighbors(cur.tree, conds) {
			nt := cur.tree.Clone()
			if err := op.ApplyTree(nt); err != nil {
				return PlanResult{}, fmt.Errorf("opt: applying %s: %w", op, err)
			}
			key := nt.Canonical()
			if settled[key] {
				continue
			}
			d := cur.dist
			if s := nt.S(); s > d {
				d = s
			}
			if ex, ok := states[key]; ok {
				if d < ex.dist {
					ex.dist = d
					ex.tree = nt
					ex.plan = appendOp(cur.plan, op)
					heap.Fix(h, ex.idx)
				}
				continue
			}
			ns := &searchState{tree: nt, dist: d, plan: appendOp(cur.plan, op), key: key}
			states[key] = ns
			heap.Push(h, ns)
		}
	}
	if best == nil {
		return PlanResult{}, fmt.Errorf("opt: no plan found for conditions %v", conds)
	}
	return PlanResult{
		Plan:     fplan.Plan{Ops: best.plan},
		Cost:     best.dist,
		FinalS:   bestFinalS,
		Final:    best.tree,
		Explored: explored,
	}, nil
}

func appendOp(plan []fplan.Op, op fplan.Op) []fplan.Op {
	out := make([]fplan.Op, 0, len(plan)+1)
	out = append(out, plan...)
	return append(out, op)
}
