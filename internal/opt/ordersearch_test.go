package opt

import (
	"errors"
	"testing"

	"repro/internal/relation"
)

// twoJoinQuery is the R(a,b) ⋈ S(b,c) shape: classes {a}, {b}, {c}, optimal
// tree roots the join class b (cost 1); rooting a costs 2.
func twoJoinQuery() (classes, rels []relation.AttrSet) {
	classes = []relation.AttrSet{
		relation.NewAttrSet("a"),
		relation.NewAttrSet("b", "b2"),
		relation.NewAttrSet("c"),
	}
	rels = []relation.AttrSet{
		relation.NewAttrSet("a", "b"),
		relation.NewAttrSet("b2", "c"),
	}
	return
}

func TestOptimalFTreeOrderedMatchesFreeSearchOnEmptyChain(t *testing.T) {
	classes, rels := twoJoinQuery()
	ft, fc, err := OptimalFTree(classes, rels, TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ot, oc, err := OptimalFTreeOrdered(classes, rels, nil, TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fc != oc || ft.Canonical() != ot.Canonical() {
		t.Fatalf("empty chain diverges: %v (%.1f) vs %v (%.1f)", ft.Canonical(), fc, ot.Canonical(), oc)
	}
}

func TestOptimalFTreeOrderedForcesRoot(t *testing.T) {
	classes, rels := twoJoinQuery()
	_, fc, err := OptimalFTree(classes, rels, TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fc != 1 {
		t.Fatalf("unconstrained cost = %.1f, want 1", fc)
	}
	// Chain {a}: the only order-compatible trees root a — cost 2 (both
	// relations on the a..c path).
	ot, oc, err := OptimalFTreeOrdered(classes, rels, []int{0}, TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ot.Roots) != 1 || !ot.Roots[0].HasAttr("a") {
		t.Fatalf("chain root not honoured: %v", ot.Canonical())
	}
	if oc != 2 {
		t.Fatalf("ordered cost = %.1f, want 2", oc)
	}
	if err := ot.Validate(); err != nil {
		t.Fatal(err)
	}
	// Chain {b}: the optimal tree already roots b, so the constrained search
	// must find the optimum.
	ot, oc, err = OptimalFTreeOrdered(classes, rels, []int{1}, TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if oc != fc || !ot.Roots[0].HasAttr("b") {
		t.Fatalf("b-rooted search: cost %.1f root %v, want cost %.1f root b", oc, ot.Roots[0].Attrs, fc)
	}
}

func TestOptimalFTreeOrderedNestedChain(t *testing.T) {
	classes, rels := twoJoinQuery()
	// Chain {a} then {b}: a roots, b must be its first child.
	ot, _, err := OptimalFTreeOrdered(classes, rels, []int{0, 1}, TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ot.Roots[0].HasAttr("a") || len(ot.Roots[0].Children) == 0 || !ot.Roots[0].Children[0].HasAttr("b") {
		t.Fatalf("nested chain not honoured: %v", ot.Canonical())
	}
	if err := ot.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalFTreeOrderedRootHops(t *testing.T) {
	// Two independent components: {a} and {b}; the chain hops roots.
	classes := []relation.AttrSet{relation.NewAttrSet("a"), relation.NewAttrSet("b")}
	rels := []relation.AttrSet{relation.NewAttrSet("a"), relation.NewAttrSet("b")}
	ot, _, err := OptimalFTreeOrdered(classes, rels, []int{1, 0}, TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(ot.Roots) != 2 || !ot.Roots[0].HasAttr("b") || !ot.Roots[1].HasAttr("a") {
		t.Fatalf("root hop not honoured: %v", ot.Canonical())
	}
}

func TestOptimalFTreeOrderedIncompatible(t *testing.T) {
	// {a} is entangled with {c} (shared relation), {b} is independent: after
	// rooting a, c must sit below it, so no tree streams (a, b).
	classes := []relation.AttrSet{
		relation.NewAttrSet("a"),
		relation.NewAttrSet("b"),
		relation.NewAttrSet("c"),
	}
	rels := []relation.AttrSet{
		relation.NewAttrSet("a", "c"),
		relation.NewAttrSet("b"),
	}
	_, _, err := OptimalFTreeOrdered(classes, rels, []int{0, 1}, TreeSearchOptions{})
	if !errors.Is(err, ErrOrderIncompatible) {
		t.Fatalf("err = %v, want ErrOrderIncompatible", err)
	}
	// The reverse chain (b, a) is fine: b is a bare root, then a with c below.
	ot, _, err := OptimalFTreeOrdered(classes, rels, []int{1, 0}, TreeSearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !ot.Roots[0].HasAttr("b") || !ot.Roots[1].HasAttr("a") {
		t.Fatalf("reverse chain not honoured: %v", ot.Canonical())
	}
}

func TestPreferOrdered(t *testing.T) {
	for _, tc := range []struct {
		opt, ord float64
		limited  bool
		want     bool
	}{
		{1, 1, false, true},
		{1, 1, true, true},
		{1, 1.5, true, true},   // top-k tolerates half a cover unit
		{1, 1.5, false, false}, // unbounded scans do not
		{1, 2, true, false},
		{2, 1.9, false, true}, // cheaper ordered trees always win
	} {
		if got := PreferOrdered(tc.opt, tc.ord, tc.limited); got != tc.want {
			t.Errorf("PreferOrdered(%v, %v, %v) = %v, want %v", tc.opt, tc.ord, tc.limited, got, tc.want)
		}
	}
}
