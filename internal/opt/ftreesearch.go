// Package opt implements FDB's query optimisers (Section 4):
//
//   - OptimalFTree finds, for a query given by its attribute equivalence
//     classes and relation schemas, a normalised f-tree of the query result
//     with minimal cost s(T) (Experiment 1);
//   - ExhaustivePlan runs the full-search optimiser: a Dijkstra-style
//     traversal of the space of normalised f-trees connected by swap, merge
//     and absorb operators, under the lexicographic objective
//     ⟨max intermediate s, final s⟩ (Section 4.2, Experiment 2);
//   - GreedyPlan implements the greedy heuristic of Section 4.3.
package opt

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/ftree"
	"repro/internal/relation"
)

// maxRels bounds the number of relations (hyperedges) a query may have;
// bitmask-based enumeration relies on it.
const maxRels = 64

// maxClasses bounds the number of attribute classes.
const maxClasses = 64

// ErrBudget is returned when a search exceeds its exploration budget.
var ErrBudget = errors.New("opt: exploration budget exceeded")

// TreeSearchOptions tunes OptimalFTree.
type TreeSearchOptions struct {
	// Budget caps the number of explored partial trees (0: default 2e6).
	Budget int
}

// treeSearch carries the enumeration state.
type treeSearch struct {
	classes   []relation.AttrSet
	rels      []relation.AttrSet
	classSig  []uint64 // per class: bitmask of relations containing it
	adj       []uint64 // per class: bitmask of dependent classes
	coverMemo map[uint64]float64
	explored  int
	budget    int
	greedy    bool // pick each root heuristically instead of searching
}

// newTreeSearch builds the shared enumeration state (relation signatures,
// dependence adjacency, cover memo) used by the exhaustive and greedy
// optimisers alike.
func newTreeSearch(classes []relation.AttrSet, rels []relation.AttrSet, opts TreeSearchOptions) (*treeSearch, error) {
	if len(rels) > maxRels {
		return nil, fmt.Errorf("opt: more than %d relations", maxRels)
	}
	if len(classes) > maxClasses {
		return nil, fmt.Errorf("opt: more than %d attribute classes", maxClasses)
	}
	ts := &treeSearch{
		classes:   classes,
		rels:      rels,
		coverMemo: map[uint64]float64{},
		budget:    opts.Budget,
	}
	if ts.budget == 0 {
		ts.budget = 2_000_000
	}
	ts.classSig = make([]uint64, len(classes))
	for i, c := range classes {
		for j, r := range rels {
			if r.Intersects(c) {
				ts.classSig[i] |= 1 << uint(j)
			}
		}
	}
	ts.adj = make([]uint64, len(classes))
	for i := range classes {
		for j := range classes {
			if i != j && ts.classSig[i]&ts.classSig[j] != 0 {
				ts.adj[i] |= 1 << uint(j)
			}
		}
	}
	return ts, nil
}

// allClasses is the bitmask covering every class index.
func (ts *treeSearch) allClasses() uint64 {
	all := uint64(0)
	for i := range ts.classes {
		all |= 1 << uint(i)
	}
	return all
}

// OptimalFTree returns a normalised f-tree over the given attribute classes
// (with the relation schemas as hyperedges and dependency sets) whose cost
// s(T) is minimal, together with that cost.
func OptimalFTree(classes []relation.AttrSet, rels []relation.AttrSet, opts TreeSearchOptions) (*ftree.T, float64, error) {
	ts, err := newTreeSearch(classes, rels, opts)
	if err != nil {
		return nil, 0, err
	}
	roots, s, err := ts.solveForest(ts.allClasses(), 0)
	if err != nil {
		return nil, 0, err
	}
	t := ftree.New(roots, rels)
	return t, s, nil
}

// solveForest optimises the forest for the class set K below the classes in
// pathBits: each dependence-component becomes an independent subtree, and
// the forest cost is the max over components.
func (ts *treeSearch) solveForest(k uint64, pathBits uint64) ([]*ftree.Node, float64, error) {
	var roots []*ftree.Node
	var worst float64
	for _, comp := range ts.components(k) {
		node, s, err := ts.solveComponent(comp, pathBits, math.Inf(1))
		if err != nil {
			return nil, 0, err
		}
		roots = append(roots, node)
		if s > worst {
			worst = s
		}
	}
	return roots, worst, nil
}

// components splits k into connected components of the dependence graph.
func (ts *treeSearch) components(k uint64) []uint64 {
	var out []uint64
	rest := k
	for rest != 0 {
		seed := rest & (-rest) // lowest set bit
		comp := seed
		for {
			grow := comp
			for i := 0; i < len(ts.classes); i++ {
				if comp&(1<<uint(i)) != 0 {
					grow |= ts.adj[i] & k
				}
			}
			if grow == comp {
				break
			}
			comp = grow
		}
		out = append(out, comp)
		rest &^= comp
	}
	return out
}

// solveComponent picks the root of a connected component and recurses,
// pruning branches whose path cover already reaches bound. In greedy mode
// the root is chosen heuristically instead of enumerated.
func (ts *treeSearch) solveComponent(comp uint64, pathBits uint64, bound float64) (*ftree.Node, float64, error) {
	if ts.greedy {
		return ts.greedyComponent(comp, pathBits)
	}
	ts.explored++
	if ts.explored > ts.budget {
		return nil, 0, ErrBudget
	}
	var bestNode *ftree.Node
	best := bound
	// Candidate roots, deduplicated by relation signature: classes covered
	// by exactly the same relations are interchangeable as roots.
	seen := map[uint64]bool{}
	for c := 0; c < len(ts.classes); c++ {
		bit := uint64(1) << uint(c)
		if comp&bit == 0 {
			continue
		}
		if seen[ts.classSig[c]] {
			continue
		}
		seen[ts.classSig[c]] = true
		newPath := pathBits | bit
		base := ts.cover(newPath)
		if base >= best {
			continue
		}
		rest := comp &^ bit
		cand := base
		var children []*ftree.Node
		ok := true
		for _, sub := range ts.components(rest) {
			node, s, err := ts.solveComponent(sub, newPath, best)
			if err != nil {
				if errors.Is(err, ErrBudget) {
					return nil, 0, err
				}
				ok = false
				break
			}
			if node == nil {
				ok = false // pruned: this subtree cannot beat best
				break
			}
			children = append(children, node)
			if s > cand {
				cand = s
			}
			if cand >= best {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if cand < best {
			best = cand
			bestNode = ftree.NewNode(ts.classes[c].Sorted()...).Add(children...)
		}
	}
	if bestNode == nil && math.IsInf(bound, 1) {
		return nil, 0, fmt.Errorf("opt: component unsolvable (uncoverable class?)")
	}
	return bestNode, best, nil
}

// cover computes (with memoisation) the fractional edge cover number of the
// classes in pathBits.
func (ts *treeSearch) cover(pathBits uint64) float64 {
	if v, ok := ts.coverMemo[pathBits]; ok {
		return v
	}
	var classes []relation.AttrSet
	for i := 0; i < len(ts.classes); i++ {
		if pathBits&(1<<uint(i)) != 0 {
			classes = append(classes, ts.classes[i])
		}
	}
	v := ftree.Cover(ts.rels, classes)
	ts.coverMemo[pathBits] = v
	return v
}

// canonicalClasses renders classes deterministically (handy for debugging
// and test failure messages).
func canonicalClasses(classes []relation.AttrSet) string {
	parts := make([]string, len(classes))
	for i, c := range classes {
		attrs := c.Sorted()
		ss := make([]string, len(attrs))
		for j, a := range attrs {
			ss[j] = string(a)
		}
		parts[i] = "{" + strings.Join(ss, ",") + "}"
	}
	sort.Strings(parts)
	return strings.Join(parts, " ")
}
