// Package benchcmp records `go test -bench` results as JSON and compares a
// current run against a committed baseline — the benchmark-regression gate
// of the CI pipeline.
//
// Raw nanoseconds are not portable across machines, so every run also
// carries the time of BenchmarkCalibrate, a fixed CPU-bound loop. Compare
// divides each benchmark by its run's calibration time and compares the
// normalised ratios, making a baseline recorded on one machine meaningful
// on another. The gate fails when a tracked benchmark is more than the
// threshold slower (normalised), or disappears from the current run.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// CalibrationName identifies the normalisation benchmark in bench output.
const CalibrationName = "Calibrate"

// Result is one recorded benchmark run.
type Result struct {
	// CalibrationNS is the ns/op of BenchmarkCalibrate in this run (0 when
	// the run had none; comparisons then fall back to raw nanoseconds).
	CalibrationNS float64 `json:"calibration_ns"`
	// Benchmarks maps benchmark name (CPU suffix stripped) to the minimum
	// ns/op observed across repetitions.
	Benchmarks map[string]float64 `json:"benchmarks"`
	// Allocs maps benchmark name to the minimum allocs/op observed (only
	// benchmarks run with b.ReportAllocs report it). Allocation counts are
	// deterministic across machines, so they are gated without calibration.
	Allocs map[string]float64 `json:"allocs,omitempty"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(?:.*?\s([0-9.e+]+) allocs/op)?`)

// ParseGoBench parses `go test -bench` text output. Repeated benchmarks
// (-count > 1, or concatenated runs) keep their minimum ns/op and
// allocs/op — the least noisy estimates of the true cost.
func ParseGoBench(r io.Reader) (*Result, error) {
	res := &Result{Benchmarks: map[string]float64{}, Allocs: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad ns/op in %q: %v", sc.Text(), err)
		}
		if strings.Contains(name, CalibrationName) {
			if res.CalibrationNS == 0 || ns < res.CalibrationNS {
				res.CalibrationNS = ns
			}
			continue
		}
		if old, ok := res.Benchmarks[name]; !ok || ns < old {
			res.Benchmarks[name] = ns
		}
		if m[3] != "" {
			allocs, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				return nil, fmt.Errorf("benchcmp: bad allocs/op in %q: %v", sc.Text(), err)
			}
			if old, ok := res.Allocs[name]; !ok || allocs < old {
				res.Allocs[name] = allocs
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(res.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark lines found")
	}
	return res, nil
}

// WriteFile records the result as JSON.
func (r *Result) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a recorded result.
func ReadFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if err := json.Unmarshal(data, res); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %v", path, err)
	}
	if res.Benchmarks == nil {
		res.Benchmarks = map[string]float64{}
	}
	if res.Allocs == nil {
		res.Allocs = map[string]float64{}
	}
	return res, nil
}

// Delta is the comparison of one benchmark between baseline and current.
type Delta struct {
	Name       string
	BaseNS     float64
	CurNS      float64
	Ratio      float64 // normalised cur/base; > 1 means slower
	Tracked    bool
	Regression bool
	// Allocation comparison (zero-valued when either side lacks allocs/op).
	BaseAllocs      float64
	CurAllocs       float64
	AllocRatio      float64
	AllocRegression bool
}

// Comparison is the full gate verdict.
type Comparison struct {
	Deltas  []Delta
	Missing []string // tracked baseline benchmarks absent from the current run
	// MissingAllocs lists tracked benchmarks whose baseline records
	// allocs/op but whose current run does not — dropping b.ReportAllocs
	// would otherwise silently disable the allocation gate.
	MissingAllocs []string
}

// Failed reports whether the gate should fail the build.
func (c *Comparison) Failed() bool {
	if len(c.Missing) > 0 || len(c.MissingAllocs) > 0 {
		return true
	}
	for _, d := range c.Deltas {
		if d.Regression || d.AllocRegression {
			return true
		}
	}
	return false
}

// allocSlack is the absolute allocation growth tolerated before the ratio
// gate applies: tiny counts (a few header allocations) jitter with runtime
// internals and should not flip the gate.
const allocSlack = 16

// Compare evaluates the current run against the baseline. Benchmarks whose
// name matches tracked fail the gate when their normalised time — or their
// allocs/op, where both sides report it — grew by more than the respective
// threshold (0.25 = 25%); everything else is informational. Allocation
// counts are portable across machines and compare unnormalised.
func Compare(base, cur *Result, tracked *regexp.Regexp, threshold, allocThreshold float64) *Comparison {
	norm := func(r *Result, ns float64) float64 {
		if base.CalibrationNS > 0 && cur.CalibrationNS > 0 {
			return ns / r.CalibrationNS
		}
		return ns
	}
	out := &Comparison{}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		baseNS := base.Benchmarks[name]
		isTracked := tracked.MatchString(name)
		curNS, ok := cur.Benchmarks[name]
		if !ok {
			if isTracked {
				out.Missing = append(out.Missing, name)
			}
			continue
		}
		d := Delta{Name: name, BaseNS: baseNS, CurNS: curNS, Tracked: isTracked}
		if baseNS > 0 {
			d.Ratio = norm(cur, curNS) / norm(base, baseNS)
		}
		d.Regression = isTracked && d.Ratio > 1+threshold
		baseAllocs, bok := base.Allocs[name]
		curAllocs, cok := cur.Allocs[name]
		if isTracked && bok && !cok {
			out.MissingAllocs = append(out.MissingAllocs, name)
		}
		if bok && cok {
			d.BaseAllocs, d.CurAllocs = baseAllocs, curAllocs
			if baseAllocs > 0 {
				d.AllocRatio = curAllocs / baseAllocs
			}
			// A zero-alloc baseline has no meaningful ratio: any growth past
			// the slack regresses (that is exactly the state worth guarding).
			grew := curAllocs > baseAllocs+allocSlack
			d.AllocRegression = isTracked && grew &&
				(baseAllocs == 0 || d.AllocRatio > 1+allocThreshold)
		}
		out.Deltas = append(out.Deltas, d)
	}
	return out
}

// Report renders the comparison as a table.
func (c *Comparison) Report(w io.Writer) {
	fmt.Fprintf(w, "%-40s %12s %12s %8s %12s %8s  %s\n",
		"benchmark", "base ns/op", "cur ns/op", "ratio", "allocs/op", "a-ratio", "verdict")
	for _, d := range c.Deltas {
		verdict := ""
		switch {
		case d.Regression && d.AllocRegression:
			verdict = "REGRESSION (time+allocs)"
		case d.Regression:
			verdict = "REGRESSION"
		case d.AllocRegression:
			verdict = "REGRESSION (allocs)"
		case d.Tracked:
			verdict = "ok (tracked)"
		}
		allocs, aratio := "-", "-"
		if d.BaseAllocs > 0 || d.CurAllocs > 0 {
			allocs = fmt.Sprintf("%.0f→%.0f", d.BaseAllocs, d.CurAllocs)
			aratio = fmt.Sprintf("%.2f", d.AllocRatio)
		}
		fmt.Fprintf(w, "%-40s %12.0f %12.0f %8.2f %12s %8s  %s\n",
			d.Name, d.BaseNS, d.CurNS, d.Ratio, allocs, aratio, verdict)
	}
	for _, name := range c.Missing {
		fmt.Fprintf(w, "%-40s %12s %12s %8s %12s %8s  MISSING (tracked benchmark not in current run)\n",
			name, "-", "-", "-", "-", "-")
	}
	for _, name := range c.MissingAllocs {
		fmt.Fprintf(w, "%-40s %12s %12s %8s %12s %8s  MISSING allocs/op (tracked benchmark lost ReportAllocs)\n",
			name, "-", "-", "-", "-", "-")
	}
}
