// Package benchcmp records `go test -bench` results as JSON and compares a
// current run against a committed baseline — the benchmark-regression gate
// of the CI pipeline.
//
// Raw nanoseconds are not portable across machines, so every run also
// carries the time of BenchmarkCalibrate, a fixed CPU-bound loop. Compare
// divides each benchmark by its run's calibration time and compares the
// normalised ratios, making a baseline recorded on one machine meaningful
// on another. The gate fails when a tracked benchmark is more than the
// threshold slower (normalised), or disappears from the current run.
package benchcmp

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// CalibrationName identifies the normalisation benchmark in bench output.
const CalibrationName = "Calibrate"

// Result is one recorded benchmark run.
type Result struct {
	// CalibrationNS is the ns/op of BenchmarkCalibrate in this run (0 when
	// the run had none; comparisons then fall back to raw nanoseconds).
	CalibrationNS float64 `json:"calibration_ns"`
	// Benchmarks maps benchmark name (CPU suffix stripped) to the minimum
	// ns/op observed across repetitions.
	Benchmarks map[string]float64 `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op`)

// ParseGoBench parses `go test -bench` text output. Repeated benchmarks
// (-count > 1, or concatenated runs) keep their minimum ns/op — the least
// noisy estimate of the true cost.
func ParseGoBench(r io.Reader) (*Result, error) {
	res := &Result{Benchmarks: map[string]float64{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("benchcmp: bad ns/op in %q: %v", sc.Text(), err)
		}
		if strings.Contains(name, CalibrationName) {
			if res.CalibrationNS == 0 || ns < res.CalibrationNS {
				res.CalibrationNS = ns
			}
			continue
		}
		if old, ok := res.Benchmarks[name]; !ok || ns < old {
			res.Benchmarks[name] = ns
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(res.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchcmp: no benchmark lines found")
	}
	return res, nil
}

// WriteFile records the result as JSON.
func (r *Result) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a recorded result.
func ReadFile(path string) (*Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if err := json.Unmarshal(data, res); err != nil {
		return nil, fmt.Errorf("benchcmp: %s: %v", path, err)
	}
	if res.Benchmarks == nil {
		res.Benchmarks = map[string]float64{}
	}
	return res, nil
}

// Delta is the comparison of one benchmark between baseline and current.
type Delta struct {
	Name       string
	BaseNS     float64
	CurNS      float64
	Ratio      float64 // normalised cur/base; > 1 means slower
	Tracked    bool
	Regression bool
}

// Comparison is the full gate verdict.
type Comparison struct {
	Deltas  []Delta
	Missing []string // tracked baseline benchmarks absent from the current run
}

// Failed reports whether the gate should fail the build.
func (c *Comparison) Failed() bool {
	if len(c.Missing) > 0 {
		return true
	}
	for _, d := range c.Deltas {
		if d.Regression {
			return true
		}
	}
	return false
}

// Compare evaluates the current run against the baseline. Benchmarks whose
// name matches tracked fail the gate when their normalised time grew by
// more than threshold (0.25 = 25%); everything else is informational.
func Compare(base, cur *Result, tracked *regexp.Regexp, threshold float64) *Comparison {
	norm := func(r *Result, ns float64) float64 {
		if base.CalibrationNS > 0 && cur.CalibrationNS > 0 {
			return ns / r.CalibrationNS
		}
		return ns
	}
	out := &Comparison{}
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		baseNS := base.Benchmarks[name]
		isTracked := tracked.MatchString(name)
		curNS, ok := cur.Benchmarks[name]
		if !ok {
			if isTracked {
				out.Missing = append(out.Missing, name)
			}
			continue
		}
		d := Delta{Name: name, BaseNS: baseNS, CurNS: curNS, Tracked: isTracked}
		if baseNS > 0 {
			d.Ratio = norm(cur, curNS) / norm(base, baseNS)
		}
		d.Regression = isTracked && d.Ratio > 1+threshold
		out.Deltas = append(out.Deltas, d)
	}
	return out
}

// Report renders the comparison as a table.
func (c *Comparison) Report(w io.Writer) {
	fmt.Fprintf(w, "%-40s %12s %12s %8s  %s\n", "benchmark", "base ns/op", "cur ns/op", "ratio", "verdict")
	for _, d := range c.Deltas {
		verdict := ""
		switch {
		case d.Regression:
			verdict = "REGRESSION"
		case d.Tracked:
			verdict = "ok (tracked)"
		}
		fmt.Fprintf(w, "%-40s %12.0f %12.0f %8.2f  %s\n", d.Name, d.BaseNS, d.CurNS, d.Ratio, verdict)
	}
	for _, name := range c.Missing {
		fmt.Fprintf(w, "%-40s %12s %12s %8s  MISSING (tracked benchmark not in current run)\n", name, "-", "-", "-")
	}
}
