package benchcmp

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
BenchmarkCalibrate-8         	     100	  12000000 ns/op
BenchmarkBuildRetailer-8     	      50	  20000000 ns/op	 4000000 B/op	  200000 allocs/op
BenchmarkExecPrepared-8      	     200	   5000000 ns/op	 1000000 B/op	   50000 allocs/op
BenchmarkAggregateFactorised-8	    300	   3000000 ns/op	  800000 B/op	   10000 allocs/op
BenchmarkExp1OptimiseFlat-8  	      10	 100000000 ns/op
PASS
ok  	repro	2.948s
`

func parse(t *testing.T, s string) *Result {
	t.Helper()
	res, err := ParseGoBench(strings.NewReader(s))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestParseGoBench(t *testing.T) {
	res := parse(t, sampleOutput)
	if res.CalibrationNS != 12000000 {
		t.Fatalf("calibration: got %v", res.CalibrationNS)
	}
	if len(res.Benchmarks) != 4 {
		t.Fatalf("benchmarks: got %v", res.Benchmarks)
	}
	if res.Benchmarks["BenchmarkBuildRetailer"] != 20000000 {
		t.Fatalf("build: got %v", res.Benchmarks["BenchmarkBuildRetailer"])
	}
}

// Repetitions (or concatenated runs) keep the minimum.
func TestParseKeepsMinimum(t *testing.T) {
	res := parse(t, sampleOutput+"BenchmarkBuildRetailer-8 60 15000000 ns/op\nBenchmarkCalibrate-8 100 11000000 ns/op\n")
	if res.Benchmarks["BenchmarkBuildRetailer"] != 15000000 {
		t.Fatalf("min not kept: %v", res.Benchmarks["BenchmarkBuildRetailer"])
	}
	if res.CalibrationNS != 11000000 {
		t.Fatalf("calibration min not kept: %v", res.CalibrationNS)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := ParseGoBench(strings.NewReader("PASS\n")); err == nil {
		t.Fatal("want error on output without benchmarks")
	}
}

var tracked = regexp.MustCompile(`Build|Exec|Aggregate`)

func TestCompareNoRegression(t *testing.T) {
	base := parse(t, sampleOutput)
	cur := parse(t, sampleOutput)
	c := Compare(base, cur, tracked, 0.25, 0.25)
	if c.Failed() {
		t.Fatalf("identical runs must pass:\n%+v", c)
	}
}

// A machine twice as slow overall (calibration doubles too) is not a
// regression: ratios are normalised.
func TestCompareNormalisesByCalibration(t *testing.T) {
	base := parse(t, sampleOutput)
	slow := strings.NewReplacer(
		"12000000", "24000000",
		"20000000", "40000000",
		"5000000 ns/op", "10000000 ns/op",
		"3000000 ns/op", "6000000 ns/op",
	).Replace(sampleOutput)
	c := Compare(base, parse(t, slow), tracked, 0.25, 0.25)
	if c.Failed() {
		t.Fatalf("uniformly slower machine must pass:\n%+v", c)
	}
}

// A tracked benchmark 2x slower with unchanged calibration fails the gate.
func TestCompareDetectsRegression(t *testing.T) {
	base := parse(t, sampleOutput)
	reg := strings.Replace(sampleOutput, "3000000 ns/op", "6000000 ns/op", 1)
	c := Compare(base, parse(t, reg), tracked, 0.25, 0.25)
	if !c.Failed() {
		t.Fatal("2x slower tracked benchmark must fail")
	}
	found := false
	for _, d := range c.Deltas {
		if d.Name == "BenchmarkAggregateFactorised" && d.Regression {
			found = true
		}
	}
	if !found {
		t.Fatalf("regression not attributed:\n%+v", c.Deltas)
	}
}

// An untracked benchmark may regress freely.
func TestCompareIgnoresUntracked(t *testing.T) {
	base := parse(t, sampleOutput)
	reg := strings.Replace(sampleOutput, "100000000", "900000000", 1)
	c := Compare(base, parse(t, reg), tracked, 0.25, 0.25)
	if c.Failed() {
		t.Fatalf("untracked regression must pass:\n%+v", c)
	}
}

// A tracked baseline benchmark missing from the current run fails.
func TestCompareMissingTracked(t *testing.T) {
	base := parse(t, sampleOutput)
	cur := parse(t, strings.Replace(sampleOutput,
		"BenchmarkAggregateFactorised-8	    300	   3000000 ns/op	  800000 B/op	   10000 allocs/op\n", "", 1))
	c := Compare(base, cur, tracked, 0.25, 0.25)
	if !c.Failed() || len(c.Missing) != 1 {
		t.Fatalf("missing tracked benchmark must fail: %+v", c)
	}
}

// Allocation counts are parsed with minima and gated like times.
func TestParseAllocs(t *testing.T) {
	res := parse(t, sampleOutput+"BenchmarkBuildRetailer-8 60 25000000 ns/op 5000000 B/op 150000 allocs/op\n")
	if res.Allocs["BenchmarkBuildRetailer"] != 150000 {
		t.Fatalf("alloc min not kept: %v", res.Allocs["BenchmarkBuildRetailer"])
	}
	if _, ok := res.Allocs["BenchmarkExp1OptimiseFlat"]; ok {
		t.Fatal("benchmark without ReportAllocs must not record allocs")
	}
}

// A tracked benchmark allocating 2x more fails the gate even at identical
// speed.
func TestCompareDetectsAllocRegression(t *testing.T) {
	base := parse(t, sampleOutput)
	reg := strings.Replace(sampleOutput, "10000 allocs/op", "20000 allocs/op", 1)
	c := Compare(base, parse(t, reg), tracked, 0.25, 0.25)
	if !c.Failed() {
		t.Fatal("2x allocs on tracked benchmark must fail")
	}
	found := false
	for _, d := range c.Deltas {
		if d.Name == "BenchmarkAggregateFactorised" && d.AllocRegression && !d.Regression {
			found = true
		}
	}
	if !found {
		t.Fatalf("alloc regression not attributed:\n%+v", c.Deltas)
	}
}

// A zero-alloc baseline (no ratio to speak of) still gates growth past the
// slack.
func TestCompareAllocRegressionFromZero(t *testing.T) {
	zero := strings.Replace(sampleOutput, "10000 allocs/op", "0 allocs/op", 1)
	reg := strings.Replace(sampleOutput, "10000 allocs/op", "100000 allocs/op", 1)
	c := Compare(parse(t, zero), parse(t, reg), tracked, 0.25, 0.25)
	if !c.Failed() {
		t.Fatal("allocation growth from a zero-alloc baseline must fail")
	}
}

// Small absolute allocation growth stays under the slack even at a high
// ratio, and a baseline without an allocs column never gates.
func TestCompareAllocSlackAndMissing(t *testing.T) {
	lean := strings.Replace(sampleOutput, "10000 allocs/op", "4 allocs/op", 1)
	grown := strings.Replace(sampleOutput, "10000 allocs/op", "12 allocs/op", 1)
	c := Compare(parse(t, lean), parse(t, grown), tracked, 0.25, 0.25)
	if c.Failed() {
		t.Fatalf("allocation growth within slack must pass:\n%+v", c.Deltas)
	}
	noAllocs := strings.Replace(sampleOutput, "	  800000 B/op	   10000 allocs/op", "", 1)
	c = Compare(parse(t, noAllocs), parse(t, sampleOutput), tracked, 0.25, 0.25)
	if c.Failed() {
		t.Fatalf("allocs missing from the baseline must not gate:\n%+v", c.Deltas)
	}
}

// A tracked benchmark that stops reporting allocs (lost b.ReportAllocs)
// fails the gate instead of silently disabling it.
func TestCompareMissingAllocsTracked(t *testing.T) {
	noAllocs := strings.Replace(sampleOutput, "	  800000 B/op	   10000 allocs/op", "", 1)
	c := Compare(parse(t, sampleOutput), parse(t, noAllocs), tracked, 0.25, 0.25)
	if !c.Failed() || len(c.MissingAllocs) != 1 || c.MissingAllocs[0] != "BenchmarkAggregateFactorised" {
		t.Fatalf("lost allocs/op on a tracked benchmark must fail: %+v", c.MissingAllocs)
	}
}

func TestRoundTripFile(t *testing.T) {
	res := parse(t, sampleOutput)
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := res.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.CalibrationNS != res.CalibrationNS || len(back.Benchmarks) != len(res.Benchmarks) {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, res)
	}
	c := Compare(res, back, tracked, 0.25, 0.25)
	if c.Failed() {
		t.Fatalf("round trip must compare clean:\n%+v", c)
	}
}
