package delta

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/relation"
)

func sch(attrs ...string) relation.Schema {
	out := make(relation.Schema, len(attrs))
	for i, a := range attrs {
		out[i] = relation.Attribute(a)
	}
	return out
}

func tup(vals ...int) relation.Tuple {
	t := make(relation.Tuple, len(vals))
	for i, v := range vals {
		t[i] = relation.Value(v)
	}
	return t
}

func rows(r *relation.Relation) []string {
	out := make([]string, len(r.Tuples))
	for i, t := range r.Tuples {
		out[i] = fmt.Sprint(t)
	}
	return out
}

func wantRows(t *testing.T, r *relation.Relation, want ...relation.Tuple) {
	t.Helper()
	if len(r.Tuples) != len(want) {
		t.Fatalf("got %d tuples %v, want %d %v", len(r.Tuples), rows(r), len(want), want)
	}
	for i := range want {
		if r.Tuples[i].Compare(want[i]) != 0 {
			t.Fatalf("tuple %d: got %v, want %v (all: %v)", i, r.Tuples[i], want[i], rows(r))
		}
	}
}

func TestLiveSetSemantics(t *testing.T) {
	s := NewStore("R", sch("R.a", "R.b"), 0)
	s.Apply([]relation.Tuple{tup(1, 1), tup(2, 2)}, nil, 1)
	// Duplicate add is a no-op; delete of absent tuple is a no-op.
	s.Apply([]relation.Tuple{tup(1, 1), tup(3, 3)}, []relation.Tuple{tup(9, 9)}, 2)
	s.Apply(nil, []relation.Tuple{tup(2, 2)}, 3)
	wantRows(t, s.State().Live(), tup(1, 1), tup(3, 3))

	// Dels before adds within one batch: delete+re-add keeps the tuple.
	s.Apply([]relation.Tuple{tup(1, 1)}, []relation.Tuple{tup(1, 1)}, 4)
	wantRows(t, s.State().Live(), tup(1, 1), tup(3, 3))

	// Live is memoised per state and identical across calls.
	st := s.State()
	if st.Live() != st.Live() {
		t.Fatal("Live not memoised")
	}
}

func TestLiveBaseOrderAndReAdd(t *testing.T) {
	base := relation.New("R", sch("R.a"))
	base.AppendTuple(tup(5))
	base.AppendTuple(tup(3))
	base.AppendTuple(tup(7))
	s := FromRelation(base, 10)
	// Delete a base tuple, then re-add it: it keeps its base position
	// (final polarity alive, key present in base).
	s.Apply(nil, []relation.Tuple{tup(3)}, 11)
	s.Apply([]relation.Tuple{tup(3), tup(1)}, nil, 12)
	wantRows(t, s.State().Live(), tup(5), tup(3), tup(7), tup(1))
}

func TestNetSince(t *testing.T) {
	s := NewStore("R", sch("R.a"), 0)
	s.MaxBatches = 100
	s.CompactFrac = 100
	s.Apply([]relation.Tuple{tup(1)}, nil, 1)
	s.Apply([]relation.Tuple{tup(2)}, []relation.Tuple{tup(1)}, 2)
	s.Apply([]relation.Tuple{tup(1)}, []relation.Tuple{tup(2)}, 3)

	st := s.State()
	adds, dels, ok := st.NetSince(1)
	if !ok {
		t.Fatal("history unexpectedly compacted")
	}
	// Since ver 1: tuple 2 added then removed (net nothing... last polarity
	// del, but it was absent at ver 1? No: NetSince reports polarity, the
	// merge layer treats a del of an absent tuple as a no-op), tuple 1
	// removed then re-added (net add of a present tuple: no-op downstream).
	if len(adds) != 1 || adds[0].Compare(tup(1)) != 0 {
		t.Fatalf("adds = %v, want [[1]]", adds)
	}
	if len(dels) != 1 || dels[0].Compare(tup(2)) != 0 {
		t.Fatalf("dels = %v, want [[2]]", dels)
	}

	// At the current version the delta is empty.
	if a, d, ok := st.NetSince(3); !ok || len(a) != 0 || len(d) != 0 {
		t.Fatalf("NetSince(current) = %v %v %v", a, d, ok)
	}

	// Compaction makes earlier versions unavailable.
	s.Compact()
	if _, _, ok := s.State().NetSince(1); ok {
		t.Fatal("NetSince should fail after compaction")
	}
	if _, _, ok := s.State().NetSince(3); !ok {
		t.Fatal("NetSince at the compacted version should succeed")
	}
}

func TestCompactionPolicyBatchCount(t *testing.T) {
	s := NewStore("R", sch("R.a"), 0)
	s.MaxBatches = 4
	s.CompactFrac = 1e9 // disable the fraction trigger
	for i := 1; i <= 4; i++ {
		s.Apply([]relation.Tuple{tup(i)}, nil, uint64(i))
	}
	if got := len(s.State().Batches); got != 4 {
		t.Fatalf("batches = %d, want 4 (no compaction yet)", got)
	}
	s.Apply([]relation.Tuple{tup(5)}, nil, 5)
	st := s.State()
	if len(st.Batches) != 0 || st.BaseVer != 5 {
		t.Fatalf("expected compaction at batch 5: batches=%d baseVer=%d", len(st.Batches), st.BaseVer)
	}
	wantRows(t, st.Live(), tup(1), tup(2), tup(3), tup(4), tup(5))
}

func TestCompactionPolicyDeltaFraction(t *testing.T) {
	base := relation.New("R", sch("R.a"))
	for i := 0; i < 100; i++ {
		base.AppendTuple(tup(i))
	}
	s := FromRelation(base, 0)
	s.MaxBatches = 1000
	s.CompactFrac = 0.25
	var adds []relation.Tuple
	for i := 100; i < 120; i++ {
		adds = append(adds, tup(i))
	}
	s.Apply(adds, nil, 1) // 20 < 25: no compaction
	if len(s.State().Batches) != 1 {
		t.Fatalf("unexpected compaction at 20%% delta")
	}
	var more []relation.Tuple
	for i := 120; i < 130; i++ {
		more = append(more, tup(i))
	}
	s.Apply(more, nil, 2) // 30 > 25: fold
	st := s.State()
	if len(st.Batches) != 0 || st.BaseVer != 2 || st.Base.Cardinality() != 130 {
		t.Fatalf("expected fold: batches=%d baseVer=%d card=%d", len(st.Batches), st.BaseVer, st.Base.Cardinality())
	}
}

func TestEmptyApplyAndCompactNoop(t *testing.T) {
	s := NewStore("R", sch("R.a"), 7)
	before := s.State()
	if s.Apply(nil, nil, 8) != before {
		t.Fatal("empty Apply should return the current state unchanged")
	}
	if s.Compact() != before {
		t.Fatal("Compact of a chainless state should be a no-op")
	}
	if before.Ver != 7 || before.BaseVer != 7 || before.Base.Cardinality() != 0 {
		t.Fatalf("fresh state: %+v", before)
	}
}

func TestSnapshotPinsVersion(t *testing.T) {
	s := NewStore("R", sch("R.a"), 0)
	s.Apply([]relation.Tuple{tup(1)}, nil, 1)
	pinned := s.State()
	s.Apply([]relation.Tuple{tup(2)}, nil, 2)
	s.Compact()
	wantRows(t, pinned.Live(), tup(1))
	wantRows(t, s.State().Live(), tup(1), tup(2))
	if pinned.Ver != 1 || s.State().Ver != 2 {
		t.Fatalf("versions: pinned=%d current=%d", pinned.Ver, s.State().Ver)
	}
}

// Readers load states lock-free while a serialised writer applies batches
// and compacts; every loaded state must stay internally consistent. Run
// with -race.
func TestConcurrentReadersUnderWrites(t *testing.T) {
	s := NewStore("R", sch("R.a", "R.b"), 0)
	s.MaxBatches = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := s.State()
				live := st.Live()
				if live.Cardinality() > 0 && len(live.Tuples[0]) != 2 {
					t.Error("corrupt tuple")
					return
				}
				if _, _, ok := st.NetSince(st.BaseVer); !ok {
					t.Error("NetSince(BaseVer) must succeed")
					return
				}
			}
		}()
	}
	for i := 1; i <= 200; i++ {
		if i%3 == 0 {
			s.Apply(nil, []relation.Tuple{tup(i-1, i-1)}, uint64(i))
		} else {
			s.Apply([]relation.Tuple{tup(i, i)}, nil, uint64(i))
		}
	}
	close(stop)
	wg.Wait()
}
