// Package delta is the mutation subsystem of the engine: per-relation delta
// logs with add/remove polarity over immutable base snapshots, composing an
// append-only chain of relation versions.
//
// A Store holds the current State of one relation behind an atomic pointer.
// Writers (serialised by the caller, typically under the database write
// lock) append a Batch and publish a fresh State; readers load the pointer
// and get a consistent, immutable version they can hold for as long as they
// like — snapshots are just retained State pointers, and the garbage
// collector keeps every arena and tuple they reference alive (the MVCC
// model of the append-only time-travel databases in the related work).
//
// Deltas follow set semantics: within one batch removals apply before
// additions, a removal of an absent tuple is a no-op, and an addition of a
// present tuple is a no-op. When the delta chain grows past the compaction
// policy (too many batches, or delta tuples dominating the base), Apply
// folds the chain into a new materialised base; NetSince then reports the
// history as unavailable and readers re-snapshot instead of merging.
package delta

import (
	"encoding/binary"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
)

// DefaultMaxBatches is the batch-count compaction threshold: one more
// applied batch folds the chain into a new base.
const DefaultMaxBatches = 48

// DefaultCompactFrac is the delta-fraction compaction threshold: the chain
// folds when the delta tuples exceed this fraction of the base cardinality.
const DefaultCompactFrac = 0.5

// Batch is one applied write: tuples added and tuples removed, stamped with
// the database version at which it committed. Within a batch, removals
// apply before additions (so an Upsert is one batch: del old, add new).
type Batch struct {
	Ver  uint64
	Adds []relation.Tuple
	Dels []relation.Tuple
}

// size returns the number of delta tuples the batch carries.
func (b *Batch) size() int { return len(b.Adds) + len(b.Dels) }

// State is one immutable version of a relation: a materialised base
// snapshot plus the ordered delta batches applied since. States are never
// mutated after publication; Live's memoisation is internally synchronised.
type State struct {
	Ver     uint64 // version of the newest applied batch (BaseVer if none)
	BaseVer uint64 // version the base snapshot materialises
	Base    *relation.Relation
	Batches []*Batch // ascending Ver, all in (BaseVer, Ver]

	liveOnce sync.Once
	live     *relation.Relation
}

// tupleKey renders a tuple as a fixed-width byte-string map key.
func tupleKey(t relation.Tuple) string {
	buf := make([]byte, 8*len(t))
	for i, v := range t {
		binary.LittleEndian.PutUint64(buf[8*i:], uint64(v))
	}
	return string(buf)
}

// DeltaSize returns the number of delta tuples across the state's batches.
func (s *State) DeltaSize() int {
	n := 0
	for _, b := range s.Batches {
		n += b.size()
	}
	return n
}

// Live returns the relation this state represents: the base with every
// batch applied under set semantics. The materialisation runs once per
// state and is cached; the returned relation is shared — treat it as
// read-only. Tuple order is deterministic: base order first, then additions
// in first-application order.
func (s *State) Live() *relation.Relation {
	s.liveOnce.Do(func() {
		if len(s.Batches) == 0 {
			s.live = s.Base
			return
		}
		// alive is each touched tuple's final polarity; addOrder keeps the
		// first time a (finally alive) tuple was added, for determinism.
		alive := make(map[string]bool)
		var addOrder []relation.Tuple
		seen := make(map[string]bool)
		for _, b := range s.Batches {
			for _, t := range b.Dels {
				alive[tupleKey(t)] = false
			}
			for _, t := range b.Adds {
				k := tupleKey(t)
				alive[k] = true
				if !seen[k] {
					seen[k] = true
					addOrder = append(addOrder, t)
				}
			}
		}
		base := make(map[string]bool, s.Base.Cardinality())
		out := relation.New(s.Base.Name, s.Base.Schema)
		out.Tuples = make([]relation.Tuple, 0, s.Base.Cardinality()+len(addOrder))
		for _, t := range s.Base.Tuples {
			k := tupleKey(t)
			base[k] = true
			if v, touched := alive[k]; touched && !v {
				continue
			}
			out.Tuples = append(out.Tuples, t)
		}
		emitted := make(map[string]bool)
		for _, t := range addOrder {
			k := tupleKey(t)
			if alive[k] && !base[k] && !emitted[k] {
				emitted[k] = true
				out.Tuples = append(out.Tuples, t)
			}
		}
		s.live = out
	})
	return s.live
}

// NetSince folds the batches newer than ver into net additions and net
// removals relative to the relation's content at ver (last polarity wins;
// the two lists are disjoint and duplicate-free, in first-touch order).
// ok is false when ver predates the base snapshot — the history has been
// compacted away and the caller must re-snapshot via Live instead.
func (s *State) NetSince(ver uint64) (adds, dels []relation.Tuple, ok bool) {
	if ver < s.BaseVer {
		return nil, nil, false
	}
	if ver >= s.Ver {
		return nil, nil, true
	}
	final := make(map[string]bool)
	var order []relation.Tuple
	seen := make(map[string]bool)
	note := func(t relation.Tuple, add bool) {
		k := tupleKey(t)
		final[k] = add
		if !seen[k] {
			seen[k] = true
			order = append(order, t)
		}
	}
	for _, b := range s.Batches {
		if b.Ver <= ver {
			continue
		}
		for _, t := range b.Dels {
			note(t, false)
		}
		for _, t := range b.Adds {
			note(t, true)
		}
	}
	for _, t := range order {
		if final[tupleKey(t)] {
			adds = append(adds, t)
		} else {
			dels = append(dels, t)
		}
	}
	return adds, dels, true
}

// Store is the versioned home of one relation. The current State sits
// behind an atomic pointer: readers load it lock-free; writers (serialised
// externally) build a successor state and publish it.
type Store struct {
	Name   string
	Schema relation.Schema
	// MaxBatches and CompactFrac override the compaction policy when > 0
	// (tests and benchmarks pin them; the defaults serve the database).
	MaxBatches  int
	CompactFrac float64

	state atomic.Pointer[State]
}

// NewStore creates an empty store at the given version.
func NewStore(name string, schema relation.Schema, ver uint64) *Store {
	s := &Store{Name: name, Schema: schema}
	s.state.Store(&State{Ver: ver, BaseVer: ver, Base: relation.New(name, schema)})
	return s
}

// FromRelation creates a store whose base is the given relation (bulk
// load); the store takes ownership of rel.
func FromRelation(rel *relation.Relation, ver uint64) *Store {
	s := &Store{Name: rel.Name, Schema: rel.Schema}
	s.state.Store(&State{Ver: ver, BaseVer: ver, Base: rel})
	return s
}

// State returns the current version, lock-free. The result is immutable;
// holding it pins the version (and everything it references) alive.
func (s *Store) State() *State { return s.state.Load() }

// Apply appends one batch at version ver and publishes the successor state,
// compacting the chain when the policy says so. Callers must serialise
// Apply externally (the database write lock); ver must exceed the current
// state's version.
func (s *Store) Apply(adds, dels []relation.Tuple, ver uint64) *State {
	cur := s.state.Load()
	if len(adds) == 0 && len(dels) == 0 {
		return cur
	}
	batches := make([]*Batch, 0, len(cur.Batches)+1)
	batches = append(batches, cur.Batches...)
	batches = append(batches, &Batch{Ver: ver, Adds: adds, Dels: dels})
	next := &State{Ver: ver, BaseVer: cur.BaseVer, Base: cur.Base, Batches: batches}
	if s.shouldCompact(next) {
		next = compacted(next)
	}
	s.state.Store(next)
	return next
}

// Compact folds the current chain into a new materialised base at the
// current version. Callers must serialise with Apply.
func (s *Store) Compact() *State {
	cur := s.state.Load()
	if len(cur.Batches) == 0 {
		return cur
	}
	next := compacted(cur)
	s.state.Store(next)
	return next
}

// compacted returns the state with its chain folded into the base.
func compacted(cur *State) *State {
	return &State{Ver: cur.Ver, BaseVer: cur.Ver, Base: cur.Live()}
}

func (s *Store) shouldCompact(next *State) bool {
	maxB := s.MaxBatches
	if maxB <= 0 {
		maxB = DefaultMaxBatches
	}
	if len(next.Batches) > maxB {
		return true
	}
	frac := s.CompactFrac
	if frac <= 0 {
		frac = DefaultCompactFrac
	}
	base := next.Base.Cardinality()
	if base < 16 {
		base = 16 // tiny bases: let a few batches accumulate regardless
	}
	return float64(next.DeltaSize()) > frac*float64(base)
}
