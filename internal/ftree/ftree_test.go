package ftree

import (
	"math"
	"testing"

	"repro/internal/relation"
)

// Grocery schema of the paper's Figure 1, as used by query Q1:
// Orders(oid,item), Store(location,item), Disp(dispatcher,location).
func groceryRels() []relation.AttrSet {
	return []relation.AttrSet{
		relation.NewAttrSet("oid", "item"),
		relation.NewAttrSet("location", "item"),
		relation.NewAttrSet("dispatcher", "location"),
	}
}

// t1 builds the paper's T1: item -> (oid, location -> dispatcher).
func t1() *T {
	item := NewNode("item")
	item.Add(NewNode("oid"), NewNode("location").Add(NewNode("dispatcher")))
	return New([]*Node{item}, groceryRels())
}

// t2 builds the paper's T2: location -> (item -> oid, dispatcher).
func t2() *T {
	loc := NewNode("location")
	loc.Add(NewNode("item").Add(NewNode("oid")), NewNode("dispatcher"))
	return New([]*Node{loc}, groceryRels())
}

// t3 builds the paper's T3 for Q2: supplier -> (item, location), over
// Produce(supplier,item), Serve(supplier,location).
func t3() *T {
	sup := NewNode("supplier")
	sup.Add(NewNode("item"), NewNode("location"))
	return New([]*Node{sup}, []relation.AttrSet{
		relation.NewAttrSet("supplier", "item"),
		relation.NewAttrSet("supplier", "location"),
	})
}

func TestValidateGrocery(t *testing.T) {
	for _, tr := range []*T{t1(), t2(), t3()} {
		if err := tr.Validate(); err != nil {
			t.Fatalf("valid tree rejected: %v\n%s", err, tr)
		}
	}
}

func TestValidateRejectsDuplicateAttr(t *testing.T) {
	n := NewNode("A").Add(NewNode("A"))
	tr := New([]*Node{n}, nil)
	if err := tr.Validate(); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
}

func TestValidateRejectsPathViolation(t *testing.T) {
	// Relation {A,B} but A and B are sibling roots: violates path constraint.
	tr := New([]*Node{NewNode("A"), NewNode("B")},
		[]relation.AttrSet{relation.NewAttrSet("A", "B")})
	if err := tr.Validate(); err == nil {
		t.Fatal("path constraint violation accepted")
	}
}

func TestExample4Costs(t *testing.T) {
	// Example 4: s(T1) = s(T2) = 2, s(T3) = 1.
	if s := t1().S(); math.Abs(s-2) > 1e-6 {
		t.Errorf("s(T1) = %v, want 2", s)
	}
	if s := t2().S(); math.Abs(s-2) > 1e-6 {
		t.Errorf("s(T2) = %v, want 2", s)
	}
	if s := t3().S(); math.Abs(s-1) > 1e-6 {
		t.Errorf("s(T3) = %v, want 1", s)
	}
}

func TestCoverTriangle(t *testing.T) {
	// Fractional cover of the triangle query path: 3 classes, 3 binary
	// relations in a cycle -> 1.5.
	rels := []relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B", "C"),
		relation.NewAttrSet("C", "A"),
	}
	classes := []relation.AttrSet{
		relation.NewAttrSet("A"),
		relation.NewAttrSet("B"),
		relation.NewAttrSet("C"),
	}
	if c := Cover(rels, classes); math.Abs(c-1.5) > 1e-6 {
		t.Fatalf("triangle cover = %v, want 1.5", c)
	}
}

func TestCoverUncoverable(t *testing.T) {
	c := Cover(nil, []relation.AttrSet{relation.NewAttrSet("A")})
	if !math.IsInf(c, 1) {
		t.Fatalf("cover of uncoverable class = %v, want +Inf", c)
	}
}

func TestNodeLookupAndPaths(t *testing.T) {
	tr := t1()
	item := tr.NodeOf("item")
	disp := tr.NodeOf("dispatcher")
	loc := tr.NodeOf("location")
	if item == nil || disp == nil || loc == nil {
		t.Fatal("NodeOf failed")
	}
	if tr.NodeOf("nope") != nil {
		t.Fatal("NodeOf found a ghost")
	}
	if tr.ParentOf(item) != nil {
		t.Fatal("root has a parent")
	}
	if tr.ParentOf(disp) != loc {
		t.Fatal("wrong parent for dispatcher")
	}
	if !tr.IsAncestor(item, disp) {
		t.Fatal("item should be ancestor of dispatcher")
	}
	if tr.IsAncestor(disp, item) {
		t.Fatal("dispatcher is not an ancestor of item")
	}
	p := tr.PathTo(disp)
	if len(p) != 3 || p[0] != item || p[1] != loc || p[2] != disp {
		t.Fatalf("PathTo(dispatcher) wrong: %v", p)
	}
}

// Example 7: normalising the chain {B,B'} - A - {D,D'} - {C,C'} - E with
// relations {A,B}, {B',C}, {C',D}, {D',E} pushes E beside {C,C'} and then
// {D,D'} beside A.
func example7Tree() *T {
	e := NewNode("E")
	cc := NewNode("C", "C'")
	dd := NewNode("D", "D'").Add(cc)
	cc.Add(e)
	a := NewNode("A").Add(dd)
	bb := NewNode("B", "B'").Add(a)
	return New([]*Node{bb}, []relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B'", "C"),
		relation.NewAttrSet("C'", "D"),
		relation.NewAttrSet("D'", "E"),
	})
}

func TestExample7Normalise(t *testing.T) {
	tr := example7Tree()
	if tr.IsNormalised() {
		t.Fatal("example 7 input should not be normalised")
	}
	steps := tr.NormaliseSteps()
	if len(steps) == 0 {
		t.Fatal("no push-ups performed")
	}
	if !tr.IsNormalised() {
		t.Fatalf("tree not normalised after NormaliseSteps:\n%s", tr)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("normalised tree invalid: %v", err)
	}
	// Expected final shape: {B,B'} with children A and {D,D'};
	// {D,D'} with children E and {C,C'}.
	bb := tr.NodeOf("B")
	if len(tr.Roots) != 1 || tr.Roots[0] != bb {
		t.Fatalf("root should be {B,B'}:\n%s", tr)
	}
	dd := tr.NodeOf("D")
	if tr.ParentOf(dd) != bb {
		t.Fatalf("{D,D'} should be child of {B,B'}:\n%s", tr)
	}
	if tr.ParentOf(tr.NodeOf("A")) != bb {
		t.Fatalf("A should be child of {B,B'}:\n%s", tr)
	}
	if tr.ParentOf(tr.NodeOf("E")) != dd {
		t.Fatalf("E should be child of {D,D'}:\n%s", tr)
	}
	if tr.ParentOf(tr.NodeOf("C")) != dd {
		t.Fatalf("{C,C'} should be child of {D,D'}:\n%s", tr)
	}
	// Normalisation can only decrease s(T).
	if tr.S() > example7Tree().S()+1e-9 {
		t.Fatal("normalisation increased s(T)")
	}
}

func TestNormaliseIdempotent(t *testing.T) {
	tr := example7Tree()
	tr.NormaliseSteps()
	c1 := tr.Canonical()
	steps := tr.NormaliseSteps()
	if len(steps) != 0 || tr.Canonical() != c1 {
		t.Fatal("normalisation is not idempotent")
	}
}

// TestSwapT1T2 checks Example 8: swapping item and location in T1 yields T2.
func TestSwapT1T2(t *testing.T) {
	tr := t1()
	if err := tr.Swap("item", "location"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("swapped tree invalid: %v", err)
	}
	if tr.Canonical() != t2().Canonical() {
		t.Fatalf("swap(item,location) on T1:\n%s\nwant T2:\n%s", tr, t2())
	}
	if !tr.IsNormalised() {
		t.Fatal("swap should preserve normalisation")
	}
}

func TestSwapErrors(t *testing.T) {
	tr := t1()
	if err := tr.Swap("location", "item"); err == nil {
		t.Fatal("swap with child as first argument accepted")
	}
	if err := tr.Swap("item", "dispatcher"); err == nil {
		t.Fatal("swap of non-parent-child accepted")
	}
	if err := tr.Swap("item", "ghost"); err == nil {
		t.Fatal("swap of unknown attribute accepted")
	}
}

// Example 11 trees: root {A,D}, children B (child C) and E (child F), with
// relations {A,B,C} and {D,E,F}.
func example11Tree() *T {
	b := NewNode("B").Add(NewNode("C"))
	e := NewNode("E").Add(NewNode("F"))
	ad := NewNode("A", "D").Add(b, e)
	return New([]*Node{ad}, []relation.AttrSet{
		relation.NewAttrSet("A", "B", "C"),
		relation.NewAttrSet("D", "E", "F"),
	})
}

func TestExample11PlanCosts(t *testing.T) {
	// Input cost 1.
	in := example11Tree()
	if s := in.S(); math.Abs(s-1) > 1e-6 {
		t.Fatalf("s(input) = %v, want 1", s)
	}

	// Plan 1: swap({A,D}, B) then absorb(B, F): intermediate cost 2.
	p1 := in.Clone()
	if err := p1.Swap("A", "B"); err != nil {
		t.Fatal(err)
	}
	if err := p1.Validate(); err != nil {
		t.Fatalf("after swap: %v", err)
	}
	if s := p1.S(); math.Abs(s-2) > 1e-6 {
		t.Fatalf("s(intermediate) = %v, want 2", s)
	}
	// B must now be root with {A,D} below, C and E under {A,D}.
	b := p1.NodeOf("B")
	if p1.ParentOf(b) != nil {
		t.Fatalf("B should be root after swap:\n%s", p1)
	}
	ad := p1.NodeOf("A")
	if p1.ParentOf(ad) != b {
		t.Fatalf("{A,D} should be child of B:\n%s", p1)
	}
	if p1.ParentOf(p1.NodeOf("C")) != ad || p1.ParentOf(p1.NodeOf("E")) != ad {
		t.Fatalf("C and E should hang under {A,D}:\n%s", p1)
	}

	// Plan 2: swap(E, F) then merge(B, F): all trees cost 1.
	p2 := in.Clone()
	if err := p2.Swap("E", "F"); err != nil {
		t.Fatal(err)
	}
	if s := p2.S(); math.Abs(s-1) > 1e-6 {
		t.Fatalf("s(after swap E,F) = %v, want 1", s)
	}
	if !p2.AreSiblings("B", "F") {
		t.Fatalf("B and F should be siblings:\n%s", p2)
	}
	if err := p2.Merge("B", "F"); err != nil {
		t.Fatal(err)
	}
	if err := p2.Validate(); err != nil {
		t.Fatalf("after merge: %v", err)
	}
	if s := p2.S(); math.Abs(s-1) > 1e-6 {
		t.Fatalf("s(final) = %v, want 1", s)
	}
	bf := p2.NodeOf("B")
	if bf != p2.NodeOf("F") {
		t.Fatalf("B and F should share a node:\n%s", p2)
	}
	if len(bf.Children) != 2 {
		t.Fatalf("{B,F} should keep children C and E:\n%s", p2)
	}
}

// Example 10: absorbing {C,C'} into A on the chain A - {B,B'} - {C,C'} - D
// with relations {A,B}, {B',C}, {C',D} makes D independent, so
// normalisation pushes D up beside {B,B'}.
func TestExample10Absorb(t *testing.T) {
	d := NewNode("D")
	cc := NewNode("C", "C'").Add(d)
	bb := NewNode("B", "B'").Add(cc)
	a := NewNode("A").Add(bb)
	tr := New([]*Node{a}, []relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B'", "C"),
		relation.NewAttrSet("C'", "D"),
	})
	if err := tr.AbsorbSplice("A", "C"); err != nil {
		t.Fatal(err)
	}
	tr.NormaliseSteps()
	if err := tr.Validate(); err != nil {
		t.Fatalf("after absorb: %v", err)
	}
	root := tr.NodeOf("A")
	if root != tr.NodeOf("C") || root != tr.NodeOf("C'") {
		t.Fatalf("A, C, C' should share the root node:\n%s", tr)
	}
	if tr.ParentOf(tr.NodeOf("B")) != root {
		t.Fatalf("{B,B'} should be child of root:\n%s", tr)
	}
	if tr.ParentOf(tr.NodeOf("D")) != root {
		t.Fatalf("D should have been pushed up beside {B,B'}:\n%s", tr)
	}
}

func TestAbsorbErrors(t *testing.T) {
	tr := t1()
	if err := tr.AbsorbSplice("dispatcher", "item"); err == nil {
		t.Fatal("absorb with descendant as first arg accepted")
	}
	if err := tr.AbsorbSplice("oid", "dispatcher"); err == nil {
		t.Fatal("absorb across branches accepted")
	}
}

func TestMergeErrors(t *testing.T) {
	tr := t1()
	if err := tr.Merge("item", "dispatcher"); err == nil {
		t.Fatal("merge of non-siblings accepted")
	}
}

func TestMergeRoots(t *testing.T) {
	// Two independent root nodes A and B with relations {A},{B}; merging
	// them produces a single root {A,B}.
	tr := New([]*Node{NewNode("A"), NewNode("B")},
		[]relation.AttrSet{relation.NewAttrSet("A"), relation.NewAttrSet("B")})
	if !tr.AreSiblings("A", "B") {
		t.Fatal("two roots should be siblings")
	}
	if err := tr.Merge("A", "B"); err != nil {
		t.Fatal(err)
	}
	if len(tr.Roots) != 1 || len(tr.Roots[0].Attrs) != 2 {
		t.Fatalf("merged root wrong:\n%s", tr)
	}
}

func TestMarkConstIgnoredInCost(t *testing.T) {
	tr := t1()
	tr.MarkConst("item")
	// With item constant, the path location-dispatcher costs 2 still?
	// location covered by Store or Disp, dispatcher by Disp -> Disp covers
	// both: cover 1; oid covered by Orders: 1. So s drops from 2 to 1.
	if s := tr.S(); math.Abs(s-1) > 1e-6 {
		t.Fatalf("s after const item = %v, want 1", s)
	}
	// item is now independent of everything: push-up becomes possible.
	if tr.DependentSets(relation.NewAttrSet("item"), relation.NewAttrSet("oid")) {
		t.Fatal("const attribute still reported dependent")
	}
}

func TestMarkHiddenMergesDeps(t *testing.T) {
	// Chain A-B-C via {A,B}, {B,C}; hiding B must make A and C dependent.
	b := NewNode("B").Add(NewNode("C"))
	a := NewNode("A").Add(b)
	tr := New([]*Node{a}, []relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("B", "C"),
	})
	if tr.DependentSets(relation.NewAttrSet("A"), relation.NewAttrSet("C")) {
		t.Fatal("A and C should start independent")
	}
	tr.MarkHidden([]relation.Attribute{"B"})
	if !tr.DependentSets(relation.NewAttrSet("A"), relation.NewAttrSet("C")) {
		t.Fatal("hiding the join attribute must induce dependence between A and C")
	}
	if len(tr.Deps) != 1 {
		t.Fatalf("dependency sets not merged: %v", tr.Deps)
	}
}

func TestCanonicalStableUnderSiblingOrder(t *testing.T) {
	x := NewNode("R").Add(NewNode("X"), NewNode("Y"))
	y := NewNode("R").Add(NewNode("Y"), NewNode("X"))
	rels := []relation.AttrSet{relation.NewAttrSet("R", "X", "Y")}
	if New([]*Node{x}, rels).Canonical() != New([]*Node{y}, rels).Canonical() {
		t.Fatal("canonical form depends on sibling order")
	}
}

func TestRemoveLeaf(t *testing.T) {
	tr := t1()
	if err := tr.RemoveLeaf(tr.NodeOf("dispatcher")); err != nil {
		t.Fatal(err)
	}
	if tr.NodeOf("dispatcher") != nil {
		t.Fatal("leaf still present")
	}
	if err := tr.RemoveLeaf(tr.NodeOf("item")); err == nil {
		t.Fatal("removed an inner node")
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := t1()
	cl := tr.Clone()
	if err := cl.Swap("item", "location"); err != nil {
		t.Fatal(err)
	}
	if tr.Canonical() == cl.Canonical() {
		t.Fatal("clone shares structure with original")
	}
}

func TestPushUpErrors(t *testing.T) {
	tr := t1()
	if err := tr.PushUp("item"); err == nil {
		t.Fatal("pushed up a root")
	}
	if err := tr.PushUp("ghost"); err == nil {
		t.Fatal("pushed up a ghost attribute")
	}
	// dispatcher depends on location: push-up must fail.
	if err := tr.PushUp("dispatcher"); err == nil {
		t.Fatal("dependent push-up accepted")
	}
	if tr.CanPushUp("dispatcher") {
		t.Fatal("CanPushUp(dispatcher) should be false")
	}
}
