// Package ftree implements factorisation trees (f-trees, Section 2 of the
// paper): unordered rooted forests whose nodes are labelled by equivalence
// classes of attributes. An f-tree is the schema of a factorised
// representation; it records the nesting structure (grouping hierarchy), the
// equality classes, and — through dependency sets — which attributes must
// stay on a common root-to-leaf path (the path constraint, Proposition 1).
//
// The package provides the static side of every f-plan operator (push-up,
// swap, merge, absorb, projection marking), normalisation, canonical forms,
// and the cost parameter s(T): the maximum fractional edge cover number of
// any root-to-leaf path, computed with the simplex solver.
package ftree

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Node is one f-tree node: a non-empty equivalence class of attributes plus
// child subtrees. Nodes are identified by any of their attributes; every
// attribute labels exactly one node of a tree.
type Node struct {
	Attrs    []relation.Attribute // sorted equivalence class
	Children []*Node
}

// NewNode builds a node from the given attributes (sorted internally).
func NewNode(attrs ...relation.Attribute) *Node {
	n := &Node{Attrs: make([]relation.Attribute, len(attrs))}
	copy(n.Attrs, attrs)
	sort.Slice(n.Attrs, func(i, j int) bool { return n.Attrs[i] < n.Attrs[j] })
	return n
}

// Add appends child subtrees and returns the node for chaining.
func (n *Node) Add(children ...*Node) *Node {
	n.Children = append(n.Children, children...)
	return n
}

// HasAttr reports whether a labels this node.
func (n *Node) HasAttr(a relation.Attribute) bool {
	for _, x := range n.Attrs {
		if x == a {
			return true
		}
	}
	return false
}

// clone deep-copies the subtree.
func (n *Node) clone() *Node {
	out := &Node{Attrs: append([]relation.Attribute(nil), n.Attrs...)}
	for _, c := range n.Children {
		out.Children = append(out.Children, c.clone())
	}
	return out
}

// subtreeAttrs collects all attributes in the subtree into dst.
func (n *Node) subtreeAttrs(dst relation.AttrSet) {
	for _, a := range n.Attrs {
		dst.Add(a)
	}
	for _, c := range n.Children {
		c.subtreeAttrs(dst)
	}
}

// T is a factorisation tree (in general a forest) together with the
// dependency information needed to decide the path constraint:
//
//   - Rels: the schemas of the input relations, used as hyperedges when
//     computing s(T). These never change.
//   - Deps: dependency sets used for the path constraint and normalisation.
//     Initially the relation schemas; projections merge sets that share a
//     projected-away join attribute (Section 3.4).
//   - Hidden: attributes projected away but still present in inner nodes.
//   - Consts: attributes bound to a constant by an equality selection; they
//     carry no correlation, so dependence checks and s(T) ignore them
//     (Section 3.3, "selection with constant").
type T struct {
	Roots  []*Node
	Rels   []relation.AttrSet
	Deps   []relation.AttrSet
	Hidden relation.AttrSet
	Consts relation.AttrSet
}

// New builds an f-tree with the given roots and relation schemas. The
// dependency sets start as copies of the relation schemas.
func New(roots []*Node, rels []relation.AttrSet) *T {
	t := &T{
		Roots:  roots,
		Rels:   rels,
		Hidden: relation.AttrSet{},
		Consts: relation.AttrSet{},
	}
	for _, r := range rels {
		t.Deps = append(t.Deps, r.Clone())
	}
	return t
}

// Clone deep-copies the tree, its dependency sets and markers.
func (t *T) Clone() *T {
	out := &T{
		Hidden: t.Hidden.Clone(),
		Consts: t.Consts.Clone(),
	}
	for _, r := range t.Roots {
		out.Roots = append(out.Roots, r.clone())
	}
	for _, d := range t.Rels {
		out.Rels = append(out.Rels, d.Clone())
	}
	for _, d := range t.Deps {
		out.Deps = append(out.Deps, d.Clone())
	}
	return out
}

// Attrs returns the set of all attributes labelling nodes of t.
func (t *T) Attrs() relation.AttrSet {
	out := relation.AttrSet{}
	for _, r := range t.Roots {
		r.subtreeAttrs(out)
	}
	return out
}

// VisibleAttrs returns the attributes that are neither hidden nor constant.
func (t *T) VisibleAttrs() relation.AttrSet {
	out := relation.AttrSet{}
	for a := range t.Attrs() {
		if !t.Hidden.Has(a) {
			out.Add(a)
		}
	}
	return out
}

// NodeOf returns the node labelled by a, or nil.
func (t *T) NodeOf(a relation.Attribute) *Node {
	var find func(n *Node) *Node
	find = func(n *Node) *Node {
		if n.HasAttr(a) {
			return n
		}
		for _, c := range n.Children {
			if r := find(c); r != nil {
				return r
			}
		}
		return nil
	}
	for _, r := range t.Roots {
		if n := find(r); n != nil {
			return n
		}
	}
	return nil
}

// ParentOf returns the parent of n, or nil if n is a root (or absent).
func (t *T) ParentOf(n *Node) *Node {
	var find func(p *Node) *Node
	find = func(p *Node) *Node {
		for _, c := range p.Children {
			if c == n {
				return p
			}
			if r := find(c); r != nil {
				return r
			}
		}
		return nil
	}
	for _, r := range t.Roots {
		if r == n {
			return nil
		}
		if p := find(r); p != nil {
			return p
		}
	}
	return nil
}

// PathTo returns the chain of nodes from a root down to n inclusive, or nil
// if n is not in the tree.
func (t *T) PathTo(n *Node) []*Node {
	var path []*Node
	var find func(cur *Node) bool
	find = func(cur *Node) bool {
		path = append(path, cur)
		if cur == n {
			return true
		}
		for _, c := range cur.Children {
			if find(c) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	for _, r := range t.Roots {
		path = path[:0]
		if find(r) {
			return append([]*Node(nil), path...)
		}
	}
	return nil
}

// IsAncestor reports whether anc is a strict ancestor of desc.
func (t *T) IsAncestor(anc, desc *Node) bool {
	p := t.PathTo(desc)
	for _, n := range p[:max(0, len(p)-1)] {
		if n == anc {
			return true
		}
	}
	return false
}

// active filters out constant attributes: they carry no correlation.
func (t *T) active(s relation.AttrSet) relation.AttrSet {
	out := relation.AttrSet{}
	for a := range s {
		if !t.Consts.Has(a) {
			out.Add(a)
		}
	}
	return out
}

// DependentSets reports whether attribute sets x and y are dependent: some
// dependency set contains a non-constant attribute of each.
func (t *T) DependentSets(x, y relation.AttrSet) bool {
	ax, ay := t.active(x), t.active(y)
	if len(ax) == 0 || len(ay) == 0 {
		return false
	}
	for _, d := range t.Deps {
		if d.Intersects(ax) && d.Intersects(ay) {
			return true
		}
	}
	return false
}

// SubtreeDependsOnNode reports whether any attribute in the subtree rooted
// at sub is dependent on the class of node n.
func (t *T) SubtreeDependsOnNode(sub, n *Node) bool {
	subAttrs := relation.AttrSet{}
	sub.subtreeAttrs(subAttrs)
	return t.DependentSets(subAttrs, relation.NewAttrSet(n.Attrs...))
}

// Validate checks structural sanity and the path constraint: every
// dependency set's non-constant attributes label nodes on one root-to-leaf
// path.
func (t *T) Validate() error {
	seen := relation.AttrSet{}
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if len(n.Attrs) == 0 {
			return fmt.Errorf("ftree: empty node label")
		}
		for _, a := range n.Attrs {
			if seen.Has(a) {
				return fmt.Errorf("ftree: attribute %q labels two nodes", a)
			}
			seen.Add(a)
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range t.Roots {
		if err := walk(r); err != nil {
			return err
		}
	}
	for _, d := range t.Deps {
		if err := t.checkDepOnPath(d); err != nil {
			return err
		}
	}
	return nil
}

// checkDepOnPath verifies a single dependency set lies on one path.
func (t *T) checkDepOnPath(d relation.AttrSet) error {
	var nodes []*Node
	seen := map[*Node]bool{}
	for a := range d {
		if t.Consts.Has(a) {
			continue
		}
		n := t.NodeOf(a)
		if n == nil {
			continue // projected-away attribute no longer in the tree
		}
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	if len(nodes) <= 1 {
		return nil
	}
	// All nodes must lie on the path to the deepest of them.
	deepest := nodes[0]
	deepestPath := t.PathTo(deepest)
	for _, n := range nodes[1:] {
		p := t.PathTo(n)
		if len(p) > len(deepestPath) {
			deepest, deepestPath = n, p
		}
	}
	onPath := map[*Node]bool{}
	for _, n := range deepestPath {
		onPath[n] = true
	}
	for _, n := range nodes {
		if !onPath[n] {
			return fmt.Errorf("ftree: dependency set %v violates the path constraint", d.Sorted())
		}
	}
	return nil
}

// Canonical returns a canonical string for the tree shape, labels and
// markers; two trees with the same canonical form are identical up to
// sibling order. Used as a state key by the plan-search optimiser.
func (t *T) Canonical() string {
	var node func(n *Node) string
	node = func(n *Node) string {
		var b strings.Builder
		b.WriteByte('{')
		for i, a := range n.Attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(string(a))
			if t.Hidden.Has(a) {
				b.WriteByte('~')
			}
			if t.Consts.Has(a) {
				b.WriteByte('!')
			}
		}
		b.WriteByte('}')
		if len(n.Children) > 0 {
			kids := make([]string, len(n.Children))
			for i, c := range n.Children {
				kids[i] = node(c)
			}
			sort.Strings(kids)
			b.WriteByte('(')
			b.WriteString(strings.Join(kids, " "))
			b.WriteByte(')')
		}
		return b.String()
	}
	roots := make([]string, len(t.Roots))
	for i, r := range t.Roots {
		roots[i] = node(r)
	}
	sort.Strings(roots)
	return strings.Join(roots, " | ")
}

// String renders the forest as an indented outline for examples and
// debugging.
func (t *T) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		labels := make([]string, 0, len(n.Attrs))
		for _, a := range n.Attrs {
			s := string(a)
			if t.Hidden.Has(a) {
				s += "~"
			}
			if t.Consts.Has(a) {
				s += "=const"
			}
			labels = append(labels, s)
		}
		b.WriteString(strings.Join(labels, ","))
		b.WriteByte('\n')
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
