package ftree

import (
	"fmt"
	"sort"

	"repro/internal/relation"
)

// This file implements the static (schema-level) side of the f-plan
// operators of Section 3, Figure 3: push-up ψ, normalisation η, swap χ,
// merge μ and absorb α, plus projection marking. The data-level mirrors live
// in package fplan; they replay exactly the structural changes made here, so
// the contracts below (which child goes where, in which order) are part of
// the operator semantics.

// CanPushUp reports whether node b (identified by one of its attributes) has
// a parent it is independent of, i.e. ψ_b is applicable.
func (t *T) CanPushUp(b relation.Attribute) bool {
	n := t.NodeOf(b)
	if n == nil {
		return false
	}
	p := t.ParentOf(n)
	if p == nil {
		return false
	}
	return !t.SubtreeDependsOnNode(n, p)
}

// PushUp applies ψ_b: the node labelled by b moves one level up, becoming a
// sibling of its former parent (appended after it), or a new root if the
// parent was a root. The data mirror appends the moved union at the end of
// the enclosing product, matching this order.
func (t *T) PushUp(b relation.Attribute) error {
	n := t.NodeOf(b)
	if n == nil {
		return fmt.Errorf("ftree: push-up: attribute %q not in tree", b)
	}
	p := t.ParentOf(n)
	if p == nil {
		return fmt.Errorf("ftree: push-up: node of %q is a root", b)
	}
	if t.SubtreeDependsOnNode(n, p) {
		return fmt.Errorf("ftree: push-up of %q would violate the path constraint", b)
	}
	removeChild(p, n)
	gp := t.ParentOf(p)
	if gp == nil {
		t.Roots = append(t.Roots, n)
	} else {
		gp.Children = append(gp.Children, n)
	}
	return nil
}

func removeChild(p *Node, c *Node) {
	for i, x := range p.Children {
		if x == c {
			p.Children = append(p.Children[:i], p.Children[i+1:]...)
			return
		}
	}
	panic("ftree: removeChild: not a child")
}

// NormaliseSteps computes and applies a normalisation η: a sequence of
// push-ups after which no node can be pushed up (Definition 3). It returns
// the attributes identifying the pushed nodes, in application order, so the
// data layer can replay the same sequence. The traversal is deterministic:
// repeatedly scan nodes in canonical order and push the first pushable one
// as far up as it goes.
func (t *T) NormaliseSteps() []relation.Attribute {
	var steps []relation.Attribute
	for {
		b := t.findPushable()
		if b == "" {
			return steps
		}
		// Push b as far up as possible.
		for t.CanPushUp(b) {
			if err := t.PushUp(b); err != nil {
				panic(err) // CanPushUp just said yes
			}
			steps = append(steps, b)
		}
	}
}

// findPushable returns an attribute of some pushable node, or "".
func (t *T) findPushable() relation.Attribute {
	var found relation.Attribute
	var walk func(n *Node, parent *Node)
	walk = func(n *Node, parent *Node) {
		if found != "" {
			return
		}
		if parent != nil && !t.SubtreeDependsOnNode(n, parent) {
			found = n.Attrs[0]
			return
		}
		for _, c := range n.Children {
			walk(c, n)
		}
	}
	for _, r := range t.Roots {
		walk(r, nil)
		if found != "" {
			break
		}
	}
	return found
}

// IsNormalised reports whether no push-up is applicable.
func (t *T) IsNormalised() bool { return t.findPushable() == "" }

// SwapSplit is the result of planning a swap χ_{A,B}: which of B's children
// stay under B (independent of A) and which move under A (dependent on A).
// Indices refer to B's child list before the swap.
type SwapSplit struct {
	Indep []int // TB of Figure 3(b): stay as children of B
	Dep   []int // TAB: move under A
}

// PlanSwap computes the child split for χ_{a,b} without mutating the tree.
// The node of b must be a child of the node of a.
func (t *T) PlanSwap(a, b relation.Attribute) (SwapSplit, error) {
	na, nb := t.NodeOf(a), t.NodeOf(b)
	if na == nil || nb == nil {
		return SwapSplit{}, fmt.Errorf("ftree: swap: attribute not in tree")
	}
	if t.ParentOf(nb) != na {
		return SwapSplit{}, fmt.Errorf("ftree: swap: node of %q is not a child of node of %q", b, a)
	}
	var split SwapSplit
	for i, c := range nb.Children {
		if t.SubtreeDependsOnNode(c, na) {
			split.Dep = append(split.Dep, i)
		} else {
			split.Indep = append(split.Indep, i)
		}
	}
	return split, nil
}

// Swap applies χ_{a,b} (Figure 3(b)): B takes A's place; B keeps its
// A-independent children (in order) followed by A; A keeps its other
// children (in order) followed by B's A-dependent children (in order).
// Swapping preserves the path constraint and normalisation.
func (t *T) Swap(a, b relation.Attribute) error {
	split, err := t.PlanSwap(a, b)
	if err != nil {
		return err
	}
	na, nb := t.NodeOf(a), t.NodeOf(b)
	gp := t.ParentOf(na)

	var tb, tab []*Node
	for _, i := range split.Indep {
		tb = append(tb, nb.Children[i])
	}
	for _, i := range split.Dep {
		tab = append(tab, nb.Children[i])
	}
	removeChild(na, nb)
	na.Children = append(na.Children, tab...)
	nb.Children = append(tb, na)

	if gp == nil {
		for i, r := range t.Roots {
			if r == na {
				t.Roots[i] = nb
				break
			}
		}
	} else {
		for i, c := range gp.Children {
			if c == na {
				gp.Children[i] = nb
				break
			}
		}
	}
	return nil
}

// AreSiblings reports whether the nodes of a and b are distinct and either
// both roots or children of the same node, i.e. μ is applicable.
func (t *T) AreSiblings(a, b relation.Attribute) bool {
	na, nb := t.NodeOf(a), t.NodeOf(b)
	if na == nil || nb == nil || na == nb {
		return false
	}
	pa, pb := t.ParentOf(na), t.ParentOf(nb)
	return pa == pb
}

// Merge applies μ_{a,b} (Figure 3(c)): the sibling nodes of a and b are
// merged into one node labelled by both classes, whose children are A's
// children followed by B's children. The merged node takes A's position; B's
// slot disappears.
func (t *T) Merge(a, b relation.Attribute) error {
	if !t.AreSiblings(a, b) {
		return fmt.Errorf("ftree: merge: nodes of %q and %q are not siblings", a, b)
	}
	na, nb := t.NodeOf(a), t.NodeOf(b)
	na.Attrs = append(na.Attrs, nb.Attrs...)
	sort.Slice(na.Attrs, func(i, j int) bool { return na.Attrs[i] < na.Attrs[j] })
	na.Children = append(na.Children, nb.Children...)
	if p := t.ParentOf(nb); p != nil {
		removeChild(p, nb)
	} else {
		for i, r := range t.Roots {
			if r == nb {
				t.Roots = append(t.Roots[:i], t.Roots[i+1:]...)
				break
			}
		}
	}
	return nil
}

// AbsorbSplice applies the structural part of α_{a,b} (Figure 3(d)): the
// node of b (a strict descendant of the node of a) is deleted, its labels
// join A's class, and its children are attached to B's former parent in B's
// place. The caller is responsible for the accompanying data restriction
// and for re-normalising afterwards (α = restrict + splice + η).
func (t *T) AbsorbSplice(a, b relation.Attribute) error {
	na, nb := t.NodeOf(a), t.NodeOf(b)
	if na == nil || nb == nil {
		return fmt.Errorf("ftree: absorb: attribute not in tree")
	}
	if !t.IsAncestor(na, nb) {
		return fmt.Errorf("ftree: absorb: node of %q is not an ancestor of node of %q", a, b)
	}
	p := t.ParentOf(nb)
	// Splice children into B's slot position.
	for i, c := range p.Children {
		if c == nb {
			rest := append([]*Node(nil), p.Children[i+1:]...)
			p.Children = append(p.Children[:i], nb.Children...)
			p.Children = append(p.Children, rest...)
			break
		}
	}
	na.Attrs = append(na.Attrs, nb.Attrs...)
	sort.Slice(na.Attrs, func(i, j int) bool { return na.Attrs[i] < na.Attrs[j] })
	return nil
}

// MarkConst records that attribute a is bound to a single constant value;
// dependence checks and s(T) ignore it from now on.
func (t *T) MarkConst(a relation.Attribute) {
	n := t.NodeOf(a)
	if n == nil {
		return
	}
	for _, x := range n.Attrs {
		t.Consts.Add(x)
	}
}

// MarkHidden marks the given attributes as projected away and merges
// dependency sets that share a hidden attribute: if a join attribute
// disappears from the output, the remaining attributes of the joined
// relations become (transitively) dependent (Sections 2 and 3.4).
func (t *T) MarkHidden(attrs []relation.Attribute) {
	for _, a := range attrs {
		t.Hidden.Add(a)
	}
	// Union-find over dependency sets connected through hidden attributes.
	parent := make([]int, len(t.Deps))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	for a := range t.Hidden {
		first := -1
		for i, d := range t.Deps {
			if d.Has(a) {
				if first < 0 {
					first = i
				} else {
					parent[find(i)] = find(first)
				}
			}
		}
	}
	merged := map[int]relation.AttrSet{}
	for i, d := range t.Deps {
		r := find(i)
		if merged[r] == nil {
			merged[r] = relation.AttrSet{}
		}
		for a := range d {
			merged[r].Add(a)
		}
	}
	keys := make([]int, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	t.Deps = t.Deps[:0]
	for _, k := range keys {
		t.Deps = append(t.Deps, merged[k])
	}
}

// AllHidden reports whether every attribute of n is hidden.
func (t *T) AllHidden(n *Node) bool {
	for _, a := range n.Attrs {
		if !t.Hidden.Has(a) {
			return false
		}
	}
	return true
}

// RemoveLeaf deletes a leaf node (no children) from the tree. Used by the
// projection operator after hidden nodes have been swapped down to leaves.
func (t *T) RemoveLeaf(n *Node) error {
	if len(n.Children) != 0 {
		return fmt.Errorf("ftree: RemoveLeaf: node %v has children", n.Attrs)
	}
	if p := t.ParentOf(n); p != nil {
		removeChild(p, n)
		return nil
	}
	for i, r := range t.Roots {
		if r == n {
			t.Roots = append(t.Roots[:i], t.Roots[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("ftree: RemoveLeaf: node not in tree")
}
