package ftree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// quickChain derives a random chain tree over two binary relations from a
// seed.
func quickChain(seed int64) *T {
	rng := rand.New(rand.NewSource(seed))
	attrs := []relation.Attribute{"A", "B", "C", "D"}
	rng.Shuffle(len(attrs), func(i, j int) { attrs[i], attrs[j] = attrs[j], attrs[i] })
	var root, cur *Node
	for _, a := range attrs {
		n := NewNode(a)
		if cur == nil {
			root = n
		} else {
			cur.Add(n)
		}
		cur = n
	}
	return New([]*Node{root}, []relation.AttrSet{
		relation.NewAttrSet("A", "B"),
		relation.NewAttrSet("C", "D"),
	})
}

// Property: normalisation is idempotent and never increases s(T).
func TestQuickNormaliseIdempotentAndMonotone(t *testing.T) {
	f := func(seed int64) bool {
		tr := quickChain(seed)
		before := tr.S()
		tr.NormaliseSteps()
		if !tr.IsNormalised() || tr.Validate() != nil {
			return false
		}
		after := tr.S()
		if after > before+1e-9 {
			return false
		}
		c := tr.Canonical()
		if steps := tr.NormaliseSteps(); len(steps) != 0 || tr.Canonical() != c {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: swapping a random parent-child pair preserves validity,
// normalisation and the attribute set, and swapping back restores the
// canonical form.
func TestQuickSwapInvolution(t *testing.T) {
	f := func(seed int64, pick uint8) bool {
		tr := quickChain(seed)
		tr.NormaliseSteps()
		// Collect parent-child pairs.
		type pair struct{ p, c relation.Attribute }
		var pairs []pair
		var walk func(n *Node)
		walk = func(n *Node) {
			for _, c := range n.Children {
				pairs = append(pairs, pair{n.Attrs[0], c.Attrs[0]})
				walk(c)
			}
		}
		for _, r := range tr.Roots {
			walk(r)
		}
		if len(pairs) == 0 {
			return true
		}
		pr := pairs[int(pick)%len(pairs)]
		before := tr.Canonical()
		if err := tr.Swap(pr.p, pr.c); err != nil {
			return false
		}
		if tr.Validate() != nil || !tr.IsNormalised() {
			return false
		}
		// Swap back: the child is now the parent.
		if err := tr.Swap(pr.c, pr.p); err != nil {
			return false
		}
		return tr.Canonical() == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone preserves the canonical form and isolates mutation.
func TestQuickClone(t *testing.T) {
	f := func(seed int64) bool {
		tr := quickChain(seed)
		cl := tr.Clone()
		if cl.Canonical() != tr.Canonical() {
			return false
		}
		cl.MarkConst("A")
		return !tr.Consts.Has("A")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
