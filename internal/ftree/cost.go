package ftree

import (
	"math"

	"repro/internal/relation"
	"repro/internal/simplex"
)

// This file computes the cost parameter s(T) of Section 2: the maximum, over
// all root-to-leaf paths p of T, of the fractional edge cover number of the
// hypergraph whose vertices are the attribute classes on p and whose edges
// are the input relations. For any database D, f-representations over T have
// size O(|D|^{s(T)}), and this bound is tight, so s(T) drives both the
// asymptotic cost measure of f-plans (Section 4.1) and the optimisers.

// Cover computes the fractional edge cover number of the given attribute
// classes using rels as hyperedges. Classes with no non-constant attribute
// are skipped by the caller. Returns +Inf if some class cannot be covered.
func Cover(rels []relation.AttrSet, classes []relation.AttrSet) float64 {
	if len(classes) == 0 {
		return 0
	}
	// Variables: only relations that touch some class (others are 0 in any
	// optimal solution).
	var vars []int
	for i, r := range rels {
		touches := false
		for _, c := range classes {
			if r.Intersects(c) {
				touches = true
				break
			}
		}
		if touches {
			vars = append(vars, i)
		}
	}
	c := make([]float64, len(vars))
	for i := range c {
		c[i] = 1
	}
	a := make([][]float64, 0, len(classes))
	for _, cls := range classes {
		row := make([]float64, len(vars))
		any := false
		for j, ri := range vars {
			if rels[ri].Intersects(cls) {
				row[j] = 1
				any = true
			}
		}
		if !any {
			return math.Inf(1)
		}
		a = append(a, row)
	}
	b := make([]float64, len(a))
	for i := range b {
		b[i] = 1
	}
	val, _, err := simplex.Minimize(c, a, b)
	if err != nil {
		return math.Inf(1)
	}
	return val
}

// classOf returns the non-constant attributes of a node as a set, or nil if
// the node is entirely constant (such nodes are ignored by s(T), Section
// 3.3).
func (t *T) classOf(n *Node) relation.AttrSet {
	out := relation.AttrSet{}
	for _, a := range n.Attrs {
		if !t.Consts.Has(a) {
			out.Add(a)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// S returns s(T): the maximum fractional edge cover number over all
// root-to-leaf paths. Hidden (projected-away) attributes participate: this
// is the computation-cost variant s(T̂) that bounds intermediate work.
func (t *T) S() float64 { return t.s(false) }

// SVisible returns s of the tree restricted to nodes with at least one
// visible attribute: the bound on the size of the represented result.
func (t *T) SVisible() float64 { return t.s(true) }

func (t *T) s(visibleOnly bool) float64 {
	var best float64
	var path []relation.AttrSet
	var walk func(n *Node)
	walk = func(n *Node) {
		cls := t.classOf(n)
		skip := cls == nil
		if !skip && visibleOnly {
			vis := false
			for a := range cls {
				if !t.Hidden.Has(a) {
					vis = true
					break
				}
			}
			skip = !vis
		}
		if !skip {
			path = append(path, cls)
		}
		if len(n.Children) == 0 {
			if c := Cover(t.Rels, path); c > best {
				best = c
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
		if !skip {
			path = path[:len(path)-1]
		}
	}
	for _, r := range t.Roots {
		walk(r)
	}
	return best
}
