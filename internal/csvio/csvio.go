// Package csvio reads and writes relations in the plain tab-separated text
// format used by the FDB and RDB engines of the paper ("FDB and RDB use
// the plain text format", Section 5) and by cmd/fdb and cmd/fdgen.
//
// Format: the first line is "Name<TAB>attr1<TAB>attr2…"; every following
// non-empty line is one tuple. Fields that parse as signed 64-bit integers
// are stored numerically; all other fields are dictionary-encoded through
// the supplied Dict.
package csvio

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/relation"
)

// Read parses one relation. Attribute names are qualified as "Name.attr"
// so schemas from different files never collide.
func Read(r io.Reader, dict *relation.Dict) (*relation.Relation, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("csvio: empty input")
	}
	head := strings.Split(sc.Text(), "\t")
	if len(head) < 2 {
		return nil, fmt.Errorf("csvio: header %q needs a name and at least one attribute", sc.Text())
	}
	name := head[0]
	sch := make(relation.Schema, len(head)-1)
	for i, a := range head[1:] {
		if a == "" {
			return nil, fmt.Errorf("csvio: empty attribute name in header")
		}
		sch[i] = relation.Attribute(name + "." + a)
	}
	if err := sch.Validate(); err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	rel := relation.New(name, sch)
	line := 1
	for sc.Scan() {
		line++
		txt := sc.Text()
		if txt == "" {
			continue
		}
		fields := strings.Split(txt, "\t")
		if len(fields) != len(sch) {
			return nil, fmt.Errorf("csvio: line %d has %d fields, schema has %d", line, len(fields), len(sch))
		}
		t := make(relation.Tuple, len(fields))
		for i, f := range fields {
			if n, err := strconv.ParseInt(f, 10, 64); err == nil {
				t[i] = relation.Value(n)
			} else {
				t[i] = dict.Encode(f)
			}
		}
		rel.AppendTuple(t)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rel, nil
}

// ReadFile opens and parses one relation file.
func ReadFile(path string, dict *relation.Dict) (*relation.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	rel, err := Read(f, dict)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rel, nil
}

// Write renders the relation in the text format. Values present in dict
// decode to their strings (pass nil for purely numeric output). Attribute
// names are written unqualified (the "Name." prefix, if present, is
// stripped).
func Write(w io.Writer, rel *relation.Relation, dict *relation.Dict) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(rel.Name); err != nil {
		return err
	}
	for _, a := range rel.Schema {
		name := string(a)
		if i := strings.IndexByte(name, '.'); i >= 0 && name[:i] == rel.Name {
			name = name[i+1:]
		}
		bw.WriteByte('\t')
		bw.WriteString(name)
	}
	bw.WriteByte('\n')
	for _, t := range rel.Tuples {
		for i, v := range t {
			if i > 0 {
				bw.WriteByte('\t')
			}
			if dict != nil {
				bw.WriteString(dict.Decode(v))
			} else {
				bw.WriteString(strconv.FormatInt(int64(v), 10))
			}
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// WriteFile writes the relation to path.
func WriteFile(path string, rel *relation.Relation, dict *relation.Dict) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, rel, dict); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
