package csvio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestReadBasic(t *testing.T) {
	in := "Orders\toid\titem\n1\tMilk\n2\tCheese\n\n3\tMilk\n"
	d := relation.NewDict()
	r, err := Read(strings.NewReader(in), d)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "Orders" || r.Cardinality() != 3 {
		t.Fatalf("got %s with %d tuples", r.Name, r.Cardinality())
	}
	want := relation.Schema{"Orders.oid", "Orders.item"}
	if !r.Schema.Equal(want) {
		t.Fatalf("schema = %v", r.Schema)
	}
	// Integers stay numeric; strings dictionary-encode.
	if r.Tuples[0][0] != 1 {
		t.Fatalf("numeric field mangled: %v", r.Tuples[0])
	}
	if d.Decode(r.Tuples[0][1]) != "Milk" {
		t.Fatal("string field not dictionary-encoded")
	}
	// Same string twice encodes to the same value.
	if r.Tuples[0][1] != r.Tuples[2][1] {
		t.Fatal("dictionary not shared across rows")
	}
}

func TestReadErrors(t *testing.T) {
	d := relation.NewDict()
	cases := []string{
		"",                // empty
		"OnlyName\n",      // no attributes
		"R\ta\tb\n1\n",    // arity mismatch
		"R\ta\ta\n1\t2\n", // duplicate attribute
		"R\ta\t\n1\t2\n",  // empty attribute name
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c), d); err == nil {
			t.Errorf("input %q accepted", c)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	d := relation.NewDict()
	r := relation.New("R", relation.Schema{"R.a", "R.b"})
	r.Append(1, d.Encode("x"))
	r.Append(2, d.Encode("y"))
	var buf bytes.Buffer
	if err := Write(&buf, r, d); err != nil {
		t.Fatal(err)
	}
	d2 := relation.NewDict()
	back, err := Read(&buf, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Schema.Equal(r.Schema) || back.Cardinality() != 2 {
		t.Fatalf("round trip wrong: %v (%d tuples)", back.Schema, back.Cardinality())
	}
	if d2.Decode(back.Tuples[0][1]) != "x" || d2.Decode(back.Tuples[1][1]) != "y" {
		t.Fatal("string values lost in round trip")
	}
}

func TestRoundTripNumericNilDict(t *testing.T) {
	r := relation.New("N", relation.Schema{"N.a"})
	r.Append(-7)
	r.Append(42)
	var buf bytes.Buffer
	if err := Write(&buf, r, nil); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, relation.NewDict())
	if err != nil {
		t.Fatal(err)
	}
	if back.Tuples[0][0] != -7 || back.Tuples[1][0] != 42 {
		t.Fatalf("numeric round trip wrong: %v", back.Tuples)
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.tsv")
	d := relation.NewDict()
	r := relation.New("R", relation.Schema{"R.a"})
	r.Append(d.Encode("hello"))
	if err := WriteFile(path, r, d); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path, d)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cardinality() != 1 || d.Decode(back.Tuples[0][0]) != "hello" {
		t.Fatal("file round trip wrong")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.tsv"), d); err == nil {
		t.Fatal("missing file accepted")
	}
}
