package fdb

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// retailerDB builds a retailer-style workload big enough for the parallel
// build to split it into morsels.
func retailerDB(t *testing.T, seed int64) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := New()
	db.MustCreate("Orders", "oid", "item")
	for i := 0; i < 1500; i++ {
		db.MustInsert("Orders", i, rng.Intn(50))
	}
	db.MustCreate("Stock", "location", "item")
	for i := 0; i < 600; i++ {
		db.MustInsert("Stock", rng.Intn(40), rng.Intn(50))
	}
	db.MustCreate("Disp", "dispatcher", "location")
	for i := 0; i < 250; i++ {
		db.MustInsert("Disp", i%120, rng.Intn(40))
	}
	return db
}

var retailerJoin = []Clause{
	From("Orders", "Stock", "Disp"),
	Eq("Orders.item", "Stock.item"),
	Eq("Stock.location", "Disp.location"),
}

// TestParallelismMatchesSerial: every worker count produces the same
// result — counts, tuples and aggregates — as the serial path, through the
// public Query/QueryAgg surface.
func TestParallelismMatchesSerial(t *testing.T) {
	db := retailerDB(t, 1)
	db.SetParallelism(1)
	serial, err := db.Query(retailerJoin...)
	if err != nil {
		t.Fatal(err)
	}
	aggClauses := append(retailerJoin[:3:3],
		GroupBy("Stock.location"), Agg(Count, ""), Agg(Sum, "Orders.oid"), Agg(CountDistinct, "Orders.item"))
	serialAgg, err := db.QueryAgg(aggClauses...)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4, 8} {
		res, err := db.Query(append(retailerJoin[:3:3], WithParallelism(p))...)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if res.Count() != serial.Count() || res.Size() != serial.Size() {
			t.Fatalf("p=%d: count/size %d/%d, serial %d/%d", p, res.Count(), res.Size(), serial.Count(), serial.Size())
		}
		if !res.Enc().Equal(serial.Enc()) {
			t.Fatalf("p=%d: parallel result not structurally equal to serial", p)
		}
		agg, err := db.QueryAgg(append(aggClauses[:len(aggClauses):len(aggClauses)], WithParallelism(p))...)
		if err != nil {
			t.Fatalf("p=%d: agg: %v", p, err)
		}
		if !reflect.DeepEqual(agg.Rows(0), serialAgg.Rows(0)) {
			t.Fatalf("p=%d: parallel aggregation differs from serial", p)
		}
	}
}

// TestWithParallelismValidation: the clause rejects nonsense and misuse.
func TestWithParallelismValidation(t *testing.T) {
	db := retailerDB(t, 2)
	if _, err := db.Query(append(retailerJoin[:3:3], WithParallelism(0))...); err == nil {
		t.Fatal("WithParallelism(0) accepted")
	}
	if _, err := db.Query(append(retailerJoin[:3:3], WithParallelism(2), WithParallelism(4))...); err == nil {
		t.Fatal("double WithParallelism accepted")
	}
	res, err := db.Query(retailerJoin...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := res.Where(WithParallelism(2)); err == nil {
		t.Fatal("WithParallelism accepted in Where")
	}
}

// TestParallelismPlanCacheIsolation: a cached plan compiled with one
// WithParallelism override must not serve a query with another (or none).
func TestParallelismPlanCacheIsolation(t *testing.T) {
	db := retailerDB(t, 3)
	for i := 0; i < 2; i++ { // repeat so the second round hits the cache
		for _, p := range []int{1, 2, 4} {
			res, err := db.Query(append(retailerJoin[:3:3], WithParallelism(p))...)
			if err != nil {
				t.Fatal(err)
			}
			if res.Empty() {
				t.Fatal("unexpected empty result")
			}
		}
	}
	stats := db.CacheStats()
	if stats.Entries < 3 {
		t.Fatalf("expected >= 3 distinct cached plans (one per parallelism), have %d", stats.Entries)
	}
}

// TestConcurrentExecWhileSetParallelismFlips is the concurrency regression
// test: many goroutines run Exec and ExecAgg on one DB while another
// goroutine keeps changing the database-wide parallelism. Under -race this
// proves the setting is safely published; the results must be stable
// regardless of which parallelism each execution observed.
func TestConcurrentExecWhileSetParallelismFlips(t *testing.T) {
	db := retailerDB(t, 4)
	stmt, err := db.Prepare(retailerJoin...)
	if err != nil {
		t.Fatal(err)
	}
	aggStmt, err := db.Prepare(append(retailerJoin[:3:3],
		GroupBy("Stock.location"), Agg(Count, ""), Agg(Sum, "Orders.oid"))...)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	refAgg, err := aggStmt.ExecAgg()
	if err != nil {
		t.Fatal(err)
	}
	refRows := refAgg.Rows(0)

	const goroutines = 8
	const iters = 6
	stop := make(chan struct{})
	var flip sync.WaitGroup
	flip.Add(1)
	go func() {
		defer flip.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			db.SetParallelism(1 + i%5)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, goroutines*iters*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := stmt.Exec()
				if err != nil {
					errs <- err
					return
				}
				if res.Count() != ref.Count() || !res.Enc().Equal(ref.Enc()) {
					errs <- fmt.Errorf("goroutine %d iter %d: result drifted from reference", g, i)
					return
				}
				agg, err := aggStmt.ExecAgg()
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(agg.Rows(0), refRows) {
					errs <- fmt.Errorf("goroutine %d iter %d: aggregate drifted from reference", g, i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	flip.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
