package fdb

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestWriteSetSemantics: duplicate inserts and absent deletes are no-ops;
// the version bumps once per effective commit.
func TestWriteSetSemantics(t *testing.T) {
	db := New()
	db.MustCreate("R", "a", "b")
	v0 := db.Version()
	db.MustInsert("R", 1, 10)
	db.MustInsert("R", 1, 10) // duplicate: still one tuple
	r, _ := db.Relation("R")
	if len(r.Tuples) != 1 {
		t.Fatalf("duplicate insert duplicated: %d tuples", len(r.Tuples))
	}
	if err := db.Delete("R", 9, 9); err != nil { // absent: no-op
		t.Fatal(err)
	}
	if err := db.Delete("R", 1, 10); err != nil {
		t.Fatal(err)
	}
	r, _ = db.Relation("R")
	if len(r.Tuples) != 0 {
		t.Fatalf("delete missed: %d tuples", len(r.Tuples))
	}
	if db.Version() <= v0 {
		t.Fatalf("version did not advance: %d <= %d", db.Version(), v0)
	}
	// Arity and unknown-relation errors.
	if err := db.Insert("R", 1); err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("arity: err = %v", err)
	}
	if err := db.Insert("Ghost", 1, 2); err == nil {
		t.Fatal("insert into unknown relation accepted")
	}
	if err := db.Delete("Ghost", 1, 2); err == nil {
		t.Fatal("delete from unknown relation accepted")
	}
}

// TestUpsertKeyPrefix: upsert removes every live tuple agreeing on the key
// prefix, then inserts; upserting an unchanged tuple keeps it.
func TestUpsertKeyPrefix(t *testing.T) {
	db := New()
	db.MustCreate("KV", "k", "v")
	db.MustInsert("KV", 1, 10)
	db.MustInsert("KV", 1, 11) // sets are fine: two tuples share the key
	db.MustInsert("KV", 2, 20)
	if err := db.Upsert("KV", 1, 1, 99); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(From("KV"))
	if err != nil {
		t.Fatal(err)
	}
	got := res.Rows(0)
	want := [][]string{{"1", "99"}, {"2", "20"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after upsert: %v, want %v", got, want)
	}
	// Upserting the exact live tuple keeps it (dels apply before adds).
	if err := db.Upsert("KV", 1, 2, 20); err != nil {
		t.Fatal(err)
	}
	res, _ = db.Query(From("KV"))
	if !reflect.DeepEqual(res.Rows(0), want) {
		t.Fatalf("idempotent upsert changed data: %v", res.Rows(0))
	}
	if err := db.Upsert("KV", 0, 1, 1); err == nil {
		t.Fatal("zero key columns accepted")
	}
	if err := db.Upsert("KV", 3, 1, 1); err == nil {
		t.Fatal("key wider than schema accepted")
	}
}

// TestSnapshotIsolation: a snapshot pinned before a write keeps returning
// the pinned rows bit-for-bit, across writes AND compaction, while live
// queries see every commit; Close makes further reads fail loudly.
func TestSnapshotIsolation(t *testing.T) {
	db := New()
	db.MustCreate("R", "a", "b")
	for i := 0; i < 40; i++ {
		db.MustInsert("R", i, i%5)
	}
	q := []Clause{From("R"), Cmp("R.b", EQ, 3)}
	snap := db.Snapshot()
	pinnedStmt, err := snap.Prepare(q...)
	if err != nil {
		t.Fatal(err)
	}
	res0, err := snap.Query(q...)
	if err != nil {
		t.Fatal(err)
	}
	want := res0.Rows(0)
	if db.OpenSnapshots() != 1 {
		t.Fatalf("OpenSnapshots = %d", db.OpenSnapshots())
	}
	// Mutate heavily, then compact the delta chain away.
	for i := 40; i < 200; i++ {
		db.MustInsert("R", i, i%5)
	}
	for i := 0; i < 20; i++ {
		if err := db.Delete("R", i, i%5); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact("R"); err != nil {
		t.Fatal(err)
	}
	for _, rerun := range []*Result{
		mustQuery(t, func() (*Result, error) { return snap.Query(q...) }),
		mustQuery(t, func() (*Result, error) { return pinnedStmt.Exec() }),
	} {
		if got := rerun.Rows(0); !reflect.DeepEqual(got, want) {
			t.Fatalf("snapshot drifted:\n got %v\nwant %v", got, want)
		}
	}
	// The live view moved on.
	live, err := db.Query(q...)
	if err != nil {
		t.Fatal(err)
	}
	if int(live.Count()) == len(want) {
		t.Fatal("live query still serving the snapshot view")
	}
	snap.Close()
	snap.Close() // idempotent
	if db.OpenSnapshots() != 0 {
		t.Fatalf("OpenSnapshots after close = %d", db.OpenSnapshots())
	}
	if _, err := snap.Query(q...); err == nil {
		t.Fatal("query on closed snapshot succeeded")
	}
	if _, err := pinnedStmt.Exec(); err == nil || !strings.Contains(err.Error(), "snapshot closed") {
		t.Fatalf("pinned stmt after close: err = %v", err)
	}
}

func mustQuery(t *testing.T, f func() (*Result, error)) *Result {
	t.Helper()
	res, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestResultSurvivesCompaction: a Result (and its decoded Rep) built from a
// version that is later compacted away keeps iterating the old rows — the
// version chain pins tuple storage and the result owns its representation.
func TestResultSurvivesCompaction(t *testing.T) {
	db := New()
	db.MustCreate("R", "a", "b")
	db.MustCreate("S", "b", "c")
	for i := 0; i < 60; i++ {
		db.MustInsert("R", i, i%6)
		db.MustInsert("S", i%6, i)
	}
	res, err := db.Query(From("R", "S"), Eq("R.b", "S.b"))
	if err != nil {
		t.Fatal(err)
	}
	it := res.Iter() // live iterator across the compaction
	var first []string
	want := res.Count()
	// Overwrite everything and compact while the iterator is live.
	for i := 0; i < 60; i++ {
		if err := db.Delete("R", i, i%6); err != nil {
			t.Fatal(err)
		}
	}
	db.MustInsert("R", 999, 0)
	if err := db.Compact("R"); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact("S"); err != nil {
		t.Fatal(err)
	}
	n := int64(0)
	for {
		tp, ok := it.Next()
		if !ok {
			break
		}
		if first == nil {
			first = []string{fmt.Sprint(tp)}
		}
		n++
	}
	if n != want {
		t.Fatalf("iterator lost rows under compaction: %d != %d", n, want)
	}
	if res.Rep() == nil || res.Count() != want {
		t.Fatal("decoded rep unavailable after compaction")
	}
}

// TestStmtRefreshAfterCompaction: a prepared statement whose held version
// predates a compaction re-snapshots instead of merging, and serves data
// identical to a fresh plan.
func TestStmtRefreshAfterCompaction(t *testing.T) {
	db := New()
	db.MustCreate("R", "a", "b")
	db.MustCreate("S", "b", "c")
	for i := 0; i < 30; i++ {
		db.MustInsert("R", i, i%4)
		db.MustInsert("S", i%4, i)
	}
	stmt, err := db.Prepare(From("R", "S"), Eq("R.b", "S.b"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := stmt.Exec(); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 90; i++ {
		db.MustInsert("R", i, i%4)
	}
	if err := db.Compact("R"); err != nil {
		t.Fatal(err)
	}
	got, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := db.Query(From("R", "S"), Eq("R.b", "S.b"))
	if err != nil {
		t.Fatal(err)
	}
	if got.Count() != fresh.Count() {
		t.Fatalf("post-compaction refresh diverged: %d != %d", got.Count(), fresh.Count())
	}
}

// TestStmtIncrementalRefreshParity: interleaved inserts, deletes and
// upserts keep a long-lived prepared statement in lockstep with freshly
// compiled queries — the incremental merge path never drifts.
func TestStmtIncrementalRefreshParity(t *testing.T) {
	db := New()
	db.MustCreate("R", "a", "b")
	db.MustCreate("S", "b", "c")
	for i := 0; i < 50; i++ {
		db.MustInsert("R", i, i%7)
		db.MustInsert("S", i%7, i%11)
	}
	stmt, err := db.Prepare(From("R", "S"), Eq("R.b", "S.b"), Cmp("S.c", LT, 9))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 25; step++ {
		switch step % 4 {
		case 0:
			db.MustInsert("R", 100+step, step%7)
		case 1:
			if err := db.Delete("R", step, step%7); err != nil {
				t.Fatal(err)
			}
		case 2:
			if err := db.Upsert("S", 1, step%7, step%13); err != nil {
				t.Fatal(err)
			}
		case 3:
			db.MustInsert("S", step%7, (step*3)%11)
		}
		got, err := stmt.Exec()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		fresh, err := db.Prepare(From("R", "S"), Eq("R.b", "S.b"), Cmp("S.c", LT, 9))
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		want, err := fresh.Exec()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if got.Count() != want.Count() {
			t.Fatalf("step %d: refreshed stmt diverged: %d != %d", step, got.Count(), want.Count())
		}
		if !reflect.DeepEqual(got.Rows(0), want.Rows(0)) {
			t.Fatalf("step %d: refreshed rows diverged", step)
		}
	}
}

// TestCacheHitRateReadMostly: under a read-mostly mixed workload the plan
// cache keeps serving (writes never evict), with a hit rate above 90%.
func TestCacheHitRateReadMostly(t *testing.T) {
	db := New()
	db.MustCreate("R", "a", "b")
	db.MustCreate("S", "b", "c")
	for i := 0; i < 100; i++ {
		db.MustInsert("R", i, i%9)
		db.MustInsert("S", i%9, i)
	}
	queries := [][]Clause{
		{From("R", "S"), Eq("R.b", "S.b")},
		{From("R"), Cmp("R.b", EQ, 3)},
		{From("S"), Cmp("S.c", LT, 50)},
	}
	for i := 0; i < 200; i++ {
		q := queries[i%len(queries)]
		res, err := db.Query(q...)
		if err != nil {
			t.Fatal(err)
		}
		res.Count()
		if i%10 == 9 { // ~10% writes
			db.MustInsert("R", 1000+i, i%9)
		}
	}
	s := db.CacheStats()
	total := s.Hits + s.Misses
	if rate := float64(s.Hits) / float64(total); rate <= 0.9 {
		t.Fatalf("hit rate %.2f <= 0.90 under read-mostly workload: %+v", rate, s)
	}
}

// TestConcurrentWritersReadersSnapshots: hammer the database from writer,
// reader and snapshot goroutines simultaneously (run under -race).
func TestConcurrentWritersReadersSnapshots(t *testing.T) {
	db := New()
	db.MustCreate("R", "a", "b")
	for i := 0; i < 50; i++ {
		db.MustInsert("R", i, i%5)
	}
	stmt, err := db.Prepare(From("R"), Cmp("R.b", EQ, 2))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	wg.Add(1)
	go func() { // writer: inserts, deletes, upserts, compactions
		defer wg.Done()
		for i := 0; i < 120; i++ {
			switch i % 5 {
			case 0, 1, 2:
				if err := db.Insert("R", 100+i, i%5); err != nil {
					errs <- err
					return
				}
			case 3:
				if err := db.Delete("R", 100+i-3, (i-3)%5); err != nil {
					errs <- err
					return
				}
			case 4:
				if err := db.Compact("R"); err != nil {
					errs <- err
					return
				}
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() { // readers: prepared statement re-exec
			defer wg.Done()
			for i := 0; i < 60; i++ {
				res, err := stmt.Exec()
				if err != nil {
					errs <- err
					return
				}
				res.Count()
			}
		}()
	}
	wg.Add(1)
	go func() { // snapshot reader: pin, query twice, verify stability, close
		defer wg.Done()
		for i := 0; i < 25; i++ {
			snap := db.Snapshot()
			a, err := snap.Query(From("R"))
			if err != nil {
				errs <- err
				snap.Close()
				return
			}
			b, err := snap.Query(From("R"))
			if err != nil {
				errs <- err
				snap.Close()
				return
			}
			if a.Count() != b.Count() {
				errs <- fmt.Errorf("snapshot unstable: %d != %d", a.Count(), b.Count())
				snap.Close()
				return
			}
			snap.Close()
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if db.OpenSnapshots() != 0 {
		t.Fatalf("leaked snapshots: %d", db.OpenSnapshots())
	}
}

// TestBatchWrites: batch variants commit atomically under one version bump.
func TestBatchWrites(t *testing.T) {
	db := New()
	db.MustCreate("R", "a", "b")
	v0 := db.Version()
	rows := make([][]interface{}, 50)
	for i := range rows {
		rows[i] = []interface{}{i, i % 3}
	}
	if err := db.InsertBatch("R", rows); err != nil {
		t.Fatal(err)
	}
	if db.Version() != v0+1 {
		t.Fatalf("batch insert bumped version %d times", db.Version()-v0)
	}
	r, _ := db.Relation("R")
	if len(r.Tuples) != 50 {
		t.Fatalf("batch insert stored %d tuples", len(r.Tuples))
	}
	if err := db.DeleteBatch("R", rows[:20]); err != nil {
		t.Fatal(err)
	}
	r, _ = db.Relation("R")
	if len(r.Tuples) != 30 {
		t.Fatalf("batch delete left %d tuples", len(r.Tuples))
	}
	if err := db.UpsertBatch("R", 1, [][]interface{}{{20, 99}, {21, 99}}); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(From("R"), Cmp("R.b", EQ, 99))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 2 {
		t.Fatalf("batch upsert: %d rows with b=99", res.Count())
	}
}
