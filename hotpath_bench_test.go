package fdb_test

// Tracked hot paths for the CI benchmark-regression gate (see
// cmd/benchcmp and .github/workflows/ci.yml): build, exec and aggregate.
// BenchmarkCalibrate pins a fixed CPU-bound workload whose time depends
// only on the machine; benchcmp divides every tracked result by it, so the
// committed BENCH_baseline.json stays portable across hardware.

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	fdb "repro"
	"repro/internal/bench"
	"repro/internal/fbuild"
	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/relation"
)

var benchSink int64

// BenchmarkCalibrate is the normalisation yardstick: a fixed integer loop,
// no allocation, no data dependence. It is excluded from regression
// tracking itself.
func BenchmarkCalibrate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s int64
		for j := int64(0); j < 30_000_000; j++ {
			s += j*j ^ (j >> 3)
		}
		benchSink = s
	}
}

func retailerAggSetup(b *testing.B) (*frep.Enc, []relation.Attribute, []frep.AggSpec) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	q := bench.RetailerQuery(rng, 2)
	groupBy := []relation.Attribute{"s_location"}
	fr, err := bench.BuildRep(q, groupBy)
	if err != nil {
		b.Fatal(err)
	}
	specs := []frep.AggSpec{
		{Fn: frep.AggCount},
		{Fn: frep.AggSum, Attr: "o_oid"},
		{Fn: frep.AggCountDistinct, Attr: "o_item"},
	}
	return fr, groupBy, specs
}

// BenchmarkBuildRetailer tracks the factorisation build: f-tree search,
// group lift and arena-backed columnar construction on the retailer
// workload.
func BenchmarkBuildRetailer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	q := bench.RetailerQuery(rng, 2)
	groupBy := []relation.Attribute{"s_location"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := bench.BuildRep(q, groupBy)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = int64(fr.NodeCount())
	}
}

// BenchmarkExecPrepared tracks Stmt.Exec: per-execution parameter binding,
// filtering and build on pre-sorted snapshots.
func BenchmarkExecPrepared(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	db := fdb.New()
	db.MustCreate("Orders", "oid", "item")
	for i := 0; i < 1000; i++ {
		db.MustInsert("Orders", i, rng.Intn(50))
	}
	db.MustCreate("Stock", "location", "item")
	for i := 0; i < 400; i++ {
		db.MustInsert("Stock", rng.Intn(40), rng.Intn(50))
	}
	db.MustCreate("Disp", "dispatcher", "location")
	for i := 0; i < 200; i++ {
		db.MustInsert("Disp", i%120, rng.Intn(40))
	}
	// This benchmark regression-tracks the serial per-exec path against the
	// committed baseline; the morsel-parallel path (whose profile depends on
	// the runner's core count) is measured by BenchmarkBuildParallelRetailer
	// and BenchmarkAggregateParallelRetailer instead.
	db.SetParallelism(1)
	st, err := db.Prepare(
		fdb.From("Orders", "Stock", "Disp"),
		fdb.Eq("Orders.item", "Stock.item"),
		fdb.Eq("Stock.location", "Disp.location"),
		fdb.Cmp("Stock.location", fdb.LT, fdb.Param("n")))
	if err != nil {
		b.Fatal(err)
	}
	// Warm-up exec outside the timed loop: the first Exec pays one-off lazy
	// work (dictionary decode tables, snapshot touch-in), which used to make
	// the recorded ns/op bimodal across hosts. The baseline entry is
	// recorded against the warmed steady state.
	if _, err := st.Exec(fdb.Arg("n", 20)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := st.Exec(fdb.Arg("n", 20))
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res.Count()
	}
}

// prepareColdSetup builds the wide six-relation chain join the cold-compile
// benchmarks plan: wide enough that the exhaustive search's exponential
// blowup shows, small enough data that Prepare time is planning time.
func prepareColdSetup(b *testing.B, mode fdb.PlannerMode) (*fdb.DB, []fdb.Clause) {
	b.Helper()
	rng := rand.New(rand.NewSource(3))
	db := fdb.New()
	db.SetParallelism(1)
	var from []string
	for i := 1; i <= 6; i++ {
		name := fmt.Sprintf("R%d", i)
		db.MustCreate(name, "A", "B")
		for j := 0; j < 30; j++ {
			db.MustInsert(name, rng.Intn(10)+1, rng.Intn(10)+1)
		}
		from = append(from, name)
	}
	clauses := []fdb.Clause{fdb.From(from...)}
	for i := 1; i < 6; i++ {
		clauses = append(clauses, fdb.Eq(fmt.Sprintf("R%d.B", i), fmt.Sprintf("R%d.A", i+1)))
	}
	db.SetPlannerMode(mode)
	// Warm-up compile outside the timed loop: Prepare always re-plans (only
	// PrepareCached consults the plan cache), so the planner search still
	// runs cold every iteration — but the first Prepare also pays one-off
	// data-dependent work (snapshot sorting) that would otherwise make
	// allocs/op depend on -benchtime.
	if _, err := db.Prepare(clauses...); err != nil {
		b.Fatal(err)
	}
	return db, clauses
}

// BenchmarkPrepareColdGreedy tracks cold statement compilation through the
// greedy statistics-free planning tier — the ad-hoc query hot path, gated
// against the committed baseline like exec.
func BenchmarkPrepareColdGreedy(b *testing.B) {
	db, clauses := prepareColdSetup(b, fdb.PlannerGreedy)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := db.Prepare(clauses...)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = int64(st.Cost())
	}
}

// BenchmarkPrepareColdExhaustive is the same compilation through the
// exhaustive branch-and-bound search — recorded for the comparison, not
// baseline-gated (its profile is the search's, not a serving hot path).
func BenchmarkPrepareColdExhaustive(b *testing.B) {
	db, clauses := prepareColdSetup(b, fdb.PlannerExhaustive)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := db.Prepare(clauses...)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = int64(st.Cost())
	}
}

// BenchmarkAggregateFactorised tracks the single-pass aggregation over the
// encoded factorised representation (the Experiment 6 fast path).
func BenchmarkAggregateFactorised(b *testing.B) {
	fr, groupBy, specs := retailerAggSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := fr.Aggregate(groupBy, specs)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = int64(len(rows))
	}
}

// BenchmarkAggregateEnumFold tracks the enumerate-then-fold baseline over
// the same representation, for the Experiment 6 comparison.
func BenchmarkAggregateEnumFold(b *testing.B) {
	fr, groupBy, specs := retailerAggSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := bench.FoldAggregate(fr, groupBy, specs)
		benchSink = int64(len(rows))
	}
}

// parallelBuildSetup prepares the retailer inputs the way Stmt.Exec sees
// them: lifted tree, relations pre-sorted in path order.
func parallelBuildSetup(b *testing.B) ([]*relation.Relation, *ftree.T) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	q := bench.RetailerQuery(rng, 2)
	fr, err := bench.BuildRep(q, []relation.Attribute{"s_location"})
	if err != nil {
		b.Fatal(err)
	}
	tr := fr.Tree
	if err := fbuild.SortFor(q.Relations, tr); err != nil {
		b.Fatal(err)
	}
	return q.Relations, tr
}

// BenchmarkBuildParallelRetailer tracks the morsel-parallel encoded build
// at GOMAXPROCS workers (Experiment 8); on a single-core runner it measures
// the partitioning + stitching overhead over BenchmarkBuildRetailer's
// serial path.
func BenchmarkBuildParallelRetailer(b *testing.B) {
	rels, tr := parallelBuildSetup(b)
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr, err := fbuild.BuildEncParallel(rels, tr.Clone(), workers)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = int64(fr.NodeCount())
	}
}

// BenchmarkAggregateParallelRetailer tracks the chunked parallel grouped
// aggregation at GOMAXPROCS workers (Experiment 8).
func BenchmarkAggregateParallelRetailer(b *testing.B) {
	fr, groupBy, specs := retailerAggSetup(b)
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := fr.AggregateParallel(groupBy, specs, workers)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = int64(len(rows))
	}
}
