package fdb

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/relation"
)

// Clause is one element of a query: relation list, equality, constant (or
// parameterised) selection, projection, grouping or aggregation. Clauses
// are built with From, Eq, Cmp, Project, GroupBy and Agg and compiled by
// Query, QueryAgg, Prepare and Result.Where.
type Clause interface{ apply(*spec) error }

// specMode says which clause kinds a compilation site accepts.
type specMode int

const (
	modeQuery specMode = iota // Query / Prepare: all clauses
	modeWhere                 // Result.Where / Result.Join: no From
)

// spec is the compiled clause list, before binding to a database.
type spec struct {
	mode     specMode
	from     []string
	eqs      []core.Equality
	sels     []selSpec
	project  []relation.Attribute
	groupBy  []relation.Attribute
	aggs     []frep.AggSpec
	orderBy  []frep.OrderKey
	limit    int // -1: no limit
	offset   int
	distinct bool
	par      int // per-query parallelism override; 0 = inherit from the DB
}

// selSpec is one selection attr θ value; val is a Go constant (int, int64,
// string, relation.Value) or a ParamValue placeholder bound at Exec time.
type selSpec struct {
	attr relation.Attribute
	op   fplan.Cmp
	val  interface{}
}

// compileSpec runs every clause through its apply method — the single,
// honest compilation path. Nil clauses are rejected rather than ignored.
func compileSpec(mode specMode, clauses []Clause) (*spec, error) {
	s := &spec{mode: mode, limit: -1}
	for _, c := range clauses {
		if c == nil {
			return nil, fmt.Errorf("fdb: nil clause")
		}
		if err := c.apply(s); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// params returns the distinct placeholder names in first-appearance order.
func (s *spec) params() []string {
	var names []string
	seen := map[string]bool{}
	for _, sel := range s.sels {
		if p, ok := sel.val.(ParamValue); ok && !seen[p.name] {
			seen[p.name] = true
			names = append(names, p.name)
		}
	}
	return names
}

type fromClause []string

func (f fromClause) apply(s *spec) error {
	if s.mode == modeWhere {
		return fmt.Errorf("fdb: From is not allowed in Where/Join (the input is the factorised result)")
	}
	s.from = append(s.from, f...)
	return nil
}

// From names the relations to join.
func From(names ...string) Clause { return fromClause(names) }

type eqClause [2]string

func (e eqClause) apply(s *spec) error {
	if e[0] == "" || e[1] == "" {
		return fmt.Errorf("fdb: Eq needs two attribute names")
	}
	s.eqs = append(s.eqs, core.Equality{A: relation.Attribute(e[0]), B: relation.Attribute(e[1])})
	return nil
}

// Eq adds the join/selection condition a = b over qualified attribute names
// ("Relation.attr").
func Eq(a, b string) Clause { return eqClause{a, b} }

// CmpOp re-exports the comparison operators for selections with constant.
type CmpOp = fplan.Cmp

// Comparison operators for Where-style constant selections.
const (
	EQ = fplan.Eq
	NE = fplan.Ne
	LT = fplan.Lt
	LE = fplan.Le
	GT = fplan.Gt
	GE = fplan.Ge
)

// ParamValue is a placeholder for a constant bound at Exec time; create it
// with Param and pass it as the value of Cmp.
type ParamValue struct{ name string }

// Param returns a named placeholder for use in Cmp:
//
//	stmt, _ := db.Prepare(..., fdb.Cmp("Orders.item", fdb.EQ, fdb.Param("item")))
//	res, _ := stmt.Exec(fdb.Arg("item", "Milk"))
//
// One compiled plan then serves every constant bound to the parameter.
func Param(name string) ParamValue { return ParamValue{name: name} }

type constClause struct {
	attr string
	op   fplan.Cmp
	val  interface{}
}

func (c constClause) apply(s *spec) error {
	if c.attr == "" {
		return fmt.Errorf("fdb: Cmp needs an attribute name")
	}
	if p, ok := c.val.(ParamValue); ok {
		if p.name == "" {
			return fmt.Errorf("fdb: Param needs a non-empty name")
		}
		if s.mode == modeWhere {
			return fmt.Errorf("fdb: parameter %q is not allowed in Where/Join; use Prepare/Exec", p.name)
		}
	}
	s.sels = append(s.sels, selSpec{attr: relation.Attribute(c.attr), op: c.op, val: c.val})
	return nil
}

// Cmp adds the selection attr θ value; value may be int, int64, string, or
// a Param placeholder bound at Exec time.
func Cmp(attr string, op CmpOp, value interface{}) Clause {
	return constClause{attr: attr, op: op, val: value}
}

type projClause []string

func (p projClause) apply(s *spec) error {
	for _, a := range p {
		if a == "" {
			return fmt.Errorf("fdb: Project needs non-empty attribute names")
		}
		s.project = append(s.project, relation.Attribute(a))
	}
	return nil
}

// Project keeps only the named attributes in the result.
func Project(attrs ...string) Clause { return projClause(attrs) }

// AggFn selects an aggregate function for Agg.
type AggFn = frep.AggFunc

// Aggregate functions for Agg clauses. Sum, Min and Max operate on the
// engine's int64 values; on dictionary-encoded string attributes Min and
// Max order by dictionary code, not lexicographically.
const (
	Count         = frep.AggCount
	Sum           = frep.AggSum
	Min           = frep.AggMin
	Max           = frep.AggMax
	CountDistinct = frep.AggCountDistinct
)

type groupByClause []string

func (g groupByClause) apply(s *spec) error {
	if s.mode == modeWhere {
		return fmt.Errorf("fdb: GroupBy is not allowed in Where/Join; use QueryAgg or Prepare+ExecAgg")
	}
	for _, a := range g {
		if a == "" {
			return fmt.Errorf("fdb: GroupBy needs non-empty attribute names")
		}
		s.groupBy = append(s.groupBy, relation.Attribute(a))
	}
	return nil
}

// GroupBy groups the aggregates of the query's Agg clauses by the named
// attributes. It requires at least one Agg clause; the result rows carry
// one group key per attribute plus one value per aggregate.
func GroupBy(attrs ...string) Clause { return groupByClause(attrs) }

type aggClause struct {
	fn   AggFn
	attr string
}

func (a aggClause) apply(s *spec) error {
	if s.mode == modeWhere {
		return fmt.Errorf("fdb: Agg is not allowed in Where/Join; use QueryAgg or Prepare+ExecAgg")
	}
	if a.fn != Count && a.attr == "" {
		return fmt.Errorf("fdb: Agg(%s) needs an attribute", a.fn)
	}
	if a.fn == Count && a.attr != "" {
		return fmt.Errorf("fdb: Agg(Count) takes no attribute (it counts result tuples); got %q", a.attr)
	}
	s.aggs = append(s.aggs, frep.AggSpec{Fn: a.fn, Attr: relation.Attribute(a.attr)})
	return nil
}

// Agg adds an aggregate to compute over the query result (or over each
// group, with GroupBy): Count, Sum, Min, Max or CountDistinct. Count takes
// attr == ""; every other function folds over the named attribute. The
// aggregates are evaluated in one pass over the factorised representation,
// never over the flat result.
func Agg(fn AggFn, attr string) Clause { return aggClause{fn: fn, attr: attr} }

// Key is one ORDER BY sort key: an attribute with a direction. Build keys
// with Asc and Desc, or pass plain attribute strings to OrderBy for the
// ascending default.
type Key struct {
	Attr string
	Desc bool
}

// Asc returns an ascending sort key for OrderBy.
func Asc(attr string) Key { return Key{Attr: attr} }

// Desc returns a descending sort key for OrderBy.
func Desc(attr string) Key { return Key{Attr: attr, Desc: true} }

type orderByClause []interface{}

func (o orderByClause) apply(s *spec) error {
	if s.mode == modeWhere {
		return fmt.Errorf("fdb: OrderBy is not allowed in Where/Join; order the query that produces the final result")
	}
	if len(o) == 0 {
		return fmt.Errorf("fdb: OrderBy needs at least one key")
	}
	if len(s.orderBy) > 0 {
		return fmt.Errorf("fdb: OrderBy given twice")
	}
	for _, k := range o {
		switch x := k.(type) {
		case string:
			if x == "" {
				return fmt.Errorf("fdb: OrderBy needs non-empty attribute names")
			}
			s.orderBy = append(s.orderBy, frep.OrderKey{Attr: relation.Attribute(x)})
		case Key:
			if x.Attr == "" {
				return fmt.Errorf("fdb: OrderBy needs non-empty attribute names")
			}
			s.orderBy = append(s.orderBy, frep.OrderKey{Attr: relation.Attribute(x.Attr), Desc: x.Desc})
		default:
			return fmt.Errorf("fdb: OrderBy key must be a string or fdb.Key (Asc/Desc), got %T", k)
		}
	}
	return nil
}

// OrderBy sorts the result by the given keys: attribute strings (ascending)
// or Asc/Desc keys, most significant first. When the key prefix matches a
// root-to-node path of the compiled f-tree (the engine reorders and, within
// equal cost, restructures the tree to make it so), the result streams in
// order straight from the factorised representation — no sort — and Limit
// short-circuits after n tuples; otherwise retrieval falls back to a bounded
// heap (with Limit) or a full sort of the enumeration. Key values compare in
// dictionary-decoded order when the database dictionary is in use,
// numerically otherwise. Ties beyond the keys break by the remaining result
// columns ascending in stored (engine value) order — deterministic for a
// given database, though for dictionary-encoded columns that is insertion
// order, not alphabetical; name a column as a key to sort it decoded.
func OrderBy(keys ...interface{}) Clause { return orderByClause(keys) }

type limitClause int

func (l limitClause) apply(s *spec) error {
	if s.mode == modeWhere {
		return fmt.Errorf("fdb: Limit is not allowed in Where/Join; limit the query that produces the final result")
	}
	if l < 0 {
		return fmt.Errorf("fdb: Limit needs n >= 0, got %d", int(l))
	}
	if s.limit >= 0 {
		return fmt.Errorf("fdb: Limit given twice")
	}
	s.limit = int(l)
	return nil
}

// Limit caps the result at n tuples (applied after Offset). With an
// order-compatible OrderBy this is true top-k over the compressed
// representation: enumeration visits O(n) entries and stops.
func Limit(n int) Clause { return limitClause(n) }

type offsetClause int

func (o offsetClause) apply(s *spec) error {
	if s.mode == modeWhere {
		return fmt.Errorf("fdb: Offset is not allowed in Where/Join; offset the query that produces the final result")
	}
	if o < 0 {
		return fmt.Errorf("fdb: Offset needs n >= 0, got %d", int(o))
	}
	if s.offset > 0 {
		return fmt.Errorf("fdb: Offset given twice")
	}
	s.offset = int(o)
	return nil
}

// Offset skips the first n tuples of the (ordered) result.
func Offset(n int) Clause { return offsetClause(n) }

type distinctClause struct{}

func (distinctClause) apply(s *spec) error {
	if s.mode == modeWhere {
		return fmt.Errorf("fdb: Distinct is not allowed in Where/Join")
	}
	if s.distinct {
		return fmt.Errorf("fdb: Distinct given twice")
	}
	s.distinct = true
	return nil
}

// Distinct makes the set semantics of the result explicit: after projection,
// duplicate-representing unions are deduplicated in place on the factorised
// form, never by hashing flat tuples. The engine's projection already
// produces set results, so Distinct is a (verified) no-op on every query —
// it exists so queries can state the requirement and so externally-built
// representations normalise.
func Distinct() Clause { return distinctClause{} }

type parClause int

func (p parClause) apply(s *spec) error {
	if s.mode == modeWhere {
		return fmt.Errorf("fdb: WithParallelism is not allowed in Where/Join")
	}
	if p < 1 {
		return fmt.Errorf("fdb: WithParallelism needs n >= 1, got %d", int(p))
	}
	if s.par != 0 {
		return fmt.Errorf("fdb: WithParallelism given twice")
	}
	s.par = int(p)
	return nil
}

// WithParallelism fixes the number of workers this query's execution
// (factorisation build and aggregation) may use, overriding the database
// default (SetParallelism, itself defaulting to runtime.GOMAXPROCS). n == 1
// forces the serial code path; results are identical for every n.
func WithParallelism(n int) Clause { return parClause(n) }
