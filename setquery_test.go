package fdb

import (
	"fmt"
	"strings"
	"testing"
)

// setAlgebraDB: one relation of oid/item pairs so legs can overlap on a
// range selection.
func setAlgebraDB(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustCreate("R", "oid", "grp")
	for i := 1; i <= 10; i++ {
		db.MustInsert("R", i, i%3)
	}
	return db
}

func TestResultSetOps(t *testing.T) {
	db := setAlgebraDB(t)
	legA, err := db.Query(From("R"), Cmp("R.oid", LE, 7)) // oid 1..7
	if err != nil {
		t.Fatal(err)
	}
	legB, err := db.Query(From("R"), Cmp("R.oid", GE, 5)) // oid 5..10
	if err != nil {
		t.Fatal(err)
	}

	union, err := legA.Union(legB)
	if err != nil {
		t.Fatal(err)
	}
	if union.Count() != 10 {
		t.Errorf("union count = %d, want 10", union.Count())
	}
	inter, err := legA.Intersect(legB)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Count() != 3 { // oid 5,6,7
		t.Errorf("intersect count = %d, want 3", inter.Count())
	}
	except, err := legA.Except(legB)
	if err != nil {
		t.Fatal(err)
	}
	if except.Count() != 4 { // oid 1..4
		t.Errorf("except count = %d, want 4", except.Count())
	}
	all, err := legA.UnionAll(legB)
	if err != nil {
		t.Fatal(err)
	}
	if all.Count() != 13 { // 7 + 6, overlap duplicated
		t.Errorf("union all count = %d, want 13", all.Count())
	}
	// Set operations compose: (A ⊎ B) − (A ∩ B) as sets = A ∪ B.
	dedup, err := all.Union(inter)
	if err != nil {
		t.Fatal(err)
	}
	if dedup.Count() != 10 {
		t.Errorf("(A ⊎ B) ∪ (A ∩ B) count = %d, want 10", dedup.Count())
	}
}

func TestResultSetOpGuards(t *testing.T) {
	db := setAlgebraDB(t)
	plain, err := db.Query(From("R"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Union(nil); err == nil || !strings.Contains(err.Error(), "nil result") {
		t.Errorf("Union(nil) error = %v", err)
	}
	other := setAlgebraDB(t)
	ores, err := other.Query(From("R"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Except(ores); err == nil || !strings.Contains(err.Error(), "different DB") {
		t.Errorf("cross-DB Except error = %v", err)
	}
	ordered, err := db.Query(From("R"), OrderBy("R.oid"), Limit(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.Intersect(ordered); err == nil || !strings.Contains(err.Error(), "ordered") {
		t.Errorf("ordered-operand Intersect error = %v", err)
	}
}

func TestQuerySet(t *testing.T) {
	db := setAlgebraDB(t)
	a := Sub(From("R"), Cmp("R.oid", LE, 7))
	b := Sub(From("R"), Cmp("R.oid", GE, 5))

	res, err := db.QuerySet(Union(a, b), OrderBy(Desc("R.oid")), Limit(3))
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(0)
	if len(rows) != 3 || rows[0][0] != "10" || rows[1][0] != "9" || rows[2][0] != "8" {
		t.Errorf("union top-3 by oid desc = %v", rows)
	}

	// Nested expression: (A − B) ∪ (A ∩ B) = A.
	res, err = db.QuerySet(Union(Except(a, b), Intersect(a, b)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 7 {
		t.Errorf("(A − B) ∪ (A ∩ B) count = %d, want 7", res.Count())
	}

	// UNION ALL + Distinct restores set semantics.
	res, err = db.QuerySet(UnionAll(a, b), Distinct())
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 10 {
		t.Errorf("union all + distinct count = %d, want 10", res.Count())
	}
}

func TestQuerySetErrors(t *testing.T) {
	db := setAlgebraDB(t)
	a := Sub(From("R"), Cmp("R.oid", LE, 7))
	b := Sub(From("R"), Cmp("R.oid", GE, 5))

	if _, err := db.QuerySet(nil); err == nil {
		t.Error("QuerySet(nil) succeeded")
	}
	if _, err := db.QuerySet(Union(a, nil)); err == nil || !strings.Contains(err.Error(), "two sub-expressions") {
		t.Errorf("Union(a, nil) error = %v", err)
	}
	// Query clauses in the trailing position belong in the legs.
	if _, err := db.QuerySet(Union(a, b), From("R")); err == nil || !strings.Contains(err.Error(), "Sub legs") {
		t.Errorf("trailing From error = %v", err)
	}
	// Retrieval clauses inside a leg belong on the combined result.
	bad := Sub(From("R"), Limit(2))
	if _, err := db.QuerySet(Union(bad, b)); err == nil || !strings.Contains(err.Error(), "not a Sub leg") {
		t.Errorf("leg Limit error = %v", err)
	}
	if _, err := db.QuerySet(Sub(From("R"), Agg(Sum, "R.oid"))); err == nil || !strings.Contains(err.Error(), "aggregates") {
		t.Errorf("leg aggregate error = %v", err)
	}
	// Schema mismatch between the legs surfaces from the native merge.
	db.MustCreate("S", "x")
	db.MustInsert("S", 1)
	if _, err := db.QuerySet(Union(a, Sub(From("S")))); err == nil {
		t.Error("schema-mismatched union succeeded")
	}
	// Order-by attribute must exist in the combined result.
	if _, err := db.QuerySet(Union(a, b), OrderBy("R.nope")); err == nil {
		t.Error("order by unknown attribute succeeded")
	}
}

// TestClippingEdges pins the Offset/Limit edge cases on ordered, unordered
// and set-operation results: Limit(0), Offset past the end, iterator Reset
// replay, and the Count/Empty/FlatSize accessors agreeing with what Iter
// actually yields.
func TestClippingEdges(t *testing.T) {
	db := setAlgebraDB(t)

	results := map[string]*Result{}
	var err error
	if results["ordered limit0"], err = db.Query(From("R"), OrderBy("R.oid"), Limit(0)); err != nil {
		t.Fatal(err)
	}
	if results["offset past end"], err = db.Query(From("R"), Offset(99)); err != nil {
		t.Fatal(err)
	}
	if results["ordered clip"], err = db.Query(From("R"), OrderBy(Desc("R.grp"), Asc("R.oid")), Offset(2), Limit(4)); err != nil {
		t.Fatal(err)
	}
	if results["setop clip"], err = db.QuerySet(
		UnionAll(Sub(From("R"), Cmp("R.oid", LE, 7)), Sub(From("R"), Cmp("R.oid", GE, 5))),
		OrderBy("R.oid"), Offset(3), Limit(6)); err != nil {
		t.Fatal(err)
	}
	if results["setop offset past end"], err = db.QuerySet(
		Intersect(Sub(From("R"), Cmp("R.oid", LE, 7)), Sub(From("R"), Cmp("R.oid", GE, 5))),
		Offset(50)); err != nil {
		t.Fatal(err)
	}

	wantCount := map[string]int64{
		"ordered limit0":        0,
		"offset past end":       0,
		"ordered clip":          4,
		"setop clip":            6,
		"setop offset past end": 0,
	}
	for name, res := range results {
		it := res.Iter()
		var first []string
		n := int64(0)
		for {
			tup, ok := it.Next()
			if !ok {
				break
			}
			if n == 0 {
				first = append(first, fmt.Sprint(tup))
			}
			n++
		}
		if n != wantCount[name] {
			t.Errorf("%s: iterated %d tuples, want %d", name, n, wantCount[name])
		}
		if res.Count() != n {
			t.Errorf("%s: Count() = %d, iterated %d", name, res.Count(), n)
		}
		if res.Empty() != (n == 0) {
			t.Errorf("%s: Empty() = %v with %d tuples", name, res.Empty(), n)
		}
		if want := n * int64(len(res.Schema())); res.FlatSize() != want {
			t.Errorf("%s: FlatSize() = %d, want %d", name, res.FlatSize(), want)
		}
		// Reset must replay the identical clipped sequence.
		it.Reset()
		m := int64(0)
		for {
			tup, ok := it.Next()
			if !ok {
				break
			}
			if m == 0 && len(first) > 0 && fmt.Sprint(tup) != first[0] {
				t.Errorf("%s: replay starts at %s, first pass started at %s", name, fmt.Sprint(tup), first[0])
			}
			m++
		}
		if m != n {
			t.Errorf("%s: replay yielded %d tuples, first pass %d", name, m, n)
		}
	}

	// The set-op clip window holds the right tuples: union-all of the two
	// legs sorted by oid is 1,2,3,4,5,5,6,6,7,7,8,9,10 — offset 3 limit 6
	// lands on 4,5,5,6,6,7.
	rows := results["setop clip"].Rows(0)
	var oids []string
	for _, r := range rows {
		oids = append(oids, r[0])
	}
	if got := strings.Join(oids, " "); got != "4 5 5 6 6 7" {
		t.Errorf("setop clip window = %q, want \"4 5 5 6 6 7\"", got)
	}
}
