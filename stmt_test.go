package fdb

import (
	"context"
	"strings"
	"sync"
	"testing"
)

func prepQ1Item(t *testing.T, db *DB) *Stmt {
	t.Helper()
	stmt, err := db.Prepare(
		From("Orders", "Store", "Disp"),
		Eq("Orders.item", "Store.item"),
		Eq("Store.location", "Disp.location"),
		Cmp("Orders.item", EQ, Param("item")))
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

func TestPrepareExecMatchesQuery(t *testing.T) {
	db := grocery(t)
	stmt := prepQ1Item(t, db)
	if got := stmt.Params(); len(got) != 1 || got[0] != "item" {
		t.Fatalf("Params() = %v", got)
	}
	for _, item := range []string{"Milk", "Cheese", "Melon", "Bread"} {
		res, err := stmt.Exec(Arg("item", item))
		if err != nil {
			t.Fatal(err)
		}
		want, err := db.Query(
			From("Orders", "Store", "Disp"),
			Eq("Orders.item", "Store.item"),
			Eq("Store.location", "Disp.location"),
			Cmp("Orders.item", EQ, item))
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != want.Count() {
			t.Fatalf("item %s: Exec count %d != Query count %d", item, res.Count(), want.Count())
		}
	}
}

func TestPreparedProjectionAndNoParams(t *testing.T) {
	db := grocery(t)
	stmt, err := db.Prepare(
		From("Orders", "Store", "Disp"),
		Eq("Orders.item", "Store.item"),
		Eq("Store.location", "Disp.location"),
		Project("Orders.oid", "Disp.dispatcher"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schema()) != 2 {
		t.Fatalf("projected schema = %v", res.Schema())
	}
	// Re-execution of the same statement yields an equal result.
	res2, err := stmt.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != res2.Count() || res.Size() != res2.Size() {
		t.Fatalf("re-exec diverged: (%d,%d) vs (%d,%d)", res.Count(), res.Size(), res2.Count(), res2.Size())
	}
}

func TestExecParamErrors(t *testing.T) {
	db := grocery(t)
	stmt := prepQ1Item(t, db)
	if _, err := stmt.Exec(); err == nil || !strings.Contains(err.Error(), "missing parameter") {
		t.Fatalf("missing param: err = %v", err)
	}
	if _, err := stmt.Exec(Arg("item", "Milk"), Arg("ghost", 1)); err == nil || !strings.Contains(err.Error(), "unknown parameter") {
		t.Fatalf("unknown param: err = %v", err)
	}
	if _, err := stmt.Exec(Arg("item", "Milk"), Arg("item", "Cheese")); err == nil || !strings.Contains(err.Error(), "bound twice") {
		t.Fatalf("duplicate param: err = %v", err)
	}
	if _, err := stmt.Exec(Arg("item", 1.5)); err == nil || !strings.Contains(err.Error(), "unsupported value type") {
		t.Fatalf("bad value type: err = %v", err)
	}
	// Unbound parameters are rejected by ad-hoc Query.
	if _, err := db.Query(From("Orders"), Cmp("Orders.item", EQ, Param("item"))); err == nil || !strings.Contains(err.Error(), "unbound parameter") {
		t.Fatalf("param in Query: err = %v", err)
	}
	// Param on an attribute of no input relation fails at Prepare.
	if _, err := db.Prepare(From("Orders"), Cmp("Ghost.attr", EQ, Param("x"))); err == nil {
		t.Fatal("param selection on unknown attribute accepted")
	}
	// Empty parameter name fails at compile time.
	if _, err := db.Prepare(From("Orders"), Cmp("Orders.item", EQ, Param(""))); err == nil {
		t.Fatal("empty parameter name accepted")
	}
}

func TestClauseErrors(t *testing.T) {
	db := grocery(t)
	if _, err := db.Query(nil); err == nil || !strings.Contains(err.Error(), "nil clause") {
		t.Fatalf("nil clause: err = %v", err)
	}
	if _, err := db.Prepare(From("Orders"), Eq("", "Orders.item")); err == nil {
		t.Fatal("empty Eq side accepted")
	}
	res, err := db.Query(From("Orders"))
	if err != nil {
		t.Fatal(err)
	}
	// From inside Where is rejected (one honest clause path, no silent no-ops).
	if _, err := res.Where(From("Store")); err == nil || !strings.Contains(err.Error(), "not allowed in Where") {
		t.Fatalf("From in Where: err = %v", err)
	}
	// Where on an attribute absent from the result errors.
	if _, err := res.Where(Eq("Orders.item", "Produce.item")); err == nil || !strings.Contains(err.Error(), "not in result") {
		t.Fatalf("Where on absent attribute: err = %v", err)
	}
	// Constant selection on an absent attribute errors too.
	if _, err := res.Where(Cmp("Ghost.attr", EQ, 1)); err == nil {
		t.Fatal("Cmp on absent attribute accepted in Where")
	}
	// Param placeholders make no sense in Where.
	if _, err := res.Where(Cmp("Orders.item", EQ, Param("x"))); err == nil {
		t.Fatal("Param accepted in Where")
	}
}

func TestJoinAcrossDatabasesRejected(t *testing.T) {
	db1 := grocery(t)
	db2 := grocery(t)
	r1, err := db1.Query(From("Orders"))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Query(From("Produce"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Join(r2); err == nil || !strings.Contains(err.Error(), "different DB") {
		t.Fatalf("cross-DB join: err = %v", err)
	}
	if _, err := r1.Join(nil); err == nil {
		t.Fatal("nil join accepted")
	}
	// Same-DB joins still work.
	r3, err := db1.Query(From("Produce"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r1.Join(r3); err != nil {
		t.Fatal(err)
	}
}

func TestStmtReadYourWrites(t *testing.T) {
	db := grocery(t)
	stmt := prepQ1Item(t, db)
	before, err := stmt.Exec(Arg("item", "Milk"))
	if err != nil {
		t.Fatal(err)
	}
	// A snapshot pinned before the write keeps the old view; the prepared
	// statement follows the database and sees the insert on its next Exec.
	snap := db.Snapshot()
	defer snap.Close()
	db.MustInsert("Orders", "09", "Milk")
	after, err := stmt.Exec(Arg("item", "Milk"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Count() <= before.Count() {
		t.Fatalf("statement missed the insert: %d <= %d", after.Count(), before.Count())
	}
	pinned, err := snap.Query(
		From("Orders", "Store", "Disp"),
		Eq("Orders.item", "Store.item"),
		Eq("Store.location", "Disp.location"),
		Cmp("Orders.item", EQ, "Milk"))
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Count() != before.Count() {
		t.Fatalf("snapshot leaked the insert: %d != %d", pinned.Count(), before.Count())
	}
	// A freshly prepared statement agrees with the refreshed one.
	fresh, err := prepQ1Item(t, db).Exec(Arg("item", "Milk"))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Count() != after.Count() {
		t.Fatalf("fresh and refreshed statements disagree: %d != %d", fresh.Count(), after.Count())
	}
}

func TestPlanCacheHitsAndInvalidation(t *testing.T) {
	db := grocery(t)
	q := []Clause{
		From("Orders", "Store", "Disp"),
		Eq("Orders.item", "Store.item"),
		Eq("Store.location", "Disp.location"),
	}
	if _, err := db.Query(q...); err != nil {
		t.Fatal(err)
	}
	s0 := db.CacheStats()
	if s0.Misses == 0 || s0.Entries == 0 {
		t.Fatalf("first query should miss and populate: %+v", s0)
	}
	if _, err := db.Query(q...); err != nil {
		t.Fatal(err)
	}
	s1 := db.CacheStats()
	if s1.Hits != s0.Hits+1 {
		t.Fatalf("identical query did not hit the cache: %+v -> %+v", s0, s1)
	}
	// Syntactic permutation shares the canonical fingerprint.
	if _, err := db.Query(
		From("Disp", "Orders", "Store"),
		Eq("Store.location", "Disp.location"),
		Eq("Store.item", "Orders.item")); err != nil {
		t.Fatal(err)
	}
	s2 := db.CacheStats()
	if s2.Hits != s1.Hits+1 {
		t.Fatalf("permuted query did not hit the cache: %+v -> %+v", s1, s2)
	}
	// Writes do not evict plans: the cached statement refreshes its inputs
	// from the delta chain, so the next lookup hits AND serves fresh data.
	db.MustInsert("Orders", "09", "Milk")
	if s := db.CacheStats(); s.Entries == 0 {
		t.Fatalf("insert blew away cached plans: %+v", s)
	}
	res, err := db.Query(q...)
	if err != nil {
		t.Fatal(err)
	}
	s3 := db.CacheStats()
	if s3.Hits != s2.Hits+1 {
		t.Fatalf("cached plan not served after insert: %+v -> %+v", s2, s3)
	}
	want, err := db.Prepare(q...)
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := want.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != wantRes.Count() {
		t.Fatalf("cached query served stale data after insert: %d != %d", res.Count(), wantRes.Count())
	}
	// Schema-level change: a new relation evicts plans that read its name
	// region — but plans over unrelated names survive. (Creating a relation
	// whose name a plan already reads is impossible — Create rejects
	// duplicates — so eviction-on-create is purely defensive; assert the
	// unrelated-name half.)
	entriesBefore := db.CacheStats().Entries
	db.MustCreate("Unrelated", "x")
	if s := db.CacheStats(); s.Entries != entriesBefore {
		t.Fatalf("creating an unrelated relation disturbed the cache: %+v", s)
	}
}

func TestPlanCacheDisabled(t *testing.T) {
	db := grocery(t)
	db.SetPlanCacheCapacity(0)
	for i := 0; i < 3; i++ {
		if _, err := db.Query(From("Orders")); err != nil {
			t.Fatal(err)
		}
	}
	s := db.CacheStats()
	if s.Hits != 0 || s.Entries != 0 {
		t.Fatalf("disabled cache still serving: %+v", s)
	}
}

func TestConcurrentExecAndQuery(t *testing.T) {
	db := grocery(t)
	stmt := prepQ1Item(t, db)
	items := []string{"Milk", "Cheese", "Melon"}
	want := map[string]int64{}
	for _, it := range items {
		res, err := stmt.Exec(Arg("item", it))
		if err != nil {
			t.Fatal(err)
		}
		want[it] = res.Count()
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				it := items[(g+i)%len(items)]
				res, err := stmt.Exec(Arg("item", it))
				if err != nil {
					errs <- err
					return
				}
				if res.Count() != want[it] {
					errs <- errCount{it, res.Count(), want[it]}
					return
				}
				// Mixed-in cached ad-hoc queries and enumeration.
				if g%2 == 0 {
					q, err := db.Query(From("Produce", "Serve"), Eq("Produce.supplier", "Serve.supplier"))
					if err != nil {
						errs <- err
						return
					}
					q.Rows(3)
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

type errCount struct {
	item      string
	got, want int64
}

func (e errCount) Error() string { return "count mismatch for " + e.item }

func TestConcurrentInsertsAndQueries(t *testing.T) {
	db := New()
	db.MustCreate("R", "a", "b")
	for i := 0; i < 50; i++ {
		db.MustInsert("R", i, i%7)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 50; i < 150; i++ {
			if err := db.Insert("R", i, i%7); err != nil {
				errs <- err
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			res, err := db.Query(From("R"), Cmp("R.b", EQ, 3))
			if err != nil {
				errs <- err
				return
			}
			res.Count()
		}
	}()
	// Snapshot readers and TSV export race against the inserter too.
	tsv := t.TempDir() + "/r.tsv"
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			r, ok := db.Relation("R")
			if !ok {
				errs <- errCount{"R", 0, 0}
				return
			}
			n := 0
			for range r.Tuples {
				n++
			}
			if err := db.SaveTSV(tsv, "R"); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestExecContextCancellation(t *testing.T) {
	db := New()
	db.MustCreate("A", "x", "p")
	db.MustCreate("B", "y", "q")
	for i := 0; i < 400; i++ {
		db.MustInsert("A", i%20, i)
		db.MustInsert("B", i%20, i)
	}
	stmt, err := db.Prepare(From("A", "B"), Eq("A.x", "B.y"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the build must abort, not complete
	if _, err := stmt.ExecContext(ctx); err == nil {
		t.Fatal("cancelled ExecContext succeeded")
	} else if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// A live context still completes.
	if _, err := stmt.ExecContext(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintStability(t *testing.T) {
	db := grocery(t)
	s1, v1, err := db.fingerprint(&spec{from: []string{"Orders", "Store"}})
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := db.fingerprint(&spec{from: []string{"Store", "Orders"}})
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("permuted From changed fingerprint:\n%s\n%s", s1, s2)
	}
	s3, _, err := db.fingerprint(&spec{from: []string{"Orders"}})
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s3 {
		t.Fatal("different queries share a fingerprint")
	}
	found := false
	for _, n := range v1 {
		if n == "Orders" {
			found = true
		}
	}
	if !found {
		t.Fatalf("referenced names not tracked: %v", v1)
	}
	if _, _, err := db.fingerprint(&spec{from: []string{"Ghost"}}); err == nil {
		t.Fatal("fingerprint accepted unknown relation")
	}
}

func TestNegativePlanCacheCapacity(t *testing.T) {
	db := grocery(t)
	db.SetPlanCacheCapacity(-1) // negative disables, like 0, without panicking
	if _, err := db.Query(From("Orders")); err != nil {
		t.Fatal(err)
	}
	if s := db.CacheStats(); s.Entries != 0 {
		t.Fatalf("negative capacity still caching: %+v", s)
	}
}
