// Package fdb is an in-memory query engine for factorised relational
// databases — a faithful reimplementation of
//
//	Bakibayev, Olteanu, Závodný:
//	"FDB: A Query Engine for Factorised Relational Databases", VLDB 2012.
//
// Relations are presented at the logical layer, but results (and, when
// desired, inputs of follow-up queries) are stored as factorised
// representations: algebraic expressions over singletons, union and product
// whose nesting structure is an f-tree. On data with many-to-many
// relationships, factorised results can be orders of magnitude smaller than
// flat ones, and select-project-join queries are evaluated directly on the
// factorised form by f-plans of restructuring and selection operators.
//
// Basic use:
//
//	db := fdb.New()
//	db.MustCreate("Orders", "oid", "item")
//	db.MustInsert("Orders", "01", "Milk")
//	...
//	res, err := db.Query(
//		fdb.From("Orders", "Store", "Disp"),
//		fdb.Eq("Orders.item", "Store.item"),
//		fdb.Eq("Store.location", "Disp.location"))
//	fmt.Println(res.Size(), res.Count()) // singletons vs tuples
//	res2, err := res.Where(fdb.Eq("Orders.item", "Produce.item")) // on factorised data
//
// Attribute names are written "Relation.attr" and kept globally unique
// internally.
package fdb

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/fbuild"
	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/opt"
	"repro/internal/relation"
)

// DB is an in-memory factorised database: named relations plus a shared
// string dictionary.
type DB struct {
	dict *relation.Dict
	rels map[string]*relation.Relation
	ord  []string
}

// New returns an empty database.
func New() *DB {
	return &DB{dict: relation.NewDict(), rels: map[string]*relation.Relation{}}
}

// Create adds a relation with the given attribute names (unqualified; they
// are stored as "name.attr").
func (db *DB) Create(name string, attrs ...string) error {
	if _, ok := db.rels[name]; ok {
		return fmt.Errorf("fdb: relation %q already exists", name)
	}
	if len(attrs) == 0 {
		return fmt.Errorf("fdb: relation %q needs at least one attribute", name)
	}
	sch := make(relation.Schema, len(attrs))
	for i, a := range attrs {
		sch[i] = relation.Attribute(name + "." + a)
	}
	if err := sch.Validate(); err != nil {
		return err
	}
	db.rels[name] = relation.New(name, sch)
	db.ord = append(db.ord, name)
	return nil
}

// MustCreate is Create, panicking on error (for examples and tests).
func (db *DB) MustCreate(name string, attrs ...string) {
	if err := db.Create(name, attrs...); err != nil {
		panic(err)
	}
}

// Insert appends one tuple; values may be int, int64 or string (strings are
// dictionary-encoded).
func (db *DB) Insert(name string, values ...interface{}) error {
	r, ok := db.rels[name]
	if !ok {
		return fmt.Errorf("fdb: unknown relation %q", name)
	}
	if len(values) != len(r.Schema) {
		return fmt.Errorf("fdb: relation %q has arity %d, got %d values", name, len(r.Schema), len(values))
	}
	t := make(relation.Tuple, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case int:
			t[i] = relation.Value(x)
		case int64:
			t[i] = relation.Value(x)
		case relation.Value:
			t[i] = x
		case string:
			t[i] = db.dict.Encode(x)
		default:
			return fmt.Errorf("fdb: unsupported value type %T", v)
		}
	}
	r.AppendTuple(t)
	return nil
}

// MustInsert is Insert, panicking on error.
func (db *DB) MustInsert(name string, values ...interface{}) {
	if err := db.Insert(name, values...); err != nil {
		panic(err)
	}
}

// LoadTSV reads one relation from a tab-separated file (first line
// "Name<TAB>attr…", see internal/csvio) into the database and returns its
// name.
func (db *DB) LoadTSV(path string) (string, error) {
	rel, err := csvio.ReadFile(path, db.dict)
	if err != nil {
		return "", err
	}
	if _, ok := db.rels[rel.Name]; ok {
		return "", fmt.Errorf("fdb: relation %q already exists", rel.Name)
	}
	db.rels[rel.Name] = rel
	db.ord = append(db.ord, rel.Name)
	return rel.Name, nil
}

// SaveTSV writes a stored relation to a tab-separated file.
func (db *DB) SaveTSV(path, name string) error {
	r, ok := db.rels[name]
	if !ok {
		return fmt.Errorf("fdb: unknown relation %q", name)
	}
	return csvio.WriteFile(path, r, db.dict)
}

// Relations lists the relation names in creation order.
func (db *DB) Relations() []string { return append([]string(nil), db.ord...) }

// Relation exposes a stored relation (read-only use expected).
func (db *DB) Relation(name string) (*relation.Relation, bool) {
	r, ok := db.rels[name]
	return r, ok
}

// Dict exposes the database dictionary (for rendering).
func (db *DB) Dict() *relation.Dict { return db.dict }

// ---------------------------------------------------------------- query API

// Clause is one element of a query: relation list, equality, constant
// selection or projection.
type Clause interface{ apply(*spec) error }

type spec struct {
	from    []string
	eqs     []core.Equality
	sels    []core.ConstSel
	project []relation.Attribute
}

type fromClause []string

func (f fromClause) apply(s *spec) error { s.from = append(s.from, f...); return nil }

// From names the relations to join.
func From(names ...string) Clause { return fromClause(names) }

type eqClause [2]string

func (e eqClause) apply(s *spec) error {
	s.eqs = append(s.eqs, core.Equality{A: relation.Attribute(e[0]), B: relation.Attribute(e[1])})
	return nil
}

// Eq adds the join/selection condition a = b over qualified attribute names
// ("Relation.attr").
func Eq(a, b string) Clause { return eqClause{a, b} }

// CmpOp re-exports the comparison operators for selections with constant.
type CmpOp = fplan.Cmp

// Comparison operators for Where-style constant selections.
const (
	EQ = fplan.Eq
	NE = fplan.Ne
	LT = fplan.Lt
	LE = fplan.Le
	GT = fplan.Gt
	GE = fplan.Ge
)

type constClause struct {
	attr string
	op   fplan.Cmp
	val  interface{}
}

func (constClause) apply(*spec) error { return nil } // handled in Query

// Cmp adds the constant selection attr θ value; value may be int, int64 or
// string.
func Cmp(attr string, op CmpOp, value interface{}) Clause {
	return constClause{attr: attr, op: op, val: value}
}

type projClause []string

func (p projClause) apply(s *spec) error {
	for _, a := range p {
		s.project = append(s.project, relation.Attribute(a))
	}
	return nil
}

// Project keeps only the named attributes in the result.
func Project(attrs ...string) Clause { return projClause(attrs) }

// Query evaluates a select-project-join query and returns its factorised
// result: it finds an f-tree of minimal cost s(T) for the query, builds the
// factorised representation directly from the input relations, then applies
// constant selections and the projection as f-plan operators.
func (db *DB) Query(clauses ...Clause) (*Result, error) {
	var s spec
	for _, c := range clauses {
		switch cc := c.(type) {
		case constClause:
			v, err := db.encode(cc.val)
			if err != nil {
				return nil, err
			}
			s.sels = append(s.sels, core.ConstSel{A: relation.Attribute(cc.attr), Op: cc.op, C: v})
		default:
			if err := c.apply(&s); err != nil {
				return nil, err
			}
		}
	}
	if len(s.from) == 0 {
		return nil, fmt.Errorf("fdb: query needs From(...)")
	}
	q := &core.Query{Equalities: s.eqs, Selections: s.sels}
	for _, name := range s.from {
		r, ok := db.rels[name]
		if !ok {
			return nil, fmt.Errorf("fdb: unknown relation %q", name)
		}
		rc := r.Clone()
		rc.Dedup()
		q.Relations = append(q.Relations, rc)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	// Constant selections are cheapest first (Section 4): filter inputs.
	for i, r := range q.Relations {
		var mine []core.ConstSel
		for _, c := range q.Selections {
			if r.Schema.Contains(c.A) {
				mine = append(mine, c)
			}
		}
		if len(mine) > 0 {
			sch := r.Schema
			q.Relations[i] = r.Select(func(t relation.Tuple) bool {
				for _, c := range mine {
					if !c.Match(t[sch.Index(c.A)]) {
						return false
					}
				}
				return true
			})
		}
	}
	tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		return nil, err
	}
	fr, err := fbuild.Build(q.Relations, tr)
	if err != nil {
		return nil, err
	}
	if s.project != nil {
		if err := (fplan.Project{Attrs: s.project}).Apply(fr); err != nil {
			return nil, err
		}
	}
	return &Result{db: db, rep: fr}, nil
}

func (db *DB) encode(v interface{}) (relation.Value, error) {
	switch x := v.(type) {
	case int:
		return relation.Value(x), nil
	case int64:
		return relation.Value(x), nil
	case relation.Value:
		return x, nil
	case string:
		return db.dict.Encode(x), nil
	}
	return 0, fmt.Errorf("fdb: unsupported value type %T", v)
}

// ---------------------------------------------------------------- results

// Result is a factorised query result. Follow-up queries (Where, Select,
// ProjectTo, Join) run directly on the factorised representation, using the
// optimisers to pick cheap f-plans.
type Result struct {
	db  *DB
	rep *frep.FRep
}

// Size returns the number of singletons (the paper's |E|).
func (r *Result) Size() int { return r.rep.Size() }

// Count returns the number of represented tuples.
func (r *Result) Count() int64 { return r.rep.Count() }

// Empty reports whether the result is the empty relation.
func (r *Result) Empty() bool { return r.rep.IsEmpty() }

// FlatSize returns Count() times the number of visible attributes: the
// number of data elements a flat representation would hold.
func (r *Result) FlatSize() int64 {
	return r.rep.Count() * int64(len(r.rep.Schema()))
}

// Schema lists the result attributes in enumeration order.
func (r *Result) Schema() []string {
	sch := r.rep.Schema()
	out := make([]string, len(sch))
	for i, a := range sch {
		out[i] = string(a)
	}
	return out
}

// FTree renders the result's factorisation tree.
func (r *Result) FTree() string { return r.rep.Tree.String() }

// String renders the factorised representation in the paper's notation,
// decoding dictionary values.
func (r *Result) String() string { return r.rep.StringDict(r.db.dict) }

// Each enumerates the tuples (constant delay) as string-decoded rows until
// fn returns false.
func (r *Result) Each(fn func(row []string) bool) {
	sch := r.rep.Schema()
	r.rep.Enumerate(func(t relation.Tuple) bool {
		row := make([]string, len(sch))
		for i, v := range t {
			row[i] = r.db.dict.Decode(v)
		}
		return fn(row)
	})
}

// Rows materialises up to limit rows (limit <= 0: all).
func (r *Result) Rows(limit int) [][]string {
	var out [][]string
	r.Each(func(row []string) bool {
		out = append(out, append([]string(nil), row...))
		return limit <= 0 || len(out) < limit
	})
	return out
}

// Rep exposes the underlying representation (advanced use: direct access to
// the internal packages).
func (r *Result) Rep() *frep.FRep { return r.rep }

// Iter returns a resumable constant-delay iterator over the result's
// tuples (raw values; use Each/Rows for dictionary-decoded output). The
// iterator is invalidated if the result is consumed by further operators.
func (r *Result) Iter() *frep.Iterator { return frep.NewIterator(r.rep) }

// Where applies equality conditions to the factorised result: the engine
// searches for an optimal f-plan (restructuring + merge/absorb operators)
// and executes it. The receiver is unchanged; a new Result is returned.
func (r *Result) Where(clauses ...Clause) (*Result, error) {
	var s spec
	for _, c := range clauses {
		switch cc := c.(type) {
		case constClause:
			v, err := r.db.encode(cc.val)
			if err != nil {
				return nil, err
			}
			s.sels = append(s.sels, core.ConstSel{A: relation.Attribute(cc.attr), Op: cc.op, C: v})
		case eqClause, projClause:
			if err := c.apply(&s); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("fdb: Where accepts Eq, Cmp and Project clauses only")
		}
	}
	rep := r.rep.Clone()
	// Constant selections first (cheapest, Section 4).
	for _, c := range s.sels {
		if err := (fplan.SelectConst{A: c.A, Op: c.Op, C: c.C}).Apply(rep); err != nil {
			return nil, err
		}
	}
	var conds []opt.Condition
	for _, e := range s.eqs {
		if rep.Tree.NodeOf(e.A) == nil || rep.Tree.NodeOf(e.B) == nil {
			return nil, fmt.Errorf("fdb: condition %s=%s references attribute not in result", e.A, e.B)
		}
		if rep.Tree.NodeOf(e.A) != rep.Tree.NodeOf(e.B) {
			conds = append(conds, opt.Condition{A: e.A, B: e.B})
		}
	}
	if len(conds) > 0 {
		res, err := opt.ExhaustivePlan(rep.Tree, conds, opt.PlanSearchOptions{})
		if err != nil {
			// Fall back to the greedy heuristic on large instances.
			g, gerr := opt.GreedyPlan(rep.Tree, conds)
			if gerr != nil {
				return nil, err
			}
			res = g
		}
		if err := res.Plan.Execute(rep); err != nil {
			return nil, err
		}
	}
	if s.project != nil {
		if err := (fplan.Project{Attrs: s.project}).Apply(rep); err != nil {
			return nil, err
		}
	}
	return &Result{db: r.db, rep: rep}, nil
}

// Join combines two factorised results over disjoint attributes and applies
// the given equality conditions — the Q1 ⋈ Q2 scenario of Example 2.
func (r *Result) Join(other *Result, clauses ...Clause) (*Result, error) {
	prod, err := fplan.Product(r.rep, other.rep)
	if err != nil {
		return nil, err
	}
	joined := &Result{db: r.db, rep: prod}
	if len(clauses) == 0 {
		return joined, nil
	}
	return joined.Where(clauses...)
}

// ProjectTo projects the factorised result onto the given attributes.
func (r *Result) ProjectTo(attrs ...string) (*Result, error) {
	rep := r.rep.Clone()
	var as []relation.Attribute
	for _, a := range attrs {
		as = append(as, relation.Attribute(a))
	}
	if err := (fplan.Project{Attrs: as}).Apply(rep); err != nil {
		return nil, err
	}
	return &Result{db: r.db, rep: rep}, nil
}

// Table renders the enumerated result (up to limit rows) as an aligned
// table for display.
func (r *Result) Table(limit int) string {
	var b strings.Builder
	b.WriteString(strings.Join(r.Schema(), "\t"))
	b.WriteByte('\n')
	for _, row := range r.Rows(limit) {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedSchema returns the schema sorted alphabetically (stable rendering
// helper for tests).
func (r *Result) SortedSchema() []string {
	s := r.Schema()
	sort.Strings(s)
	return s
}
