// Package fdb is an in-memory query engine for factorised relational
// databases — a faithful reimplementation of
//
//	Bakibayev, Olteanu, Závodný:
//	"FDB: A Query Engine for Factorised Relational Databases", VLDB 2012.
//
// The engine spends its optimisation budget before execution: it searches
// for an f-tree of minimal cost s(T), pre-filters and dedups the inputs,
// and only then builds the factorised result. The API is therefore built
// around compiled, reusable statements: Prepare pays the compile cost once,
// Exec runs the compiled statement cheaply many times, and Param
// placeholders let one plan serve millions of distinct constant values:
//
//	db := fdb.New()
//	db.MustCreate("Orders", "oid", "item")
//	db.MustInsert("Orders", "01", "Milk")
//	...
//	stmt, err := db.Prepare(
//		fdb.From("Orders", "Store", "Disp"),
//		fdb.Eq("Orders.item", "Store.item"),
//		fdb.Eq("Store.location", "Disp.location"),
//		fdb.Cmp("Orders.item", fdb.EQ, fdb.Param("item")))
//	res, err := stmt.Exec(fdb.Arg("item", "Milk"))   // compiled once, run many
//	res, err = stmt.Exec(fdb.Arg("item", "Cheese"))  // same plan, new constant
//
// Exec is safe for concurrent callers; ExecContext adds cancellation for
// long factorisation builds. A Stmt snapshots its input relations at
// Prepare time.
//
// Ad-hoc queries still work — and get plan reuse for free through an
// internal LRU plan cache keyed by the query's canonical fingerprint
// (see CacheStats):
//
//	res, err := db.Query(
//		fdb.From("Orders", "Store", "Disp"),
//		fdb.Eq("Orders.item", "Store.item"),
//		fdb.Eq("Store.location", "Disp.location"))
//	fmt.Println(res.Size(), res.Count()) // singletons vs tuples
//	res2, err := res.Where(fdb.Eq("Orders.item", "Produce.item")) // on factorised data
//
// Aggregates (COUNT, SUM, MIN, MAX, COUNT DISTINCT — optionally grouped)
// are computed in a single pass over the factorised representation, in
// time proportional to its factorised size, never by enumerating the flat
// result:
//
//	ar, err := db.QueryAgg(
//		fdb.From("Orders", "Store", "Disp"),
//		fdb.Eq("Orders.item", "Store.item"),
//		fdb.Eq("Store.location", "Disp.location"),
//		fdb.GroupBy("Store.location"),
//		fdb.Agg(fdb.Count, ""), fdb.Agg(fdb.Sum, "Orders.oid"))
//	v, err := ar.Int(0, "count") // one row per group, sorted by key
//
// Grouped statements restructure their f-tree at compile time so group-by
// attributes sit above aggregated ones; Prepare + ExecAgg reuse the
// restructured plan per binding.
//
// Relations are presented at the logical layer, but results (and, when
// desired, inputs of follow-up queries) are stored as factorised
// representations: algebraic expressions over singletons, union and product
// whose nesting structure is an f-tree. On data with many-to-many
// relationships, factorised results can be orders of magnitude smaller than
// flat ones, and select-project-join queries are evaluated directly on the
// factorised form by f-plans of restructuring and selection operators.
//
// Attribute names are written "Relation.attr" and kept globally unique
// internally.
package fdb
