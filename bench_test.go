package fdb_test

// One benchmark per table/figure of the paper's evaluation (Section 5).
// Each wraps the corresponding experiment in internal/bench on a reduced
// parameter grid suitable for `go test -bench=.`; cmd/fdbench runs the full
// grids and prints the series recorded in EXPERIMENTS.md.
//
//	Figure 5  -> BenchmarkExp1OptimiseFlat      (optimisation on flat data)
//	Figure 6  -> BenchmarkExp2PlanQuality       (full search vs greedy cost)
//	Figure 9  -> BenchmarkExp2OptimiserTime     (full search vs greedy time)
//	Figure 7  -> BenchmarkExp3FlatEval          (evaluation on flat data)
//	Figure 8  -> BenchmarkExp4FactorisedEval    (evaluation on factorised data)

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/relation"
)

// BenchmarkExp1OptimiseFlat measures OptimalFTree (Figure 5): time to find
// the optimal f-tree and its cost s(T), for K equalities on R relations
// with A = 40 attributes.
func BenchmarkExp1OptimiseFlat(b *testing.B) {
	for _, r := range []int{2, 4, 8} {
		for _, k := range []int{1, 3, 6} {
			b.Run(fmt.Sprintf("R=%d/K=%d", r, k), func(b *testing.B) {
				b.ReportAllocs()
				rng := rand.New(rand.NewSource(1))
				var lastS float64
				for i := 0; i < b.N; i++ {
					sch, err := gen.RandomSchema(rng, r, 40)
					if err != nil {
						b.Fatal(err)
					}
					eqs, err := gen.RandomEqualities(rng, sch, k)
					if err != nil {
						b.Fatal(err)
					}
					q := &core.Query{Equalities: eqs}
					for j, s := range sch.Relations {
						q.Relations = append(q.Relations, relation.New(sch.Names[j], s))
					}
					_, s, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
					if err != nil {
						b.Fatal(err)
					}
					lastS = s
				}
				b.ReportMetric(lastS, "s(T)")
			})
		}
	}
}

// BenchmarkExp2PlanQuality measures plan quality (Figure 6): average f-plan
// cost and result-tree cost for full search and greedy, R = 4 relations,
// A = 10 attributes.
func BenchmarkExp2PlanQuality(b *testing.B) {
	for _, kl := range [][2]int{{1, 1}, {2, 2}, {4, 2}, {2, 4}} {
		b.Run(fmt.Sprintf("K=%d/L=%d", kl[0], kl[1]), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(2))
			var rows []bench.Exp2Row
			for i := 0; i < b.N; i++ {
				rows = bench.Experiment2(rng, 4, 10, []int{kl[0]}, []int{kl[1]}, 3)
			}
			if len(rows) > 0 && rows[0].Runs > 0 {
				b.ReportMetric(rows[0].FullPlanCost, "s(f)-full")
				b.ReportMetric(rows[0].GreedyPlanCost, "s(f)-greedy")
				b.ReportMetric(rows[0].FullResultCost, "s(T)-full")
				b.ReportMetric(rows[0].GreedyResultCost, "s(T)-greedy")
			}
		})
	}
}

// BenchmarkExp2OptimiserTime measures optimiser latency (Figure 9).
func BenchmarkExp2OptimiserTime(b *testing.B) {
	for _, engine := range []string{"full", "greedy"} {
		for _, kl := range [][2]int{{2, 1}, {2, 3}} {
			b.Run(fmt.Sprintf("%s/K=%d/L=%d", engine, kl[0], kl[1]), func(b *testing.B) {
				b.ReportAllocs()
				rng := rand.New(rand.NewSource(3))
				for i := 0; i < b.N; i++ {
					rows := bench.Experiment2(rng, 4, 10, []int{kl[0]}, []int{kl[1]}, 1)
					_ = rows
				}
			})
		}
	}
}

// BenchmarkExp3FlatEval measures query evaluation on flat data (Figure 7):
// FDB (factorised result) vs RDB vs the Volcano stand-in, 3 ternary
// relations, values from [1,100], uniform and Zipf.
func BenchmarkExp3FlatEval(b *testing.B) {
	for _, dist := range []gen.Distribution{gen.Uniform, gen.Zipf} {
		for _, n := range []int{300, 1000} {
			for _, k := range []int{2, 3, 4} {
				b.Run(fmt.Sprintf("%s/N=%d/K=%d", dist, n, k), func(b *testing.B) {
					b.ReportAllocs()
					rng := rand.New(rand.NewSource(4))
					var row bench.Exp3Row
					var err error
					for i := 0; i < b.N; i++ {
						row, err = bench.Experiment3Point(rng, bench.Exp3Config{
							Relations: 3, Attributes: 9, N: n, K: k, M: 100,
							Dist: dist, Timeout: 2 * time.Second, MaxTuples: 20_000_000,
						})
						if err != nil {
							b.Fatal(err)
						}
					}
					b.ReportMetric(float64(row.FDBSize), "fdb-size")
					b.ReportMetric(float64(row.FlatSize), "flat-size")
					b.ReportMetric(row.FDBMS, "fdb-ms")
					b.ReportMetric(row.RDBMS, "rdb-ms")
					b.ReportMetric(row.VolcanoMS, "volcano-ms")
				})
			}
		}
	}
}

// BenchmarkExp3Combinatorial covers the right column of Figure 7: R = 4
// relations (two binary with 64 tuples, two ternary with 512), values from
// [1,20].
func BenchmarkExp3Combinatorial(b *testing.B) {
	for _, k := range []int{1, 2, 4, 6} {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(5))
			var row bench.Exp3Row
			for i := 0; i < b.N; i++ {
				q, err := gen.CombinatorialQuery(rng, k, gen.Uniform)
				if err != nil {
					b.Fatal(err)
				}
				row, err = bench.Exp3FromQuery(q, bench.Exp3Config{
					K: k, Timeout: 2 * time.Second, MaxTuples: 20_000_000, Dist: gen.Uniform,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.FDBSize), "fdb-size")
			b.ReportMetric(float64(row.FlatSize), "flat-size")
		})
	}
}

// BenchmarkExp4FactorisedEval measures evaluation on factorised data
// (Figure 8): L equalities on the factorised result of a K-equality query,
// FDB f-plan vs RDB scan.
func BenchmarkExp4FactorisedEval(b *testing.B) {
	for _, kl := range [][2]int{{2, 1}, {2, 2}, {4, 1}} {
		b.Run(fmt.Sprintf("K=%d/L=%d", kl[0], kl[1]), func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(6))
			var row bench.Exp4Row
			var err error
			for i := 0; i < b.N; i++ {
				row, err = bench.Experiment4Point(rng, bench.Exp4Config{
					Relations: 4, Attributes: 10, N: 256, K: kl[0], L: kl[1], M: 20,
					Dist: gen.Uniform, Timeout: 2 * time.Second, MaxFlat: 5_000_000,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(row.FDBSize), "fdb-size")
			b.ReportMetric(float64(row.FlatSize), "flat-size")
			b.ReportMetric(row.FDBMS, "fdb-ms")
			b.ReportMetric(row.RDBMS, "rdb-ms")
		})
	}
}

// BenchmarkGroceryPipeline exercises the running example end to end.
func BenchmarkGroceryPipeline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := bench.GrocerySmoke(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExp5PreparedVsAdhoc measures the prepared-statement amortisation
// win: stmt.Exec with a bound parameter vs an equivalent cold db.Query that
// re-compiles (validation, input dedup, f-tree search, sorting) per call.
func BenchmarkExp5PreparedVsAdhoc(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(8))
	cfg := bench.Exp5Config{Orders: 2000, Stock: 800, Disps: 300, Items: 50, Locations: 40, Execs: 50}
	var row bench.Exp5Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = bench.PreparedVsAdhoc(rng, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.AdhocNS/1e6, "adhoc-ms/exec")
	b.ReportMetric(row.PreparedNS/1e6, "prepared-ms/exec")
	b.ReportMetric(row.Speedup, "speedup")
}
