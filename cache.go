package fdb

import (
	"container/list"
	"sync"
)

// defaultPlanCacheCap is the default number of compiled plans Query keeps.
const defaultPlanCacheCap = 64

// CacheStats is a snapshot of the plan cache and planner tier counters
// (the latter are documented on DB.CacheStats).
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int

	GreedyPlans     uint64
	Escalations     uint64
	BudgetFallbacks uint64
	Promotions      uint64
}

// planCache is an LRU map from canonical query fingerprint to compiled
// statement. Entries survive data writes: cached statements refresh their
// snapshots incrementally from the relations' delta chains, so invalidation
// is reserved for schema-level changes (a relation name reappearing in the
// catalogue), keyed by the relation names each plan reads.
type planCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recently used
	byKey        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key   string
	stmt  *Stmt
	names map[string]bool // relations the plan reads
}

func newPlanCache(cap int) *planCache {
	return &planCache{cap: cap, ll: list.New(), byKey: map[string]*list.Element{}}
}

func (c *planCache) capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

func (c *planCache) get(key string) (*Stmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*cacheEntry).stmt, true
	}
	c.misses++
	return nil, false
}

func (c *planCache) put(key string, stmt *Stmt, names []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	if el, ok := c.byKey[key]; ok {
		el.Value = &cacheEntry{key: key, stmt: stmt, names: set}
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, stmt: stmt, names: set})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// entries returns a copy of the cache's (key, statement) pairs, MRU first.
// SaveSnapshot walks it to find memoised encodings worth persisting.
func (c *planCache) entries() []cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, *el.Value.(*cacheEntry))
	}
	return out
}

// invalidate evicts every entry whose plan reads the named relation. Data
// writes never call this (statements self-refresh per delta); it fires on
// schema-level changes — a name entering the catalogue — so a plan compiled
// against a former universe of relations can never serve the new one.
func (c *planCache) invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.byKey {
		if el.Value.(*cacheEntry).names[name] {
			c.ll.Remove(el)
			delete(c.byKey, key)
		}
	}
}

func (c *planCache) resize(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0 // negative means "disabled", same as 0; keeps eviction finite
	}
	c.cap = n
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}
