package fdb

import (
	"container/list"
	"sync"
)

// defaultPlanCacheCap is the default number of compiled plans Query keeps.
const defaultPlanCacheCap = 64

// CacheStats is a snapshot of the plan cache counters.
type CacheStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// planCache is an LRU map from canonical query fingerprint to compiled
// statement. An entry is only served while the data versions of every
// involved relation still match; stale entries are evicted on lookup.
type planCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recently used
	byKey        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key  string
	stmt *Stmt
	vers map[string]uint64
}

func newPlanCache(cap int) *planCache {
	return &planCache{cap: cap, ll: list.New(), byKey: map[string]*list.Element{}}
}

func (c *planCache) capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cap
}

func (c *planCache) get(key string, vers map[string]uint64) (*Stmt, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		if versEqual(e.vers, vers) {
			c.ll.MoveToFront(el)
			c.hits++
			return e.stmt, true
		}
		c.ll.Remove(el)
		delete(c.byKey, key)
	}
	c.misses++
	return nil, false
}

func (c *planCache) put(key string, stmt *Stmt, vers map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cap <= 0 {
		return
	}
	if el, ok := c.byKey[key]; ok {
		el.Value = &cacheEntry{key: key, stmt: stmt, vers: vers}
		c.ll.MoveToFront(el)
		return
	}
	c.byKey[key] = c.ll.PushFront(&cacheEntry{key: key, stmt: stmt, vers: vers})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

// invalidate evicts every entry whose plan reads the named relation, so a
// write releases the stale data snapshots immediately instead of leaving
// them resident until the same fingerprint is queried again.
func (c *planCache) invalidate(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.byKey {
		if _, ok := el.Value.(*cacheEntry).vers[name]; ok {
			c.ll.Remove(el)
			delete(c.byKey, key)
		}
	}
}

func (c *planCache) resize(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n < 0 {
		n = 0 // negative means "disabled", same as 0; keeps eviction finite
	}
	c.cap = n
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
	}
}

func (c *planCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: c.ll.Len()}
}

func versEqual(a, b map[string]uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
