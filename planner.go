package fdb

import (
	"errors"
	"math"
	"sync/atomic"

	"repro/internal/ftree"
	"repro/internal/opt"
	"repro/internal/relation"
)

// PlannerMode selects how statements pick their f-tree.
type PlannerMode int32

const (
	// PlannerAuto (the default) plans greedily and escalates to the
	// exhaustive search only when the greedy cost exceeds the threshold;
	// hot cached plans are re-optimised in the background (promotion).
	PlannerAuto PlannerMode = iota
	// PlannerGreedy always uses the polynomial greedy heuristic.
	PlannerGreedy
	// PlannerExhaustive always runs the branch-and-bound search, keeping
	// the greedy tree only when the search blows its exploration budget.
	PlannerExhaustive
)

const (
	// defaultPlannerThreshold is the greedy cost s(T) above which the auto
	// tier escalates to exhaustive search. Typical OLTP-shaped joins cost
	// at most 2 (one shared branch), where greedy is near-exact; costlier
	// trees are wide enough that a better shape repays the search.
	defaultPlannerThreshold = 2.5
	// defaultPromoteAfter is the number of plan-cache hits after which a
	// greedily planned statement is re-optimised in the background.
	defaultPromoteAfter = 32
)

// plannerCounters tallies tier-policy decisions; exposed via CacheStats.
type plannerCounters struct {
	greedy      atomic.Uint64 // statements carrying a greedy-planned tree
	escalations atomic.Uint64 // exhaustive searches attempted
	fallbacks   atomic.Uint64 // budget blowups answered with the greedy tree
	promotions  atomic.Uint64 // background re-optimisations that swapped a plan
}

// SetPlannerMode selects the planning tier for statements compiled from now
// on (cached plans keep the tree they were compiled with). Safe to call
// concurrently with running queries.
func (db *DB) SetPlannerMode(m PlannerMode) { db.plannerMode.Store(int32(m)) }

// PlannerMode returns the current planning tier.
func (db *DB) PlannerMode() PlannerMode { return PlannerMode(db.plannerMode.Load()) }

// SetPlannerBudget caps the number of partial trees one exhaustive search
// may explore before it gives up and the greedy tree stands; n <= 0
// restores the default (2e6). Exploration-budget exhaustion is never a
// query error: it only pins the statement to its greedy plan.
func (db *DB) SetPlannerBudget(n int) {
	if n < 0 {
		n = 0
	}
	db.plannerBudget.Store(int64(n))
}

// SetPlannerThreshold sets the greedy cost s(T) above which PlannerAuto
// escalates to the exhaustive search; v <= 0 restores the default (2.5).
func (db *DB) SetPlannerThreshold(v float64) {
	if v <= 0 || math.IsNaN(v) {
		v = 0
	}
	db.plannerThreshold.Store(math.Float64bits(v))
}

// SetPlannerPromoteAfter sets the number of plan-cache hits after which a
// greedily planned statement re-optimises in the background (default 32);
// n < 0 disables promotion, n == 0 restores the default.
func (db *DB) SetPlannerPromoteAfter(n int) {
	if n < 0 {
		n = -1
	}
	db.plannerPromote.Store(int64(n))
}

func (db *DB) plannerBudgetOpts() opt.TreeSearchOptions {
	return opt.TreeSearchOptions{Budget: int(db.plannerBudget.Load())}
}

func (db *DB) plannerThresholdValue() float64 {
	if bits := db.plannerThreshold.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return defaultPlannerThreshold
}

func (db *DB) plannerPromoteAfter() int64 {
	switch n := db.plannerPromote.Load(); {
	case n < 0:
		return 0 // disabled
	case n == 0:
		return defaultPromoteAfter
	default:
		return n
	}
}

// planTree picks a statement's f-tree through the tier policy: greedy by
// default, escalating to the budgeted exhaustive search when the greedy
// cost crosses the threshold (or when forced by PlannerExhaustive), and
// keeping the greedy tree whenever the search exhausts its budget. The
// returned flag reports whether the chosen tree came from the greedy tier
// (and is therefore a promotion candidate). opt.ErrBudget never escapes.
func (db *DB) planTree(classes, schemas []relation.AttrSet) (*ftree.T, float64, bool, error) {
	switch db.PlannerMode() {
	case PlannerExhaustive:
		db.pstats.escalations.Add(1)
		tr, cost, err := opt.OptimalFTree(classes, schemas, db.plannerBudgetOpts())
		if err == nil {
			return tr, cost, false, nil
		}
		if !errors.Is(err, opt.ErrBudget) {
			return nil, 0, false, err
		}
		db.pstats.fallbacks.Add(1)
		tr, cost, err = opt.GreedyFTree(classes, schemas)
		if err != nil {
			return nil, 0, false, err
		}
		db.pstats.greedy.Add(1)
		return tr, cost, true, nil
	case PlannerGreedy:
		tr, cost, err := opt.GreedyFTree(classes, schemas)
		if err != nil {
			return nil, 0, false, err
		}
		db.pstats.greedy.Add(1)
		return tr, cost, true, nil
	default:
		tr, cost, err := opt.GreedyFTree(classes, schemas)
		if err != nil {
			return nil, 0, false, err
		}
		if cost <= db.plannerThresholdValue()+1e-9 {
			db.pstats.greedy.Add(1)
			return tr, cost, true, nil
		}
		db.pstats.escalations.Add(1)
		ot, ocost, oerr := opt.OptimalFTree(classes, schemas, db.plannerBudgetOpts())
		if oerr == nil {
			if ocost < cost-1e-9 {
				return ot, ocost, false, nil
			}
			// The greedy tree already is optimal; keep it, but not as a
			// promotion candidate — re-optimising cannot improve it.
			return tr, cost, false, nil
		}
		if !errors.Is(oerr, opt.ErrBudget) {
			return nil, 0, false, oerr
		}
		db.pstats.fallbacks.Add(1)
		db.pstats.greedy.Add(1)
		return tr, cost, true, nil
	}
}

// planOrderedTree is planTree for the order-constrained search (the ORDER
// BY key-class chain forced to the pre-order front). opt.ErrBudget never
// escapes — the greedy-ordered tree stands in; opt.ErrOrderIncompatible
// propagates to the caller, which falls back to heap-sorted retrieval.
func (db *DB) planOrderedTree(classes, schemas []relation.AttrSet, chain []int) (*ftree.T, float64, bool, error) {
	switch db.PlannerMode() {
	case PlannerExhaustive:
		db.pstats.escalations.Add(1)
		tr, cost, err := opt.OptimalFTreeOrdered(classes, schemas, chain, db.plannerBudgetOpts())
		if err == nil {
			return tr, cost, false, nil
		}
		if !errors.Is(err, opt.ErrBudget) {
			return nil, 0, false, err
		}
		db.pstats.fallbacks.Add(1)
		tr, cost, err = opt.GreedyFTreeOrdered(classes, schemas, chain)
		if err != nil {
			return nil, 0, false, err
		}
		db.pstats.greedy.Add(1)
		return tr, cost, true, nil
	case PlannerGreedy:
		tr, cost, err := opt.GreedyFTreeOrdered(classes, schemas, chain)
		if err != nil {
			return nil, 0, false, err
		}
		db.pstats.greedy.Add(1)
		return tr, cost, true, nil
	default:
		tr, cost, err := opt.GreedyFTreeOrdered(classes, schemas, chain)
		if err != nil {
			return nil, 0, false, err
		}
		if cost <= db.plannerThresholdValue()+1e-9 {
			db.pstats.greedy.Add(1)
			return tr, cost, true, nil
		}
		db.pstats.escalations.Add(1)
		ot, ocost, oerr := opt.OptimalFTreeOrdered(classes, schemas, chain, db.plannerBudgetOpts())
		if oerr == nil {
			if ocost < cost-1e-9 {
				return ot, ocost, false, nil
			}
			return tr, cost, false, nil
		}
		if !errors.Is(oerr, opt.ErrBudget) {
			return nil, 0, false, oerr
		}
		db.pstats.fallbacks.Add(1)
		db.pstats.greedy.Add(1)
		return tr, cost, true, nil
	}
}

// maybePromote is called on every plan-cache hit: once a greedily planned,
// unpinned statement crosses the promotion threshold, one background
// re-optimisation runs and — if the exhaustive search finds a strictly
// cheaper tree — swaps the statement's whole plan atomically. In-flight
// executions keep the plan they loaded; the swap reuses the incremental-
// refresh machinery, so the promoted plan's snapshots stay current the
// same way the original's did.
func (db *DB) maybePromote(st *Stmt) {
	if db.PlannerMode() != PlannerAuto {
		return // forced tiers stay forced; only auto re-optimises behind the scenes
	}
	p := st.plan.Load()
	if p == nil || !p.greedy || st.snap != nil {
		return
	}
	n := db.plannerPromoteAfter()
	if n == 0 || st.hits.Add(1) < uint64(n) {
		return
	}
	if !st.promoting.CompareAndSwap(false, true) {
		return
	}
	go st.promote()
}
