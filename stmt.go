package fdb

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/delta"
	"repro/internal/fbuild"
	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/opt"
	"repro/internal/relation"
)

// mergeMaxFrac is the incremental-maintenance threshold: a refresh whose
// net delta exceeds this fraction of the statement's input tuples skips the
// arena merge and lets the next execution rebuild with BuildEncParallel —
// when deltas dominate, the full build's morsel parallelism beats patching
// most of the representation value by value.
const mergeMaxFrac = 0.25

// Stmt is a compiled, reusable select-project-join statement. Prepare pays
// the expensive part of query evaluation once — clause validation, optimal
// f-tree search, input snapshot (dedup + constant pre-filtering + path
// sort) — so that each Exec only binds parameters and builds the
// factorised result.
//
// A Stmt prepared from the database follows it: each Exec reads the
// relations' current versions, folding any delta batches committed since
// the last execution into its sorted snapshots (and, when the change is
// small, directly into its cached encoded representation) — the compiled
// plan never recompiles on the query path, though a hot cached statement
// may be promoted: a background re-optimisation that swaps the whole plan
// atomically (see maybePromote). A Stmt prepared from a Snapshot is
// pinned: it keeps reading the snapshot's versions and fails loudly once
// the snapshot is closed. Exec is safe for concurrent callers.
type Stmt struct {
	db       *DB
	psels    []paramSel           // parameterised selections, bound at Exec
	dsels    []dynSel             // string selections resolved per Exec
	params   []string             // distinct parameter names, declaration order
	project  []relation.Attribute // nil: keep all attributes
	groupBy  []relation.Attribute // aggregation statements: group-by attributes
	aggs     []frep.AggSpec       // aggregation statements: aggregates to compute
	order    []frep.OrderKey      // ORDER BY keys; empty: enumeration order
	offset   int                  // tuples to skip
	limit    int                  // result cap; -1: none
	distinct bool                 // explicit set-semantics normalisation
	par      int                  // WithParallelism override; 0 = inherit from the DB
	fp       string               // plan-cache fingerprint; "" when not cached

	// classes and schemas are the query's attribute classes and relation
	// schemas — data-independent, kept so a background promotion can rerun
	// the f-tree search without recompiling the spec; ochain is the ORDER
	// BY key-class chain of ordered statements.
	classes []relation.AttrSet
	schemas []relation.AttrSet
	ochain  []int

	snap *Snapshot // non-nil: pinned to this snapshot's versions

	// plan is the statement's current compiled plan — f-tree, per-input
	// sort permutations, input data. Promotion publishes successor plans
	// atomically and each Exec loads the pointer once, so tree, inputs and
	// data are always observed as one consistent triple. refreshMu
	// serialises the (slow-path) data refresh.
	plan      atomic.Pointer[stmtPlan]
	refreshMu sync.Mutex

	// hits counts plan-cache hits (the promotion trigger); promoting
	// latches so at most one background re-optimisation runs per statement.
	hits      atomic.Uint64
	promoting atomic.Bool
}

// stmtPlan is one immutable compiled plan of a statement: its f-tree, the
// per-input sort permutations derived from that tree, the cost model's
// verdict, and the input data (behind its own atomic pointer: refresh
// publishes new data within a plan, promotion publishes whole new plans).
// greedy marks trees produced by the greedy tier — the candidates
// background promotion re-optimises.
type stmtPlan struct {
	tree       *ftree.T
	inputs     []stmtInput
	cost       float64 // s(T) of the compiled f-tree
	streamable bool    // the tree streams the statement's ORDER BY
	greedy     bool

	data atomic.Pointer[stmtData]
}

// stmtInput is one compiled input relation: its backing store, the
// constant-selection pre-filter baked at compile time, and the column
// permutation of its f-tree path sort (for in-order delta merging).
type stmtInput struct {
	store     *delta.Store
	filter    func(relation.Tuple) bool // nil: no constant selection
	sortIdx   []int
	sortAttrs []relation.Attribute // schema attrs in sortIdx order (SortBy arg)
}

// stmtData is one immutable version of a statement's inputs: the deduped,
// pre-filtered, path-sorted snapshots and the store version each reflects.
// The encoded representation of a parameter-free statement is memoised here
// (built on first use, or inherited from the previous version via the
// incremental merge); reads and writes of enc go through mu.
type stmtData struct {
	rels []*relation.Relation
	vers []uint64

	mu  sync.Mutex
	enc *frep.Enc // cached pre-projection build; nil until needed
}

// paramSel is one compiled parameterised selection: column col of input
// relation rel compared against the value bound to the named parameter.
type paramSel struct {
	rel  int
	col  int
	op   fplan.Cmp
	name string
}

// dynSel is one compiled string selection that must be re-resolved against
// the dictionary on every execution: a range comparison (decoded order can
// gain strings between Execs) or an equality whose constant had no code at
// prepare time (it may gain one). Equalities on already-encoded strings
// compile to constant code selections instead — codes are permanent, so
// baking them is cache-safe.
type dynSel struct {
	rel int
	col int
	op  fplan.Cmp
	s   string
}

// execSel is one per-execution column filter: a resolved parameter binding
// or dynamic string selection.
type execSel struct {
	col  int
	pred func(relation.Value) bool
}

// NamedArg binds a parameter name to a value for Exec; create it with Arg.
type NamedArg struct {
	Name  string
	Value interface{}
}

// Arg binds the named Param placeholder to a value (int, int64 or string).
func Arg(name string, value interface{}) NamedArg { return NamedArg{Name: name, Value: value} }

// Prepare compiles a select-project-join query into a reusable statement.
// Selections whose value is a Param placeholder are compiled into the plan
// and bound per Exec; all other clauses are fixed at Prepare time.
func (db *DB) Prepare(clauses ...Clause) (*Stmt, error) {
	s, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	return db.prepareSpec(s, nil)
}

// prepareSpec is the shared compile path behind Prepare, Query and the
// snapshot query surface. With a non-nil snap the statement reads the
// snapshot's pinned states and never refreshes.
func (db *DB) prepareSpec(s *spec, snap *Snapshot) (*Stmt, error) {
	if len(s.from) == 0 {
		return nil, fmt.Errorf("fdb: query needs From(...)")
	}
	// Resolve the stores and capture one consistent version per input.
	// States are immutable: everything after the capture runs lock-free.
	stores := make([]*delta.Store, len(s.from))
	states := make([]*delta.State, len(s.from))
	db.mu.RLock()
	for i, name := range s.from {
		st, ok := db.stores[name]
		if !ok {
			db.mu.RUnlock()
			return nil, fmt.Errorf("fdb: unknown relation %q", name)
		}
		stores[i] = st
		states[i] = st.State()
	}
	db.mu.RUnlock()
	if snap != nil {
		if snap.isClosed() {
			return nil, errSnapshotClosed
		}
		for i, name := range s.from {
			st, ok := snap.states[name]
			if !ok {
				return nil, fmt.Errorf("fdb: relation %q created after the snapshot", name)
			}
			states[i] = st
		}
	}
	rels := make([]*relation.Relation, len(s.from))
	for i, st := range states {
		rels[i] = snapRelation(st)
	}

	// Split selections: integer constants (and equalities on already-encoded
	// strings) are encoded and pre-filtered now; parameters become
	// placeholders resolved per Exec; string ranges and equalities on unseen
	// strings become dynamic selections, re-resolved against the dictionary
	// per Exec — never minting a code for a constant the database has only
	// ever compared against.
	var consts []core.ConstSel
	var psels []paramSel
	var dsels []dynSel
	params := s.params()
	locate := func(a relation.Attribute) (int, int, error) {
		for i, r := range rels {
			if j := r.Schema.Index(a); j >= 0 {
				return i, j, nil
			}
		}
		return -1, -1, fmt.Errorf("fdb: selection on unknown attribute %q", a)
	}
	for _, sel := range s.sels {
		if p, isParam := sel.val.(ParamValue); isParam {
			ri, ci, err := locate(sel.attr)
			if err != nil {
				return nil, err
			}
			psels = append(psels, paramSel{rel: ri, col: ci, op: sel.op, name: p.name})
			continue
		}
		if str, isStr := sel.val.(string); isStr {
			if v, ok := db.dict.Lookup(str); ok && (sel.op == fplan.Eq || sel.op == fplan.Ne) {
				consts = append(consts, core.ConstSel{A: sel.attr, Op: sel.op, C: v})
				continue
			}
			ri, ci, err := locate(sel.attr)
			if err != nil {
				return nil, err
			}
			dsels = append(dsels, dynSel{rel: ri, col: ci, op: sel.op, s: str})
			continue
		}
		v, err := db.encode(sel.val)
		if err != nil {
			return nil, err
		}
		consts = append(consts, core.ConstSel{A: sel.attr, Op: sel.op, C: v})
	}

	q := &core.Query{Relations: rels, Equalities: s.eqs, Selections: consts, Projection: s.project}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(s.groupBy) > 0 && len(s.aggs) == 0 {
		return nil, fmt.Errorf("fdb: GroupBy needs at least one Agg clause")
	}
	if len(s.aggs) > 0 && (len(s.orderBy) > 0 || s.limit >= 0 || s.offset > 0 || s.distinct) {
		return nil, fmt.Errorf("fdb: OrderBy/Limit/Offset/Distinct apply to tuple results; aggregate rows are already sorted by group key")
	}
	if len(s.orderBy) > 0 {
		out := relation.AttrSet{}
		if s.project != nil {
			for _, a := range s.project {
				out.Add(a)
			}
		} else {
			for _, r := range rels {
				for _, a := range r.Schema {
					out.Add(a)
				}
			}
		}
		for _, k := range s.orderBy {
			if !out.Has(k.Attr) {
				return nil, fmt.Errorf("fdb: order-by attribute %q not in the result", k.Attr)
			}
		}
	}
	if len(s.aggs) > 0 {
		if s.project != nil {
			return nil, fmt.Errorf("fdb: Project cannot be combined with aggregates (GroupBy defines the output columns)")
		}
		all := relation.AttrSet{}
		for _, r := range rels {
			for _, a := range r.Schema {
				all.Add(a)
			}
		}
		seen := relation.AttrSet{}
		for _, a := range s.groupBy {
			if seen.Has(a) {
				return nil, fmt.Errorf("fdb: duplicate group-by attribute %q", a)
			}
			seen.Add(a)
			if !all.Has(a) {
				return nil, fmt.Errorf("fdb: group-by attribute %q not in any input relation", a)
			}
		}
		for _, sp := range s.aggs {
			if sp.Fn != frep.AggCount && !all.Has(sp.Attr) {
				return nil, fmt.Errorf("fdb: aggregate attribute %q not in any input relation", sp.Attr)
			}
		}
	}
	// Constant selections are cheapest first (Section 4): filter inputs now
	// and keep each input's compiled filter for refresh-time delta
	// filtering.
	filters := make([]func(relation.Tuple) bool, len(rels))
	for i, r := range q.Relations {
		var mine []core.ConstSel
		for _, c := range q.Selections {
			if r.Schema.Contains(c.A) {
				mine = append(mine, c)
			}
		}
		if len(mine) > 0 {
			cols := make([]int, len(mine))
			for j, c := range mine {
				cols[j] = r.Schema.Index(c.A)
			}
			filters[i] = func(t relation.Tuple) bool {
				for j, c := range mine {
					if !c.Match(t[cols[j]]) {
						return false
					}
				}
				return true
			}
			q.Relations[i] = r.Select(filters[i])
		}
	}
	// Tiered planning: greedy by default, exhaustive when the cost model
	// asks for it, never a budget error (see planTree).
	classes, schemas := q.Classes(), q.Schemas()
	tr, cost, greedy, err := db.planTree(classes, schemas)
	if err != nil {
		return nil, err
	}
	// Grouped aggregation: restructure the optimal tree once, at compile
	// time, so the group-by attributes label nodes above every aggregated
	// one. Exec-time builds then produce the lifted layout directly and the
	// aggregation pass is linear in the representation size — no data
	// movement per Exec.
	if len(s.groupBy) > 0 {
		if err := (fplan.Lift{Attrs: s.groupBy}).ApplyTree(tr); err != nil {
			return nil, err
		}
	}
	// Order-aware planning: sibling and root order are semantically free, so
	// first try to reorder the optimal tree until the ORDER BY keys label the
	// front of its pre-order walk (streaming order, no sort). If the shape
	// itself is in the way, search for the cheapest order-compatible tree and
	// take it when the cost model approves — equal cost always, half a cover
	// unit of slack when a Limit makes top-k short-circuiting worth it.
	// Otherwise the statement keeps the optimal tree and retrieval falls back
	// to a bounded heap at Exec time.
	streamable := false
	var ochain []int
	if len(s.orderBy) > 0 {
		ochain = orderChain(q, s.orderBy)
		// A successful reorder is verified against the order property it
		// claims to establish.
		streamable = fplan.ReorderForOrder(tr, s.orderBy) && fplan.OrderCompatible(tr, s.orderBy)
		if !streamable {
			ot, ocost, ogreedy, oerr := db.planOrderedTree(classes, schemas, ochain)
			switch {
			case oerr == nil:
				if opt.PreferOrdered(cost, ocost, s.limit >= 0) && fplan.ReorderForOrder(ot, s.orderBy) {
					tr, cost, greedy = ot, ocost, ogreedy
					streamable = true
				}
			case errors.Is(oerr, opt.ErrOrderIncompatible):
				// No f-tree of this query streams the requested order;
				// retrieval falls back to the bounded heap at Exec time.
			default:
				return nil, oerr
			}
		}
	}
	// Sort every snapshot in its f-tree path order once; Exec-time builds
	// then see pre-sorted inputs and never mutate the shared snapshots.
	if err := fbuild.SortFor(q.Relations, tr); err != nil {
		return nil, err
	}
	inputs := make([]stmtInput, len(s.from))
	vers := make([]uint64, len(s.from))
	for i := range s.from {
		idx, err := fbuild.SortIndex(q.Relations[i], tr)
		if err != nil {
			return nil, err
		}
		attrs := make([]relation.Attribute, len(idx))
		for j, c := range idx {
			attrs[j] = q.Relations[i].Schema[c]
		}
		inputs[i] = stmtInput{store: stores[i], filter: filters[i], sortIdx: idx, sortAttrs: attrs}
		vers[i] = states[i].Ver
	}
	st := &Stmt{
		db:       db,
		psels:    psels,
		dsels:    dsels,
		params:   params,
		project:  s.project,
		groupBy:  s.groupBy,
		aggs:     s.aggs,
		order:    s.orderBy,
		offset:   s.offset,
		limit:    s.limit,
		distinct: s.distinct,
		par:      s.par,
		classes:  classes,
		schemas:  schemas,
		ochain:   ochain,
		snap:     snap,
	}
	p := &stmtPlan{tree: tr, inputs: inputs, cost: cost, streamable: streamable, greedy: greedy}
	p.data.Store(&stmtData{rels: q.Relations, vers: vers})
	st.plan.Store(p)
	return st, nil
}

// pin derives a statement bound to the snapshot's pinned versions from an
// already-compiled live statement, sharing the compiled plan — f-tree,
// parameter slots, baked filters and sort permutations — and paying only
// the input re-snapshot (dedup, constant pre-filter, path sort). This is
// the server front-end's path for executing a cached statement under a
// per-connection snapshot: clause validation and f-tree search are never
// repeated per (statement, snapshot) pair. The pinned statement never
// refreshes and fails loudly once the snapshot is closed.
func (st *Stmt) pin(snap *Snapshot) (*Stmt, error) {
	if st.snap != nil {
		return nil, fmt.Errorf("fdb: statement is already pinned to a snapshot")
	}
	if snap.isClosed() {
		return nil, errSnapshotClosed
	}
	ns := &Stmt{
		db:       st.db,
		psels:    st.psels,
		dsels:    st.dsels,
		params:   st.params,
		project:  st.project,
		groupBy:  st.groupBy,
		aggs:     st.aggs,
		order:    st.order,
		offset:   st.offset,
		limit:    st.limit,
		distinct: st.distinct,
		par:      st.par,
		classes:  st.classes,
		schemas:  st.schemas,
		ochain:   st.ochain,
		snap:     snap,
	}
	// One plan load: the pinned statement shares whichever consistent
	// (tree, inputs) pair is current — promotion of the source statement
	// can race but never tear. greedy is cleared: a pinned statement is
	// never cached, so it can never be promoted.
	p := st.plan.Load()
	np := &stmtPlan{tree: p.tree, inputs: p.inputs, cost: p.cost, streamable: p.streamable}
	rels := make([]*relation.Relation, len(p.inputs))
	vers := make([]uint64, len(p.inputs))
	for i, in := range p.inputs {
		state, ok := snap.states[in.store.Name]
		if !ok {
			return nil, fmt.Errorf("fdb: relation %q created after the snapshot", in.store.Name)
		}
		rels[i] = p.resnapInput(i, state)
		vers[i] = state.Ver
	}
	np.data.Store(&stmtData{rels: rels, vers: vers})
	ns.plan.Store(np)
	return ns, nil
}

// snapRelation derives a private, mutable snapshot of a state's live
// relation: a fresh tuple-slice header over shared (read-only) tuples.
func snapRelation(st *delta.State) *relation.Relation {
	live := st.Live()
	r := relation.New(live.Name, live.Schema)
	r.Tuples = append(make([]relation.Tuple, 0, len(live.Tuples)), live.Tuples...)
	r.Dedup()
	return r
}

// orderChain maps the ORDER BY keys to their attribute-class indices, in key
// order with repeats dropped — the chain OptimalFTreeOrdered pins to the
// front of the pre-order walk.
func orderChain(q *core.Query, keys []frep.OrderKey) []int {
	classes := q.Classes()
	var chain []int
	seen := map[int]bool{}
	for _, k := range keys {
		for i, c := range classes {
			if c.Has(k.Attr) {
				if !seen[i] {
					seen[i] = true
					chain = append(chain, i)
				}
				break
			}
		}
	}
	return chain
}

// parallelism resolves the worker count for one execution: the statement's
// WithParallelism override if present, else the database-wide setting.
func (st *Stmt) parallelism() int {
	if st.par > 0 {
		return st.par
	}
	return st.db.Parallelism()
}

// Params lists the statement's parameter names in declaration order.
func (st *Stmt) Params() []string { return append([]string(nil), st.params...) }

// Aggregates lists the statement's aggregate column labels in declaration
// order; empty for a plain select-project-join statement. Statements with
// aggregates run through ExecAgg, all others through Exec.
func (st *Stmt) Aggregates() []string {
	out := make([]string, len(st.aggs))
	for i, s := range st.aggs {
		out[i] = s.Label()
	}
	return out
}

// Cost returns the cost s(T) of the statement's compiled f-tree (the
// promoted tree's cost once a background promotion has landed).
func (st *Stmt) Cost() float64 { return st.plan.Load().cost }

// GreedyPlanned reports whether the statement's current f-tree came from
// the greedy planning tier (false once escalation or promotion has
// replaced it with an exhaustively searched tree).
func (st *Stmt) GreedyPlanned() bool { return st.plan.Load().greedy }

// OrderStreamable reports whether the compiled f-tree streams the
// statement's ORDER BY structurally (no sort; Limit short-circuits). It is
// trivially false without an OrderBy clause. A projection applied at Exec
// time can still restructure the tree, in which case retrieval re-checks and
// may fall back to the bounded-heap sort.
func (st *Stmt) OrderStreamable() bool { return st.plan.Load().streamable }

// FTree renders the statement's compiled f-tree.
func (st *Stmt) FTree() string { return st.plan.Load().tree.String() }

// Exec runs the compiled statement with the given parameter bindings and
// returns a fresh factorised result. Safe for concurrent callers.
// Statements with Agg clauses must use ExecAgg instead.
func (st *Stmt) Exec(args ...NamedArg) (*Result, error) {
	return st.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation: the factorisation build and the
// baked projection observe ctx and abort with its error.
func (st *Stmt) ExecContext(ctx context.Context, args ...NamedArg) (*Result, error) {
	if len(st.aggs) > 0 {
		return nil, fmt.Errorf("fdb: statement computes aggregates; use ExecAgg")
	}
	fr, err := st.buildContext(ctx, args)
	if err != nil {
		return nil, err
	}
	if st.distinct {
		// Projection already yields set semantics; δ normalises and makes the
		// guarantee explicit (a no-op pass on every engine-built rep).
		fr, err = fplan.ApplyEnc(fplan.Distinct{}, fr)
		if err != nil {
			return nil, err
		}
	}
	res := newResult(st.db, fr)
	if len(st.order) > 0 || st.offset > 0 || st.limit >= 0 {
		res.order = st.order
		res.offset = st.offset
		res.limit = st.limit
		res.less = st.db.orderLess()
	}
	return res, nil
}

// ExecAgg runs a compiled aggregation statement (one with Agg clauses,
// optionally GroupBy) and returns its aggregate rows. The aggregates are
// computed in one pass over the factorised result, in time proportional to
// its factorised size — the flat relation is never enumerated. Safe for
// concurrent callers.
func (st *Stmt) ExecAgg(args ...NamedArg) (*AggResult, error) {
	return st.ExecAggContext(context.Background(), args...)
}

// ExecAggContext is ExecAgg with cancellation.
func (st *Stmt) ExecAggContext(ctx context.Context, args ...NamedArg) (*AggResult, error) {
	if len(st.aggs) == 0 {
		return nil, fmt.Errorf("fdb: statement has no aggregates; use Exec")
	}
	fr, err := st.buildContext(ctx, args)
	if err != nil {
		return nil, err
	}
	rows, err := fr.AggregateParallel(st.groupBy, st.aggs, st.parallelism())
	if err != nil {
		return nil, err
	}
	return &AggResult{db: st.db, groupBy: st.groupBy, specs: st.aggs, rows: rows}, nil
}

// current reports whether d reflects every input store's current version.
func (p *stmtPlan) current(d *stmtData) bool {
	for i := range p.inputs {
		if p.inputs[i].store.State().Ver != d.vers[i] {
			return false
		}
	}
	return true
}

// refresh brings the statement's input snapshots up to the relations'
// current versions. The fast path is len(inputs) atomic loads; behind them,
// the slow path captures a consistent cut under the database read lock,
// folds each changed relation's net delta into its sorted snapshot with a
// linear merge (or re-snapshots wholesale when the history was compacted
// away), and — for parameter-free statements with a small enough delta —
// patches the cached encoded representation in place of the next rebuild.
// Pinned (snapshot-bound) statements never refresh. refresh operates on
// one plan: a promotion landing concurrently publishes its own fresh data
// with the new plan, so refreshing the plan an execution already loaded is
// always consistent.
func (st *Stmt) refresh(p *stmtPlan) {
	if st.snap != nil {
		return
	}
	d := p.data.Load()
	if p.current(d) {
		return
	}
	st.refreshMu.Lock()
	defer st.refreshMu.Unlock()
	d = p.data.Load()
	if p.current(d) {
		return
	}
	// A consistent cut: no writer commits between the state loads.
	states := make([]*delta.State, len(p.inputs))
	st.db.mu.RLock()
	for i := range p.inputs {
		states[i] = p.inputs[i].store.State()
	}
	st.db.mu.RUnlock()

	nd := &stmtData{
		rels: make([]*relation.Relation, len(p.inputs)),
		vers: make([]uint64, len(p.inputs)),
	}
	deltas := make([]fbuild.RelDelta, len(p.inputs))
	resnap := false
	deltaTuples, totalTuples := 0, 0
	for i, in := range p.inputs {
		nd.vers[i] = states[i].Ver
		if states[i].Ver == d.vers[i] {
			nd.rels[i] = d.rels[i]
			totalTuples += d.rels[i].Cardinality()
			continue
		}
		adds, dels, ok := states[i].NetSince(d.vers[i])
		if !ok {
			// The history below our version was compacted away: rebuild
			// this input from the new base (the plan stays compiled).
			nd.rels[i] = p.resnapInput(i, states[i])
			totalTuples += nd.rels[i].Cardinality()
			resnap = true
			continue
		}
		if in.filter != nil {
			adds = filterTuples(adds, in.filter)
			dels = filterTuples(dels, in.filter)
		}
		nd.rels[i], deltas[i] = mergeSortedDelta(d.rels[i], adds, dels, in.sortIdx)
		deltaTuples += len(deltas[i].Adds) + len(deltas[i].Dels)
		totalTuples += nd.rels[i].Cardinality()
	}
	// Incremental maintenance of the cached representation: worth it only
	// for statements with no per-Exec selections (others build per Exec
	// anyway), with an encoding to patch, no wholesale re-snapshot, and a
	// delta small enough that patching beats the morsel-parallel rebuild.
	if len(st.psels) == 0 && len(st.dsels) == 0 && !resnap && deltaTuples > 0 &&
		float64(deltaTuples) <= mergeMaxFrac*float64(max(totalTuples, 1)) {
		d.mu.Lock()
		old := d.enc
		d.mu.Unlock()
		if old != nil {
			if enc, ok, err := fbuild.MergeEnc(nd.rels, p.tree.Clone(), old, deltas); err == nil && ok {
				nd.enc = enc
			}
		}
	}
	p.data.Store(nd)
}

// resnapInput rebuilds input i's snapshot from a state: dedup, constant
// pre-filter, path sort — the same pipeline Prepare ran.
func (p *stmtPlan) resnapInput(i int, state *delta.State) *relation.Relation {
	r := snapRelation(state)
	if f := p.inputs[i].filter; f != nil {
		r = r.Filter(f)
	}
	r.SortBy(p.inputs[i].sortAttrs)
	return r
}

// filterTuples returns the tuples passing f (allocation-free when all do).
func filterTuples(ts []relation.Tuple, f func(relation.Tuple) bool) []relation.Tuple {
	keep := ts[:0:0]
	for _, t := range ts {
		if f(t) {
			keep = append(keep, t)
		}
	}
	return keep
}

// mergeSortedDelta applies a net delta to a sorted, deduplicated snapshot
// with one linear merge in the snapshot's sort order (the column
// permutation idx), returning the new snapshot (sharing tuple storage with
// the old) and the delta actually applied: additions not already present
// and removals actually found — the touched set the representation merge
// patches.
func mergeSortedDelta(old *relation.Relation, adds, dels []relation.Tuple, idx []int) (*relation.Relation, fbuild.RelDelta) {
	cmp := func(a, b relation.Tuple) int {
		for _, c := range idx {
			if a[c] != b[c] {
				if a[c] < b[c] {
					return -1
				}
				return 1
			}
		}
		return 0
	}
	sortTuples := func(ts []relation.Tuple) []relation.Tuple {
		out := append(make([]relation.Tuple, 0, len(ts)), ts...)
		sort.Slice(out, func(i, j int) bool { return cmp(out[i], out[j]) < 0 })
		return out
	}
	adds, dels = sortTuples(adds), sortTuples(dels)
	var applied fbuild.RelDelta
	out := relation.New(old.Name, old.Schema)
	out.Tuples = make([]relation.Tuple, 0, len(old.Tuples)+len(adds))
	ai, di := 0, 0
	for _, t := range old.Tuples {
		for di < len(dels) && cmp(dels[di], t) < 0 {
			di++ // removal of an absent tuple: no-op
		}
		if di < len(dels) && cmp(dels[di], t) == 0 {
			applied.Dels = append(applied.Dels, t)
			di++
			continue
		}
		for ai < len(adds) && cmp(adds[ai], t) < 0 {
			out.Tuples = append(out.Tuples, adds[ai])
			applied.Adds = append(applied.Adds, adds[ai])
			ai++
		}
		if ai < len(adds) && cmp(adds[ai], t) == 0 {
			ai++ // addition of a present tuple: no-op
		}
		out.Tuples = append(out.Tuples, t)
	}
	for ; ai < len(adds); ai++ {
		out.Tuples = append(out.Tuples, adds[ai])
		applied.Adds = append(applied.Adds, adds[ai])
	}
	return out, applied
}

// buildContext binds parameters and builds the statement's factorised
// result — straight into the arena-backed columnar encoding, never through
// the pointer form: the shared evaluation path behind ExecContext and
// ExecAggContext. Parameter-free statements memoise the pre-projection
// encoding per input version (so a read-mostly workload re-executes from
// the cached arena); parameterised ones filter and build per call.
func (st *Stmt) buildContext(ctx context.Context, args []NamedArg) (*frep.Enc, error) {
	if st.snap != nil && st.snap.isClosed() {
		return nil, errSnapshotClosed
	}
	// Bindings stay raw Go values here: a string argument must resolve
	// through the read-only dictionary path below (Lookup / decoded-order
	// predicate), never by minting a code for it.
	bound := make(map[string]interface{}, len(args))
	for _, a := range args {
		known := false
		for _, p := range st.params {
			if p == a.Name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("fdb: unknown parameter %q", a.Name)
		}
		if _, dup := bound[a.Name]; dup {
			return nil, fmt.Errorf("fdb: parameter %q bound twice", a.Name)
		}
		switch a.Value.(type) {
		case int, int64, relation.Value, string:
		default:
			return nil, fmt.Errorf("fdb: unsupported value type %T", a.Value)
		}
		bound[a.Name] = a.Value
	}
	for _, p := range st.params {
		if _, ok := bound[p]; !ok {
			return nil, fmt.Errorf("fdb: missing parameter %q", p)
		}
	}

	// One plan load per execution: tree, inputs and data stay mutually
	// consistent even if a promotion swaps the statement's plan mid-flight.
	p := st.plan.Load()
	st.refresh(p)
	d := p.data.Load()

	if len(st.psels) == 0 && len(st.dsels) == 0 {
		fr, err := st.cachedEnc(ctx, p, d)
		if err != nil {
			return nil, err
		}
		return st.applyProject(ctx, fr)
	}

	// Resolve this execution's selections — bound parameters and dynamic
	// string comparisons — into per-relation column predicates, then filter
	// the affected snapshots. Filter shares tuple storage and preserves
	// order, so the filtered inputs stay sorted and the shared snapshots
	// stay untouched.
	byRel := map[int][]execSel{}
	addSel := func(ri, col int, op fplan.Cmp, val interface{}) error {
		var pred func(relation.Value) bool
		if s, isStr := val.(string); isStr {
			pred = st.db.stringSelPred(op, s)
		} else {
			v, err := st.db.encode(val)
			if err != nil {
				return err
			}
			cs := core.ConstSel{Op: op, C: v}
			pred = cs.Match
		}
		byRel[ri] = append(byRel[ri], execSel{col: col, pred: pred})
		return nil
	}
	for _, ps := range st.psels {
		if err := addSel(ps.rel, ps.col, ps.op, bound[ps.name]); err != nil {
			return nil, err
		}
	}
	for _, ds := range st.dsels {
		if err := addSel(ds.rel, ds.col, ds.op, ds.s); err != nil {
			return nil, err
		}
	}
	rels := append([]*relation.Relation(nil), d.rels...)
	for ri, sels := range byRel {
		sels := sels
		rels[ri] = rels[ri].Filter(func(t relation.Tuple) bool {
			for _, es := range sels {
				if !es.pred(t[es.col]) {
					return false
				}
			}
			return true
		})
	}
	// Each Exec gets its own tree: the encoded representation owns it, and
	// downstream operators derive fresh trees from it. The build is
	// morsel-parallel when the execution's parallelism allows it.
	fr, err := fbuild.BuildEncParallelContext(ctx, rels, p.tree.Clone(), st.parallelism())
	if err != nil {
		return nil, err
	}
	return st.applyProject(ctx, fr)
}

// cachedEnc returns d's memoised pre-projection encoding, building it on
// first use. Encoded representations are immutable, so handing the same
// *Enc to every Exec at this version is free sharing, not aliasing.
func (st *Stmt) cachedEnc(ctx context.Context, p *stmtPlan, d *stmtData) (*frep.Enc, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.enc == nil {
		// A database opened from a snapshot file may hold a pre-built arena
		// for exactly this plan at exactly these input versions; adopting it
		// skips the build entirely (the arena stays in the mapped file).
		if enc := st.adoptSaved(p, d); enc != nil {
			d.enc = enc
			return d.enc, nil
		}
		enc, err := fbuild.BuildEncParallelContext(ctx, d.rels, p.tree.Clone(), st.parallelism())
		if err != nil {
			return nil, err
		}
		d.enc = enc
	}
	return d.enc, nil
}

// applyProject bakes the statement's projection into the result (a pure
// encoded operator: the shared input is never mutated).
func (st *Stmt) applyProject(ctx context.Context, fr *frep.Enc) (*frep.Enc, error) {
	if st.project == nil {
		return fr, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return fplan.ApplyEnc(fplan.Project{Attrs: st.project}, fr)
}

// promote is the background half of plan promotion: rerun the budgeted
// exhaustive search over the statement's (data-independent) classes and
// schemas, and if it finds a strictly cheaper tree, assemble a complete new
// plan — lifted for group-by, order-checked, inputs re-snapshotted and
// path-sorted — and swap it in atomically. Every failure mode (budget
// exhaustion, no improvement, a lost order property) simply keeps the
// greedy plan; promotion can never break a working statement.
func (st *Stmt) promote() {
	db := st.db
	old := st.plan.Load()
	db.pstats.escalations.Add(1)
	tr, cost, err := opt.OptimalFTree(st.classes, st.schemas, db.plannerBudgetOpts())
	if err != nil {
		if errors.Is(err, opt.ErrBudget) {
			db.pstats.fallbacks.Add(1)
		}
		return
	}
	if len(st.groupBy) > 0 {
		if err := (fplan.Lift{Attrs: st.groupBy}).ApplyTree(tr); err != nil {
			return
		}
	}
	streamable := false
	if len(st.order) > 0 {
		streamable = fplan.ReorderForOrder(tr, st.order) && fplan.OrderCompatible(tr, st.order)
		if !streamable {
			if ot, ocost, oerr := opt.OptimalFTreeOrdered(st.classes, st.schemas, st.ochain, db.plannerBudgetOpts()); oerr == nil &&
				opt.PreferOrdered(cost, ocost, st.limit >= 0) && fplan.ReorderForOrder(ot, st.order) {
				tr, cost = ot, ocost
				streamable = true
			}
		}
		// Never trade the order property away: a promoted plan that stopped
		// streaming would silently re-introduce the heap sort.
		if old.streamable && !streamable {
			return
		}
	}
	if cost >= old.cost-1e-9 {
		return
	}
	np, err := st.assemblePlan(old, tr, cost, streamable)
	if err != nil {
		return
	}
	st.plan.Store(np)
	db.pstats.promotions.Add(1)
}

// assemblePlan compiles the execution half of a plan around a chosen tree:
// a consistent snapshot cut of the old plan's stores, the baked constant
// pre-filters, the tree's path sort and per-input sort permutations — the
// same pipeline prepareSpec runs, re-derived for the new tree.
func (st *Stmt) assemblePlan(old *stmtPlan, tr *ftree.T, cost float64, streamable bool) (*stmtPlan, error) {
	states := make([]*delta.State, len(old.inputs))
	st.db.mu.RLock()
	for i := range old.inputs {
		states[i] = old.inputs[i].store.State()
	}
	st.db.mu.RUnlock()
	rels := make([]*relation.Relation, len(old.inputs))
	vers := make([]uint64, len(old.inputs))
	for i, in := range old.inputs {
		r := snapRelation(states[i])
		if in.filter != nil {
			r = r.Filter(in.filter)
		}
		rels[i] = r
		vers[i] = states[i].Ver
	}
	if err := fbuild.SortFor(rels, tr); err != nil {
		return nil, err
	}
	inputs := make([]stmtInput, len(old.inputs))
	for i, in := range old.inputs {
		idx, err := fbuild.SortIndex(rels[i], tr)
		if err != nil {
			return nil, err
		}
		attrs := make([]relation.Attribute, len(idx))
		for j, c := range idx {
			attrs[j] = rels[i].Schema[c]
		}
		inputs[i] = stmtInput{store: in.store, filter: in.filter, sortIdx: idx, sortAttrs: attrs}
	}
	p := &stmtPlan{tree: tr, inputs: inputs, cost: cost, streamable: streamable}
	p.data.Store(&stmtData{rels: rels, vers: vers})
	return p, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
