package fdb

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/fbuild"
	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/ftree"
	"repro/internal/opt"
	"repro/internal/relation"
)

// Stmt is a compiled, reusable select-project-join statement. Prepare pays
// the expensive part of query evaluation once — clause validation, input
// snapshot (clone + dedup + constant pre-filtering), optimal f-tree search,
// and sorting every input in its f-tree path order — so that each Exec only
// binds parameters, filters, and builds the factorised result.
//
// A Stmt snapshots its input relations at Prepare time: Inserts after
// Prepare are not visible to Exec. Exec is safe for concurrent callers; the
// shared snapshots are never mutated after Prepare.
type Stmt struct {
	db         *DB
	tree       *ftree.T             // optimal f-tree of the compiled query
	rels       []*relation.Relation // deduped, pre-filtered, path-sorted snapshots
	psels      []paramSel           // parameterised selections, bound at Exec
	params     []string             // distinct parameter names, declaration order
	project    []relation.Attribute // nil: keep all attributes
	groupBy    []relation.Attribute // aggregation statements: group-by attributes
	aggs       []frep.AggSpec       // aggregation statements: aggregates to compute
	order      []frep.OrderKey      // ORDER BY keys; empty: enumeration order
	offset     int                  // tuples to skip
	limit      int                  // result cap; -1: none
	distinct   bool                 // explicit set-semantics normalisation
	streamable bool                 // the compiled tree streams the ORDER BY
	cost       float64              // s(T) of the optimal f-tree
	par        int                  // WithParallelism override; 0 = inherit from the DB
}

// paramSel is one compiled parameterised selection: column col of input
// relation rel compared against the value bound to the named parameter.
type paramSel struct {
	rel  int
	col  int
	op   fplan.Cmp
	name string
}

// NamedArg binds a parameter name to a value for Exec; create it with Arg.
type NamedArg struct {
	Name  string
	Value interface{}
}

// Arg binds the named Param placeholder to a value (int, int64 or string).
func Arg(name string, value interface{}) NamedArg { return NamedArg{Name: name, Value: value} }

// Prepare compiles a select-project-join query into a reusable statement.
// Selections whose value is a Param placeholder are compiled into the plan
// and bound per Exec; all other clauses are fixed at Prepare time.
func (db *DB) Prepare(clauses ...Clause) (*Stmt, error) {
	s, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	return db.prepareSpec(s)
}

// prepareSpec is the shared compile path behind Prepare and Query.
func (db *DB) prepareSpec(s *spec) (*Stmt, error) {
	if len(s.from) == 0 {
		return nil, fmt.Errorf("fdb: query needs From(...)")
	}
	// Snapshot the inputs under the read lock; dedup outside it.
	db.mu.RLock()
	rels := make([]*relation.Relation, len(s.from))
	for i, name := range s.from {
		r, ok := db.rels[name]
		if !ok {
			db.mu.RUnlock()
			return nil, fmt.Errorf("fdb: unknown relation %q", name)
		}
		rels[i] = r.Clone()
	}
	db.mu.RUnlock()
	for _, r := range rels {
		r.Dedup()
	}

	// Split selections: constants are encoded and pre-filtered now,
	// parameters become placeholders resolved per Exec.
	var consts []core.ConstSel
	var psels []paramSel
	params := s.params()
	for _, sel := range s.sels {
		p, isParam := sel.val.(ParamValue)
		if !isParam {
			v, err := db.encode(sel.val)
			if err != nil {
				return nil, err
			}
			consts = append(consts, core.ConstSel{A: sel.attr, Op: sel.op, C: v})
			continue
		}
		ri, ci := -1, -1
		for i, r := range rels {
			if j := r.Schema.Index(sel.attr); j >= 0 {
				ri, ci = i, j
				break
			}
		}
		if ri < 0 {
			return nil, fmt.Errorf("fdb: selection on unknown attribute %q", sel.attr)
		}
		psels = append(psels, paramSel{rel: ri, col: ci, op: sel.op, name: p.name})
	}

	q := &core.Query{Relations: rels, Equalities: s.eqs, Selections: consts, Projection: s.project}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if len(s.groupBy) > 0 && len(s.aggs) == 0 {
		return nil, fmt.Errorf("fdb: GroupBy needs at least one Agg clause")
	}
	if len(s.aggs) > 0 && (len(s.orderBy) > 0 || s.limit >= 0 || s.offset > 0 || s.distinct) {
		return nil, fmt.Errorf("fdb: OrderBy/Limit/Offset/Distinct apply to tuple results; aggregate rows are already sorted by group key")
	}
	if len(s.orderBy) > 0 {
		out := relation.AttrSet{}
		if s.project != nil {
			for _, a := range s.project {
				out.Add(a)
			}
		} else {
			for _, r := range rels {
				for _, a := range r.Schema {
					out.Add(a)
				}
			}
		}
		for _, k := range s.orderBy {
			if !out.Has(k.Attr) {
				return nil, fmt.Errorf("fdb: order-by attribute %q not in the result", k.Attr)
			}
		}
	}
	if len(s.aggs) > 0 {
		if s.project != nil {
			return nil, fmt.Errorf("fdb: Project cannot be combined with aggregates (GroupBy defines the output columns)")
		}
		all := relation.AttrSet{}
		for _, r := range rels {
			for _, a := range r.Schema {
				all.Add(a)
			}
		}
		seen := relation.AttrSet{}
		for _, a := range s.groupBy {
			if seen.Has(a) {
				return nil, fmt.Errorf("fdb: duplicate group-by attribute %q", a)
			}
			seen.Add(a)
			if !all.Has(a) {
				return nil, fmt.Errorf("fdb: group-by attribute %q not in any input relation", a)
			}
		}
		for _, sp := range s.aggs {
			if sp.Fn != frep.AggCount && !all.Has(sp.Attr) {
				return nil, fmt.Errorf("fdb: aggregate attribute %q not in any input relation", sp.Attr)
			}
		}
	}
	// Constant selections are cheapest first (Section 4): filter inputs.
	for i, r := range q.Relations {
		var mine []core.ConstSel
		for _, c := range q.Selections {
			if r.Schema.Contains(c.A) {
				mine = append(mine, c)
			}
		}
		if len(mine) > 0 {
			cols := make([]int, len(mine))
			for j, c := range mine {
				cols[j] = r.Schema.Index(c.A)
			}
			q.Relations[i] = r.Select(func(t relation.Tuple) bool {
				for j, c := range mine {
					if !c.Match(t[cols[j]]) {
						return false
					}
				}
				return true
			})
		}
	}
	tr, cost, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
	if err != nil {
		return nil, err
	}
	// Grouped aggregation: restructure the optimal tree once, at compile
	// time, so the group-by attributes label nodes above every aggregated
	// one. Exec-time builds then produce the lifted layout directly and the
	// aggregation pass is linear in the representation size — no data
	// movement per Exec.
	if len(s.groupBy) > 0 {
		if err := (fplan.Lift{Attrs: s.groupBy}).ApplyTree(tr); err != nil {
			return nil, err
		}
	}
	// Order-aware planning: sibling and root order are semantically free, so
	// first try to reorder the optimal tree until the ORDER BY keys label the
	// front of its pre-order walk (streaming order, no sort). If the shape
	// itself is in the way, search for the cheapest order-compatible tree and
	// take it when the cost model approves — equal cost always, half a cover
	// unit of slack when a Limit makes top-k short-circuiting worth it.
	// Otherwise the statement keeps the optimal tree and retrieval falls back
	// to a bounded heap at Exec time.
	streamable := false
	if len(s.orderBy) > 0 {
		// A successful reorder is verified against the order property it
		// claims to establish.
		streamable = fplan.ReorderForOrder(tr, s.orderBy) && fplan.OrderCompatible(tr, s.orderBy)
		if !streamable {
			chain := orderChain(q, s.orderBy)
			if ot, ocost, oerr := opt.OptimalFTreeOrdered(q.Classes(), q.Schemas(), chain, opt.TreeSearchOptions{}); oerr == nil &&
				opt.PreferOrdered(cost, ocost, s.limit >= 0) && fplan.ReorderForOrder(ot, s.orderBy) {
				tr, cost = ot, ocost
				streamable = true
			}
		}
	}
	// Sort every snapshot in its f-tree path order once; Exec-time builds
	// then see pre-sorted inputs and never mutate the shared snapshots.
	if err := fbuild.SortFor(q.Relations, tr); err != nil {
		return nil, err
	}
	return &Stmt{
		db:         db,
		tree:       tr,
		rels:       q.Relations,
		psels:      psels,
		params:     params,
		project:    s.project,
		groupBy:    s.groupBy,
		aggs:       s.aggs,
		order:      s.orderBy,
		offset:     s.offset,
		limit:      s.limit,
		distinct:   s.distinct,
		streamable: streamable,
		cost:       cost,
		par:        s.par,
	}, nil
}

// orderChain maps the ORDER BY keys to their attribute-class indices, in key
// order with repeats dropped — the chain OptimalFTreeOrdered pins to the
// front of the pre-order walk.
func orderChain(q *core.Query, keys []frep.OrderKey) []int {
	classes := q.Classes()
	var chain []int
	seen := map[int]bool{}
	for _, k := range keys {
		for i, c := range classes {
			if c.Has(k.Attr) {
				if !seen[i] {
					seen[i] = true
					chain = append(chain, i)
				}
				break
			}
		}
	}
	return chain
}

// parallelism resolves the worker count for one execution: the statement's
// WithParallelism override if present, else the database-wide setting.
func (st *Stmt) parallelism() int {
	if st.par > 0 {
		return st.par
	}
	return st.db.Parallelism()
}

// Params lists the statement's parameter names in declaration order.
func (st *Stmt) Params() []string { return append([]string(nil), st.params...) }

// Aggregates lists the statement's aggregate column labels in declaration
// order; empty for a plain select-project-join statement. Statements with
// aggregates run through ExecAgg, all others through Exec.
func (st *Stmt) Aggregates() []string {
	out := make([]string, len(st.aggs))
	for i, s := range st.aggs {
		out[i] = s.Label()
	}
	return out
}

// Cost returns the cost s(T) of the statement's optimal f-tree.
func (st *Stmt) Cost() float64 { return st.cost }

// OrderStreamable reports whether the compiled f-tree streams the
// statement's ORDER BY structurally (no sort; Limit short-circuits). It is
// trivially false without an OrderBy clause. A projection applied at Exec
// time can still restructure the tree, in which case retrieval re-checks and
// may fall back to the bounded-heap sort.
func (st *Stmt) OrderStreamable() bool { return st.streamable }

// FTree renders the statement's compiled f-tree.
func (st *Stmt) FTree() string { return st.tree.String() }

// Exec runs the compiled statement with the given parameter bindings and
// returns a fresh factorised result. Safe for concurrent callers.
// Statements with Agg clauses must use ExecAgg instead.
func (st *Stmt) Exec(args ...NamedArg) (*Result, error) {
	return st.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation: the factorisation build and the
// baked projection observe ctx and abort with its error.
func (st *Stmt) ExecContext(ctx context.Context, args ...NamedArg) (*Result, error) {
	if len(st.aggs) > 0 {
		return nil, fmt.Errorf("fdb: statement computes aggregates; use ExecAgg")
	}
	fr, err := st.buildContext(ctx, args)
	if err != nil {
		return nil, err
	}
	if st.distinct {
		// Projection already yields set semantics; δ normalises and makes the
		// guarantee explicit (a no-op pass on every engine-built rep).
		fr, err = fplan.ApplyEnc(fplan.Distinct{}, fr)
		if err != nil {
			return nil, err
		}
	}
	res := newResult(st.db, fr)
	if len(st.order) > 0 || st.offset > 0 || st.limit >= 0 {
		res.order = st.order
		res.offset = st.offset
		res.limit = st.limit
		res.less = st.db.orderLess()
	}
	return res, nil
}

// ExecAgg runs a compiled aggregation statement (one with Agg clauses,
// optionally GroupBy) and returns its aggregate rows. The aggregates are
// computed in one pass over the factorised result, in time proportional to
// its factorised size — the flat relation is never enumerated. Safe for
// concurrent callers.
func (st *Stmt) ExecAgg(args ...NamedArg) (*AggResult, error) {
	return st.ExecAggContext(context.Background(), args...)
}

// ExecAggContext is ExecAgg with cancellation.
func (st *Stmt) ExecAggContext(ctx context.Context, args ...NamedArg) (*AggResult, error) {
	if len(st.aggs) == 0 {
		return nil, fmt.Errorf("fdb: statement has no aggregates; use Exec")
	}
	fr, err := st.buildContext(ctx, args)
	if err != nil {
		return nil, err
	}
	rows, err := fr.AggregateParallel(st.groupBy, st.aggs, st.parallelism())
	if err != nil {
		return nil, err
	}
	return &AggResult{db: st.db, groupBy: st.groupBy, specs: st.aggs, rows: rows}, nil
}

// buildContext binds parameters and builds the statement's factorised
// result — straight into the arena-backed columnar encoding, never through
// the pointer form: the shared evaluation path behind ExecContext and
// ExecAggContext.
func (st *Stmt) buildContext(ctx context.Context, args []NamedArg) (*frep.Enc, error) {
	bound := make(map[string]relation.Value, len(args))
	for _, a := range args {
		known := false
		for _, p := range st.params {
			if p == a.Name {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("fdb: unknown parameter %q", a.Name)
		}
		if _, dup := bound[a.Name]; dup {
			return nil, fmt.Errorf("fdb: parameter %q bound twice", a.Name)
		}
		v, err := st.db.encode(a.Value)
		if err != nil {
			return nil, err
		}
		bound[a.Name] = v
	}
	for _, p := range st.params {
		if _, ok := bound[p]; !ok {
			return nil, fmt.Errorf("fdb: missing parameter %q", p)
		}
	}

	rels := st.rels
	if len(st.psels) > 0 {
		// Filter the affected snapshots with the bound constants. Filter
		// shares tuple storage and preserves order, so the filtered inputs
		// stay sorted and the shared snapshots stay untouched.
		rels = append([]*relation.Relation(nil), st.rels...)
		byRel := map[int][]core.ConstSel{}
		cols := map[int][]int{}
		for _, ps := range st.psels {
			byRel[ps.rel] = append(byRel[ps.rel], core.ConstSel{Op: ps.op, C: bound[ps.name]})
			cols[ps.rel] = append(cols[ps.rel], ps.col)
		}
		for ri, sels := range byRel {
			cs := cols[ri]
			rels[ri] = rels[ri].Filter(func(t relation.Tuple) bool {
				for i, c := range sels {
					if !c.Match(t[cs[i]]) {
						return false
					}
				}
				return true
			})
		}
	}

	// Each Exec gets its own tree: the encoded representation owns it, and
	// downstream operators derive fresh trees from it. The build is
	// morsel-parallel when the execution's parallelism allows it.
	fr, err := fbuild.BuildEncParallelContext(ctx, rels, st.tree.Clone(), st.parallelism())
	if err != nil {
		return nil, err
	}
	if st.project != nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fr, err = fplan.ApplyEnc(fplan.Project{Attrs: st.project}, fr)
		if err != nil {
			return nil, err
		}
	}
	return fr, nil
}
