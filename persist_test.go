package fdb

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// persistFixture builds a database with integer and string data, plus a
// warmed plan cache so the snapshot carries pre-built encodings.
func persistFixture(t *testing.T) (*DB, []Clause, []Clause) {
	t.Helper()
	db := New()
	db.MustCreate("Orders", "oid", "item")
	db.MustCreate("Stock", "location", "item")
	for i := 1; i <= 40; i++ {
		db.MustInsert("Orders", i, itemName(i%7))
		db.MustInsert("Stock", i%5, itemName(i%7))
	}
	join := []Clause{From("Orders"), From("Stock"), Eq("Orders.item", "Stock.item")}
	agg := []Clause{From("Orders"), From("Stock"), Eq("Orders.item", "Stock.item"),
		GroupBy("Stock.location"), Agg(Count, ""), Agg(Sum, "Orders.oid")}
	// Warm the plan cache so the statements memoise their encodings.
	if _, err := db.Query(join...); err != nil {
		t.Fatal(err)
	}
	if _, err := db.QueryAgg(agg...); err != nil {
		t.Fatal(err)
	}
	return db, join, agg
}

func itemName(i int) string {
	return []string{"ale", "bun", "cod", "dip", "egg", "fig", "gin"}[i]
}

func queryTable(t *testing.T, db *DB, clauses []Clause) string {
	t.Helper()
	res, err := db.Query(clauses...)
	if err != nil {
		t.Fatal(err)
	}
	return res.Table(-1)
}

func aggTable(t *testing.T, db *DB, clauses []Clause) string {
	t.Helper()
	res, err := db.QueryAgg(clauses...)
	if err != nil {
		t.Fatal(err)
	}
	return res.Table(-1)
}

func TestSaveOpenRoundTrip(t *testing.T) {
	db, join, agg := persistFixture(t)
	wantJoin := queryTable(t, db, join)
	wantAgg := aggTable(t, db, agg)

	path := filepath.Join(t.TempDir(), "snap.fdb")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Version() != db.Version() {
		t.Fatalf("opened version %d, want %d", db2.Version(), db.Version())
	}
	if got, want := db2.Relations(), db.Relations(); len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("opened relations %v, want %v", got, want)
	}
	// Byte-for-byte parity against the live database, strings included (the
	// dictionary round-trips with identical code assignment).
	if got := queryTable(t, db2, join); got != wantJoin {
		t.Fatalf("join table diverges after reopen:\n%s\nwant:\n%s", got, wantJoin)
	}
	if got := aggTable(t, db2, agg); got != wantAgg {
		t.Fatalf("agg table diverges after reopen:\n%s\nwant:\n%s", got, wantAgg)
	}
}

// TestOpenedSnapshotAdoptsEnc pins the zero-copy contract: the first query
// on a reopened database must adopt the snapshot-carried arena — sharing
// its backing storage — rather than rebuild.
func TestOpenedSnapshotAdoptsEnc(t *testing.T) {
	db, join, _ := persistFixture(t)
	path := filepath.Join(t.TempDir(), "snap.fdb")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(db2.adopted) == 0 {
		t.Fatal("opened database carries no adoptable encodings")
	}
	if _, err := db2.Query(join...); err != nil {
		t.Fatal(err)
	}
	adoptedOne := false
	for _, ce := range db2.cache.entries() {
		d := ce.stmt.plan.Load().data.Load()
		if d == nil {
			continue
		}
		d.mu.Lock()
		enc := d.enc
		d.mu.Unlock()
		ae := db2.adopted[ce.key]
		if enc == nil || ae == nil || len(enc.A.Vals) == 0 {
			continue
		}
		if &enc.A.Vals[0] == &ae.enc.A.Vals[0] {
			adoptedOne = true
		}
	}
	if !adoptedOne {
		t.Fatal("no cached statement adopted a snapshot-carried arena")
	}
}

// TestOpenedSnapshotWritable: a reopened database is a normal database —
// writes layer deltas over the mapped base and queries see them.
func TestOpenedSnapshotWritable(t *testing.T) {
	db, join, _ := persistFixture(t)
	path := filepath.Join(t.TempDir(), "snap.fdb")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	before, err := db2.Query(join...)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.Insert("Stock", 99, "ale"); err != nil {
		t.Fatal(err)
	}
	after, err := db2.Query(join...)
	if err != nil {
		t.Fatal(err)
	}
	if after.Count() <= before.Count() {
		t.Fatalf("insert after reopen invisible: %d -> %d", before.Count(), after.Count())
	}
	// And the mutated database still round-trips through a second snapshot.
	path2 := filepath.Join(t.TempDir(), "snap2.fdb")
	if err := db2.SaveSnapshot(path2); err != nil {
		t.Fatal(err)
	}
	db3, err := OpenSnapshotFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	again, err := db3.Query(join...)
	if err != nil {
		t.Fatal(err)
	}
	if again.Count() != after.Count() {
		t.Fatalf("second round trip diverges: %d, want %d", again.Count(), after.Count())
	}
}

// TestOpenSnapshotFileRejectsCorrupt: the public open path surfaces the
// store's typed format error.
func TestOpenSnapshotFileRejectsCorrupt(t *testing.T) {
	db, _, _ := persistFixture(t)
	path := filepath.Join(t.TempDir(), "snap.fdb")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.fdb")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenSnapshotFile(bad); !errors.Is(err, store.ErrFormat) {
		t.Fatalf("corrupted snapshot: got %v, want ErrFormat", err)
	}
	if _, err := OpenSnapshotFile(filepath.Join(t.TempDir(), "missing.fdb")); err == nil {
		t.Fatal("missing snapshot opened without error")
	}
}

// TestSaveSnapshotEmptyDB: the degenerate snapshot round-trips too.
func TestSaveSnapshotEmptyDB(t *testing.T) {
	db := New()
	db.MustCreate("Solo", "x")
	path := filepath.Join(t.TempDir(), "empty.fdb")
	if err := db.SaveSnapshot(path); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db2.Query(From("Solo"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 0 {
		t.Fatalf("empty relation reopened with %d tuples", res.Count())
	}
}
