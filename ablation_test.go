package fdb_test

// Ablation benchmarks for the design choices called out in DESIGN.md:
// the f-plan cost model (asymptotic s(T) vs catalogue estimates, §4.1),
// the optimiser (exhaustive vs greedy, §4.2/4.3), and the constant-delay
// enumeration claim of Section 2.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/fbuild"
	"repro/internal/frep"
	"repro/internal/gen"
	"repro/internal/opt"
	"repro/internal/relation"
	"repro/internal/stats"
)

// BenchmarkAblationCostModel runs the two cost models side by side and
// reports average final-tree costs; per the paper both should pick plans of
// very similar quality.
func BenchmarkAblationCostModel(b *testing.B) {
	for _, model := range []string{"sT", "estimate"} {
		b.Run(model, func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(9))
			var finalS float64
			n := 0
			for i := 0; i < b.N; i++ {
				sch, err := gen.RandomSchema(rng, 4, 10)
				if err != nil {
					b.Fatal(err)
				}
				eqs, err := gen.RandomEqualities(rng, sch, 2)
				if err != nil {
					b.Fatal(err)
				}
				q := &core.Query{Equalities: eqs}
				for j, s := range sch.Relations {
					q.Relations = append(q.Relations, relation.New(sch.Names[j], s))
				}
				rels := sch.Populate(rng, 64, gen.NewSampler(rng, gen.Uniform, 10))
				tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
				if err != nil {
					b.Fatal(err)
				}
				attrs := q.Attributes()
				var conds []opt.Condition
				for tries := 0; tries < 100 && len(conds) < 2; tries++ {
					x, y := attrs[rng.Intn(len(attrs))], attrs[rng.Intn(len(attrs))]
					if tr.NodeOf(x) != tr.NodeOf(y) {
						conds = append(conds, opt.Condition{A: x, B: y})
						break
					}
				}
				if len(conds) == 0 {
					continue
				}
				var res opt.PlanResult
				if model == "sT" {
					res, err = opt.GreedyPlanWithCost(tr, conds, opt.SCost{})
				} else {
					res, err = opt.GreedyPlanWithCost(tr, conds, opt.EstimateCost{Cat: stats.Collect(rels)})
				}
				if err != nil {
					b.Fatal(err)
				}
				finalS += res.FinalS
				n++
			}
			if n > 0 {
				b.ReportMetric(finalS/float64(n), "avg-final-s(T)")
			}
		})
	}
}

// BenchmarkEnumerationDelay checks the constant-delay enumeration claim:
// per-tuple enumeration cost from a factorised result must stay flat as the
// result grows (Section 2: O(|S|) delay between successive tuples). The
// encoded variant walks the arena-backed columns through the pull iterator
// and allocates nothing per tuple; the pointer variant is the legacy form.
func BenchmarkEnumerationDelay(b *testing.B) {
	for _, n := range []int{100, 400, 1600} {
		rng := rand.New(rand.NewSource(10))
		q, err := gen.RandomQuery(rng, 3, 9, n, 2, gen.Uniform, 40)
		if err != nil {
			b.Fatal(err)
		}
		tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
		if err != nil {
			b.Fatal(err)
		}
		rels := make([]*relation.Relation, len(q.Relations))
		for i, r := range q.Relations {
			rels[i] = r.Clone()
		}
		fr, err := fbuild.Build(rels, tr.Clone())
		if err != nil {
			b.Fatal(err)
		}
		enc, err := fbuild.BuildEnc(rels, tr)
		if err != nil {
			b.Fatal(err)
		}
		if fr.Count() == 0 {
			continue
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var tuples int64
			for i := 0; i < b.N; i++ {
				it := frep.NewEncIterator(enc)
				for {
					if _, ok := it.Next(); !ok {
						break
					}
					tuples++
				}
			}
			b.StopTimer()
			if tuples > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(tuples), "ns/tuple")
			}
		})
		b.Run(fmt.Sprintf("pointer/N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var tuples int64
			for i := 0; i < b.N; i++ {
				fr.Enumerate(func(relation.Tuple) bool {
					tuples++
					return true
				})
			}
			b.StopTimer()
			if tuples > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(tuples), "ns/tuple")
			}
		})
	}
}

// BenchmarkAblationOptimiser compares exhaustive and greedy optimisation
// latency on identical instances (the Figure 9 contrast as a Go benchmark).
func BenchmarkAblationOptimiser(b *testing.B) {
	for _, engine := range []string{"exhaustive", "greedy"} {
		b.Run(engine, func(b *testing.B) {
			b.ReportAllocs()
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < b.N; i++ {
				sch, err := gen.RandomSchema(rng, 4, 10)
				if err != nil {
					b.Fatal(err)
				}
				eqs, err := gen.RandomEqualities(rng, sch, 2)
				if err != nil {
					b.Fatal(err)
				}
				q := &core.Query{Equalities: eqs}
				for j, s := range sch.Relations {
					q.Relations = append(q.Relations, relation.New(sch.Names[j], s))
				}
				tr, _, err := opt.OptimalFTree(q.Classes(), q.Schemas(), opt.TreeSearchOptions{})
				if err != nil {
					b.Fatal(err)
				}
				attrs := q.Attributes()
				var conds []opt.Condition
				for tries := 0; tries < 100 && len(conds) < 3; tries++ {
					x, y := attrs[rng.Intn(len(attrs))], attrs[rng.Intn(len(attrs))]
					if tr.NodeOf(x) != tr.NodeOf(y) {
						conds = append(conds, opt.Condition{A: x, B: y})
					}
				}
				if len(conds) == 0 {
					continue
				}
				if engine == "exhaustive" {
					_, err = opt.ExhaustivePlan(tr, conds, opt.PlanSearchOptions{})
				} else {
					_, err = opt.GreedyPlan(tr, conds)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
