package fdb

import (
	"strings"
	"testing"
)

// grocery loads Figure 1 through the public API.
func grocery(t *testing.T) *DB {
	t.Helper()
	db := New()
	db.MustCreate("Orders", "oid", "item")
	for _, r := range [][2]string{{"01", "Milk"}, {"01", "Cheese"}, {"02", "Melon"}, {"03", "Cheese"}, {"03", "Melon"}} {
		db.MustInsert("Orders", r[0], r[1])
	}
	db.MustCreate("Store", "location", "item")
	for _, r := range [][2]string{{"Istanbul", "Milk"}, {"Istanbul", "Cheese"}, {"Istanbul", "Melon"},
		{"Izmir", "Milk"}, {"Antalya", "Milk"}, {"Antalya", "Cheese"}} {
		db.MustInsert("Store", r[0], r[1])
	}
	db.MustCreate("Disp", "dispatcher", "location")
	for _, r := range [][2]string{{"Adnan", "Istanbul"}, {"Adnan", "Izmir"}, {"Yasemin", "Istanbul"}, {"Volkan", "Antalya"}} {
		db.MustInsert("Disp", r[0], r[1])
	}
	db.MustCreate("Produce", "supplier", "item")
	for _, r := range [][2]string{{"Guney", "Milk"}, {"Guney", "Cheese"}, {"Dikici", "Milk"}, {"Byzantium", "Melon"}} {
		db.MustInsert("Produce", r[0], r[1])
	}
	db.MustCreate("Serve", "supplier", "location")
	for _, r := range [][2]string{{"Guney", "Antalya"}, {"Dikici", "Istanbul"}, {"Dikici", "Izmir"},
		{"Dikici", "Antalya"}, {"Byzantium", "Istanbul"}} {
		db.MustInsert("Serve", r[0], r[1])
	}
	return db
}

func q1(t *testing.T, db *DB) *Result {
	t.Helper()
	res, err := db.Query(
		From("Orders", "Store", "Disp"),
		Eq("Orders.item", "Store.item"),
		Eq("Store.location", "Disp.location"))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestQ1ThroughPublicAPI(t *testing.T) {
	db := grocery(t)
	res := q1(t, db)
	if res.Count() != 14 {
		t.Fatalf("Q1 count = %d, want 14", res.Count())
	}
	// 6 attributes (classes keep both sides of each equality).
	if res.FlatSize() != 14*int64(len(res.Schema())) {
		t.Fatalf("FlatSize inconsistent: %d", res.FlatSize())
	}
	if res.Size() >= int(res.FlatSize()) {
		t.Fatalf("factorised size %d not smaller than flat %d", res.Size(), res.FlatSize())
	}
	rows := res.Rows(0)
	if len(rows) != 14 {
		t.Fatalf("enumerated %d rows, want 14", len(rows))
	}
	if !strings.Contains(res.String(), "Milk") {
		t.Fatal("rendering lost dictionary decoding")
	}
	if res.FTree() == "" {
		t.Fatal("empty f-tree rendering")
	}
}

func TestExample2JoinOnFactorisedResults(t *testing.T) {
	db := grocery(t)
	r1 := q1(t, db)
	r2, err := db.Query(From("Produce", "Serve"), Eq("Produce.supplier", "Serve.supplier"))
	if err != nil {
		t.Fatal(err)
	}
	// s(Q2) = 1: the factorisation is linear in the input.
	if r2.Count() != 6 {
		t.Fatalf("Q2 count = %d, want 6", r2.Count())
	}
	joined, err := r1.Join(r2,
		Eq("Orders.item", "Produce.item"),
		Eq("Store.location", "Serve.location"))
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against a flat evaluation of the full join.
	full, err := db.Query(
		From("Orders", "Store", "Disp", "Produce", "Serve"),
		Eq("Orders.item", "Store.item"),
		Eq("Store.location", "Disp.location"),
		Eq("Produce.supplier", "Serve.supplier"),
		Eq("Orders.item", "Produce.item"),
		Eq("Store.location", "Serve.location"))
	if err != nil {
		t.Fatal(err)
	}
	if joined.Count() != full.Count() {
		t.Fatalf("factorised-join count %d != direct count %d", joined.Count(), full.Count())
	}
}

func TestWhereConstAndProject(t *testing.T) {
	db := grocery(t)
	res := q1(t, db)
	milkOnly, err := res.Where(Cmp("Orders.item", EQ, "Milk"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range milkOnly.Rows(0) {
		found := false
		for _, v := range row {
			if v == "Milk" {
				found = true
			}
		}
		if !found {
			t.Fatalf("row %v survived σ item=Milk", row)
		}
	}
	if milkOnly.Count() != 4 {
		t.Fatalf("milk rows = %d, want 4", milkOnly.Count())
	}
	proj, err := res.ProjectTo("Orders.oid", "Disp.dispatcher")
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Schema()) != 2 {
		t.Fatalf("projected schema = %v", proj.Schema())
	}
	if proj.Count() <= 0 || proj.Count() > 14 {
		t.Fatalf("projected count = %d", proj.Count())
	}
}

func TestQueryErrors(t *testing.T) {
	db := grocery(t)
	if _, err := db.Query(Eq("a", "b")); err == nil {
		t.Fatal("query without From accepted")
	}
	if _, err := db.Query(From("Ghost")); err == nil {
		t.Fatal("unknown relation accepted")
	}
	if err := db.Create("Orders", "x"); err == nil {
		t.Fatal("duplicate relation accepted")
	}
	if err := db.Create("Empty"); err == nil {
		t.Fatal("zero-attribute relation accepted")
	}
	if err := db.Insert("Orders", "just-one"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if err := db.Insert("Ghost", 1); err == nil {
		t.Fatal("insert into unknown relation accepted")
	}
	if err := db.Insert("Orders", 1.5, 2.5); err == nil {
		t.Fatal("float values accepted")
	}
}

func TestIntValuesAndCmp(t *testing.T) {
	db := New()
	db.MustCreate("R", "a", "b")
	for i := 0; i < 10; i++ {
		db.MustInsert("R", i, i*2)
	}
	res, err := db.Query(From("R"), Cmp("R.a", LT, 5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 5 {
		t.Fatalf("count = %d, want 5", res.Count())
	}
	res2, err := db.Query(From("R"), Eq("R.a", "R.b"))
	if err != nil {
		t.Fatal(err)
	}
	if res2.Count() != 1 { // only (0,0)
		t.Fatalf("count = %d, want 1", res2.Count())
	}
}

func TestRelationsListing(t *testing.T) {
	db := grocery(t)
	names := db.Relations()
	if len(names) != 5 || names[0] != "Orders" {
		t.Fatalf("Relations() = %v", names)
	}
	if _, ok := db.Relation("Store"); !ok {
		t.Fatal("Relation(Store) missing")
	}
}

func TestEmptyResult(t *testing.T) {
	db := New()
	db.MustCreate("A", "x")
	db.MustCreate("B", "y")
	db.MustInsert("A", 1)
	db.MustInsert("B", 2)
	res, err := db.Query(From("A", "B"), Eq("A.x", "B.y"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Empty() || res.Count() != 0 || res.Size() != 0 {
		t.Fatalf("expected empty result, got count=%d", res.Count())
	}
}

func TestIterPullsAllTuples(t *testing.T) {
	db := grocery(t)
	res := q1(t, db)
	it := res.Iter()
	n := int64(0)
	for {
		if _, ok := it.Next(); !ok {
			break
		}
		n++
	}
	if n != res.Count() {
		t.Fatalf("iterator produced %d tuples, Count() = %d", n, res.Count())
	}
}

func TestTableRendering(t *testing.T) {
	db := grocery(t)
	res := q1(t, db)
	tbl := res.Table(3)
	if !strings.Contains(tbl, "Orders.oid") || len(strings.Split(strings.TrimSpace(tbl), "\n")) != 4 {
		t.Fatalf("table rendering wrong:\n%s", tbl)
	}
}
