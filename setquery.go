package fdb

import (
	"fmt"

	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/relation"
)

// SetExpr is a set-algebra query expression: a leaf select-project-join
// query (Sub) or a set operation over two sub-expressions. Build it with
// Sub, Union, UnionAll, Except and Intersect and run it with DB.QuerySet:
//
//	res, err := db.QuerySet(
//	    fdb.Union(
//	        fdb.Sub(fdb.From("Orders"), fdb.Cmp("Orders.qty", fdb.GE, 10)),
//	        fdb.Sub(fdb.From("Orders"), fdb.Cmp("Orders.item", fdb.EQ, "Milk")),
//	    ),
//	    fdb.OrderBy("Orders.oid"), fdb.Limit(5),
//	)
//
// Every leaf compiles through the plan cache like a standalone Query; the
// set operations themselves run natively on the encoded representations.
type SetExpr struct {
	op      setExprOp
	l, r    *SetExpr
	clauses []Clause
	err     error // deferred construction error, reported by QuerySet
}

type setExprOp int

const (
	setLeaf setExprOp = iota
	setUnion
	setUnionAll
	setExcept
	setIntersect
)

func (op setExprOp) String() string {
	switch op {
	case setUnion:
		return "Union"
	case setUnionAll:
		return "UnionAll"
	case setExcept:
		return "Except"
	case setIntersect:
		return "Intersect"
	}
	return "Sub"
}

// Sub wraps one select-project-join query as a set-expression leaf. The
// clauses are the ones Query accepts minus retrieval and aggregation:
// OrderBy, Limit, Offset and Distinct apply to the combined result (pass
// them to QuerySet), aggregates have no set-algebra reading.
func Sub(clauses ...Clause) *SetExpr { return &SetExpr{op: setLeaf, clauses: clauses} }

// Union combines two set expressions with set union.
func Union(a, b *SetExpr) *SetExpr { return newSetExpr(setUnion, a, b) }

// UnionAll combines two set expressions with bag union: duplicates across
// the operands are preserved in the result (Distinct restores set
// semantics).
func UnionAll(a, b *SetExpr) *SetExpr { return newSetExpr(setUnionAll, a, b) }

// Except combines two set expressions with set difference (a minus b).
func Except(a, b *SetExpr) *SetExpr { return newSetExpr(setExcept, a, b) }

// Intersect combines two set expressions with set intersection.
func Intersect(a, b *SetExpr) *SetExpr { return newSetExpr(setIntersect, a, b) }

func newSetExpr(op setExprOp, a, b *SetExpr) *SetExpr {
	e := &SetExpr{op: op, l: a, r: b}
	if a == nil || b == nil {
		e.err = fmt.Errorf("fdb: %s needs two sub-expressions", op)
	}
	return e
}

// QuerySet compiles and runs a set-algebra expression. Each leaf query runs
// through the plan cache exactly like Query (repeating the same QuerySet
// re-uses every leg's compiled plan and memoised encoding); the set
// operations combine the leaves' factorised results natively on the encoded
// representations. The trailing clauses order, clip or normalise the final
// result: only OrderBy, Limit, Offset and Distinct are accepted there.
func (db *DB) QuerySet(e *SetExpr, clauses ...Clause) (*Result, error) {
	if e == nil {
		return nil, fmt.Errorf("fdb: QuerySet needs a set expression")
	}
	s, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	if len(s.from) > 0 || len(s.eqs) > 0 || len(s.sels) > 0 || s.project != nil ||
		len(s.aggs) > 0 || len(s.groupBy) > 0 || s.par != 0 {
		return nil, fmt.Errorf("fdb: QuerySet trailing clauses may only be OrderBy, Limit, Offset or Distinct; query clauses belong in the Sub legs")
	}
	enc, err := db.evalSetExpr(e)
	if err != nil {
		return nil, err
	}
	if s.distinct {
		enc, err = fplan.ApplyEnc(fplan.Distinct{}, enc)
		if err != nil {
			return nil, err
		}
	}
	if len(s.orderBy) > 0 {
		sch := enc.Schema()
		out := relation.NewAttrSet(sch...)
		for _, k := range s.orderBy {
			if !out.Has(k.Attr) {
				return nil, fmt.Errorf("fdb: order-by attribute %q not in the result", k.Attr)
			}
		}
	}
	res := newResult(db, enc)
	if len(s.orderBy) > 0 || s.offset > 0 || s.limit >= 0 {
		res.order = s.orderBy
		res.offset = s.offset
		res.limit = s.limit
		res.less = db.orderLess()
	}
	return res, nil
}

// evalSetExpr evaluates the expression tree bottom-up: leaves through the
// cached-statement path, inner nodes through the native frep merges.
func (db *DB) evalSetExpr(e *SetExpr) (*frep.Enc, error) {
	if e.err != nil {
		return nil, e.err
	}
	if e.op == setLeaf {
		s, err := compileSpec(modeQuery, e.clauses)
		if err != nil {
			return nil, err
		}
		if len(s.aggs) > 0 || len(s.groupBy) > 0 {
			return nil, fmt.Errorf("fdb: aggregates are not allowed in a Sub leg")
		}
		if len(s.orderBy) > 0 || s.limit >= 0 || s.offset > 0 || s.distinct {
			return nil, fmt.Errorf("fdb: OrderBy/Limit/Offset/Distinct apply to the combined result; pass them to QuerySet, not a Sub leg")
		}
		st, err := db.cachedStmt(s)
		if err != nil {
			return nil, err
		}
		res, err := st.Exec()
		if err != nil {
			return nil, err
		}
		return res.enc, nil
	}
	l, err := db.evalSetExpr(e.l)
	if err != nil {
		return nil, err
	}
	r, err := db.evalSetExpr(e.r)
	if err != nil {
		return nil, err
	}
	switch e.op {
	case setUnion:
		return frep.UnionEnc(l, r)
	case setUnionAll:
		return frep.UnionAllEnc(l, r)
	case setExcept:
		return frep.ExceptEnc(l, r)
	case setIntersect:
		return frep.IntersectEnc(l, r)
	}
	return nil, fmt.Errorf("fdb: unknown set operation %d", e.op)
}
