package fdb

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/csvio"
	"repro/internal/delta"
	"repro/internal/fplan"
	"repro/internal/frep"
	"repro/internal/relation"
	"repro/internal/store"
)

// DB is an in-memory factorised database: named relations plus a shared
// string dictionary. Each relation lives in a delta.Store — an append-only
// chain of immutable versions (base snapshot + delta batches) behind an
// atomic pointer — so readers never block writers: Query, Prepare and
// Stmt.Exec read a consistent version lock-free while Insert/Delete/Upsert
// append under the write lock, and Snapshot pins a database-wide version
// for as long as the caller holds it.
type DB struct {
	mu     sync.RWMutex
	dict   *relation.Dict
	stores map[string]*delta.Store
	ord    []string
	ver    uint64 // global write version; bumps once per committed mutation
	cache  *planCache
	// par is the database-wide execution parallelism; 0 means "default",
	// resolved to runtime.GOMAXPROCS(0) at execution time. Read atomically
	// so Exec never contends with SetParallelism.
	par atomic.Int32
	// snaps counts open snapshots (diagnostics; see OpenSnapshots).
	snaps atomic.Int64

	// Planner tier policy (see planner.go): mode, exhaustive-search budget,
	// auto-escalation cost threshold (float bits; 0 = default), promotion
	// hit count, and the tier decision counters. All atomic: prepareSpec
	// and the cache hit path never contend with the Set* knobs.
	plannerMode      atomic.Int32
	plannerBudget    atomic.Int64
	plannerThreshold atomic.Uint64
	plannerPromote   atomic.Int64
	pstats           plannerCounters

	// adopted indexes the pre-built encodings a snapshot file carried, by
	// plan fingerprint. Populated once by OpenSnapshotFile before the DB is
	// handed out and read-only afterwards, so lookups take no lock. backing
	// roots the opened store.File: adopted arenas and relation tuples alias
	// its (possibly memory-mapped) bytes, which must stay mapped for the
	// lifetime of the database — the file is never unmapped through the DB.
	adopted map[string]*adoptedEnc
	backing *store.File
}

// adoptedEnc is one snapshot-carried encoding: the statement fingerprint it
// was memoised under maps to it, inputs records the (relation, version)
// pairs the build reflected, and enc's arena points into the snapshot file.
type adoptedEnc struct {
	inputs []store.Input
	enc    *frep.Enc
}

// New returns an empty database.
func New() *DB {
	return &DB{
		dict:   relation.NewDict(),
		stores: map[string]*delta.Store{},
		cache:  newPlanCache(defaultPlanCacheCap),
	}
}

// Create adds a relation with the given attribute names (unqualified; they
// are stored as "name.attr").
func (db *DB) Create(name string, attrs ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.stores[name]; ok {
		return fmt.Errorf("fdb: relation %q already exists", name)
	}
	if len(attrs) == 0 {
		return fmt.Errorf("fdb: relation %q needs at least one attribute", name)
	}
	sch := make(relation.Schema, len(attrs))
	for i, a := range attrs {
		sch[i] = relation.Attribute(name + "." + a)
	}
	if err := sch.Validate(); err != nil {
		return err
	}
	db.ver++
	db.stores[name] = delta.NewStore(name, sch, db.ver)
	db.ord = append(db.ord, name)
	db.cache.invalidate(name)
	return nil
}

// MustCreate is Create, panicking on error (for examples and tests).
func (db *DB) MustCreate(name string, attrs ...string) {
	if err := db.Create(name, attrs...); err != nil {
		panic(err)
	}
}

// Insert adds one tuple; values may be int, int64 or string (strings are
// dictionary-encoded). Writes commit as delta batches: running statements
// and open snapshots keep reading the version they hold, while statements
// executed after Insert returns see the new tuple (read-your-writes —
// prepared statements refresh their inputs incrementally per Exec).
func (db *DB) Insert(name string, values ...interface{}) error {
	return db.InsertBatch(name, [][]interface{}{values})
}

// MustInsert is Insert, panicking on error.
func (db *DB) MustInsert(name string, values ...interface{}) {
	if err := db.Insert(name, values...); err != nil {
		panic(err)
	}
}

// InsertBatch adds many tuples in one committed batch (one version bump,
// one delta for readers to merge). Set semantics: inserting a tuple that is
// already present is a no-op.
func (db *DB) InsertBatch(name string, rows [][]interface{}) error {
	return db.mutate(name, rows, nil, 0)
}

// Delete removes the exact tuple (all columns must match); removing an
// absent tuple is a no-op, per set semantics.
func (db *DB) Delete(name string, values ...interface{}) error {
	return db.DeleteBatch(name, [][]interface{}{values})
}

// DeleteBatch removes many tuples in one committed batch.
func (db *DB) DeleteBatch(name string, rows [][]interface{}) error {
	return db.mutate(name, nil, rows, 0)
}

// Upsert inserts the tuple, first removing every live tuple that agrees
// with it on the first keyCols columns (the relation's key prefix). One
// committed batch: removals apply before the insertion.
func (db *DB) Upsert(name string, keyCols int, values ...interface{}) error {
	return db.UpsertBatch(name, keyCols, [][]interface{}{values})
}

// UpsertBatch upserts many tuples in one committed batch.
func (db *DB) UpsertBatch(name string, keyCols int, rows [][]interface{}) error {
	if keyCols < 1 {
		return fmt.Errorf("fdb: upsert needs at least one key column, got %d", keyCols)
	}
	return db.mutate(name, rows, nil, keyCols)
}

// mutate is the shared write path: encode the rows, derive the delta batch
// (upserts scan the live version for key-prefix matches to remove), bump
// the global version and publish the relation's successor state.
func (db *DB) mutate(name string, addRows, delRows [][]interface{}, upsertKey int) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.stores[name]
	if !ok {
		return fmt.Errorf("fdb: unknown relation %q", name)
	}
	if upsertKey > len(s.Schema) {
		return fmt.Errorf("fdb: relation %q has arity %d, upsert key has %d columns", name, len(s.Schema), upsertKey)
	}
	encodeRows := func(rows [][]interface{}) ([]relation.Tuple, error) {
		out := make([]relation.Tuple, 0, len(rows))
		for _, row := range rows {
			if len(row) != len(s.Schema) {
				return nil, fmt.Errorf("fdb: relation %q has arity %d, got %d values", name, len(s.Schema), len(row))
			}
			t := make(relation.Tuple, len(row))
			for i, v := range row {
				val, err := db.encode(v)
				if err != nil {
					return nil, err
				}
				t[i] = val
			}
			out = append(out, t)
		}
		return out, nil
	}
	adds, err := encodeRows(addRows)
	if err != nil {
		return err
	}
	dels, err := encodeRows(delRows)
	if err != nil {
		return err
	}
	if upsertKey > 0 {
		// Remove the live tuples each upserted tuple displaces. Within the
		// batch removals apply before additions, so upserting an unchanged
		// tuple keeps it.
		live := s.State().Live()
		for _, a := range adds {
			for _, t := range live.Tuples {
				match := true
				for c := 0; c < upsertKey; c++ {
					if t[c] != a[c] {
						match = false
						break
					}
				}
				if match {
					dels = append(dels, t)
				}
			}
		}
	}
	if len(adds) == 0 && len(dels) == 0 {
		return nil
	}
	db.ver++
	s.Apply(adds, dels, db.ver)
	return nil
}

// Compact folds the named relation's delta chain into a fresh materialised
// base at the current version. Open snapshots and running statements keep
// their pinned versions (their arenas stay alive for as long as they are
// referenced); statements whose held version predates the new base
// re-snapshot on their next Exec instead of merging.
func (db *DB) Compact(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.stores[name]
	if !ok {
		return fmt.Errorf("fdb: unknown relation %q", name)
	}
	s.Compact()
	return nil
}

// Version returns the database's current write version (bumps once per
// committed mutation).
func (db *DB) Version() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ver
}

// OpenSnapshots reports the number of snapshots pinned and not yet closed.
func (db *DB) OpenSnapshots() int { return int(db.snaps.Load()) }

// LoadTSV reads one relation from a tab-separated file (first line
// "Name<TAB>attr…", see internal/csvio) into the database and returns its
// name.
func (db *DB) LoadTSV(path string) (string, error) {
	rel, err := csvio.ReadFile(path, db.dict)
	if err != nil {
		return "", err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.stores[rel.Name]; ok {
		return "", fmt.Errorf("fdb: relation %q already exists", rel.Name)
	}
	db.ver++
	db.stores[rel.Name] = delta.FromRelation(rel, db.ver)
	db.ord = append(db.ord, rel.Name)
	db.cache.invalidate(rel.Name)
	return rel.Name, nil
}

// SaveTSV writes a stored relation to a tab-separated file. The relation's
// current version is immutable, so the file is a consistent snapshot even
// under concurrent writes.
func (db *DB) SaveTSV(path, name string) error {
	db.mu.RLock()
	s, ok := db.stores[name]
	db.mu.RUnlock()
	if !ok {
		return fmt.Errorf("fdb: unknown relation %q", name)
	}
	return csvio.WriteFile(path, s.State().Live(), db.dict)
}

// Relations lists the relation names in creation order.
func (db *DB) Relations() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]string(nil), db.ord...)
}

// Relation exposes a snapshot of a stored relation at its current version.
// The snapshot has its own tuple-slice header but shares tuple storage with
// the version chain — treat it as read-only; do not sort, dedup or
// otherwise mutate it in place.
func (db *DB) Relation(name string) (*relation.Relation, bool) {
	db.mu.RLock()
	s, ok := db.stores[name]
	db.mu.RUnlock()
	if !ok {
		return nil, false
	}
	live := s.State().Live()
	snap := relation.New(live.Name, live.Schema)
	snap.Tuples = live.Tuples[:len(live.Tuples):len(live.Tuples)]
	return snap, true
}

// Dict exposes the database dictionary (for rendering). The dictionary is
// safe for concurrent use.
func (db *DB) Dict() *relation.Dict { return db.dict }

// Query compiles and runs a select-project-join query and returns its
// factorised result: it finds an f-tree of minimal cost s(T) for the query,
// builds the factorised representation directly from the input relations,
// then applies constant selections and the projection.
//
// Query is a thin wrapper over the prepared-statement machinery: the
// compiled plan is looked up in (and inserted into) an internal LRU cache
// keyed by the query's canonical fingerprint, so repeating the same query
// skips clause validation, input dedup, f-tree search and input sorting.
// Writes do not evict cached plans — a cached statement refreshes its data
// incrementally from the relations' delta chains per execution.
// CacheStats exposes the hit counters. Queries with Param placeholders are
// rejected — use Prepare and Exec to bind them.
func (db *DB) Query(clauses ...Clause) (*Result, error) {
	s, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	if len(s.aggs) > 0 {
		return nil, fmt.Errorf("fdb: query computes aggregates; use QueryAgg")
	}
	st, err := db.cachedStmt(s)
	if err != nil {
		return nil, err
	}
	return st.Exec()
}

// QueryAgg compiles and runs an aggregation query — From/Eq/Cmp clauses
// plus at least one Agg, optionally GroupBy — and returns its aggregate
// rows. The query compiles like Query (shared plan cache, keyed by a
// fingerprint extended with the grouping and aggregate list; the compiled
// f-tree is restructured so group-by attributes sit above aggregated
// ones), then the aggregates are evaluated in a single pass over the
// factorised result, never over its flattening.
func (db *DB) QueryAgg(clauses ...Clause) (*AggResult, error) {
	s, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	if len(s.aggs) == 0 {
		return nil, fmt.Errorf("fdb: QueryAgg needs at least one Agg clause")
	}
	st, err := db.cachedStmt(s)
	if err != nil {
		return nil, err
	}
	return st.ExecAgg()
}

// cachedStmt resolves a compiled statement for the spec through the plan
// cache (compiling and inserting on miss), the shared path behind Query
// and QueryAgg. Cached statements stay hot across writes: each execution
// folds the pending deltas of its inputs into its snapshots, so the cache
// key needs no data-version component.
func (db *DB) cachedStmt(s *spec) (*Stmt, error) {
	if ps := s.params(); len(ps) > 0 {
		return nil, fmt.Errorf("fdb: unbound parameter %q: use Prepare and Exec for parameterised queries", ps[0])
	}
	// Reject before the cache lookup: the fingerprint of an agg-free spec
	// ignores groupBy, so this invalid shape would otherwise alias the
	// cached plain query and succeed on a warm cache.
	if len(s.groupBy) > 0 && len(s.aggs) == 0 {
		return nil, fmt.Errorf("fdb: GroupBy needs at least one Agg clause")
	}
	if db.cache.capacity() <= 0 {
		return db.prepareSpec(s, nil)
	}
	key, names, err := db.fingerprint(s)
	if err != nil {
		return nil, err
	}
	if st, ok := db.cache.get(key); ok {
		db.maybePromote(st)
		return st, nil
	}
	// The miss path resolves the relations a second time inside
	// prepareSpec; that duplication is two map lookups and constant
	// encodings, noise next to the clone+dedup+f-tree search it performs.
	st, err := db.prepareSpec(s, nil)
	if err != nil {
		return nil, err
	}
	st.fp = key
	db.cache.put(key, st, names)
	return st, nil
}

// PrepareCached is Prepare through the plan cache: the compiled statement
// is looked up by the query's canonical fingerprint — parameter
// placeholders included — so many callers preparing the same query shape
// (the server front-end's connections, most prominently) share one
// compiled plan and one memoised encoded representation. Statements are
// safe for concurrent Exec, so the sharing is free; an entry stays cached
// until a schema change invalidates its relations or the LRU evicts it.
func (db *DB) PrepareCached(clauses ...Clause) (*Stmt, error) {
	s, err := compileSpec(modeQuery, clauses)
	if err != nil {
		return nil, err
	}
	// Same pre-cache rejection as cachedStmt: an agg-free fingerprint
	// ignores groupBy, so this invalid shape must not alias a cached plan.
	if len(s.groupBy) > 0 && len(s.aggs) == 0 {
		return nil, fmt.Errorf("fdb: GroupBy needs at least one Agg clause")
	}
	if db.cache.capacity() <= 0 {
		return db.prepareSpec(s, nil)
	}
	key, names, err := db.fingerprint(s)
	if err != nil {
		return nil, err
	}
	if st, ok := db.cache.get(key); ok {
		db.maybePromote(st)
		return st, nil
	}
	st, err := db.prepareSpec(s, nil)
	if err != nil {
		return nil, err
	}
	st.fp = key
	db.cache.put(key, st, names)
	return st, nil
}

// fingerprint canonically fingerprints the query spec against the current
// catalogue and returns the referenced relation names (for schema-level
// invalidation). Data versions are not part of the key: cached statements
// self-refresh from the delta chains. Parameterised selections fingerprint
// by attribute, operator and placeholder name — the bound values are
// per-Exec and never part of the plan identity.
func (db *DB) fingerprint(s *spec) (string, []string, error) {
	db.mu.RLock()
	q := &core.Query{Equalities: s.eqs, Projection: s.project}
	names := make([]string, 0, len(s.from))
	for _, name := range s.from {
		st, ok := db.stores[name]
		if !ok {
			db.mu.RUnlock()
			return "", nil, fmt.Errorf("fdb: unknown relation %q", name)
		}
		// The fingerprint reads only names and schemas; a data-free shell
		// avoids touching (or pinning) any version's tuples.
		q.Relations = append(q.Relations, relation.New(st.Name, st.Schema))
		names = append(names, name)
	}
	db.mu.RUnlock()
	var psels, ssels []string
	for _, sel := range s.sels {
		if p, ok := sel.val.(ParamValue); ok {
			psels = append(psels, fmt.Sprintf("%s %d $%s", sel.attr, sel.op, p.name))
			continue
		}
		// String constants fingerprint by string, not by dictionary code:
		// encoding here would mint a code for every unseen constant a query
		// merely compares against (and make the key depend on insertion
		// history).
		if str, ok := sel.val.(string); ok {
			ssels = append(ssels, fmt.Sprintf("%s %d %q", sel.attr, sel.op, str))
			continue
		}
		v, err := db.encode(sel.val)
		if err != nil {
			return "", nil, err
		}
		q.Selections = append(q.Selections, core.ConstSel{A: sel.attr, Op: sel.op, C: v})
	}
	key := q.Fingerprint()
	if len(psels) > 0 {
		key = key + "|psels " + strings.Join(psels, ",")
	}
	if len(ssels) > 0 {
		sort.Strings(ssels)
		key = key + "|ssels " + strings.Join(ssels, ",")
	}
	// A per-query parallelism override is carried on the compiled statement,
	// so it is part of the plan identity (the tree itself is unaffected, but
	// a cached plan must not leak one query's override into another).
	if s.par > 0 {
		key = fmt.Sprintf("%s|par %d", key, s.par)
	}
	// Ordering participates in planning (the tree is reordered/restructured
	// so the keys stream) and limit/offset/distinct ride on the compiled
	// statement, so all four are part of the plan identity.
	if len(s.orderBy) > 0 {
		var b strings.Builder
		b.WriteString(key)
		b.WriteString("|order")
		for _, k := range s.orderBy {
			b.WriteByte(' ')
			b.WriteString(k.String())
		}
		key = b.String()
	}
	if s.offset > 0 {
		key = fmt.Sprintf("%s|off %d", key, s.offset)
	}
	if s.limit >= 0 {
		key = fmt.Sprintf("%s|lim %d", key, s.limit)
	}
	if s.distinct {
		key += "|distinct"
	}
	// Aggregation restructures the compiled tree (group attributes lifted),
	// so grouping and aggregate list are part of the plan identity.
	if len(s.aggs) > 0 {
		var b strings.Builder
		b.WriteString(key)
		b.WriteString("|groupby")
		for _, a := range s.groupBy {
			b.WriteByte(' ')
			b.WriteString(string(a))
		}
		b.WriteString("|aggs")
		for _, sp := range s.aggs {
			b.WriteByte(' ')
			b.WriteString(sp.Label())
		}
		key = b.String()
	}
	return key, names, nil
}

// CacheStats returns the plan cache counters — Hits and Misses count Query
// lookups, Entries is the current size — and the planner tier counters:
// GreedyPlans (statements carrying a greedy-planned tree), Escalations
// (exhaustive searches attempted, whether by threshold, forced mode or
// promotion), BudgetFallbacks (searches that blew their exploration budget
// and kept the greedy tree) and Promotions (background re-optimisations
// that swapped a cached statement's plan).
func (db *DB) CacheStats() CacheStats {
	cs := db.cache.stats()
	cs.GreedyPlans = db.pstats.greedy.Load()
	cs.Escalations = db.pstats.escalations.Load()
	cs.BudgetFallbacks = db.pstats.fallbacks.Load()
	cs.Promotions = db.pstats.promotions.Load()
	return cs
}

// SetPlanCacheCapacity resizes the plan cache (default 64 entries); 0
// disables caching. Counters are preserved.
func (db *DB) SetPlanCacheCapacity(n int) { db.cache.resize(n) }

// SetParallelism sets the database-wide execution parallelism: the number
// of workers query execution (factorisation build and aggregation) may use.
// n == 1 forces the serial code path; n <= 0 restores the default
// (runtime.GOMAXPROCS at execution time). Per-query WithParallelism clauses
// override this setting. Safe to call concurrently with running queries —
// each execution reads the value once when it starts.
func (db *DB) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	db.par.Store(int32(n))
}

// Parallelism returns the parallelism executions currently resolve to.
func (db *DB) Parallelism() int {
	if p := int(db.par.Load()); p > 0 {
		return p
	}
	return runtime.GOMAXPROCS(0)
}

// orderLess returns the value comparator ORDER BY uses, mirroring how
// results render: dictionary-decoded values compare lexicographically, plain
// integers numerically, and integers sort before dictionary strings. With an
// empty dictionary (pure integer data) it returns nil — native value order
// already is decoded order, so ordered iteration needs no permutations.
func (db *DB) orderLess() frep.ValueLess {
	// Snapshot the append-only dictionary once: every code in the result
	// predates this call, and the comparator runs O(N log N) times on the
	// sort paths — a lock round-trip per comparison would dominate.
	strs := db.dict.Snapshot()
	if len(strs) == 0 {
		return nil
	}
	return func(a, b relation.Value) bool {
		oka := a >= 0 && int(a) < len(strs)
		okb := b >= 0 && int(b) < len(strs)
		switch {
		case oka && okb:
			return strs[a] < strs[b]
		case !oka && !okb:
			return a < b
		default:
			return !oka
		}
	}
}

// encode turns a Go value into an engine Value, assigning a fresh dictionary
// code to an unseen string. It belongs on write paths only (Insert, Delete,
// Upsert): read paths — query constants, parameter binds — must go through
// Lookup/stringSelPred instead, so that comparing against a string the
// database has never stored cannot grow the dictionary. The dictionary is
// internally synchronised, so encode is safe under either DB lock.
func (db *DB) encode(v interface{}) (relation.Value, error) {
	switch x := v.(type) {
	case int:
		return relation.Value(x), nil
	case int64:
		return relation.Value(x), nil
	case relation.Value:
		return x, nil
	case string:
		return db.dict.Encode(x), nil
	}
	return 0, fmt.Errorf("fdb: unsupported value type %T", v)
}

// stringSelPred compiles a string comparison into a value predicate with
// read-only dictionary semantics. Equality operators compare codes: an
// unknown constant matches nothing (EQ) or everything (NE) — the dictionary
// is never grown for it. Range operators compare in decoded lexicographic
// order — the same total order ORDER BY uses (see orderLess) — not in code
// (insertion) order; values outside the dictionary sort before all strings.
func (db *DB) stringSelPred(op fplan.Cmp, s string) func(relation.Value) bool {
	switch op {
	case fplan.Eq:
		c, ok := db.dict.Lookup(s)
		if !ok {
			return func(relation.Value) bool { return false }
		}
		return func(v relation.Value) bool { return v == c }
	case fplan.Ne:
		c, ok := db.dict.Lookup(s)
		if !ok {
			return func(relation.Value) bool { return true }
		}
		return func(v relation.Value) bool { return v != c }
	}
	// One dictionary snapshot for the whole scan: every code in the data
	// predates the predicate's construction.
	strs := db.dict.Snapshot()
	return func(v relation.Value) bool {
		c := -1 // non-string values sort before all strings, as in orderLess
		if v >= 0 && int(v) < len(strs) {
			c = strings.Compare(strs[v], s)
		}
		switch op {
		case fplan.Lt:
			return c < 0
		case fplan.Le:
			return c <= 0
		case fplan.Gt:
			return c > 0
		case fplan.Ge:
			return c >= 0
		}
		return false
	}
}
